module tagdm

go 1.24
