package tagdm

import (
	"strings"
	"testing"

	"tagdm/internal/mining"
)

func TestRunQueryProblem(t *testing.T) {
	ds := smallDataset(t)
	a, res, err := RunQuery(ds,
		"ANALYZE PROBLEM 3 WITH k=3, support=1%, q=0.4, r=0.4",
		Options{Signatures: SignatureFrequency})
	if err != nil {
		t.Fatal(err)
	}
	if a.NumGroups() == 0 {
		t.Fatal("no groups")
	}
	if res.Found {
		if !strings.HasPrefix(res.Algorithm, "SM-LSH") {
			t.Fatalf("problem 3 dispatched to %s", res.Algorithm)
		}
		if res.Support < a.NumActions()/100 {
			t.Fatalf("support %d below 1%% floor", res.Support)
		}
	}
}

func TestRunQueryCustomWithWhere(t *testing.T) {
	ds := smallDataset(t)
	gender := ds.UserSchema.AttrByName("gender").Value(1)
	a, res, err := RunQuery(ds,
		"ANALYZE MAXIMIZE diversity(tags) SUBJECT TO similarity(items) >= 0.5 WHERE gender="+gender+" WITH k=2, support=10",
		Options{Signatures: SignatureFrequency})
	if err != nil {
		t.Fatal(err)
	}
	full, err := NewAnalysis(ds, Options{Signatures: SignatureFrequency})
	if err != nil {
		t.Fatal(err)
	}
	if a.NumActions() >= full.NumActions() {
		t.Fatal("WHERE clause did not scope the corpus")
	}
	if res.Found && !strings.HasPrefix(res.Algorithm, "DV-FDP") {
		t.Fatalf("diversity query dispatched to %s", res.Algorithm)
	}
}

func TestRunQueryErrors(t *testing.T) {
	ds := smallDataset(t)
	if _, _, err := RunQuery(ds, "SELECT 1", Options{}); err == nil {
		t.Fatal("bad syntax accepted")
	}
	if _, _, err := RunQuery(ds, "ANALYZE PROBLEM 1 WHERE gender=martian", Options{}); err == nil {
		t.Fatal("empty scope accepted")
	}
}

func TestParseQueryExported(t *testing.T) {
	req, err := ParseQuery("ANALYZE PROBLEM 2 WITH k=5")
	if err != nil {
		t.Fatal(err)
	}
	if req.ProblemID != 2 || req.K != 5 {
		t.Fatalf("req = %+v", req)
	}
}

func TestSetMeasureChangesResults(t *testing.T) {
	ds := smallDataset(t)
	a, err := NewAnalysis(ds, Options{Signatures: SignatureFrequency})
	if err != nil {
		t.Fatal(err)
	}
	spec, _ := Problem(1, 2, 10, 0.4, 0.4)
	base, err := a.Solve(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Install a degenerate user measure that calls every pair identical;
	// the user constraint then never binds.
	a.SetMeasure(DimUsers, MeasureSimilarity, func(g1, g2 *Group) float64 { return 1 })
	loose, err := a.Solve(spec)
	if err != nil {
		t.Fatal(err)
	}
	// With a weaker constraint the objective cannot get worse.
	if base.Found && loose.Found && loose.Objective < base.Objective-1e-9 {
		t.Fatalf("loosening a constraint reduced the objective: %v -> %v",
			base.Objective, loose.Objective)
	}
}

func TestRatingAwareMeasureThroughFacade(t *testing.T) {
	ds := smallDataset(t)
	a, err := NewAnalysis(ds, Options{Signatures: SignatureFrequency})
	if err != nil {
		t.Fatal(err)
	}
	f := a.RatingAwareItemSimilarity(0.5)
	a.SetMeasure(DimItems, MeasureSimilarity, f)
	a.SetMeasure(DimItems, MeasureDiversity, mining.Inverse(f))
	spec, _ := Problem(2, 3, 10, 0.3, 0.1)
	if _, err := a.Solve(spec); err != nil {
		t.Fatal(err)
	}
}

func TestDomainAwareMeasuresThroughFacade(t *testing.T) {
	ds := smallDataset(t)
	a, err := NewAnalysis(ds, Options{Signatures: SignatureFrequency})
	if err != nil {
		t.Fatal(err)
	}
	u := a.DomainAwareUserSimilarity(mining.EditDistanceValueSimilarity)
	i := a.DomainAwareItemSimilarity(mining.EditDistanceValueSimilarity)
	a.SetMeasure(DimUsers, MeasureSimilarity, u)
	a.SetMeasure(DimItems, MeasureSimilarity, i)
	spec, _ := Problem(1, 2, 10, 0.3, 0.3)
	if _, err := a.Solve(spec); err != nil {
		t.Fatal(err)
	}
}
