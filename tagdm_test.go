package tagdm

import (
	"strings"
	"testing"

	"tagdm/internal/signature"
)

func smallDataset(t testing.TB) *Dataset {
	t.Helper()
	ds, err := GenerateDataset(SmallGenerateConfig())
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestNewAnalysisDefaults(t *testing.T) {
	a, err := NewAnalysis(smallDataset(t), Options{Topics: 8, LDAIterations: 40})
	if err != nil {
		t.Fatal(err)
	}
	if a.NumGroups() == 0 {
		t.Fatal("no groups")
	}
	if a.NumActions() != SmallGenerateConfig().Actions {
		t.Fatalf("actions = %d", a.NumActions())
	}
}

func TestAnalysisSolvesPaperProblems(t *testing.T) {
	a, err := NewAnalysis(smallDataset(t), Options{Topics: 8, LDAIterations: 60})
	if err != nil {
		t.Fatal(err)
	}
	p := a.NumActions() / 100
	for id := 1; id <= 6; id++ {
		spec, err := Problem(id, 3, p, 0.5, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		res, err := a.Solve(spec)
		if err != nil {
			t.Fatalf("problem %d: %v", id, err)
		}
		if res.Found {
			descs := a.Describe(res)
			if len(descs) != len(res.Groups) {
				t.Fatal("describe mismatch")
			}
			for _, d := range descs {
				if !strings.Contains(d, "=") {
					t.Fatalf("description %q", d)
				}
			}
			if cloud := a.GroupCloud(res, 0, 5); cloud == "" {
				t.Fatal("empty group cloud")
			}
		}
	}
}

func TestAnalysisSignatureMethods(t *testing.T) {
	ds := smallDataset(t)
	for _, m := range []SignatureMethod{SignatureFrequency, SignatureTFIDF} {
		a, err := NewAnalysis(ds, Options{Signatures: m})
		if err != nil {
			t.Fatalf("method %d: %v", m, err)
		}
		spec, _ := Problem(1, 3, 10, 0.4, 0.4)
		if _, err := a.Solve(spec); err != nil {
			t.Fatalf("method %d solve: %v", m, err)
		}
	}
}

func TestAnalysisCustomSummarizer(t *testing.T) {
	ds := smallDataset(t)
	// A trivially valid custom summarizer: frequency from the signature
	// package counts as "custom" wiring here.
	a, err := NewAnalysis(ds, Options{CustomSummarizer: mustFrequency(t, ds)})
	if err != nil {
		t.Fatal(err)
	}
	if a.NumGroups() == 0 {
		t.Fatal("no groups")
	}
}

func mustFrequency(t *testing.T, ds *Dataset) Summarizer {
	t.Helper()
	a, err := NewAnalysis(ds, Options{Signatures: SignatureFrequency})
	if err != nil {
		t.Fatal(err)
	}
	return signature.NewFrequency(a.store)
}

func TestAnalysisWithin(t *testing.T) {
	ds := smallDataset(t)
	gender := ds.UserSchema.AttrByName("gender").Value(1)
	a, err := NewAnalysis(ds, Options{
		Signatures: SignatureFrequency,
		Within:     map[string]string{"gender": gender},
	})
	if err != nil {
		t.Fatal(err)
	}
	full, err := NewAnalysis(ds, Options{Signatures: SignatureFrequency})
	if err != nil {
		t.Fatal(err)
	}
	if a.NumGroups() > full.NumGroups() {
		t.Fatal("filtered analysis has more groups than full")
	}
	if _, err := NewAnalysis(ds, Options{Within: map[string]string{"gender": "martian"}}); err == nil {
		t.Fatal("empty filter accepted")
	}
	if _, err := NewAnalysis(ds, Options{Within: map[string]string{"nope": "x"}}); err == nil {
		t.Fatal("unknown attribute accepted")
	}
}

func TestAnalysisCloud(t *testing.T) {
	a, err := NewAnalysis(smallDataset(t), Options{Signatures: SignatureFrequency})
	if err != nil {
		t.Fatal(err)
	}
	genre := a.store.ItemSchema.AttrByName("genre").Value(1)
	cloud, err := a.Cloud(map[string]string{"genre": genre}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if cloud == "" {
		t.Fatal("empty cloud")
	}
	if _, err := a.Cloud(map[string]string{"bogus": "x"}, 5); err == nil {
		t.Fatal("bad attribute accepted")
	}
}

func TestExactThroughFacade(t *testing.T) {
	a, err := NewAnalysis(smallDataset(t), Options{Signatures: SignatureFrequency, MinGroupTuples: 12})
	if err != nil {
		t.Fatal(err)
	}
	spec, _ := Problem(1, 2, 10, 0.3, 0.3)
	if a.NumGroups() > 200 {
		t.Skipf("too many groups (%d) for exact in a unit test", a.NumGroups())
	}
	res, err := a.Exact(spec, ExactOptions{})
	if err != nil {
		t.Fatal(err)
	}
	_ = res
}

func TestAllProblemsEnumerates(t *testing.T) {
	if got := len(AllProblems()); got != 98 {
		t.Fatalf("AllProblems = %d", got)
	}
}

func TestRecommenderThroughFacade(t *testing.T) {
	ds := smallDataset(t)
	a, err := NewAnalysis(ds, Options{Signatures: SignatureFrequency})
	if err != nil {
		t.Fatal(err)
	}
	rec := a.Recommender(ds)
	act := ds.Actions[0]
	sugs, err := rec.Suggest(act.User, act.Item, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(sugs) == 0 {
		t.Fatal("no suggestions for an observed pair")
	}
	for _, s := range sugs {
		if s.Tag == "" || s.Count < 0 {
			t.Fatalf("bad suggestion %+v", s)
		}
	}
	if _, err := rec.Suggest(-1, act.Item, 3); err == nil {
		t.Fatal("negative user accepted")
	}
	if _, err := rec.Suggest(act.User, 99999, 3); err == nil {
		t.Fatal("unknown item accepted")
	}
}
