//go:build race

package tagdm

// raceEnabled reports whether the race detector is compiled in; timing
// guards skip under it because instrumentation skews both sides unevenly.
const raceEnabled = true
