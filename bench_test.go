package tagdm

// Benchmarks regenerating every table and figure of the paper's evaluation
// (Section 6), plus ablations of the design choices called out in
// DESIGN.md. Run with:
//
//	go test -bench=. -benchmem
//
// Figure pairs share runs: Figure 3/4 are the time/quality of the same
// Problem 1-3 executions, 5/6 of Problems 4-6, 7/8 of the tuple sweep.
// Absolute times are hardware-specific; the reproduction target is the
// ordering (Exact >> DV-FDP >= SM-LSH) and the quality parity recorded in
// EXPERIMENTS.md.

import (
	"context"
	"math/rand"
	"sync"
	"testing"

	"bytes"
	"tagdm/internal/core"
	"tagdm/internal/datagen"
	"tagdm/internal/experiments"
	"tagdm/internal/fdp"

	"tagdm/internal/groups"
	"tagdm/internal/incremental"
	"tagdm/internal/lda"
	"tagdm/internal/lsh"
	"tagdm/internal/mining"
	"tagdm/internal/model"
	"tagdm/internal/query"
	"tagdm/internal/signature"
	"tagdm/internal/store"
	"tagdm/internal/userstudy"
	"tagdm/internal/vec"
)

var (
	benchOnce  sync.Once
	benchSetup *experiments.Setup
	benchExact *core.Engine
)

// benchWorld builds one shared pipeline for all benchmarks: the FastConfig
// corpus (1.5K actions, ~100 groups) keeps `go test -bench=.` minutes-scale;
// cmd/tagdm-bench -scale paper covers the full-size runs.
func benchWorld(b testing.TB) (*experiments.Setup, *core.Engine) {
	b.Helper()
	benchOnce.Do(func() {
		st, err := experiments.Build(experiments.FastConfig())
		if err != nil {
			b.Fatal(err)
		}
		benchSetup = st
		benchExact, err = st.ExactEngine()
		if err != nil {
			b.Fatal(err)
		}
	})
	if benchSetup == nil {
		b.Fatal("bench setup failed earlier")
	}
	return benchSetup, benchExact
}

func benchSpec(b testing.TB, st *experiments.Setup, id int) core.ProblemSpec {
	b.Helper()
	p := experiments.PaperParams()
	spec, err := core.PaperProblem(id, p.K, int(p.SupportPct*float64(st.Store.Len())), p.Q, p.R)
	if err != nil {
		b.Fatal(err)
	}
	return spec
}

// --- Figures 3 and 4: Problems 1-3, Exact vs SM-LSH-Fi vs SM-LSH-Fo ---

func benchExactRun(b *testing.B, id int) {
	st, ex := benchWorld(b)
	spec := benchSpec(b, st, id)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ex.Exact(context.Background(), spec, core.ExactOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func benchSMLSH(b *testing.B, id int, mode core.ConstraintMode) {
	st, _ := benchWorld(b)
	spec := benchSpec(b, st, id)
	p := experiments.PaperParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opts := core.LSHOptions{DPrime: p.DPrime, L: p.L, Seed: int64(i), Mode: mode}
		if _, err := st.Engine.SMLSH(context.Background(), spec, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3Problem1Exact(b *testing.B)   { benchExactRun(b, 1) }
func BenchmarkFig3Problem1SMLSHFi(b *testing.B) { benchSMLSH(b, 1, core.Filter) }
func BenchmarkFig3Problem1SMLSHFo(b *testing.B) { benchSMLSH(b, 1, core.Fold) }
func BenchmarkFig3Problem2Exact(b *testing.B)   { benchExactRun(b, 2) }
func BenchmarkFig3Problem2SMLSHFi(b *testing.B) { benchSMLSH(b, 2, core.Filter) }
func BenchmarkFig3Problem2SMLSHFo(b *testing.B) { benchSMLSH(b, 2, core.Fold) }
func BenchmarkFig3Problem3Exact(b *testing.B)   { benchExactRun(b, 3) }
func BenchmarkFig3Problem3SMLSHFi(b *testing.B) { benchSMLSH(b, 3, core.Filter) }
func BenchmarkFig3Problem3SMLSHFo(b *testing.B) { benchSMLSH(b, 3, core.Fold) }

// BenchmarkFig4Quality records the quality metric of Figures 4 alongside
// timing: the objective (avg pairwise tag cosine) per algorithm, reported
// via b.ReportMetric so `-bench` output carries the quality series.
func BenchmarkFig4Quality(b *testing.B) {
	st, ex := benchWorld(b)
	for i := 0; i < b.N; i++ {
		for id := 1; id <= 3; id++ {
			spec := benchSpec(b, st, id)
			exRes, err := ex.Exact(context.Background(), spec, core.ExactOptions{})
			if err != nil {
				b.Fatal(err)
			}
			app, err := st.Engine.SMLSH(context.Background(), spec, core.LSHOptions{Seed: 1, Mode: core.Fold})
			if err != nil {
				b.Fatal(err)
			}
			if id == 1 {
				b.ReportMetric(exRes.Objective, "exact-quality")
				b.ReportMetric(app.Objective, "lsh-quality")
			}
		}
	}
}

// --- Figures 5 and 6: Problems 4-6, Exact vs DV-FDP-Fi vs DV-FDP-Fo ---

func benchDVFDP(b *testing.B, id int, mode core.ConstraintMode) {
	st, _ := benchWorld(b)
	spec := benchSpec(b, st, id)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.Engine.DVFDP(context.Background(), spec, core.FDPOptions{Mode: mode}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5Problem4Exact(b *testing.B)   { benchExactRun(b, 4) }
func BenchmarkFig5Problem4DVFDPFi(b *testing.B) { benchDVFDP(b, 4, core.Filter) }
func BenchmarkFig5Problem4DVFDPFo(b *testing.B) { benchDVFDP(b, 4, core.Fold) }
func BenchmarkFig5Problem5Exact(b *testing.B)   { benchExactRun(b, 5) }
func BenchmarkFig5Problem5DVFDPFi(b *testing.B) { benchDVFDP(b, 5, core.Filter) }
func BenchmarkFig5Problem5DVFDPFo(b *testing.B) { benchDVFDP(b, 5, core.Fold) }
func BenchmarkFig5Problem6Exact(b *testing.B)   { benchExactRun(b, 6) }
func BenchmarkFig5Problem6DVFDPFi(b *testing.B) { benchDVFDP(b, 6, core.Filter) }
func BenchmarkFig5Problem6DVFDPFo(b *testing.B) { benchDVFDP(b, 6, core.Fold) }

// BenchmarkFig6Quality reports the diversity quality series of Figure 6.
func BenchmarkFig6Quality(b *testing.B) {
	st, ex := benchWorld(b)
	for i := 0; i < b.N; i++ {
		spec := benchSpec(b, st, 6)
		exRes, err := ex.Exact(context.Background(), spec, core.ExactOptions{})
		if err != nil {
			b.Fatal(err)
		}
		app, err := st.Engine.DVFDP(context.Background(), spec, core.FDPOptions{Mode: core.Fold})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(exRes.Objective, "exact-quality")
		b.ReportMetric(app.Objective, "fdp-quality")
	}
}

// --- Figures 7 and 8: execution time and quality vs number of tuples ---

func benchBin(b *testing.B, frac float64, problem int) {
	st, _ := benchWorld(b)
	bin, err := st.BinSetup(int(frac * float64(st.Store.Len())))
	if err != nil {
		b.Fatal(err)
	}
	spec := benchSpec(b, bin, problem)
	p := experiments.PaperParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if problem == 1 {
			_, err = bin.Engine.SMLSH(context.Background(), spec, core.LSHOptions{DPrime: p.DPrime, L: p.L, Seed: 1, Mode: core.Fold})
		} else {
			_, err = bin.Engine.DVFDP(context.Background(), spec, core.FDPOptions{Mode: core.Fold})
		}
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7Bin15pctProblem1(b *testing.B) { benchBin(b, 0.15, 1) }
func BenchmarkFig7Bin30pctProblem1(b *testing.B) { benchBin(b, 0.30, 1) }
func BenchmarkFig7Bin60pctProblem1(b *testing.B) { benchBin(b, 0.60, 1) }
func BenchmarkFig7Bin90pctProblem1(b *testing.B) { benchBin(b, 0.90, 1) }
func BenchmarkFig7Bin15pctProblem6(b *testing.B) { benchBin(b, 0.15, 6) }
func BenchmarkFig7Bin30pctProblem6(b *testing.B) { benchBin(b, 0.30, 6) }
func BenchmarkFig7Bin60pctProblem6(b *testing.B) { benchBin(b, 0.60, 6) }
func BenchmarkFig7Bin90pctProblem6(b *testing.B) { benchBin(b, 0.90, 6) }

// --- Figure 9: the simulated user study ---

func BenchmarkFig9UserStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := userstudy.Run(userstudy.DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figures 1-2: tag cloud generation ---

func BenchmarkFig1TagClouds(b *testing.B) {
	st, _ := benchWorld(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, _, err := experiments.TagClouds(st, 12); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations (DESIGN.md section 5) ---

// BenchmarkAblationLSHTables varies the number of hash tables l.
func BenchmarkAblationLSHTables1(b *testing.B) { benchLSHTables(b, 1) }
func BenchmarkAblationLSHTables2(b *testing.B) { benchLSHTables(b, 2) }
func BenchmarkAblationLSHTables4(b *testing.B) { benchLSHTables(b, 4) }

func benchLSHTables(b *testing.B, l int) {
	st, _ := benchWorld(b)
	spec := benchSpec(b, st, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opts := core.LSHOptions{DPrime: 10, L: l, Seed: 1, Mode: core.Fold}
		if _, err := st.Engine.SMLSH(context.Background(), spec, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationLSHDPrime varies the initial hyperplane count d'.
func BenchmarkAblationLSHDPrime5(b *testing.B)  { benchLSHDPrime(b, 5) }
func BenchmarkAblationLSHDPrime10(b *testing.B) { benchLSHDPrime(b, 10) }
func BenchmarkAblationLSHDPrime20(b *testing.B) { benchLSHDPrime(b, 20) }

func benchLSHDPrime(b *testing.B, dprime int) {
	st, _ := benchWorld(b)
	spec := benchSpec(b, st, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opts := core.LSHOptions{DPrime: dprime, L: 1, Seed: 1, Mode: core.Fold}
		if _, err := st.Engine.SMLSH(context.Background(), spec, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationRelaxation compares Algorithm 1's binary-search
// relaxation against a single fixed-d' pass.
func BenchmarkAblationRelaxationOn(b *testing.B)  { benchRelaxation(b, false) }
func BenchmarkAblationRelaxationOff(b *testing.B) { benchRelaxation(b, true) }

func benchRelaxation(b *testing.B, disable bool) {
	st, _ := benchWorld(b)
	spec := benchSpec(b, st, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opts := core.LSHOptions{DPrime: 30, L: 1, Seed: 1, Mode: core.Fold, DisableRelaxation: disable}
		if _, err := st.Engine.SMLSH(context.Background(), spec, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationFoldVsFilter contrasts the two constraint modes on the
// same diversity problem.
func BenchmarkAblationFDPFold(b *testing.B)   { benchDVFDP(b, 6, core.Fold) }
func BenchmarkAblationFDPFilter(b *testing.B) { benchDVFDP(b, 6, core.Filter) }

// BenchmarkAblationFDPSeed compares the max-edge seed of Algorithm 2
// against an arbitrary fixed seed pair.
func BenchmarkAblationFDPSeedMaxEdge(b *testing.B) {
	st, _ := benchWorld(b)
	spec := benchSpec(b, st, 6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.Engine.DVFDP(context.Background(), spec, core.FDPOptions{Mode: core.Fold}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationFDPSeedFixed(b *testing.B) {
	st, _ := benchWorld(b)
	spec := benchSpec(b, st, 6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.Engine.DVFDP(context.Background(), spec, core.FDPOptions{Mode: core.Fold, FixedSeed: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationMatrix compares the paper's precomputed n x n distance
// matrix against lazy distance evaluation.
func BenchmarkAblationMatrixPrecomputed(b *testing.B) {
	st, _ := benchWorld(b)
	spec := benchSpec(b, st, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.Engine.DVFDP(context.Background(), spec, core.FDPOptions{Mode: core.Fold, Precompute: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationMatrixLazy(b *testing.B) { benchDVFDP(b, 4, core.Fold) }

// BenchmarkAblationSignature compares the three summarizers' costs.
func BenchmarkAblationSignatureFrequency(b *testing.B) {
	st, _ := benchWorld(b)
	sum := signature.NewFrequency(st.Store)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		signature.SummarizeAll(sum, st.Store, st.Groups)
	}
}

func BenchmarkAblationSignatureTFIDF(b *testing.B) {
	st, _ := benchWorld(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sum := signature.FitTFIDF(st.Store, st.Groups)
		signature.SummarizeAll(sum, st.Store, st.Groups)
	}
}

func BenchmarkAblationSignatureLDAInfer(b *testing.B) {
	st, _ := benchWorld(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		signature.SummarizeAll(st.LDA, st.Store, st.Groups)
	}
}

// --- Substrate micro-benchmarks ---

func BenchmarkSubstrateLDATrain(b *testing.B) {
	st, _ := benchWorld(b)
	for i := 0; i < b.N; i++ {
		if _, err := signature.TrainLDA(st.Store, st.Groups, 8, 40, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSubstrateLSHBuild(b *testing.B) {
	st, _ := benchWorld(b)
	vectors := make([][]float64, len(st.Sigs))
	for i, s := range st.Sigs {
		vectors[i] = s.Weights
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lsh.Build(vectors, lsh.Params{DPrime: 10, L: 1, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSubstrateFDPGreedy(b *testing.B) {
	st, _ := benchWorld(b)
	n := len(st.Sigs)
	dist := func(i, j int) float64 {
		return vec.CosineDistance(st.Sigs[i].Weights, st.Sigs[j].Weights)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fdp.MaxAvg(n, 3, dist, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSubstrateGibbsSweep(b *testing.B) {
	// One LDA training sweep over a fixed corpus, isolating sampler cost.
	docs := make([]lda.Document, 50)
	for d := range docs {
		doc := make(lda.Document, 40)
		for i := range doc {
			doc[i] = (d*7 + i) % 200
		}
		docs[d] = doc
	}
	corpus := lda.Corpus{Docs: docs, VocabSize: 200}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lda.Train(corpus, lda.Config{Topics: 8, Iterations: 1, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Extension benchmarks: parallel exact, incremental inserts, queries,
// persistence ---

func BenchmarkExactSerial(b *testing.B) {
	_, ex := benchWorld(b)
	st, _ := benchWorld(b)
	spec := benchSpec(b, st, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ex.Exact(context.Background(), spec, core.ExactOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExactSerialNoPruning measures the retained full-enumeration
// oracle, so the trajectory records the branch-and-bound speedup as the
// Serial/SerialNoPruning ratio rather than losing the baseline.
func BenchmarkExactSerialNoPruning(b *testing.B) {
	_, ex := benchWorld(b)
	st, _ := benchWorld(b)
	spec := benchSpec(b, st, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ex.Exact(context.Background(), spec, core.ExactOptions{DisablePruning: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExactParallel(b *testing.B) {
	_, ex := benchWorld(b)
	st, _ := benchWorld(b)
	spec := benchSpec(b, st, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ex.Exact(context.Background(), spec, core.ExactOptions{Parallel: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIncrementalInsert measures per-insert maintenance cost
// (store append + group routing) without signature refresh.
func BenchmarkIncrementalInsert(b *testing.B) {
	cfg := datagen.Small()
	world, err := datagen.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	s, err := store.New(world.Dataset)
	if err != nil {
		b.Fatal(err)
	}
	m, err := incremental.New(world.Dataset, 5, signature.NewFrequency(s))
	if err != nil {
		b.Fatal(err)
	}
	tag := world.Dataset.Vocab.ID("tag-00-0000")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := model.TaggingAction{
			User: int32(i % cfg.Users),
			Item: int32(i % cfg.Items),
			Tags: []model.TagID{tag},
		}
		if err := m.Insert(a); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIncrementalRefresh measures the cost of re-summarizing after a
// batch of 100 inserts, amortized.
func BenchmarkIncrementalRefresh(b *testing.B) {
	cfg := datagen.Small()
	world, err := datagen.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	s, err := store.New(world.Dataset)
	if err != nil {
		b.Fatal(err)
	}
	m, err := incremental.New(world.Dataset, 5, signature.NewFrequency(s))
	if err != nil {
		b.Fatal(err)
	}
	tag := world.Dataset.Vocab.ID("tag-00-0000")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 100; j++ {
			a := model.TaggingAction{
				User: int32((i*100 + j) % cfg.Users),
				Item: int32((i*100 + j) % cfg.Items),
				Tags: []model.TagID{tag},
			}
			if err := m.Insert(a); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := m.Refresh(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Pair-matrix scoring layer: naive vs matrix vs incremental ---

// benchObjectiveSpec is a fixed problem-1 spec and a fixed candidate set
// over the Exact engine, shared by the objective-evaluation benchmarks.
func benchObjectiveWorld(b *testing.B) (*core.Engine, core.ProblemSpec, []*groups.Group, []int) {
	b.Helper()
	st, ex := benchWorld(b)
	spec := benchSpec(b, st, 1)
	ids := []int{1, 5, 9}
	set := make([]*groups.Group, len(ids))
	for i, id := range ids {
		set[i] = ex.Groups[id]
	}
	ex.PrewarmMatrices(spec)
	return ex, spec, set, ids
}

// BenchmarkObjectiveEvalNaive is the pre-matrix path: every call re-runs
// the pair functions over all pairs and allocates a scores slice.
func BenchmarkObjectiveEvalNaive(b *testing.B) {
	ex, spec, set, _ := benchObjectiveWorld(b)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ex.ObjectiveScore(set, spec)
	}
}

// BenchmarkObjectiveEvalMatrix reads precomputed pair values: no pair
// function calls, no allocation.
func BenchmarkObjectiveEvalMatrix(b *testing.B) {
	ex, _, _, ids := benchObjectiveWorld(b)
	f := mining.Func{Agg: mining.Mean}
	m := ex.PairMatrix(mining.Tags, mining.Similarity)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.EvalMatrix(m, ids)
	}
}

// BenchmarkObjectiveEvalIncremental is the Exact hot loop's shape: extend
// a 2-set by one group (O(k) lookups), read the mean, backtrack.
func BenchmarkObjectiveEvalIncremental(b *testing.B) {
	ex, _, _, ids := benchObjectiveWorld(b)
	m := ex.PairMatrix(mining.Tags, mining.Similarity)
	inc := mining.NewIncrementalEval(m, len(ids))
	inc.Push(ids[0])
	inc.Push(ids[1])
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		inc.Push(ids[2])
		_ = inc.Mean()
		inc.Pop()
	}
}

// --- Support kernels: Clone+Or vs allocation-free union ---

func benchSupportSets(b *testing.B) [][]*store.Bitmap {
	b.Helper()
	_, ex := benchWorld(b)
	sets := make([][]*store.Bitmap, 0, 32)
	for i := 0; i+3 <= len(ex.Groups); i += 3 {
		sets = append(sets, []*store.Bitmap{
			ex.Groups[i].Tuples, ex.Groups[i+1].Tuples, ex.Groups[i+2].Tuples,
		})
		if len(sets) == 32 {
			break
		}
	}
	return sets
}

// BenchmarkSupportClone is the pre-kernel path: Clone the first bitmap,
// Or the rest in, Count.
func BenchmarkSupportClone(b *testing.B) {
	sets := benchSupportSets(b)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		maps := sets[i%len(sets)]
		u := maps[0].Clone()
		for _, m := range maps[1:] {
			u.Or(m)
		}
		_ = u.Count()
	}
}

// BenchmarkSupportUnionInto accumulates into one reusable buffer with
// counts folded into the union pass.
func BenchmarkSupportUnionInto(b *testing.B) {
	st, _ := benchWorld(b)
	sets := benchSupportSets(b)
	scratch := store.NewBitmap(st.Store.Len())
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		maps := sets[i%len(sets)]
		count := maps[0].UnionCountInto(maps[1], scratch)
		for _, m := range maps[2:] {
			count = scratch.UnionCountInto(m, scratch)
		}
		_ = count
	}
}

// --- Sparse-corpus union kernels: dense words vs containers ---
//
// The dense layout pays O(universe/64) per union pass regardless of how
// few ids are set; the container-compressed layout pays per occupied
// container. These benchmarks pin the acceptance criterion for the
// compressed layout: at <= 1% density over a 1M-id universe, OrCount and
// UnionCountInto must beat the dense-word baseline by at least 3x.

const sparseUniverse = 1 << 20

// benchSparseBitmaps builds triples of random bitmaps over a 1M-id
// universe at the given cardinality, in the requested layout. Keep the
// fixture in lockstep with runSparse in cmd/tagdm-bench, which records
// the same matrix as a JSON-lines performance trajectory.
func benchSparseBitmaps(card int, compressed bool) [][3]*store.Bitmap {
	rng := rand.New(rand.NewSource(11))
	sets := make([][3]*store.Bitmap, 8)
	for i := range sets {
		for j := 0; j < 3; j++ {
			bm := store.NewBitmap(sparseUniverse)
			for k := 0; k < card; k++ {
				bm.Set(rng.Intn(sparseUniverse))
			}
			if compressed {
				bm.ToCompressed()
			}
			sets[i][j] = bm
		}
	}
	return sets
}

func sparseDensityCases() []struct {
	name string
	card int
} {
	return []struct {
		name string
		card int
	}{
		// 0.01% is the shape of real group tuple sets (tens to hundreds of
		// tuples over a paper-scale corpus); 0.1% and 1% bound the regime
		// where the compression policy still picks containers.
		{"density=0.01pct", sparseUniverse / 10000},
		{"density=0.1pct", sparseUniverse / 1000},
		{"density=1pct", sparseUniverse / 100},
	}
}

func BenchmarkSparseOrCount(b *testing.B) {
	for _, d := range sparseDensityCases() {
		for _, layout := range []string{"dense", "compressed"} {
			sets := benchSparseBitmaps(d.card, layout == "compressed")
			b.Run(d.name+"/"+layout, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					maps := sets[i%len(sets)]
					_ = maps[0].OrCount(maps[1])
				}
			})
		}
	}
}

func BenchmarkSparseUnionCountInto(b *testing.B) {
	for _, d := range sparseDensityCases() {
		for _, layout := range []string{"dense", "compressed"} {
			compressed := layout == "compressed"
			sets := benchSparseBitmaps(d.card, compressed)
			newBuf := store.NewBitmap
			if compressed {
				newBuf = store.NewCompressedBitmap
			}
			// Two per-depth buffers, as in the Exact DFS: each union level
			// derives from its parent into a distinct reusable buffer.
			u1, u2 := newBuf(sparseUniverse), newBuf(sparseUniverse)
			b.Run(d.name+"/"+layout, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					maps := sets[i%len(sets)]
					_ = maps[0].UnionCountInto(maps[1], u1)
					_ = u1.UnionCountInto(maps[2], u2)
				}
			})
		}
	}
}

func BenchmarkQueryParse(b *testing.B) {
	const q = "ANALYZE MAXIMIZE diversity(tags), diversity(users) * 0.5 SUBJECT TO similarity(items) >= 0.4 WHERE gender=male AND state=CA WITH k=4, support=1%"
	for i := 0; i < b.N; i++ {
		if _, err := query.Parse(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAnalysisSaveLoad(b *testing.B) {
	ds, err := GenerateDataset(SmallGenerateConfig())
	if err != nil {
		b.Fatal(err)
	}
	a, err := NewAnalysis(ds, Options{Signatures: SignatureFrequency})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := a.Save(&buf); err != nil {
			b.Fatal(err)
		}
		if _, err := LoadAnalysis(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKSweepK4(b *testing.B) {
	st, _ := benchWorld(b)
	p := experiments.PaperParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.KSweep(st, p, []int{4}); err != nil {
			b.Fatal(err)
		}
	}
}
