// Command streaming demonstrates incremental analysis (the paper's
// Section 8 future work): tagging actions arrive over time, the group
// universe is maintained in place, and the same mining problem is re-asked
// as the data grows — watching a diversity pattern emerge.
package main

import (
	"fmt"
	"log"

	"tagdm"
)

func main() {
	ds := tagdm.NewDataset(
		tagdm.NewSchema("gender"),
		tagdm.NewSchema("genre"),
	)
	male, err := ds.AddUser(map[string]string{"gender": "male"})
	if err != nil {
		log.Fatal(err)
	}
	female, err := ds.AddUser(map[string]string{"gender": "female"})
	if err != nil {
		log.Fatal(err)
	}
	action, err := ds.AddItem(map[string]string{"genre": "action"})
	if err != nil {
		log.Fatal(err)
	}
	// Register the tag vocabulary up front so the frequency signature
	// space is stable across the stream.
	for _, t := range []string{"gun", "effects", "violence", "gory"} {
		ds.Vocab.ID(t)
	}
	// Seed the corpus with a handful of male tagging actions.
	for i := 0; i < 5; i++ {
		if err := ds.AddAction(male, action, 0, "gun", "effects"); err != nil {
			log.Fatal(err)
		}
	}

	m, err := tagdm.NewMaintainer(ds, tagdm.Options{
		Signatures:     tagdm.SignatureFrequency,
		MinGroupTuples: 5,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Problem 6: same users-ish, same items, maximally diverse tags.
	spec, err := tagdm.Problem(6, 2, 5, 0.0, 0.5)
	if err != nil {
		log.Fatal(err)
	}

	report := func(when string) {
		res, err := m.Solve(spec)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s groups=%d actions=%d ", when, m.NumGroups(), m.NumActions())
		if !res.Found {
			fmt.Println("-> no contrast yet")
			return
		}
		fmt.Printf("-> %s contrast %.2f: %v\n", res.Algorithm, res.Objective, m.Describe(res))
	}

	report("initial (male only)")

	// Female tagging actions stream in; after five, the female-action
	// group crosses the threshold and the gender contrast appears.
	femaleTags := []string{"violence", "gory"}
	for i := 0; i < 5; i++ {
		if err := m.Insert(female, action, 0, femaleTags[i%2]); err != nil {
			log.Fatal(err)
		}
		report(fmt.Sprintf("after female insert %d", i+1))
	}
}
