// Command quickstart is the smallest end-to-end TagDM run: build a tiny
// hand-written dataset, mine a tag-similarity and a tag-diversity problem,
// and print the describable groups the framework finds.
package main

import (
	"fmt"
	"log"

	"tagdm"
)

func main() {
	ds := tagdm.NewDataset(
		tagdm.NewSchema("gender", "age"),
		tagdm.NewSchema("genre", "director"),
	)

	// Two user profiles, two items, strongly themed tags.
	type userSpec struct{ gender, age string }
	users := []userSpec{
		{"male", "teen"}, {"male", "teen"},
		{"female", "teen"}, {"female", "teen"},
	}
	var uids []int32
	for _, u := range users {
		id, err := ds.AddUser(map[string]string{"gender": u.gender, "age": u.age})
		if err != nil {
			log.Fatal(err)
		}
		uids = append(uids, id)
	}
	action, err := ds.AddItem(map[string]string{"genre": "action", "director": "cameron"})
	if err != nil {
		log.Fatal(err)
	}
	drama, err := ds.AddItem(map[string]string{"genre": "drama", "director": "cameron"})
	if err != nil {
		log.Fatal(err)
	}

	add := func(u, i int32, tags ...string) {
		if err := ds.AddAction(u, i, 0, tags...); err != nil {
			log.Fatal(err)
		}
	}
	// Teen males tag the action movie with effects vocabulary...
	for n := 0; n < 5; n++ {
		add(uids[n%2], action, "gun", "special effects")
	}
	// ...teen females tag the same movie very differently...
	for n := 0; n < 5; n++ {
		add(uids[2+n%2], action, "violence", "gory")
	}
	// ...and both tag the drama alike.
	for n := 0; n < 5; n++ {
		add(uids[n%2], drama, "moving", "deep")
		add(uids[2+n%2], drama, "moving", "tears")
	}

	a, err := tagdm.NewAnalysis(ds, tagdm.Options{
		Signatures:     tagdm.SignatureFrequency,
		MinGroupTuples: 5,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %d actions across %d describable groups\n\n",
		a.NumActions(), a.NumGroups())

	// Problem 4 of the paper: diverse users, similar items, maximally
	// diverse tags — "who disagrees about the same thing?"
	spec, err := tagdm.Problem(4, 2, 5, 0.4, 0.4)
	if err != nil {
		log.Fatal(err)
	}
	res, err := a.Solve(spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s (%s): objective %.3f\n", spec.Name, res.Algorithm, res.Objective)
	for i, desc := range a.Describe(res) {
		fmt.Printf("  %s  tags: %s\n", desc, a.GroupCloud(res, i, 4))
	}
	fmt.Println()

	// Problem 1: similar users, similar items, maximally similar tags —
	// "who agrees about the same thing?" At this toy scale the exact
	// brute force is instant, so use it for the provably optimal answer.
	spec1, err := tagdm.Problem(1, 2, 5, 0.4, 0.4)
	if err != nil {
		log.Fatal(err)
	}
	res1, err := a.Exact(spec1, tagdm.ExactOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s (%s): objective %.3f\n", spec1.Name, res1.Algorithm, res1.Objective)
	for i, desc := range a.Describe(res1) {
		fmt.Printf("  %s  tags: %s\n", desc, a.GroupCloud(res1, i, 4))
	}
}
