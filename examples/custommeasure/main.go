// Command custommeasure shows the framework's extension points: a
// caller-provided tag Summarizer (the paper stresses that no particular
// summarization or comparison method is mandated) and a problem spec built
// directly from constraints and objectives instead of the six canned
// Table 1 instances.
package main

import (
	"fmt"
	"log"
	"sort"

	"tagdm"
)

// prefixSummarizer is a toy custom summarizer: it buckets tags by their
// first letter, producing a 26-dimensional signature. Real users would plug
// in an embedding model, an ontology mapper (the paper mentions OpenCalais
// and WordNet), or any other house method.
type prefixSummarizer struct {
	corpus *tagdm.Dataset
}

func (p *prefixSummarizer) Dim() int     { return 26 }
func (p *prefixSummarizer) Name() string { return "first-letter-buckets" }

func (p *prefixSummarizer) Summarize(s *tagdm.Store, g *tagdm.Group) tagdm.Signature {
	w := make([]float64, 26)
	for tag, n := range tagdm.GroupTagBag(s, g) {
		name := s.Vocab.Tag(tag)
		if len(name) == 0 {
			continue
		}
		c := name[0]
		if c >= 'a' && c <= 'z' {
			w[c-'a'] += float64(n)
		}
	}
	return tagdm.Signature{Weights: w}
}

func main() {
	ds, err := tagdm.GenerateDataset(tagdm.SmallGenerateConfig())
	if err != nil {
		log.Fatal(err)
	}
	a, err := tagdm.NewAnalysis(ds, tagdm.Options{
		CustomSummarizer: &prefixSummarizer{corpus: ds},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("analysis over %d groups with a custom %q summarizer\n\n",
		a.NumGroups(), "first-letter-buckets")

	// A hand-built spec outside Table 1: maximize user diversity AND tag
	// diversity jointly, constrained only on item similarity — one of the
	// 98 optimizable instances the framework captures.
	spec := tagdm.ProblemSpec{
		Name: "custom: diverse users + diverse tags over similar items",
		KLo:  1, KHi: 3,
		MinSupport: a.NumActions() / 200,
		Constraints: []tagdm.Constraint{
			{Dim: tagdm.DimItems, Meas: tagdm.MeasureSimilarity, Threshold: 0.3},
		},
		Objectives: []tagdm.Objective{
			{Dim: tagdm.DimUsers, Meas: tagdm.MeasureDiversity, Weight: 0.5},
			{Dim: tagdm.DimTags, Meas: tagdm.MeasureDiversity, Weight: 1.0},
		},
	}
	res, err := a.Solve(spec)
	if err != nil {
		log.Fatal(err)
	}
	if !res.Found {
		fmt.Println("no feasible group set under these constraints")
		return
	}
	fmt.Printf("%s\nalgorithm %s, objective %.3f, support %d\n",
		spec.Name, res.Algorithm, res.Objective, res.Support)
	descs := a.Describe(res)
	sort.Strings(descs)
	for i, d := range descs {
		fmt.Printf("  %s\n    tags: %s\n", d, a.GroupCloud(res, i, 5))
	}
}
