// Command tagcloud reproduces the paper's Figures 1 and 2: the frequency
// tag cloud ("tag signature") of one director's movies as seen by all
// users, next to the cloud of the same movies as seen by users from a
// single state — the contrast that motivates the whole framework.
package main

import (
	"fmt"
	"log"

	"tagdm"
)

func main() {
	ds, err := tagdm.GenerateDataset(tagdm.SmallGenerateConfig())
	if err != nil {
		log.Fatal(err)
	}
	a, err := tagdm.NewAnalysis(ds, tagdm.Options{Signatures: tagdm.SignatureFrequency})
	if err != nil {
		log.Fatal(err)
	}

	// Pick the director with the most tagging actions so both clouds are
	// well populated.
	director := busiestValue(ds, "director")
	all, err := a.Cloud(map[string]string{"director": director}, 12)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Figure 1 — tag signature for director=%s, all users:\n  %s\n\n", director, all)

	// Find the state most active on this director's movies by probing
	// candidate states; the paper contrasts all users against CA users.
	state, cloud := "", ""
	for _, s := range ds.UserSchema.AttrByName("state").Values() {
		c, err := a.Cloud(map[string]string{"director": director, "state": s}, 12)
		if err != nil {
			log.Fatal(err)
		}
		if len(c) > len(cloud) {
			state, cloud = s, c
		}
	}
	fmt.Printf("Figure 2 — tag signature for director=%s, state=%s users:\n  %s\n",
		director, state, cloud)
	fmt.Println("\nupper-case tags are the most frequent bucket; counts in parentheses")
}

// busiestValue returns the value of the named item attribute with the most
// tagging actions.
func busiestValue(ds *tagdm.Dataset, attr string) string {
	counts := map[tagdm.ValueCode]int{}
	idx := ds.ItemSchema.AttrIndex(attr)
	for _, act := range ds.Actions {
		counts[ds.Items[act.Item].Attrs[idx]]++
	}
	best, bestN := "", -1
	for code, n := range counts {
		v := ds.ItemSchema.Attr(idx).Value(code)
		if n > bestN || (n == bestN && v < best) {
			best, bestN = v, n
		}
	}
	return best
}
