// Command movielens reproduces the paper's case studies (Section 6.2.1) on
// the synthetic MovieLens-like corpus: it scopes the analysis to a query
// such as "movies by the most-tagged director" or "male users", runs all
// six Table 1 problem instances, and prints the group contrasts the paper
// showcases (e.g. two sub-populations tagging the same movies with
// entirely different vocabularies).
package main

import (
	"flag"
	"fmt"
	"log"

	"tagdm"
)

func main() {
	full := flag.Bool("full", false, "use the paper-scale corpus (slower)")
	flag.Parse()

	cfg := tagdm.SmallGenerateConfig()
	topics := 8
	if *full {
		cfg = tagdm.DefaultGenerateConfig()
		topics = 25
	}
	ds, err := tagdm.GenerateDataset(cfg)
	if err != nil {
		log.Fatal(err)
	}
	stats := ds.Stats()
	fmt.Printf("corpus: %d users, %d items, %d tagging actions, %d tags\n\n",
		stats.Users, stats.Items, stats.Actions, stats.VocabSize)

	// Case study 1: analyze tagging behavior scoped to one gender,
	// mirroring "analyze tagging behavior of {gender=male} users".
	gender := ds.UserSchema.AttrByName("gender").Value(1)
	fmt.Printf("case study: tagging behavior of {gender=%s} users\n", gender)
	scoped, err := tagdm.NewAnalysis(ds, tagdm.Options{
		Topics:        topics,
		LDAIterations: 80,
		Within:        map[string]string{"gender": gender},
	})
	if err != nil {
		log.Fatal(err)
	}
	runAll(scoped)

	// Case study 2: analyze user behavior over one genre, mirroring
	// "analyze user tagging behavior for {genre=drama} movies".
	genre := ds.ItemSchema.AttrByName("genre").Value(1)
	fmt.Printf("\ncase study: user tagging behavior for {genre=%s} movies\n", genre)
	byGenre, err := tagdm.NewAnalysis(ds, tagdm.Options{
		Topics:        topics,
		LDAIterations: 80,
		Within:        map[string]string{"genre": genre},
	})
	if err != nil {
		log.Fatal(err)
	}
	runAll(byGenre)
}

func runAll(a *tagdm.Analysis) {
	fmt.Printf("  %d groups over %d actions\n", a.NumGroups(), a.NumActions())
	support := a.NumActions() / 100
	if support < 5 {
		support = 5
	}
	for id := 1; id <= 6; id++ {
		spec, err := tagdm.Problem(id, 3, support, 0.5, 0.5)
		if err != nil {
			log.Fatal(err)
		}
		res, err := a.Solve(spec)
		if err != nil {
			log.Fatal(err)
		}
		if !res.Found {
			fmt.Printf("  %s: no feasible group set\n", spec.Name)
			continue
		}
		fmt.Printf("  %s (%s, objective %.3f, support %d):\n",
			spec.Name, res.Algorithm, res.Objective, res.Support)
		for i, desc := range a.Describe(res) {
			fmt.Printf("    %s\n      tags: %s\n", desc, a.GroupCloud(res, i, 5))
		}
	}
}
