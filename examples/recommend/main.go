// Command recommend demonstrates a downstream application of the TagDM
// pipeline: suggesting tags for a (user, item) pair from the tagging
// behavior of the user's peer group, with backoff to item-profile peers
// and the global distribution for cold profiles.
package main

import (
	"fmt"
	"log"

	"tagdm"
)

func main() {
	ds, err := tagdm.GenerateDataset(tagdm.SmallGenerateConfig())
	if err != nil {
		log.Fatal(err)
	}
	a, err := tagdm.NewAnalysis(ds, tagdm.Options{Signatures: tagdm.SignatureFrequency})
	if err != nil {
		log.Fatal(err)
	}
	rec := a.Recommender(ds)

	// Suggest tags for the first few tagging-active (user, item) pairs,
	// then for a pair that never interacted (backoff in action).
	fmt.Println("suggestions for observed pairs:")
	seen := map[[2]int32]bool{}
	shown := 0
	for _, act := range ds.Actions {
		key := [2]int32{act.User, act.Item}
		if seen[key] {
			continue
		}
		seen[key] = true
		sugs, err := rec.Suggest(act.User, act.Item, 3)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  user %d x item %d:", act.User, act.Item)
		for _, s := range sugs {
			fmt.Printf(" %s(%d,%s)", s.Tag, s.Count, s.Source)
		}
		fmt.Println()
		if shown++; shown == 5 {
			break
		}
	}

	fmt.Println("\nsuggestion for an unobserved pair (backoff):")
	sugs, err := rec.Suggest(int32(len(ds.Users)-1), int32(len(ds.Items)-1), 3)
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range sugs {
		fmt.Printf("  %s (count %d, source %s)\n", s.Tag, s.Count, s.Source)
	}
}
