package tagdm

import (
	"testing"
)

func streamWorld(t *testing.T) (*Dataset, int32, int32, int32) {
	t.Helper()
	ds := NewDataset(NewSchema("gender"), NewSchema("genre"))
	male, err := ds.AddUser(map[string]string{"gender": "male"})
	if err != nil {
		t.Fatal(err)
	}
	female, err := ds.AddUser(map[string]string{"gender": "female"})
	if err != nil {
		t.Fatal(err)
	}
	item, err := ds.AddItem(map[string]string{"genre": "action"})
	if err != nil {
		t.Fatal(err)
	}
	for _, tag := range []string{"gun", "violence"} {
		ds.Vocab.ID(tag)
	}
	for i := 0; i < 5; i++ {
		if err := ds.AddAction(male, item, 0, "gun"); err != nil {
			t.Fatal(err)
		}
	}
	return ds, male, female, item
}

func TestMaintainerValidation(t *testing.T) {
	ds, _, _, _ := streamWorld(t)
	if _, err := NewMaintainer(ds, Options{Within: map[string]string{"gender": "male"}, Signatures: SignatureFrequency}); err == nil {
		t.Fatal("Within accepted for a stream")
	}
	if _, err := NewMaintainer(ds, Options{Signatures: SignatureLDA}); err == nil {
		t.Fatal("LDA without custom summarizer accepted")
	}
}

func TestMaintainerInsertAndSolve(t *testing.T) {
	ds, _, female, item := streamWorld(t)
	m, err := NewMaintainer(ds, Options{Signatures: SignatureFrequency, MinGroupTuples: 5})
	if err != nil {
		t.Fatal(err)
	}
	if m.NumGroups() != 1 || m.NumActions() != 5 {
		t.Fatalf("initial state: %d groups, %d actions", m.NumGroups(), m.NumActions())
	}
	spec, err := Problem(6, 2, 5, 0.0, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := m.Insert(female, item, 0, "violence"); err != nil {
			t.Fatal(err)
		}
	}
	if m.NumGroups() != 2 {
		t.Fatalf("groups after stream = %d", m.NumGroups())
	}
	res, err := m.Solve(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found || len(res.Groups) != 2 {
		t.Fatalf("found=%v groups=%d", res.Found, len(res.Groups))
	}
	if res.Objective < 0.9 {
		t.Fatalf("disjoint tag sets should be near-fully diverse, got %v", res.Objective)
	}
	descs := m.Describe(res)
	if len(descs) != 2 {
		t.Fatal("describe mismatch")
	}
}

func TestMaintainerRejectsUnknownUser(t *testing.T) {
	ds, _, _, item := streamWorld(t)
	m, err := NewMaintainer(ds, Options{Signatures: SignatureFrequency, MinGroupTuples: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Insert(99, item, 0, "x"); err == nil {
		t.Fatal("unknown user accepted")
	}
}
