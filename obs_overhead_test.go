package tagdm

// Tracing must be effectively free: BenchmarkExactSerialTraced mirrors
// BenchmarkExactSerial with a live span collector attached, and
// TestTracedExactOverhead pins the gap below 5% using min-of-runs so the
// guard survives scheduler noise. Span recording with NO collector in the
// context is separately pinned allocation-free in internal/obs.

import (
	"context"
	"testing"
	"time"

	"tagdm/internal/core"
	"tagdm/internal/obs"
)

// BenchmarkExactSerialTraced solves the same problem as BenchmarkExactSerial
// but under a fresh root span each iteration, so the solver records its
// matrix/enumerate child spans with wall and CPU timings. The delta against
// BenchmarkExactSerial is the full instrumentation cost.
func BenchmarkExactSerialTraced(b *testing.B) {
	_, ex := benchWorld(b)
	st, _ := benchWorld(b)
	spec := benchSpec(b, st, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		root := obs.NewTrace("bench")
		if _, err := ex.Exact(obs.WithSpan(context.Background(), root), spec, core.ExactOptions{}); err != nil {
			b.Fatal(err)
		}
		root.End()
	}
}

// exactRun times iters back-to-back Exact solves under contexts produced by
// ctxFor and returns the total wall time.
func exactRun(t testing.TB, ex *core.Engine, spec core.ProblemSpec, ctxFor func() (context.Context, *obs.Span), iters int) time.Duration {
	start := time.Now()
	for i := 0; i < iters; i++ {
		ctx, root := ctxFor()
		if _, err := ex.Exact(ctx, spec, core.ExactOptions{}); err != nil {
			t.Fatal(err)
		}
		root.End()
	}
	return time.Since(start)
}

// TestTracedExactOverhead asserts that solving with a span collector attached
// costs less than 5% over the untraced path. Minimum-of-runs on both sides
// filters scheduler noise, and the comparison retries before failing so a
// single noisy interval cannot produce a spurious regression report.
func TestTracedExactOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive; skipped in -short")
	}
	if raceEnabled {
		t.Skip("timing-sensitive; skipped under -race")
	}

	_, ex := benchWorld(t)
	st, _ := benchWorld(t)
	spec := benchSpec(t, st, 1)

	untraced := func() (context.Context, *obs.Span) {
		return context.Background(), nil
	}
	traced := func() (context.Context, *obs.Span) {
		root := obs.NewTrace("bench")
		return obs.WithSpan(context.Background(), root), root
	}

	// Warm the engine's pair-matrix cache so both sides measure steady state,
	// then size a run to ~50ms so one timing quantum cannot dominate.
	exactRun(t, ex, spec, untraced, 2)
	per := exactRun(t, ex, spec, untraced, 1)
	iters := int(50*time.Millisecond/per) + 1
	if iters > 2000 {
		iters = 2000
	}

	const runs = 5
	const budget = 1.05
	var ratio float64
	for attempt := 1; attempt <= 3; attempt++ {
		base, withSpans := time.Duration(1<<62), time.Duration(1<<62)
		for r := 0; r < runs; r++ {
			if d := exactRun(t, ex, spec, untraced, iters); d < base {
				base = d
			}
			if d := exactRun(t, ex, spec, traced, iters); d < withSpans {
				withSpans = d
			}
		}
		ratio = float64(withSpans) / float64(base)
		if ratio <= budget {
			t.Logf("traced/untraced = %.4f over %d iterations (attempt %d)", ratio, iters, attempt)
			return
		}
		t.Logf("attempt %d: traced/untraced = %.4f > %.2f, retrying", attempt, ratio, budget)
	}
	t.Fatalf("traced Exact solve is %.1f%% slower than untraced, budget is 5%%", (ratio-1)*100)
}
