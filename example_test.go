package tagdm_test

import (
	"fmt"
	"log"

	"tagdm"
)

// Example mines the "who disagrees about the same thing?" question
// (Table 1, Problem 4) on a tiny hand-built corpus: teen males and teen
// females tag the same action movie with disjoint vocabularies, and the
// framework surfaces exactly that contrast.
func Example() {
	ds := tagdm.NewDataset(
		tagdm.NewSchema("gender", "age"),
		tagdm.NewSchema("genre"),
	)
	male, _ := ds.AddUser(map[string]string{"gender": "male", "age": "teen"})
	female, _ := ds.AddUser(map[string]string{"gender": "female", "age": "teen"})
	movie, _ := ds.AddItem(map[string]string{"genre": "action"})
	for i := 0; i < 5; i++ {
		if err := ds.AddAction(male, movie, 0, "gun", "special effects"); err != nil {
			log.Fatal(err)
		}
		if err := ds.AddAction(female, movie, 0, "violence", "gory"); err != nil {
			log.Fatal(err)
		}
	}

	a, err := tagdm.NewAnalysis(ds, tagdm.Options{Signatures: tagdm.SignatureFrequency})
	if err != nil {
		log.Fatal(err)
	}
	spec, err := tagdm.Problem(4, 2, 5, 0.4, 0.4)
	if err != nil {
		log.Fatal(err)
	}
	res, err := a.Solve(spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("objective %.2f\n", res.Objective)
	for _, desc := range a.Describe(res) {
		fmt.Println(desc)
	}
	// Output:
	// objective 1.00
	// {gender=female, age=teen, genre=action}
	// {gender=male, age=teen, genre=action}
}

// ExampleRunQuery shows the declarative query interface.
func ExampleRunQuery() {
	ds := tagdm.NewDataset(tagdm.NewSchema("gender"), tagdm.NewSchema("genre"))
	m, _ := ds.AddUser(map[string]string{"gender": "male"})
	f, _ := ds.AddUser(map[string]string{"gender": "female"})
	movie, _ := ds.AddItem(map[string]string{"genre": "action"})
	for i := 0; i < 5; i++ {
		if err := ds.AddAction(m, movie, 0, "gun"); err != nil {
			log.Fatal(err)
		}
		if err := ds.AddAction(f, movie, 0, "gory"); err != nil {
			log.Fatal(err)
		}
	}
	a, res, err := tagdm.RunQuery(ds,
		"ANALYZE MAXIMIZE diversity(tags) SUBJECT TO similarity(items) >= 0.5 WITH k=2, support=10",
		tagdm.Options{Signatures: tagdm.SignatureFrequency})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("found=%v support=%d groups=%d\n", res.Found, res.Support, a.NumGroups())
	// Output:
	// found=true support=10 groups=2
}
