package tagdm

import (
	"bytes"
	"testing"
)

func TestAnalysisSaveLoadRoundTrip(t *testing.T) {
	ds := smallDataset(t)
	orig, err := NewAnalysis(ds, Options{Signatures: SignatureFrequency})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadAnalysis(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumGroups() != orig.NumGroups() {
		t.Fatalf("groups: %d vs %d", loaded.NumGroups(), orig.NumGroups())
	}
	if loaded.NumActions() != orig.NumActions() {
		t.Fatalf("actions: %d vs %d", loaded.NumActions(), orig.NumActions())
	}
	// Same problems must yield identical objectives (signatures and group
	// order are preserved; the algorithms are deterministic given a seed).
	for id := 1; id <= 6; id++ {
		spec, _ := Problem(id, 3, 10, 0.4, 0.4)
		a, err := orig.Solve(spec)
		if err != nil {
			t.Fatal(err)
		}
		b, err := loaded.Solve(spec)
		if err != nil {
			t.Fatal(err)
		}
		if a.Found != b.Found {
			t.Fatalf("problem %d: found %v vs %v", id, a.Found, b.Found)
		}
		if a.Found && a.Objective != b.Objective {
			t.Fatalf("problem %d: objective %v vs %v", id, a.Objective, b.Objective)
		}
	}
}

func TestAnalysisSaveLoadWithScope(t *testing.T) {
	ds := smallDataset(t)
	gender := ds.UserSchema.AttrByName("gender").Value(1)
	orig, err := NewAnalysis(ds, Options{
		Signatures: SignatureFrequency,
		Within:     map[string]string{"gender": gender},
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadAnalysis(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumGroups() != orig.NumGroups() {
		t.Fatalf("scoped groups: %d vs %d", loaded.NumGroups(), orig.NumGroups())
	}
	if loaded.NumActions() != orig.NumActions() {
		t.Fatalf("scoped actions: %d vs %d", loaded.NumActions(), orig.NumActions())
	}
}

func TestLoadAnalysisRejectsGarbage(t *testing.T) {
	if _, err := LoadAnalysis(bytes.NewBufferString("junk")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestLoadAnalysisRejectsTruncationAtEveryByte(t *testing.T) {
	ds := smallDataset(t)
	orig, err := NewAnalysis(ds, Options{Signatures: SignatureFrequency})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Every strict prefix must be rejected with an error — never a panic,
	// never a silently-partial Analysis.
	for n := 0; n < len(full); n++ {
		if _, err := LoadAnalysis(bytes.NewReader(full[:n])); err == nil {
			t.Fatalf("truncation at byte %d of %d accepted", n, len(full))
		}
	}
	// Sanity: the untruncated snapshot still loads.
	if _, err := LoadAnalysis(bytes.NewReader(full)); err != nil {
		t.Fatalf("full snapshot rejected: %v", err)
	}
}

func TestLoadAnalysisRejectsCorruption(t *testing.T) {
	ds := smallDataset(t)
	orig, err := NewAnalysis(ds, Options{Signatures: SignatureFrequency})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Flip one bit in the payload region (past the 20-byte envelope
	// header): the CRC must catch it.
	corrupt := bytes.Clone(full)
	corrupt[len(corrupt)/2] ^= 0x01
	if _, err := LoadAnalysis(bytes.NewReader(corrupt)); err == nil {
		t.Fatal("bit flip accepted")
	}
	// Wrong magic (e.g. a v1 file or a checkpoint file) is rejected with a
	// magic error, not a gob failure deep in decode.
	wrong := bytes.Clone(full)
	copy(wrong, "notmagic")
	if _, err := LoadAnalysis(bytes.NewReader(wrong)); err == nil {
		t.Fatal("wrong magic accepted")
	}
}

func TestAnalysisSaveLoadLDA(t *testing.T) {
	// LDA signatures survive the round trip verbatim even though the
	// model itself is not persisted.
	ds := smallDataset(t)
	orig, err := NewAnalysis(ds, Options{Topics: 8, LDAIterations: 40})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadAnalysis(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range orig.sigs {
		a, b := orig.sigs[i].Weights, loaded.sigs[i].Weights
		if len(a) != len(b) {
			t.Fatalf("sig %d length changed", i)
		}
		for k := range a {
			if a[k] != b[k] {
				t.Fatalf("sig %d weight %d changed", i, k)
			}
		}
	}
}
