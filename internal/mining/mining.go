// Package mining implements the dual mining functions of the TagDM
// framework (paper Definitions 2 and 3): pair-wise comparison functions Fp
// over tagging action groups for each behavior dimension (users, items,
// tags) under each criterion (similarity, diversity), plus the pair-wise
// aggregation Fpa that lifts Fp to sets of groups.
//
// The paper emphasizes that no single measure is advocated; concrete
// measures plug in through the PairFunc type. This package supplies the
// measures used in the paper's experiments — structural attribute distance
// for users and items, Jaccard set distance as an alternative, and cosine
// over group tag signatures — all normalized into [0, 1].
package mining

import (
	"fmt"

	"tagdm/internal/groups"
	"tagdm/internal/signature"
	"tagdm/internal/store"
	"tagdm/internal/vec"
)

// Dimension is a tagging behavior dimension b (Definition 2).
type Dimension uint8

// The three tagging action components.
const (
	Users Dimension = iota
	Items
	Tags
)

func (d Dimension) String() string {
	switch d {
	case Users:
		return "users"
	case Items:
		return "items"
	default:
		return "tags"
	}
}

// Measure is a dual mining criterion m (Definition 2).
type Measure uint8

// The two opposing criteria.
const (
	Similarity Measure = iota
	Diversity
)

func (m Measure) String() string {
	if m == Similarity {
		return "similarity"
	}
	return "diversity"
}

// Invert returns the opposing measure.
func (m Measure) Invert() Measure {
	if m == Similarity {
		return Diversity
	}
	return Similarity
}

// PairFunc is a pair-wise comparison function Fp(g1, g2) in [0, 1]. Higher
// means "more" of whatever the function measures (similarity functions
// return high values for alike groups; diversity functions are typically
// 1 - similarity).
type PairFunc func(g1, g2 *groups.Group) float64

// Aggregator is Fa: it reduces the intermediate pair scores {s1, s2, ...}
// to one float (Definition 3). Mean is the paper's choice (average pairwise
// score); Min gives MAX-MIN-style semantics.
type Aggregator func(scores []float64) float64

// Mean averages the pair scores; of an empty slice it is 0.
func Mean(scores []float64) float64 {
	if len(scores) == 0 {
		return 0
	}
	var s float64
	for _, x := range scores {
		s += x
	}
	return s / float64(len(scores))
}

// Min returns the minimum pair score; of an empty slice it is 0.
func Min(scores []float64) float64 {
	if len(scores) == 0 {
		return 0
	}
	m := scores[0]
	for _, x := range scores[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Func is a concrete dual mining function F(G, b, m): a pair function for a
// dimension/measure binding plus an aggregator.
type Func struct {
	Dim  Dimension
	Meas Measure
	Pair PairFunc
	Agg  Aggregator
}

// Eval computes Fpa over all unordered pairs of gs. A singleton (or empty)
// set scores 0: there is no pair evidence.
func (f Func) Eval(gs []*groups.Group) float64 {
	if len(gs) < 2 {
		return 0
	}
	scores := make([]float64, 0, len(gs)*(len(gs)-1)/2)
	for i := 0; i < len(gs); i++ {
		for j := i + 1; j < len(gs); j++ {
			scores = append(scores, f.Pair(gs[i], gs[j]))
		}
	}
	agg := f.Agg
	if agg == nil {
		agg = Mean
	}
	return agg(scores)
}

// String renders the binding for reports, e.g. "similarity(users)".
func (f Func) String() string { return fmt.Sprintf("%s(%s)", f.Meas, f.Dim) }

// StructuralUser returns the structural pair similarity on the user
// dimension: the fraction of user attributes on which the two group
// descriptions agree (both constrained to the same value). It is the
// Fp(g1, g2, users, similarity) of Section 2.1.1 normalized to [0, 1].
func StructuralUser(s *store.Store) PairFunc {
	n := s.UserSchema.Len()
	return func(g1, g2 *groups.Group) float64 {
		if n == 0 {
			return 0
		}
		match := 0
		for i := 0; i < n; i++ {
			v1, v2 := g1.UserValue(i), g2.UserValue(i)
			if v1 != 0 && v1 == v2 {
				match++
			}
		}
		return float64(match) / float64(n)
	}
}

// StructuralItem is the structural pair similarity on the item dimension.
func StructuralItem(s *store.Store) PairFunc {
	n := s.ItemSchema.Len()
	return func(g1, g2 *groups.Group) float64 {
		if n == 0 {
			return 0
		}
		match := 0
		for i := 0; i < n; i++ {
			v1, v2 := g1.ItemValue(i), g2.ItemValue(i)
			if v1 != 0 && v1 == v2 {
				match++
			}
		}
		return float64(match) / float64(n)
	}
}

// Inverse converts a similarity pair function into the corresponding
// diversity function (1 - sim), as the paper defines diversity measures.
func Inverse(f PairFunc) PairFunc {
	return func(g1, g2 *groups.Group) float64 { return 1 - f(g1, g2) }
}

// JaccardItems returns the set-distance pair similarity of Section 2.1.1:
// |items(g1) ∩ items(g2)| / |items(g1) ∪ items(g2)|. Item sets are
// precomputed per group id for efficiency.
func JaccardItems(s *store.Store, gs []*groups.Group) PairFunc {
	sets := make([]map[int32]struct{}, len(gs))
	for i, g := range gs {
		sets[i] = groups.ItemSet(s, g)
	}
	return func(g1, g2 *groups.Group) float64 {
		return jaccard(sets[g1.ID], sets[g2.ID])
	}
}

// JaccardUsers is the analogous set distance over the groups' user sets.
func JaccardUsers(s *store.Store, gs []*groups.Group) PairFunc {
	sets := make([]map[int32]struct{}, len(gs))
	for i, g := range gs {
		sets[i] = groups.UserSet(s, g)
	}
	return func(g1, g2 *groups.Group) float64 {
		return jaccard(sets[g1.ID], sets[g2.ID])
	}
}

func jaccard(a, b map[int32]struct{}) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 0
	}
	inter := 0
	for x := range a {
		if _, ok := b[x]; ok {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	return float64(inter) / float64(union)
}

// TagCosine returns the pair similarity on the tag dimension: cosine between
// the groups' tag signatures (Section 2.1.2), clamped to [0, 1]. Signatures
// are indexed by group ID.
func TagCosine(sigs []signature.Signature) PairFunc {
	return func(g1, g2 *groups.Group) float64 {
		c := vec.Cosine(sigs[g1.ID].Weights, sigs[g2.ID].Weights)
		if c < 0 {
			c = 0
		}
		return c
	}
}

// For returns the standard pair function for a dimension/measure binding as
// used in the paper's experiments: structural distance on users and items,
// signature cosine on tags, with diversity as the inverse of similarity.
func For(s *store.Store, sigs []signature.Signature, dim Dimension, meas Measure) Func {
	var sim PairFunc
	switch dim {
	case Users:
		sim = StructuralUser(s)
	case Items:
		sim = StructuralItem(s)
	default:
		sim = TagCosine(sigs)
	}
	pair := sim
	if meas == Diversity {
		pair = Inverse(sim)
	}
	return Func{Dim: dim, Meas: meas, Pair: pair, Agg: Mean}
}

// EditDistance is the Levenshtein distance between two strings; the paper
// mentions it as a possible value-level similarity for structural
// comparison with free-text attribute values.
func EditDistance(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	if len(ra) == 0 {
		return len(rb)
	}
	if len(rb) == 0 {
		return len(ra)
	}
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			m := prev[j] + 1              // deletion
			if v := cur[j-1] + 1; v < m { // insertion
				m = v
			}
			if v := prev[j-1] + cost; v < m { // substitution
				m = v
			}
			cur[j] = m
		}
		prev, cur = cur, prev
	}
	return prev[len(rb)]
}

// StringSimilarity converts edit distance to a similarity in [0, 1]:
// 1 - dist/maxLen. Equal strings score 1; disjoint strings approach 0.
func StringSimilarity(a, b string) float64 {
	if a == "" && b == "" {
		return 1
	}
	maxLen := len([]rune(a))
	if l := len([]rune(b)); l > maxLen {
		maxLen = l
	}
	return 1 - float64(EditDistance(a, b))/float64(maxLen)
}
