package mining

import (
	"testing"

	"tagdm/internal/groups"
	"tagdm/internal/model"
	"tagdm/internal/store"
)

// ratingWorld builds two groups tagging overlapping items with ratings:
// group A (male) and group B (female) both tag items 0 and 1; they agree
// on 0 (ratings 4 vs 4.2) and disagree on 1 (1 vs 5). Item 2 is A-only.
func ratingWorld(t *testing.T) (*store.Store, []*groups.Group) {
	t.Helper()
	d := model.NewDataset(model.NewSchema("gender"), model.NewSchema("genre"))
	m, err := d.AddUser(map[string]string{"gender": "male"})
	if err != nil {
		t.Fatal(err)
	}
	f, err := d.AddUser(map[string]string{"gender": "female"})
	if err != nil {
		t.Fatal(err)
	}
	var items []int32
	for i := 0; i < 3; i++ {
		id, err := d.AddItem(map[string]string{"genre": "action"})
		if err != nil {
			t.Fatal(err)
		}
		items = append(items, id)
	}
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(d.AddAction(m, items[0], 4.0, "x"))
	must(d.AddAction(m, items[1], 1.0, "x"))
	must(d.AddAction(m, items[2], 3.0, "x"))
	must(d.AddAction(f, items[0], 4.2, "y"))
	must(d.AddAction(f, items[1], 5.0, "y"))
	s, err := store.New(d)
	if err != nil {
		t.Fatal(err)
	}
	gs := (&groups.Enumerator{Store: s, MinTuples: 1}).FullyDescribed()
	if len(gs) != 2 {
		t.Fatalf("got %d groups", len(gs))
	}
	return s, gs
}

func TestRatingAwareJaccard(t *testing.T) {
	s, gs := ratingWorld(t)
	// Plain Jaccard: common {0, 1}, union {0, 1, 2} -> 2/3.
	plain := JaccardItems(s, gs)
	if got := plain(gs[0], gs[1]); got < 0.66 || got > 0.67 {
		t.Fatalf("plain jaccard = %v", got)
	}
	// Rating-aware with tolerance 0.5: item 1 disagrees (|1-5| > 0.5),
	// so common {0}, union {0, 1, 2} -> 1/3.
	aware := RatingAwareJaccardItems(s, gs, 0.5)
	if got := aware(gs[0], gs[1]); got < 0.33 || got > 0.34 {
		t.Fatalf("rating-aware jaccard = %v", got)
	}
	// Generous tolerance recovers the plain value.
	loose := RatingAwareJaccardItems(s, gs, 10)
	if got := loose(gs[0], gs[1]); got < 0.66 || got > 0.67 {
		t.Fatalf("loose jaccard = %v", got)
	}
	// Symmetry.
	if aware(gs[0], gs[1]) != aware(gs[1], gs[0]) {
		t.Fatal("not symmetric")
	}
	// Self-similarity is 1 (all items common with equal averages).
	if got := aware(gs[0], gs[0]); got != 1 {
		t.Fatalf("self similarity = %v", got)
	}
}

func TestDomainAwareStructural(t *testing.T) {
	s, gs := world(t)
	a := findByDesc(t, s, gs, "director=cameron")
	b := findByDesc(t, s, gs, "director=spielberg")
	// Strict equality: same genre, different director -> 0.5.
	strict := StructuralItem(s)
	if got := strict(a, b); got != 0.5 {
		t.Fatalf("strict = %v", got)
	}
	// A domain table that declares the two directors 80% similar lifts
	// the structural score to (1 + 0.8)/2.
	table := TableValueSimilarity(map[[2]string]float64{
		{"cameron", "spielberg"}: 0.8,
	})
	aware := DomainAwareStructural(s, store.SideItem, table)
	if got := aware(a, b); got != 0.9 {
		t.Fatalf("domain-aware = %v", got)
	}
	// Edit-distance value similarity gives a nonzero cross-value score
	// without any table.
	ed := DomainAwareStructural(s, store.SideItem, EditDistanceValueSimilarity)
	got := ed(a, b)
	if got <= 0.5 || got >= 1 {
		t.Fatalf("edit-distance structural = %v", got)
	}
}

func TestDomainAwareStructuralUsers(t *testing.T) {
	s, gs := world(t)
	a := findByDesc(t, s, gs, "director=cameron") // male, teen
	c := findByDesc(t, s, gs, "gender=female")    // female, teen
	aware := DomainAwareStructural(s, store.SideUser, TableValueSimilarity(nil))
	// Without a table this matches strict structural similarity.
	strict := StructuralUser(s)
	if aware(a, c) != strict(a, c) {
		t.Fatalf("table-less domain-aware (%v) != strict (%v)", aware(a, c), strict(a, c))
	}
}

func TestTableValueSimilarity(t *testing.T) {
	sim := TableValueSimilarity(map[[2]string]float64{
		{"nyc", "boston"}: 0.7,
	})
	if sim("nyc", "nyc") != 1 {
		t.Fatal("identity")
	}
	if sim("nyc", "boston") != 0.7 || sim("boston", "nyc") != 0.7 {
		t.Fatal("table lookup (both orders)")
	}
	if sim("nyc", "dallas") != 0 {
		t.Fatal("missing pair should be 0")
	}
}
