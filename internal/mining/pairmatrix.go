package mining

import (
	"reflect"
	"sync"

	"tagdm/internal/groups"
	"tagdm/internal/vec"
)

// PairMatrix caches a pair function over every unordered pair of an
// enumerated group universe in condensed upper-triangular form
// (n*(n-1)/2 float64 for n groups). Solvers that score millions of
// candidate sets — the Exact baseline above all — pay each pair once at
// build time and read pure float lookups afterwards. A built matrix is
// immutable and safe for concurrent readers.
type PairMatrix struct {
	mat *vec.Matrix

	// Bound vectors for branch-and-bound pruning, derived from the matrix
	// on first use and cached for its lifetime (the matrix is immutable, so
	// they can never go stale; the engine invalidating a matrix drops its
	// vectors with it).
	boundOnce sync.Once
	maxRows   []float64
	maxPair   float64
}

// NewPairMatrix evaluates pair over all unordered pairs of gs, splitting
// rows across workers goroutines (<= 0 means GOMAXPROCS). Groups must carry
// their dense enumeration IDs: entry (i, j) is pair(gs[i], gs[j]).
func NewPairMatrix(gs []*groups.Group, pair PairFunc, workers int) *PairMatrix {
	return &PairMatrix{mat: vec.NewMatrixParallel(len(gs), func(i, j int) float64 {
		return pair(gs[i], gs[j])
	}, workers)}
}

// RebuildRows builds the matrix for the (possibly grown) universe gs while
// reusing this matrix's entries for every pair of clean carried-over
// groups: entry (i, j) is recomputed through pair only when i or j is
// marked dirty or lies beyond the receiver's universe, and copied verbatim
// otherwise. dirty is indexed by the receiver's group IDs (group IDs are
// stable and append-only across snapshot epochs). The result is
// bit-identical to NewPairMatrix(gs, pair, workers) whenever the carried
// entries are still valid — i.e. dirty covers every group whose predicate
// or signature changed — which the epoch carry-over property tests pin.
// The receiver is not modified.
func (m *PairMatrix) RebuildRows(gs []*groups.Group, pair PairFunc, dirty []bool, workers int) *PairMatrix {
	return &PairMatrix{mat: vec.NewMatrixParallelFrom(len(gs), m.mat, dirty, func(i, j int) float64 {
		return pair(gs[i], gs[j])
	}, workers)}
}

// Len returns the number of groups the matrix covers.
func (m *PairMatrix) Len() int { return m.mat.Len() }

// Bytes is the resident size of the condensed score storage, the quantity
// the engine's matrix budget accounts in.
func (m *PairMatrix) Bytes() int64 { return int64(m.mat.Len()) * int64(m.mat.Len()-1) / 2 * 8 }

// At returns the cached pair score of groups i and j (0 on the diagonal).
func (m *PairMatrix) At(i, j int) float64 { return m.mat.At(i, j) }

// SumOver accumulates the pair scores of all unordered pairs drawn from
// ids, in the same row-major (i < j) order Func.Eval visits them, so the
// floating-point result is bit-identical to summing the naive pair calls.
func (m *PairMatrix) SumOver(ids []int) float64 {
	var s float64
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			s += m.mat.At(ids[i], ids[j])
		}
	}
	return s
}

// MeanOver is the mean pair score over ids — the Mean aggregation of
// Definition 3 — computed without materializing the scores. Fewer than two
// ids score 0, matching Func.Eval.
func (m *PairMatrix) MeanOver(ids []int) float64 {
	k := len(ids)
	if k < 2 {
		return 0
	}
	return m.SumOver(ids) / float64(k*(k-1)/2)
}

// MaxRows returns the matrix's bound vector: entry i is the largest pair
// score group i attains against any other group (0 when the universe has
// fewer than two groups, where no pair exists to bound). Together with
// MaxPair it gives an admissible upper bound on the pair-sum of any
// superset of a partial candidate — the branch-and-bound cut the Exact
// solver applies. The slice is computed once per matrix, cached, and must
// not be mutated; concurrent callers are safe.
func (m *PairMatrix) MaxRows() []float64 {
	m.buildBounds()
	return m.maxRows
}

// MaxPair returns the largest pair score anywhere in the matrix (0 below
// two groups), bounding pairs whose members are both still unchosen.
func (m *PairMatrix) MaxPair() float64 {
	m.buildBounds()
	return m.maxPair
}

func (m *PairMatrix) buildBounds() {
	m.boundOnce.Do(func() {
		n := m.mat.Len()
		m.maxRows = make([]float64, n)
		if n < 2 {
			return
		}
		for i := 0; i < n; i++ {
			best := 0.0
			first := true
			for j := 0; j < n; j++ {
				if j == i {
					continue
				}
				if v := m.mat.At(i, j); first || v > best {
					best, first = v, false
				}
			}
			m.maxRows[i] = best
		}
		m.maxPair = m.maxRows[0]
		for _, v := range m.maxRows[1:] {
			if v > m.maxPair {
				m.maxPair = v
			}
		}
	})
}

// MinOver is the minimum pair score over ids (the Min aggregation); fewer
// than two ids score 0.
func (m *PairMatrix) MinOver(ids []int) float64 {
	if len(ids) < 2 {
		return 0
	}
	best := m.mat.At(ids[0], ids[1])
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			if v := m.mat.At(ids[i], ids[j]); v < best {
				best = v
			}
		}
	}
	return best
}

var (
	meanPtr = reflect.ValueOf(Aggregator(Mean)).Pointer()
	minPtr  = reflect.ValueOf(Aggregator(Min)).Pointer()
)

// EvalMatrix computes the same aggregate as Eval but over the cached
// matrix, identified by group IDs instead of group pointers. The package
// aggregators (Mean — also the nil default — and Min) stream over the
// matrix with zero allocations; a custom Aggregator still works but pays
// one scores-slice allocation, exactly as Eval does.
func (f Func) EvalMatrix(m *PairMatrix, ids []int) float64 {
	if len(ids) < 2 {
		return 0
	}
	switch {
	case f.Agg == nil:
		return m.MeanOver(ids)
	default:
		switch reflect.ValueOf(f.Agg).Pointer() {
		case meanPtr:
			return m.MeanOver(ids)
		case minPtr:
			return m.MinOver(ids)
		}
	}
	scores := make([]float64, 0, len(ids)*(len(ids)-1)/2)
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			scores = append(scores, m.mat.At(ids[i], ids[j]))
		}
	}
	return f.Agg(scores)
}

// IncrementalEval maintains the running pair-sum of a candidate set that
// grows and shrinks one group at a time — the access pattern of a
// depth-first enumeration. Push extends the set by one group at O(k) matrix
// lookups (instead of the O(k^2) recompute of evaluating the set afresh);
// Pop backtracks in O(1).
//
// Internally it keeps a stack of cumulative sums rather than one running
// accumulator adjusted by +delta/-delta: floating-point addition does not
// cancel exactly under subtraction, so a push/pop/push sequence would
// otherwise drift away from the forward-computed sum and break the exact
// determinism the brute-force baseline promises.
type IncrementalEval struct {
	m    *PairMatrix
	ids  []int
	sums []float64
}

// NewIncrementalEval returns an empty evaluator over m with capacity for
// sets of up to capHint groups (grown as needed).
func NewIncrementalEval(m *PairMatrix, capHint int) *IncrementalEval {
	if capHint < 0 {
		capHint = 0
	}
	return &IncrementalEval{
		m:    m,
		ids:  make([]int, 0, capHint),
		sums: make([]float64, 0, capHint),
	}
}

// Reset empties the set without releasing capacity.
func (e *IncrementalEval) Reset() {
	e.ids = e.ids[:0]
	e.sums = e.sums[:0]
}

// Push adds group id to the set, accumulating its pair scores against every
// member one pair at a time. Pairs arrive in incremental order — all pairs
// of the first d groups before any pair involving group d+1 — which
// coincides with Eval's row-major order for sets of up to three groups (the
// paper's k), making Mean bit-identical to Eval there; for larger sets the
// same pairs are summed in a different association order, so results agree
// only up to floating-point rounding.
func (e *IncrementalEval) Push(id int) {
	var sum float64
	if n := len(e.sums); n > 0 {
		sum = e.sums[n-1]
	}
	for _, x := range e.ids {
		sum += e.m.At(x, id)
	}
	e.ids = append(e.ids, id)
	e.sums = append(e.sums, sum)
}

// Pop removes the most recently pushed group.
func (e *IncrementalEval) Pop() {
	e.ids = e.ids[:len(e.ids)-1]
	e.sums = e.sums[:len(e.sums)-1]
}

// Len returns the current set size.
func (e *IncrementalEval) Len() int { return len(e.ids) }

// IDs returns the current set contents; the slice is owned by the
// evaluator and only valid until the next Push/Pop/Reset.
func (e *IncrementalEval) IDs() []int { return e.ids }

// Sum returns the pair-sum of the current set (0 below two groups).
func (e *IncrementalEval) Sum() float64 {
	if len(e.sums) == 0 {
		return 0
	}
	return e.sums[len(e.sums)-1]
}

// Mean returns the mean pair score of the current set, 0 below two groups.
func (e *IncrementalEval) Mean() float64 {
	k := len(e.ids)
	if k < 2 {
		return 0
	}
	return e.Sum() / float64(k*(k-1)/2)
}
