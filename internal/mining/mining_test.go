package mining

import (
	"math"
	"testing"
	"testing/quick"

	"tagdm/internal/groups"
	"tagdm/internal/model"
	"tagdm/internal/signature"
	"tagdm/internal/store"
)

func world(t *testing.T) (*store.Store, []*groups.Group) {
	t.Helper()
	d := model.NewDataset(
		model.NewSchema("gender", "age"),
		model.NewSchema("genre", "director"),
	)
	type up struct{ g, a string }
	usersSpec := []up{
		{"male", "teen"}, {"male", "teen"},
		{"female", "teen"},
		{"male", "young"},
	}
	var uids []int32
	for _, u := range usersSpec {
		id, err := d.AddUser(map[string]string{"gender": u.g, "age": u.a})
		if err != nil {
			t.Fatal(err)
		}
		uids = append(uids, id)
	}
	type ip struct{ g, dir string }
	itemsSpec := []ip{
		{"action", "cameron"}, {"action", "spielberg"}, {"comedy", "allen"},
	}
	var iids []int32
	for _, it := range itemsSpec {
		id, err := d.AddItem(map[string]string{"genre": it.g, "director": it.dir})
		if err != nil {
			t.Fatal(err)
		}
		iids = append(iids, id)
	}
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	// Group A: male teens on cameron-action (3 tuples, gun/fight tags).
	must(d.AddAction(uids[0], iids[0], 0, "gun", "fight"))
	must(d.AddAction(uids[1], iids[0], 0, "gun"))
	must(d.AddAction(uids[0], iids[0], 0, "fight"))
	// Group B: male teens on spielberg-action (2 tuples, gun tags).
	must(d.AddAction(uids[0], iids[1], 0, "gun"))
	must(d.AddAction(uids[1], iids[1], 0, "gun", "war"))
	// Group C: female teens on allen-comedy (2 tuples, funny tags).
	must(d.AddAction(uids[2], iids[2], 0, "funny"))
	must(d.AddAction(uids[2], iids[2], 0, "funny", "witty"))
	// Group D: young males on allen-comedy (2 tuples, witty tags).
	must(d.AddAction(uids[3], iids[2], 0, "witty"))
	must(d.AddAction(uids[3], iids[2], 0, "witty", "dry"))
	s, err := store.New(d)
	if err != nil {
		t.Fatal(err)
	}
	gs := (&groups.Enumerator{Store: s, MinTuples: 2}).FullyDescribed()
	if len(gs) != 4 {
		t.Fatalf("got %d groups", len(gs))
	}
	return s, gs
}

func findByDesc(t *testing.T, s *store.Store, gs []*groups.Group, substr string) *groups.Group {
	t.Helper()
	for _, g := range gs {
		if contains(g.Describe(s), substr) {
			return g
		}
	}
	t.Fatalf("no group matching %q", substr)
	return nil
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (func() bool {
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				return true
			}
		}
		return false
	})()
}

func TestStructuralUserSimilarity(t *testing.T) {
	s, gs := world(t)
	sim := StructuralUser(s)
	a := findByDesc(t, s, gs, "director=cameron")
	b := findByDesc(t, s, gs, "director=spielberg")
	c := findByDesc(t, s, gs, "gender=female")
	// A and B have identical user descriptions (male, teen) -> 1.0.
	if got := sim(a, b); got != 1.0 {
		t.Fatalf("sim(A,B) = %v, want 1", got)
	}
	// A (male, teen) vs C (female, teen): share age only -> 0.5.
	if got := sim(a, c); got != 0.5 {
		t.Fatalf("sim(A,C) = %v, want 0.5", got)
	}
	div := Inverse(sim)
	if got := div(a, c); got != 0.5 {
		t.Fatalf("div(A,C) = %v", got)
	}
	if got := div(a, b); got != 0 {
		t.Fatalf("div(A,B) = %v", got)
	}
}

func TestStructuralItemSimilarity(t *testing.T) {
	s, gs := world(t)
	sim := StructuralItem(s)
	a := findByDesc(t, s, gs, "director=cameron")
	b := findByDesc(t, s, gs, "director=spielberg")
	// Same genre, different director -> 0.5.
	if got := sim(a, b); got != 0.5 {
		t.Fatalf("sim(A,B) items = %v, want 0.5", got)
	}
}

func TestJaccard(t *testing.T) {
	s, gs := world(t)
	itemJ := JaccardItems(s, gs)
	userJ := JaccardUsers(s, gs)
	a := findByDesc(t, s, gs, "director=cameron")
	b := findByDesc(t, s, gs, "director=spielberg")
	c := findByDesc(t, s, gs, "gender=female")
	// A tags item0 only, B tags item1 only -> Jaccard 0.
	if got := itemJ(a, b); got != 0 {
		t.Fatalf("itemJ(A,B) = %v", got)
	}
	// A users {0,1}, B users {0,1} -> 1.
	if got := userJ(a, b); got != 1 {
		t.Fatalf("userJ(A,B) = %v", got)
	}
	// A users {0,1}, C users {2} -> 0.
	if got := userJ(a, c); got != 0 {
		t.Fatalf("userJ(A,C) = %v", got)
	}
}

func TestTagCosinePair(t *testing.T) {
	s, gs := world(t)
	sigs := signature.SummarizeAll(signature.NewFrequency(s), s, gs)
	pair := TagCosine(sigs)
	a := findByDesc(t, s, gs, "director=cameron")   // gun x2, fight x2
	b := findByDesc(t, s, gs, "director=spielberg") // gun x2, war x1
	c := findByDesc(t, s, gs, "gender=female")      // funny x2, witty x1
	if got := pair(a, b); got <= 0.3 {
		t.Fatalf("tag cosine A,B = %v, want high", got)
	}
	if got := pair(a, c); got != 0 {
		t.Fatalf("tag cosine A,C = %v, want 0", got)
	}
}

func TestFuncEvalAggregation(t *testing.T) {
	s, gs := world(t)
	f := For(s, nil, Users, Similarity)
	if got := f.Eval(gs[:1]); got != 0 {
		t.Fatalf("singleton Eval = %v", got)
	}
	a := findByDesc(t, s, gs, "director=cameron")
	b := findByDesc(t, s, gs, "director=spielberg")
	c := findByDesc(t, s, gs, "gender=female")
	set := []*groups.Group{a, b, c}
	// pairs: (a,b)=1, (a,c)=0.5, (b,c)=0.5 -> mean = 2/3.
	if got := f.Eval(set); math.Abs(got-2.0/3.0) > 1e-12 {
		t.Fatalf("mean Eval = %v", got)
	}
	fmin := Func{Dim: Users, Meas: Similarity, Pair: StructuralUser(s), Agg: Min}
	if got := fmin.Eval(set); got != 0.5 {
		t.Fatalf("min Eval = %v", got)
	}
	if f.String() != "similarity(users)" {
		t.Fatalf("String = %q", f.String())
	}
}

func TestForBindsAllDimensions(t *testing.T) {
	s, gs := world(t)
	sigs := signature.SummarizeAll(signature.NewFrequency(s), s, gs)
	for _, dim := range []Dimension{Users, Items, Tags} {
		for _, meas := range []Measure{Similarity, Diversity} {
			f := For(s, sigs, dim, meas)
			v := f.Eval(gs)
			if v < 0 || v > 1 {
				t.Fatalf("%s out of range: %v", f, v)
			}
		}
	}
}

func TestMeasureInvert(t *testing.T) {
	if Similarity.Invert() != Diversity || Diversity.Invert() != Similarity {
		t.Fatal("Invert broken")
	}
	if Users.String() != "users" || Items.String() != "items" || Tags.String() != "tags" {
		t.Fatal("Dimension.String broken")
	}
}

func TestEditDistance(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "", 3},
		{"", "abc", 3},
		{"kitten", "sitting", 3},
		{"new york", "newark", 3},
		{"same", "same", 0},
		{"héllo", "hello", 1}, // unicode-aware
	}
	for _, c := range cases {
		if got := EditDistance(c.a, c.b); got != c.want {
			t.Errorf("EditDistance(%q, %q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestStringSimilarity(t *testing.T) {
	if StringSimilarity("", "") != 1 {
		t.Fatal("empty strings should be identical")
	}
	if StringSimilarity("abc", "abc") != 1 {
		t.Fatal("equal strings similarity != 1")
	}
	if got := StringSimilarity("abc", "xyz"); got != 0 {
		t.Fatalf("disjoint similarity = %v", got)
	}
}

// Property: similarity + inverse-diversity always sum to 1 for any pair.
func TestQuickInverseComplement(t *testing.T) {
	s, gs := world(t)
	sim := StructuralUser(s)
	div := Inverse(sim)
	for i := range gs {
		for j := range gs {
			if math.Abs(sim(gs[i], gs[j])+div(gs[i], gs[j])-1) > 1e-12 {
				t.Fatalf("sim+div != 1 for pair %d,%d", i, j)
			}
		}
	}
}

// Property: edit distance is a metric on random short strings: symmetry,
// identity, triangle inequality.
func TestQuickEditDistanceMetric(t *testing.T) {
	trim := func(s string) string {
		r := []rune(s)
		if len(r) > 8 {
			r = r[:8]
		}
		return string(r)
	}
	f := func(a, b, c string) bool {
		a, b, c = trim(a), trim(b), trim(c)
		dab := EditDistance(a, b)
		dba := EditDistance(b, a)
		dbc := EditDistance(b, c)
		dac := EditDistance(a, c)
		if dab != dba {
			return false
		}
		if (a == b) != (dab == 0) {
			return false
		}
		return dac <= dab+dbc
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
