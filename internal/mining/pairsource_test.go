package mining

import (
	"math"
	"math/rand"
	"testing"

	"tagdm/internal/groups"
)

// tablePair builds n bare groups plus a symmetric pair function backed by
// a random table quantized to multiples of 1/64 — dyadic values keep every
// pair-sum exact in float64, so the equivalence assertions below are
// bit-level, not tolerances.
func tablePair(rng *rand.Rand, n int) ([]*groups.Group, [][]float64, PairFunc) {
	gs := make([]*groups.Group, n)
	for i := range gs {
		gs[i] = &groups.Group{ID: i}
	}
	tab := make([][]float64, n)
	for i := range tab {
		tab[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := float64(rng.Intn(65)) / 64
			tab[i][j], tab[j][i] = v, v
		}
	}
	return gs, tab, func(g1, g2 *groups.Group) float64 { return tab[g1.ID][g2.ID] }
}

func randomIDSets(rng *rand.Rand, n, sets int) [][]int {
	out := make([][]int, 0, sets)
	for s := 0; s < sets; s++ {
		var ids []int
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				ids = append(ids, i)
			}
		}
		if len(ids) < 2 {
			ids = []int{0, n - 1}
		}
		out = append(out, ids)
	}
	return out
}

// TestPairSourcesBitIdentical pins the PairSource contract: LazyPairs and
// BlockedPairs (at several row budgets, including ones that force constant
// eviction) must agree bit for bit with the materialized PairMatrix on
// every accessor.
func TestPairSourcesBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, n := range []int{2, 7, 24} {
		gs, _, pair := tablePair(rng, n)
		mat := NewPairMatrix(gs, pair, 0)
		sources := map[string]PairSource{
			"lazy":       NewLazyPairs(gs, pair),
			"blocked-1":  NewBlockedPairs(gs, pair, 1),
			"blocked-3":  NewBlockedPairs(gs, pair, 3),
			"blocked-nn": NewBlockedPairs(gs, pair, n+1),
		}
		idSets := randomIDSets(rng, n, 8)
		for name, src := range sources {
			if src.Len() != mat.Len() {
				t.Fatalf("n=%d %s: Len %d vs %d", n, name, src.Len(), mat.Len())
			}
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					if got, want := src.At(i, j), mat.At(i, j); got != want {
						t.Fatalf("n=%d %s: At(%d,%d) = %v, want %v", n, name, i, j, got, want)
					}
				}
			}
			for _, ids := range idSets {
				if got, want := src.SumOver(ids), mat.SumOver(ids); math.Float64bits(got) != math.Float64bits(want) {
					t.Fatalf("n=%d %s: SumOver(%v) = %v, want %v", n, name, ids, got, want)
				}
				if got, want := src.MeanOver(ids), mat.MeanOver(ids); math.Float64bits(got) != math.Float64bits(want) {
					t.Fatalf("n=%d %s: MeanOver(%v) = %v, want %v", n, name, ids, got, want)
				}
				if got, want := src.MinOver(ids), mat.MinOver(ids); math.Float64bits(got) != math.Float64bits(want) {
					t.Fatalf("n=%d %s: MinOver(%v) = %v, want %v", n, name, ids, got, want)
				}
			}
		}
	}
}

// TestRebuildRowsMatchesScratchRandom is the dirty-row carry property: for
// random universes, random dirty sets, and random growth (appended groups),
// rebuilding from the previous matrix must be bit-identical to building
// from scratch with the new pair function — given that the dirty flags
// cover every changed row.
func TestRebuildRowsMatchesScratchRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 50; trial++ {
		nPrev := 2 + rng.Intn(20)
		gsPrev, _, pairPrev := tablePair(rng, nPrev)
		prev := NewPairMatrix(gsPrev, pairPrev, 0)

		// The new epoch: same universe plus up to 4 appended groups, a new
		// table that differs from the old one only in rows marked dirty.
		nNew := nPrev + rng.Intn(5)
		gsNew, tabNew, pairNew := tablePair(rng, nNew)
		dirty := make([]bool, nPrev)
		for i := 0; i < nPrev; i++ {
			dirty[i] = rng.Intn(4) == 0
		}
		for i := 0; i < nPrev; i++ {
			for j := i + 1; j < nPrev; j++ {
				if !dirty[i] && !dirty[j] {
					// Clean pairs keep their old value — the invariant the
					// carry contract demands of callers.
					tabNew[i][j] = prev.At(i, j)
					tabNew[j][i] = prev.At(i, j)
				}
			}
		}

		workers := 1 + rng.Intn(3)
		got := prev.RebuildRows(gsNew, pairNew, dirty, workers)
		want := NewPairMatrix(gsNew, pairNew, 0)
		if got.Len() != want.Len() {
			t.Fatalf("trial %d: Len %d vs %d", trial, got.Len(), want.Len())
		}
		for i := 0; i < nNew; i++ {
			for j := i + 1; j < nNew; j++ {
				if math.Float64bits(got.At(i, j)) != math.Float64bits(want.At(i, j)) {
					t.Fatalf("trial %d (nPrev=%d nNew=%d dirty=%v): (%d,%d) = %v, want %v",
						trial, nPrev, nNew, dirty, i, j, got.At(i, j), want.At(i, j))
				}
			}
		}
		// The receiver must be untouched by the rebuild.
		for i := 0; i < nPrev; i++ {
			for j := i + 1; j < nPrev; j++ {
				if prev.At(i, j) != pairPrev(gsPrev[i], gsPrev[j]) {
					t.Fatalf("trial %d: RebuildRows mutated its receiver at (%d,%d)", trial, i, j)
				}
			}
		}
	}
}

// TestRebuildRowsAllDirtyAndShrink covers the degenerate carries: every
// row dirty (nothing reusable) and a universe smaller than the receiver's
// (dirty flags longer than the new group slice must not be indexed out of
// range).
func TestRebuildRowsAllDirtyAndShrink(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	gs, _, pair := tablePair(rng, 10)
	prev := NewPairMatrix(gs, pair, 0)

	allDirty := make([]bool, 10)
	for i := range allDirty {
		allDirty[i] = true
	}
	gs2, _, pair2 := tablePair(rng, 10)
	got := prev.RebuildRows(gs2, pair2, allDirty, 0)
	want := NewPairMatrix(gs2, pair2, 0)
	for i := 0; i < 10; i++ {
		for j := i + 1; j < 10; j++ {
			if got.At(i, j) != want.At(i, j) {
				t.Fatalf("all-dirty rebuild differs at (%d,%d)", i, j)
			}
		}
	}

	small := gs2[:4]
	gotS := prev.RebuildRows(small, pair2, allDirty, 0)
	wantS := NewPairMatrix(small, pair2, 0)
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			if gotS.At(i, j) != wantS.At(i, j) {
				t.Fatalf("shrunk rebuild differs at (%d,%d)", i, j)
			}
		}
	}
}
