package mining

import (
	"tagdm/internal/groups"
	"tagdm/internal/model"
	"tagdm/internal/store"
)

// This file implements the richer comparison functions Section 2.1.1
// sketches beyond the basic structural and Jaccard measures:
//
//   - a rating-aware set distance, where an item counts as common to two
//     groups only if its average ratings in both are close;
//   - a domain-aware structural similarity, where attribute values are
//     compared by a caller-provided value similarity (e.g. edit distance,
//     or a geography table that puts "new york city" nearer to "boston"
//     than to "dallas") instead of strict equality.

// RatingAwareJaccardItems returns the paper's refined set-distance pair
// similarity: |common| / |union| where an item is common to g1 and g2 only
// if both groups tagged it AND their average ratings for it differ by at
// most tolerance. Items without ratings (rating 0) on either side are
// compared by membership alone.
func RatingAwareJaccardItems(s *store.Store, gs []*groups.Group, tolerance float64) PairFunc {
	// Precompute per group: item -> (sum, count) of ratings.
	type acc struct {
		sum float64
		n   int
	}
	perGroup := make([]map[int32]acc, len(gs))
	for i, g := range gs {
		m := make(map[int32]acc)
		for _, t := range g.Members {
			item := s.TupleItem(t)
			a := m[item]
			if r := s.TupleRating(t); r > 0 {
				a.sum += r
				a.n++
			}
			m[item] = a
		}
		perGroup[i] = m
	}
	avg := func(a acc) (float64, bool) {
		if a.n == 0 {
			return 0, false
		}
		return a.sum / float64(a.n), true
	}
	return func(g1, g2 *groups.Group) float64 {
		m1, m2 := perGroup[g1.ID], perGroup[g2.ID]
		if len(m1) == 0 && len(m2) == 0 {
			return 0
		}
		common := 0
		for item, a1 := range m1 {
			a2, ok := m2[item]
			if !ok {
				continue
			}
			r1, ok1 := avg(a1)
			r2, ok2 := avg(a2)
			if ok1 && ok2 {
				d := r1 - r2
				if d < 0 {
					d = -d
				}
				if d > tolerance {
					continue // tagged by both but rated too differently
				}
			}
			common++
		}
		// Items excluded for rating disagreement still belong to the
		// union (they were tagged by both groups), so the union is the
		// plain set union of the two item sets.
		seen := make(map[int32]struct{}, len(m1)+len(m2))
		for item := range m1 {
			seen[item] = struct{}{}
		}
		for item := range m2 {
			seen[item] = struct{}{}
		}
		if len(seen) == 0 {
			return 0
		}
		return float64(common) / float64(len(seen))
	}
}

// ValueSimilarity scores two attribute value strings in [0, 1].
type ValueSimilarity func(a, b string) float64

// DomainAwareStructural returns a structural pair similarity on the given
// side that compares constrained attribute values with valueSim instead of
// strict equality, normalized by the schema width. Unconstrained
// attributes contribute 0, exactly as in the strict version.
func DomainAwareStructural(s *store.Store, side store.Side, valueSim ValueSimilarity) PairFunc {
	schema := s.UserSchema
	if side == store.SideItem {
		schema = s.ItemSchema
	}
	n := schema.Len()
	return func(g1, g2 *groups.Group) float64 {
		if n == 0 {
			return 0
		}
		var total float64
		for i := 0; i < n; i++ {
			var v1, v2 model.ValueCode
			if side == store.SideUser {
				v1, v2 = g1.UserValue(i), g2.UserValue(i)
			} else {
				v1, v2 = g1.ItemValue(i), g2.ItemValue(i)
			}
			if v1 == model.Unknown || v2 == model.Unknown {
				continue
			}
			total += valueSim(schema.Attr(i).Value(v1), schema.Attr(i).Value(v2))
		}
		return total / float64(n)
	}
}

// TableValueSimilarity builds a ValueSimilarity from an explicit pair
// table (symmetric; missing pairs fall back to exact-match 1/0). It models
// the paper's domain-knowledge example where "new york city" is more
// similar to "boston" than to "dallas".
func TableValueSimilarity(pairs map[[2]string]float64) ValueSimilarity {
	return func(a, b string) float64 {
		if a == b {
			return 1
		}
		if v, ok := pairs[[2]string{a, b}]; ok {
			return v
		}
		if v, ok := pairs[[2]string{b, a}]; ok {
			return v
		}
		return 0
	}
}

// EditDistanceValueSimilarity adapts StringSimilarity as a
// ValueSimilarity, per the paper's edit-distance suggestion.
func EditDistanceValueSimilarity(a, b string) float64 { return StringSimilarity(a, b) }
