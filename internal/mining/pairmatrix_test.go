package mining

import (
	"math"
	"math/rand"
	"testing"

	"tagdm/internal/groups"
	"tagdm/internal/signature"
)

// syntheticUniverse fabricates n ID-only groups plus a deterministic
// symmetric pair function, so matrix properties can be probed at sizes the
// fixture world cannot reach.
func syntheticUniverse(n int, seed int64) ([]*groups.Group, PairFunc) {
	gs := make([]*groups.Group, n)
	for i := range gs {
		gs[i] = &groups.Group{ID: i}
	}
	pair := func(g1, g2 *groups.Group) float64 {
		lo, hi := g1.ID, g2.ID
		if lo > hi {
			lo, hi = hi, lo
		}
		rng := rand.New(rand.NewSource(seed + int64(lo*7919+hi)))
		return rng.Float64()
	}
	return gs, pair
}

func TestPairMatrixMatchesPairFunc(t *testing.T) {
	s, gs := world(t)
	sigs := signature.SummarizeAll(signature.NewFrequency(s), s, gs)
	for _, dim := range []Dimension{Users, Items, Tags} {
		for _, meas := range []Measure{Similarity, Diversity} {
			f := For(s, sigs, dim, meas)
			for _, workers := range []int{0, 1, 3} {
				m := NewPairMatrix(gs, f.Pair, workers)
				if m.Len() != len(gs) {
					t.Fatalf("%s: Len = %d, want %d", f, m.Len(), len(gs))
				}
				for i := range gs {
					for j := range gs {
						want := 0.0
						if i != j {
							want = f.Pair(gs[i], gs[j])
						}
						if got := m.At(i, j); got != want {
							t.Fatalf("%s workers=%d At(%d,%d) = %v, want %v",
								f, workers, i, j, got, want)
						}
					}
				}
			}
		}
	}
}

// TestEvalMatrixMatchesEval drives randomized subsets — including the empty
// and singleton edge cases — through every aggregator and demands exact
// agreement with the naive Eval, whose pair visit order EvalMatrix
// replicates.
func TestEvalMatrixMatchesEval(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	sumAgg := func(scores []float64) float64 { // custom: exercises the fallback
		var s float64
		for _, x := range scores {
			s += x
		}
		return s
	}
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(13)
		gs, pair := syntheticUniverse(n, int64(trial))
		m := NewPairMatrix(gs, pair, 0)
		for _, agg := range []Aggregator{nil, Mean, Min, sumAgg} {
			f := Func{Dim: Tags, Meas: Similarity, Pair: pair, Agg: agg}
			for k := 0; k <= n; k++ {
				ids := rng.Perm(n)[:k]
				set := make([]*groups.Group, k)
				for i, id := range ids {
					set[i] = gs[id]
				}
				want := f.Eval(set)
				got := f.EvalMatrix(m, ids)
				if got != want {
					t.Fatalf("trial %d n=%d k=%d: EvalMatrix = %v, Eval = %v",
						trial, n, k, got, want)
				}
			}
		}
	}
}

func TestEvalMatrixAllocationFree(t *testing.T) {
	gs, pair := syntheticUniverse(10, 3)
	m := NewPairMatrix(gs, pair, 0)
	ids := []int{1, 4, 7, 9}
	for _, f := range []Func{
		{Pair: pair}, // nil aggregator defaults to Mean
		{Pair: pair, Agg: Mean},
		{Pair: pair, Agg: Min},
	} {
		f := f
		if avg := testing.AllocsPerRun(100, func() { f.EvalMatrix(m, ids) }); avg != 0 {
			t.Fatalf("EvalMatrix allocated %v per run", avg)
		}
	}
}

// TestIncrementalEvalMatchesEval random-walks a push/pop sequence and
// checks the running mean against the naive Eval after every step: exactly
// for sets of up to three groups (where the addition orders coincide), and
// within floating-point tolerance beyond.
func TestIncrementalEvalMatchesEval(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(11)
		gs, pair := syntheticUniverse(n, int64(100+trial))
		m := NewPairMatrix(gs, pair, 0)
		f := Func{Pair: pair, Agg: Mean}
		inc := NewIncrementalEval(m, n)
		var set []*groups.Group
		for step := 0; step < 200; step++ {
			if inc.Len() > 0 && (inc.Len() == n || rng.Intn(3) == 0) {
				inc.Pop()
				set = set[:len(set)-1]
			} else {
				// Push any group not currently in the set.
				id := rng.Intn(n)
				for containsID(inc.IDs(), id) {
					id = (id + 1) % n
				}
				inc.Push(id)
				set = append(set, gs[id])
			}
			want := f.Eval(set)
			got := inc.Mean()
			if inc.Len() <= 3 {
				if got != want {
					t.Fatalf("trial %d step %d k=%d: incremental %v != naive %v",
						trial, step, inc.Len(), got, want)
				}
			} else if math.Abs(got-want) > 1e-12 {
				t.Fatalf("trial %d step %d k=%d: incremental %v vs naive %v",
					trial, step, inc.Len(), got, want)
			}
		}
	}
}

// TestIncrementalEvalBacktrackExact proves the cumulative-sum stack gives
// bit-identical results to a fresh forward evaluation after arbitrary
// backtracking — the property +delta/-delta running sums cannot offer.
func TestIncrementalEvalBacktrackExact(t *testing.T) {
	gs, pair := syntheticUniverse(9, 42)
	m := NewPairMatrix(gs, pair, 0)
	inc := NewIncrementalEval(m, 4)
	inc.Push(0)
	inc.Push(3)
	inc.Push(5)
	inc.Pop()
	inc.Pop()
	inc.Push(7)
	inc.Push(8)
	fresh := NewIncrementalEval(m, 4)
	for _, id := range []int{0, 7, 8} {
		fresh.Push(id)
	}
	if inc.Sum() != fresh.Sum() || inc.Mean() != fresh.Mean() {
		t.Fatalf("backtracked sum %v / mean %v != fresh %v / %v",
			inc.Sum(), inc.Mean(), fresh.Sum(), fresh.Mean())
	}
	inc.Reset()
	if inc.Len() != 0 || inc.Sum() != 0 || inc.Mean() != 0 {
		t.Fatal("Reset did not empty the evaluator")
	}
}

func TestIncrementalEvalEdgeCases(t *testing.T) {
	gs, pair := syntheticUniverse(4, 5)
	m := NewPairMatrix(gs, pair, 0)
	inc := NewIncrementalEval(m, 0)
	if inc.Mean() != 0 || inc.Sum() != 0 {
		t.Fatal("empty evaluator must score 0")
	}
	inc.Push(2)
	if inc.Mean() != 0 {
		t.Fatal("singleton must score 0: no pair evidence")
	}
	inc.Push(1)
	if want := pair(gs[1], gs[2]); inc.Mean() != want {
		t.Fatalf("pair mean = %v, want %v", inc.Mean(), want)
	}
}

// TestMaxRowsBoundVectors pins the branch-and-bound ingredients: MaxRows
// must hold each group's best pair score against any partner, MaxPair the
// global maximum, repeated calls must serve the same cached slice, and the
// degenerate one-group universe (no pairs at all) must bound at 0.
func TestMaxRowsBoundVectors(t *testing.T) {
	gs, pair := syntheticUniverse(9, 3)
	m := NewPairMatrix(gs, pair, 0)
	rows := m.MaxRows()
	if len(rows) != len(gs) {
		t.Fatalf("MaxRows has %d entries, want %d", len(rows), len(gs))
	}
	global := 0.0
	for i := range gs {
		want := 0.0
		first := true
		for j := range gs {
			if j == i {
				continue
			}
			if v := pair(gs[i], gs[j]); first || v > want {
				want, first = v, false
			}
		}
		if rows[i] != want {
			t.Fatalf("MaxRows[%d] = %v, want %v", i, rows[i], want)
		}
		if want > global {
			global = want
		}
	}
	if m.MaxPair() != global {
		t.Fatalf("MaxPair = %v, want %v", m.MaxPair(), global)
	}
	// The vector upper-bounds any pair involving i — the admissibility the
	// Exact bound leans on.
	for i := range gs {
		for j := range gs {
			if i != j && pair(gs[i], gs[j]) > rows[i] {
				t.Fatalf("pair(%d,%d) exceeds MaxRows[%d]", i, j, i)
			}
		}
	}
	if &m.MaxRows()[0] != &rows[0] {
		t.Fatal("MaxRows rebuilt instead of serving the cached vector")
	}
	single, _ := syntheticUniverse(1, 3)
	m1 := NewPairMatrix(single, pair, 0)
	if got := m1.MaxRows(); len(got) != 1 || got[0] != 0 {
		t.Fatalf("one-group MaxRows = %v, want [0]", got)
	}
	if m1.MaxPair() != 0 {
		t.Fatalf("one-group MaxPair = %v, want 0", m1.MaxPair())
	}
}

func containsID(ids []int, id int) bool {
	for _, x := range ids {
		if x == id {
			return true
		}
	}
	return false
}
