package mining

import (
	"sync"

	"tagdm/internal/groups"
)

// PairSource is the read surface solvers score candidate sets through: a
// condensed symmetric pair table over the dense group universe. PairMatrix
// is the fully materialized implementation; LazyPairs evaluates the pair
// function on demand (no storage), and BlockedPairs materializes rows on
// demand under a byte budget. All three visit pairs of an id set in the
// same row-major (i < j) order Func.Eval does, so their aggregates are
// bit-identical to each other and to the naive evaluation — solvers may be
// pointed at any implementation without changing answers.
type PairSource interface {
	// Len returns the number of groups the source covers.
	Len() int
	// At returns the pair score of groups i and j (0 on the diagonal).
	At(i, j int) float64
	// SumOver accumulates pair scores over all unordered pairs of ids in
	// row-major order.
	SumOver(ids []int) float64
	// MeanOver is the Mean aggregation over ids (0 below two ids).
	MeanOver(ids []int) float64
	// MinOver is the Min aggregation over ids (0 below two ids).
	MinOver(ids []int) float64
}

var (
	_ PairSource = (*PairMatrix)(nil)
	_ PairSource = (*LazyPairs)(nil)
	_ PairSource = (*BlockedPairs)(nil)
)

// LazyPairs serves pair scores by calling the pair function directly —
// the pre-matrix scoring path, kept as a PairSource so solvers whose
// expected pair volume is far below n²/2 (a cold one-shot SM-LSH solve)
// can skip the O(n²) build entirely. Stateless and safe for concurrent
// readers as long as the pair function is (every function in this codebase
// is a pure read over immutable groups).
type LazyPairs struct {
	gs   []*groups.Group
	pair PairFunc
}

// NewLazyPairs wraps a pair function over the enumerated group universe.
func NewLazyPairs(gs []*groups.Group, pair PairFunc) *LazyPairs {
	return &LazyPairs{gs: gs, pair: pair}
}

// Len returns the number of groups covered.
func (l *LazyPairs) Len() int { return len(l.gs) }

// At evaluates the pair function for groups i and j, normalizing the
// argument order to (low, high) exactly as the matrix build does, so the
// value is bit-identical to the matrix entry.
func (l *LazyPairs) At(i, j int) float64 {
	if i == j {
		return 0
	}
	if i > j {
		i, j = j, i
	}
	return l.pair(l.gs[i], l.gs[j])
}

// SumOver accumulates pair scores in Func.Eval's row-major order.
func (l *LazyPairs) SumOver(ids []int) float64 {
	var s float64
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			s += l.At(ids[i], ids[j])
		}
	}
	return s
}

// MeanOver is the Mean aggregation over ids (0 below two ids).
func (l *LazyPairs) MeanOver(ids []int) float64 {
	k := len(ids)
	if k < 2 {
		return 0
	}
	return l.SumOver(ids) / float64(k*(k-1)/2)
}

// MinOver is the Min aggregation over ids (0 below two ids).
func (l *LazyPairs) MinOver(ids []int) float64 {
	if len(ids) < 2 {
		return 0
	}
	best := l.At(ids[0], ids[1])
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			if v := l.At(ids[i], ids[j]); v < best {
				best = v
			}
		}
	}
	return best
}

// BlockedPairs materializes pair scores one row at a time, keeping at most
// maxRows rows resident — the degraded scoring mode for engines whose
// matrix budget cannot fit another full matrix. A row holds group r's
// scores against every group, so repeated reads against a small working
// set (the hot groups of a bucket scan) hit cached rows while cold rows
// recompute. Values are bit-identical to the full matrix: each entry is
// the same (low, high)-ordered pair call.
//
// Safe for concurrent readers; row lookups take a mutex, so this trades
// throughput for bounded memory — callers on hot paths should prefer a
// full PairMatrix when the budget allows.
type BlockedPairs struct {
	gs      []*groups.Group
	pair    PairFunc
	maxRows int

	//tagdm:mutex nonblocking
	mu   sync.Mutex
	rows map[int]*blockedRow
	tick uint64
}

type blockedRow struct {
	vals []float64
	tick uint64
}

// NewBlockedPairs wraps a pair function with an LRU row cache of at most
// maxRows resident rows (minimum 1).
func NewBlockedPairs(gs []*groups.Group, pair PairFunc, maxRows int) *BlockedPairs {
	if maxRows < 1 {
		maxRows = 1
	}
	return &BlockedPairs{
		gs:      gs,
		pair:    pair,
		maxRows: maxRows,
		rows:    make(map[int]*blockedRow),
	}
}

// Len returns the number of groups covered.
func (b *BlockedPairs) Len() int { return len(b.gs) }

// row returns group r's resident score row, materializing (and possibly
// evicting the coldest resident row) on a miss. The O(n) row computation
// runs outside the lock; a racing duplicate build publishes last-wins with
// identical values.
func (b *BlockedPairs) row(r int) []float64 {
	b.mu.Lock()
	if row, ok := b.rows[r]; ok {
		b.tick++
		row.tick = b.tick
		b.mu.Unlock()
		return row.vals
	}
	b.mu.Unlock()

	vals := make([]float64, len(b.gs))
	for j := range b.gs {
		if j == r {
			continue
		}
		lo, hi := r, j
		if lo > hi {
			lo, hi = hi, lo
		}
		vals[j] = b.pair(b.gs[lo], b.gs[hi])
	}

	b.mu.Lock()
	if len(b.rows) >= b.maxRows {
		coldest, oldest := -1, uint64(0)
		for id, row := range b.rows {
			if coldest < 0 || row.tick < oldest {
				coldest, oldest = id, row.tick
			}
		}
		delete(b.rows, coldest)
	}
	b.tick++
	b.rows[r] = &blockedRow{vals: vals, tick: b.tick}
	b.mu.Unlock()
	return vals
}

// At returns the pair score of groups i and j through the row cache.
func (b *BlockedPairs) At(i, j int) float64 {
	if i == j {
		return 0
	}
	return b.row(i)[j]
}

// SumOver accumulates pair scores in Func.Eval's row-major order; each
// distinct first index fetches its row once per inner loop.
func (b *BlockedPairs) SumOver(ids []int) float64 {
	var s float64
	for i := 0; i < len(ids); i++ {
		row := b.row(ids[i])
		for j := i + 1; j < len(ids); j++ {
			s += row[ids[j]]
		}
	}
	return s
}

// MeanOver is the Mean aggregation over ids (0 below two ids).
func (b *BlockedPairs) MeanOver(ids []int) float64 {
	k := len(ids)
	if k < 2 {
		return 0
	}
	return b.SumOver(ids) / float64(k*(k-1)/2)
}

// MinOver is the Min aggregation over ids (0 below two ids).
func (b *BlockedPairs) MinOver(ids []int) float64 {
	if len(ids) < 2 {
		return 0
	}
	best := b.At(ids[0], ids[1])
	for i := 0; i < len(ids); i++ {
		row := b.row(ids[i])
		for j := i + 1; j < len(ids); j++ {
			if v := row[ids[j]]; v < best {
				best = v
			}
		}
	}
	return best
}
