package signature

import (
	"sort"
	"strings"

	"tagdm/internal/groups"
	"tagdm/internal/model"
	"tagdm/internal/store"
)

// This file implements the two semantic summarization aids Section 2.1.2
// mentions beyond LDA:
//
//   - a category mapper in the style of OpenCalais: tags map to a small
//     set of predefined categories via a rule lexicon, and the signature
//     is the category histogram;
//   - a synonym normalizer in the style of WordNet: tags in the same
//     synset collapse onto a canonical form before counting, so "film"
//     and "movie" reinforce each other instead of splitting mass.
//
// Both are offline, rule-table-driven stand-ins for the web services the
// paper cites (see DESIGN.md substitution log); the interfaces are what a
// real integration would implement.

// Category is a predefined topic category label.
type Category string

// CategoryRule maps tags to a category, either by exact tag match or by
// substring (the common case for free-form tags like "great-action-scene").
type CategoryRule struct {
	Category Category
	// Exact tags claimed by this category.
	Exact []string
	// Substrings: a tag containing any of these maps to the category.
	Substrings []string
}

// CategoryMapper summarizes a group as a histogram over categories. Tags
// matching no rule fall into the reserved "other" category, so no tag mass
// is silently dropped.
type CategoryMapper struct {
	categories []Category // fixed order: rule order, then "other"
	index      map[Category]int
	exact      map[string]int
	substr     []struct {
		needle string
		cat    int
	}
}

// CategoryOther collects tags no rule claims.
const CategoryOther Category = "other"

// NewCategoryMapper compiles the rule set. Rule order fixes the signature
// dimension order; the "other" bucket is always appended last.
func NewCategoryMapper(rules []CategoryRule) *CategoryMapper {
	m := &CategoryMapper{index: make(map[Category]int), exact: make(map[string]int)}
	for _, r := range rules {
		ci, ok := m.index[r.Category]
		if !ok {
			ci = len(m.categories)
			m.index[r.Category] = ci
			m.categories = append(m.categories, r.Category)
		}
		for _, t := range r.Exact {
			m.exact[strings.ToLower(t)] = ci
		}
		for _, sub := range r.Substrings {
			m.substr = append(m.substr, struct {
				needle string
				cat    int
			}{strings.ToLower(sub), ci})
		}
	}
	m.index[CategoryOther] = len(m.categories)
	m.categories = append(m.categories, CategoryOther)
	return m
}

// Categorize maps one tag to its category index.
func (m *CategoryMapper) Categorize(tag string) int {
	t := strings.ToLower(tag)
	if ci, ok := m.exact[t]; ok {
		return ci
	}
	for _, s := range m.substr {
		if strings.Contains(t, s.needle) {
			return s.cat
		}
	}
	return m.index[CategoryOther]
}

// Categories returns the category labels in signature-dimension order.
func (m *CategoryMapper) Categories() []Category {
	out := make([]Category, len(m.categories))
	copy(out, m.categories)
	return out
}

// Summarize implements Summarizer.
func (m *CategoryMapper) Summarize(s *store.Store, g *groups.Group) Signature {
	w := make([]float64, len(m.categories))
	for tag, n := range groups.TagBag(s, g) {
		w[m.Categorize(s.Vocab.Tag(tag))] += float64(n)
	}
	return Signature{Weights: w}
}

// Dim implements Summarizer.
func (m *CategoryMapper) Dim() int { return len(m.categories) }

// Name implements Summarizer.
func (m *CategoryMapper) Name() string { return "category-mapper" }

// SynonymTable groups tags into synsets; all members count as the
// canonical (first-listed) form.
type SynonymTable struct {
	canon map[string]string
}

// NewSynonymTable builds a table from synsets; the first entry of each
// synset is the canonical form. Later synsets do not override earlier
// mappings, so overlapping synsets resolve deterministically.
func NewSynonymTable(synsets [][]string) *SynonymTable {
	t := &SynonymTable{canon: make(map[string]string)}
	for _, set := range synsets {
		if len(set) == 0 {
			continue
		}
		head := strings.ToLower(set[0])
		for _, w := range set {
			lw := strings.ToLower(w)
			if _, taken := t.canon[lw]; !taken {
				t.canon[lw] = head
			}
		}
	}
	return t
}

// Canonical returns the canonical form of tag (itself when no synset
// claims it).
func (t *SynonymTable) Canonical(tag string) string {
	if c, ok := t.canon[strings.ToLower(tag)]; ok {
		return c
	}
	return tag
}

// SynonymFrequency is a frequency summarizer that collapses synonyms
// before counting. Its dimension space is the canonical-tag vocabulary,
// assigned deterministically (sorted canonical names).
type SynonymFrequency struct {
	table *SynonymTable
	dims  map[string]int
}

// NewSynonymFrequency prepares the summarizer over a store's vocabulary.
func NewSynonymFrequency(s *store.Store, table *SynonymTable) *SynonymFrequency {
	canonSet := make(map[string]struct{})
	for id := 0; id < s.Vocab.Size(); id++ {
		canonSet[table.Canonical(s.Vocab.Tag(model.TagID(id)))] = struct{}{}
	}
	names := make([]string, 0, len(canonSet))
	for c := range canonSet {
		names = append(names, c)
	}
	sort.Strings(names)
	dims := make(map[string]int, len(names))
	for i, n := range names {
		dims[n] = i
	}
	return &SynonymFrequency{table: table, dims: dims}
}

// Summarize implements Summarizer.
func (f *SynonymFrequency) Summarize(s *store.Store, g *groups.Group) Signature {
	w := make([]float64, len(f.dims))
	for tag, n := range groups.TagBag(s, g) {
		canon := f.table.Canonical(s.Vocab.Tag(tag))
		if di, ok := f.dims[canon]; ok {
			w[di] += float64(n)
		}
	}
	return Signature{Weights: w}
}

// Dim implements Summarizer.
func (f *SynonymFrequency) Dim() int { return len(f.dims) }

// Name implements Summarizer.
func (f *SynonymFrequency) Name() string { return "synonym-frequency" }
