// Package signature turns the tag multiset of a tagging action group into a
// group tag signature Trep(g) — a fixed-length weight vector over topic
// categories (paper Section 2.1.2). Three summarizers are provided:
//
//   - Frequency: one dimension per tag, weight = raw frequency. Suitable
//     when tags are editor-curated and the vocabulary is small.
//   - TFIDF: one dimension per tag, weight = tf(t, g) * idf(t), where idf is
//     computed over the collection of groups. Dampens ubiquitous tags.
//   - LDA: weight vector is the group's inferred topic distribution under a
//     model trained on the whole dataset (the configuration the paper's
//     experiments use, with 25 topics).
//
// All summarizers implement the Summarizer interface so the mining engine is
// agnostic to the choice, as the paper advocates.
package signature

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"tagdm/internal/groups"
	"tagdm/internal/lda"
	"tagdm/internal/store"
	"tagdm/internal/vec"
)

// Signature is a group tag signature: a weight per topic category.
type Signature struct {
	// Weights is the vector compared by the mining functions.
	Weights []float64
}

// Dim returns the signature dimensionality.
func (s Signature) Dim() int { return len(s.Weights) }

// Cosine returns the cosine similarity between two signatures.
func (s Signature) Cosine(o Signature) float64 { return vec.Cosine(s.Weights, o.Weights) }

// Summarizer produces a signature for a group of tagging actions.
type Summarizer interface {
	// Summarize returns the signature of group g in store s.
	Summarize(s *store.Store, g *groups.Group) Signature
	// Dim is the dimensionality of produced signatures.
	Dim() int
	// Name identifies the method in reports.
	Name() string
}

// Frequency summarizes a group as raw tag counts over the full vocabulary.
type Frequency struct {
	vocabSize int
}

// NewFrequency returns a frequency summarizer for a store's vocabulary.
func NewFrequency(s *store.Store) *Frequency {
	return &Frequency{vocabSize: s.Vocab.Size()}
}

// FrequencyOfSize returns a frequency summarizer over a fixed vocabulary
// size, for callers that have a vocabulary but no store yet (building a
// store just to read its vocabulary size doubles O(dataset) setup work).
func FrequencyOfSize(vocabSize int) *Frequency {
	return &Frequency{vocabSize: vocabSize}
}

// Summarize implements Summarizer.
func (f *Frequency) Summarize(s *store.Store, g *groups.Group) Signature {
	w := make([]float64, f.vocabSize)
	for tag, n := range groups.TagBag(s, g) {
		if int(tag) < len(w) {
			w[tag] = float64(n)
		}
	}
	return Signature{Weights: w}
}

// Dim implements Summarizer.
func (f *Frequency) Dim() int { return f.vocabSize }

// Name implements Summarizer.
func (f *Frequency) Name() string { return "frequency" }

// TFIDF summarizes a group as tf*idf weights. The idf table must be fitted
// over the collection of groups that will be compared, mirroring how idf is
// computed over a document collection.
type TFIDF struct {
	vocabSize int
	idf       []float64
}

// FitTFIDF computes idf(t) = ln((1+N)/(1+df(t))) + 1 over the given groups,
// where df counts groups containing the tag.
func FitTFIDF(s *store.Store, gs []*groups.Group) *TFIDF {
	v := s.Vocab.Size()
	df := make([]int, v)
	for _, g := range gs {
		for tag := range groups.TagBag(s, g) {
			if int(tag) < v {
				df[tag]++
			}
		}
	}
	idf := make([]float64, v)
	n := float64(len(gs))
	for t := range idf {
		idf[t] = math.Log((1+n)/(1+float64(df[t]))) + 1
	}
	return &TFIDF{vocabSize: v, idf: idf}
}

// Summarize implements Summarizer.
func (t *TFIDF) Summarize(s *store.Store, g *groups.Group) Signature {
	w := make([]float64, t.vocabSize)
	bag := groups.TagBag(s, g)
	var total int
	for _, n := range bag {
		total += n
	}
	if total == 0 {
		return Signature{Weights: w}
	}
	for tag, n := range bag {
		if int(tag) < len(w) {
			tf := float64(n) / float64(total)
			w[tag] = tf * t.idf[tag]
		}
	}
	return Signature{Weights: w}
}

// Dim implements Summarizer.
func (t *TFIDF) Dim() int { return t.vocabSize }

// Name implements Summarizer.
func (t *TFIDF) Name() string { return "tfidf" }

// LDA summarizes a group as its topic distribution under a trained model.
type LDA struct {
	Model *lda.Model
	// InferIterations is the Gibbs length for folding in a group (default 30).
	InferIterations int
	// Seed makes inference deterministic per group (group ID is mixed in).
	Seed int64
}

// TrainLDA fits an LDA model treating each group's tag multiset as one
// document. Returns the summarizer ready for use on the same store.
func TrainLDA(s *store.Store, gs []*groups.Group, topics, iterations int, seed int64) (*LDA, error) {
	docs := make([]lda.Document, len(gs))
	for i, g := range gs {
		var doc lda.Document
		for tag, n := range groups.TagBag(s, g) {
			for j := 0; j < n; j++ {
				doc = append(doc, int(tag))
			}
		}
		sort.Ints(doc) // map iteration order must not leak into training
		docs[i] = doc
	}
	m, err := lda.Train(lda.Corpus{Docs: docs, VocabSize: s.Vocab.Size()},
		lda.Config{Topics: topics, Iterations: iterations, Seed: seed})
	if err != nil {
		return nil, fmt.Errorf("signature: training LDA: %w", err)
	}
	return &LDA{Model: m, InferIterations: 30, Seed: seed}, nil
}

// Summarize implements Summarizer.
func (l *LDA) Summarize(s *store.Store, g *groups.Group) Signature {
	var doc lda.Document
	for tag, n := range groups.TagBag(s, g) {
		for j := 0; j < n; j++ {
			doc = append(doc, int(tag))
		}
	}
	sort.Ints(doc)
	theta := l.Model.Infer(doc, l.InferIterations, l.Seed+int64(g.ID)*7919)
	return Signature{Weights: theta}
}

// Dim implements Summarizer.
func (l *LDA) Dim() int { return l.Model.K }

// Name implements Summarizer.
func (l *LDA) Name() string { return "lda" }

// SummarizeAll computes signatures for every group, indexed by group ID.
func SummarizeAll(sum Summarizer, s *store.Store, gs []*groups.Group) []Signature {
	out := make([]Signature, len(gs))
	for i, g := range gs {
		out[i] = sum.Summarize(s, g)
	}
	return out
}

// CloudEntry is one tag of a rendered tag cloud with its display size.
type CloudEntry struct {
	Tag   string
	Count int
	// Size is a display bucket in [1, 5]; 5 = most frequent.
	Size int
}

// Cloud computes a frequency-based tag cloud for the tuples of a group —
// the visualization of paper Figures 1 and 2 — limited to the topN most
// frequent tags.
func Cloud(s *store.Store, g *groups.Group, topN int) []CloudEntry {
	bag := groups.TagBag(s, g)
	entries := make([]CloudEntry, 0, len(bag))
	for tag, n := range bag {
		entries = append(entries, CloudEntry{Tag: s.Vocab.Tag(tag), Count: n})
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].Count != entries[j].Count {
			return entries[i].Count > entries[j].Count
		}
		return entries[i].Tag < entries[j].Tag
	})
	if topN > 0 && len(entries) > topN {
		entries = entries[:topN]
	}
	if len(entries) == 0 {
		return entries
	}
	max := float64(entries[0].Count)
	min := float64(entries[len(entries)-1].Count)
	span := max - min
	for i := range entries {
		if span == 0 {
			entries[i].Size = 3
			continue
		}
		entries[i].Size = 1 + int(4*(float64(entries[i].Count)-min)/span+0.5)
		if entries[i].Size > 5 {
			entries[i].Size = 5
		}
	}
	return entries
}

// RenderCloud renders a cloud as text, uppercasing the largest bucket and
// annotating counts, e.g. "WOODY(41) allen(39) drama(12) ...".
func RenderCloud(entries []CloudEntry) string {
	parts := make([]string, len(entries))
	for i, e := range entries {
		tag := e.Tag
		if e.Size >= 4 {
			tag = strings.ToUpper(tag)
		}
		parts[i] = fmt.Sprintf("%s(%d)", tag, e.Count)
	}
	return strings.Join(parts, " ")
}
