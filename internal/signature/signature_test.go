package signature

import (
	"math"
	"strings"
	"testing"

	"tagdm/internal/groups"
	"tagdm/internal/model"
	"tagdm/internal/store"
)

// testWorld builds a store with two clearly-themed group populations:
// action movies tagged from {gun, fight, explosions} and comedies tagged
// from {funny, witty, hilarious}. Every (user, item-genre) profile repeats
// enough to form groups.
func testWorld(t *testing.T) (*store.Store, []*groups.Group) {
	t.Helper()
	d := model.NewDataset(model.NewSchema("gender"), model.NewSchema("genre"))
	m, err := d.AddUser(map[string]string{"gender": "male"})
	if err != nil {
		t.Fatal(err)
	}
	f, err := d.AddUser(map[string]string{"gender": "female"})
	if err != nil {
		t.Fatal(err)
	}
	action, err := d.AddItem(map[string]string{"genre": "action"})
	if err != nil {
		t.Fatal(err)
	}
	comedy, err := d.AddItem(map[string]string{"genre": "comedy"})
	if err != nil {
		t.Fatal(err)
	}
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	actionTags := []string{"gun", "fight", "explosions"}
	comedyTags := []string{"funny", "witty", "hilarious"}
	for i := 0; i < 6; i++ {
		must(d.AddAction(m, action, 0, actionTags[i%3], actionTags[(i+1)%3]))
		must(d.AddAction(f, action, 0, actionTags[i%3]))
		must(d.AddAction(m, comedy, 0, comedyTags[i%3], comedyTags[(i+1)%3]))
		must(d.AddAction(f, comedy, 0, comedyTags[i%3]))
	}
	// One extra "gun" action so action-group tag counts are not uniform
	// (exercises tag-cloud size bucketing).
	must(d.AddAction(m, action, 0, "gun"))
	s, err := store.New(d)
	if err != nil {
		t.Fatal(err)
	}
	gs := (&groups.Enumerator{Store: s, MinTuples: 3}).FullyDescribed()
	if len(gs) != 4 {
		t.Fatalf("expected 4 groups, got %d", len(gs))
	}
	return s, gs
}

// groupGenre returns "action" or "comedy" for a test group.
func groupGenre(s *store.Store, g *groups.Group) string {
	desc := g.Describe(s)
	if strings.Contains(desc, "genre=action") {
		return "action"
	}
	return "comedy"
}

func TestFrequencySummarizer(t *testing.T) {
	s, gs := testWorld(t)
	sum := NewFrequency(s)
	if sum.Dim() != s.Vocab.Size() {
		t.Fatalf("Dim = %d", sum.Dim())
	}
	sig := sum.Summarize(s, gs[0])
	if sig.Dim() != s.Vocab.Size() {
		t.Fatalf("signature dim = %d", sig.Dim())
	}
	var total float64
	for _, w := range sig.Weights {
		total += w
	}
	bag := groups.TagBag(s, gs[0])
	var want int
	for _, n := range bag {
		want += n
	}
	if total != float64(want) {
		t.Fatalf("frequency mass = %v, want %d", total, want)
	}
	if sum.Name() != "frequency" {
		t.Fatal("name")
	}
}

func TestFrequencyCosineSeparatesThemes(t *testing.T) {
	s, gs := testWorld(t)
	sum := NewFrequency(s)
	sigs := SummarizeAll(sum, s, gs)
	for i := range gs {
		for j := i + 1; j < len(gs); j++ {
			c := sigs[i].Cosine(sigs[j])
			sameTheme := groupGenre(s, gs[i]) == groupGenre(s, gs[j])
			if sameTheme && c < 0.5 {
				t.Errorf("same-theme groups %d,%d cosine %v", i, j, c)
			}
			if !sameTheme && c > 0.1 {
				t.Errorf("cross-theme groups %d,%d cosine %v", i, j, c)
			}
		}
	}
}

func TestTFIDF(t *testing.T) {
	s, gs := testWorld(t)
	sum := FitTFIDF(s, gs)
	sigs := SummarizeAll(sum, s, gs)
	// Theme separation must survive tf*idf weighting.
	for i := range gs {
		for j := i + 1; j < len(gs); j++ {
			c := sigs[i].Cosine(sigs[j])
			sameTheme := groupGenre(s, gs[i]) == groupGenre(s, gs[j])
			if sameTheme && c < 0.5 {
				t.Errorf("same-theme tfidf cosine %v", c)
			}
			if !sameTheme && c > 0.1 {
				t.Errorf("cross-theme tfidf cosine %v", c)
			}
		}
	}
	if sum.Name() != "tfidf" {
		t.Fatal("name")
	}
	// idf of a tag in every group must be lower than idf of a rarer tag.
	// "gun" appears in action groups only; nothing appears everywhere, so
	// compare a present tag against an unused dimension (idf max).
	gun, _ := s.Vocab.Lookup("gun")
	if sum.idf[gun] >= math.Log(float64(1+len(gs)))+1 {
		t.Fatal("idf of used tag should be below max")
	}
}

func TestLDASummarizer(t *testing.T) {
	s, gs := testWorld(t)
	sum, err := TrainLDA(s, gs, 2, 300, 5)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Dim() != 2 {
		t.Fatalf("Dim = %d", sum.Dim())
	}
	sigs := SummarizeAll(sum, s, gs)
	for i, sig := range sigs {
		var sumw float64
		for _, w := range sig.Weights {
			sumw += w
		}
		if math.Abs(sumw-1) > 1e-9 {
			t.Fatalf("group %d theta sums to %v", i, sumw)
		}
	}
	for i := range gs {
		for j := i + 1; j < len(gs); j++ {
			c := sigs[i].Cosine(sigs[j])
			sameTheme := groupGenre(s, gs[i]) == groupGenre(s, gs[j])
			if sameTheme && c < 0.8 {
				t.Errorf("same-theme lda cosine %v between %q and %q",
					c, gs[i].Describe(s), gs[j].Describe(s))
			}
			if !sameTheme && c > 0.5 {
				t.Errorf("cross-theme lda cosine %v between %q and %q",
					c, gs[i].Describe(s), gs[j].Describe(s))
			}
		}
	}
}

func TestLDADeterministicPerGroup(t *testing.T) {
	s, gs := testWorld(t)
	sum, err := TrainLDA(s, gs, 2, 100, 5)
	if err != nil {
		t.Fatal(err)
	}
	a := sum.Summarize(s, gs[0])
	b := sum.Summarize(s, gs[0])
	for k := range a.Weights {
		if a.Weights[k] != b.Weights[k] {
			t.Fatal("summarize not deterministic")
		}
	}
}

func TestCloud(t *testing.T) {
	s, gs := testWorld(t)
	// Find an action group; its cloud must be dominated by action tags.
	var g *groups.Group
	for _, cand := range gs {
		if groupGenre(s, cand) == "action" {
			g = cand
			break
		}
	}
	entries := Cloud(s, g, 10)
	if len(entries) == 0 {
		t.Fatal("empty cloud")
	}
	for i := 1; i < len(entries); i++ {
		if entries[i-1].Count < entries[i].Count {
			t.Fatal("cloud not sorted by count")
		}
	}
	if entries[0].Size != 5 {
		t.Fatalf("top entry size = %d", entries[0].Size)
	}
	for _, e := range entries {
		switch e.Tag {
		case "gun", "fight", "explosions":
		default:
			t.Fatalf("unexpected tag %q in action cloud", e.Tag)
		}
		if e.Size < 1 || e.Size > 5 {
			t.Fatalf("size %d out of range", e.Size)
		}
	}
	text := RenderCloud(entries)
	if !strings.Contains(text, "(") {
		t.Fatalf("render = %q", text)
	}
	// TopN truncation.
	if got := Cloud(s, g, 1); len(got) != 1 {
		t.Fatalf("topN=1 returned %d", len(got))
	}
}

func TestCloudUniformCounts(t *testing.T) {
	// When all counts are equal the span is zero; every entry gets the
	// middle bucket.
	d := model.NewDataset(model.NewSchema("g"), model.NewSchema("i"))
	u, _ := d.AddUser(map[string]string{"g": "x"})
	it, _ := d.AddItem(map[string]string{"i": "y"})
	for _, tag := range []string{"a", "b", "c"} {
		if err := d.AddAction(u, it, 0, tag); err != nil {
			t.Fatal(err)
		}
	}
	s, err := store.New(d)
	if err != nil {
		t.Fatal(err)
	}
	gs := (&groups.Enumerator{Store: s, MinTuples: 1}).FullyDescribed()
	entries := Cloud(s, gs[0], 0)
	for _, e := range entries {
		if e.Size != 3 {
			t.Fatalf("uniform cloud size = %d, want 3", e.Size)
		}
	}
}
