package signature

import (
	"testing"

	"tagdm/internal/groups"
	"tagdm/internal/model"
	"tagdm/internal/store"
	"tagdm/internal/vec"
)

func semanticsWorld(t *testing.T) (*store.Store, []*groups.Group) {
	t.Helper()
	d := model.NewDataset(model.NewSchema("gender"), model.NewSchema("genre"))
	m, err := d.AddUser(map[string]string{"gender": "male"})
	if err != nil {
		t.Fatal(err)
	}
	f, err := d.AddUser(map[string]string{"gender": "female"})
	if err != nil {
		t.Fatal(err)
	}
	it, err := d.AddItem(map[string]string{"genre": "action"})
	if err != nil {
		t.Fatal(err)
	}
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	// Male group uses "movie"/"film" (synonyms) + violence-flavored tags.
	must(d.AddAction(m, it, 0, "movie", "gunfight"))
	must(d.AddAction(m, it, 0, "film", "gun-battle"))
	// Female group uses "flick" + humor tags.
	must(d.AddAction(f, it, 0, "flick", "hilarious"))
	must(d.AddAction(f, it, 0, "flick", "so-funny"))
	s, err := store.New(d)
	if err != nil {
		t.Fatal(err)
	}
	gs := (&groups.Enumerator{Store: s, MinTuples: 2}).FullyDescribed()
	if len(gs) != 2 {
		t.Fatalf("got %d groups", len(gs))
	}
	return s, gs
}

func TestCategoryMapper(t *testing.T) {
	s, gs := semanticsWorld(t)
	mapper := NewCategoryMapper([]CategoryRule{
		{Category: "violence", Substrings: []string{"gun"}},
		{Category: "humor", Exact: []string{"hilarious"}, Substrings: []string{"funny"}},
		{Category: "medium", Exact: []string{"movie", "film", "flick"}},
	})
	if mapper.Dim() != 4 { // three rules + other
		t.Fatalf("Dim = %d", mapper.Dim())
	}
	cats := mapper.Categories()
	if cats[len(cats)-1] != CategoryOther {
		t.Fatal("other bucket not last")
	}
	// Categorize specifics.
	if cats[mapper.Categorize("GUNFIGHT")] != "violence" {
		t.Fatal("substring match failed (case)")
	}
	if cats[mapper.Categorize("movie")] != "medium" {
		t.Fatal("exact match failed")
	}
	if cats[mapper.Categorize("unrelated")] != CategoryOther {
		t.Fatal("fallback failed")
	}
	// Signatures: both groups share the medium category; they differ on
	// violence vs humor.
	sigA := mapper.Summarize(s, gs[0])
	sigB := mapper.Summarize(s, gs[1])
	c := vec.Cosine(sigA.Weights, sigB.Weights)
	if c <= 0.2 || c >= 0.9 {
		t.Fatalf("category cosine = %v, want partial overlap", c)
	}
	if mapper.Name() != "category-mapper" {
		t.Fatal("name")
	}
}

func TestSynonymTable(t *testing.T) {
	table := NewSynonymTable([][]string{
		{"movie", "film", "flick"},
		{"funny", "hilarious", "so-funny"},
		{"movie", "cinema"}, // overlapping synset: first mapping wins
	})
	if table.Canonical("FILM") != "movie" {
		t.Fatal("synonym not canonicalized")
	}
	if table.Canonical("cinema") != "movie" {
		t.Fatal("overlapping synset head not propagated")
	}
	if table.Canonical("gun") != "gun" {
		t.Fatal("unclaimed tag should map to itself")
	}
}

func TestSynonymFrequency(t *testing.T) {
	s, gs := semanticsWorld(t)
	table := NewSynonymTable([][]string{
		{"movie", "film", "flick"},
		{"funny", "hilarious", "so-funny"},
	})
	sum := NewSynonymFrequency(s, table)
	plain := NewFrequency(s)

	// Plain frequency sees "movie", "film" and "flick" as unrelated, so
	// the two groups look almost orthogonal; synonym folding makes both
	// load on the shared "movie" dimension.
	pA := plain.Summarize(s, gs[0])
	pB := plain.Summarize(s, gs[1])
	sA := sum.Summarize(s, gs[0])
	sB := sum.Summarize(s, gs[1])
	before := vec.Cosine(pA.Weights, pB.Weights)
	after := vec.Cosine(sA.Weights, sB.Weights)
	if after <= before {
		t.Fatalf("synonym folding did not raise similarity: %v -> %v", before, after)
	}
	if sum.Dim() >= plain.Dim() {
		t.Fatalf("folded dim %d should be below raw dim %d", sum.Dim(), plain.Dim())
	}
	if sum.Name() != "synonym-frequency" {
		t.Fatal("name")
	}
	// Mass is conserved: total weight equals the group's tag count.
	var mass float64
	for _, w := range sA.Weights {
		mass += w
	}
	bag := groups.TagBag(s, gs[0])
	var want int
	for _, n := range bag {
		want += n
	}
	if mass != float64(want) {
		t.Fatalf("mass %v, want %d", mass, want)
	}
}
