package datagen

import (
	"testing"

	"tagdm/internal/groups"
	"tagdm/internal/store"
)

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{},
		func() Config { c := Small(); c.Users = 0; return c }(),
		func() Config { c := Small(); c.VocabSize = c.Topics - 1; return c }(),
		func() Config { c := Small(); c.BurstMax = c.BurstMin - 1; return c }(),
		func() Config { c := Small(); c.TagsMin = 0; return c }(),
	}
	for i, c := range bad {
		if _, err := Generate(c); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestGenerateSmallShape(t *testing.T) {
	cfg := Small()
	w, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d := w.Dataset
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	st := d.Stats()
	if st.Users != cfg.Users || st.Items != cfg.Items || st.Actions != cfg.Actions {
		t.Fatalf("stats = %+v", st)
	}
	if st.VocabSize != cfg.VocabSize {
		t.Fatalf("vocab = %d, want %d", st.VocabSize, cfg.VocabSize)
	}
	if st.AvgTags < float64(cfg.TagsMin) || st.AvgTags > float64(cfg.TagsMax) {
		t.Fatalf("avg tags per action = %v", st.AvgTags)
	}
	if len(w.SegmentOfUser) != cfg.Users || len(w.ProfileOfItem) != cfg.Items {
		t.Fatal("latent maps sized wrong")
	}
	if len(w.TopicOfTag) != cfg.VocabSize {
		t.Fatalf("TopicOfTag len = %d", len(w.TopicOfTag))
	}
}

func TestGenerateSchemaCardinalities(t *testing.T) {
	w, err := Generate(Small())
	if err != nil {
		t.Fatal(err)
	}
	us := w.Dataset.UserSchema
	if us.AttrByName("gender").Cardinality() > 2 {
		t.Fatal("gender cardinality")
	}
	if us.AttrByName("age").Cardinality() > 8 {
		t.Fatal("age cardinality")
	}
	if us.AttrByName("occupation").Cardinality() > 21 {
		t.Fatal("occupation cardinality")
	}
	if us.AttrByName("state").Cardinality() > 52 {
		t.Fatal("state cardinality")
	}
	if w.Dataset.ItemSchema.AttrByName("genre").Cardinality() > 19 {
		t.Fatal("genre cardinality")
	}
}

func TestGenerateProducesGroups(t *testing.T) {
	w, err := Generate(Small())
	if err != nil {
		t.Fatal(err)
	}
	s, err := store.New(w.Dataset)
	if err != nil {
		t.Fatal(err)
	}
	gs := (&groups.Enumerator{Store: s, MinTuples: 5}).FullyDescribed()
	// Burst generation must yield a healthy population of >=5-tuple groups;
	// with 1500 actions in bursts of 5-9 we expect on the order of 100+.
	if len(gs) < 40 {
		t.Fatalf("only %d groups with >=5 tuples", len(gs))
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(Small())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(Small())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Dataset.Actions) != len(b.Dataset.Actions) {
		t.Fatal("action counts differ")
	}
	for i := range a.Dataset.Actions {
		x, y := a.Dataset.Actions[i], b.Dataset.Actions[i]
		if x.User != y.User || x.Item != y.Item || len(x.Tags) != len(y.Tags) {
			t.Fatalf("action %d differs", i)
		}
	}
	c := Small()
	c.Seed = 2
	alt, err := Generate(c)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Dataset.Actions {
		if a.Dataset.Actions[i].User != alt.Dataset.Actions[i].User {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical data")
	}
}

func TestGenerateTagTopicCoherence(t *testing.T) {
	// Tags drawn within a single action should share a topic far more
	// often than chance (0.7 of draws use the item profile's topic).
	w, err := Generate(Small())
	if err != nil {
		t.Fatal(err)
	}
	pairs, samePairs := 0, 0
	for _, a := range w.Dataset.Actions {
		for i := 0; i < len(a.Tags); i++ {
			for j := i + 1; j < len(a.Tags); j++ {
				pairs++
				if w.TopicOfTag[a.Tags[i]] == w.TopicOfTag[a.Tags[j]] {
					samePairs++
				}
			}
		}
	}
	if pairs == 0 {
		t.Fatal("no multi-tag actions generated")
	}
	frac := float64(samePairs) / float64(pairs)
	chance := 1.0 / float64(Small().Topics)
	if frac < 3*chance {
		t.Fatalf("same-topic pair fraction %v vs chance %v: no coherence", frac, chance)
	}
}

func TestGenerateRatingsInRange(t *testing.T) {
	w, err := Generate(Small())
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range w.Dataset.Actions {
		if a.Rating < 0.5 || a.Rating > 5 {
			t.Fatalf("action %d rating %v", i, a.Rating)
		}
		// Half-star granularity.
		if r := a.Rating * 2; r != float64(int(r)) {
			t.Fatalf("action %d rating %v not half-star", i, a.Rating)
		}
	}
}

func TestSparseCosine(t *testing.T) {
	a := RatingVector{1: 5, 2: 3}
	if got := SparseCosine(a, a); got < 0.999 {
		t.Fatalf("self cosine = %v", got)
	}
	b := RatingVector{3: 4}
	if got := SparseCosine(a, b); got != 0 {
		t.Fatalf("disjoint cosine = %v", got)
	}
	if SparseCosine(nil, a) != 0 || SparseCosine(a, RatingVector{}) != 0 {
		t.Fatal("empty vector cosine != 0")
	}
	// Symmetry.
	c := RatingVector{1: 4, 3: 2}
	if SparseCosine(a, c) != SparseCosine(c, a) {
		t.Fatal("cosine not symmetric")
	}
}

func TestNearestSource(t *testing.T) {
	sources := []RatingVector{
		{1: 5, 2: 5},
		{10: 5, 11: 5},
	}
	targets := []RatingVector{
		{1: 4, 2: 5, 3: 1},
		{10: 5, 11: 4},
		{99: 3}, // no overlap with any source
	}
	got := NearestSource(sources, targets)
	if got[0] != 0 || got[1] != 1 || got[2] != -1 {
		t.Fatalf("NearestSource = %v", got)
	}
}

func TestSimulateTransferAccuracy(t *testing.T) {
	res, err := SimulateTransfer(DefaultTransfer())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Assigned) != DefaultTransfer().TargetUsers {
		t.Fatal("assignment length wrong")
	}
	// Segment-structured ratings must make the transfer much better than
	// the 1/12 chance baseline.
	if res.Accuracy < 0.5 {
		t.Fatalf("transfer accuracy = %v", res.Accuracy)
	}
}

func TestSimulateTransferValidation(t *testing.T) {
	if _, err := SimulateTransfer(TransferConfig{}); err == nil {
		t.Fatal("zero config accepted")
	}
}
