package datagen

import (
	"fmt"
	"math"
	"math/rand"
)

// This file reproduces the paper's user-attribute construction (Section 6,
// "User Attributes"): the MovieLens 10M population has tagging actions but
// no demographics, the 1M population has demographics but no tags; each 10M
// user inherits the attributes of the 1M user whose movie rating vector is
// most cosine-similar. Here both populations are synthesized from shared
// latent taste segments so the transfer's accuracy is measurable.

// RatingVector is a sparse movie-id -> rating map.
type RatingVector map[int32]float64

// SparseCosine returns the cosine similarity of two sparse rating vectors,
// 0 if either is empty.
func SparseCosine(a, b RatingVector) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	// Iterate the smaller map.
	if len(b) < len(a) {
		a, b = b, a
	}
	var dot float64
	for item, ra := range a {
		if rb, ok := b[item]; ok {
			dot += ra * rb
		}
	}
	if dot == 0 {
		return 0
	}
	var na, nb float64
	for _, r := range a {
		na += r * r
	}
	for _, r := range b {
		nb += r * r
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb))
}

// NearestSource returns, for each target rating vector, the index of the
// most cosine-similar source vector (ties to the lowest index; -1 if no
// source has any overlap).
func NearestSource(sources, targets []RatingVector) []int {
	out := make([]int, len(targets))
	for t, tv := range targets {
		best, bestSim := -1, 0.0
		for s, sv := range sources {
			if sim := SparseCosine(sv, tv); sim > bestSim {
				best, bestSim = s, sim
			}
		}
		out[t] = best
	}
	return out
}

// TransferConfig controls the synthetic transfer experiment.
type TransferConfig struct {
	// SourceUsers and TargetUsers size the two populations.
	SourceUsers, TargetUsers int
	// Movies is the shared movie universe.
	Movies int
	// Segments is the number of latent taste segments; users of the same
	// segment rate similarly, which is what makes the transfer meaningful.
	Segments int
	// RatingsPerUser is the expected ratings per user.
	RatingsPerUser int
	Seed           int64
}

// DefaultTransfer mirrors the paper's scale ratio at a tractable size.
func DefaultTransfer() TransferConfig {
	return TransferConfig{
		SourceUsers:    300,
		TargetUsers:    600,
		Movies:         800,
		Segments:       12,
		RatingsPerUser: 40,
		Seed:           1,
	}
}

// TransferResult carries the outcome plus ground truth for evaluation.
type TransferResult struct {
	// Assigned[t] is the source user chosen for target t (-1 if none).
	Assigned []int
	// SourceSegment and TargetSegment are the latent ground truths.
	SourceSegment, TargetSegment []int
	// Accuracy is the fraction of targets whose assigned source shares
	// their latent segment.
	Accuracy float64
}

// SimulateTransfer generates the two populations and runs the
// nearest-rating-vector attribute transfer.
func SimulateTransfer(cfg TransferConfig) (*TransferResult, error) {
	if cfg.SourceUsers < 1 || cfg.TargetUsers < 1 || cfg.Movies < 1 || cfg.Segments < 1 {
		return nil, fmt.Errorf("datagen: bad transfer config %+v", cfg)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	// Each segment likes a random half of a dedicated movie slice and
	// rates liked movies high, others low.
	segMovies := make([][]int32, cfg.Segments)
	moviesPerSeg := cfg.Movies / cfg.Segments
	if moviesPerSeg < 1 {
		moviesPerSeg = 1
	}
	for s := range segMovies {
		base := (s * moviesPerSeg) % cfg.Movies
		ids := make([]int32, 0, moviesPerSeg)
		for m := 0; m < moviesPerSeg; m++ {
			ids = append(ids, int32((base+m)%cfg.Movies))
		}
		segMovies[s] = ids
	}
	genUser := func(seg int) RatingVector {
		rv := make(RatingVector, cfg.RatingsPerUser)
		own := segMovies[seg]
		for i := 0; i < cfg.RatingsPerUser; i++ {
			var movie int32
			var rating float64
			if rng.Float64() < 0.8 {
				movie = own[rng.Intn(len(own))]
				rating = clampRating(4.2 + 0.5*rng.NormFloat64())
			} else {
				movie = int32(rng.Intn(cfg.Movies))
				rating = clampRating(2.5 + rng.NormFloat64())
			}
			rv[movie] = rating
		}
		return rv
	}
	sources := make([]RatingVector, cfg.SourceUsers)
	srcSeg := make([]int, cfg.SourceUsers)
	for u := range sources {
		srcSeg[u] = rng.Intn(cfg.Segments)
		sources[u] = genUser(srcSeg[u])
	}
	targets := make([]RatingVector, cfg.TargetUsers)
	tgtSeg := make([]int, cfg.TargetUsers)
	for u := range targets {
		tgtSeg[u] = rng.Intn(cfg.Segments)
		targets[u] = genUser(tgtSeg[u])
	}
	assigned := NearestSource(sources, targets)
	correct := 0
	for t, s := range assigned {
		if s >= 0 && srcSeg[s] == tgtSeg[t] {
			correct++
		}
	}
	return &TransferResult{
		Assigned:      assigned,
		SourceSegment: srcSeg,
		TargetSegment: tgtSeg,
		Accuracy:      float64(correct) / float64(len(targets)),
	}, nil
}
