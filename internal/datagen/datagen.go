// Package datagen synthesizes MovieLens-like tagging datasets with the
// structure the paper's evaluation depends on (Section 6): users carrying
// {gender, age, occupation, state} demographics, movies carrying {genre,
// actor, director}, a long-tail tag vocabulary organized by latent topics,
// and tagging actions concentrated on recurring (user-segment,
// item-profile) combinations so that thousands of describable groups clear
// the paper's 5-tuple floor.
//
// The original data pipeline matched MovieLens 10M users (who have tags but
// no demographics) to MovieLens 1M users (demographics but no tags) by
// rating-vector cosine; transfer.go reproduces that stage synthetically.
package datagen

import (
	"fmt"
	"math/rand"

	"tagdm/internal/model"
)

// Config controls generation. The zero value is not valid; start from
// Default or Small.
type Config struct {
	// Users, Items and Actions set the population sizes.
	Users, Items, Actions int
	// VocabSize is the tag vocabulary size.
	VocabSize int
	// Topics is the number of latent tag topics driving co-occurrence.
	Topics int
	// UserSegments is how many distinct demographic profiles users draw
	// from; fewer segments concentrate actions into fewer groups.
	UserSegments int
	// ItemProfiles is how many distinct (genre, actor, director)
	// combinations items draw from.
	ItemProfiles int
	// BurstMin and BurstMax bound the number of actions emitted per
	// (segment, profile) burst; bursts are what make groups clear the
	// min-tuple floor.
	BurstMin, BurstMax int
	// TagsMin and TagsMax bound tags per action.
	TagsMin, TagsMax int
	// Seed drives everything.
	Seed int64
}

// Default mirrors the paper's post-join dataset scale: 2,320 users, 6,258
// movies, 33,322 tagging actions (Section 6), 25 latent topics.
func Default() Config {
	return Config{
		Users:        2320,
		Items:        6258,
		Actions:      33322,
		VocabSize:    12000,
		Topics:       25,
		UserSegments: 280,
		ItemProfiles: 700,
		BurstMin:     5,
		BurstMax:     9,
		TagsMin:      1,
		TagsMax:      4,
		Seed:         1,
	}
}

// Small is a fast configuration for tests and examples.
func Small() Config {
	return Config{
		Users:        120,
		Items:        200,
		Actions:      1500,
		VocabSize:    400,
		Topics:       8,
		UserSegments: 24,
		ItemProfiles: 40,
		BurstMin:     5,
		BurstMax:     9,
		TagsMin:      1,
		TagsMax:      3,
		Seed:         1,
	}
}

func (c Config) validate() error {
	switch {
	case c.Users < 1 || c.Items < 1 || c.Actions < 1:
		return fmt.Errorf("datagen: population sizes must be positive")
	case c.VocabSize < c.Topics || c.Topics < 1:
		return fmt.Errorf("datagen: need VocabSize >= Topics >= 1")
	case c.UserSegments < 1 || c.ItemProfiles < 1:
		return fmt.Errorf("datagen: segment counts must be positive")
	case c.BurstMin < 1 || c.BurstMax < c.BurstMin:
		return fmt.Errorf("datagen: bad burst bounds [%d, %d]", c.BurstMin, c.BurstMax)
	case c.TagsMin < 1 || c.TagsMax < c.TagsMin:
		return fmt.Errorf("datagen: bad tag bounds [%d, %d]", c.TagsMin, c.TagsMax)
	}
	return nil
}

// Attribute value pools mirroring the paper's schema cardinalities:
// gender 2, age 8, occupation 21, state 52, genre 19.
var (
	genders     = []string{"male", "female"}
	ageRanges   = []string{"under 18", "18-24", "25-34", "35-44", "45-49", "50-55", "56+", "unknown"}
	occupations = []string{
		"student", "artist", "doctor", "lawyer", "engineer", "teacher",
		"programmer", "writer", "scientist", "manager", "salesman",
		"technician", "farmer", "homemaker", "librarian", "marketing",
		"retired", "executive", "clerical", "craftsman", "unemployed",
	}
	genres = []string{
		"action", "adventure", "animation", "children", "comedy", "crime",
		"documentary", "drama", "fantasy", "film-noir", "horror", "musical",
		"mystery", "romance", "sci-fi", "thriller", "war", "western", "imax",
	}
)

// states covers the 50 US states plus DC and "foreign", matching the
// paper's 52-value location attribute.
var states = func() []string {
	base := []string{
		"AL", "AK", "AZ", "AR", "CA", "CO", "CT", "DE", "FL", "GA", "HI",
		"ID", "IL", "IN", "IA", "KS", "KY", "LA", "ME", "MD", "MA", "MI",
		"MN", "MS", "MO", "MT", "NE", "NV", "NH", "NJ", "NM", "NY", "NC",
		"ND", "OH", "OK", "OR", "PA", "RI", "SC", "SD", "TN", "TX", "UT",
		"VT", "VA", "WA", "WV", "WI", "WY", "DC", "foreign",
	}
	return base
}()

type segment struct {
	gender, age, occupation, state string
	// favoriteTopic biases this segment's tag choices.
	favoriteTopic int
}

type itemProfile struct {
	genre, actor, director string
	// topic is the genre-derived latent topic of the profile.
	topic int
}

// World is the generated dataset plus the latent structure that produced
// it, exposed so experiments can validate recovered structure against
// ground truth.
type World struct {
	Dataset *model.Dataset
	// SegmentOfUser maps each user id to its segment index.
	SegmentOfUser []int
	// ProfileOfItem maps each item id to its item-profile index.
	ProfileOfItem []int
	// TopicOfTag maps each tag id to its primary latent topic.
	TopicOfTag []int
}

// Generate builds a World from the configuration.
func Generate(cfg Config) (*World, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	segs := makeSegments(cfg, rng)
	profiles := makeItemProfiles(cfg, rng)

	d := model.NewDataset(
		model.NewSchema("gender", "age", "occupation", "state"),
		model.NewSchema("genre", "actor", "director"),
	)

	// Zipf skew over segments and profiles: a few are very active.
	segZipf := rand.NewZipf(rng, 1.3, 1, uint64(len(segs)-1))
	profZipf := rand.NewZipf(rng, 1.2, 1, uint64(len(profiles)-1))

	// Users: assign each to a segment (skewed) and register attributes.
	segOfUser := make([]int, cfg.Users)
	usersOfSeg := make([][]int32, len(segs))
	for u := 0; u < cfg.Users; u++ {
		si := int(segZipf.Uint64())
		segOfUser[u] = si
		id, err := d.AddUser(map[string]string{
			"gender":     segs[si].gender,
			"age":        segs[si].age,
			"occupation": segs[si].occupation,
			"state":      segs[si].state,
		})
		if err != nil {
			return nil, err
		}
		usersOfSeg[si] = append(usersOfSeg[si], id)
	}
	// Items: assign each to a profile (skewed).
	profOfItem := make([]int, cfg.Items)
	itemsOfProf := make([][]int32, len(profiles))
	for i := 0; i < cfg.Items; i++ {
		pi := int(profZipf.Uint64())
		profOfItem[i] = pi
		id, err := d.AddItem(map[string]string{
			"genre":    profiles[pi].genre,
			"actor":    profiles[pi].actor,
			"director": profiles[pi].director,
		})
		if err != nil {
			return nil, err
		}
		itemsOfProf[pi] = append(itemsOfProf[pi], id)
	}

	// Tag vocabulary: word w's primary topic is w mod Topics; within a
	// topic, earlier words are exponentially more frequent (long tail).
	topicOfTag := make([]int, cfg.VocabSize)
	tagNames := make([]string, cfg.VocabSize)
	for w := 0; w < cfg.VocabSize; w++ {
		topicOfTag[w] = w % cfg.Topics
		tagNames[w] = fmt.Sprintf("tag-%02d-%04d", topicOfTag[w], w/cfg.Topics)
	}
	// Intern the whole vocabulary up front so tag ids equal word indexes
	// and TopicOfTag is directly indexable by model.TagID.
	for w := 0; w < cfg.VocabSize; w++ {
		d.Vocab.ID(tagNames[w])
	}
	wordsPerTopic := (cfg.VocabSize + cfg.Topics - 1) / cfg.Topics
	tagZipf := rand.NewZipf(rng, 1.6, 1, uint64(wordsPerTopic-1))

	drawTag := func(topic int) string {
		rank := int(tagZipf.Uint64())
		w := rank*cfg.Topics + topic
		if w >= cfg.VocabSize {
			w = topic
		}
		return tagNames[w]
	}

	// Emit bursts of actions on a (segment, profile) pair until the action
	// budget is spent. Each burst's tags mix the profile's genre topic
	// (70%), the segment's favorite topic (20%), and noise (10%).
	emitted := 0
	for emitted < cfg.Actions {
		si := int(segZipf.Uint64())
		pi := int(profZipf.Uint64())
		if len(usersOfSeg[si]) == 0 || len(itemsOfProf[pi]) == 0 {
			continue
		}
		burst := cfg.BurstMin + rng.Intn(cfg.BurstMax-cfg.BurstMin+1)
		if emitted+burst > cfg.Actions {
			burst = cfg.Actions - emitted
		}
		for b := 0; b < burst; b++ {
			u := usersOfSeg[si][rng.Intn(len(usersOfSeg[si]))]
			it := itemsOfProf[pi][rng.Intn(len(itemsOfProf[pi]))]
			nTags := cfg.TagsMin + rng.Intn(cfg.TagsMax-cfg.TagsMin+1)
			tags := make([]string, 0, nTags)
			seen := map[string]bool{}
			for len(tags) < nTags {
				topic := profiles[pi].topic
				switch r := rng.Float64(); {
				case r < 0.10:
					topic = rng.Intn(cfg.Topics)
				case r < 0.30:
					topic = segs[si].favoriteTopic
				}
				tag := drawTag(topic)
				if !seen[tag] {
					seen[tag] = true
					tags = append(tags, tag)
				}
			}
			rating := clampRating(3 + rng.NormFloat64())
			if err := d.AddAction(u, it, rating, tags...); err != nil {
				return nil, err
			}
			emitted++
		}
	}

	return &World{
		Dataset:       d,
		SegmentOfUser: segOfUser,
		ProfileOfItem: profOfItem,
		TopicOfTag:    topicOfTag,
	}, nil
}

func clampRating(r float64) float64 {
	if r < 0.5 {
		return 0.5
	}
	if r > 5 {
		return 5
	}
	// Round to half stars like MovieLens 10M.
	return float64(int(r*2+0.5)) / 2
}

func makeSegments(cfg Config, rng *rand.Rand) []segment {
	seen := map[string]bool{}
	segs := make([]segment, 0, cfg.UserSegments)
	for len(segs) < cfg.UserSegments {
		s := segment{
			gender:        genders[rng.Intn(len(genders))],
			age:           ageRanges[rng.Intn(len(ageRanges))],
			occupation:    occupations[rng.Intn(len(occupations))],
			state:         states[rng.Intn(len(states))],
			favoriteTopic: rng.Intn(cfg.Topics),
		}
		key := s.gender + "|" + s.age + "|" + s.occupation + "|" + s.state
		if !seen[key] {
			seen[key] = true
			segs = append(segs, s)
		}
	}
	return segs
}

func makeItemProfiles(cfg Config, rng *rand.Rand) []itemProfile {
	// Actor and director pools sized like the paper's filtered sets
	// (697 actors, 210 directors), scaled down for small configs.
	nActors, nDirectors := 697, 210
	if cfg.ItemProfiles < 100 {
		nActors, nDirectors = 60, 20
	}
	profiles := make([]itemProfile, cfg.ItemProfiles)
	for p := range profiles {
		g := rng.Intn(len(genres))
		// Directors have a home genre so item groups correlate with
		// coherent tag topics: director d works mostly in genre d%19.
		dir := rng.Intn(nDirectors)
		if rng.Float64() < 0.7 {
			g = dir % len(genres)
		}
		profiles[p] = itemProfile{
			genre:    genres[g],
			actor:    fmt.Sprintf("actor-%03d", rng.Intn(nActors)),
			director: fmt.Sprintf("director-%03d", dir),
			topic:    g % cfg.Topics,
		}
	}
	return profiles
}
