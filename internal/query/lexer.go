// Package query implements a small declarative language for TagDM
// analyses, so the mining scenarios of the paper read like queries:
//
//	ANALYZE PROBLEM 3 WHERE genre=drama WITH k=3, support=1%, q=0.5, r=0.5
//
//	ANALYZE MAXIMIZE diversity(tags)
//	SUBJECT TO similarity(users) >= 0.5, similarity(items) >= 0.5
//	WHERE gender=male AND state=CA
//	WITH k=3, support=350
//
// Parsing produces a Request: a core.ProblemSpec plus the scoping filter
// (the WHERE conjunction) and the parameters. Execution is the caller's
// job — the facade builds the scoped pipeline and runs the spec.
package query

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokPercent // a number immediately followed by '%'
	tokComma
	tokLParen
	tokRParen
	tokEq
	tokGE
	tokStar
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of query"
	}
	return fmt.Sprintf("%q", t.text)
}

// lex splits the input into tokens. Identifiers may contain letters,
// digits, '_', '-' and '.', so attribute values like "new-york" or
// "director-042" need no quoting; values with spaces use single quotes.
func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	n := len(input)
	for i < n {
		c := rune(input[i])
		switch {
		case unicode.IsSpace(c):
			i++
		case c == ',':
			toks = append(toks, token{tokComma, ",", i})
			i++
		case c == '(':
			toks = append(toks, token{tokLParen, "(", i})
			i++
		case c == ')':
			toks = append(toks, token{tokRParen, ")", i})
			i++
		case c == '*':
			toks = append(toks, token{tokStar, "*", i})
			i++
		case c == '=':
			toks = append(toks, token{tokEq, "=", i})
			i++
		case c == '>':
			if i+1 < n && input[i+1] == '=' {
				toks = append(toks, token{tokGE, ">=", i})
				i += 2
			} else {
				return nil, fmt.Errorf("query: position %d: expected >=", i)
			}
		case c == '\'':
			j := strings.IndexByte(input[i+1:], '\'')
			if j < 0 {
				return nil, fmt.Errorf("query: position %d: unterminated quote", i)
			}
			toks = append(toks, token{tokIdent, input[i+1 : i+1+j], i})
			i += j + 2
		case unicode.IsDigit(c):
			j := i
			for j < n && (unicode.IsDigit(rune(input[j])) || input[j] == '.') {
				j++
			}
			if j < n && input[j] == '%' {
				toks = append(toks, token{tokPercent, input[i:j], i})
				j++
			} else {
				toks = append(toks, token{tokNumber, input[i:j], i})
			}
			i = j
		case unicode.IsLetter(c) || c == '_':
			j := i
			for j < n && isIdentRune(rune(input[j])) {
				j++
			}
			toks = append(toks, token{tokIdent, input[i:j], i})
			i = j
		default:
			return nil, fmt.Errorf("query: position %d: unexpected character %q", i, c)
		}
	}
	toks = append(toks, token{tokEOF, "", n})
	return toks, nil
}

func isIdentRune(c rune) bool {
	return unicode.IsLetter(c) || unicode.IsDigit(c) || c == '_' || c == '-' || c == '.'
}
