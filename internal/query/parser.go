package query

import (
	"fmt"
	"strconv"
	"strings"

	"tagdm/internal/core"
	"tagdm/internal/mining"
)

// Request is a parsed analysis query. Support may be given as an absolute
// tuple count or as a percentage of the scoped corpus, hence the pair of
// fields; Resolve turns it into a concrete spec for a corpus size.
type Request struct {
	// ProblemID is 1..6 when the query names a canned instance, 0 for a
	// custom MAXIMIZE clause.
	ProblemID int
	// Objectives and Constraints are set for custom queries.
	Objectives  []core.Objective
	Constraints []core.Constraint
	// Where is the scoping filter (attribute -> value), possibly empty.
	Where map[string]string
	// K is the group budget (default 3).
	K int
	// SupportAbs is an absolute support floor; SupportPct a percentage of
	// the scoped tuple count. At most one is non-zero.
	SupportAbs int
	SupportPct float64
	// Q and R are the user/item thresholds for canned problems
	// (default 0.5 each).
	Q, R float64
}

// Resolve produces the concrete ProblemSpec for a corpus of nTuples
// tagging actions (after the WHERE scoping).
func (r *Request) Resolve(nTuples int) (core.ProblemSpec, error) {
	support := r.SupportAbs
	if r.SupportPct > 0 {
		support = int(r.SupportPct / 100 * float64(nTuples))
	}
	if r.ProblemID != 0 {
		return core.PaperProblem(r.ProblemID, r.K, support, r.Q, r.R)
	}
	spec := core.ProblemSpec{
		KLo:         1,
		KHi:         r.K,
		MinSupport:  support,
		Objectives:  r.Objectives,
		Constraints: r.Constraints,
		Name:        "custom query",
	}
	return spec, spec.Validate()
}

// Parse compiles a query string into a Request.
func Parse(input string) (*Request, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	req, err := p.parse()
	if err != nil {
		return nil, err
	}
	return req, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) expectKeyword(kw string) error {
	t := p.next()
	if t.kind != tokIdent || !strings.EqualFold(t.text, kw) {
		return fmt.Errorf("query: expected %s, got %s", kw, t)
	}
	return nil
}

func (p *parser) atKeyword(kw string) bool {
	t := p.cur()
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}

func (p *parser) parse() (*Request, error) {
	req := &Request{K: 3, Q: 0.5, R: 0.5, Where: map[string]string{}}
	if err := p.expectKeyword("ANALYZE"); err != nil {
		return nil, err
	}
	switch {
	case p.atKeyword("PROBLEM"):
		p.next()
		t := p.next()
		if t.kind != tokNumber {
			return nil, fmt.Errorf("query: expected problem number, got %s", t)
		}
		id, err := strconv.Atoi(t.text)
		if err != nil || id < 1 || id > 6 {
			return nil, fmt.Errorf("query: problem id must be 1..6, got %s", t)
		}
		req.ProblemID = id
	case p.atKeyword("MAXIMIZE"):
		p.next()
		for {
			obj, err := p.parseObjective()
			if err != nil {
				return nil, err
			}
			req.Objectives = append(req.Objectives, obj)
			if p.cur().kind != tokComma {
				break
			}
			p.next()
		}
		if p.atKeyword("SUBJECT") {
			p.next()
			if err := p.expectKeyword("TO"); err != nil {
				return nil, err
			}
			for {
				con, err := p.parseConstraint()
				if err != nil {
					return nil, err
				}
				req.Constraints = append(req.Constraints, con)
				if p.cur().kind != tokComma {
					break
				}
				p.next()
			}
		}
	default:
		return nil, fmt.Errorf("query: expected PROBLEM or MAXIMIZE, got %s", p.cur())
	}
	if p.atKeyword("WHERE") {
		p.next()
		for {
			name := p.next()
			if name.kind != tokIdent {
				return nil, fmt.Errorf("query: expected attribute name, got %s", name)
			}
			if t := p.next(); t.kind != tokEq {
				return nil, fmt.Errorf("query: expected = after %q, got %s", name.text, t)
			}
			val := p.next()
			if val.kind != tokIdent && val.kind != tokNumber {
				return nil, fmt.Errorf("query: expected value for %q, got %s", name.text, val)
			}
			req.Where[name.text] = val.text
			if !p.atKeyword("AND") {
				break
			}
			p.next()
		}
	}
	if p.atKeyword("WITH") {
		p.next()
		for {
			if err := p.parseParam(req); err != nil {
				return nil, err
			}
			if p.cur().kind != tokComma {
				break
			}
			p.next()
		}
	}
	if t := p.cur(); t.kind != tokEOF {
		return nil, fmt.Errorf("query: trailing input at %s", t)
	}
	return req, nil
}

// parseMeasureDim parses measure(dimension).
func (p *parser) parseMeasureDim() (mining.Measure, mining.Dimension, error) {
	m := p.next()
	if m.kind != tokIdent {
		return 0, 0, fmt.Errorf("query: expected measure, got %s", m)
	}
	var meas mining.Measure
	switch strings.ToLower(m.text) {
	case "similarity", "sim":
		meas = mining.Similarity
	case "diversity", "div":
		meas = mining.Diversity
	default:
		return 0, 0, fmt.Errorf("query: unknown measure %q", m.text)
	}
	if t := p.next(); t.kind != tokLParen {
		return 0, 0, fmt.Errorf("query: expected ( after %s, got %s", m.text, t)
	}
	d := p.next()
	if d.kind != tokIdent {
		return 0, 0, fmt.Errorf("query: expected dimension, got %s", d)
	}
	var dim mining.Dimension
	switch strings.ToLower(d.text) {
	case "users", "user":
		dim = mining.Users
	case "items", "item":
		dim = mining.Items
	case "tags", "tag":
		dim = mining.Tags
	default:
		return 0, 0, fmt.Errorf("query: unknown dimension %q", d.text)
	}
	if t := p.next(); t.kind != tokRParen {
		return 0, 0, fmt.Errorf("query: expected ), got %s", t)
	}
	return meas, dim, nil
}

func (p *parser) parseObjective() (core.Objective, error) {
	meas, dim, err := p.parseMeasureDim()
	if err != nil {
		return core.Objective{}, err
	}
	obj := core.Objective{Dim: dim, Meas: meas, Weight: 1}
	if p.cur().kind == tokStar {
		p.next()
		t := p.next()
		if t.kind != tokNumber {
			return core.Objective{}, fmt.Errorf("query: expected weight after *, got %s", t)
		}
		w, err := strconv.ParseFloat(t.text, 64)
		if err != nil || w <= 0 {
			return core.Objective{}, fmt.Errorf("query: bad weight %q", t.text)
		}
		obj.Weight = w
	}
	return obj, nil
}

func (p *parser) parseConstraint() (core.Constraint, error) {
	meas, dim, err := p.parseMeasureDim()
	if err != nil {
		return core.Constraint{}, err
	}
	if t := p.next(); t.kind != tokGE {
		return core.Constraint{}, fmt.Errorf("query: expected >=, got %s", t)
	}
	t := p.next()
	if t.kind != tokNumber {
		return core.Constraint{}, fmt.Errorf("query: expected threshold, got %s", t)
	}
	th, err := strconv.ParseFloat(t.text, 64)
	if err != nil || th < 0 || th > 1 {
		return core.Constraint{}, fmt.Errorf("query: threshold must be in [0,1], got %q", t.text)
	}
	return core.Constraint{Dim: dim, Meas: meas, Threshold: th}, nil
}

func (p *parser) parseParam(req *Request) error {
	name := p.next()
	if name.kind != tokIdent {
		return fmt.Errorf("query: expected parameter name, got %s", name)
	}
	if t := p.next(); t.kind != tokEq {
		return fmt.Errorf("query: expected = after %q, got %s", name.text, t)
	}
	val := p.next()
	switch strings.ToLower(name.text) {
	case "k":
		if val.kind != tokNumber {
			return fmt.Errorf("query: k wants an integer, got %s", val)
		}
		k, err := strconv.Atoi(val.text)
		if err != nil || k < 1 {
			return fmt.Errorf("query: bad k %q", val.text)
		}
		req.K = k
	case "support":
		switch val.kind {
		case tokNumber:
			s, err := strconv.Atoi(val.text)
			if err != nil || s < 0 {
				return fmt.Errorf("query: bad support %q", val.text)
			}
			req.SupportAbs, req.SupportPct = s, 0
		case tokPercent:
			pct, err := strconv.ParseFloat(val.text, 64)
			if err != nil || pct < 0 || pct > 100 {
				return fmt.Errorf("query: bad support percentage %q", val.text)
			}
			req.SupportPct, req.SupportAbs = pct, 0
		default:
			return fmt.Errorf("query: support wants a count or percentage, got %s", val)
		}
	case "q":
		return parseThresholdInto(&req.Q, val)
	case "r":
		return parseThresholdInto(&req.R, val)
	default:
		return fmt.Errorf("query: unknown parameter %q (want k, support, q or r)", name.text)
	}
	return nil
}

func parseThresholdInto(dst *float64, val token) error {
	if val.kind != tokNumber {
		return fmt.Errorf("query: threshold wants a number, got %s", val)
	}
	f, err := strconv.ParseFloat(val.text, 64)
	if err != nil || f < 0 || f > 1 {
		return fmt.Errorf("query: threshold must be in [0,1], got %q", val.text)
	}
	*dst = f
	return nil
}
