package query

import (
	"strings"
	"testing"

	"tagdm/internal/mining"
)

func TestParseProblemQuery(t *testing.T) {
	req, err := Parse("ANALYZE PROBLEM 3 WHERE genre=drama WITH k=3, support=1%, q=0.5, r=0.6")
	if err != nil {
		t.Fatal(err)
	}
	if req.ProblemID != 3 {
		t.Fatalf("problem = %d", req.ProblemID)
	}
	if req.Where["genre"] != "drama" {
		t.Fatalf("where = %v", req.Where)
	}
	if req.K != 3 || req.SupportPct != 1 || req.Q != 0.5 || req.R != 0.6 {
		t.Fatalf("params = %+v", req)
	}
	spec, err := req.Resolve(20000)
	if err != nil {
		t.Fatal(err)
	}
	if spec.MinSupport != 200 {
		t.Fatalf("resolved support = %d", spec.MinSupport)
	}
	if spec.Name != "Problem 3" {
		t.Fatalf("name = %q", spec.Name)
	}
}

func TestParseCustomQuery(t *testing.T) {
	req, err := Parse(`ANALYZE MAXIMIZE diversity(tags), diversity(users) * 0.5
		SUBJECT TO similarity(items) >= 0.4
		WHERE gender=male AND state=CA
		WITH k=4, support=350`)
	if err != nil {
		t.Fatal(err)
	}
	if req.ProblemID != 0 {
		t.Fatal("custom query got a problem id")
	}
	if len(req.Objectives) != 2 {
		t.Fatalf("objectives = %v", req.Objectives)
	}
	if req.Objectives[0].Dim != mining.Tags || req.Objectives[0].Meas != mining.Diversity {
		t.Fatalf("objective 0 = %v", req.Objectives[0])
	}
	if req.Objectives[1].Weight != 0.5 {
		t.Fatalf("objective 1 weight = %v", req.Objectives[1].Weight)
	}
	if len(req.Constraints) != 1 || req.Constraints[0].Threshold != 0.4 {
		t.Fatalf("constraints = %v", req.Constraints)
	}
	if req.Where["gender"] != "male" || req.Where["state"] != "CA" {
		t.Fatalf("where = %v", req.Where)
	}
	spec, err := req.Resolve(1000)
	if err != nil {
		t.Fatal(err)
	}
	if spec.MinSupport != 350 || spec.KHi != 4 {
		t.Fatalf("spec = %+v", spec)
	}
}

func TestParseDefaults(t *testing.T) {
	req, err := Parse("ANALYZE PROBLEM 1")
	if err != nil {
		t.Fatal(err)
	}
	if req.K != 3 || req.Q != 0.5 || req.R != 0.5 {
		t.Fatalf("defaults = %+v", req)
	}
	if len(req.Where) != 0 {
		t.Fatal("where should be empty")
	}
	if req.SupportAbs != 0 || req.SupportPct != 0 {
		t.Fatal("support should default to zero")
	}
}

func TestParseQuotedValue(t *testing.T) {
	req, err := Parse("ANALYZE PROBLEM 2 WHERE director='woody allen'")
	if err != nil {
		t.Fatal(err)
	}
	if req.Where["director"] != "woody allen" {
		t.Fatalf("where = %v", req.Where)
	}
}

func TestParseMeasureAliases(t *testing.T) {
	req, err := Parse("ANALYZE MAXIMIZE div(tag) SUBJECT TO sim(user) >= 0.5")
	if err != nil {
		t.Fatal(err)
	}
	if req.Objectives[0].Dim != mining.Tags || req.Objectives[0].Meas != mining.Diversity {
		t.Fatalf("objective = %v", req.Objectives[0])
	}
	if req.Constraints[0].Dim != mining.Users || req.Constraints[0].Meas != mining.Similarity {
		t.Fatalf("constraint = %v", req.Constraints[0])
	}
}

func TestParseCaseInsensitiveKeywords(t *testing.T) {
	if _, err := Parse("analyze problem 1 where genre=action with k=2"); err != nil {
		t.Fatal(err)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT * FROM tags",
		"ANALYZE",
		"ANALYZE PROBLEM 7",
		"ANALYZE PROBLEM x",
		"ANALYZE MAXIMIZE",
		"ANALYZE MAXIMIZE happiness(tags)",
		"ANALYZE MAXIMIZE diversity(movies)",
		"ANALYZE MAXIMIZE diversity(tags) SUBJECT similarity(users) >= 0.5",
		"ANALYZE MAXIMIZE diversity(tags) SUBJECT TO similarity(users) > 0.5",
		"ANALYZE MAXIMIZE diversity(tags) SUBJECT TO similarity(users) >= 1.5",
		"ANALYZE PROBLEM 1 WHERE genre",
		"ANALYZE PROBLEM 1 WHERE genre=",
		"ANALYZE PROBLEM 1 WITH k=0",
		"ANALYZE PROBLEM 1 WITH support=200%",
		"ANALYZE PROBLEM 1 WITH q=2",
		"ANALYZE PROBLEM 1 WITH banana=1",
		"ANALYZE PROBLEM 1 garbage",
		"ANALYZE MAXIMIZE diversity(tags) * 0",
		"ANALYZE PROBLEM 1 WHERE a='unterminated",
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("accepted bad query %q", q)
		}
	}
}

func TestParseErrorsMentionPosition(t *testing.T) {
	_, err := Parse("ANALYZE PROBLEM 1 WHERE a ? b")
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "position") && !strings.Contains(err.Error(), "expected") {
		t.Fatalf("unhelpful error %q", err)
	}
}

func TestResolveCustomValidates(t *testing.T) {
	req, err := Parse("ANALYZE MAXIMIZE diversity(tags) WITH k=2")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := req.Resolve(100); err != nil {
		t.Fatal(err)
	}
	// A custom query with no objectives cannot be expressed; the grammar
	// requires at least one after MAXIMIZE, so Resolve never sees it.
}

func TestLexerPercentAndNumbers(t *testing.T) {
	toks, err := lex("5 2.5 10% x")
	if err != nil {
		t.Fatal(err)
	}
	kinds := []tokenKind{tokNumber, tokNumber, tokPercent, tokIdent, tokEOF}
	if len(toks) != len(kinds) {
		t.Fatalf("got %d tokens", len(toks))
	}
	for i, k := range kinds {
		if toks[i].kind != k {
			t.Fatalf("token %d kind = %v, want %v", i, toks[i].kind, k)
		}
	}
}
