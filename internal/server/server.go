// Package server exposes a TagDM analysis engine over a concurrent HTTP
// JSON API: an analysis path (POST /v1/analyze) and a streaming ingest path
// (POST /v1/actions) sharing one store without blocking each other — the
// HTAP shape the roadmap's Polynesia line of work motivates.
//
// Concurrency model. The write side is a single-writer
// incremental.Maintainer guarded by a mutex; the read side is an immutable
// engine snapshot published through an atomic pointer. Ingest batches
// mutate the maintainer and, per the refresh policy, publish a fresh
// deep-copied snapshot (see incremental.Maintainer.Snapshot); analyses
// always solve against whatever snapshot is current, so readers observe a
// consistent engine and never block behind a refresh — at the price of
// bounded staleness (at most Config.RefreshEvery unpublished inserts).
//
// Each published snapshot carries an epoch (the maintainer's insert
// version). Analyze results are cached in an LRU keyed by
// (normalized query, epoch): repeated dashboard queries are O(1) map hits,
// and publishing a new epoch implicitly invalidates every older entry.
// Solver work runs on a bounded worker pool with per-request timeouts, so
// a burst of expensive analyses degrades into explicit 429s instead of
// unbounded goroutine pileup.
//
// Precomputed pair matrices follow the same epoch discipline: the snapshot
// engine lazily builds one condensed matrix per (dimension, measure)
// binding on the first solve that needs it, and every concurrent analyze
// against that snapshot reads the same matrices — pair functions are paid
// once per epoch, not once per request. Publishing a new snapshot starts a
// fresh engine (and thus fresh matrices) consistent with the new data;
// Config.PrewarmMatrices moves the build from the first query to publish
// time for predictable tail latencies.
//
// With Config.Shards > 1 the published view becomes a set of snapshot
// replicas at one epoch, and each analyze scatters one partial solve per
// shard onto per-shard worker pools, merging the partials into exactly the
// answer a single serial solve would return (see shard.go and
// core.SolvePartial). Sharding is purely a serving-tier degree of
// parallelism: the WAL, checkpoints, and ingest path are shard-agnostic,
// so a durable data dir can be rebooted under any shard count.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tagdm/internal/core"
	"tagdm/internal/groups"
	"tagdm/internal/incremental"
	"tagdm/internal/mining"
	"tagdm/internal/model"
	"tagdm/internal/obs"
	"tagdm/internal/query"
	"tagdm/internal/signature"
	"tagdm/internal/wal"
)

// Config tunes a Server. The zero value of every field gets a sensible
// default from withDefaults.
type Config struct {
	// Dataset is the initial corpus; it may be empty (schemas only) for a
	// server populated exclusively through ingest. The server takes
	// ownership: callers must not mutate it afterwards.
	Dataset *model.Dataset
	// MinGroupTuples drops groups smaller than this (default 5, as in the
	// paper).
	MinGroupTuples int
	// Workers bounds concurrent solver executions per shard (default 4).
	Workers int
	// Shards is the number of snapshot replicas the serving tier fans each
	// analyze across (default 1: the classic single-solve path). Each shard
	// gets its own worker pool and solves a deterministic slice of the
	// search space; answers are byte-identical at every shard count.
	// Clamped to len(shardLabels) so per-shard metric series stay bounded.
	Shards int
	// QueueDepth bounds queued analyze requests beyond the running ones;
	// excess requests get 429 (default 64).
	QueueDepth int
	// CacheSize is the analyze LRU capacity in entries (default 256;
	// negative disables caching).
	CacheSize int
	// RefreshEvery publishes a fresh engine snapshot once this many inserts
	// have accumulated (default 1: every ingest batch publishes). Larger
	// values amortize the snapshot copy under heavy streams at the price of
	// staleness.
	RefreshEvery int
	// SolveTimeout caps one analyze request end to end (default 30s).
	SolveTimeout time.Duration
	// Seed drives the LSH hyperplanes for reproducible answers.
	Seed int64
	// PrewarmMatrices builds the pair matrices of every (dimension,
	// measure) binding at snapshot publication instead of on the first
	// query needing them, trading publish latency for flat analyze tails:
	// the publishing ingest request waits for six O(n^2) builds (other
	// ingests proceed; publication itself is never blocked on the build).
	// Pair it with a RefreshEvery large enough to amortize the cost on
	// write-heavy streams. Matrices cost n*(n-1)/2 float64 per binding
	// over n groups.
	PrewarmMatrices bool
	// MatrixBudgetBytes caps the bytes of fully materialized pair matrices
	// the published engine's cache may hold; the coldest matrices are
	// evicted when the cap is exceeded, and bindings whose full triangle
	// would not fit are served through blocked-row materialization instead.
	// Replicas share one cache, so the budget covers the whole serving tier
	// regardless of shard count. Zero means unlimited (the default).
	MatrixBudgetBytes int64
	// AccessLog, when non-nil, receives one structured line per HTTP
	// request (request id, method, path, status, duration) plus slow-solve
	// reports. Use obs.NewJSONLogger for the standard JSON shape.
	AccessLog *slog.Logger
	// SlowSolve is the analyze latency above which a solve is logged to
	// AccessLog with its full resolved problem spec and span tree. Zero
	// disables slow-solve reporting.
	SlowSolve time.Duration

	// DataDir enables durable ingest: a write-ahead log and snapshot
	// checkpoints under this directory. Empty keeps the server purely
	// in-memory (the pre-durability behavior). When the directory already
	// holds a checkpoint, boot recovers from it and Dataset may be nil;
	// a first boot seeds from Dataset and checkpoints it immediately.
	DataDir string
	// FsyncMode selects when WAL appends are fsynced (default
	// wal.SyncAlways: every acknowledged batch is crash-durable).
	FsyncMode wal.SyncMode
	// FlushInterval is the WAL group-commit window (default 2ms; negative
	// flushes each enqueue immediately, for tests).
	FlushInterval time.Duration
	// FlushBytes flushes the group-commit batch early once this many
	// payload bytes are pending (default 256 KiB).
	FlushBytes int
	// SyncEvery is the fsync period under wal.SyncInterval (default 100ms).
	SyncEvery time.Duration
	// CheckpointEvery writes a snapshot checkpoint after this many ingested
	// actions (default 4096; negative disables automatic checkpoints —
	// Checkpoint and Shutdown still write them).
	CheckpointEvery int
	// MaxAnalyzeBytes / MaxIngestBytes cap request bodies; oversized
	// requests get 413 (defaults 1 MiB and 32 MiB).
	MaxAnalyzeBytes int64
	MaxIngestBytes  int64
	// WALFS overrides the filesystem the durability layer writes through;
	// nil uses the real one. The fault-injection tests pass a wal.FaultFS.
	WALFS wal.FS
}

func (c Config) withDefaults() Config {
	if c.MinGroupTuples == 0 {
		c.MinGroupTuples = 5
	}
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if c.Shards > len(shardLabels) {
		c.Shards = len(shardLabels)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.CacheSize == 0 {
		c.CacheSize = 256
	}
	if c.CacheSize < 0 {
		c.CacheSize = 0
	}
	if c.RefreshEvery < 1 {
		c.RefreshEvery = 1
	}
	if c.SolveTimeout <= 0 {
		c.SolveTimeout = 30 * time.Second
	}
	if c.FlushInterval == 0 {
		c.FlushInterval = 2 * time.Millisecond
	}
	if c.FlushInterval < 0 {
		c.FlushInterval = 0
	}
	if c.FlushBytes <= 0 {
		c.FlushBytes = 256 << 10
	}
	if c.SyncEvery <= 0 {
		c.SyncEvery = 100 * time.Millisecond
	}
	if c.CheckpointEvery == 0 {
		c.CheckpointEvery = 4096
	}
	if c.MaxAnalyzeBytes <= 0 {
		c.MaxAnalyzeBytes = 1 << 20
	}
	if c.MaxIngestBytes <= 0 {
		c.MaxIngestBytes = 32 << 20
	}
	return c
}

// Server is the HTTP analysis server. Create with New, serve with any
// http.Server (it implements http.Handler), stop with Close.
type Server struct {
	cfg Config

	// mu serializes the write side: the maintainer, the dataset tables it
	// reads, and snapshot publication. Held across apply+enqueue, never
	// across disk I/O or the WAL ticket wait.
	//
	//tagdm:mutex nonblocking
	mu    sync.Mutex
	ds    *model.Dataset
	maint *incremental.Maintainer

	// shards is the published read view — one snapshot replica per shard,
	// all at the same epoch; analyze handlers only ever touch this, never
	// the maintainer.
	shards atomic.Pointer[shardSet]
	// unpublished counts inserts since the last published snapshot
	// (guarded by mu).
	unpublished int

	cache *resultCache
	// pools holds one bounded worker pool per shard; a scattered analyze
	// submits one partial-solve job to each.
	pools   []*pool[*shardOutcome]
	metrics *metrics
	mux     *http.ServeMux

	// Durability state; dur is nil for a purely in-memory server.
	dur           *durability
	sigSize       int // frequency-summarizer fold width, frozen at first boot
	sinceCkpt     int // actions since the last checkpoint (guarded by mu)
	recovery      RecoveryInfo
	degradedP     atomic.Pointer[degraded]
	ckptMu        sync.Mutex // serializes Checkpoint executions
	ckptRunning   atomic.Bool
	ckptLastSeq   atomic.Uint64
	ckptLastEpoch atomic.Int64
}

// New builds a server over the dataset and publishes the initial snapshot.
// With Config.DataDir set, construction is a durable boot: load the newest
// valid checkpoint (or seed from Config.Dataset on first boot), replay the
// WAL tail, and publish the recovered state — the published epoch then
// continues from where the previous process stopped.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		cache:   newResultCache(cfg.CacheSize),
		metrics: newMetrics(cfg.Shards),
	}
	s.pools = make([]*pool[*shardOutcome], cfg.Shards)
	for i := range s.pools {
		s.pools[i] = newPool[*shardOutcome](cfg.Workers, cfg.QueueDepth)
	}
	if cfg.DataDir == "" {
		if cfg.Dataset == nil {
			s.closePools()
			return nil, fmt.Errorf("server: Config.Dataset is required (may be empty, not nil)")
		}
		sum := signature.FrequencyOfSize(cfg.Dataset.Vocab.Size())
		maint, err := incremental.New(cfg.Dataset, cfg.MinGroupTuples, sum)
		if err != nil {
			s.closePools()
			return nil, err
		}
		s.ds, s.maint = cfg.Dataset, maint
		s.sigSize = cfg.Dataset.Vocab.Size()
	} else {
		boot := obs.NewTrace("recover")
		err := s.openDurable(boot)
		boot.End()
		if err != nil {
			s.closePools()
			return nil, err
		}
	}
	if err := s.publish(); err != nil {
		s.closePools()
		if s.dur != nil {
			//tagdm:allow-discard boot already failing; the open error is the one worth surfacing
			s.dur.log.Close()
		}
		return nil, err
	}
	s.prewarm()
	s.metrics.registerGauges(s)
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/v1/analyze", s.handleAnalyze)
	s.mux.HandleFunc("/v1/actions", s.handleActions)
	s.mux.HandleFunc("/v1/refresh", s.handleRefresh)
	s.mux.HandleFunc("/v1/stats", s.handleStats)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	return s, nil
}

// ServeHTTP implements http.Handler. Every request passes through here:
// it assigns (or adopts) a request id, counts and times the request per
// endpoint, and emits one structured access-log line when Config.AccessLog
// is set.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	reqID := r.Header.Get("X-Request-ID")
	if reqID == "" {
		reqID = obs.NewRequestID()
	}
	r = r.WithContext(obs.ContextWithRequestID(r.Context(), reqID))
	w.Header().Set("X-Request-ID", reqID)

	ep := endpointLabel(r.URL.Path)
	s.metrics.requests.With(ep).Inc()
	sw := &statusWriter{ResponseWriter: w}
	start := time.Now()
	s.mux.ServeHTTP(sw, r)
	elapsed := time.Since(start)
	s.metrics.requestLatency.With(ep).Observe(elapsed.Seconds())
	if s.cfg.AccessLog != nil {
		s.cfg.AccessLog.LogAttrs(r.Context(), slog.LevelInfo, "request",
			slog.String("request_id", reqID),
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.Int("status", sw.statusCode()),
			slog.Float64("duration_ms", float64(elapsed)/1e6),
		)
	}
}

// statusWriter captures the response status for access logging.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) statusCode() int {
	if w.status == 0 {
		return http.StatusOK
	}
	return w.status
}

// Close stops the worker pool after draining queued solves and closes the
// WAL (flushing pending appends) without writing a final checkpoint. Use
// Shutdown for a clean exit that checkpoints first.
func (s *Server) Close() {
	s.closePools()
	if s.dur != nil {
		//tagdm:allow-discard Close has no error path to report into; Shutdown is the checked exit
		_ = s.dur.log.Close()
	}
}

// Shutdown is the graceful exit: drain the worker pool, write a final
// checkpoint (unless degraded — a degraded server must not publish
// checkpoints over possibly-unsynced state), then flush, fsync and close
// the WAL. The context is threaded into the checkpoint's degradation
// logging; the
// checkpoint itself is not interruptible.
func (s *Server) Shutdown(ctx context.Context) error {
	s.closePools()
	if s.dur == nil {
		return nil
	}
	var err error
	if _, isDegraded := s.degradedReason(); !isDegraded {
		err = s.Checkpoint(ctx)
	}
	if cerr := s.dur.log.Close(); cerr != nil && err == nil {
		err = cerr
	}
	return err
}

// Recovery reports what a durable boot found on disk.
func (s *Server) Recovery() RecoveryInfo { return s.recovery }

// Epoch returns the epoch of the currently published snapshot set.
func (s *Server) Epoch() int64 { return s.shards.Load().epoch }

// closePools stops every shard pool after draining queued solves.
func (s *Server) closePools() {
	for _, p := range s.pools {
		p.close()
	}
}

// queuedJobs sums queued (not yet running) solve jobs across shard pools.
func (s *Server) queuedJobs() int {
	total := 0
	for _, p := range s.pools {
		total += p.depth()
	}
	return total
}

// DatasetStats summarizes the corpus the server booted with (including
// recovered state on a durable boot). Entity counts stay current as ingest
// creates users and items; the action count reflects boot time — use
// /v1/stats for the live figure.
func (s *Server) DatasetStats() model.Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ds.Stats()
}

// prewarm builds every (dimension, measure) pair matrix of the published
// view. All shard replicas share the primary engine's cache, so warming the
// primary warms the whole replica set — one physical build per binding
// regardless of shard count (the cache single-flights racing builds).
// Callers invoke it after releasing s.mu: an O(n^2) build per binding must
// never stall the write path. The publishing request waits for the build
// (that is the prewarm contract — publish pays so analyzes don't), while
// other ingests proceed.
func (s *Server) prewarm() {
	if !s.cfg.PrewarmMatrices {
		return
	}
	eng := s.shards.Load().primary().Engine
	for _, dim := range []mining.Dimension{mining.Users, mining.Items, mining.Tags} {
		for _, meas := range []mining.Measure{mining.Similarity, mining.Diversity} {
			eng.PairMatrix(dim, meas)
		}
	}
}

// --- wire types ---

// AnalyzeRequest is the body of POST /v1/analyze.
type AnalyzeRequest struct {
	// Query is an ANALYZE statement, e.g.
	// "ANALYZE PROBLEM 3 WHERE genre=drama WITH k=3, support=1%".
	Query string `json:"query"`
	// Trace requests the span tree of this request in the response:
	// parse, cache and solve phases, with the solver's per-stage spans
	// (matrix, enumerate, lsh_build, ...) nested under solve.
	Trace bool `json:"trace,omitempty"`
}

// GroupResult is one returned group of an analyze response.
type GroupResult struct {
	// Description renders the group predicate, e.g. {gender=male, genre=action}.
	Description string `json:"description"`
	// Size is the group's tagging-action count.
	Size int `json:"size"`
}

// AnalyzeResponse is the body of a successful POST /v1/analyze.
type AnalyzeResponse struct {
	Query string `json:"query"`
	// Epoch is the engine snapshot the result was computed against.
	Epoch int64 `json:"epoch"`
	// Found is false for a null result (no feasible group set).
	Found     bool          `json:"found"`
	Algorithm string        `json:"algorithm,omitempty"`
	Objective float64       `json:"objective"`
	Support   int           `json:"support"`
	Groups    []GroupResult `json:"groups"`
	// SolveMillis is the solver wall-clock; cached responses keep the
	// original solve time.
	SolveMillis float64 `json:"solve_millis"`
	// Cached reports whether this response came from the result cache.
	Cached bool `json:"cached"`
	// RequestID echoes the X-Request-ID of this request (set only when
	// Trace was requested; the header carries it on every response).
	RequestID string `json:"request_id,omitempty"`
	// Trace is the request's span tree, present when AnalyzeRequest.Trace
	// was set. The encode span is still open when the tree is snapshotted,
	// so its wall time reads near zero here; the slow-solve log carries
	// the completed tree.
	Trace *obs.SpanTree `json:"trace,omitempty"`

	// spec keeps the resolved problem spec for slow-solve reporting; it
	// never crosses the wire.
	spec *core.ProblemSpec
}

type analyzeResponse = AnalyzeResponse

// IngestAction is one element of an ingest batch. Either reference an
// existing entity by id (user/item) or create one inline by supplying its
// attribute map (user_attrs/item_attrs).
type IngestAction struct {
	User      *int32            `json:"user,omitempty"`
	Item      *int32            `json:"item,omitempty"`
	UserAttrs map[string]string `json:"user_attrs,omitempty"`
	ItemAttrs map[string]string `json:"item_attrs,omitempty"`
	Rating    float64           `json:"rating,omitempty"`
	Tags      []string          `json:"tags"`
}

// IngestRequest is the body of POST /v1/actions.
type IngestRequest struct {
	Actions []IngestAction `json:"actions"`
	// Refresh overrides the RefreshEvery policy for this batch: true forces
	// snapshot publication, false suppresses it.
	Refresh *bool `json:"refresh,omitempty"`
}

// IngestResponse is the body of a successful POST /v1/actions.
type IngestResponse struct {
	Inserted     int `json:"inserted"`
	UsersCreated int `json:"users_created"`
	ItemsCreated int `json:"items_created"`
	// Epoch is the published snapshot epoch after this batch; stale until
	// the next publish when Published is false.
	Epoch     int64 `json:"epoch"`
	Published bool  `json:"published"`
	// Pending counts inserts not yet visible to analyses.
	Pending int `json:"pending"`
}

// StatsResponse is the body of GET /v1/stats.
type StatsResponse struct {
	Epoch int64 `json:"epoch"`
	// Shards is the serving-tier fan-out: snapshot replicas (and worker
	// pools) each analyze scatters across.
	Shards         int     `json:"shards"`
	PendingInserts int     `json:"pending_inserts"`
	Actions        int     `json:"actions"`
	Groups         int     `json:"groups"`
	Users          int     `json:"users"`
	Items          int     `json:"items"`
	VocabSize      int     `json:"vocab_size"`
	UptimeSeconds  float64 `json:"uptime_seconds"`

	Cache struct {
		Size      int     `json:"size"`
		Capacity  int     `json:"capacity"`
		Hits      int64   `json:"hits"`
		Misses    int64   `json:"misses"`
		Evictions int64   `json:"evictions"`
		HitRate   float64 `json:"hit_rate"`
	} `json:"cache"`

	Pool struct {
		Workers    int `json:"workers"`
		QueueDepth int `json:"queue_depth"`
		Capacity   int `json:"queue_capacity"`
	} `json:"pool"`

	// Matrix describes the published engine's pair-matrix cache, which all
	// shard replicas share. Evictions is cumulative across epochs (the
	// counter is carried when a new snapshot adopts the previous cache).
	Matrix struct {
		Bytes       int64  `json:"bytes"`
		Entries     int    `json:"entries"`
		BudgetBytes int64  `json:"budget_bytes"`
		Evictions   uint64 `json:"evictions"`
	} `json:"matrix"`

	Solve struct {
		Count      int64   `json:"count"`
		Errors     int64   `json:"errors"`
		Timeouts   int64   `json:"timeouts"`
		Rejected   int64   `json:"rejected"`
		MeanMillis float64 `json:"mean_millis"`
		// CandidatesExamined/CandidatesPruned split solver work the way
		// core.Result does: sets actually evaluated versus sets the Exact
		// branch-and-bound proved unable to beat the incumbent and skipped
		// (always 0 for the approximate families).
		CandidatesExamined int64 `json:"candidates_examined"`
		CandidatesPruned   int64 `json:"candidates_pruned"`
		// Families breaks the same numbers down per solver family
		// ("exact", "smlsh", "dvfdp"); the totals above are their sums,
		// read from the identical registry atomics /metrics renders.
		Families map[string]FamilySolveStats `json:"families"`
	} `json:"solve"`

	Ingest struct {
		Requests  int64 `json:"requests"`
		Actions   int64 `json:"actions"`
		Snapshots int64 `json:"snapshots"`
	} `json:"ingest"`

	// Postings describes the published snapshot's posting-list layout:
	// how many lists exist and how many use the container-compressed
	// (roaring-style) representation picked at snapshot publication.
	Postings struct {
		Lists      int `json:"lists"`
		Compressed int `json:"compressed"`
	} `json:"postings"`

	// Durability reports the write-ahead log and checkpoint state; all
	// zero values when the server runs without a data dir.
	Durability struct {
		Enabled   bool   `json:"enabled"`
		Degraded  bool   `json:"degraded"`
		Reason    string `json:"reason,omitempty"`
		FsyncMode string `json:"fsync_mode,omitempty"`

		WALLastSeq   uint64 `json:"wal_last_seq"`
		WALSizeBytes int64  `json:"wal_size_bytes"`
		WALAppends   int64  `json:"wal_appends"`
		WALFsyncs    int64  `json:"wal_fsyncs"`

		Checkpoints         int64  `json:"checkpoints"`
		CheckpointLastSeq   uint64 `json:"checkpoint_last_seq"`
		CheckpointLastEpoch int64  `json:"checkpoint_last_epoch"`

		Recovery RecoveryInfo `json:"recovery"`
	} `json:"durability"`
}

// FamilySolveStats is the per-solver-family slice of StatsResponse.Solve.
type FamilySolveStats struct {
	Count              int64   `json:"count"`
	MeanMillis         float64 `json:"mean_millis"`
	CandidatesExamined int64   `json:"candidates_examined"`
	CandidatesPruned   int64   `json:"candidates_pruned"`
	MatrixBuilds       int64   `json:"matrix_builds"`
	MatrixRebuilds     int64   `json:"matrix_rebuilds"`
	MatrixHits         int64   `json:"matrix_cache_hits"`
	MatrixLazy         int64   `json:"matrix_lazy"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// --- handlers ---

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	root := obs.NewTrace("analyze")
	defer root.End()
	root.SetAttr("request_id", obs.RequestIDFrom(r.Context()))

	var req AnalyzeRequest
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxAnalyzeBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", tooBig.Limit)
			return
		}
		writeError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	if strings.TrimSpace(req.Query) == "" {
		writeError(w, http.StatusBadRequest, "query is required")
		return
	}
	parseSpan := root.StartChild("parse")
	parsed, err := query.Parse(req.Query)
	parseSpan.End()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	ss := s.shards.Load()
	key := cacheKey{query: canonicalQuery(req.Query), epoch: ss.epoch}
	cacheSpan := root.StartChild("cache")
	cached, hit := s.cache.get(key)
	cacheSpan.SetAttr("hit", hit)
	cacheSpan.End()
	if hit {
		s.metrics.cacheHits.Inc()
		resp := *cached
		resp.Cached = true
		s.finishAnalyze(w, r, &resp, req, root)
		return
	}
	s.metrics.cacheMisses.Inc()

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.SolveTimeout)
	defer cancel()
	solveSpan := root.StartChild("solve")
	resp, err := s.scatterAnalyze(ctx, solveSpan, ss, parsed, req.Query)
	solveSpan.End()
	switch {
	case errors.Is(err, errBusy):
		s.metrics.rejected.Inc()
		// Queued solves drain in well under the degraded-mode horizon, so
		// advertise an immediate retry — same contract as the 503 path.
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "solve queue full, retry later")
		return
	case errors.Is(err, errClosed):
		writeError(w, http.StatusServiceUnavailable, "server shutting down")
		return
	case errors.Is(err, context.DeadlineExceeded):
		s.metrics.solveTimeouts.Inc()
		writeError(w, http.StatusGatewayTimeout, "analysis timed out after %s", s.cfg.SolveTimeout)
		return
	case errors.Is(err, context.Canceled):
		// The client went away; there is nobody to answer and nothing
		// timed out, so don't count it against the timeout metric.
		return
	case err != nil:
		s.metrics.solveErrors.Inc()
		writeError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	s.cache.put(key, resp)
	out := *resp
	s.finishAnalyze(w, r, &out, req, root)
}

// finishAnalyze encodes the response (embedding the span tree when the
// request asked for it) and emits the slow-solve report when the solve
// exceeded Config.SlowSolve. resp must be a private copy: the cached
// entry is shared across requests and must not grow request-scoped state.
func (s *Server) finishAnalyze(w http.ResponseWriter, r *http.Request, resp *analyzeResponse, req AnalyzeRequest, root *obs.Span) {
	encodeSpan := root.StartChild("encode")
	if req.Trace {
		resp.RequestID = obs.RequestIDFrom(r.Context())
		resp.Trace = root.Tree()
	}
	writeJSON(w, http.StatusOK, *resp)
	encodeSpan.End()
	root.End()

	if resp.Cached || s.cfg.SlowSolve <= 0 {
		return
	}
	if time.Duration(resp.SolveMillis*float64(time.Millisecond)) < s.cfg.SlowSolve {
		return
	}
	s.metrics.slowSolves.Inc()
	if s.cfg.AccessLog == nil {
		return
	}
	s.cfg.AccessLog.LogAttrs(r.Context(), slog.LevelWarn, "slow solve",
		slog.String("request_id", obs.RequestIDFrom(r.Context())),
		slog.String("query", resp.Query),
		slog.String("algorithm", resp.Algorithm),
		slog.Float64("solve_millis", resp.SolveMillis),
		slog.Int64("epoch", resp.Epoch),
		slog.Any("spec", resp.spec),
		slog.Any("trace", root.Tree()),
	)
}

// scopedEngine builds a throwaway engine over the subset of the snapshot
// matching a WHERE filter, mirroring how Options.Within scopes a batch
// Analysis: re-enumerate describable groups inside the scope and summarize
// them with frequency signatures. The snapshot store is frozen, so this is
// safe against concurrent ingest; results are cached like any other query.
func (s *Server) scopedEngine(snap *incremental.Snapshot, where map[string]string) (*core.Engine, int, error) {
	pred, err := snap.Store.ParsePredicate(where)
	if err != nil {
		return nil, 0, err
	}
	bm := snap.Store.Eval(pred)
	if bm.Count() == 0 {
		return nil, 0, fmt.Errorf("server: filter %v matches no tagging actions", where)
	}
	gs := (&groups.Enumerator{Store: snap.Store, MinTuples: s.cfg.MinGroupTuples, Within: bm}).FullyDescribed()
	if len(gs) == 0 {
		return nil, 0, fmt.Errorf("server: no describable groups with >= %d tagging actions under filter %v",
			s.cfg.MinGroupTuples, where)
	}
	// Size signatures by the snapshot's frozen vocabulary, not the live
	// (possibly grown) one, so equal epochs keep producing equal answers.
	sum := signature.FrequencyOfSize(snap.VocabSize)
	sigs := signature.SummarizeAll(sum, snap.Store, gs)
	eng, err := core.NewEngine(snap.Store, gs, sigs)
	if err != nil {
		return nil, 0, err
	}
	return eng, bm.Count(), nil
}

// handleActions is the streaming ingest path. Batches apply under the
// writer lock while analyses keep reading the published snapshot.
//
// Batches are atomic: the whole batch is validated against the current
// state (simulating in-batch entity creation) before any action applies,
// so a bad action rejects the batch with 400 and zero side effects. This
// is what makes the write-ahead log sound — a logged record is always a
// fully-applied batch, so crash replay cannot diverge from the original
// execution.
//
// With durability on, the acknowledgement order is: apply in memory and
// enqueue the WAL record under the write lock (pinning WAL order to apply
// order), wait for the group commit to make it durable, and only then
// publish a snapshot — analyses never observe data that subsequently fails
// the disk. A WAL failure flips the server into sticky read-only mode: the
// client gets 503 (its batch was not durably acknowledged) and so does
// every later ingest, while analyses keep serving the last published
// snapshot.
//
// Note the vocabulary-growth caveat documented on tagdm.Maintainer.Insert:
// frequency signatures fold brand-new tags into the signature space only up
// to the vocabulary size at server construction, so pre-register the
// expected vocabulary in the initial dataset when new tags must influence
// tag-dimension measures.
func (s *Server) handleActions(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	start := time.Now()
	root := obs.NewTrace("ingest")
	defer root.End()
	root.SetAttr("request_id", obs.RequestIDFrom(r.Context()))

	s.checkDurable(r.Context())
	if reason, ok := s.degradedReason(); ok {
		w.Header().Set("Retry-After", "30")
		writeError(w, http.StatusServiceUnavailable, "read-only mode: %s", reason)
		return
	}

	decodeSpan := root.StartChild("decode")
	var req IngestRequest
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxIngestBytes)
	err := json.NewDecoder(body).Decode(&req)
	decodeSpan.End()
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", tooBig.Limit)
			return
		}
		writeError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	if len(req.Actions) == 0 {
		writeError(w, http.StatusBadRequest, "actions is required and must be non-empty")
		return
	}

	applySpan := root.StartChild("apply")
	s.mu.Lock()
	if err := s.validateBatchLocked(req.Actions); err != nil {
		s.mu.Unlock()
		applySpan.End()
		writeError(w, http.StatusBadRequest, "%v (batch rejected, nothing applied)", err)
		return
	}
	var resp IngestResponse
	if err := s.applyBatchLocked(req.Actions, &resp); err != nil {
		// Validation guarantees apply cannot fail; if it does, the memory
		// state may have diverged from what the WAL will record, so stop
		// accepting writes.
		s.degrade(r.Context(), "batch apply after validation", err)
		s.mu.Unlock()
		applySpan.End()
		writeError(w, http.StatusInternalServerError, "applying batch: %v", err)
		return
	}
	s.unpublished += resp.Inserted
	s.sinceCkpt += resp.Inserted
	publish := s.unpublished >= s.cfg.RefreshEvery
	if req.Refresh != nil {
		publish = *req.Refresh
	}
	var ticket *wal.Ticket
	var payloadLen int
	if s.dur != nil {
		// Marshal of decoded wire structs cannot fail; Enqueue under s.mu
		// pins the WAL record order to the in-memory apply order.
		payload, _ := json.Marshal(IngestRequest{Actions: req.Actions})
		payloadLen = len(payload)
		ticket = s.dur.log.Enqueue(payload)
	}
	s.mu.Unlock()
	applySpan.End()

	if ticket != nil {
		walSpan := root.StartChild("wal_append")
		waitStart := time.Now()
		err := ticket.Wait()
		walSpan.End()
		s.metrics.walAppendWait.Observe(time.Since(waitStart).Seconds())
		if err != nil {
			s.metrics.walAppendErrors.Inc()
			s.degrade(r.Context(), "wal append", err)
			w.Header().Set("Retry-After", "30")
			writeError(w, http.StatusServiceUnavailable,
				"write-ahead log failure, entering read-only mode: %v", err)
			return
		}
		s.metrics.walAppends.Inc()
		s.metrics.walAppendBytes.Add(int64(payloadLen))
	}

	if publish {
		publishSpan := root.StartChild("publish")
		s.mu.Lock()
		base, err := s.captureLocked()
		resp.Pending = s.unpublished
		s.mu.Unlock()
		if err == nil {
			// Replicating across shards happens outside s.mu so the write
			// path never stalls behind O(store) copies.
			err = s.installSnapshot(base)
		}
		publishSpan.End()
		if err != nil {
			writeError(w, http.StatusInternalServerError, "publishing snapshot: %v", err)
			return
		}
		resp.Published = true
		s.prewarm()
	} else {
		s.mu.Lock()
		resp.Pending = s.unpublished
		s.mu.Unlock()
	}

	resp.Epoch = s.shards.Load().epoch
	s.metrics.ingestLatency.Observe(time.Since(start).Seconds())
	writeJSON(w, http.StatusOK, resp)
	s.maybeCheckpointAsync()
}

// validateBatchLocked checks a whole ingest batch against the current state
// without mutating anything, simulating in-batch entity creation so later
// actions may reference entities earlier actions create. After it passes,
// applyBatchLocked cannot fail.
func (s *Server) validateBatchLocked(actions []IngestAction) error {
	nUsers, nItems := len(s.ds.Users), len(s.ds.Items)
	for i, a := range actions {
		if err := validateEntityRef(a.User, a.UserAttrs, s.ds.UserSchema, &nUsers, "user"); err != nil {
			return fmt.Errorf("actions[%d]: %w", i, err)
		}
		if err := validateEntityRef(a.Item, a.ItemAttrs, s.ds.ItemSchema, &nItems, "item"); err != nil {
			return fmt.Errorf("actions[%d]: %w", i, err)
		}
	}
	return nil
}

// validateEntityRef checks one (id, attrs) pair: exactly one must be set,
// attrs must only name schema attributes, and ids must be in range given
// the entities the batch created so far (*n tracks the simulated count).
func validateEntityRef(id *int32, attrs map[string]string, schema *model.Schema, n *int, kind string) error {
	switch {
	case id != nil && attrs != nil:
		return fmt.Errorf("set %s or %s_attrs, not both", kind, kind)
	case attrs != nil:
		for name := range attrs {
			if schema.AttrIndex(name) < 0 {
				return fmt.Errorf("%s_attrs: schema has no attribute %q", kind, name)
			}
		}
		*n++
		return nil
	case id != nil:
		if *id < 0 || int(*id) >= *n {
			return fmt.Errorf("references unknown %s %d", kind, *id)
		}
		return nil
	default:
		return fmt.Errorf("%s or %s_attrs is required", kind, kind)
	}
}

// applyBatchLocked applies a validated batch: creates inline entities,
// interns tags and inserts every action, filling resp's counters. Both the
// ingest handler and WAL replay run through it, which is what makes replay
// reconstruct the original execution exactly.
func (s *Server) applyBatchLocked(actions []IngestAction, resp *IngestResponse) error {
	for i, a := range actions {
		user, err := s.resolveEntityLocked(a.User, a.UserAttrs, true)
		if err != nil {
			return fmt.Errorf("actions[%d]: %w", i, err)
		}
		item, err := s.resolveEntityLocked(a.Item, a.ItemAttrs, false)
		if err != nil {
			return fmt.Errorf("actions[%d]: %w", i, err)
		}
		ids := make([]model.TagID, len(a.Tags))
		for j, t := range a.Tags {
			ids[j] = s.ds.Vocab.ID(t)
		}
		if err := s.maint.Insert(model.TaggingAction{User: user, Item: item, Rating: a.Rating, Tags: ids}); err != nil {
			return fmt.Errorf("actions[%d]: %w", i, err)
		}
		resp.Inserted++
		s.metrics.actionsIngested.Inc()
		if a.UserAttrs != nil {
			resp.UsersCreated++
			s.metrics.usersCreated.Inc()
		}
		if a.ItemAttrs != nil {
			resp.ItemsCreated++
			s.metrics.itemsCreated.Inc()
		}
	}
	return nil
}

// resolveEntityLocked maps an (id, attrs) pair to an entity id, creating
// the entity when attrs are given. Exactly one of the two must be set.
func (s *Server) resolveEntityLocked(id *int32, attrs map[string]string, isUser bool) (int32, error) {
	kind := "item"
	if isUser {
		kind = "user"
	}
	switch {
	case id != nil && attrs != nil:
		return 0, fmt.Errorf("set %s or %s_attrs, not both", kind, kind)
	case attrs != nil:
		if isUser {
			return s.ds.AddUser(attrs)
		}
		return s.ds.AddItem(attrs)
	case id != nil:
		return *id, nil
	default:
		return 0, fmt.Errorf("%s or %s_attrs is required", kind, kind)
	}
}

// handleRefresh forces snapshot publication, for operators who suppressed
// per-batch refresh and want a visibility barrier.
func (s *Server) handleRefresh(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	s.checkDurable(r.Context())
	if reason, ok := s.degradedReason(); ok {
		// Publishing while degraded could expose applied-but-unacknowledged
		// batches to analyses.
		w.Header().Set("Retry-After", "30")
		writeError(w, http.StatusServiceUnavailable, "read-only mode: %s", reason)
		return
	}
	if err := s.publish(); err != nil {
		writeError(w, http.StatusInternalServerError, "publishing snapshot: %v", err)
		return
	}
	s.prewarm()
	ss := s.shards.Load()
	writeJSON(w, http.StatusOK, map[string]any{"epoch": ss.epoch, "groups": len(ss.primary().Groups), "shards": len(ss.snaps)})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	ss := s.shards.Load()
	snap := ss.primary()
	s.mu.Lock()
	pending := s.unpublished
	users, items := len(s.ds.Users), len(s.ds.Items)
	s.mu.Unlock()

	var resp StatsResponse
	resp.Epoch = ss.epoch
	resp.Shards = len(ss.snaps)
	resp.PendingInserts = pending
	resp.Actions = snap.Store.Len()
	resp.Groups = len(snap.Groups)
	resp.Users = users
	resp.Items = items
	resp.VocabSize = snap.Store.Vocab.Size()
	resp.UptimeSeconds = time.Since(s.metrics.started).Seconds()
	size, evictions := s.cache.stats()
	resp.Cache.Size = size
	resp.Cache.Capacity = s.cfg.CacheSize
	resp.Cache.Hits = s.metrics.cacheHits.Value()
	resp.Cache.Misses = s.metrics.cacheMisses.Value()
	resp.Cache.Evictions = evictions
	resp.Cache.HitRate = s.metrics.hitRate()
	resp.Pool.Workers = s.cfg.Workers
	resp.Pool.QueueDepth = s.queuedJobs()
	resp.Pool.Capacity = s.cfg.QueueDepth
	ms := snap.Engine.MatrixStats()
	resp.Matrix.Bytes = ms.Bytes
	resp.Matrix.Entries = ms.Entries
	resp.Matrix.BudgetBytes = s.cfg.MatrixBudgetBytes
	resp.Matrix.Evictions = ms.Evictions
	// The per-family numbers come from the same registry series /metrics
	// renders; the totals are their sums, so the two endpoints agree by
	// construction.
	resp.Solve.Families = make(map[string]FamilySolveStats, len(solverFamilies))
	var sumNanos float64
	for _, fam := range solverFamilies {
		lat := s.metrics.solveLatency.With(fam)
		fs := FamilySolveStats{
			Count:              s.metrics.solves.With(fam).Value(),
			MeanMillis:         lat.Mean() * 1e3,
			CandidatesExamined: s.metrics.candidatesExamined.With(fam).Value(),
			CandidatesPruned:   s.metrics.candidatesPruned.With(fam).Value(),
			MatrixBuilds:       s.metrics.matrixBuilds.With(fam).Value(),
			MatrixRebuilds:     s.metrics.matrixRebuilds.With(fam).Value(),
			MatrixHits:         s.metrics.matrixHits.With(fam).Value(),
			MatrixLazy:         s.metrics.matrixLazy.With(fam).Value(),
		}
		resp.Solve.Families[fam] = fs
		resp.Solve.Count += fs.Count
		resp.Solve.CandidatesExamined += fs.CandidatesExamined
		resp.Solve.CandidatesPruned += fs.CandidatesPruned
		sumNanos += lat.Sum() * 1e9
	}
	if resp.Solve.Count > 0 {
		resp.Solve.MeanMillis = sumNanos / float64(resp.Solve.Count) / 1e6
	}
	resp.Solve.Errors = s.metrics.solveErrors.Value()
	resp.Solve.Timeouts = s.metrics.solveTimeouts.Value()
	resp.Solve.Rejected = s.metrics.rejected.Value()
	resp.Ingest.Requests = s.metrics.requests.With("actions").Value()
	resp.Ingest.Actions = s.metrics.actionsIngested.Value()
	resp.Ingest.Snapshots = s.metrics.snapshots.Value()
	resp.Postings.Lists, resp.Postings.Compressed = snap.Store.CompressionStats()
	if s.dur != nil {
		ws := s.dur.log.Stats()
		resp.Durability.Enabled = true
		resp.Durability.Reason, resp.Durability.Degraded = s.degradedReason()
		resp.Durability.FsyncMode = s.cfg.FsyncMode.String()
		resp.Durability.WALLastSeq = ws.LastSeq
		resp.Durability.WALSizeBytes = ws.SizeBytes
		resp.Durability.WALAppends = s.metrics.walAppends.Value()
		resp.Durability.WALFsyncs = ws.Syncs
		resp.Durability.Checkpoints = s.metrics.checkpoints.Value()
		resp.Durability.CheckpointLastSeq = s.ckptLastSeq.Load()
		resp.Durability.CheckpointLastEpoch = s.ckptLastEpoch.Load()
		resp.Durability.Recovery = s.recovery
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	//tagdm:allow-discard scrape write failure means the scraper hung up; nothing to repair server-side
	_ = s.metrics.reg.WriteText(w)
}

// handleHealthz is liveness plus durability visibility: a degraded server
// still answers 200 (it is alive and serving analyses) but reports its
// read-only state so orchestration and operators can see it.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.checkDurable(r.Context())
	if reason, ok := s.degradedReason(); ok {
		writeJSON(w, http.StatusOK, map[string]string{
			"status": "degraded",
			"mode":   "read-only",
			"reason": reason,
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}
