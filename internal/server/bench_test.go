package server

import (
	"net/http"
	"net/http/httptest"
	"testing"
)

// BenchmarkServerAnalyze tracks the serving-path latency of one analyze
// request, cold (cache disabled, every request solves) and cached (the
// steady state of a dashboard re-issuing the same query).
func BenchmarkServerAnalyze(b *testing.B) {
	bench := func(b *testing.B, cacheSize int) {
		srv, err := New(Config{Dataset: testDataset(b), MinGroupTuples: 2, CacheSize: cacheSize, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		defer srv.Close()
		ts := httptest.NewServer(srv)
		defer ts.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			status, _ := analyze(b, ts, testQuery)
			if status != http.StatusOK {
				b.Fatalf("status = %d", status)
			}
		}
	}
	b.Run("cold", func(b *testing.B) { bench(b, -1) })
	b.Run("cached", func(b *testing.B) { bench(b, 256) })
}
