package server

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"tagdm/internal/core"
	"tagdm/internal/obs"
)

// scrapeMetrics fetches /metrics and runs it through the strict parser;
// any deviation from the Prometheus text format fails the test.
func scrapeMetrics(t testing.TB, ts *httptest.Server) *obs.PromText {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	pt, err := obs.ParsePrometheus(buf.Bytes())
	if err != nil {
		t.Fatalf("metrics exposition rejected: %v\n%s", err, buf.String())
	}
	return pt
}

// TestMetricsPrometheusFormat drives every endpoint (including an unknown
// path and a cache hit), then requires the whole exposition to satisfy the
// strict parser and the per-family series to agree with /v1/stats — the
// two views must read the same atomics.
func TestMetricsPrometheusFormat(t *testing.T) {
	ts := httptest.NewServer(newTestServer(t, nil))
	defer ts.Close()

	analyze(t, ts, testQuery)
	analyze(t, ts, testQuery) // cache hit
	analyze(t, ts, "ANALYZE MAXIMIZE diversity(tags) SUBJECT TO similarity(items) >= 0.1 WITH k=2")
	user, item := int32(0), int32(0)
	postJSON(t, ts, "/v1/actions", IngestRequest{Actions: []IngestAction{
		{User: &user, Item: &item, Rating: 3, Tags: []string{"gun"}},
	}})
	if resp, err := http.Get(ts.URL + "/no/such/path"); err == nil {
		resp.Body.Close()
	}

	pt := scrapeMetrics(t, ts)
	for fam, typ := range map[string]string{
		"tagdm_requests_total":        "counter",
		"tagdm_solves_total":          "counter",
		"tagdm_matrix_builds_total":   "counter",
		"tagdm_request_seconds":       "histogram",
		"tagdm_solve_latency_seconds": "histogram",
		"tagdm_solve_stage_seconds":   "histogram",
		"tagdm_ingest_batch_seconds":  "histogram",
		"tagdm_snapshot_epoch":        "gauge",
		"tagdm_postings_lists":        "gauge",
	} {
		if got := pt.Types[fam]; got != typ {
			t.Fatalf("family %s has type %q, want %q", fam, got, typ)
		}
	}

	// The ingest published a snapshot, so the epoch gauge must have moved.
	if v, ok := pt.Sample("tagdm_snapshot_epoch"); !ok || v != 1 {
		t.Fatalf("tagdm_snapshot_epoch = %g (ok=%v), want 1", v, ok)
	}
	// The unknown path lands in the bounded "other" endpoint label.
	if v, ok := pt.Sample("tagdm_requests_total", "endpoint", "other"); !ok || v != 1 {
		t.Fatalf(`tagdm_requests_total{endpoint="other"} = %g (ok=%v), want 1`, v, ok)
	}
	if v, ok := pt.Sample("tagdm_cache_hits_total"); !ok || v != 1 {
		t.Fatalf("tagdm_cache_hits_total = %g (ok=%v), want 1", v, ok)
	}
	// The diversity query ran the DV-FDP family once; each of its stages
	// plus the synthetic total must have exactly one observation.
	for _, stage := range []string{core.StageMatrix, core.StageGreedy, core.StageLocalSearch, stageTotal} {
		if v, ok := pt.Sample("tagdm_solve_stage_seconds_count", "family", "dvfdp", "stage", stage); !ok || v != 1 {
			t.Fatalf("dvfdp stage %s count = %g (ok=%v), want 1", stage, v, ok)
		}
	}

	// Cross-check against /v1/stats: both endpoints read the same registry
	// atomics, so every shared number must match exactly.
	stats := getStats(t, ts)
	if v, _ := pt.Sample("tagdm_cache_hits_total"); int64(v) != stats.Cache.Hits {
		t.Fatalf("cache hits drifted: metrics %g vs stats %d", v, stats.Cache.Hits)
	}
	var total int64
	for _, fam := range []string{"exact", "smlsh", "dvfdp"} {
		v, ok := pt.Sample("tagdm_solves_total", "family", fam)
		if !ok {
			t.Fatalf("missing tagdm_solves_total{family=%q}", fam)
		}
		fs := stats.Solve.Families[fam]
		if int64(v) != fs.Count {
			t.Fatalf("family %s drifted: metrics %g vs stats %d", fam, v, fs.Count)
		}
		ce, _ := pt.Sample("tagdm_candidates_examined_total", "family", fam)
		if int64(ce) != fs.CandidatesExamined {
			t.Fatalf("family %s examined drifted: metrics %g vs stats %d", fam, ce, fs.CandidatesExamined)
		}
		total += fs.Count
	}
	if total != stats.Solve.Count {
		t.Fatalf("per-family counts sum to %d, total says %d", total, stats.Solve.Count)
	}
}

func analyzeTraced(t testing.TB, ts *httptest.Server, query string) (*http.Response, AnalyzeResponse) {
	t.Helper()
	resp, body := postJSON(t, ts, "/v1/analyze", AnalyzeRequest{Query: query, Trace: true})
	var out AnalyzeResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatalf("decoding %s: %v", body, err)
		}
	}
	return resp, out
}

func TestAnalyzeTraceSpanTree(t *testing.T) {
	ts := httptest.NewServer(newTestServer(t, nil))
	defer ts.Close()

	httpResp, first := analyzeTraced(t, ts, testQuery)
	if httpResp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", httpResp.StatusCode)
	}
	if first.Trace == nil || first.Trace.Name != "analyze" {
		t.Fatalf("trace = %+v, want analyze root", first.Trace)
	}
	if first.RequestID == "" {
		t.Fatal("traced response has no request id")
	}
	if got := httpResp.Header.Get("X-Request-ID"); got != first.RequestID {
		t.Fatalf("X-Request-ID header %q != body request id %q", got, first.RequestID)
	}
	if got := first.Trace.Attrs["request_id"]; got != any(first.RequestID) {
		t.Fatalf("root span request_id attr = %v, want %q", got, first.RequestID)
	}
	for _, name := range []string{"parse", "cache", "solve", "encode"} {
		if first.Trace.Find(name) == nil {
			t.Fatalf("trace missing %s span: %+v", name, first.Trace)
		}
	}
	// The solver's per-stage spans nest under solve: testQuery is an
	// SM-LSH problem, so its three stages must be present with real time.
	solve := first.Trace.Find("solve")
	for _, stage := range []string{core.StageMatrix, core.StageLSHBuild, core.StageBucketScan} {
		sp := solve.Find(stage)
		if sp == nil {
			t.Fatalf("solve span missing %s child: %+v", stage, solve)
		}
		if sp.WallMs < 0 {
			t.Fatalf("stage %s has negative wall time %v", stage, sp.WallMs)
		}
	}

	// A cache hit still traces, but records a hit and never reaches the
	// solver.
	_, second := analyzeTraced(t, ts, testQuery)
	if !second.Cached {
		t.Fatal("repeat traced query missed the cache")
	}
	if second.Trace == nil || second.Trace.Find("solve") != nil {
		t.Fatalf("cached trace should have no solve span: %+v", second.Trace)
	}
	cacheSpan := second.Trace.Find("cache")
	if cacheSpan == nil || cacheSpan.Attrs["hit"] != any(true) {
		t.Fatalf("cached trace cache span = %+v, want hit=true", cacheSpan)
	}

	// Untraced requests must not carry a tree.
	_, plain := analyze(t, ts, "ANALYZE PROBLEM 1 WITH k=2, support=2, q=0.1, r=0.1")
	if plain.Trace != nil || plain.RequestID != "" {
		t.Fatalf("untraced response leaked trace fields: %+v", plain)
	}
}

// syncBuffer is a goroutine-safe bytes.Buffer for capturing log output
// written after the HTTP response has already been delivered.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func TestAccessLogAndSlowSolveReport(t *testing.T) {
	var buf syncBuffer
	ts := httptest.NewServer(newTestServer(t, func(c *Config) {
		c.AccessLog = obs.NewJSONLogger(&buf, slog.LevelInfo)
		c.SlowSolve = time.Nanosecond // every real solve is "slow"
	}))
	defer ts.Close()

	status, resp := analyze(t, ts, testQuery)
	if status != http.StatusOK {
		t.Fatalf("status = %d", status)
	}

	// Both log lines are written after the response body, so poll briefly.
	var access, slow map[string]any
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		access, slow = nil, nil
		for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
			if line == "" {
				continue
			}
			var m map[string]any
			if err := json.Unmarshal([]byte(line), &m); err != nil {
				t.Fatalf("access log line is not JSON: %q: %v", line, err)
			}
			switch m["msg"] {
			case "request":
				if m["path"] == "/v1/analyze" {
					access = m
				}
			case "slow solve":
				slow = m
			}
		}
		if access != nil && slow != nil {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}

	if access == nil {
		t.Fatalf("no access-log line for /v1/analyze:\n%s", buf.String())
	}
	if access["status"] != float64(http.StatusOK) {
		t.Fatalf("access log status = %v, want 200", access["status"])
	}
	reqID, _ := access["request_id"].(string)
	if reqID == "" {
		t.Fatalf("access log has no request id: %v", access)
	}

	if slow == nil {
		t.Fatalf("no slow-solve report despite 1ns threshold:\n%s", buf.String())
	}
	if slow["request_id"] != access["request_id"] {
		t.Fatalf("slow report request id %v != access log %v", slow["request_id"], access["request_id"])
	}
	if slow["query"] != resp.Query {
		t.Fatalf("slow report query = %v, want %q", slow["query"], resp.Query)
	}
	if _, ok := slow["spec"].(map[string]any); !ok {
		t.Fatalf("slow report has no resolved spec object: %v", slow["spec"])
	}
	tree, ok := slow["trace"].(map[string]any)
	if !ok || tree["name"] != "analyze" {
		t.Fatalf("slow report trace = %v, want analyze span tree", slow["trace"])
	}

	pt := scrapeMetrics(t, ts)
	if v, _ := pt.Sample("tagdm_slow_solves_total"); v != 1 {
		t.Fatalf("tagdm_slow_solves_total = %g, want 1", v)
	}
}
