package server

import (
	"context"
	"errors"
	"sync"
)

// errBusy reports a solve queue at capacity; handlers map it to 429.
var errBusy = errors.New("server: solve queue full")

// errClosed reports a pool that has been shut down.
var errClosed = errors.New("server: pool closed")

// pool is a bounded worker pool for solver execution. Solves are CPU-bound
// and super-linear in the group count, so running one per request goroutine
// would let a traffic burst grind every request to a halt; a fixed worker
// count plus a bounded queue gives the server a predictable concurrency
// envelope and lets it shed load explicitly instead of collapsing.
type pool struct {
	queue   chan *poolJob
	workers int
	wg      sync.WaitGroup
	once    sync.Once

	// mu makes do/close safe to race: close takes the write lock to flip
	// closed before closing the queue, so no sender can hit a closed
	// channel (senders hold the read lock).
	mu     sync.RWMutex
	closed bool
}

type poolJob struct {
	ctx  context.Context
	fn   func(context.Context) (*analyzeResponse, error)
	done chan poolResult
}

type poolResult struct {
	val *analyzeResponse
	err error
}

// newPool starts workers goroutines consuming a queue of at most depth
// pending jobs.
func newPool(workers, depth int) *pool {
	p := &pool{queue: make(chan *poolJob, depth), workers: workers}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

func (p *pool) worker() {
	defer p.wg.Done()
	for job := range p.queue {
		if job.ctx.Err() != nil {
			job.done <- poolResult{err: job.ctx.Err()}
			continue
		}
		val, err := job.fn(job.ctx)
		job.done <- poolResult{val: val, err: err}
	}
}

// do runs fn on a worker and waits for the result or the context. A full
// queue fails fast with errBusy. When the context expires first, do returns
// its error immediately; the worker's fn receives the same context, so a
// cancellation-aware solve stops shortly after instead of running to
// completion with the result dropped.
func (p *pool) do(ctx context.Context, fn func(context.Context) (*analyzeResponse, error)) (*analyzeResponse, error) {
	job := &poolJob{ctx: ctx, fn: fn, done: make(chan poolResult, 1)}
	p.mu.RLock()
	if p.closed {
		p.mu.RUnlock()
		return nil, errClosed
	}
	select {
	case p.queue <- job:
		p.mu.RUnlock()
	default:
		p.mu.RUnlock()
		return nil, errBusy
	}
	select {
	case res := <-job.done:
		return res.val, res.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// depth is the number of queued (not yet running) jobs.
func (p *pool) depth() int { return len(p.queue) }

// close stops the workers after draining queued jobs. Safe to call twice
// and safe to race with do (late submissions get errClosed).
func (p *pool) close() {
	p.once.Do(func() {
		p.mu.Lock()
		p.closed = true
		close(p.queue)
		p.mu.Unlock()
	})
	p.wg.Wait()
}
