package server

import (
	"context"
	"errors"
	"sync"
)

// errBusy reports a solve queue at capacity; handlers map it to 429.
var errBusy = errors.New("server: solve queue full")

// errClosed reports a pool that has been shut down.
var errClosed = errors.New("server: pool closed")

// pool is a bounded worker pool for solver execution. Solves are CPU-bound
// and super-linear in the group count, so running one per request goroutine
// would let a traffic burst grind every request to a halt; a fixed worker
// count plus a bounded queue gives the server a predictable concurrency
// envelope and lets it shed load explicitly instead of collapsing.
//
// The server runs one pool per shard: an analyze submits one partial-solve
// job to every shard's pool and gathers the results, so Workers bounds the
// concurrent solves per shard and every request draws one worker from each
// pool. Jobs on different pools never wait on each other, so the
// per-request fan-out cannot deadlock — only skew.
type pool[T any] struct {
	queue   chan *poolJob[T]
	workers int
	wg      sync.WaitGroup
	once    sync.Once

	// mu makes submit/close safe to race: close takes the write lock to
	// flip closed before closing the queue, so no sender can hit a closed
	// channel (senders hold the read lock and only ever perform the
	// non-blocking enqueue under it).
	//
	//tagdm:mutex nonblocking
	mu     sync.RWMutex
	closed bool
}

type poolJob[T any] struct {
	ctx  context.Context
	fn   func(context.Context) (T, error)
	done chan poolResult[T]
}

type poolResult[T any] struct {
	val T
	err error
}

// newPool starts workers goroutines consuming a queue of at most depth
// pending jobs.
func newPool[T any](workers, depth int) *pool[T] {
	p := &pool[T]{queue: make(chan *poolJob[T], depth), workers: workers}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

func (p *pool[T]) worker() {
	defer p.wg.Done()
	for job := range p.queue {
		if job.ctx.Err() != nil {
			// The request was cancelled while the job sat in the queue
			// (timeout, client gone, or a sibling shard's failure fanned
			// out); don't burn a worker on dead work.
			job.done <- poolResult[T]{err: job.ctx.Err()}
			continue
		}
		val, err := job.fn(job.ctx)
		job.done <- poolResult[T]{val: val, err: err}
	}
}

// submit enqueues fn without waiting for its result; the worker delivers
// exactly one poolResult to done. A full queue fails fast with errBusy and
// delivers nothing. done must have capacity for every job sharing it (the
// scatter uses one channel with capacity = shard count), so worker sends
// never block and an abandoned gather cannot strand a worker.
func (p *pool[T]) submit(ctx context.Context, done chan poolResult[T], fn func(context.Context) (T, error)) error {
	job := &poolJob[T]{ctx: ctx, fn: fn, done: done}
	p.mu.RLock()
	if p.closed {
		p.mu.RUnlock()
		return errClosed
	}
	select {
	case p.queue <- job:
		p.mu.RUnlock()
		return nil
	default:
		p.mu.RUnlock()
		return errBusy
	}
}

// depth is the number of queued (not yet running) jobs.
func (p *pool[T]) depth() int { return len(p.queue) }

// close stops the workers after draining queued jobs. Safe to call twice
// and safe to race with submit (late submissions get errClosed).
func (p *pool[T]) close() {
	p.once.Do(func() {
		p.mu.Lock()
		p.closed = true
		close(p.queue)
		p.mu.Unlock()
	})
	p.wg.Wait()
}
