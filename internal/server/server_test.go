package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"tagdm/internal/model"
)

// testDataset builds a small gender x genre corpus where every (gender,
// genre) combination is an active group: 3 actions per combination at
// threshold 2.
func testDataset(t testing.TB) *model.Dataset {
	t.Helper()
	d := model.NewDataset(model.NewSchema("gender"), model.NewSchema("genre"))
	must := func(id int32, err error) int32 {
		if err != nil {
			t.Fatal(err)
		}
		return id
	}
	m := must(d.AddUser(map[string]string{"gender": "male"}))
	f := must(d.AddUser(map[string]string{"gender": "female"}))
	action := must(d.AddItem(map[string]string{"genre": "action"}))
	drama := must(d.AddItem(map[string]string{"genre": "drama"}))
	// Insertion order is fixed so every call builds an identical dataset —
	// vocabulary ids and tuple order included — and answers can be
	// compared across independently built servers.
	tags := []struct {
		pair [2]int32
		tags []string
	}{
		{[2]int32{m, action}, []string{"gun", "explosion", "gun"}},
		{[2]int32{f, action}, []string{"stunt", "gun", "chase"}},
		{[2]int32{m, drama}, []string{"tears", "slow", "acting"}},
		{[2]int32{f, drama}, []string{"acting", "tears", "romance"}},
	}
	for _, e := range tags {
		for _, tag := range e.tags {
			if err := d.AddAction(e.pair[0], e.pair[1], 3, tag); err != nil {
				t.Fatal(err)
			}
		}
	}
	return d
}

func newTestServer(t testing.TB, mutate func(*Config)) *Server {
	t.Helper()
	cfg := Config{Dataset: testDataset(t), MinGroupTuples: 2, Seed: 1}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func postJSON(t testing.TB, ts *httptest.Server, path string, body any) (*http.Response, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func analyze(t testing.TB, ts *httptest.Server, query string) (int, AnalyzeResponse) {
	t.Helper()
	resp, body := postJSON(t, ts, "/v1/analyze", AnalyzeRequest{Query: query})
	var out AnalyzeResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatalf("decoding %s: %v", body, err)
		}
	}
	return resp.StatusCode, out
}

func getStats(t testing.TB, ts *httptest.Server) StatsResponse {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

const testQuery = "ANALYZE PROBLEM 3 WITH k=2, support=2, q=0.1, r=0.1"

func TestAnalyzeEndToEndWithCache(t *testing.T) {
	ts := httptest.NewServer(newTestServer(t, nil))
	defer ts.Close()

	status, first := analyze(t, ts, testQuery)
	if status != http.StatusOK {
		t.Fatalf("status = %d", status)
	}
	if !first.Found {
		t.Fatal("expected a feasible group set")
	}
	if first.Cached {
		t.Fatal("first answer claims to be cached")
	}
	if len(first.Groups) == 0 || first.Groups[0].Description == "" {
		t.Fatalf("groups = %+v", first.Groups)
	}

	// The identical query (modulo whitespace) must come from the cache.
	status, second := analyze(t, ts, "ANALYZE  PROBLEM 3\n WITH k=2, support=2, q=0.1, r=0.1")
	if status != http.StatusOK {
		t.Fatalf("status = %d", status)
	}
	if !second.Cached {
		t.Fatal("repeat answer not served from cache")
	}
	if second.Epoch != first.Epoch || second.Objective != first.Objective {
		t.Fatalf("cached answer differs: %+v vs %+v", second, first)
	}

	stats := getStats(t, ts)
	if stats.Cache.Hits != 1 || stats.Cache.Misses != 1 {
		t.Fatalf("cache hits/misses = %d/%d, want 1/1", stats.Cache.Hits, stats.Cache.Misses)
	}
	if stats.Solve.Count != 1 {
		t.Fatalf("solves = %d, want 1", stats.Solve.Count)
	}
	// The examined/pruned split is threaded from core.Result: the approximate
	// solver behind this query evaluated candidates (buckets/greedy adds) and
	// pruned nothing — pruning is an Exact-only mechanism.
	if stats.Solve.CandidatesExamined <= 0 {
		t.Fatalf("candidates_examined = %d, want > 0", stats.Solve.CandidatesExamined)
	}
	if stats.Solve.CandidatesPruned != 0 {
		t.Fatalf("candidates_pruned = %d for an approximate solve, want 0", stats.Solve.CandidatesPruned)
	}
	// Problem 3 has a similarity objective, so the solve lands in the
	// SM-LSH family; the per-family breakdown must attribute all the work
	// there and none to the others.
	fam, ok := stats.Solve.Families["smlsh"]
	if !ok {
		t.Fatalf("stats missing smlsh family: %+v", stats.Solve.Families)
	}
	if fam.Count != 1 || fam.CandidatesExamined != stats.Solve.CandidatesExamined {
		t.Fatalf("smlsh family stats = %+v", fam)
	}
	if fam.MatrixBuilds == 0 {
		t.Fatalf("cold solve reports no matrix builds: %+v", fam)
	}
	for _, other := range []string{"exact", "dvfdp"} {
		if f := stats.Solve.Families[other]; f.Count != 0 || f.CandidatesExamined != 0 {
			t.Fatalf("family %s credited with work it did not do: %+v", other, f)
		}
	}
}

func TestAnalyzeScopedWhere(t *testing.T) {
	ts := httptest.NewServer(newTestServer(t, nil))
	defer ts.Close()

	status, resp := analyze(t, ts, "ANALYZE PROBLEM 3 WHERE genre=action WITH k=2, support=2, q=0.1, r=0.1")
	if status != http.StatusOK {
		t.Fatalf("status = %d", status)
	}
	if !resp.Found {
		t.Fatal("expected a feasible set inside the scope")
	}
	for _, g := range resp.Groups {
		if !strings.Contains(g.Description, "genre=action") {
			t.Fatalf("group %q escaped the WHERE scope", g.Description)
		}
	}
}

func TestAnalyzeErrors(t *testing.T) {
	ts := httptest.NewServer(newTestServer(t, nil))
	defer ts.Close()

	// Malformed JSON body.
	resp, err := http.Post(ts.URL+"/v1/analyze", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body: status = %d, want 400", resp.StatusCode)
	}

	// Empty and unparsable queries.
	for _, q := range []string{"", "   ", "ANALYZE NONSENSE", "SELECT * FROM tags"} {
		if status, _ := analyze(t, ts, q); status != http.StatusBadRequest {
			t.Fatalf("query %q: status = %d, want 400", q, status)
		}
	}

	// Parsable but unresolvable: unknown attribute and empty scope.
	if status, _ := analyze(t, ts, "ANALYZE PROBLEM 1 WHERE nosuch=thing"); status != http.StatusUnprocessableEntity {
		t.Fatalf("unknown attribute: status != 422")
	}
	if status, _ := analyze(t, ts, "ANALYZE PROBLEM 1 WHERE genre=western"); status != http.StatusUnprocessableEntity {
		t.Fatalf("empty scope: status != 422")
	}

	// Wrong method.
	getResp, err := http.Get(ts.URL + "/v1/analyze")
	if err != nil {
		t.Fatal(err)
	}
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET: status = %d, want 405", getResp.StatusCode)
	}
}

func TestIngestInvalidatesCacheAcrossEpochs(t *testing.T) {
	ts := httptest.NewServer(newTestServer(t, nil))
	defer ts.Close()

	_, cold := analyze(t, ts, testQuery)
	_, warm := analyze(t, ts, testQuery)
	if !warm.Cached {
		t.Fatal("second query should hit the cache")
	}

	// Ingest two more male-action tuples; the default policy publishes a
	// snapshot per batch.
	user, item := int32(0), int32(0)
	resp, body := postJSON(t, ts, "/v1/actions", IngestRequest{Actions: []IngestAction{
		{User: &user, Item: &item, Rating: 4, Tags: []string{"gun"}},
		{User: &user, Item: &item, Rating: 5, Tags: []string{"explosion"}},
	}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: status = %d: %s", resp.StatusCode, body)
	}
	var ing IngestResponse
	if err := json.Unmarshal(body, &ing); err != nil {
		t.Fatal(err)
	}
	if ing.Inserted != 2 || !ing.Published {
		t.Fatalf("ingest response = %+v", ing)
	}
	if ing.Epoch <= cold.Epoch {
		t.Fatalf("epoch did not advance: %d -> %d", cold.Epoch, ing.Epoch)
	}

	// The same query must now re-solve against the new epoch and see the
	// grown corpus.
	_, after := analyze(t, ts, testQuery)
	if after.Cached {
		t.Fatal("query after ingest served stale cache entry")
	}
	if after.Epoch != ing.Epoch {
		t.Fatalf("analyze epoch = %d, want %d", after.Epoch, ing.Epoch)
	}

	stats := getStats(t, ts)
	if stats.Actions != 14 {
		t.Fatalf("actions = %d, want 14", stats.Actions)
	}
	if stats.PendingInserts != 0 {
		t.Fatalf("pending = %d, want 0", stats.PendingInserts)
	}
}

func TestIngestCreatesEntities(t *testing.T) {
	ts := httptest.NewServer(newTestServer(t, nil))
	defer ts.Close()

	resp, body := postJSON(t, ts, "/v1/actions", IngestRequest{Actions: []IngestAction{
		{
			UserAttrs: map[string]string{"gender": "nonbinary"},
			ItemAttrs: map[string]string{"genre": "documentary"},
			Tags:      []string{"archival"},
		},
	}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	var ing IngestResponse
	if err := json.Unmarshal(body, &ing); err != nil {
		t.Fatal(err)
	}
	if ing.UsersCreated != 1 || ing.ItemsCreated != 1 || ing.Inserted != 1 {
		t.Fatalf("ingest response = %+v", ing)
	}
	stats := getStats(t, ts)
	if stats.Users != 3 || stats.Items != 3 {
		t.Fatalf("users/items = %d/%d, want 3/3", stats.Users, stats.Items)
	}
}

func TestIngestErrors(t *testing.T) {
	ts := httptest.NewServer(newTestServer(t, nil))
	defer ts.Close()

	// Empty batch.
	resp, _ := postJSON(t, ts, "/v1/actions", IngestRequest{})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty batch: status = %d, want 400", resp.StatusCode)
	}

	// Unknown user id.
	user, item := int32(99), int32(0)
	resp, _ = postJSON(t, ts, "/v1/actions", IngestRequest{Actions: []IngestAction{
		{User: &user, Item: &item, Tags: []string{"x"}},
	}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown user: status = %d, want 400", resp.StatusCode)
	}

	// Both id and attrs.
	resp, _ = postJSON(t, ts, "/v1/actions", IngestRequest{Actions: []IngestAction{
		{User: &item, UserAttrs: map[string]string{"gender": "male"}, Item: &item, Tags: []string{"x"}},
	}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("ambiguous entity: status = %d, want 400", resp.StatusCode)
	}

	// Neither id nor attrs.
	resp, _ = postJSON(t, ts, "/v1/actions", IngestRequest{Actions: []IngestAction{
		{Item: &item, Tags: []string{"x"}},
	}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing entity: status = %d, want 400", resp.StatusCode)
	}
}

func TestRefreshPolicyAndForcedRefresh(t *testing.T) {
	ts := httptest.NewServer(newTestServer(t, func(c *Config) { c.RefreshEvery = 10 }))
	defer ts.Close()

	before := getStats(t, ts)
	user, item := int32(0), int32(1)
	resp, body := postJSON(t, ts, "/v1/actions", IngestRequest{Actions: []IngestAction{
		{User: &user, Item: &item, Tags: []string{"slow"}},
	}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: %d: %s", resp.StatusCode, body)
	}
	var ing IngestResponse
	if err := json.Unmarshal(body, &ing); err != nil {
		t.Fatal(err)
	}
	if ing.Published || ing.Pending != 1 {
		t.Fatalf("batch below RefreshEvery published a snapshot: %+v", ing)
	}
	if epoch := getStats(t, ts).Epoch; epoch != before.Epoch {
		t.Fatalf("epoch moved without a publish: %d -> %d", before.Epoch, epoch)
	}

	// A forced refresh publishes the pending insert.
	resp, body = postJSON(t, ts, "/v1/refresh", struct{}{})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("refresh: %d: %s", resp.StatusCode, body)
	}
	after := getStats(t, ts)
	if after.Epoch <= before.Epoch || after.PendingInserts != 0 {
		t.Fatalf("refresh did not publish: %+v", after)
	}
}

func TestCacheEviction(t *testing.T) {
	ts := httptest.NewServer(newTestServer(t, func(c *Config) { c.CacheSize = 2 }))
	defer ts.Close()

	for _, q := range []string{
		"ANALYZE PROBLEM 1 WITH k=2, support=2, q=0.1, r=0.1",
		"ANALYZE PROBLEM 2 WITH k=2, support=2, q=0.1, r=0.1",
		"ANALYZE PROBLEM 3 WITH k=2, support=2, q=0.1, r=0.1",
	} {
		if status, _ := analyze(t, ts, q); status != http.StatusOK {
			t.Fatalf("query %q: status = %d", q, status)
		}
	}
	stats := getStats(t, ts)
	if stats.Cache.Size != 2 {
		t.Fatalf("cache size = %d, want 2", stats.Cache.Size)
	}
	if stats.Cache.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", stats.Cache.Evictions)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	ts := httptest.NewServer(newTestServer(t, nil))
	defer ts.Close()

	analyze(t, ts, testQuery)
	pt := scrapeMetrics(t, ts)
	for _, want := range []struct {
		name  string
		kv    []string
		value float64
	}{
		{"tagdm_requests_total", []string{"endpoint", "analyze"}, 1},
		{"tagdm_cache_misses_total", nil, 1},
		{"tagdm_solves_total", []string{"family", "smlsh"}, 1},
		{"tagdm_solves_total", []string{"family", "exact"}, 0},
		{"tagdm_snapshot_epoch", nil, 0},
		{"tagdm_solve_latency_seconds_count", []string{"family", "smlsh"}, 1},
		{"tagdm_groups", nil, 4},
		{"tagdm_solve_stage_seconds_count", []string{"family", "smlsh", "stage", "matrix"}, 1},
		{"tagdm_solve_stage_seconds_count", []string{"family", "smlsh", "stage", "lsh_build"}, 1},
		{"tagdm_solve_stage_seconds_count", []string{"family", "smlsh", "stage", "bucket_scan"}, 1},
		{"tagdm_solve_stage_seconds_count", []string{"family", "smlsh", "stage", "total"}, 1},
		{"tagdm_solve_stage_seconds_count", []string{"family", "exact", "stage", "enumerate"}, 0},
	} {
		got, ok := pt.Sample(want.name, want.kv...)
		if !ok {
			t.Fatalf("metrics missing sample %s %v", want.name, want.kv)
		}
		if got != want.value {
			t.Fatalf("%s%v = %g, want %g", want.name, want.kv, got, want.value)
		}
	}
}

// TestConcurrentIngestAndAnalyze interleaves streaming ingest with analyze
// and stats traffic; run with -race to verify the epoch/snapshot scheme
// actually isolates readers from the writer.
func TestConcurrentIngestAndAnalyze(t *testing.T) {
	ts := httptest.NewServer(newTestServer(t, func(c *Config) { c.Workers = 4 }))
	defer ts.Close()

	const (
		writers = 2
		readers = 4
		rounds  = 15
	)
	var wg sync.WaitGroup
	errs := make(chan error, writers+readers+1)

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				user, item := int32(i%2), int32((i+w)%2)
				resp, body := postJSON(t, ts, "/v1/actions", IngestRequest{Actions: []IngestAction{
					{User: &user, Item: &item, Rating: 3, Tags: []string{fmt.Sprintf("tag-%d-%d", w, i)}},
				}})
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("writer %d: status %d: %s", w, resp.StatusCode, body)
					return
				}
			}
		}(w)
	}
	queries := []string{
		testQuery,
		"ANALYZE PROBLEM 1 WITH k=2, support=2, q=0.1, r=0.1",
		"ANALYZE MAXIMIZE diversity(tags) SUBJECT TO similarity(items) >= 0.1 WITH k=2",
		"ANALYZE PROBLEM 3 WHERE genre=action WITH k=2, support=2, q=0.1, r=0.1",
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				status, _ := analyze(t, ts, queries[(r+i)%len(queries)])
				if status != http.StatusOK && status != http.StatusTooManyRequests {
					errs <- fmt.Errorf("reader %d: status %d", r, status)
					return
				}
			}
		}(r)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			getStats(t, ts)
		}
	}()

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Flush pending inserts, then the totals must line up exactly.
	postJSON(t, ts, "/v1/refresh", struct{}{})
	stats := getStats(t, ts)
	if want := 12 + writers*rounds; stats.Actions != want {
		t.Fatalf("actions = %d, want %d", stats.Actions, want)
	}
}

func TestCanonicalQueryPreservesQuotedWhitespace(t *testing.T) {
	cases := []struct{ in, want string }{
		{"ANALYZE  PROBLEM 1\n WITH k=2", "ANALYZE PROBLEM 1 WITH k=2"},
		{"  ANALYZE PROBLEM 1  ", "ANALYZE PROBLEM 1"},
		{"ANALYZE PROBLEM 1 WHERE state='new  york'", "ANALYZE PROBLEM 1 WHERE state='new  york'"},
		{"ANALYZE PROBLEM 1  WHERE  state='new york'", "ANALYZE PROBLEM 1 WHERE state='new york'"},
	}
	for _, c := range cases {
		if got := canonicalQuery(c.in); got != c.want {
			t.Errorf("canonicalQuery(%q) = %q, want %q", c.in, got, c.want)
		}
	}
	// Queries differing only inside quotes must NOT share a cache key.
	a := canonicalQuery("ANALYZE PROBLEM 1 WHERE state='new  york'")
	b := canonicalQuery("ANALYZE PROBLEM 1 WHERE state='new york'")
	if a == b {
		t.Fatalf("distinct quoted values conflated: %q", a)
	}
}

func TestConfigClampsNonsenseValues(t *testing.T) {
	// Negative pool/queue/timeout values must fall back to defaults
	// instead of panicking at startup.
	s, err := New(Config{Dataset: testDataset(t), MinGroupTuples: 2, Workers: -1, QueueDepth: -1, SolveTimeout: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.cfg.Workers != 4 || s.cfg.QueueDepth != 64 {
		t.Fatalf("clamped config = %+v", s.cfg)
	}
}

func TestBadBatchRejectedAtomically(t *testing.T) {
	ts := httptest.NewServer(newTestServer(t, func(c *Config) { c.RefreshEvery = 10 }))
	defer ts.Close()

	// The second action is invalid: the whole batch must be rejected with
	// zero side effects — no applied prefix, no pending inserts, no leaked
	// entity creations. (Atomic batches are what make WAL replay sound:
	// every logged record is a fully-applied batch.)
	good, bad, item := int32(0), int32(99), int32(0)
	resp, body := postJSON(t, ts, "/v1/actions", IngestRequest{Actions: []IngestAction{
		{User: &good, Item: &item, Tags: []string{"x"}},
		{UserAttrs: map[string]string{"gender": "other"}, Item: &item, Tags: []string{"y"}},
		{User: &bad, Item: &item, Tags: []string{"z"}},
	}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400 (body %s)", resp.StatusCode, body)
	}
	stats := getStats(t, ts)
	if stats.PendingInserts != 0 {
		t.Fatalf("pending = %d, want 0 (batch must not partially apply)", stats.PendingInserts)
	}
	if stats.Ingest.Actions != 0 {
		t.Fatalf("ingested metric = %d, want 0", stats.Ingest.Actions)
	}
	if stats.Users != 2 {
		t.Fatalf("users = %d, want 2 (rejected batch leaked an entity creation)", stats.Users)
	}
}

// TestBatchValidationSimulatesInBatchCreation: a later action may reference
// an entity an earlier action of the same batch creates.
func TestBatchValidationSimulatesInBatchCreation(t *testing.T) {
	ts := httptest.NewServer(newTestServer(t, nil))
	defer ts.Close()

	newUser, item := int32(2), int32(0) // testDataset has users 0,1
	resp, body := postJSON(t, ts, "/v1/actions", IngestRequest{Actions: []IngestAction{
		{UserAttrs: map[string]string{"gender": "other"}, Item: &item, Tags: []string{"x"}},
		{User: &newUser, Item: &item, Tags: []string{"y"}},
	}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200 (body %s)", resp.StatusCode, body)
	}
}

// deterministicDataset is testDataset with a fixed action insertion order
// (testDataset ranges over a map, so two calls produce different tag-id
// orders — fine for single-server tests, fatal for cross-server
// comparisons of LSH-seeded answers).
func deterministicDataset(t testing.TB) *model.Dataset {
	t.Helper()
	d := model.NewDataset(model.NewSchema("gender"), model.NewSchema("genre"))
	must := func(id int32, err error) int32 {
		if err != nil {
			t.Fatal(err)
		}
		return id
	}
	m := must(d.AddUser(map[string]string{"gender": "male"}))
	f := must(d.AddUser(map[string]string{"gender": "female"}))
	action := must(d.AddItem(map[string]string{"genre": "action"}))
	drama := must(d.AddItem(map[string]string{"genre": "drama"}))
	for _, a := range []struct {
		user, item int32
		tags       []string
	}{
		{m, action, []string{"gun", "explosion", "gun"}},
		{f, action, []string{"stunt", "gun", "chase"}},
		{m, drama, []string{"tears", "slow", "acting"}},
		{f, drama, []string{"acting", "tears", "romance"}},
	} {
		for _, tag := range a.tags {
			if err := d.AddAction(a.user, a.item, 3, tag); err != nil {
				t.Fatal(err)
			}
		}
	}
	return d
}

func TestPrewarmMatricesMatchesColdResults(t *testing.T) {
	cold := httptest.NewServer(newTestServer(t, func(c *Config) {
		c.Dataset = deterministicDataset(t)
	}))
	defer cold.Close()
	warm := httptest.NewServer(newTestServer(t, func(c *Config) {
		c.Dataset = deterministicDataset(t)
		c.PrewarmMatrices = true
	}))
	defer warm.Close()

	status, coldResp := analyze(t, cold, testQuery)
	if status != http.StatusOK {
		t.Fatalf("cold analyze status %d", status)
	}
	status, warmResp := analyze(t, warm, testQuery)
	if status != http.StatusOK {
		t.Fatalf("warm analyze status %d", status)
	}
	if warmResp.Found != coldResp.Found || warmResp.Objective != coldResp.Objective ||
		warmResp.Support != coldResp.Support || len(warmResp.Groups) != len(coldResp.Groups) {
		t.Fatalf("prewarmed answer diverged: %+v vs %+v", warmResp, coldResp)
	}

	// A published epoch after ingest must also prewarm and keep answering.
	user, item := int32(0), int32(0)
	resp, body := postJSON(t, warm, "/v1/actions", IngestRequest{Actions: []IngestAction{
		{User: &user, Item: &item, Tags: []string{"gun"}},
	}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d: %s", resp.StatusCode, body)
	}
	status, after := analyze(t, warm, testQuery)
	if status != http.StatusOK || after.Epoch == warmResp.Epoch {
		t.Fatalf("post-ingest analyze status %d epoch %d (want new epoch)", status, after.Epoch)
	}
}
