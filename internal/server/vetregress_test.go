package server

import (
	"encoding/json"
	"errors"
	"log/slog"
	"strings"
	"testing"
	"time"

	"tagdm/internal/core"
	"tagdm/internal/obs"
)

// These tests pin the fixes surfaced by the tagdm-vet self-check: stage
// labels must stay inside the bounded, boot-registered set, and durability
// degradation logging must carry the request context that triggered it.

func TestStageLabelBoundsCardinality(t *testing.T) {
	for fam, stages := range familyStages {
		for _, st := range stages {
			if got := stageLabel(fam, st); got != st {
				t.Errorf("stageLabel(%q, %q) = %q, want passthrough", fam, st, got)
			}
		}
		if got := stageLabel(fam, "totally-new-stage"); got != stageOther {
			t.Errorf("stageLabel(%q, unknown) = %q, want %q", fam, got, stageOther)
		}
	}
	// A family with no registered stages folds everything, even names that
	// are valid for other families.
	if got := stageLabel(famOther, core.StageMatrix); got != stageOther {
		t.Errorf("stageLabel(other, %q) = %q, want %q", core.StageMatrix, got, stageOther)
	}
}

func TestRecordSolveNeverMintsUnboundedStageSeries(t *testing.T) {
	m := newMetrics(1)
	m.recordSolve(core.Result{
		Algorithm: "SM-LSH d'=4",
		Stages: []core.Stage{
			{Name: core.StageLSHBuild, Wall: time.Millisecond},
			{Name: "attacker-controlled-stage", Wall: time.Millisecond},
		},
	}, time.Millisecond, 2*time.Millisecond)

	var buf strings.Builder
	if err := m.reg.WriteText(&buf); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	text := buf.String()
	if strings.Contains(text, "attacker-controlled-stage") {
		t.Fatalf("unsanitized stage name reached /metrics:\n%s", text)
	}
	if !strings.Contains(text, `stage="`+stageOther+`"`) {
		t.Fatalf("unknown stage was dropped instead of folded into %q:\n%s", stageOther, text)
	}
	if !strings.Contains(text, `stage="`+core.StageLSHBuild+`"`) {
		t.Fatalf("known stage %q missing from /metrics:\n%s", core.StageLSHBuild, text)
	}
}

func TestDegradeCarriesRequestContext(t *testing.T) {
	var buf syncBuffer
	s := newTestServer(t, func(c *Config) {
		c.AccessLog = obs.NewJSONLogger(&buf, slog.LevelInfo)
	})

	const reqID = "deadbeefcafef00d"
	ctx := obs.ContextWithRequestID(t.Context(), reqID)
	s.degrade(ctx, "wal append", errors.New("disk on fire"))

	if _, ok := s.degradedReason(); !ok {
		t.Fatal("degrade did not latch read-only mode")
	}

	var line map[string]any
	for _, raw := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		if raw == "" {
			continue
		}
		var m map[string]any
		if err := json.Unmarshal([]byte(raw), &m); err != nil {
			t.Fatalf("degradation log line is not JSON: %q: %v", raw, err)
		}
		if m["msg"] == "entering read-only mode" {
			line = m
		}
	}
	if line == nil {
		t.Fatalf("no degradation log line:\n%s", buf.String())
	}
	if line["request_id"] != reqID {
		t.Fatalf("degradation line request_id = %v, want %q", line["request_id"], reqID)
	}
	reason, _ := line["reason"].(string)
	if !strings.Contains(reason, "wal append") || !strings.Contains(reason, "disk on fire") {
		t.Fatalf("degradation reason %q lost the operation or error", reason)
	}

	// Second failure while already degraded must not re-log: the latch is
	// sticky and the first cause is the one that matters.
	before := buf.String()
	s.degrade(ctx, "wal append", errors.New("still on fire"))
	if buf.String() != before {
		t.Fatal("second degrade call re-logged despite the sticky latch")
	}
}
