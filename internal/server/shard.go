package server

import (
	"context"
	"errors"
	"strings"
	"time"

	"tagdm/internal/core"
	"tagdm/internal/incremental"
	"tagdm/internal/obs"
	"tagdm/internal/query"
)

// This file is the scatter-gather serving tier: the published read view is
// a set of snapshot replicas (one per shard, all at the same epoch), an
// analyze fans one partial solve per shard onto per-shard worker pools, and
// the gathered partials merge into the answer a single serial solve would
// have produced — byte-identical, because the shards partition the solver's
// search space (see core.SolvePartial) rather than the data, and the merge
// reproduces the serial tie-breaks. With one shard the scatter degenerates
// to the old single-solve path through the very same code.

// shardSet is the published read view: one frozen snapshot replica per
// shard, all at the same epoch. A single atomic pointer swap publishes all
// replicas together, so a scatter always solves one consistent epoch across
// every shard.
type shardSet struct {
	snaps []*incremental.Snapshot
	epoch int64
}

// primary is the replica backing non-scatter reads (stats, epoch gauges,
// group rendering); all replicas are structurally identical.
func (ss *shardSet) primary() *incremental.Snapshot { return ss.snaps[0] }

// captureLocked takes a fresh snapshot of the maintainer and resets the
// unpublished counter. Callers hold s.mu (or are inside New, before the
// server is shared); replication and installation happen outside the lock
// via installSnapshot.
func (s *Server) captureLocked() (*incremental.Snapshot, error) {
	snap, err := s.maint.Snapshot()
	if err != nil {
		return nil, err
	}
	s.unpublished = 0
	return snap, nil
}

// installSnapshot replicates base across the configured shard count and
// publishes the set. Replication is O(store) per extra shard and runs
// outside s.mu so it never stalls the write path; concurrent publishes are
// ordered by epoch — the compare-and-swap loop declines to install only
// when a strictly newer set already won, so a slow replication of an old
// epoch can never clobber a newer published view.
func (s *Server) installSnapshot(base *incremental.Snapshot) error {
	if s.cfg.MatrixBudgetBytes > 0 {
		// Replicas adopt the base engine's cache, so one budget set here
		// governs the whole replica set.
		base.Engine.SetMatrixBudget(s.cfg.MatrixBudgetBytes)
	}
	snaps := make([]*incremental.Snapshot, s.cfg.Shards)
	snaps[0] = base
	for i := 1; i < s.cfg.Shards; i++ {
		rep, err := base.Replicate()
		if err != nil {
			return err
		}
		snaps[i] = rep
	}
	next := &shardSet{snaps: snaps, epoch: base.Version}
	for {
		cur := s.shards.Load()
		if cur != nil && cur.epoch > next.epoch {
			break
		}
		if s.shards.CompareAndSwap(cur, next) {
			break
		}
	}
	s.metrics.snapshots.Inc()
	return nil
}

// publish is capture + install: the snapshot copy happens under the write
// lock, replication and the atomic swap outside it.
func (s *Server) publish() error {
	s.mu.Lock()
	base, err := s.captureLocked()
	s.mu.Unlock()
	if err != nil {
		return err
	}
	return s.installSnapshot(base)
}

// shardOutcome is one shard's contribution to a scattered analyze.
type shardOutcome struct {
	shard   int
	partial core.Partial
	// merge is the engine the partial ran on; the gather uses shard 0's to
	// merge (all replicas are interchangeable for scoring).
	merge *core.Engine
	spec  core.ProblemSpec
	// empty marks a shard that found no describable groups in scope; all
	// shards agree on it, and the merged response is the empty answer.
	empty   bool
	elapsed time.Duration
}

// runShardPartial executes one shard's slice of a parsed query against that
// shard's snapshot replica. It runs on a pool worker; everything it touches
// is either immutable (the replica) or freshly built here, so concurrent
// executions never share mutable state. The context carries the shard's
// span and the request's cancellation budget.
func (s *Server) runShardPartial(ctx context.Context, snap *incremental.Snapshot, req *query.Request, shard, of int) (*shardOutcome, error) {
	start := time.Now()
	eng := snap.Engine
	n := snap.Store.Len()
	if len(req.Where) > 0 {
		scopeSpan := obs.StartSpan(ctx, "scope")
		scoped, scopedN, err := s.scopedEngine(snap, req.Where)
		scopeSpan.End()
		if err != nil {
			return nil, err
		}
		eng, n = scoped, scopedN
	}
	spec, err := req.Resolve(n)
	if err != nil {
		return nil, err
	}
	out := &shardOutcome{shard: shard, merge: eng, spec: spec}
	if len(eng.Groups) == 0 {
		// An empty universe has no feasible set; short-circuit rather than
		// exercising solver edge cases. Every shard scopes identically, so
		// they all land here together.
		out.empty = true
		out.elapsed = time.Since(start)
		return out, nil
	}
	partial, err := eng.SolvePartial(ctx, spec, core.SolveOptions{
		LSH: core.LSHOptions{Seed: s.cfg.Seed, Mode: core.Fold},
		FDP: core.FDPOptions{Mode: core.Fold},
	}, shard, of)
	if err != nil {
		return nil, err
	}
	out.partial = partial
	out.elapsed = time.Since(start)
	return out, nil
}

// scatterAnalyze fans a parsed query out as one partial solve per shard,
// gathers the shard outcomes, and merges them into the response a serial
// solve over one snapshot would have produced. Any shard rejecting with a
// full queue fails the whole request fast (errBusy -> 429); any shard error
// cancels the surviving shards.
func (s *Server) scatterAnalyze(ctx context.Context, solveSpan *obs.Span, ss *shardSet, req *query.Request, raw string) (*analyzeResponse, error) {
	start := time.Now()
	of := len(ss.snaps)
	gctx, cancel := context.WithCancel(ctx)
	defer cancel()
	// One shared result channel with room for every shard: workers never
	// block sending, so an abandoned gather cannot strand a worker.
	done := make(chan poolResult[*shardOutcome], of)
	submitted := 0
	for si := range ss.snaps {
		shard := si
		snap := ss.snaps[si]
		span := solveSpan.StartChild("shard")
		span.SetAttr("shard", shard)
		err := s.pools[shard].submit(gctx, done, func(jctx context.Context) (*shardOutcome, error) {
			defer span.End()
			return s.runShardPartial(obs.WithSpan(jctx, span), snap, req, shard, of)
		})
		if err != nil {
			// errBusy/errClosed. The deferred cancel makes already-queued
			// sibling jobs no-op at pick-up; nobody reads their results, the
			// buffered channel absorbs them.
			span.End()
			return nil, err
		}
		submitted++
	}

	outs := make([]*shardOutcome, 0, of)
	var firstErr error
	//tagdm:cancellable gather loop; request cancellation abandons the scatter
	for pending := submitted; pending > 0; pending-- {
		select {
		case res := <-done:
			if res.err != nil {
				// Prefer a real solver error over the context cancellations
				// it induces in sibling shards.
				if firstErr == nil || (isCtxErr(firstErr) && !isCtxErr(res.err)) {
					firstErr = res.err
				}
				cancel()
				continue
			}
			outs = append(outs, res.val)
		case <-ctx.Done():
			// Timeout or client gone: abandon the gather. Workers hold gctx
			// (a child of ctx) and stop at their next cancellation check.
			return nil, ctx.Err()
		}
	}
	if firstErr != nil {
		if isCtxErr(firstErr) && ctx.Err() != nil {
			return nil, ctx.Err()
		}
		return nil, firstErr
	}

	first := outs[0]
	resp := &analyzeResponse{Query: strings.TrimSpace(raw), Epoch: ss.epoch, spec: &first.spec}
	if first.empty {
		resp.Groups = []GroupResult{}
		resp.SolveMillis = float64(time.Since(start)) / 1e6
		return resp, nil
	}
	parts := make([]core.Partial, len(outs))
	var maxElapsed time.Duration
	for i, out := range outs {
		parts[i] = out.partial
		s.metrics.shardSolves.With(shardLabels[out.shard]).Inc()
		s.metrics.shardSolveSeconds.With(shardLabels[out.shard]).Observe(out.elapsed.Seconds())
		if out.elapsed > maxElapsed {
			maxElapsed = out.elapsed
		}
	}
	res, err := first.merge.MergePartials(first.spec, parts, start)
	if err != nil {
		return nil, err
	}
	s.metrics.recordSolve(res, maxElapsed, time.Since(start))
	resp.Found = res.Found
	resp.Algorithm = res.Algorithm
	resp.Objective = res.Objective
	resp.Support = res.Support
	resp.Groups = make([]GroupResult, len(res.Groups))
	for i, g := range res.Groups {
		resp.Groups[i] = GroupResult{Description: g.Describe(ss.primary().Store), Size: g.Size()}
	}
	resp.SolveMillis = float64(time.Since(start)) / 1e6
	return resp, nil
}

func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}
