package server

import (
	"container/list"
	"strings"
	"sync"
	"unicode"
)

// cacheKey identifies one analyze result: the whitespace-normalized query
// text plus the engine epoch it was computed against. Keying on the epoch
// gives cheap, exact invalidation — after ingest publishes a new snapshot,
// every old entry simply stops matching and ages out of the LRU.
type cacheKey struct {
	query string
	epoch int64
}

// canonicalQuery collapses runs of whitespace so trivially reformatted
// queries (extra spaces, newlines) share a cache entry — except inside
// single-quoted values, where whitespace is significant (the lexer takes
// quoted text verbatim, so genre='new  york' and genre='new york' are
// different values). Keyword case is left alone for the same reason:
// keywords are case-insensitive but attribute values are not, so
// normalizing either would conflate distinct queries.
func canonicalQuery(q string) string {
	var b strings.Builder
	b.Grow(len(q))
	inQuote, pendingSpace := false, false
	for _, r := range q {
		if inQuote {
			b.WriteRune(r)
			if r == '\'' {
				inQuote = false
			}
			continue
		}
		if unicode.IsSpace(r) {
			pendingSpace = true
			continue
		}
		if pendingSpace && b.Len() > 0 {
			b.WriteByte(' ')
		}
		pendingSpace = false
		b.WriteRune(r)
		if r == '\'' {
			inQuote = true
		}
	}
	return b.String()
}

// resultCache is a mutex-guarded LRU over analyze responses. Entries are
// immutable once stored; handlers copy before personalizing (the Cached
// flag).
type resultCache struct {
	mu        sync.Mutex
	cap       int
	entries   map[cacheKey]*list.Element
	order     *list.List // front = most recently used
	evictions int64
}

type cacheEntry struct {
	key cacheKey
	val *analyzeResponse
}

func newResultCache(capacity int) *resultCache {
	return &resultCache{
		cap:     capacity,
		entries: make(map[cacheKey]*list.Element, capacity),
		order:   list.New(),
	}
}

// get returns the cached response for k, promoting it to most recent.
func (c *resultCache) get(k cacheKey) (*analyzeResponse, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[k]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

// put stores v under k, evicting the least recently used entry when full.
func (c *resultCache) put(k cacheKey, v *analyzeResponse) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[k]; ok {
		el.Value.(*cacheEntry).val = v
		c.order.MoveToFront(el)
		return
	}
	c.entries[k] = c.order.PushFront(&cacheEntry{key: k, val: v})
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
		c.evictions++
	}
}

// stats returns the current size and lifetime eviction count.
func (c *resultCache) stats() (size int, evictions int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len(), c.evictions
}
