package server

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestMatrixAccountingAcrossShards pins the outcome-partition invariant on
// the served path: over any number of scattered analyzes, builds +
// rebuilds + hits + lazy must equal the bindings touched (solves × shards
// × spec bindings), while physical materializations — builds plus
// rebuilds — stay bounded by the distinct bindings, because all shard
// replicas share one matrix cache. Before the shared cache, each replica
// built privately and MergePartials reported one physical build as N.
func TestMatrixAccountingAcrossShards(t *testing.T) {
	ts := httptest.NewServer(newTestServer(t, func(c *Config) {
		c.Shards = 2
		c.CacheSize = -1 // disable the analyze cache so every request solves
	}))
	defer ts.Close()

	const solves = 3
	for i := 0; i < solves; i++ {
		status, res := analyze(t, ts, testQuery)
		if status != http.StatusOK {
			t.Fatalf("solve %d: status %d", i, status)
		}
		if !res.Found {
			t.Fatalf("solve %d: null result", i)
		}
	}

	stats := getStats(t, ts)
	fam := stats.Solve.Families["smlsh"]
	// The paper problems bind 2 constraints + 1 objective; each shard
	// partial scores all three.
	const bindings = 3
	touched := int64(solves * 2 * bindings)
	total := fam.MatrixBuilds + fam.MatrixRebuilds + fam.MatrixHits + fam.MatrixLazy
	if total != touched {
		t.Fatalf("builds %d + rebuilds %d + hits %d + lazy %d = %d, want %d bindings touched",
			fam.MatrixBuilds, fam.MatrixRebuilds, fam.MatrixHits, fam.MatrixLazy, total, touched)
	}
	if physical := fam.MatrixBuilds + fam.MatrixRebuilds; physical > bindings {
		t.Fatalf("%d physical builds for %d distinct bindings — replica builds double-counted",
			physical, bindings)
	}
}

// TestMatrixBudgetServedAndExported wires Config.MatrixBudgetBytes end to
// end: answers must match an unbudgeted server bit for bit, and /v1/stats
// and /metrics must expose the cache's residency and eviction counters.
func TestMatrixBudgetServedAndExported(t *testing.T) {
	ref := httptest.NewServer(newTestServer(t, func(c *Config) { c.Shards = 2 }))
	defer ref.Close()
	budgeted := httptest.NewServer(newTestServer(t, func(c *Config) {
		c.Shards = 2
		c.MatrixBudgetBytes = 64 // below one matrix at this corpus size
	}))
	defer budgeted.Close()

	for _, q := range []string{
		"ANALYZE PROBLEM 1 WITH k=2, support=2, q=0.1, r=0.1",
		testQuery,
	} {
		sWant, want := analyze(t, ref, q)
		sGot, got := analyze(t, budgeted, q)
		if sWant != http.StatusOK || sGot != http.StatusOK {
			t.Fatalf("%s: status %d vs %d", q, sGot, sWant)
		}
		if want.Found != got.Found || want.Objective != got.Objective {
			t.Fatalf("%s: budgeted answer diverged: %+v vs %+v", q, got, want)
		}
	}

	stats := getStats(t, budgeted)
	if stats.Matrix.BudgetBytes != 64 {
		t.Fatalf("stats budget = %d", stats.Matrix.BudgetBytes)
	}
	if stats.Matrix.Bytes > 64 && stats.Matrix.Entries > 1 {
		t.Fatalf("budget not enforced: %+v", stats.Matrix)
	}

	resp, err := http.Get(budgeted.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"tagdm_matrix_bytes",
		"tagdm_matrix_evictions_total",
		"tagdm_matrix_rebuilds_total",
		"tagdm_matrix_lazy_total",
	} {
		if !strings.Contains(string(body), name) {
			t.Fatalf("/metrics missing %s", name)
		}
	}
}

// TestIngestCarriesMatricesAcrossEpochs drives ingest through several
// publishes with prewarm on and asserts later epochs serve via dirty-row
// rebuilds rather than scratch builds — the serving-tier face of the epoch
// carry-over.
func TestIngestCarriesMatricesAcrossEpochs(t *testing.T) {
	ts := httptest.NewServer(newTestServer(t, func(c *Config) {
		c.CacheSize = -1
	}))
	defer ts.Close()

	if status, _ := analyze(t, ts, testQuery); status != http.StatusOK {
		t.Fatalf("cold analyze status %d", status)
	}
	// One insert → one publish (RefreshEvery=1): the new epoch's engine
	// carries the previous epoch's matrices with one dirty group set.
	user, item := int32(0), int32(0)
	resp, body := postJSON(t, ts, "/v1/actions", IngestRequest{Actions: []IngestAction{{
		User: &user, Item: &item, Tags: []string{"gun"},
	}}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d: %s", resp.StatusCode, body)
	}
	if status, _ := analyze(t, ts, testQuery); status != http.StatusOK {
		t.Fatalf("post-ingest analyze status %d", status)
	}

	stats := getStats(t, ts)
	fam := stats.Solve.Families["smlsh"]
	if fam.MatrixRebuilds == 0 && fam.MatrixBuilds > 3 {
		t.Fatalf("second epoch rebuilt from scratch: %+v", fam)
	}
}
