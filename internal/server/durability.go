package server

import (
	"bytes"
	"context"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"log/slog"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"tagdm/internal/incremental"
	"tagdm/internal/model"
	"tagdm/internal/obs"
	"tagdm/internal/signature"
	"tagdm/internal/wal"
)

// Durability layer. With Config.DataDir set, the server's state machine is
//
//	boot      = load newest valid checkpoint + replay the WAL tail
//	ingest    = apply batch in memory, append it to the WAL, ack after the
//	            group commit is durable, only then publish a snapshot
//	checkpoint = capture the maintainer under the write lock, sync the WAL,
//	            write the checkpoint file atomically, rotate and prune
//
// A checkpoint file checkpoint-<seq>.ckpt persists everything needed to
// rebuild the maintainer byte-identically: the dataset rendered in the
// model JSON format (which pins every dictionary code assignment), the
// active-group keys in ID order (solver tie-breaking depends on group ID
// order, which follows activation order, not enumeration order), the
// signature fold width frozen at first boot, and the WAL sequence the
// checkpoint covers. <seq> is that covered sequence. The newest two
// checkpoints are kept so a crash torn mid-checkpoint falls back to the
// previous one; replay then verifies WAL continuity and fails loudly if
// the tail it needs was already pruned, rather than silently losing
// acknowledged records.

const (
	ckptMagic       = "tagdmck1"
	ckptPrefix      = "checkpoint-"
	ckptSuffix      = ".ckpt"
	keepCheckpoints = 2
)

// checkpointBody is the gob payload inside the checkpoint envelope.
type checkpointBody struct {
	// Epoch is the maintainer version at capture; recovery resumes from it
	// so epochs survive restarts.
	Epoch int64
	// WALSeq is the last WAL sequence whose effects the checkpoint
	// contains; replay starts after it.
	WALSeq uint64
	// MinGroupTuples pins the activation threshold; restoring under a
	// different threshold would invalidate ActiveKeys.
	MinGroupTuples int
	// SigSize is the frequency-summarizer fold width fixed at first boot
	// (the vocabulary size then). Signatures fold grown vocabularies into
	// this width, so recovery must reuse it for identical solver answers.
	SigSize int
	// ActiveKeys are the active groups' full-assignment keys in ID order.
	ActiveKeys []string
	// DatasetJSON is the dataset in model JSON format: schemas, dictionary
	// code assignments, users, items and every action in insert order.
	DatasetJSON []byte
	// Actions double-checks DatasetJSON decoded to the captured length.
	Actions int
}

// durability bundles the handles of a durable server.
type durability struct {
	dir string
	fs  wal.FS
	log *wal.Log
}

// RecoveryInfo describes what a durable boot found on disk; surfaced in
// /v1/stats.
type RecoveryInfo struct {
	// Recovered is true when state came from a checkpoint (not first boot).
	Recovered bool `json:"recovered"`
	// CheckpointSeq is the WAL sequence the loaded checkpoint covered.
	CheckpointSeq uint64 `json:"checkpoint_seq"`
	// CheckpointEpoch is the epoch the loaded checkpoint resumed from.
	CheckpointEpoch int64 `json:"checkpoint_epoch"`
	// ReplayedRecords / ReplayedActions count the WAL tail replayed on top.
	ReplayedRecords int `json:"replayed_records"`
	ReplayedActions int `json:"replayed_actions"`
	// TornTailBytes is how many bytes of torn (unacknowledged) tail the WAL
	// truncated during open.
	TornTailBytes int64 `json:"torn_tail_bytes"`
}

// degraded is the sticky read-only state entered on a disk failure.
type degraded struct {
	reason string
	at     time.Time
}

// degrade latches read-only mode on the first disk failure. Ingest and
// refresh return 503 from then on; analyze keeps serving the last published
// snapshot (which by construction only ever contained durably acknowledged
// data, because publication happens after the WAL ack). The context is the
// operation that tripped the failure: the access-log line carries its
// request ID, so the degradation can be traced to the request that hit it.
func (s *Server) degrade(ctx context.Context, op string, err error) {
	d := &degraded{reason: fmt.Sprintf("%s: %v", op, err), at: time.Now()}
	if s.degradedP.CompareAndSwap(nil, d) {
		s.metrics.degradations.Inc()
		if s.cfg.AccessLog != nil {
			attrs := []slog.Attr{slog.String("reason", d.reason)}
			if id := obs.RequestIDFrom(ctx); id != "" {
				attrs = append(attrs, slog.String("request_id", id))
			}
			s.cfg.AccessLog.LogAttrs(ctx, slog.LevelError, "entering read-only mode", attrs...)
		}
	}
}

// degradedReason reports the sticky read-only state.
func (s *Server) degradedReason() (string, bool) {
	if d := s.degradedP.Load(); d != nil {
		return d.reason, true
	}
	return "", false
}

// checkDurable latches failures the WAL hit outside a request (interval
// fsync ticker, background flush). Cheap; called from ingest and healthz
// with the request context, which degrade threads into the access log.
func (s *Server) checkDurable(ctx context.Context) {
	if s.dur == nil {
		return
	}
	if err := s.dur.log.Err(); err != nil {
		s.degrade(ctx, "wal", err)
	}
}

// openDurable initializes s.ds/s.maint/s.sigSize from the data dir (or the
// seed dataset on first boot), opens the WAL, replays its tail, and writes
// the initial checkpoint on first boot. Called from New before the server
// is shared, so no locking.
func (s *Server) openDurable(root *obs.Span) error {
	cfg := s.cfg
	fs := cfg.WALFS
	if fs == nil {
		fs = wal.OSFS{}
	}
	if err := fs.MkdirAll(cfg.DataDir); err != nil {
		return fmt.Errorf("server: creating data dir: %w", err)
	}

	loadSpan := root.StartChild("load_checkpoint")
	ckpt, err := loadLatestCheckpoint(fs, cfg.DataDir)
	loadSpan.End()
	if err != nil {
		return err
	}
	var fromSeq uint64
	if ckpt != nil {
		if ckpt.MinGroupTuples != cfg.MinGroupTuples {
			return fmt.Errorf("server: checkpoint was written with min-group-tuples=%d, config says %d; "+
				"changing the threshold invalidates the persisted group universe", ckpt.MinGroupTuples, cfg.MinGroupTuples)
		}
		ds, err := model.ReadJSON(bytes.NewReader(ckpt.DatasetJSON))
		if err != nil {
			return fmt.Errorf("server: decoding checkpoint dataset: %w", err)
		}
		if len(ds.Actions) != ckpt.Actions {
			return fmt.Errorf("server: checkpoint dataset has %d actions, header says %d", len(ds.Actions), ckpt.Actions)
		}
		maint, err := incremental.Restore(ds, ckpt.MinGroupTuples,
			signature.FrequencyOfSize(ckpt.SigSize), ckpt.ActiveKeys, ckpt.Epoch)
		if err != nil {
			return fmt.Errorf("server: restoring from checkpoint: %w", err)
		}
		s.ds, s.maint, s.sigSize = ds, maint, ckpt.SigSize
		fromSeq = ckpt.WALSeq
		s.recovery.Recovered = true
		s.recovery.CheckpointSeq = ckpt.WALSeq
		s.recovery.CheckpointEpoch = ckpt.Epoch
	} else {
		if cfg.Dataset == nil {
			return fmt.Errorf("server: no checkpoint in %s and no Config.Dataset to seed from", cfg.DataDir)
		}
		sum := signature.FrequencyOfSize(cfg.Dataset.Vocab.Size())
		maint, err := incremental.New(cfg.Dataset, cfg.MinGroupTuples, sum)
		if err != nil {
			return err
		}
		s.ds, s.maint, s.sigSize = cfg.Dataset, maint, cfg.Dataset.Vocab.Size()
	}

	openSpan := root.StartChild("wal_open")
	log, err := wal.Open(cfg.DataDir, wal.Options{
		FlushInterval: cfg.FlushInterval,
		FlushBytes:    cfg.FlushBytes,
		Sync:          cfg.FsyncMode,
		SyncEvery:     cfg.SyncEvery,
		FS:            fs,
		OnSync: func(d time.Duration, err error) {
			s.metrics.walFsyncSeconds.Observe(d.Seconds())
		},
	})
	openSpan.End()
	if err != nil {
		return err
	}
	s.dur = &durability{dir: cfg.DataDir, fs: fs, log: log}
	s.recovery.TornTailBytes = log.Recovery().TornBytes
	s.ckptLastSeq.Store(fromSeq)
	s.ckptLastEpoch.Store(s.recovery.CheckpointEpoch)

	// Replay the tail through the identical validate+apply path ingest
	// uses, verifying sequence continuity: a gap means acknowledged records
	// were lost (e.g. a pruned segment under a corrupt checkpoint), which
	// must fail the boot, not silently diverge.
	replaySpan := root.StartChild("replay")
	expect := fromSeq + 1
	err = log.Replay(fromSeq, func(seq uint64, payload []byte) error {
		if seq != expect {
			return fmt.Errorf("server: WAL gap: next record is seq %d, want %d — "+
				"acknowledged records are missing, refusing to recover", seq, expect)
		}
		expect++
		var req IngestRequest
		if err := json.Unmarshal(payload, &req); err != nil {
			return fmt.Errorf("server: decoding WAL record %d: %w", seq, err)
		}
		if err := s.validateBatchLocked(req.Actions); err != nil {
			return fmt.Errorf("server: WAL record %d does not apply: %w", seq, err)
		}
		var resp IngestResponse
		if err := s.applyBatchLocked(req.Actions, &resp); err != nil {
			return fmt.Errorf("server: WAL record %d failed to apply: %w", seq, err)
		}
		s.recovery.ReplayedRecords++
		s.recovery.ReplayedActions += resp.Inserted
		return nil
	})
	replaySpan.End()
	if err != nil {
		//tagdm:allow-discard boot already failing; the replay error is the one worth surfacing
		log.Close()
		s.dur = nil
		return err
	}

	// First boot: checkpoint the seed immediately so every subsequent boot
	// is uniformly "checkpoint + tail", and so the server can boot from the
	// data dir alone (no corpus flags).
	if ckpt == nil {
		//tagdm:nolint ctxflow -- boot path: no request context exists before the server is up
		if err := s.Checkpoint(context.Background()); err != nil {
			//tagdm:allow-discard boot already failing; the checkpoint error is the one worth surfacing
			log.Close()
			s.dur = nil
			return fmt.Errorf("server: writing initial checkpoint: %w", err)
		}
	}
	return nil
}

// Checkpoint captures the maintainer state, makes the WAL durable up to the
// covered sequence, writes the checkpoint file atomically and prunes WAL
// segments and old checkpoints it supersedes. Safe to call concurrently
// with ingest: the capture holds the write lock only for the in-memory
// serialization; all disk I/O happens outside it. The context identifies
// the caller in degradation log lines; the checkpoint itself is not
// interruptible (a half-applied checkpoint would be worse than a slow one).
func (s *Server) Checkpoint(ctx context.Context) error {
	if s.dur == nil {
		return nil
	}
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()
	if reason, ok := s.degradedReason(); ok {
		return fmt.Errorf("server: read-only (%s), not checkpointing", reason)
	}
	start := time.Now()

	s.mu.Lock()
	covered := s.dur.log.NextSeq() - 1
	body := checkpointBody{
		Epoch:          s.maint.Version(),
		WALSeq:         covered,
		MinGroupTuples: s.cfg.MinGroupTuples,
		SigSize:        s.sigSize,
		ActiveKeys:     s.maint.ActiveKeys(),
		Actions:        s.maint.Store().Len(),
	}
	datasetJSON, err := s.encodeDatasetLocked()
	// Reset the progress counter at capture so actions ingested during the
	// checkpoint count toward the next one; if the checkpoint fails before
	// its file is durable, add the saved count back so the next automatic
	// checkpoint is not deferred by a full CheckpointEvery window.
	savedProgress := s.sinceCkpt
	s.sinceCkpt = 0
	s.mu.Unlock()
	restoreProgress := func() {
		s.mu.Lock()
		s.sinceCkpt += savedProgress
		s.mu.Unlock()
	}
	if err != nil {
		restoreProgress()
		s.metrics.checkpointErrors.Inc()
		return fmt.Errorf("server: serializing dataset for checkpoint: %w", err)
	}
	body.DatasetJSON = datasetJSON

	// Everything the checkpoint covers must be durable before the
	// checkpoint claims coverage.
	if err := s.dur.log.Sync(); err != nil {
		restoreProgress()
		s.metrics.checkpointErrors.Inc()
		s.degrade(ctx, "wal sync for checkpoint", err)
		return err
	}

	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(body); err != nil {
		restoreProgress()
		s.metrics.checkpointErrors.Inc()
		return fmt.Errorf("server: encoding checkpoint: %w", err)
	}
	if err := writeFileAtomic(s.dur.fs, s.dur.dir, ckptName(covered),
		wal.EncodeEnvelope(ckptMagic, payload.Bytes())); err != nil {
		restoreProgress()
		s.metrics.checkpointErrors.Inc()
		s.degrade(ctx, "checkpoint write", err)
		return err
	}

	// The checkpoint is durable; everything before it is dead weight.
	if err := s.dur.log.Rotate(); err != nil {
		s.metrics.checkpointErrors.Inc()
		s.degrade(ctx, "wal rotate", err)
		return err
	}
	//tagdm:allow-discard best effort; replay skips covered segments anyway
	_ = s.dur.log.RemoveBefore(covered)
	s.pruneCheckpoints()

	s.ckptLastSeq.Store(covered)
	s.ckptLastEpoch.Store(body.Epoch)
	s.metrics.checkpoints.Inc()
	s.metrics.checkpointTime.Observe(time.Since(start).Seconds())
	return nil
}

// maybeCheckpointAsync starts a background checkpoint when enough actions
// accumulated since the last one. At most one checkpoint runs at a time;
// extra triggers are dropped (the next batch re-triggers).
func (s *Server) maybeCheckpointAsync() {
	if s.dur == nil || s.cfg.CheckpointEvery <= 0 {
		return
	}
	s.mu.Lock()
	due := s.sinceCkpt >= s.cfg.CheckpointEvery
	s.mu.Unlock()
	if !due || !s.ckptRunning.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer s.ckptRunning.Store(false)
		//tagdm:nolint ctxflow -- detached by design: the checkpoint outlives the request that triggered it
		_ = s.Checkpoint(context.Background()) //tagdm:allow-discard errors latch degraded mode and surface via /healthz
	}()
}

// encodeDatasetLocked renders the current corpus in the model JSON format.
// The maintainer's store — not Dataset.Actions — is the source of truth for
// actions (Insert grows the store only), so actions are read back out of it
// in insert order. Dictionaries are shared append-only structures; the JSON
// format pins their code assignments so a recovered dataset re-encodes
// every value and tag to the same codes. It writes only into an in-memory
// buffer — no disk I/O — so it is safe under s.mu.
//
//tagdm:nonblocking
func (s *Server) encodeDatasetLocked() ([]byte, error) {
	st := s.maint.Store()
	d := &model.Dataset{
		UserSchema: s.ds.UserSchema,
		ItemSchema: s.ds.ItemSchema,
		Vocab:      s.ds.Vocab,
		Users:      s.ds.Users,
		Items:      s.ds.Items,
		Actions:    make([]model.TaggingAction, st.Len()),
	}
	for i := range d.Actions {
		d.Actions[i] = model.TaggingAction{
			User:   st.TupleUser(i),
			Item:   st.TupleItem(i),
			Tags:   st.TupleTags(i),
			Rating: st.TupleRating(i),
		}
	}
	var buf bytes.Buffer
	if err := d.WriteJSON(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func ckptName(seq uint64) string {
	return fmt.Sprintf("%s%020d%s", ckptPrefix, seq, ckptSuffix)
}

func parseCkptName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, ckptPrefix) || !strings.HasSuffix(name, ckptSuffix) {
		return 0, false
	}
	n, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, ckptPrefix), ckptSuffix), 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// listCheckpoints returns checkpoint sequence numbers in dir, ascending.
func listCheckpoints(fs wal.FS, dir string) ([]uint64, error) {
	names, err := fs.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var seqs []uint64
	for _, name := range names {
		if seq, ok := parseCkptName(name); ok {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

// loadLatestCheckpoint returns the newest checkpoint that decodes cleanly,
// or nil when the dir holds none. A corrupt newest checkpoint (e.g. torn by
// a crash mid-write before the atomic rename, or bit rot) falls back to the
// previous one; the WAL continuity check during replay catches the case
// where that older checkpoint's tail was already pruned.
func loadLatestCheckpoint(fs wal.FS, dir string) (*checkpointBody, error) {
	seqs, err := listCheckpoints(fs, dir)
	if err != nil {
		return nil, fmt.Errorf("server: listing checkpoints: %w", err)
	}
	var lastErr error
	for i := len(seqs) - 1; i >= 0; i-- {
		body, err := readCheckpoint(fs, filepath.Join(dir, ckptName(seqs[i])))
		if err != nil {
			lastErr = err
			continue
		}
		return body, nil
	}
	if lastErr != nil {
		return nil, fmt.Errorf("server: no valid checkpoint (newest error: %w)", lastErr)
	}
	return nil, nil
}

func readCheckpoint(fs wal.FS, path string) (*checkpointBody, error) {
	f, err := fs.Open(path)
	if err != nil {
		return nil, fmt.Errorf("opening %s: %w", path, err)
	}
	//tagdm:allow-discard read-only checkpoint handle, nothing buffered to lose
	defer f.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(f); err != nil {
		return nil, fmt.Errorf("reading %s: %w", path, err)
	}
	payload, err := wal.DecodeEnvelope(ckptMagic, buf.Bytes())
	if err != nil {
		return nil, fmt.Errorf("checkpoint %s: %w", path, err)
	}
	var body checkpointBody
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&body); err != nil {
		return nil, fmt.Errorf("decoding %s: %w", path, err)
	}
	return &body, nil
}

// pruneCheckpoints removes all but the newest keepCheckpoints checkpoint
// files. Best effort: a failed removal only costs disk.
func (s *Server) pruneCheckpoints() {
	seqs, err := listCheckpoints(s.dur.fs, s.dur.dir)
	if err != nil {
		return
	}
	for len(seqs) > keepCheckpoints {
		//tagdm:allow-discard best effort by contract: a failed removal only costs disk
		_ = s.dur.fs.Remove(filepath.Join(s.dur.dir, ckptName(seqs[0])))
		seqs = seqs[1:]
	}
}

// writeFileAtomic writes data to dir/name via a temp file, fsync, rename
// and directory fsync — the standard crash-safe publish protocol.
func writeFileAtomic(fs wal.FS, dir, name string, data []byte) error {
	tmp := filepath.Join(dir, name+".tmp")
	f, err := fs.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		//tagdm:allow-discard the write error is the durability signal; close is cleanup of a doomed temp file
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		//tagdm:allow-discard the sync error is the durability signal; close is cleanup of a doomed temp file
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := fs.Rename(tmp, filepath.Join(dir, name)); err != nil {
		return err
	}
	return fs.SyncDir(dir)
}
