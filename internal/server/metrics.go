package server

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"time"
)

// metrics holds the server's counters and the solve-latency histogram.
// Everything is atomic so the hot paths never contend on a lock, and the
// /metrics endpoint renders a consistent-enough point-in-time view.
type metrics struct {
	started time.Time

	analyzeRequests atomic.Int64
	ingestRequests  atomic.Int64
	actionsIngested atomic.Int64
	usersCreated    atomic.Int64
	itemsCreated    atomic.Int64

	cacheHits   atomic.Int64
	cacheMisses atomic.Int64

	solves        atomic.Int64
	solveErrors   atomic.Int64
	solveTimeouts atomic.Int64
	rejected      atomic.Int64

	// Solver work accounting, split the way core.Result splits it:
	// candidates actually evaluated versus candidates cut by the Exact
	// branch-and-bound without evaluation (0 for the approximate families).
	candidatesExamined atomic.Int64
	candidatesPruned   atomic.Int64

	snapshots atomic.Int64

	latency histogram
}

func newMetrics() *metrics {
	m := &metrics{started: time.Now()}
	m.latency.bounds = []float64{0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}
	m.latency.counts = make([]atomic.Int64, len(m.latency.bounds)+1)
	return m
}

// histogram is a fixed-bucket latency histogram in seconds, rendered in
// Prometheus cumulative-bucket form.
type histogram struct {
	bounds []float64      // upper bounds, ascending; +Inf is implicit
	counts []atomic.Int64 // len(bounds)+1, non-cumulative per bucket
	sumNs  atomic.Int64
	count  atomic.Int64
}

func (h *histogram) observe(d time.Duration) {
	sec := d.Seconds()
	i := 0
	for i < len(h.bounds) && sec > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sumNs.Add(int64(d))
	h.count.Add(1)
}

// meanMillis returns the mean observed latency in milliseconds (0 when no
// observations have been made).
func (h *histogram) meanMillis() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sumNs.Load()) / float64(n) / 1e6
}

// hitRate returns cache hits / (hits + misses), or 0 before any lookup.
func (m *metrics) hitRate() float64 {
	h, s := m.cacheHits.Load(), m.cacheMisses.Load()
	if h+s == 0 {
		return 0
	}
	return float64(h) / float64(h+s)
}

// render writes the Prometheus text exposition of every counter plus the
// gauges passed in by the server (values that live outside metrics, such as
// the current epoch and queue depth).
func (m *metrics) render(gauges map[string]float64) string {
	var b strings.Builder
	counter := func(name, help string, v int64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("tagdm_analyze_requests_total", "Analyze requests received.", m.analyzeRequests.Load())
	counter("tagdm_ingest_requests_total", "Ingest requests received.", m.ingestRequests.Load())
	counter("tagdm_actions_ingested_total", "Tagging actions inserted.", m.actionsIngested.Load())
	counter("tagdm_users_created_total", "Users created through ingest.", m.usersCreated.Load())
	counter("tagdm_items_created_total", "Items created through ingest.", m.itemsCreated.Load())
	counter("tagdm_cache_hits_total", "Analyze results served from cache.", m.cacheHits.Load())
	counter("tagdm_cache_misses_total", "Analyze cache misses.", m.cacheMisses.Load())
	counter("tagdm_solves_total", "Solver executions.", m.solves.Load())
	counter("tagdm_candidates_examined_total", "Candidate sets evaluated by solvers.", m.candidatesExamined.Load())
	counter("tagdm_candidates_pruned_total", "Candidate sets cut by branch-and-bound without evaluation.", m.candidatesPruned.Load())
	counter("tagdm_solve_errors_total", "Solver executions that errored.", m.solveErrors.Load())
	counter("tagdm_solve_timeouts_total", "Analyze requests that timed out.", m.solveTimeouts.Load())
	counter("tagdm_rejected_total", "Analyze requests rejected with a full queue.", m.rejected.Load())
	counter("tagdm_snapshots_published_total", "Engine snapshots published.", m.snapshots.Load())
	for _, g := range sortedGauges(gauges) {
		fmt.Fprintf(&b, "# TYPE %s gauge\n%s %g\n", g.name, g.name, g.value)
	}

	name := "tagdm_solve_latency_seconds"
	fmt.Fprintf(&b, "# HELP %s Solver latency.\n# TYPE %s histogram\n", name, name)
	cum := int64(0)
	for i, bound := range m.latency.bounds {
		cum += m.latency.counts[i].Load()
		fmt.Fprintf(&b, "%s_bucket{le=%q} %d\n", name, fmt.Sprintf("%g", bound), cum)
	}
	cum += m.latency.counts[len(m.latency.bounds)].Load()
	fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(&b, "%s_sum %g\n", name, float64(m.latency.sumNs.Load())/1e9)
	fmt.Fprintf(&b, "%s_count %d\n", name, m.latency.count.Load())
	return b.String()
}

type gauge struct {
	name  string
	value float64
}

func sortedGauges(gauges map[string]float64) []gauge {
	out := make([]gauge, 0, len(gauges))
	for name, v := range gauges {
		out = append(out, gauge{name, v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}
