package server

import (
	"time"

	"tagdm/internal/core"
	"tagdm/internal/obs"
)

// Solver family labels. Every per-solver metric is keyed by one of these
// so dashboards can compare the exact baseline against the approximate
// families without regex-matching algorithm variant names.
const (
	famExact = "exact"
	famSMLSH = "smlsh"
	famDVFDP = "dvfdp"
	famOther = "other"
)

// stageTotal is the synthetic stage label covering the whole solver call,
// alongside the per-phase stages core.Result reports.
const stageTotal = "total"

// solverFamilies lists the families whose series are pre-registered, so
// /metrics exposes zero-valued series from boot instead of materializing
// them on first use.
//
//tagdm:label-set
var solverFamilies = []string{famExact, famSMLSH, famDVFDP}

// familyStages maps each family to the stage labels its solvers emit (see
// the core.Stage* constants) plus the synthetic total and the stageOther
// bucket for stage names no release of the solvers is known to produce.
//
//tagdm:label-set
var familyStages = map[string][]string{
	famExact: {core.StageMatrix, core.StageEnumerate, stageTotal, stageOther},
	famSMLSH: {core.StageMatrix, core.StageLSHBuild, core.StageBucketScan, stageTotal, stageOther},
	famDVFDP: {core.StageMatrix, core.StageGreedy, core.StageLocalSearch, stageTotal, stageOther},
}

// stageOther is the overflow bucket stageLabel folds unknown stage names
// into, so a solver emitting a new stage cannot mint unbounded series.
const stageOther = "other"

// stageLabel admits a core.Result stage name into the bounded label space:
// names pre-registered for the family pass through, anything else becomes
// stageOther. core.Result stages are runtime data as far as this package
// is concerned, and runtime data must never reach a label unsanitized.
//
//tagdm:label-sanitizer
func stageLabel(fam, name string) string {
	for _, known := range familyStages[fam] {
		if known == name {
			return name
		}
	}
	return stageOther
}

// familyOf buckets a core.Result algorithm name ("Exact", "SM-LSH-Fo",
// "DV-FDP-Fi", ...) into its metric family label.
//
//tagdm:label-sanitizer
func familyOf(algorithm string) string {
	switch {
	case algorithm == "Exact":
		return famExact
	case len(algorithm) >= 6 && algorithm[:6] == "SM-LSH":
		return famSMLSH
	case len(algorithm) >= 6 && algorithm[:6] == "DV-FDP":
		return famDVFDP
	default:
		return famOther
	}
}

// endpointLabel maps a request path to a bounded endpoint label so the
// per-endpoint series can never grow with attacker-chosen paths.
//
//tagdm:label-sanitizer
func endpointLabel(path string) string {
	switch path {
	case "/v1/analyze":
		return "analyze"
	case "/v1/actions":
		return "actions"
	case "/v1/refresh":
		return "refresh"
	case "/v1/stats":
		return "stats"
	case "/metrics":
		return "metrics"
	case "/healthz":
		return "healthz"
	default:
		return "other"
	}
}

//tagdm:label-set
var endpointLabels = []string{"analyze", "actions", "refresh", "stats", "metrics", "healthz", "other"}

// shardLabels bounds the per-shard label space: Config.Shards is clamped to
// len(shardLabels) at construction, and scatter code labels series by
// indexing this set with the shard number, so shard series can never grow
// past it no matter what configuration arrives.
//
//tagdm:label-set
var shardLabels = []string{
	"0", "1", "2", "3", "4", "5", "6", "7",
	"8", "9", "10", "11", "12", "13", "14", "15",
	"16", "17", "18", "19", "20", "21", "22", "23",
	"24", "25", "26", "27", "28", "29", "30", "31",
}

// metrics is the server's obs.Registry plus handles to every series the
// hot paths touch. /v1/stats reads the exact same atomics that /metrics
// renders (via the Value/Count/Sum accessors), so the two views cannot
// drift.
type metrics struct {
	started time.Time
	reg     *obs.Registry

	requests       *obs.CounterVec   // {endpoint}
	requestLatency *obs.HistogramVec // {endpoint}

	actionsIngested *obs.Counter
	usersCreated    *obs.Counter
	itemsCreated    *obs.Counter
	ingestLatency   *obs.Histogram
	snapshots       *obs.Counter

	cacheHits   *obs.Counter
	cacheMisses *obs.Counter

	solves             *obs.CounterVec // {family}
	solveErrors        *obs.Counter
	solveTimeouts      *obs.Counter
	rejected           *obs.Counter
	slowSolves         *obs.Counter
	candidatesExamined *obs.CounterVec // {family}
	candidatesPruned   *obs.CounterVec // {family}
	matrixBuilds       *obs.CounterVec // {family}
	matrixRebuilds     *obs.CounterVec // {family}
	matrixHits         *obs.CounterVec // {family}
	matrixLazy         *obs.CounterVec // {family}

	solveLatency *obs.HistogramVec // {family}: end-to-end analyze execution
	solveStage   *obs.HistogramVec // {family,stage}: per-phase solver wall time

	shardSolves       *obs.CounterVec   // {shard}: partial solves gathered per shard
	shardSolveSeconds *obs.HistogramVec // {shard}: per-shard partial solve wall time

	// Durability series. Counters stay zero when the server runs without a
	// data dir; the gauges (registered in registerGauges) read the WAL's
	// own counters at render time.
	walAppends       *obs.Counter
	walAppendBytes   *obs.Counter
	walAppendErrors  *obs.Counter
	walAppendWait    *obs.Histogram // ack latency: enqueue to durable
	walFsyncSeconds  *obs.Histogram
	checkpoints      *obs.Counter
	checkpointErrors *obs.Counter
	checkpointTime   *obs.Histogram
	degradations     *obs.Counter
}

// newMetrics builds the registry; shards is the configured serving fan-out
// and pre-materializes that many per-shard series.
func newMetrics(shards int) *metrics {
	reg := obs.NewRegistry()
	m := &metrics{
		started: time.Now(),
		reg:     reg,

		requests: reg.CounterVec("tagdm_requests_total",
			"HTTP requests received, by endpoint.", "endpoint"),
		requestLatency: reg.HistogramVec("tagdm_request_seconds",
			"HTTP request latency in seconds, by endpoint.",
			obs.DefaultLatencyBuckets(), "endpoint"),

		actionsIngested: reg.Counter("tagdm_actions_ingested_total",
			"Tagging actions inserted."),
		usersCreated: reg.Counter("tagdm_users_created_total",
			"Users created through ingest."),
		itemsCreated: reg.Counter("tagdm_items_created_total",
			"Items created through ingest."),
		ingestLatency: reg.Histogram("tagdm_ingest_batch_seconds",
			"Ingest batch latency in seconds, including snapshot publication when triggered.",
			obs.DefaultLatencyBuckets()),
		snapshots: reg.Counter("tagdm_snapshots_published_total",
			"Engine snapshots published."),

		cacheHits: reg.Counter("tagdm_cache_hits_total",
			"Analyze results served from cache."),
		cacheMisses: reg.Counter("tagdm_cache_misses_total",
			"Analyze cache misses."),

		solves: reg.CounterVec("tagdm_solves_total",
			"Solver executions, by solver family.", "family"),
		solveErrors: reg.Counter("tagdm_solve_errors_total",
			"Solver executions that errored."),
		solveTimeouts: reg.Counter("tagdm_solve_timeouts_total",
			"Analyze requests that timed out."),
		rejected: reg.Counter("tagdm_rejected_total",
			"Analyze requests rejected with a full queue."),
		slowSolves: reg.Counter("tagdm_slow_solves_total",
			"Analyze solves that exceeded the slow-solve threshold."),
		candidatesExamined: reg.CounterVec("tagdm_candidates_examined_total",
			"Candidate sets evaluated by solvers, by family.", "family"),
		candidatesPruned: reg.CounterVec("tagdm_candidates_pruned_total",
			"Candidate sets cut by branch-and-bound without evaluation, by family.", "family"),
		matrixBuilds: reg.CounterVec("tagdm_matrix_builds_total",
			"Pair matrices built from scratch because no cached or carried matrix existed, by family.", "family"),
		matrixRebuilds: reg.CounterVec("tagdm_matrix_rebuilds_total",
			"Pair matrices rebuilt incrementally from the previous epoch (dirty rows only), by family.", "family"),
		matrixHits: reg.CounterVec("tagdm_matrix_cache_hits_total",
			"Pair-matrix bindings served from the snapshot engine cache, by family.", "family"),
		matrixLazy: reg.CounterVec("tagdm_matrix_lazy_total",
			"Pair-matrix bindings served through lazy or blocked pair sources without a full materialization, by family.", "family"),

		solveLatency: reg.HistogramVec("tagdm_solve_latency_seconds",
			"End-to-end analyze execution latency in seconds, by solver family.",
			obs.DefaultLatencyBuckets(), "family"),
		solveStage: reg.HistogramVec("tagdm_solve_stage_seconds",
			"Per-stage solver wall time in seconds, by family and stage.",
			obs.DefaultLatencyBuckets(), "family", "stage"),

		shardSolves: reg.CounterVec("tagdm_shard_solves_total",
			"Partial solves gathered from each shard of a scattered analyze.", "shard"),
		shardSolveSeconds: reg.HistogramVec("tagdm_shard_solve_seconds",
			"Per-shard partial solve wall time in seconds (scoping included).",
			obs.DefaultLatencyBuckets(), "shard"),

		walAppends: reg.Counter("tagdm_wal_appends_total",
			"Ingest batches durably appended to the write-ahead log."),
		walAppendBytes: reg.Counter("tagdm_wal_append_bytes_total",
			"Payload bytes appended to the write-ahead log."),
		walAppendErrors: reg.Counter("tagdm_wal_append_errors_total",
			"Write-ahead log appends that failed (each flips the server read-only)."),
		walAppendWait: reg.Histogram("tagdm_wal_append_wait_seconds",
			"Group-commit ack latency: WAL enqueue to durable, in seconds.",
			obs.DefaultLatencyBuckets()),
		walFsyncSeconds: reg.Histogram("tagdm_wal_fsync_seconds",
			"Write-ahead log fsync latency in seconds.",
			obs.DefaultLatencyBuckets()),
		checkpoints: reg.Counter("tagdm_checkpoints_total",
			"Snapshot checkpoints written."),
		checkpointErrors: reg.Counter("tagdm_checkpoint_errors_total",
			"Snapshot checkpoints that failed."),
		checkpointTime: reg.Histogram("tagdm_checkpoint_seconds",
			"Checkpoint wall time in seconds (capture, WAL sync, write, prune).",
			obs.DefaultLatencyBuckets()),
		degradations: reg.Counter("tagdm_durability_degradations_total",
			"Transitions into read-only degraded mode."),
	}
	// Materialize the label space up front: a scrape right after boot sees
	// every series at zero rather than a sparse, shape-shifting exposition.
	for _, ep := range endpointLabels {
		m.requests.With(ep)
		m.requestLatency.With(ep)
	}
	for _, fam := range solverFamilies {
		m.solves.With(fam)
		m.candidatesExamined.With(fam)
		m.candidatesPruned.With(fam)
		m.matrixBuilds.With(fam)
		m.matrixRebuilds.With(fam)
		m.matrixHits.With(fam)
		m.matrixLazy.With(fam)
		m.solveLatency.With(fam)
		for _, stage := range familyStages[fam] {
			m.solveStage.With(fam, stage)
		}
	}
	for si := 0; si < shards && si < len(shardLabels); si++ {
		m.shardSolves.With(shardLabels[si])
		m.shardSolveSeconds.With(shardLabels[si])
	}
	return m
}

// registerGauges wires the point-in-time gauges that read server state at
// render time (snapshot epoch, store sizes, queue depth). Called once from
// New, after the initial snapshot is published.
func (m *metrics) registerGauges(s *Server) {
	m.reg.GaugeFunc("tagdm_snapshot_epoch",
		"Epoch of the currently published engine snapshot set.",
		func() float64 { return float64(s.shards.Load().epoch) })
	m.reg.GaugeFunc("tagdm_store_actions",
		"Tagging actions in the published snapshot.",
		func() float64 { return float64(s.shards.Load().primary().Store.Len()) })
	m.reg.GaugeFunc("tagdm_groups",
		"Describable groups in the published snapshot.",
		func() float64 { return float64(len(s.shards.Load().primary().Groups)) })
	m.reg.GaugeFunc("tagdm_vocab_size",
		"Tag vocabulary size of the published snapshot.",
		func() float64 { return float64(s.shards.Load().primary().Store.Vocab.Size()) })
	m.reg.GaugeFunc("tagdm_postings_lists",
		"Posting lists in the published snapshot.",
		func() float64 { lists, _ := s.shards.Load().primary().Store.CompressionStats(); return float64(lists) })
	m.reg.GaugeFunc("tagdm_postings_compressed",
		"Posting lists using the container-compressed layout.",
		func() float64 { _, comp := s.shards.Load().primary().Store.CompressionStats(); return float64(comp) })
	m.reg.GaugeFunc("tagdm_cache_size",
		"Entries in the analyze result cache.",
		func() float64 { size, _ := s.cache.stats(); return float64(size) })
	m.reg.GaugeFunc("tagdm_matrix_bytes",
		"Bytes of fully materialized pair matrices held by the published engine cache (shared across replicas).",
		func() float64 { return float64(s.shards.Load().primary().Engine.MatrixStats().Bytes) })
	m.reg.GaugeFunc("tagdm_matrix_evictions_total",
		"Pair matrices evicted under the memory budget since the first epoch (carried across snapshots).",
		func() float64 { return float64(s.shards.Load().primary().Engine.MatrixStats().Evictions) })
	m.reg.GaugeFunc("tagdm_shards",
		"Serving-tier shard count: snapshot replicas each analyze scatters across.",
		func() float64 { return float64(s.cfg.Shards) })
	m.reg.GaugeFunc("tagdm_queue_depth",
		"Queued (not yet running) solve jobs summed across shard pools.",
		func() float64 { return float64(s.queuedJobs()) })
	m.reg.GaugeFunc("tagdm_pool_workers",
		"Solver worker goroutines across all shard pools.",
		func() float64 { return float64(s.cfg.Workers * s.cfg.Shards) })
	m.reg.GaugeFunc("tagdm_uptime_seconds",
		"Seconds since server construction.",
		func() float64 { return time.Since(m.started).Seconds() })
	m.reg.GaugeFunc("tagdm_durability_enabled",
		"1 when the server runs with a write-ahead log and checkpoints.",
		func() float64 {
			if s.dur != nil {
				return 1
			}
			return 0
		})
	m.reg.GaugeFunc("tagdm_durability_degraded",
		"1 when the server is in read-only degraded mode after a disk failure.",
		func() float64 {
			if _, degraded := s.degradedReason(); degraded {
				return 1
			}
			return 0
		})
	if s.dur == nil {
		return
	}
	m.reg.GaugeFunc("tagdm_wal_last_seq",
		"Sequence number of the last durable write-ahead log record.",
		func() float64 { return float64(s.dur.log.Stats().LastSeq) })
	m.reg.GaugeFunc("tagdm_wal_size_bytes",
		"Bytes across live write-ahead log segments.",
		func() float64 { return float64(s.dur.log.Stats().SizeBytes) })
	m.reg.GaugeFunc("tagdm_wal_fsyncs",
		"Fsyncs issued by the write-ahead log this process.",
		func() float64 { return float64(s.dur.log.Stats().Syncs) })
	m.reg.GaugeFunc("tagdm_checkpoint_last_seq",
		"Write-ahead log sequence covered by the newest checkpoint.",
		func() float64 { return float64(s.ckptLastSeq.Load()) })
	m.reg.GaugeFunc("tagdm_checkpoint_last_epoch",
		"Maintainer epoch captured by the newest checkpoint.",
		func() float64 { return float64(s.ckptLastEpoch.Load()) })
}

// recordSolve folds one merged core.Result into the per-family counters
// and the per-stage histograms. solverWall is the solver critical path (the
// slowest shard's partial solve); total is the whole scatter-gather
// execution (scoping and merging included).
func (m *metrics) recordSolve(res core.Result, solverWall, total time.Duration) {
	fam := familyOf(res.Algorithm)
	m.solves.With(fam).Inc()
	m.candidatesExamined.With(fam).Add(res.CandidatesExamined)
	m.candidatesPruned.With(fam).Add(res.CandidatesPruned)
	m.matrixBuilds.With(fam).Add(int64(res.MatrixBuilds))
	m.matrixRebuilds.With(fam).Add(int64(res.MatrixRebuilds))
	m.matrixHits.With(fam).Add(int64(res.MatrixHits))
	m.matrixLazy.With(fam).Add(int64(res.MatrixLazy))
	m.solveLatency.With(fam).Observe(total.Seconds())
	for _, st := range res.Stages {
		m.solveStage.With(fam, stageLabel(fam, st.Name)).Observe(st.Wall.Seconds())
	}
	m.solveStage.With(fam, stageTotal).Observe(solverWall.Seconds())
}

// hitRate returns cache hits / (hits + misses), or 0 before any lookup.
func (m *metrics) hitRate() float64 {
	h, s := m.cacheHits.Value(), m.cacheMisses.Value()
	if h+s == 0 {
		return 0
	}
	return float64(h) / float64(h+s)
}
