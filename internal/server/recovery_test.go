package server

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"tagdm/internal/core"
	"tagdm/internal/model"
	"tagdm/internal/wal"
)

// durableConfig is the recovery-test baseline: every acknowledged batch is
// fsync'd before the ack (no group-commit window, no background timing),
// and checkpoints happen only when a test asks for one.
func durableConfig(ds *model.Dataset, dir string) Config {
	return Config{
		Dataset:         ds,
		DataDir:         dir,
		MinGroupTuples:  2,
		Seed:            1,
		FsyncMode:       wal.SyncAlways,
		FlushInterval:   -1, // flush each enqueue immediately
		CheckpointEvery: -1, // manual checkpoints only
	}
}

func mustNew(t testing.TB, cfg Config) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// stateFP fingerprints everything recovery must reproduce exactly: the
// epoch, the store contents in insert order (posting lists are derived
// from these deterministically), the entity tables, and the active groups
// in ID order (solver tie-breaking depends on that order).
type stateFP struct {
	epoch        int64
	users, items int
	tuples       string
	activeKeys   string
}

func serverFP(s *Server) stateFP {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.maint.Store()
	var b strings.Builder
	for i := 0; i < st.Len(); i++ {
		fmt.Fprintf(&b, "%d/%d/%v/%v;", st.TupleUser(i), st.TupleItem(i), st.TupleRating(i), st.TupleTags(i))
	}
	return stateFP{
		epoch:      s.maint.Version(),
		users:      len(s.ds.Users),
		items:      len(s.ds.Items),
		tuples:     b.String(),
		activeKeys: strings.Join(s.maint.ActiveKeys(), "|"),
	}
}

func ingestOK(t testing.TB, ts *httptest.Server, actions []IngestAction) IngestResponse {
	t.Helper()
	resp, body := postJSON(t, ts, "/v1/actions", IngestRequest{Actions: actions})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d: %s", resp.StatusCode, body)
	}
	var out IngestResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("decoding %s: %v", body, err)
	}
	return out
}

// copyDir copies the regular files of a data dir (no subdirectories are
// ever created by the durability layer).
func copyDir(t testing.TB, src, dst string) {
	t.Helper()
	if err := os.MkdirAll(dst, 0o755); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// frameEnds returns the byte offset just past each complete WAL frame:
// the offsets at which a crash leaves exactly 1, 2, ... records durable.
// The layout is pinned by the WAL format: [u32 len][u32 crc][data].
func frameEnds(data []byte) []int {
	var ends []int
	pos := 0
	for pos+8 <= len(data) {
		n := int(binary.LittleEndian.Uint32(data[pos:]))
		if pos+8+n > len(data) {
			break
		}
		pos += 8 + n
		ends = append(ends, pos)
	}
	return ends
}

func walSegments(t testing.TB, dir string) []string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil {
		t.Fatal(err)
	}
	return matches
}

// TestDurableRecoveryKillAtEveryOffset is the acceptance property test:
// truncate the WAL tail at EVERY byte offset — simulating a kill -9 whose
// last write stopped there — and require that a fresh boot (a) never
// fails, and (b) reconstructs a state byte-identical to the live server
// right after the last batch that survived in full: same epoch, same
// tuples, same entity tables, same active groups, and (checked once per
// distinct surviving prefix) the same solver answers.
func TestDurableRecoveryKillAtEveryOffset(t *testing.T) {
	base := t.TempDir()
	src := filepath.Join(base, "src")
	s := mustNew(t, durableConfig(deterministicDataset(t), src))
	ts := httptest.NewServer(s)

	u0, u1, u2 := int32(0), int32(1), int32(2)
	i0, i1, i2 := int32(0), int32(1), int32(2)
	batches := [][]IngestAction{
		{{User: &u0, Item: &i0, Tags: []string{"gun"}}},
		{{User: &u1, Item: &i1, Tags: []string{"romance"}},
			{User: &u0, Item: &i1, Tags: []string{"tears"}}},
		{{UserAttrs: map[string]string{"gender": "female"},
			ItemAttrs: map[string]string{"genre": "horror"},
			Tags:      []string{"blood"}}},
		{{User: &u1, Item: &i0, Tags: []string{"chase", "gun"}}},
		{{User: &u2, Item: &i2, Tags: []string{"blood", "scream"}}},
		{{User: &u0, Item: &i0, Rating: 5, Tags: []string{"explosion"}}},
	}
	const ckptAfter = 3 // batches covered by the mid-run checkpoint

	// markers[i] is the state after batch i; markers[0] is the seed.
	// Answers cover all three solver families: PROBLEM 3 dispatches to
	// SM-LSH, PROBLEM 4 (diversity objective) to DV-FDP, and the Exact
	// solver runs directly against the published snapshot engine.
	markers := []stateFP{serverFP(s)}
	answers := []solveAnswers{solveAll(t, ts, s)}
	for i, b := range batches {
		ingestOK(t, ts, b)
		if i+1 == ckptAfter {
			if err := s.Checkpoint(context.Background()); err != nil {
				t.Fatalf("mid-run checkpoint: %v", err)
			}
		}
		markers = append(markers, serverFP(s))
		answers = append(answers, solveAll(t, ts, s))
	}
	ts.Close()
	s.Close()

	// The mid-run checkpoint rotated and pruned: one tail segment holds
	// the batches after it.
	segs := walSegments(t, src)
	if len(segs) != 1 {
		t.Fatalf("want one tail segment after checkpoint, got %v", segs)
	}
	tail, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	ends := frameEnds(tail)
	if want := len(batches) - ckptAfter; len(ends) != want {
		t.Fatalf("tail has %d frames, want %d", len(ends), want)
	}

	solved := map[int]bool{}
	for cut := 0; cut <= len(tail); cut++ {
		k := 0
		for _, e := range ends {
			if e <= cut {
				k++
			}
		}
		dir := filepath.Join(base, fmt.Sprintf("cut-%04d", cut))
		copyDir(t, src, dir)
		if err := os.WriteFile(filepath.Join(dir, filepath.Base(segs[0])), tail[:cut], 0o644); err != nil {
			t.Fatal(err)
		}

		cfg := durableConfig(nil, dir) // boot from disk alone
		b, err := New(cfg)
		if err != nil {
			t.Fatalf("cut %d: boot failed: %v", cut, err)
		}
		rec := b.Recovery()
		if !rec.Recovered || rec.CheckpointSeq != ckptAfter {
			t.Fatalf("cut %d: recovery %+v, want checkpoint seq %d", cut, rec, ckptAfter)
		}
		if rec.ReplayedRecords != k {
			t.Fatalf("cut %d: replayed %d records, want %d", cut, rec.ReplayedRecords, k)
		}
		if wantTorn := int64(cut) - int64(endsBefore(ends, cut)); rec.TornTailBytes != wantTorn {
			t.Fatalf("cut %d: torn %d bytes, want %d", cut, rec.TornTailBytes, wantTorn)
		}
		if got, want := serverFP(b), markers[ckptAfter+k]; got != want {
			t.Fatalf("cut %d (%d replayed): state diverged:\n got %+v\nwant %+v", cut, k, got, want)
		}
		if !solved[k] {
			solved[k] = true
			bts := httptest.NewServer(b)
			got := solveAll(t, bts, b)
			want := answers[ckptAfter+k]
			if !sameAnswer(got.smlsh, want.smlsh) {
				t.Fatalf("cut %d: SM-LSH answer diverged:\n got %+v\nwant %+v", cut, got.smlsh, want.smlsh)
			}
			if !sameAnswer(got.dvfdp, want.dvfdp) {
				t.Fatalf("cut %d: DV-FDP answer diverged:\n got %+v\nwant %+v", cut, got.dvfdp, want.dvfdp)
			}
			if got.exact != want.exact {
				t.Fatalf("cut %d: Exact answer diverged:\n got %s\nwant %s", cut, got.exact, want.exact)
			}
			bts.Close()
		}
		b.Close()
	}
	if len(solved) != len(batches)-ckptAfter+1 {
		t.Fatalf("solver compared for %d prefixes, want %d", len(solved), len(batches)-ckptAfter+1)
	}
}

func endsBefore(ends []int, cut int) int {
	last := 0
	for _, e := range ends {
		if e <= cut {
			last = e
		}
	}
	return last
}

func analyzeOK(t testing.TB, ts *httptest.Server, query string) AnalyzeResponse {
	t.Helper()
	status, resp := analyze(t, ts, query)
	if status != http.StatusOK {
		t.Fatalf("analyze status %d", status)
	}
	resp.SolveMillis = 0 // timing is the one legitimately varying field
	resp.Cached = false
	return resp
}

// dvfdpTestQuery has a diversity objective on the tag dimension, so it
// dispatches to the DV-FDP family (testQuery's PROBLEM 3 goes to SM-LSH).
const dvfdpTestQuery = "ANALYZE PROBLEM 4 WITH k=2, support=2, q=0.1, r=0.1"

// solveAnswers captures one answer per solver family for cross-boot
// comparison.
type solveAnswers struct {
	smlsh, dvfdp AnalyzeResponse
	exact        string
}

func solveAll(t testing.TB, ts *httptest.Server, s *Server) solveAnswers {
	t.Helper()
	return solveAnswers{
		smlsh: analyzeOK(t, ts, testQuery),
		dvfdp: analyzeOK(t, ts, dvfdpTestQuery),
		exact: exactFP(t, s),
	}
}

// exactFP runs the Exact solver against the published snapshot engine and
// fingerprints the result (the HTTP dispatch never routes to Exact, so the
// recovery guarantee for it is checked at the engine level).
func exactFP(t testing.TB, s *Server) string {
	t.Helper()
	spec, err := core.PaperProblem(3, 2, 2, 0.1, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	snap := s.shards.Load().primary()
	res, err := snap.Engine.Exact(context.Background(), spec, core.ExactOptions{})
	if err != nil {
		t.Fatalf("exact solve: %v", err)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%v/%v/%d;", res.Found, res.Objective, res.Support)
	for _, g := range res.Groups {
		fmt.Fprintf(&b, "%d:%d:%s;", g.ID, g.Size(), g.Describe(snap.Store))
	}
	return b.String()
}

func sameAnswer(a, b AnalyzeResponse) bool {
	if a.Found != b.Found || a.Objective != b.Objective || a.Support != b.Support ||
		a.Epoch != b.Epoch || a.Algorithm != b.Algorithm || len(a.Groups) != len(b.Groups) {
		return false
	}
	for i := range a.Groups {
		if a.Groups[i] != b.Groups[i] {
			return false
		}
	}
	return true
}

// TestDurableShutdownBootsWithoutReplay pins the graceful-exit contract:
// Shutdown writes a final checkpoint, so the next boot replays nothing and
// still reproduces the exact state.
func TestDurableShutdownBootsWithoutReplay(t *testing.T) {
	dir := t.TempDir()
	s := mustNew(t, durableConfig(deterministicDataset(t), dir))
	ts := httptest.NewServer(s)
	u0, i0 := int32(0), int32(0)
	ingestOK(t, ts, []IngestAction{{User: &u0, Item: &i0, Tags: []string{"gun"}}})
	ts.Close()
	want := serverFP(s)
	if err := s.Shutdown(t.Context()); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	b := mustNew(t, durableConfig(nil, dir))
	defer b.Close()
	rec := b.Recovery()
	if !rec.Recovered || rec.ReplayedRecords != 0 || rec.TornTailBytes != 0 {
		t.Fatalf("boot after graceful shutdown replayed: %+v", rec)
	}
	if got := serverFP(b); got != want {
		t.Fatalf("state diverged after graceful shutdown:\n got %+v\nwant %+v", got, want)
	}
}

// TestFsyncFailureDegradesToReadOnly drives an injected fsync failure
// through the full serving stack: the failing batch is refused with 503,
// the server latches sticky read-only mode visible in /healthz, /v1/stats
// and /metrics, and analyses keep serving the last durable snapshot.
func TestFsyncFailureDegradesToReadOnly(t *testing.T) {
	ffs := wal.NewFaultFS(wal.OSFS{})
	cfg := durableConfig(deterministicDataset(t), t.TempDir())
	cfg.WALFS = ffs
	s := mustNew(t, cfg)
	defer s.Close()
	ts := httptest.NewServer(s)
	defer ts.Close()

	u0, i0 := int32(0), int32(0)
	act := []IngestAction{{User: &u0, Item: &i0, Tags: []string{"gun"}}}
	ingestOK(t, ts, act) // healthy baseline
	preEpoch := analyzeOK(t, ts, testQuery).Epoch

	ffs.ArmSyncFault(0)
	resp, body := postJSON(t, ts, "/v1/actions", IngestRequest{Actions: act})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("ingest during fsync failure: status %d: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}

	// Degradation is sticky: the disk works again, writes stay refused.
	ffs.Disarm()
	if resp, _ := postJSON(t, ts, "/v1/actions", IngestRequest{Actions: act}); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("ingest after disarm: status %d, want sticky 503", resp.StatusCode)
	}
	if resp, _ := postJSON(t, ts, "/v1/refresh", struct{}{}); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("refresh while degraded: status %d, want 503", resp.StatusCode)
	}
	if err := s.Checkpoint(context.Background()); err == nil {
		t.Fatal("checkpoint while degraded must refuse")
	}

	// Reads keep working against the last durable snapshot.
	if got := analyzeOK(t, ts, testQuery); got.Epoch != preEpoch {
		t.Fatalf("analyze epoch moved while degraded: %d vs %d", got.Epoch, preEpoch)
	}

	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health map[string]string
	if err := json.NewDecoder(hr.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if health["status"] != "degraded" || health["mode"] != "read-only" || health["reason"] == "" {
		t.Fatalf("healthz while degraded: %v", health)
	}

	stats := getStats(t, ts)
	if !stats.Durability.Degraded || stats.Durability.Reason == "" {
		t.Fatalf("stats do not report degradation: %+v", stats.Durability)
	}

	mr, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(mr.Body)
	if err != nil {
		t.Fatal(err)
	}
	mbody := string(raw)
	mr.Body.Close()
	for _, want := range []string{"tagdm_durability_degraded 1", "tagdm_durability_degradations_total 1"} {
		if !strings.Contains(mbody, want) {
			t.Fatalf("metrics missing %q:\n%s", want, mbody)
		}
	}
}

// TestShortWriteLeavesRecoverableTail injects a short write mid-frame: the
// client gets 503 for the batch that never became durable, and a reboot on
// the same directory truncates the torn bytes and recovers exactly the
// acknowledged batches.
func TestShortWriteLeavesRecoverableTail(t *testing.T) {
	dir := t.TempDir()
	ffs := wal.NewFaultFS(wal.OSFS{})
	cfg := durableConfig(deterministicDataset(t), dir)
	cfg.WALFS = ffs
	s := mustNew(t, cfg)
	ts := httptest.NewServer(s)

	u0, u1, i0 := int32(0), int32(1), int32(0)
	ingestOK(t, ts, []IngestAction{{User: &u0, Item: &i0, Tags: []string{"gun"}}})
	ingestOK(t, ts, []IngestAction{{User: &u1, Item: &i0, Tags: []string{"chase"}}})
	want := serverFP(s)

	ffs.ArmWriteFault(4, true) // 4 bytes of the next frame reach disk
	resp, _ := postJSON(t, ts, "/v1/actions", IngestRequest{Actions: []IngestAction{
		{User: &u0, Item: &i0, Tags: []string{"lost"}}}})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("short-written batch acked with status %d", resp.StatusCode)
	}
	ts.Close()
	s.Close()

	b := mustNew(t, durableConfig(nil, dir))
	defer b.Close()
	rec := b.Recovery()
	if rec.TornTailBytes != 4 {
		t.Fatalf("torn tail %d bytes, want 4", rec.TornTailBytes)
	}
	if rec.ReplayedRecords != 2 {
		t.Fatalf("replayed %d records, want the 2 acknowledged ones", rec.ReplayedRecords)
	}
	// The torn batch was applied to the crashed server's memory before the
	// WAL refused it, but it was never acknowledged; recovery must land on
	// the pre-batch state, not the crashed server's final in-memory state.
	got := serverFP(b)
	if got != want {
		t.Fatalf("state diverged after torn-tail recovery:\n got %+v\nwant %+v", got, want)
	}
}

// TestConcurrentIngestDuringCheckpoint runs ingest, checkpoints and
// analyses concurrently (meaningful under -race), then verifies a reboot
// reproduces every acknowledged insert.
func TestConcurrentIngestDuringCheckpoint(t *testing.T) {
	dir := t.TempDir()
	s := mustNew(t, durableConfig(deterministicDataset(t), dir))
	ts := httptest.NewServer(s)

	const writers, perWriter = 3, 20
	var inserted atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			u, i := int32(w%2), int32(w%2)
			for n := 0; n < perWriter; n++ {
				out := ingestOK(t, ts, []IngestAction{{User: &u, Item: &i, Tags: []string{"gun"}}})
				inserted.Add(int64(out.Inserted))
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for n := 0; n < 8; n++ {
			if err := s.Checkpoint(context.Background()); err != nil {
				t.Errorf("concurrent checkpoint: %v", err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for n := 0; n < 10; n++ {
			analyzeOK(t, ts, testQuery)
		}
	}()
	wg.Wait()
	ts.Close()
	want := serverFP(s)
	s.Close()

	b := mustNew(t, durableConfig(nil, dir))
	defer b.Close()
	got := serverFP(b)
	if got != want {
		t.Fatalf("recovered state diverged after concurrent checkpointing:\n got %+v\nwant %+v", got, want)
	}
	wantTuples := int64(12) + inserted.Load() // 12 seed actions
	b.mu.Lock()
	n := b.maint.Store().Len()
	b.mu.Unlock()
	if int64(n) != wantTuples {
		t.Fatalf("recovered %d tuples, want %d", n, wantTuples)
	}
}

// TestBodyCaps pins the 413 behavior of both POST endpoints.
func TestBodyCaps(t *testing.T) {
	s := newTestServer(t, func(c *Config) {
		c.MaxIngestBytes = 128
		c.MaxAnalyzeBytes = 64
	})
	ts := httptest.NewServer(s)
	defer ts.Close()

	u0, i0 := int32(0), int32(0)
	big := make([]IngestAction, 0, 16)
	for n := 0; n < 16; n++ {
		big = append(big, IngestAction{User: &u0, Item: &i0, Tags: []string{"gun"}})
	}
	resp, body := postJSON(t, ts, "/v1/actions", IngestRequest{Actions: big})
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized ingest: status %d: %s", resp.StatusCode, body)
	}
	resp, body = postJSON(t, ts, "/v1/actions", IngestRequest{Actions: []IngestAction{
		{User: &u0, Item: &i0, Tags: []string{"gun"}}}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("small ingest under cap: status %d: %s", resp.StatusCode, body)
	}

	long := testQuery + " WHERE gender=" + strings.Repeat("x", 128)
	resp, body = postJSON(t, ts, "/v1/analyze", AnalyzeRequest{Query: long})
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized analyze: status %d: %s", resp.StatusCode, body)
	}
	if status, _ := analyze(t, ts, testQuery); status != http.StatusOK {
		t.Fatalf("small analyze under cap: status %d", status)
	}
}

// BenchmarkIngestDurable measures the serving-path cost of one durable
// ingest batch against the in-memory baseline: the price of crash safety
// is the WAL append + fsync on the ack path.
func BenchmarkIngestDurable(b *testing.B) {
	bench := func(b *testing.B, durable bool, mode wal.SyncMode) {
		cfg := Config{Dataset: testDataset(b), MinGroupTuples: 2, Seed: 1,
			RefreshEvery: 1 << 30} // isolate the ingest path from snapshot publication
		if durable {
			cfg.DataDir = b.TempDir()
			cfg.FsyncMode = mode
			cfg.CheckpointEvery = -1
			// The benchmark client is serial, so the group-commit window
			// would dominate every ack; flush immediately to measure the
			// append+fsync cost itself.
			cfg.FlushInterval = -1
		}
		srv, err := New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		defer srv.Close()
		ts := httptest.NewServer(srv)
		defer ts.Close()
		u0, i0 := int32(0), int32(0)
		batch := IngestRequest{Actions: []IngestAction{{User: &u0, Item: &i0, Tags: []string{"gun"}}}}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			resp, body := postJSON(b, ts, "/v1/actions", batch)
			if resp.StatusCode != http.StatusOK {
				b.Fatalf("status %d: %s", resp.StatusCode, body)
			}
		}
	}
	b.Run("memory", func(b *testing.B) { bench(b, false, 0) })
	b.Run("durable-fsync-always", func(b *testing.B) { bench(b, true, wal.SyncAlways) })
	b.Run("durable-fsync-interval", func(b *testing.B) { bench(b, true, wal.SyncInterval) })
	b.Run("durable-fsync-none", func(b *testing.B) { bench(b, true, wal.SyncNone) })
}
