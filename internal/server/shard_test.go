package server

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// shardedConfig disables the result cache so every analyze exercises the
// scatter-gather path, and fans across the given shard count.
func shardedConfig(shards int) func(*Config) {
	return func(cfg *Config) {
		cfg.Shards = shards
		cfg.CacheSize = -1
	}
}

var shardEquivalenceQueries = []string{
	testQuery,      // SM-LSH family
	dvfdpTestQuery, // DV-FDP family
	"ANALYZE PROBLEM 3 WHERE genre=action WITH k=2, support=2, q=0.1, r=0.1", // scoped engine per shard
}

// TestShardedAnalyzeByteIdenticalAcrossShardCounts drives a single-shard
// and a multi-shard server through the identical ingest sequence and
// requires identical analyze responses (epoch, algorithm, objective bits,
// support, rendered groups) at every epoch, plus identical Exact results at
// the engine level — sharding must be invisible in every answer.
func TestShardedAnalyzeByteIdenticalAcrossShardCounts(t *testing.T) {
	one := newTestServer(t, shardedConfig(1))
	many := newTestServer(t, shardedConfig(3))
	tsOne := httptest.NewServer(one)
	defer tsOne.Close()
	tsMany := httptest.NewServer(many)
	defer tsMany.Close()

	if got := getStats(t, tsMany).Shards; got != 3 {
		t.Fatalf("stats shards = %d, want 3", got)
	}

	check := func(round int) {
		t.Helper()
		for _, q := range shardEquivalenceQueries {
			want := analyzeOK(t, tsOne, q)
			got := analyzeOK(t, tsMany, q)
			if !sameAnswer(want, got) {
				t.Fatalf("round %d: %q diverged across shard counts:\n1 shard: %+v\n3 shards: %+v", round, q, want, got)
			}
		}
		if want, got := exactFP(t, one), exactFP(t, many); want != got {
			t.Fatalf("round %d: Exact diverged across shard counts:\n1 shard: %s\n3 shards: %s", round, want, got)
		}
	}

	check(0)
	for round := 1; round <= 4; round++ {
		user, item := int32(round%2), int32((round+1)%2)
		batch := []IngestAction{{User: &user, Item: &item, Rating: 3,
			Tags: []string{fmt.Sprintf("round-%d", round), "gun"}}}
		a := ingestOK(t, tsOne, batch)
		b := ingestOK(t, tsMany, batch)
		if a.Epoch != b.Epoch {
			t.Fatalf("round %d: epochs diverged: %d vs %d", round, a.Epoch, b.Epoch)
		}
		check(round)
	}
}

// TestShardedAnalyzeUnderConcurrentIngest checks the equivalence while the
// sharded server's snapshot set is being republished under it: a
// single-shard reference server first records the expected answer for
// every (epoch, query) pair along the ingest sequence, then the sharded
// server replays the same sequence while concurrent readers hammer
// analyze. Every successful response must match the reference answer for
// the epoch it reports — whichever snapshot set the scatter caught.
func TestShardedAnalyzeUnderConcurrentIngest(t *testing.T) {
	const batches = 12

	batchFor := func(i int) []IngestAction {
		user, item := int32(i%2), int32((i+1)%2)
		return []IngestAction{{User: &user, Item: &item, Rating: 3,
			Tags: []string{fmt.Sprintf("cc-%d", i)}}}
	}

	// Phase 1: the single-shard reference, stepped serially.
	ref := newTestServer(t, shardedConfig(1))
	tsRef := httptest.NewServer(ref)
	defer tsRef.Close()
	expected := make(map[int64]map[string]AnalyzeResponse)
	snapshot := func() {
		byQuery := make(map[string]AnalyzeResponse, len(shardEquivalenceQueries))
		var epoch int64
		for _, q := range shardEquivalenceQueries {
			resp := analyzeOK(t, tsRef, q)
			byQuery[q] = resp
			epoch = resp.Epoch
		}
		expected[epoch] = byQuery
	}
	snapshot()
	for i := 0; i < batches; i++ {
		ingestOK(t, tsRef, batchFor(i))
		snapshot()
	}

	// Phase 2: the sharded server replays the sequence under concurrent
	// analyze load.
	sharded := newTestServer(t, shardedConfig(3))
	tsSharded := httptest.NewServer(sharded)
	defer tsSharded.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	stop := make(chan struct{})
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				q := shardEquivalenceQueries[(r+i)%len(shardEquivalenceQueries)]
				status, resp := analyze(t, tsSharded, q)
				if status == http.StatusTooManyRequests {
					continue // load shed is a legitimate outcome under pressure
				}
				if status != http.StatusOK {
					errs <- fmt.Errorf("reader %d: status %d", r, status)
					return
				}
				resp.SolveMillis = 0
				resp.Cached = false
				want, ok := expected[resp.Epoch][q]
				if !ok {
					errs <- fmt.Errorf("reader %d: answer at unknown epoch %d", r, resp.Epoch)
					return
				}
				if !sameAnswer(want, resp) {
					errs <- fmt.Errorf("reader %d: %q at epoch %d diverged from single-shard reference:\nwant %+v\ngot  %+v",
						r, q, resp.Epoch, want, resp)
					return
				}
			}
		}(r)
	}
	for i := 0; i < batches; i++ {
		ingestOK(t, tsSharded, batchFor(i))
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestShardMetricsCountEveryShard pins the per-shard observability: after
// one uncached analyze on a 2-shard server, every shard's solve counter
// must have moved, and /metrics must expose them under the declared
// shard label set.
func TestShardMetricsCountEveryShard(t *testing.T) {
	s := newTestServer(t, shardedConfig(2))
	ts := httptest.NewServer(s)
	defer ts.Close()

	analyzeOK(t, ts, testQuery)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	for shard := 0; shard < 2; shard++ {
		want := fmt.Sprintf(`tagdm_shard_solves_total{shard="%d"} 1`, shard)
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, text)
		}
	}
	if !strings.Contains(text, "tagdm_shards 2") {
		t.Fatalf("/metrics missing tagdm_shards gauge:\n%s", text)
	}
	if !strings.Contains(text, "tagdm_pool_workers 8") {
		t.Fatalf("/metrics missing summed pool workers gauge:\n%s", text)
	}
}

// TestQueueFullShedsWithRetryAfter is the 429 load-shed regression test:
// with every worker busy and the queue full, an analyze must be rejected
// with 429 AND a Retry-After header, mirroring the 503 degraded path's
// contract so clients can back off uniformly.
func TestQueueFullShedsWithRetryAfter(t *testing.T) {
	s := newTestServer(t, func(cfg *Config) {
		cfg.Workers = 1
		cfg.QueueDepth = 1
		cfg.CacheSize = -1
	})
	ts := httptest.NewServer(s)
	defer ts.Close()

	// Occupy the single worker with a job pinned on a channel, then fill
	// the one queue slot, so the next submit must shed. The defer is
	// registered before priming so a failed Fatalf can't wedge pool
	// shutdown on the pinned worker.
	block := make(chan struct{})
	defer close(block)
	started := make(chan struct{})
	done := make(chan poolResult[*shardOutcome], 2)
	err := s.pools[0].submit(context.Background(), done, func(context.Context) (*shardOutcome, error) {
		close(started)
		<-block
		return nil, nil
	})
	if err != nil {
		t.Fatalf("occupying worker: %v", err)
	}
	<-started // the worker holds this job; the queue slot is free again
	err = s.pools[0].submit(context.Background(), done, func(context.Context) (*shardOutcome, error) {
		return nil, nil
	})
	if err != nil {
		t.Fatalf("filling queue: %v", err)
	}

	resp, body := postJSON(t, ts, "/v1/analyze", AnalyzeRequest{Query: testQuery})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429 (%s)", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 load-shed response without Retry-After")
	}
	if got := s.metrics.rejected.Value(); got != 1 {
		t.Fatalf("rejected counter = %d, want 1", got)
	}
}

// TestDurableBootAcrossShardCounts pins WAL/checkpoint compatibility: a
// data dir written by a single-shard server must boot under any shard
// count (and back) with byte-identical answers — sharding is serving-tier
// state only and never touches the durability format.
func TestDurableBootAcrossShardCounts(t *testing.T) {
	dir := t.TempDir()

	cfg := durableConfig(testDataset(t), dir)
	cfg.Shards = 1
	s1 := mustNew(t, cfg)
	ts1 := httptest.NewServer(s1)
	user, item := int32(0), int32(1)
	ingestOK(t, ts1, []IngestAction{{User: &user, Item: &item, Rating: 3, Tags: []string{"boot"}}})
	want := solveAll(t, ts1, s1)
	ts1.Close()
	if err := s1.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Reboot the same data dir fanned across 3 shards.
	cfg3 := durableConfig(nil, dir)
	cfg3.Shards = 3
	cfg3.CacheSize = -1
	s3 := mustNew(t, cfg3)
	ts3 := httptest.NewServer(s3)
	got := solveAll(t, ts3, s3)
	if !sameAnswer(want.smlsh, got.smlsh) {
		t.Fatalf("SM-LSH diverged after sharded reboot:\nwant %+v\ngot  %+v", want.smlsh, got.smlsh)
	}
	if !sameAnswer(want.dvfdp, got.dvfdp) {
		t.Fatalf("DV-FDP diverged after sharded reboot:\nwant %+v\ngot  %+v", want.dvfdp, got.dvfdp)
	}
	if want.exact != got.exact {
		t.Fatalf("Exact diverged after sharded reboot:\nwant %s\ngot  %s", want.exact, got.exact)
	}
	// Ingest under shards, shut down, and come back to one shard: the
	// sharded server's WAL output must be just as portable.
	ingestOK(t, ts3, []IngestAction{{User: &item, Item: &user, Rating: 4, Tags: []string{"resharded"}}})
	want3 := solveAll(t, ts3, s3)
	ts3.Close()
	if err := s3.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	cfgBack := durableConfig(nil, dir)
	cfgBack.Shards = 1
	cfgBack.CacheSize = -1
	sBack := mustNew(t, cfgBack)
	tsBack := httptest.NewServer(sBack)
	defer tsBack.Close()
	defer sBack.Close()
	gotBack := solveAll(t, tsBack, sBack)
	if !sameAnswer(want3.smlsh, gotBack.smlsh) || !sameAnswer(want3.dvfdp, gotBack.dvfdp) || want3.exact != gotBack.exact {
		t.Fatalf("answers diverged rebooting 3 shards -> 1 shard:\nwant %+v\ngot  %+v", want3, gotBack)
	}
}
