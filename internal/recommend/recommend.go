// Package recommend is a small downstream application of the TagDM
// pipeline: suggesting tags for a (user, item) pair from the tagging
// behavior of the user's peer group. The paper motivates its analysis
// framework with exactly such "subsequent actions" (Section 1) and cites
// tag recommendation as the canonical tag-mining application.
//
// The recommender locates the fully-described group matching the user's
// and item's combined attribute profile and ranks that group's tags by
// frequency. When no exact group exists (cold profiles), it backs off to
// item-profile-only groups, then to the global tag distribution, so a
// suggestion always exists.
package recommend

import (
	"fmt"
	"sort"
	"strings"

	"tagdm/internal/groups"
	"tagdm/internal/model"
	"tagdm/internal/store"
)

// Suggestion is one recommended tag with its evidence.
type Suggestion struct {
	Tag string
	// Count is the tag's frequency within the evidence group.
	Count int
	// Source describes which backoff level produced the suggestion:
	// "group", "item-profile", or "global".
	Source string
}

// Recommender indexes a group universe for profile lookups.
type Recommender struct {
	store *store.Store
	// byFull maps a full (user attrs, item attrs) profile key to a group.
	byFull map[string]*groups.Group
	// byItem maps an item-attribute profile key to the groups over it.
	byItem map[string][]*groups.Group
	// global is the corpus-wide tag frequency ranking.
	global []model.TagCount
}

// New builds a recommender over enumerated groups.
func New(s *store.Store, gs []*groups.Group, global []model.TagCount) *Recommender {
	r := &Recommender{
		store:  s,
		byFull: make(map[string]*groups.Group, len(gs)),
		byItem: make(map[string][]*groups.Group),
		global: global,
	}
	for _, g := range gs {
		r.byFull[fullKeyOfGroup(s, g)] = g
		ik := itemKeyOfGroup(s, g)
		r.byItem[ik] = append(r.byItem[ik], g)
	}
	return r
}

func fullKeyOfGroup(s *store.Store, g *groups.Group) string {
	var b strings.Builder
	for i := 0; i < s.UserSchema.Len(); i++ {
		fmt.Fprintf(&b, "u%d=%d|", i, g.UserValue(i))
	}
	for i := 0; i < s.ItemSchema.Len(); i++ {
		fmt.Fprintf(&b, "i%d=%d|", i, g.ItemValue(i))
	}
	return b.String()
}

func itemKeyOfGroup(s *store.Store, g *groups.Group) string {
	var b strings.Builder
	for i := 0; i < s.ItemSchema.Len(); i++ {
		fmt.Fprintf(&b, "i%d=%d|", i, g.ItemValue(i))
	}
	return b.String()
}

func profileKeys(s *store.Store, userAttrs, itemAttrs []model.ValueCode) (full, item string) {
	var fb, ib strings.Builder
	for i, v := range userAttrs {
		fmt.Fprintf(&fb, "u%d=%d|", i, v)
	}
	for i, v := range itemAttrs {
		fmt.Fprintf(&fb, "i%d=%d|", i, v)
		fmt.Fprintf(&ib, "i%d=%d|", i, v)
	}
	return fb.String(), ib.String()
}

// Suggest returns up to n tags for the given user and item attribute
// tuples, most relevant first.
func (r *Recommender) Suggest(userAttrs, itemAttrs []model.ValueCode, n int) []Suggestion {
	if n <= 0 {
		return nil
	}
	fullKey, itemKey := profileKeys(r.store, userAttrs, itemAttrs)
	if g, ok := r.byFull[fullKey]; ok {
		return r.fromGroups([]*groups.Group{g}, n, "group")
	}
	if gs, ok := r.byItem[itemKey]; ok && len(gs) > 0 {
		return r.fromGroups(gs, n, "item-profile")
	}
	out := make([]Suggestion, 0, n)
	for _, tc := range r.global {
		if len(out) == n {
			break
		}
		out = append(out, Suggestion{Tag: tc.Tag, Count: tc.Count, Source: "global"})
	}
	return out
}

// fromGroups merges the tag bags of the evidence groups and ranks by
// frequency (ties by name for determinism).
func (r *Recommender) fromGroups(gs []*groups.Group, n int, source string) []Suggestion {
	counts := make(map[model.TagID]int)
	for _, g := range gs {
		for tag, c := range groups.TagBag(r.store, g) {
			counts[tag] += c
		}
	}
	all := make([]Suggestion, 0, len(counts))
	for tag, c := range counts {
		all = append(all, Suggestion{Tag: r.store.Vocab.Tag(tag), Count: c, Source: source})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Count != all[j].Count {
			return all[i].Count > all[j].Count
		}
		return all[i].Tag < all[j].Tag
	})
	if len(all) > n {
		all = all[:n]
	}
	return all
}
