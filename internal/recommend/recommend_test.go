package recommend

import (
	"testing"

	"tagdm/internal/groups"
	"tagdm/internal/model"
	"tagdm/internal/store"
)

// world: male teens tag action movies with gun/fight; female teens with
// violence; comedies get funny. Profiles cover the backoff ladder.
func world(t *testing.T) (*model.Dataset, *store.Store, []*groups.Group) {
	t.Helper()
	d := model.NewDataset(model.NewSchema("gender", "age"), model.NewSchema("genre"))
	mt, err := d.AddUser(map[string]string{"gender": "male", "age": "teen"})
	if err != nil {
		t.Fatal(err)
	}
	ft, err := d.AddUser(map[string]string{"gender": "female", "age": "teen"})
	if err != nil {
		t.Fatal(err)
	}
	action, err := d.AddItem(map[string]string{"genre": "action"})
	if err != nil {
		t.Fatal(err)
	}
	comedy, err := d.AddItem(map[string]string{"genre": "comedy"})
	if err != nil {
		t.Fatal(err)
	}
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		must(d.AddAction(mt, action, 0, "gun", "fight"))
		must(d.AddAction(ft, action, 0, "violence"))
		must(d.AddAction(mt, comedy, 0, "funny"))
	}
	must(d.AddAction(mt, action, 0, "gun")) // gun outranks fight
	s, err := store.New(d)
	if err != nil {
		t.Fatal(err)
	}
	gs := (&groups.Enumerator{Store: s, MinTuples: 3}).FullyDescribed()
	return d, s, gs
}

func attrsOf(d *model.Dataset, userID, itemID int32) ([]model.ValueCode, []model.ValueCode) {
	return d.Users[userID].Attrs, d.Items[itemID].Attrs
}

func TestSuggestExactGroup(t *testing.T) {
	d, s, gs := world(t)
	r := New(s, gs, d.TagFrequencies())
	u, it := attrsOf(d, 0, 0) // male teen, action
	sug := r.Suggest(u, it, 2)
	if len(sug) != 2 {
		t.Fatalf("got %d suggestions", len(sug))
	}
	if sug[0].Tag != "gun" || sug[0].Source != "group" {
		t.Fatalf("top suggestion = %+v", sug[0])
	}
	if sug[1].Tag != "fight" {
		t.Fatalf("second suggestion = %+v", sug[1])
	}
	if sug[0].Count <= sug[1].Count {
		t.Fatal("ranking not by count")
	}
}

func TestSuggestItemProfileBackoff(t *testing.T) {
	d, s, gs := world(t)
	r := New(s, gs, d.TagFrequencies())
	// A profile that tagged nothing on action movies: female young.
	young, err := d.AddUser(map[string]string{"gender": "female", "age": "young"})
	if err != nil {
		t.Fatal(err)
	}
	u, it := attrsOf(d, young, 0)
	sug := r.Suggest(u, it, 3)
	if len(sug) == 0 {
		t.Fatal("no suggestions")
	}
	for _, sg := range sug {
		if sg.Source != "item-profile" {
			t.Fatalf("source = %q", sg.Source)
		}
		switch sg.Tag {
		case "gun", "fight", "violence":
		default:
			t.Fatalf("non-action tag %q suggested", sg.Tag)
		}
	}
}

func TestSuggestGlobalBackoff(t *testing.T) {
	d, s, gs := world(t)
	r := New(s, gs, d.TagFrequencies())
	// An item profile that no group covers: a brand-new genre.
	drama, err := d.AddItem(map[string]string{"genre": "drama"})
	if err != nil {
		t.Fatal(err)
	}
	u, it := attrsOf(d, 0, drama)
	sug := r.Suggest(u, it, 2)
	if len(sug) != 2 {
		t.Fatalf("got %d suggestions", len(sug))
	}
	for _, sg := range sug {
		if sg.Source != "global" {
			t.Fatalf("source = %q", sg.Source)
		}
	}
	// Global top is "gun" (4 occurrences).
	if sug[0].Tag != "gun" {
		t.Fatalf("global top = %q", sug[0].Tag)
	}
}

func TestSuggestEdgeCases(t *testing.T) {
	d, s, gs := world(t)
	r := New(s, gs, d.TagFrequencies())
	u, it := attrsOf(d, 0, 0)
	if got := r.Suggest(u, it, 0); got != nil {
		t.Fatal("n=0 should return nil")
	}
	// Requesting more tags than the group has truncates gracefully.
	if got := r.Suggest(u, it, 100); len(got) != 2 {
		t.Fatalf("over-request returned %d", len(got))
	}
}
