package userstudy

import (
	"strings"
	"testing"
)

func TestValidation(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Fatal("zero config accepted")
	}
}

func TestVoteConservation(t *testing.T) {
	cfg := DefaultConfig()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	var pct float64
	for i := range res.Votes {
		total += res.Votes[i]
		pct += res.Pct[i]
	}
	if total != cfg.Judges*cfg.Queries {
		t.Fatalf("votes = %d, want %d", total, cfg.Judges*cfg.Queries)
	}
	if pct < 99.9 || pct > 100.1 {
		t.Fatalf("percentages sum to %v", pct)
	}
}

func TestPaperShapeRecovered(t *testing.T) {
	// With many judgments, the single-diversity instances (2, 3, 6) must
	// collectively dominate, reproducing Figure 9's shape.
	cfg := Config{Judges: 500, Queries: 3, Noise: 0.35, Familiarity: 0.5, Seed: 7}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	single := res.Pct[1] + res.Pct[2] + res.Pct[5] // problems 2, 3, 6
	other := res.Pct[0] + res.Pct[3] + res.Pct[4]  // problems 1, 4, 5
	if single <= other {
		t.Fatalf("single-diversity %.1f%% did not dominate others %.1f%%", single, other)
	}
	// And each of 2, 3, 6 individually beats each of 1, 4, 5.
	for _, win := range []int{1, 2, 5} {
		for _, lose := range []int{0, 3, 4} {
			if res.Pct[win] <= res.Pct[lose] {
				t.Fatalf("problem %d (%.1f%%) did not beat problem %d (%.1f%%)",
					win+1, res.Pct[win], lose+1, res.Pct[lose])
			}
		}
	}
}

func TestDeterministic(t *testing.T) {
	a, _ := Run(DefaultConfig())
	b, _ := Run(DefaultConfig())
	if a.Votes != b.Votes {
		t.Fatal("same seed, different votes")
	}
	alt := DefaultConfig()
	alt.Seed = 99
	c, _ := Run(alt)
	if a.Votes == c.Votes {
		t.Fatal("different seeds, identical votes (suspicious)")
	}
}

func TestRender(t *testing.T) {
	res, _ := Run(DefaultConfig())
	out := res.Render()
	for i := 1; i <= 6; i++ {
		if !strings.Contains(out, "Problem "+string(rune('0'+i))) {
			t.Fatalf("render missing problem %d:\n%s", i, out)
		}
	}
}

func TestDiversityCount(t *testing.T) {
	want := map[int]int{1: 0, 2: 1, 3: 1, 4: 2, 5: 2, 6: 1}
	for id, n := range want {
		if got := diversityCount(id); got != n {
			t.Fatalf("diversityCount(%d) = %d, want %d", id, got, n)
		}
	}
}
