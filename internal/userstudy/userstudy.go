// Package userstudy simulates the Amazon Mechanical Turk study of paper
// Section 6.2.2 (Figure 9): 30 single-user tasks, each shown the analyses
// produced by the six problem instances of Table 1 for three queries, each
// picking the most preferred analysis. The paper found that users prefer
// the instances with *exactly one* diversity dimension — Problems 2 (item
// diversity), 3 (user diversity) and 6 (tag diversity).
//
// Real crowdworkers are unavailable offline, so judges are simulated with
// a utility model calibrated to that finding: an analysis is most
// interesting when it contrasts one dimension while holding the others
// fixed (one diversity dimension), less interesting when everything is
// similar (nothing new) or everything varies (no anchor). The simulation
// regenerates the figure's shape; it is a stand-in, not new evidence —
// see DESIGN.md's substitution log.
package userstudy

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"tagdm/internal/mining"
)

// instanceMeasures mirrors Table 1 (user, item, tag).
var instanceMeasures = [6][3]mining.Measure{
	{mining.Similarity, mining.Similarity, mining.Similarity}, // 1
	{mining.Similarity, mining.Diversity, mining.Similarity},  // 2
	{mining.Diversity, mining.Similarity, mining.Similarity},  // 3
	{mining.Diversity, mining.Similarity, mining.Diversity},   // 4
	{mining.Similarity, mining.Diversity, mining.Diversity},   // 5
	{mining.Similarity, mining.Similarity, mining.Diversity},  // 6
}

// diversityCount returns how many of an instance's dimensions use the
// diversity measure.
func diversityCount(id int) int {
	n := 0
	for _, m := range instanceMeasures[id-1] {
		if m == mining.Diversity {
			n++
		}
	}
	return n
}

// Config controls the simulated study.
type Config struct {
	// Judges is the number of single-user tasks (paper: 30).
	Judges int
	// Queries is the number of queries each judge rates (paper: 3).
	Queries int
	// Noise is the standard deviation of per-judgment utility noise;
	// higher values flatten the preference histogram.
	Noise float64
	// Familiarity simulates the User Knowledge Phase: each judge gets a
	// familiarity factor in [1-Familiarity, 1] scaling how sharply they
	// discriminate between analyses.
	Familiarity float64
	Seed        int64
}

// DefaultConfig matches the paper's study shape.
func DefaultConfig() Config {
	return Config{Judges: 30, Queries: 3, Noise: 0.35, Familiarity: 0.5, Seed: 1}
}

// Result is the aggregated preference histogram.
type Result struct {
	// Votes[i] counts selections of Problem i+1 across all judgments.
	Votes [6]int
	// Pct[i] is Votes[i] as a percentage of all judgments.
	Pct [6]float64
}

// Run simulates the study.
func Run(cfg Config) (*Result, error) {
	if cfg.Judges < 1 || cfg.Queries < 1 {
		return nil, fmt.Errorf("userstudy: need at least one judge and one query")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var res Result
	for j := 0; j < cfg.Judges; j++ {
		familiarity := 1 - cfg.Familiarity*rng.Float64()
		for q := 0; q < cfg.Queries; q++ {
			bestID, bestU := 1, -1e18
			for id := 1; id <= 6; id++ {
				u := baseUtility(id)*familiarity + cfg.Noise*rng.NormFloat64()
				if u > bestU {
					bestID, bestU = id, u
				}
			}
			res.Votes[bestID-1]++
		}
	}
	total := float64(cfg.Judges * cfg.Queries)
	for i := range res.Votes {
		res.Pct[i] = 100 * float64(res.Votes[i]) / total
	}
	return &res, nil
}

// baseUtility encodes the calibrated preference structure: one diversity
// dimension is the sweet spot (a clear contrast against a stable anchor),
// zero reads as redundant, two reads as unanchored.
func baseUtility(id int) float64 {
	switch diversityCount(id) {
	case 1:
		return 1.0
	case 2:
		return 0.45
	default: // 0
		return 0.35
	}
}

// Render formats the histogram like Figure 9 (percentage per instance).
func (r *Result) Render() string {
	var b strings.Builder
	b.WriteString("== Figure 9: simulated user study ==\n")
	order := []int{0, 1, 2, 3, 4, 5}
	sort.SliceStable(order, func(a, c int) bool { return order[a] < order[c] })
	for _, i := range order {
		bar := strings.Repeat("#", int(r.Pct[i]/2+0.5))
		fmt.Fprintf(&b, "Problem %d %6.1f%% %s\n", i+1, r.Pct[i], bar)
	}
	return b.String()
}
