package wal

import (
	"errors"
	"sync"
)

// ErrInjected is the base error surfaced by FaultFS-triggered failures.
// Tests assert on it with errors.Is.
var ErrInjected = errors.New("wal: injected fault")

// FaultFS wraps another FS and injects disk failures at configured points:
// a short write after N cumulative payload bytes, write errors, and fsync
// failures after N syncs. It drives the read-only-degradation and
// torn-file-recovery tests through real files — the log under test runs
// its production code path; only the syscalls lie.
//
// The zero value (wrapping some inner FS) injects nothing. Configure via
// the exported fields before handing it to Open, or call Arm* while the
// log is live. Counters are shared across all files opened through the
// FaultFS so "fail the 3rd fsync" means the 3rd fsync anywhere.
type FaultFS struct {
	Inner FS

	mu sync.Mutex
	// write faults
	writeBudget  int64 // bytes allowed to be written before faulting (<0: unlimited)
	shortWrite   bool  // true: partial write then error; false: full error
	writeTripped bool
	// sync faults
	syncBudget  int64 // syncs allowed before faulting (<0: unlimited)
	syncTripped bool

	writes int64
	syncs  int64
}

// NewFaultFS wraps inner with no faults armed.
func NewFaultFS(inner FS) *FaultFS {
	return &FaultFS{Inner: inner, writeBudget: -1, syncBudget: -1}
}

// ArmWriteFault makes writes fail once budget cumulative bytes have been
// written through this FS. If short is true the faulting write reports
// writing the bytes that fit in the budget before the error (a short
// write); otherwise it writes nothing of the faulting call.
func (f *FaultFS) ArmWriteFault(budget int64, short bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.writeBudget = f.writes + budget
	f.shortWrite = short
	f.writeTripped = false
}

// ArmSyncFault makes the (n+1)th fsync from now fail (n syncs still
// succeed).
func (f *FaultFS) ArmSyncFault(n int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.syncBudget = f.syncs + n
	f.syncTripped = false
}

// Disarm clears all armed faults.
func (f *FaultFS) Disarm() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.writeBudget = -1
	f.syncBudget = -1
}

// Tripped reports whether any armed fault has fired.
func (f *FaultFS) Tripped() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.writeTripped || f.syncTripped
}

// admitWrite decides how much of an n-byte write to pass through.
func (f *FaultFS) admitWrite(n int) (allowed int, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.writeBudget < 0 {
		f.writes += int64(n)
		return n, nil
	}
	room := f.writeBudget - f.writes
	if int64(n) <= room {
		f.writes += int64(n)
		return n, nil
	}
	f.writeTripped = true
	if f.shortWrite && room > 0 {
		f.writes += room
		return int(room), errInjectedShortWrite
	}
	return 0, errInjectedWrite
}

func (f *FaultFS) admitSync() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.syncBudget < 0 {
		f.syncs++
		return nil
	}
	if f.syncs < f.syncBudget {
		f.syncs++
		return nil
	}
	f.syncTripped = true
	return errInjectedSync
}

var (
	errInjectedWrite      = errors.Join(ErrInjected, errors.New("write failure"))
	errInjectedShortWrite = errors.Join(ErrInjected, errors.New("short write"))
	errInjectedSync       = errors.Join(ErrInjected, errors.New("fsync failure"))
)

// MkdirAll implements FS.
func (f *FaultFS) MkdirAll(dir string) error { return f.Inner.MkdirAll(dir) }

// Create implements FS.
func (f *FaultFS) Create(path string) (File, error) {
	inner, err := f.Inner.Create(path)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: inner}, nil
}

// OpenAppend implements FS.
func (f *FaultFS) OpenAppend(path string) (File, error) {
	inner, err := f.Inner.OpenAppend(path)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: inner}, nil
}

// Open implements FS. Reads are never faulted: the harness targets the
// write path.
func (f *FaultFS) Open(path string) (File, error) { return f.Inner.Open(path) }

// ReadDir implements FS.
func (f *FaultFS) ReadDir(dir string) ([]string, error) { return f.Inner.ReadDir(dir) }

// Stat implements FS.
func (f *FaultFS) Stat(path string) (int64, error) { return f.Inner.Stat(path) }

// Truncate implements FS.
func (f *FaultFS) Truncate(path string, size int64) error { return f.Inner.Truncate(path, size) }

// Rename implements FS.
func (f *FaultFS) Rename(oldpath, newpath string) error { return f.Inner.Rename(oldpath, newpath) }

// Remove implements FS.
func (f *FaultFS) Remove(path string) error { return f.Inner.Remove(path) }

// SyncDir implements FS.
func (f *FaultFS) SyncDir(dir string) error {
	if err := f.admitSync(); err != nil {
		return err
	}
	return f.Inner.SyncDir(dir)
}

type faultFile struct {
	fs    *FaultFS
	inner File
}

func (w *faultFile) Read(p []byte) (int, error) { return w.inner.Read(p) }

func (w *faultFile) Write(p []byte) (int, error) {
	allowed, ferr := w.fs.admitWrite(len(p))
	if allowed > 0 {
		n, err := w.inner.Write(p[:allowed])
		if err != nil {
			return n, err
		}
		if ferr != nil {
			return n, ferr
		}
		return n, nil
	}
	if ferr != nil {
		return 0, ferr
	}
	return w.inner.Write(p)
}

func (w *faultFile) Sync() error {
	if err := w.fs.admitSync(); err != nil {
		return err
	}
	return w.inner.Sync()
}

func (w *faultFile) Close() error { return w.inner.Close() }
