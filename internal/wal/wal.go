// Package wal implements the write-ahead log under the server's durable
// ingest path: length-prefixed, CRC32C-checksummed records appended to
// segment files with group commit — concurrent appenders share one
// write+fsync, bounded by a flush interval and a byte threshold — so an
// ingest batch is only acknowledged after its record is durable.
//
// On-disk format. A segment file named wal-<firstSeq>.log holds frames
//
//	[len u32 LE][crc32c u32 LE][data]   where data = [seq u64 LE][payload]
//
// with consecutive sequence numbers. The CRC covers data. A crash can leave
// a torn frame at the tail of the newest segment; Open detects it by
// length/checksum/sequence validation and truncates the file back to the
// last valid frame boundary instead of failing — a torn tail is by
// construction an unacknowledged record. Corruption anywhere else (an
// acknowledged record) is fatal and reported as an error.
//
// Checkpoints interact with the log through Rotate (start a new segment so
// a checkpoint can own a clean suffix boundary) and RemoveBefore (drop
// segments wholly covered by a durable checkpoint).
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// SyncMode selects when appends are fsynced.
type SyncMode int

const (
	// SyncAlways fsyncs every group-committed batch before acknowledging
	// the records in it. Survives both process crash and OS crash.
	SyncAlways SyncMode = iota
	// SyncInterval acknowledges after the buffered write and fsyncs on a
	// timer (Options.SyncEvery). Survives process crash; an OS crash can
	// lose up to one interval of acknowledged records.
	SyncInterval
	// SyncNone never fsyncs explicitly; durability is whatever the OS
	// page cache provides. For benchmarks and tests.
	SyncNone
)

// ParseSyncMode maps the -fsync flag values to a SyncMode.
func ParseSyncMode(s string) (SyncMode, error) {
	switch s {
	case "always", "":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "none":
		return SyncNone, nil
	}
	return 0, fmt.Errorf("wal: unknown fsync mode %q (want always, interval or none)", s)
}

func (m SyncMode) String() string {
	switch m {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNone:
		return "none"
	}
	return "unknown"
}

// Options tunes a Log. Zero values get defaults from withDefaults.
type Options struct {
	// FlushInterval is the group-commit window: how long the flusher waits
	// after the first pending record for more records to share the
	// write+fsync. Zero flushes immediately (every append pays its own
	// fsync under light load). Default 2ms.
	FlushInterval time.Duration
	// FlushBytes flushes early once this many payload bytes are pending,
	// bounding ack latency under heavy streams. Default 256 KiB.
	FlushBytes int
	// Sync selects the fsync policy. Default SyncAlways.
	Sync SyncMode
	// SyncEvery is the fsync period for SyncInterval. Default 100ms.
	SyncEvery time.Duration
	// FS is the filesystem; nil means the real one. Tests inject a FaultFS
	// here.
	FS FS
	// OnSync, when non-nil, observes every fsync with its duration and
	// error — the hook the server uses to feed the fsync-latency
	// histogram without the wal package depending on the metrics layer.
	OnSync func(d time.Duration, err error)
}

func (o Options) withDefaults() Options {
	if o.FlushInterval < 0 {
		o.FlushInterval = 0
	}
	if o.FlushBytes <= 0 {
		o.FlushBytes = 256 << 10
	}
	if o.SyncEvery <= 0 {
		o.SyncEvery = 100 * time.Millisecond
	}
	if o.FS == nil {
		o.FS = OSFS{}
	}
	return o
}

const (
	frameHeaderSize = 8       // u32 len + u32 crc
	seqSize         = 8       // u64 seq inside data
	maxRecordBytes  = 1 << 30 // sanity bound on a single record
	segPrefix       = "wal-"
	segSuffix       = ".log"
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrClosed is returned by appends against a closed log.
var ErrClosed = errors.New("wal: log closed")

// RecoveryInfo reports what Open found and repaired.
type RecoveryInfo struct {
	// Segments is the number of live segment files.
	Segments int
	// LastSeq is the sequence number of the last valid record (0 when the
	// log is empty).
	LastSeq uint64
	// TornBytes is how many trailing bytes were truncated off the newest
	// segment because they did not form a valid frame.
	TornBytes int64
	// TornTruncated reports whether a torn tail was found and removed.
	TornTruncated bool
}

// Stats is a point-in-time snapshot of the log's internal counters, read
// by the server's /metrics gauges and /v1/stats durability block.
type Stats struct {
	Appends   int64 // records appended this process
	Bytes     int64 // payload bytes appended this process
	Flushes   int64 // group-commit batches written
	Syncs     int64 // fsyncs issued
	SizeBytes int64 // bytes across live segments
	LastSeq   uint64
	Failed    bool // sticky failure latched (disk gave an error)
}

type segment struct {
	firstSeq uint64 // seq of the first record this segment may hold
	lastSeq  uint64 // last record actually in it (0 if empty)
	size     int64
}

type ticket struct {
	frame []byte // fully framed record
	seq   uint64
	done  chan error
}

// Ticket is a pending append. Wait blocks until the record's group commit
// completes (including fsync under SyncAlways) and returns its outcome.
type Ticket struct{ t *ticket }

// Seq is the record's sequence number.
func (tk *Ticket) Seq() uint64 { return tk.t.seq }

// Wait blocks until the record is durable per the log's sync mode.
func (tk *Ticket) Wait() error { return <-tk.t.done }

// Log is an append-only write-ahead log over segment files. Enqueue is
// cheap and non-blocking (safe to call under the caller's own write lock
// to pin ordering); Wait rides the group commit. All methods are safe for
// concurrent use.
type Log struct {
	dir  string
	opts Options

	// mu guards queue state: pending tickets, sequence assignment and the
	// closed/failed flags. It is never held across disk I/O.
	//
	//tagdm:mutex nonblocking
	mu       sync.Mutex
	pending  []*ticket
	pendingB int
	nextSeq  uint64
	closed   bool
	failed   error
	kicked   bool

	// wmu serializes disk writes: the flusher's batch writes, Rotate and
	// Close. Taken without mu; never the other way around.
	wmu      sync.Mutex
	f        File
	bw       *bufio.Writer
	segments []segment // ascending; last is the open one

	kick    chan struct{}
	quit    chan struct{}
	flusher sync.WaitGroup

	nAppends atomic.Int64
	nBytes   atomic.Int64
	nFlushes atomic.Int64
	nSyncs   atomic.Int64
	size     atomic.Int64
	lastSeq  atomic.Uint64
	recov    RecoveryInfo
}

func segName(firstSeq uint64) string {
	return fmt.Sprintf("%s%020d%s", segPrefix, firstSeq, segSuffix)
}

func parseSegName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	n, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix), 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// Open scans dir, validates every frame, truncates a torn tail off the
// newest segment, and returns a log positioned to append after the last
// valid record. The first record ever appended gets sequence 1.
func Open(dir string, opts Options) (*Log, error) {
	opts = opts.withDefaults()
	fs := opts.FS
	if err := fs.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("wal: creating %s: %w", dir, err)
	}
	names, err := fs.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: listing %s: %w", dir, err)
	}
	var segs []segment
	for _, name := range names {
		if first, ok := parseSegName(name); ok {
			segs = append(segs, segment{firstSeq: first})
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].firstSeq < segs[j].firstSeq })

	l := &Log{
		dir:     dir,
		opts:    opts,
		nextSeq: 1,
		kick:    make(chan struct{}, 1),
		quit:    make(chan struct{}),
	}
	// Validate each segment; only the newest may have a torn tail.
	for i := range segs {
		final := i == len(segs)-1
		info, err := scanSegment(fs, filepath.Join(dir, segName(segs[i].firstSeq)), segs[i].firstSeq, final)
		if err != nil {
			return nil, err
		}
		if info.tornBytes > 0 {
			path := filepath.Join(dir, segName(segs[i].firstSeq))
			if err := fs.Truncate(path, info.validSize); err != nil {
				return nil, fmt.Errorf("wal: truncating torn tail of %s: %w", path, err)
			}
			l.recov.TornTruncated = true
			l.recov.TornBytes = info.tornBytes
		}
		segs[i].lastSeq = info.lastSeq
		segs[i].size = info.validSize
		if info.lastSeq > 0 {
			l.nextSeq = info.lastSeq + 1
			l.recov.LastSeq = info.lastSeq
		}
	}
	l.segments = segs
	l.recov.Segments = len(segs)
	l.lastSeq.Store(l.recov.LastSeq)
	var total int64
	for _, s := range segs {
		total += s.size
	}
	l.size.Store(total)

	// Append into the newest segment, or a fresh one on an empty dir.
	if len(l.segments) == 0 {
		l.segments = []segment{{firstSeq: l.nextSeq}}
	}
	cur := &l.segments[len(l.segments)-1]
	f, err := fs.OpenAppend(filepath.Join(dir, segName(cur.firstSeq)))
	if err != nil {
		return nil, fmt.Errorf("wal: opening segment: %w", err)
	}
	l.f = f
	l.bw = bufio.NewWriterSize(f, 1<<16)

	l.flusher.Add(1)
	go l.runFlusher()
	if opts.Sync == SyncInterval {
		l.flusher.Add(1)
		go l.runSyncTicker()
	}
	return l, nil
}

type segScan struct {
	lastSeq   uint64
	validSize int64
	tornBytes int64
}

// scanSegment walks every frame of one segment. In the final segment an
// invalid frame marks a torn tail (reported for truncation); anywhere else
// it is corruption of acknowledged data and therefore an error.
func scanSegment(fs FS, path string, firstSeq uint64, final bool) (segScan, error) {
	f, err := fs.Open(path)
	if err != nil {
		return segScan{}, fmt.Errorf("wal: opening %s: %w", path, err)
	}
	//tagdm:allow-discard read-only scan handle, nothing buffered to lose
	defer f.Close()
	var out segScan
	expect := firstSeq
	r := bufio.NewReaderSize(f, 1<<16)
	var hdr [frameHeaderSize]byte
	var offset int64
	var buf []byte
	for {
		n, err := readFull(r, hdr[:])
		if n == 0 && err != nil {
			return out, nil // clean EOF at a frame boundary
		}
		bad := func(why string) (segScan, error) {
			if final {
				out.tornBytes = mustSize(fs, path) - out.validSize
				return out, nil
			}
			return segScan{}, fmt.Errorf("wal: %s: corrupt frame at offset %d (%s) in non-final segment", path, offset, why)
		}
		if n < len(hdr) || err != nil {
			return bad("short header")
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		crc := binary.LittleEndian.Uint32(hdr[4:8])
		if length < seqSize || length > maxRecordBytes {
			return bad("implausible length")
		}
		if cap(buf) < int(length) {
			buf = make([]byte, length)
		}
		buf = buf[:length]
		if m, err := readFull(r, buf); m < int(length) || err != nil {
			return bad("short data")
		}
		if crc32.Checksum(buf, crcTable) != crc {
			return bad("checksum mismatch")
		}
		seq := binary.LittleEndian.Uint64(buf[:seqSize])
		if seq != expect {
			return bad(fmt.Sprintf("sequence %d, want %d", seq, expect))
		}
		expect++
		out.lastSeq = seq
		offset += int64(frameHeaderSize) + int64(length)
		out.validSize = offset
	}
}

func mustSize(fs FS, path string) int64 {
	n, err := fs.Stat(path)
	if err != nil {
		return 0
	}
	return n
}

// readFull is io.ReadFull without the error wrapping noise: returns bytes
// read and the terminal error, tolerating io.EOF mid-way.
func readFull(r *bufio.Reader, p []byte) (int, error) {
	total := 0
	for total < len(p) {
		n, err := r.Read(p[total:])
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// Enqueue frames payload, assigns it the next sequence number and queues
// it for the group-commit flusher. It never blocks on disk I/O, so callers
// may hold their own state lock across it to guarantee the WAL order
// matches their in-memory apply order. Wait on the ticket after releasing
// that lock.
//
//tagdm:nonblocking
func (l *Log) Enqueue(payload []byte) *Ticket {
	t := &ticket{done: make(chan error, 1)}
	l.mu.Lock()
	if l.closed || l.failed != nil {
		err := l.failed
		if err == nil {
			err = ErrClosed
		}
		l.mu.Unlock()
		t.done <- err
		return &Ticket{t}
	}
	t.seq = l.nextSeq
	l.nextSeq++
	data := make([]byte, frameHeaderSize+seqSize+len(payload))
	binary.LittleEndian.PutUint32(data[0:4], uint32(seqSize+len(payload)))
	binary.LittleEndian.PutUint64(data[frameHeaderSize:], t.seq)
	copy(data[frameHeaderSize+seqSize:], payload)
	binary.LittleEndian.PutUint32(data[4:8], crc32.Checksum(data[frameHeaderSize:], crcTable))
	t.frame = data
	l.pending = append(l.pending, t)
	l.pendingB += len(payload)
	kickNow := l.pendingB >= l.opts.FlushBytes
	if !l.kicked {
		l.kicked = true
		kickNow = true
	}
	l.mu.Unlock()
	if kickNow {
		select {
		case l.kick <- struct{}{}:
		default:
		}
	}
	return &Ticket{t}
}

// Append is Enqueue + Wait: it returns once the record is durable per the
// sync mode, carrying its sequence number.
func (l *Log) Append(payload []byte) (uint64, error) {
	t := l.Enqueue(payload)
	return t.Seq(), t.Wait()
}

func (l *Log) runFlusher() {
	defer l.flusher.Done()
	for {
		select {
		case <-l.quit:
			return
		case <-l.kick:
		}
		// Group-commit window: wait for more records unless the byte
		// threshold already tripped.
		if l.opts.FlushInterval > 0 {
			timer := time.NewTimer(l.opts.FlushInterval)
			select {
			case <-timer.C:
			case <-l.kick: // byte threshold kicked again: flush now
				timer.Stop()
			case <-l.quit:
				timer.Stop()
				return
			}
		}
		l.flushPending()
	}
}

// takePending steals the pending batch under mu.
func (l *Log) takePending() []*ticket {
	l.mu.Lock()
	batch := l.pending
	l.pending = nil
	l.pendingB = 0
	l.kicked = false
	l.mu.Unlock()
	return batch
}

// flushPending writes and (per sync mode) fsyncs everything pending, then
// completes the tickets. Called by the flusher goroutine, Rotate, Sync and
// Close; wmu serializes them.
func (l *Log) flushPending() {
	l.wmu.Lock()
	defer l.wmu.Unlock()
	l.flushPendingLocked()
}

func (l *Log) flushPendingLocked() {
	batch := l.takePending()
	if len(batch) == 0 {
		return
	}
	err := l.writeBatchLocked(batch)
	if err != nil {
		l.fail(err)
	}
	for _, t := range batch {
		t.done <- err
	}
}

// writeBatchLocked appends the frames and fsyncs under SyncAlways. Caller
// holds wmu.
func (l *Log) writeBatchLocked(batch []*ticket) error {
	var wrote int64
	for _, t := range batch {
		if _, err := l.bw.Write(t.frame); err != nil {
			return fmt.Errorf("wal: write: %w", err)
		}
		wrote += int64(len(t.frame))
	}
	if err := l.bw.Flush(); err != nil {
		return fmt.Errorf("wal: flush: %w", err)
	}
	if l.opts.Sync == SyncAlways {
		if err := l.syncLocked(); err != nil {
			return err
		}
	}
	last := batch[len(batch)-1].seq
	l.nFlushes.Add(1)
	l.nAppends.Add(int64(len(batch)))
	for _, t := range batch {
		l.nBytes.Add(int64(len(t.frame) - frameHeaderSize - seqSize))
	}
	l.size.Add(wrote)
	l.segments[len(l.segments)-1].size += wrote
	l.segments[len(l.segments)-1].lastSeq = last
	l.lastSeq.Store(last)
	return nil
}

func (l *Log) syncLocked() error {
	start := time.Now()
	err := l.f.Sync()
	l.nSyncs.Add(1)
	if l.opts.OnSync != nil {
		l.opts.OnSync(time.Since(start), err)
	}
	if err != nil {
		return fmt.Errorf("wal: fsync: %w", err)
	}
	return nil
}

func (l *Log) runSyncTicker() {
	defer l.flusher.Done()
	tick := time.NewTicker(l.opts.SyncEvery)
	defer tick.Stop()
	for {
		select {
		case <-l.quit:
			return
		case <-tick.C:
			l.wmu.Lock()
			if l.failedNow() == nil && l.f != nil {
				if err := l.syncLocked(); err != nil {
					l.fail(err)
				}
			}
			l.wmu.Unlock()
		}
	}
}

func (l *Log) failedNow() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.failed
}

// fail latches the first disk error; every later Enqueue fails fast with
// it. The server maps this to read-only degradation.
func (l *Log) fail(err error) {
	l.mu.Lock()
	if l.failed == nil {
		l.failed = err
	}
	l.mu.Unlock()
}

// Err returns the sticky failure, if any.
func (l *Log) Err() error { return l.failedNow() }

// LastSeq is the sequence number of the last durably written record.
// Records enqueued but not yet flushed are not counted.
func (l *Log) LastSeq() uint64 { return l.lastSeq.Load() }

// NextSeq returns the sequence number the next Enqueue will be assigned.
// All records with smaller sequence numbers have been enqueued (though not
// necessarily flushed yet); the server snapshots this under its write lock
// to stamp checkpoint coverage.
func (l *Log) NextSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextSeq
}

// Sync flushes pending records and fsyncs the current segment.
func (l *Log) Sync() error {
	l.wmu.Lock()
	defer l.wmu.Unlock()
	l.flushPendingLocked()
	if err := l.failedNow(); err != nil {
		return err
	}
	if l.opts.Sync != SyncAlways { // SyncAlways already fsynced in flush
		if err := l.syncLocked(); err != nil {
			l.fail(err)
			return err
		}
	}
	return nil
}

// Rotate flushes and fsyncs the open segment, closes it, and starts a new
// one. Checkpoints call it so that RemoveBefore can later drop the closed
// prefix wholesale.
func (l *Log) Rotate() error {
	l.wmu.Lock()
	defer l.wmu.Unlock()
	// The drained check and the nextSeq read must share one l.mu critical
	// section: Enqueue only takes l.mu, so a record enqueued during the
	// drain's write+fsync would otherwise carry a sequence below `first`
	// yet be flushed into the new wal-<first> segment, which recovery
	// would misread as a torn tail (dropping an acknowledged record) or as
	// corruption. Records enqueued after the check get seq >= first and
	// land in the new segment — correct — because the flusher blocks on
	// wmu until the swap below completes.
	var first uint64
	for {
		l.flushPendingLocked()
		if err := l.failedNow(); err != nil {
			return err
		}
		l.mu.Lock()
		drained := len(l.pending) == 0
		first = l.nextSeq
		l.mu.Unlock()
		if drained {
			break
		}
	}
	if l.opts.Sync != SyncAlways {
		if err := l.syncLocked(); err != nil {
			l.fail(err)
			return err
		}
	}
	// An empty open segment is already the fresh segment a rotation would
	// produce; rotating it would create a second segment with the same
	// firstSeq-derived name, and RemoveBefore would then unlink the file
	// the live segment still writes to — silently losing acknowledged
	// records. Skip instead.
	if cur := l.segments[len(l.segments)-1]; cur.firstSeq == first {
		return nil
	}
	if err := l.f.Close(); err != nil {
		l.fail(err)
		return fmt.Errorf("wal: closing segment: %w", err)
	}
	f, err := l.opts.FS.OpenAppend(filepath.Join(l.dir, segName(first)))
	if err != nil {
		l.fail(err)
		return fmt.Errorf("wal: opening new segment: %w", err)
	}
	if err := l.opts.FS.SyncDir(l.dir); err != nil {
		l.fail(err)
		return fmt.Errorf("wal: syncing dir: %w", err)
	}
	l.f = f
	l.bw = bufio.NewWriterSize(f, 1<<16)
	l.segments = append(l.segments, segment{firstSeq: first})
	return nil
}

// RemoveBefore deletes closed segments whose records all have sequence
// numbers <= seq — safe once a checkpoint covering seq is durable. The
// open segment is never removed.
func (l *Log) RemoveBefore(seq uint64) error {
	l.wmu.Lock()
	defer l.wmu.Unlock()
	var kept []segment
	var firstErr error
	for i, s := range l.segments {
		// A closed segment's coverage ends where the next one starts.
		if i == len(l.segments)-1 || l.segments[i+1].firstSeq > seq+1 {
			kept = append(kept, l.segments[i:]...)
			break
		}
		if err := l.opts.FS.Remove(filepath.Join(l.dir, segName(s.firstSeq))); err != nil && firstErr == nil {
			firstErr = err
			kept = append(kept, l.segments[i:]...)
			break
		}
		l.size.Add(-s.size)
	}
	l.segments = kept
	return firstErr
}

// Replay streams every valid record with sequence number > fromSeq to fn
// in order. It reads the segment files directly, so call it after Open
// (which repairs torn tails) and before concurrent appends start. A fn
// error aborts the replay and is returned.
func (l *Log) Replay(fromSeq uint64, fn func(seq uint64, payload []byte) error) error {
	l.wmu.Lock()
	segs := append([]segment(nil), l.segments...)
	l.wmu.Unlock()
	for _, s := range segs {
		if s.lastSeq != 0 && s.lastSeq <= fromSeq {
			continue // wholly covered by the checkpoint
		}
		path := filepath.Join(l.dir, segName(s.firstSeq))
		if err := replaySegment(l.opts.FS, path, s.firstSeq, fromSeq, fn); err != nil {
			return err
		}
	}
	return nil
}

func replaySegment(fs FS, path string, firstSeq, fromSeq uint64, fn func(uint64, []byte) error) error {
	f, err := fs.Open(path)
	if err != nil {
		return fmt.Errorf("wal: opening %s for replay: %w", path, err)
	}
	//tagdm:allow-discard read-only replay handle, nothing buffered to lose
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<16)
	var hdr [frameHeaderSize]byte
	for {
		n, err := readFull(r, hdr[:])
		if n == 0 && err != nil {
			return nil
		}
		if n < len(hdr) || err != nil {
			return fmt.Errorf("wal: %s: short frame header during replay", path)
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		crc := binary.LittleEndian.Uint32(hdr[4:8])
		if length < seqSize || length > maxRecordBytes {
			return fmt.Errorf("wal: %s: implausible frame length %d during replay", path, length)
		}
		data := make([]byte, length)
		if m, err := readFull(r, data); m < int(length) || err != nil {
			return fmt.Errorf("wal: %s: short frame during replay", path)
		}
		if crc32.Checksum(data, crcTable) != crc {
			return fmt.Errorf("wal: %s: checksum mismatch during replay", path)
		}
		seq := binary.LittleEndian.Uint64(data[:seqSize])
		if seq <= fromSeq {
			continue
		}
		if err := fn(seq, data[seqSize:]); err != nil {
			return err
		}
	}
}

// Recovery reports what Open found and repaired.
func (l *Log) Recovery() RecoveryInfo { return l.recov }

// Stats snapshots the log's counters.
func (l *Log) Stats() Stats {
	return Stats{
		Appends:   l.nAppends.Load(),
		Bytes:     l.nBytes.Load(),
		Flushes:   l.nFlushes.Load(),
		Syncs:     l.nSyncs.Load(),
		SizeBytes: l.size.Load(),
		LastSeq:   l.lastSeq.Load(),
		Failed:    l.failedNow() != nil,
	}
}

// Close flushes and fsyncs pending records, stops the flusher and closes
// the open segment. Idempotent. Appends racing Close fail with ErrClosed.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	l.mu.Unlock()
	close(l.quit)
	l.flusher.Wait()

	l.wmu.Lock()
	defer l.wmu.Unlock()
	l.flushPendingLocked()
	var err error
	if l.failedNow() == nil && l.opts.Sync != SyncAlways {
		err = l.syncLocked()
	}
	if cerr := l.f.Close(); cerr != nil && err == nil {
		err = cerr
	}
	return err
}
