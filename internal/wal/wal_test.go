package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// quickOpts keeps test flushes immediate so appends don't wait out a
// group-commit window.
func quickOpts() Options {
	return Options{FlushInterval: 0, Sync: SyncAlways}
}

func mustOpen(t *testing.T, dir string, opts Options) *Log {
	t.Helper()
	l, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return l
}

func appendN(t *testing.T, l *Log, n int, tag string) {
	t.Helper()
	for i := 0; i < n; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("%s-%04d", tag, i))); err != nil {
			t.Fatalf("Append %s-%d: %v", tag, i, err)
		}
	}
}

func collect(t *testing.T, l *Log, fromSeq uint64) map[uint64]string {
	t.Helper()
	got := map[uint64]string{}
	if err := l.Replay(fromSeq, func(seq uint64, payload []byte) error {
		got[seq] = string(payload)
		return nil
	}); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return got
}

func TestAppendReplayRoundtrip(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, quickOpts())
	appendN(t, l, 20, "rec")
	if got := l.LastSeq(); got != 20 {
		t.Fatalf("LastSeq = %d, want 20", got)
	}
	got := collect(t, l, 0)
	if len(got) != 20 {
		t.Fatalf("replayed %d records, want 20", len(got))
	}
	for i := 0; i < 20; i++ {
		want := fmt.Sprintf("rec-%04d", i)
		if got[uint64(i+1)] != want {
			t.Fatalf("seq %d = %q, want %q", i+1, got[uint64(i+1)], want)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Reopen resumes the sequence.
	l2 := mustOpen(t, dir, quickOpts())
	defer l2.Close()
	if l2.Recovery().TornTruncated {
		t.Fatal("clean log reported torn truncation")
	}
	if got := l2.LastSeq(); got != 20 {
		t.Fatalf("reopened LastSeq = %d, want 20", got)
	}
	if seq, err := l2.Append([]byte("after")); err != nil || seq != 21 {
		t.Fatalf("Append after reopen = (%d, %v), want (21, nil)", seq, err)
	}
}

// TestTornTailTruncatedAtEveryOffset is the core crash-safety property:
// whatever byte prefix of a segment a crash leaves behind, Open recovers
// exactly the complete frames and truncates the rest.
func TestTornTailTruncatedAtEveryOffset(t *testing.T) {
	src := t.TempDir()
	l := mustOpen(t, src, quickOpts())
	// Varied payload sizes so offsets hit every part of a frame.
	payloads := [][]byte{
		[]byte("a"), []byte("bb-bb"), bytes.Repeat([]byte("c"), 100),
		[]byte("dddd"), bytes.Repeat([]byte("e"), 33),
	}
	frameEnds := []int64{0}
	var off int64
	for _, p := range payloads {
		if _, err := l.Append(p); err != nil {
			t.Fatalf("Append: %v", err)
		}
		off += int64(frameHeaderSize + seqSize + len(p))
		frameEnds = append(frameEnds, off)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	segPath := filepath.Join(src, segName(1))
	whole, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatalf("read segment: %v", err)
	}
	if int64(len(whole)) != off {
		t.Fatalf("segment is %d bytes, expected %d", len(whole), off)
	}

	completeFrames := func(prefix int64) int {
		n := 0
		for _, e := range frameEnds[1:] {
			if e <= prefix {
				n++
			}
		}
		return n
	}

	for cut := int64(0); cut <= int64(len(whole)); cut++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName(1)), whole[:cut], 0o644); err != nil {
			t.Fatalf("write prefix: %v", err)
		}
		lr, err := Open(dir, quickOpts())
		if err != nil {
			t.Fatalf("cut=%d: Open: %v", cut, err)
		}
		wantFrames := completeFrames(cut)
		rec := lr.Recovery()
		if int(rec.LastSeq) != wantFrames {
			t.Fatalf("cut=%d: recovered LastSeq %d, want %d", cut, rec.LastSeq, wantFrames)
		}
		atBoundary := cut == frameEnds[wantFrames]
		if rec.TornTruncated == atBoundary && cut > 0 {
			t.Fatalf("cut=%d: TornTruncated=%v but frame boundary=%v", cut, rec.TornTruncated, atBoundary)
		}
		got := collect(t, lr, 0)
		if len(got) != wantFrames {
			t.Fatalf("cut=%d: replayed %d records, want %d", cut, len(got), wantFrames)
		}
		for i := 0; i < wantFrames; i++ {
			if got[uint64(i+1)] != string(payloads[i]) {
				t.Fatalf("cut=%d: seq %d payload mismatch", cut, i+1)
			}
		}
		// The log must be appendable after recovery.
		if seq, err := lr.Append([]byte("post-crash")); err != nil || int(seq) != wantFrames+1 {
			t.Fatalf("cut=%d: post-recovery Append = (%d, %v)", cut, seq, err)
		}
		lr.Close()
	}
}

// TestCorruptMiddleIsFatal: flipping a byte inside an acknowledged record
// of a non-final segment must fail Open, not silently drop data.
func TestCorruptMiddleIsFatal(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, quickOpts())
	appendN(t, l, 5, "seg1")
	if err := l.Rotate(); err != nil {
		t.Fatalf("Rotate: %v", err)
	}
	appendN(t, l, 5, "seg2")
	l.Close()

	path := filepath.Join(dir, segName(1))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, quickOpts()); err == nil {
		t.Fatal("Open succeeded despite corruption in a non-final segment")
	}
}

func TestRotateAndRemoveBefore(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, quickOpts())
	defer l.Close()
	appendN(t, l, 3, "a") // seqs 1..3 in segment 1
	if err := l.Rotate(); err != nil {
		t.Fatalf("Rotate: %v", err)
	}
	appendN(t, l, 3, "b") // seqs 4..6 in segment 2
	if err := l.Rotate(); err != nil {
		t.Fatalf("Rotate: %v", err)
	}
	appendN(t, l, 3, "c") // seqs 7..9 in segment 3

	// Checkpoint covering seq 3: segment 1 removable, 2 and 3 not.
	if err := l.RemoveBefore(3); err != nil {
		t.Fatalf("RemoveBefore(3): %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, segName(1))); !os.IsNotExist(err) {
		t.Fatalf("segment 1 still present after RemoveBefore(3): %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, segName(4))); err != nil {
		t.Fatalf("segment 4 missing: %v", err)
	}
	// A checkpoint mid-segment (seq 5) must not remove segment 2.
	if err := l.RemoveBefore(5); err != nil {
		t.Fatalf("RemoveBefore(5): %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, segName(4))); err != nil {
		t.Fatalf("segment 4 wrongly removed by mid-segment cutoff: %v", err)
	}

	got := collect(t, l, 3)
	if len(got) != 6 {
		t.Fatalf("replayed %d records after removal, want 6", len(got))
	}
	if got[4] != "b-0000" || got[9] != "c-0002" {
		t.Fatalf("replay content wrong: %v", got)
	}
}

func TestRotateEmptySegmentIsNoOp(t *testing.T) {
	// Regression: rotating an empty segment used to create a second
	// segment with the same name, and RemoveBefore then unlinked the file
	// the live segment was still writing to — appends after a first-boot
	// checkpoint (rotate at seq 0, RemoveBefore(0)) vanished on restart.
	dir := t.TempDir()
	l := mustOpen(t, dir, quickOpts())
	if err := l.Rotate(); err != nil { // empty log: must be a no-op
		t.Fatalf("Rotate: %v", err)
	}
	if err := l.RemoveBefore(0); err != nil {
		t.Fatalf("RemoveBefore(0): %v", err)
	}
	appendN(t, l, 2, "a")
	if err := l.Rotate(); err != nil { // real rotation at seq 2
		t.Fatalf("Rotate: %v", err)
	}
	if err := l.Rotate(); err != nil { // fresh segment again: no-op
		t.Fatalf("second Rotate: %v", err)
	}
	if err := l.RemoveBefore(2); err != nil {
		t.Fatalf("RemoveBefore(2): %v", err)
	}
	appendN(t, l, 2, "b")
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	reopened := mustOpen(t, dir, quickOpts())
	defer reopened.Close()
	// RemoveBefore(2) legitimately dropped seqs 1-2 (covered by the
	// checkpoint); the appends after the no-op rotations must survive —
	// pre-fix they were written to an unlinked file and vanished here.
	got := collect(t, reopened, 0)
	if len(got) != 2 || got[3] != "b-0000" || got[4] != "b-0001" {
		t.Fatalf("records lost across empty-segment rotation: %v", got)
	}
}

func TestGroupCommitBatchesFsyncs(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{FlushInterval: 5 * time.Millisecond, Sync: SyncAlways})
	defer l.Close()

	const n = 64
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = l.Append([]byte(fmt.Sprintf("conc-%04d", i)))
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	st := l.Stats()
	if st.Appends != n {
		t.Fatalf("Appends = %d, want %d", st.Appends, n)
	}
	// The whole point of group commit: far fewer fsyncs than appends.
	// Lenient bound — scheduling can split batches.
	if st.Syncs >= n {
		t.Fatalf("Syncs = %d for %d appends; group commit not batching", st.Syncs, n)
	}
	if got := collect(t, l, 0); len(got) != n {
		t.Fatalf("replayed %d, want %d", len(got), n)
	}
}

func TestEnqueueOrderIsSeqOrder(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{FlushInterval: time.Millisecond, Sync: SyncNone})
	defer l.Close()
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 100; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			mu.Lock() // models the server holding s.mu across apply+Enqueue
			tk := l.Enqueue([]byte(fmt.Sprintf("%d", i)))
			mu.Unlock()
			if err := tk.Wait(); err != nil {
				t.Errorf("wait: %v", err)
			}
		}(i)
	}
	wg.Wait()
	// Replay order must be strictly sequential regardless of goroutine
	// interleaving.
	var prev uint64
	if err := l.Replay(0, func(seq uint64, _ []byte) error {
		if seq != prev+1 {
			return fmt.Errorf("seq %d after %d", seq, prev)
		}
		prev = seq
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestSyncFailureIsSticky(t *testing.T) {
	ffs := NewFaultFS(OSFS{})
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{FlushInterval: 0, Sync: SyncAlways, FS: ffs})
	defer l.Close()
	appendN(t, l, 3, "ok")
	ffs.ArmSyncFault(0) // next fsync fails
	if _, err := l.Append([]byte("doomed")); err == nil {
		t.Fatal("Append succeeded despite injected fsync failure")
	} else if !errors.Is(err, ErrInjected) {
		t.Fatalf("error %v does not unwrap to ErrInjected", err)
	}
	if l.Err() == nil {
		t.Fatal("sticky failure not latched")
	}
	// Later appends fail fast even after the fault is disarmed: the log
	// can't know what state the file is in.
	ffs.Disarm()
	if _, err := l.Append([]byte("still-doomed")); err == nil {
		t.Fatal("Append succeeded after latched failure")
	}
	if !l.Stats().Failed {
		t.Fatal("Stats().Failed = false after latched failure")
	}
}

func TestShortWriteRecoverable(t *testing.T) {
	ffs := NewFaultFS(OSFS{})
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{FlushInterval: 0, Sync: SyncAlways, FS: ffs})
	appendN(t, l, 3, "good")
	// Arm a short write partway into the next frame: the file gains a
	// torn tail exactly as a crash mid-write would leave it.
	ffs.ArmWriteFault(7, true)
	if _, err := l.Append(bytes.Repeat([]byte("x"), 50)); err == nil {
		t.Fatal("Append succeeded despite injected short write")
	}
	l.Close()

	// Recovery sees 3 intact records and truncates the torn bytes.
	l2 := mustOpen(t, dir, quickOpts())
	defer l2.Close()
	rec := l2.Recovery()
	if rec.LastSeq != 3 {
		t.Fatalf("recovered LastSeq = %d, want 3", rec.LastSeq)
	}
	if !rec.TornTruncated {
		t.Fatal("short write did not register as torn tail")
	}
	if got := collect(t, l2, 0); len(got) != 3 {
		t.Fatalf("replayed %d, want 3", len(got))
	}
}

func TestCloseFlushesPending(t *testing.T) {
	dir := t.TempDir()
	// Long window so records are still pending when Close runs.
	l := mustOpen(t, dir, Options{FlushInterval: time.Hour, Sync: SyncAlways})
	tk := l.Enqueue([]byte("pending"))
	done := make(chan error, 1)
	go func() { done <- tk.Wait() }()
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("pending ticket failed at close: %v", err)
	}
	l2 := mustOpen(t, dir, quickOpts())
	defer l2.Close()
	if got := collect(t, l2, 0); got[1] != "pending" {
		t.Fatalf("pending record lost: %v", got)
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, quickOpts())
	l.Close()
	if _, err := l.Append([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Append after Close = %v, want ErrClosed", err)
	}
}

// TestRotateRacingEnqueue pins the fix for a race where a record enqueued
// while Rotate was mid-drain (Enqueue only takes mu, Rotate's write+fsync
// holds only wmu) could be assigned a sequence below the new segment's
// firstSeq yet be flushed as that segment's first frame — on the next Open
// the sequence mismatch read as a torn tail, silently dropping the
// acknowledged record. Hammer rotations against concurrent appends, then
// reopen and verify every acknowledged record survived.
func TestRotateRacingEnqueue(t *testing.T) {
	dir := t.TempDir()
	// A non-zero flush interval widens the window between Rotate's drain
	// and its firstSeq read that the race needed.
	l := mustOpen(t, dir, Options{FlushInterval: 200 * time.Microsecond, Sync: SyncNone})

	const n = 400
	done := make(chan struct{})
	var rotErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			if err := l.Rotate(); err != nil {
				rotErr = err
				return
			}
		}
	}()
	for i := 0; i < n; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("r-%04d", i))); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
	close(done)
	wg.Wait()
	if rotErr != nil {
		t.Fatalf("Rotate: %v", rotErr)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	reopened := mustOpen(t, dir, quickOpts())
	defer reopened.Close()
	if reopened.Recovery().TornTruncated {
		t.Fatal("clean shutdown reported torn truncation — a record landed in the wrong segment")
	}
	got := collect(t, reopened, 0)
	if len(got) != n {
		t.Fatalf("replayed %d records, want %d", len(got), n)
	}
	for i := 0; i < n; i++ {
		if want := fmt.Sprintf("r-%04d", i); got[uint64(i+1)] != want {
			t.Fatalf("seq %d = %q, want %q", i+1, got[uint64(i+1)], want)
		}
	}
}

func TestDecodeEnvelopeRejectsTrailingBytes(t *testing.T) {
	const magic = "testmag1"
	payload := []byte("payload-bytes")
	enc := EncodeEnvelope(magic, payload)

	if got, err := DecodeEnvelope(magic, enc); err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("clean decode = (%q, %v), want (%q, nil)", got, err, payload)
	}
	// A shorter envelope written over a longer file leaves trailing
	// garbage past the declared length; it must not pass validation.
	if _, err := DecodeEnvelope(magic, append(bytes.Clone(enc), "junk"...)); !errors.Is(err, ErrEnvelopeTrailing) {
		t.Fatalf("decode with trailing bytes = %v, want ErrEnvelopeTrailing", err)
	}
	if _, err := DecodeEnvelope(magic, enc[:len(enc)-1]); !errors.Is(err, ErrEnvelopeTruncated) {
		t.Fatalf("decode truncated = %v, want ErrEnvelopeTruncated", err)
	}
}

func TestParseSyncMode(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want SyncMode
		ok   bool
	}{
		{"always", SyncAlways, true},
		{"", SyncAlways, true},
		{"interval", SyncInterval, true},
		{"none", SyncNone, true},
		{"bogus", 0, false},
	} {
		got, err := ParseSyncMode(tc.in)
		if tc.ok != (err == nil) || (tc.ok && got != tc.want) {
			t.Errorf("ParseSyncMode(%q) = (%v, %v), want (%v, ok=%v)", tc.in, got, err, tc.want, tc.ok)
		}
	}
}
