package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Envelope is the self-validating container both the server checkpoints and
// the analysis snapshot (persist.go) wrap their gob payloads in:
//
//	[8-byte magic][u64 payload length LE][u32 crc32c(payload) LE][payload]
//
// The length catches truncation (and trailing garbage) before the checksum
// is even consulted, the checksum catches bit rot and torn writes, and the
// magic catches feeding the wrong kind of file to a loader. DecodeEnvelope
// classifies the failure modes with distinct errors so callers can report
// them clearly.

const envelopeHeaderSize = 8 + 8 + 4

var (
	// ErrEnvelopeMagic means the file does not start with the expected
	// magic — it is not this kind of file (or an older, unversioned one).
	ErrEnvelopeMagic = errors.New("bad magic")
	// ErrEnvelopeTruncated means the file ends before the declared payload
	// length — a partial write or truncated copy.
	ErrEnvelopeTruncated = errors.New("truncated")
	// ErrEnvelopeChecksum means the payload bytes do not match their
	// CRC32C — corruption.
	ErrEnvelopeChecksum = errors.New("checksum mismatch")
	// ErrEnvelopeTrailing means the file continues past the declared
	// payload length — trailing garbage, e.g. a larger file partially
	// overwritten with a shorter envelope.
	ErrEnvelopeTrailing = errors.New("trailing bytes")
)

// EncodeEnvelope frames payload under an 8-byte magic. Panics if magic is
// not exactly 8 bytes — magics are compile-time constants.
func EncodeEnvelope(magic string, payload []byte) []byte {
	if len(magic) != 8 {
		panic(fmt.Sprintf("wal: envelope magic %q must be 8 bytes", magic))
	}
	out := make([]byte, envelopeHeaderSize+len(payload))
	copy(out, magic)
	binary.LittleEndian.PutUint64(out[8:16], uint64(len(payload)))
	binary.LittleEndian.PutUint32(out[16:20], crc32.Checksum(payload, crcTable))
	copy(out[envelopeHeaderSize:], payload)
	return out
}

// DecodeEnvelope validates the framing and returns the payload.
func DecodeEnvelope(magic string, data []byte) ([]byte, error) {
	if len(magic) != 8 {
		panic(fmt.Sprintf("wal: envelope magic %q must be 8 bytes", magic))
	}
	if len(data) < envelopeHeaderSize {
		if len(data) >= 8 && string(data[:8]) != magic {
			return nil, fmt.Errorf("%w: got %q, want %q", ErrEnvelopeMagic, data[:8], magic)
		}
		return nil, fmt.Errorf("%w: %d bytes, need at least the %d-byte header",
			ErrEnvelopeTruncated, len(data), envelopeHeaderSize)
	}
	if string(data[:8]) != magic {
		return nil, fmt.Errorf("%w: got %q, want %q", ErrEnvelopeMagic, data[:8], magic)
	}
	length := binary.LittleEndian.Uint64(data[8:16])
	crc := binary.LittleEndian.Uint32(data[16:20])
	payload := data[envelopeHeaderSize:]
	if uint64(len(payload)) < length {
		return nil, fmt.Errorf("%w: payload is %d bytes, header declares %d",
			ErrEnvelopeTruncated, len(payload), length)
	}
	if uint64(len(payload)) > length {
		return nil, fmt.Errorf("%w: %d bytes past the declared %d-byte payload",
			ErrEnvelopeTrailing, uint64(len(payload))-length, length)
	}
	if crc32.Checksum(payload, crcTable) != crc {
		return nil, ErrEnvelopeChecksum
	}
	return payload, nil
}
