package wal

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"sort"
	"syscall"
)

// FS is the filesystem surface the durability layer writes through. The
// indirection exists for the fault-injection harness: production code uses
// OSFS, tests wrap it in a FaultFS that injects short writes, fsync
// failures and crash points without touching the log's own logic.
type FS interface {
	// MkdirAll creates dir and parents.
	MkdirAll(dir string) error
	// Create opens path for writing, truncating any existing file.
	Create(path string) (File, error)
	// OpenAppend opens path for appending, creating it if absent.
	OpenAppend(path string) (File, error)
	// Open opens path read-only.
	Open(path string) (File, error)
	// ReadDir lists the file names (not paths) in dir, sorted.
	ReadDir(dir string) ([]string, error)
	// Stat returns the size of path.
	Stat(path string) (int64, error)
	// Truncate cuts path to size bytes.
	Truncate(path string, size int64) error
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes path.
	Remove(path string) error
	// SyncDir fsyncs the directory itself so renames and creates inside it
	// are durable.
	SyncDir(dir string) error
}

// File is the per-file surface: sequential reads or writes plus Sync.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	// Sync flushes the file's data to stable storage (fsync).
	Sync() error
}

// OSFS is the real filesystem.
type OSFS struct{}

// MkdirAll implements FS.
func (OSFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

// Create implements FS.
func (OSFS) Create(path string) (File, error) { return os.Create(path) }

// OpenAppend implements FS.
func (OSFS) OpenAppend(path string) (File, error) {
	return os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
}

// Open implements FS.
func (OSFS) Open(path string) (File, error) { return os.Open(path) }

// ReadDir implements FS.
func (OSFS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// Stat implements FS.
func (OSFS) Stat(path string) (int64, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}

// Truncate implements FS.
func (OSFS) Truncate(path string, size int64) error { return os.Truncate(path, size) }

// Rename implements FS.
func (OSFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

// Remove implements FS.
func (OSFS) Remove(path string) error { return os.Remove(path) }

// SyncDir implements FS. On platforms where directories cannot be fsynced
// (notably Windows) the error is swallowed: the rename itself is still
// atomic, only its durability ordering is weaker.
func (OSFS) SyncDir(dir string) error {
	d, err := os.Open(filepath.Clean(dir))
	if err != nil {
		return err
	}
	//tagdm:allow-discard directory handle closed after fsync; close errors carry no durability signal
	defer d.Close()
	if err := d.Sync(); err != nil && !isSyncUnsupported(err) {
		return err
	}
	return nil
}

func isSyncUnsupported(err error) bool {
	// Filesystems that cannot fsync a directory handle report EINVAL,
	// ENOTSUP or EBADF; treat those as "best effort done". Anything else
	// (EIO, permission errors) is a real failure and must propagate.
	return errors.Is(err, syscall.EINVAL) ||
		errors.Is(err, syscall.EBADF) ||
		errors.Is(err, syscall.ENOTSUP)
}
