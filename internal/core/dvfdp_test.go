package core

import (
	"context"

	"testing"

	"tagdm/internal/mining"
)

// These tests target the DV-FDP refinements layered on the paper's
// Algorithm 2: the support-feasibility gate, the floor sweep, anchored
// starts, and the swap local search.

func TestDVFDPLocalSearchImproves(t *testing.T) {
	e := buildEngine(t)
	spec, _ := PaperProblem(6, 3, 5, 0.5, 0.5)
	with, err := e.DVFDP(context.Background(), spec, FDPOptions{Mode: Fold})
	if err != nil {
		t.Fatal(err)
	}
	without, err := e.DVFDP(context.Background(), spec, FDPOptions{Mode: Fold, DisableLocalSearch: true})
	if err != nil {
		t.Fatal(err)
	}
	if !with.Found {
		t.Fatal("local-search run found nothing")
	}
	if without.Found && with.Objective < without.Objective-1e-9 {
		t.Fatalf("local search degraded quality: %v -> %v", without.Objective, with.Objective)
	}
}

func TestDVFDPSupportGate(t *testing.T) {
	e := buildEngine(t)
	// Groups have 5 tuples each; k=2 means max support 10. A floor of 10
	// forces the selection to honor it; 11 is infeasible.
	feasible, _ := PaperProblem(6, 2, 10, 0.3, 0.3)
	res, err := e.DVFDP(context.Background(), feasible, FDPOptions{Mode: Fold})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatal("feasible support rejected")
	}
	if res.Support < 10 {
		t.Fatalf("support = %d", res.Support)
	}
	infeasible, _ := PaperProblem(6, 2, 11, 0.3, 0.3)
	res2, err := e.DVFDP(context.Background(), infeasible, FDPOptions{Mode: Fold})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Found {
		t.Fatal("infeasible support satisfied")
	}
}

func TestLocalImproveKeepsFeasibility(t *testing.T) {
	e := buildEngine(t)
	spec, _ := PaperProblem(4, 3, 5, 0.5, 0.5)
	res, err := e.DVFDP(context.Background(), spec, FDPOptions{Mode: Fold})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Skip("no feasible start in this world")
	}
	improved, _, _ := e.localImprove(context.Background(), res.Groups, spec, e.scorer(spec))
	if !e.ConstraintsSatisfied(improved, spec) {
		t.Fatal("local search returned infeasible set")
	}
	if e.ObjectiveScore(improved, spec) < res.Objective-1e-9 {
		t.Fatal("local search reduced objective")
	}
}

func TestLocalImproveIdempotentOnOptimum(t *testing.T) {
	e := buildEngine(t)
	spec, _ := PaperProblem(6, 2, 5, 0.5, 0.5)
	exact, err := e.Exact(context.Background(), spec, ExactOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !exact.Found {
		t.Skip("no exact optimum")
	}
	improved, _, _ := e.localImprove(context.Background(), exact.Groups, spec, e.scorer(spec))
	got := e.ObjectiveScore(improved, spec)
	if got > exact.Objective+1e-9 {
		t.Fatalf("local search beat the exact optimum: %v > %v", got, exact.Objective)
	}
	if got < exact.Objective-1e-9 {
		t.Fatalf("local search degraded the optimum: %v < %v", got, exact.Objective)
	}
}

func TestAnchoredStartFeasiblePartials(t *testing.T) {
	e := buildEngine(t)
	spec, _ := PaperProblem(6, 3, 5, 0.5, 0.5)
	div := e.PairFunc(mining.Tags, mining.Diversity)
	dist := func(i, j int) float64 { return div(e.Groups[i], e.Groups[j]) }
	set := e.anchoredStart(e.Groups[0], spec, e.scorer(spec), dist, 3)
	if set == nil {
		t.Skip("no anchored completion in this world")
	}
	if len(set) != 3 {
		t.Fatalf("anchored start size %d", len(set))
	}
	if set[0] != e.Groups[0] {
		t.Fatal("anchor not first")
	}
	seen := map[int]bool{}
	for _, g := range set {
		if seen[g.ID] {
			t.Fatal("duplicate group in anchored start")
		}
		seen[g.ID] = true
	}
	for _, c := range spec.Constraints {
		if e.miningFunc(c.Dim, c.Meas).Eval(set) < c.Threshold {
			t.Fatalf("anchored start violates %v", c)
		}
	}
}

func TestDVFDPFiStaysPurePostFilter(t *testing.T) {
	// In Filter mode the greedy must not consult constraints: with an
	// impossible pairwise constraint, Fold can only return null after
	// failing to seed, while Filter still runs the unconstrained greedy
	// and then nulls at the post-check. Both must be null; neither may
	// error.
	e := buildEngine(t)
	spec := ProblemSpec{
		KLo: 1, KHi: 2,
		Constraints: []Constraint{{Dim: mining.Users, Meas: mining.Similarity, Threshold: 0.99}},
		Objectives:  []Objective{{Dim: mining.Tags, Meas: mining.Diversity, Weight: 1}},
		Name:        "impossible",
	}
	for _, mode := range []ConstraintMode{Filter, Fold} {
		res, err := e.DVFDP(context.Background(), spec, FDPOptions{Mode: mode})
		if err != nil {
			t.Fatal(err)
		}
		// The engine world does contain identical user descriptions
		// (same profile, different items), so threshold 0.99 is actually
		// satisfiable there; just require feasibility when found.
		if res.Found && !e.ConstraintsSatisfied(res.Groups, spec) {
			t.Fatalf("mode %v returned infeasible set", mode)
		}
	}
}

func TestDVFDPKOne(t *testing.T) {
	e := buildEngine(t)
	spec := ProblemSpec{
		KLo: 1, KHi: 1,
		Objectives: []Objective{{Dim: mining.Tags, Meas: mining.Diversity, Weight: 1}},
		Name:       "singleton",
	}
	res, err := e.DVFDP(context.Background(), spec, FDPOptions{Mode: Fold})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found || len(res.Groups) != 1 {
		t.Fatalf("singleton run: found=%v groups=%d", res.Found, len(res.Groups))
	}
}

func TestDVFDPEmptyEngine(t *testing.T) {
	e := buildEngine(t)
	empty := &Engine{Store: e.Store, Groups: nil, Sigs: nil, cache: newMatrixCache()}
	spec, _ := PaperProblem(6, 2, 0, 0.5, 0.5)
	res, err := empty.DVFDP(context.Background(), spec, FDPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Found {
		t.Fatal("found groups in empty engine")
	}
}

func TestDVFDPCandidatesCounted(t *testing.T) {
	e := buildEngine(t)
	spec, _ := PaperProblem(6, 3, 5, 0.5, 0.5)
	res, err := e.DVFDP(context.Background(), spec, FDPOptions{Mode: Fold})
	if err != nil {
		t.Fatal(err)
	}
	if res.Found && res.CandidatesExamined == 0 {
		t.Fatal("no work recorded")
	}
}
