package core

import (
	"fmt"
	"sync"
	"time"

	"tagdm/internal/groups"
	"tagdm/internal/mining"
	"tagdm/internal/signature"
	"tagdm/internal/store"
)

// Engine binds a store, its enumerated groups and their tag signatures, and
// evaluates TagDM problem specs with any of the algorithm families.
type Engine struct {
	Store  *store.Store
	Groups []*groups.Group
	Sigs   []signature.Signature

	// cache is the matrix lifecycle this engine scores through: pair
	// matrices build lazily (single-flight) on first use, pair-function
	// overrides live beside them, and a budget bounds residency. A fresh
	// engine gets a private cache; shard replicas of one snapshot adopt
	// the base engine's cache (AdoptCache) so an epoch's matrices are
	// built once no matter how many replicas score through them, and
	// Maintainer.Snapshot links successive epochs' caches so clean rows
	// carry over instead of rebuilding from scratch.
	cache *MatrixCache

	// layoutOnce computes the posting-list layout census (how many group
	// tuple bitmaps are container-compressed vs dense) once per engine;
	// the groups' layouts never change after construction, and solvers
	// stamp the census on every Result.
	layoutOnce        sync.Once
	postingCompressed int
	postingDense      int
}

type pairKey struct {
	dim  mining.Dimension
	meas mining.Measure
}

// NewEngine prepares an engine. Groups must carry their enumeration IDs
// (0..len-1) and sigs must be indexed by group ID.
func NewEngine(s *store.Store, gs []*groups.Group, sigs []signature.Signature) (*Engine, error) {
	if len(gs) != len(sigs) {
		return nil, fmt.Errorf("core: %d groups but %d signatures", len(gs), len(sigs))
	}
	for i, g := range gs {
		if g.ID != i {
			return nil, fmt.Errorf("core: group at position %d has ID %d; re-enumerate before building the engine", i, g.ID)
		}
	}
	e := &Engine{
		Store:  s,
		Groups: gs,
		Sigs:   sigs,
		cache:  newMatrixCache(),
	}
	return e, nil
}

// Cache exposes the engine's matrix cache for lifecycle wiring: budget
// configuration, epoch carry-over (MatrixCache.AttachCarry) and stats
// export. Solvers never touch it directly.
func (e *Engine) Cache() *MatrixCache { return e.cache }

// AdoptCache points this engine at from's matrix cache, discarding its
// own. Replicas of one snapshot adopt the base engine's cache so the
// epoch's matrices — and any SetPairFunc overrides — are shared rather
// than rebuilt (and re-installed) per replica; this is only sound when
// both engines hold bit-identical groups and signatures, which snapshot
// replication guarantees. Call before the engine serves queries.
func (e *Engine) AdoptCache(from *Engine) { e.cache = from.cache }

// SetMatrixBudget caps the resident bytes of this engine's pair-matrix
// cache (0 = unlimited). Above the budget the coldest bindings are
// evicted and one-shot solves degrade to lazy or blocked-row scoring;
// results are unchanged, only the time/memory trade moves.
func (e *Engine) SetMatrixBudget(bytes int64) { e.cache.SetBudget(bytes) }

// MatrixStats reports the engine's matrix-cache residency and eviction
// counters, exported by the server as tagdm_matrix_bytes and
// tagdm_matrix_evictions_total.
func (e *Engine) MatrixStats() MatrixCacheStats { return e.cache.Stats() }

// PairFunc returns the concrete pair function for a binding: the
// SetPairFunc override when one is installed, the paper's standard
// measure otherwise.
func (e *Engine) PairFunc(dim mining.Dimension, meas mining.Measure) mining.PairFunc {
	if f, ok := e.cache.override(pairKey{dim, meas}); ok {
		return f
	}
	return mining.For(e.Store, e.Sigs, dim, meas).Pair
}

// SetPairFunc overrides the concrete measure for one (dimension, measure)
// binding — e.g. swapping structural item similarity for the rating-aware
// Jaccard of Section 2.1.1, or a domain-aware value comparison. The paper
// deliberately leaves the measures pluggable; this is the plug. Pass the
// similarity form and the engine derives nothing: each binding is set
// independently, so set both (dim, Similarity) and (dim, Diversity) when
// both appear in specs.
func (e *Engine) SetPairFunc(dim mining.Dimension, meas mining.Measure, f mining.PairFunc) {
	// The cache drops any matrix embodying the old measure and bumps the
	// binding version so an in-flight build of it cannot repopulate the
	// cache. Replicas sharing this engine's cache see the override too.
	e.cache.setOverride(pairKey{dim, meas}, f)
}

// PairMatrix returns the precomputed pair matrix for a binding, building it
// over all engine groups on first use (n*(n-1)/2 float64 per binding, rows
// parallelized across GOMAXPROCS). Concurrent first calls single-flight
// behind the cache: one builds, the rest share the result. A build that
// raced a SetPairFunc override is discarded and retried against the new
// function.
func (e *Engine) PairMatrix(dim mining.Dimension, meas mining.Measure) *mining.PairMatrix {
	m, _ := e.pairMatrixTracked(dim, meas)
	return m
}

// pairMatrixTracked is PairMatrix plus the cache-outcome report solvers
// aggregate into Result.MatrixBuilds/MatrixRebuilds/MatrixHits: exactly
// one caller per physical materialization observes matrixBuilt (scratch)
// or matrixRebuilt (dirty-row carry from the previous epoch); everyone
// else — including callers that waited on that build — observes
// matrixHit.
func (e *Engine) pairMatrixTracked(dim mining.Dimension, meas mining.Measure) (*mining.PairMatrix, matrixOutcome) {
	return e.cache.matrix(pairKey{dim, meas}, func(prev *mining.PairMatrix, dirty []bool) *mining.PairMatrix {
		pair := e.PairFunc(dim, meas)
		if prev != nil {
			return prev.RebuildRows(e.Groups, pair, dirty, 0)
		}
		return mining.NewPairMatrix(e.Groups, pair, 0)
	})
}

// postingLayout reports how many of the engine's group tuple bitmaps are
// container-compressed vs dense, computed once and cached.
func (e *Engine) postingLayout() (compressed, dense int) {
	e.layoutOnce.Do(func() {
		for _, g := range e.Groups {
			if g.Tuples.IsCompressed() {
				e.postingCompressed++
			} else {
				e.postingDense++
			}
		}
	})
	return e.postingCompressed, e.postingDense
}

// PrewarmMatrices builds every pair matrix a spec's constraints and
// objectives will read, so later solver runs (and concurrent requests
// sharing the engine) start on warm lookups.
func (e *Engine) PrewarmMatrices(spec ProblemSpec) {
	for _, c := range spec.Constraints {
		e.PairMatrix(c.Dim, c.Meas)
	}
	for _, o := range spec.Objectives {
		e.PairMatrix(o.Dim, o.Meas)
	}
}

// miningFunc builds the full aggregate function for a binding.
func (e *Engine) miningFunc(dim mining.Dimension, meas mining.Measure) mining.Func {
	return mining.Func{Dim: dim, Meas: meas, Pair: e.PairFunc(dim, meas), Agg: mining.Mean}
}

// ObjectiveScore computes the weighted objective sum of a candidate set.
func (e *Engine) ObjectiveScore(set []*groups.Group, spec ProblemSpec) float64 {
	var total float64
	for _, o := range spec.Objectives {
		total += o.Weight * e.miningFunc(o.Dim, o.Meas).Eval(set)
	}
	return total
}

// ConstraintsSatisfied reports whether a candidate set meets every hard
// constraint plus the support floor. Sets smaller than 2 trivially satisfy
// pair-based constraints (no pair evidence against them) but still face the
// support check.
func (e *Engine) ConstraintsSatisfied(set []*groups.Group, spec ProblemSpec) bool {
	if len(set) < spec.KLo || len(set) > spec.KHi {
		return false
	}
	for _, c := range spec.Constraints {
		if len(set) < 2 {
			continue
		}
		if e.miningFunc(c.Dim, c.Meas).Eval(set) < c.Threshold {
			return false
		}
	}
	if spec.MinSupport > 0 {
		// Fast reject: the union can never exceed the size sum, so a
		// cheap sum below the floor avoids the bitmap union entirely.
		// This matters for Exact, which checks millions of candidates.
		sum := 0
		for _, g := range set {
			sum += g.Size()
		}
		if sum < spec.MinSupport {
			return false
		}
		if groups.Support(set) < spec.MinSupport {
			return false
		}
	}
	return true
}

// Result is the outcome of one algorithm run.
type Result struct {
	// Found reports whether any feasible set was produced; a null result
	// (paper's terminology) has Found=false.
	Found bool
	// Groups is the returned set Gopt (or Gapp for approximate algorithms).
	Groups []*groups.Group
	// Objective is the weighted objective score of Groups.
	Objective float64
	// Support is the group support of Groups.
	Support int
	// Algorithm names the producing algorithm.
	Algorithm string
	// Elapsed is the wall-clock runtime of the run.
	Elapsed time.Duration
	// CandidatesExamined counts candidate sets (Exact) or buckets (LSH) or
	// greedy adds (FDP) evaluated, for reporting. For Exact it counts leaves
	// the enumeration actually visited: with branch-and-bound pruning on,
	// CandidatesExamined + CandidatesPruned equals the full enumeration size
	// (the count a pruning-disabled run examines).
	CandidatesExamined int64
	// CandidatesPruned counts candidate sets skipped by branch-and-bound
	// subtree cuts (Exact only; always 0 for the approximate algorithms and
	// for pruning-disabled runs). Pruned candidates are reported separately
	// from examined ones — they were proven unable to beat the incumbent,
	// never evaluated.
	CandidatesPruned int64
	// Stages is the per-phase wall-time breakdown of the run, keyed by the
	// Stage* constants. Repeated phases (SM-LSH relaxation rounds) merge
	// into one entry per name; entries appear in first-occurrence order.
	Stages []Stage
	// MatrixBuilds counts pair matrices this run physically materialized
	// from scratch; MatrixRebuilds counts physical materializations that
	// reused clean rows carried from the previous snapshot epoch (a
	// subset of the same cost class, far cheaper). MatrixHits counts
	// bindings served from the engine cache, including callers that
	// waited on another solve's in-flight build; MatrixLazy counts
	// bindings served without any matrix at all (lazy or blocked-row
	// scoring on gated one-shot solves). Per binding exactly one of the
	// four fires, so builds + rebuilds + hits + lazy equals bindings
	// touched — and a build shared across shard replicas is counted once.
	MatrixBuilds   int
	MatrixRebuilds int
	MatrixHits     int
	MatrixLazy     int
	// PostingsCompressed/PostingsDense census the engine's group posting
	// bitmaps by layout (per engine, not per run — stamped for reporting).
	PostingsCompressed int
	PostingsDense      int
}

// Stage is one named phase of a solver run with its accumulated wall time.
type Stage struct {
	Name string        `json:"stage"`
	Wall time.Duration `json:"wall"`
}

// addStage accumulates wall time under a stage name, merging repeats.
func (r *Result) addStage(name string, d time.Duration) {
	addStageTo(&r.Stages, name, d)
}

// addStageTo is the stage-folding shared by Result and shard Partials:
// repeats merge into the first occurrence, so order reflects first entry.
func addStageTo(stages *[]Stage, name string, d time.Duration) {
	for i := range *stages {
		if (*stages)[i].Name == name {
			(*stages)[i].Wall += d
			return
		}
	}
	*stages = append(*stages, Stage{Name: name, Wall: d})
}

// StageWall returns the accumulated wall time of a named stage (0 when
// the run never entered it).
func (r *Result) StageWall(name string) time.Duration {
	for _, s := range r.Stages {
		if s.Name == name {
			return s.Wall
		}
	}
	return 0
}

// Describe renders the result's groups through the store dictionaries.
func (r Result) Describe(s *store.Store) []string {
	out := make([]string, len(r.Groups))
	for i, g := range r.Groups {
		out[i] = g.Describe(s)
	}
	return out
}

// finish stamps common result fields. The objective is recomputed through
// cached pair matrices when present (pure lookups) and through the lazy
// pair source otherwise — never the naive O(k²) Func.Eval re-derivation,
// and never a forced matrix build for one k-set. All three paths are
// bit-identical (pinned by TestFinishObjectiveMatchesNaive): engine
// objectives are Mean-aggregated and every source visits pairs in Eval's
// row-major order.
func (e *Engine) finish(r *Result, spec ProblemSpec, start time.Time) {
	r.Elapsed = time.Since(start)
	r.PostingsCompressed, r.PostingsDense = e.postingLayout()
	if r.Found {
		ids := make([]int, len(r.Groups))
		for i, g := range r.Groups {
			ids[i] = g.ID
		}
		var total float64
		for _, o := range spec.Objectives {
			var src mining.PairSource
			if m := e.cache.peek(pairKey{o.Dim, o.Meas}); m != nil {
				src = m
			} else {
				src = mining.NewLazyPairs(e.Groups, e.PairFunc(o.Dim, o.Meas))
			}
			total += o.Weight * src.MeanOver(ids)
		}
		r.Objective = total
		r.Support = groups.Support(r.Groups)
	}
}
