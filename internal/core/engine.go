package core

import (
	"fmt"
	"sync"
	"time"

	"tagdm/internal/groups"
	"tagdm/internal/mining"
	"tagdm/internal/signature"
	"tagdm/internal/store"
)

// Engine binds a store, its enumerated groups and their tag signatures, and
// evaluates TagDM problem specs with any of the algorithm families.
type Engine struct {
	Store  *store.Store
	Groups []*groups.Group
	Sigs   []signature.Signature

	// pairFuncs caches the concrete pair function per (dimension, measure),
	// and matrices the corresponding precomputed PairMatrix over all engine
	// groups; mu guards both so concurrent Solves on one engine (a server
	// answering parallel analyze requests against a shared snapshot) are
	// safe. Matrices build lazily on first use and persist for the engine's
	// lifetime, so every solver run — and every concurrent request hitting
	// one snapshot epoch — shares the same pay-once pair computations.
	mu        sync.Mutex
	pairFuncs map[pairKey]mining.PairFunc
	matrices  map[pairKey]*mining.PairMatrix
	// pairVers counts SetPairFunc overrides per binding; a matrix built
	// outside the lock is published only if the binding's version is
	// unchanged, so a racing override can never be shadowed by a stale
	// matrix.
	pairVers map[pairKey]uint64

	// layoutOnce computes the posting-list layout census (how many group
	// tuple bitmaps are container-compressed vs dense) once per engine;
	// the groups' layouts never change after construction, and solvers
	// stamp the census on every Result.
	layoutOnce        sync.Once
	postingCompressed int
	postingDense      int
}

type pairKey struct {
	dim  mining.Dimension
	meas mining.Measure
}

// NewEngine prepares an engine. Groups must carry their enumeration IDs
// (0..len-1) and sigs must be indexed by group ID.
func NewEngine(s *store.Store, gs []*groups.Group, sigs []signature.Signature) (*Engine, error) {
	if len(gs) != len(sigs) {
		return nil, fmt.Errorf("core: %d groups but %d signatures", len(gs), len(sigs))
	}
	for i, g := range gs {
		if g.ID != i {
			return nil, fmt.Errorf("core: group at position %d has ID %d; re-enumerate before building the engine", i, g.ID)
		}
	}
	e := &Engine{
		Store:     s,
		Groups:    gs,
		Sigs:      sigs,
		pairFuncs: make(map[pairKey]mining.PairFunc),
		matrices:  make(map[pairKey]*mining.PairMatrix),
		pairVers:  make(map[pairKey]uint64),
	}
	return e, nil
}

// PairFunc returns the cached concrete pair function for a binding.
func (e *Engine) PairFunc(dim mining.Dimension, meas mining.Measure) mining.PairFunc {
	k := pairKey{dim, meas}
	e.mu.Lock()
	defer e.mu.Unlock()
	if f, ok := e.pairFuncs[k]; ok {
		return f
	}
	f := mining.For(e.Store, e.Sigs, dim, meas).Pair
	e.pairFuncs[k] = f
	return f
}

// SetPairFunc overrides the concrete measure for one (dimension, measure)
// binding — e.g. swapping structural item similarity for the rating-aware
// Jaccard of Section 2.1.1, or a domain-aware value comparison. The paper
// deliberately leaves the measures pluggable; this is the plug. Pass the
// similarity form and the engine derives nothing: each binding is set
// independently, so set both (dim, Similarity) and (dim, Diversity) when
// both appear in specs.
func (e *Engine) SetPairFunc(dim mining.Dimension, meas mining.Measure, f mining.PairFunc) {
	e.mu.Lock()
	defer e.mu.Unlock()
	k := pairKey{dim, meas}
	e.pairFuncs[k] = f
	// The cached matrix embodies the old measure; drop it (and bump the
	// version so an in-flight build of the old measure cannot repopulate
	// the cache) so the next solver run rebuilds from f.
	delete(e.matrices, k)
	e.pairVers[k]++
}

// PairMatrix returns the precomputed pair matrix for a binding, building it
// over all engine groups on first use (n*(n-1)/2 float64 per binding, rows
// parallelized across GOMAXPROCS). Two racing first calls may both build;
// whichever publishes first wins, and both results are identical because
// builds read the same immutable groups through the same pair function. A
// build that raced a SetPairFunc override is discarded and retried against
// the new function.
func (e *Engine) PairMatrix(dim mining.Dimension, meas mining.Measure) *mining.PairMatrix {
	m, _ := e.pairMatrixTracked(dim, meas)
	return m
}

// pairMatrixTracked is PairMatrix plus a cache-outcome report: built is
// true when this call performed a fresh O(n^2) build (even one that lost
// a publication race — the cost was paid either way), false on a cache
// hit. Solvers aggregate the outcomes into Result.MatrixBuilds/
// MatrixHits and the server exports them as matrix-cache counters.
func (e *Engine) pairMatrixTracked(dim mining.Dimension, meas mining.Measure) (m *mining.PairMatrix, built bool) {
	k := pairKey{dim, meas}
	for {
		e.mu.Lock()
		if m, ok := e.matrices[k]; ok {
			e.mu.Unlock()
			return m, built
		}
		ver := e.pairVers[k]
		e.mu.Unlock()
		// Build outside the lock: a multi-second build must not stall
		// solvers that only need already-cached bindings (or the pairFuncs
		// map).
		built = true
		m := mining.NewPairMatrix(e.Groups, e.PairFunc(dim, meas), 0)
		e.mu.Lock()
		if exist, ok := e.matrices[k]; ok {
			e.mu.Unlock()
			return exist, built
		}
		if e.pairVers[k] != ver {
			// SetPairFunc landed mid-build; this matrix holds the old
			// measure's values. Retry with the current function.
			e.mu.Unlock()
			continue
		}
		e.matrices[k] = m
		e.mu.Unlock()
		return m, built
	}
}

// postingLayout reports how many of the engine's group tuple bitmaps are
// container-compressed vs dense, computed once and cached.
func (e *Engine) postingLayout() (compressed, dense int) {
	e.layoutOnce.Do(func() {
		for _, g := range e.Groups {
			if g.Tuples.IsCompressed() {
				e.postingCompressed++
			} else {
				e.postingDense++
			}
		}
	})
	return e.postingCompressed, e.postingDense
}

// PrewarmMatrices builds every pair matrix a spec's constraints and
// objectives will read, so later solver runs (and concurrent requests
// sharing the engine) start on warm lookups.
func (e *Engine) PrewarmMatrices(spec ProblemSpec) {
	for _, c := range spec.Constraints {
		e.PairMatrix(c.Dim, c.Meas)
	}
	for _, o := range spec.Objectives {
		e.PairMatrix(o.Dim, o.Meas)
	}
}

// miningFunc builds the full aggregate function for a binding.
func (e *Engine) miningFunc(dim mining.Dimension, meas mining.Measure) mining.Func {
	return mining.Func{Dim: dim, Meas: meas, Pair: e.PairFunc(dim, meas), Agg: mining.Mean}
}

// ObjectiveScore computes the weighted objective sum of a candidate set.
func (e *Engine) ObjectiveScore(set []*groups.Group, spec ProblemSpec) float64 {
	var total float64
	for _, o := range spec.Objectives {
		total += o.Weight * e.miningFunc(o.Dim, o.Meas).Eval(set)
	}
	return total
}

// ConstraintsSatisfied reports whether a candidate set meets every hard
// constraint plus the support floor. Sets smaller than 2 trivially satisfy
// pair-based constraints (no pair evidence against them) but still face the
// support check.
func (e *Engine) ConstraintsSatisfied(set []*groups.Group, spec ProblemSpec) bool {
	if len(set) < spec.KLo || len(set) > spec.KHi {
		return false
	}
	for _, c := range spec.Constraints {
		if len(set) < 2 {
			continue
		}
		if e.miningFunc(c.Dim, c.Meas).Eval(set) < c.Threshold {
			return false
		}
	}
	if spec.MinSupport > 0 {
		// Fast reject: the union can never exceed the size sum, so a
		// cheap sum below the floor avoids the bitmap union entirely.
		// This matters for Exact, which checks millions of candidates.
		sum := 0
		for _, g := range set {
			sum += g.Size()
		}
		if sum < spec.MinSupport {
			return false
		}
		if groups.Support(set) < spec.MinSupport {
			return false
		}
	}
	return true
}

// Result is the outcome of one algorithm run.
type Result struct {
	// Found reports whether any feasible set was produced; a null result
	// (paper's terminology) has Found=false.
	Found bool
	// Groups is the returned set Gopt (or Gapp for approximate algorithms).
	Groups []*groups.Group
	// Objective is the weighted objective score of Groups.
	Objective float64
	// Support is the group support of Groups.
	Support int
	// Algorithm names the producing algorithm.
	Algorithm string
	// Elapsed is the wall-clock runtime of the run.
	Elapsed time.Duration
	// CandidatesExamined counts candidate sets (Exact) or buckets (LSH) or
	// greedy adds (FDP) evaluated, for reporting. For Exact it counts leaves
	// the enumeration actually visited: with branch-and-bound pruning on,
	// CandidatesExamined + CandidatesPruned equals the full enumeration size
	// (the count a pruning-disabled run examines).
	CandidatesExamined int64
	// CandidatesPruned counts candidate sets skipped by branch-and-bound
	// subtree cuts (Exact only; always 0 for the approximate algorithms and
	// for pruning-disabled runs). Pruned candidates are reported separately
	// from examined ones — they were proven unable to beat the incumbent,
	// never evaluated.
	CandidatesPruned int64
	// Stages is the per-phase wall-time breakdown of the run, keyed by the
	// Stage* constants. Repeated phases (SM-LSH relaxation rounds) merge
	// into one entry per name; entries appear in first-occurrence order.
	Stages []Stage
	// MatrixBuilds counts pair matrices this run materialized from
	// scratch; MatrixHits counts bindings served from the engine cache.
	MatrixBuilds int
	MatrixHits   int
	// PostingsCompressed/PostingsDense census the engine's group posting
	// bitmaps by layout (per engine, not per run — stamped for reporting).
	PostingsCompressed int
	PostingsDense      int
}

// Stage is one named phase of a solver run with its accumulated wall time.
type Stage struct {
	Name string        `json:"stage"`
	Wall time.Duration `json:"wall"`
}

// addStage accumulates wall time under a stage name, merging repeats.
func (r *Result) addStage(name string, d time.Duration) {
	addStageTo(&r.Stages, name, d)
}

// addStageTo is the stage-folding shared by Result and shard Partials:
// repeats merge into the first occurrence, so order reflects first entry.
func addStageTo(stages *[]Stage, name string, d time.Duration) {
	for i := range *stages {
		if (*stages)[i].Name == name {
			(*stages)[i].Wall += d
			return
		}
	}
	*stages = append(*stages, Stage{Name: name, Wall: d})
}

// StageWall returns the accumulated wall time of a named stage (0 when
// the run never entered it).
func (r *Result) StageWall(name string) time.Duration {
	for _, s := range r.Stages {
		if s.Name == name {
			return s.Wall
		}
	}
	return 0
}

// Describe renders the result's groups through the store dictionaries.
func (r Result) Describe(s *store.Store) []string {
	out := make([]string, len(r.Groups))
	for i, g := range r.Groups {
		out[i] = g.Describe(s)
	}
	return out
}

// finish stamps common result fields.
func (e *Engine) finish(r *Result, spec ProblemSpec, start time.Time) {
	r.Elapsed = time.Since(start)
	r.PostingsCompressed, r.PostingsDense = e.postingLayout()
	if r.Found {
		r.Objective = e.ObjectiveScore(r.Groups, spec)
		r.Support = groups.Support(r.Groups)
	}
}
