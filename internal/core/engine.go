package core

import (
	"fmt"
	"sync"
	"time"

	"tagdm/internal/groups"
	"tagdm/internal/mining"
	"tagdm/internal/signature"
	"tagdm/internal/store"
)

// Engine binds a store, its enumerated groups and their tag signatures, and
// evaluates TagDM problem specs with any of the algorithm families.
type Engine struct {
	Store  *store.Store
	Groups []*groups.Group
	Sigs   []signature.Signature

	// pairFuncs caches the concrete pair function per (dimension, measure);
	// mu guards it so concurrent Solves on one engine (a server answering
	// parallel analyze requests against a shared snapshot) are safe.
	mu        sync.Mutex
	pairFuncs map[pairKey]mining.PairFunc
}

type pairKey struct {
	dim  mining.Dimension
	meas mining.Measure
}

// NewEngine prepares an engine. Groups must carry their enumeration IDs
// (0..len-1) and sigs must be indexed by group ID.
func NewEngine(s *store.Store, gs []*groups.Group, sigs []signature.Signature) (*Engine, error) {
	if len(gs) != len(sigs) {
		return nil, fmt.Errorf("core: %d groups but %d signatures", len(gs), len(sigs))
	}
	for i, g := range gs {
		if g.ID != i {
			return nil, fmt.Errorf("core: group at position %d has ID %d; re-enumerate before building the engine", i, g.ID)
		}
	}
	e := &Engine{Store: s, Groups: gs, Sigs: sigs, pairFuncs: make(map[pairKey]mining.PairFunc)}
	return e, nil
}

// PairFunc returns the cached concrete pair function for a binding.
func (e *Engine) PairFunc(dim mining.Dimension, meas mining.Measure) mining.PairFunc {
	k := pairKey{dim, meas}
	e.mu.Lock()
	defer e.mu.Unlock()
	if f, ok := e.pairFuncs[k]; ok {
		return f
	}
	f := mining.For(e.Store, e.Sigs, dim, meas).Pair
	e.pairFuncs[k] = f
	return f
}

// SetPairFunc overrides the concrete measure for one (dimension, measure)
// binding — e.g. swapping structural item similarity for the rating-aware
// Jaccard of Section 2.1.1, or a domain-aware value comparison. The paper
// deliberately leaves the measures pluggable; this is the plug. Pass the
// similarity form and the engine derives nothing: each binding is set
// independently, so set both (dim, Similarity) and (dim, Diversity) when
// both appear in specs.
func (e *Engine) SetPairFunc(dim mining.Dimension, meas mining.Measure, f mining.PairFunc) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.pairFuncs[pairKey{dim, meas}] = f
}

// miningFunc builds the full aggregate function for a binding.
func (e *Engine) miningFunc(dim mining.Dimension, meas mining.Measure) mining.Func {
	return mining.Func{Dim: dim, Meas: meas, Pair: e.PairFunc(dim, meas), Agg: mining.Mean}
}

// ObjectiveScore computes the weighted objective sum of a candidate set.
func (e *Engine) ObjectiveScore(set []*groups.Group, spec ProblemSpec) float64 {
	var total float64
	for _, o := range spec.Objectives {
		total += o.Weight * e.miningFunc(o.Dim, o.Meas).Eval(set)
	}
	return total
}

// ConstraintsSatisfied reports whether a candidate set meets every hard
// constraint plus the support floor. Sets smaller than 2 trivially satisfy
// pair-based constraints (no pair evidence against them) but still face the
// support check.
func (e *Engine) ConstraintsSatisfied(set []*groups.Group, spec ProblemSpec) bool {
	if len(set) < spec.KLo || len(set) > spec.KHi {
		return false
	}
	for _, c := range spec.Constraints {
		if len(set) < 2 {
			continue
		}
		if e.miningFunc(c.Dim, c.Meas).Eval(set) < c.Threshold {
			return false
		}
	}
	if spec.MinSupport > 0 {
		// Fast reject: the union can never exceed the size sum, so a
		// cheap sum below the floor avoids the bitmap union entirely.
		// This matters for Exact, which checks millions of candidates.
		sum := 0
		for _, g := range set {
			sum += g.Size()
		}
		if sum < spec.MinSupport {
			return false
		}
		if groups.Support(set) < spec.MinSupport {
			return false
		}
	}
	return true
}

// Result is the outcome of one algorithm run.
type Result struct {
	// Found reports whether any feasible set was produced; a null result
	// (paper's terminology) has Found=false.
	Found bool
	// Groups is the returned set Gopt (or Gapp for approximate algorithms).
	Groups []*groups.Group
	// Objective is the weighted objective score of Groups.
	Objective float64
	// Support is the group support of Groups.
	Support int
	// Algorithm names the producing algorithm.
	Algorithm string
	// Elapsed is the wall-clock runtime of the run.
	Elapsed time.Duration
	// CandidatesExamined counts candidate sets (Exact) or buckets (LSH) or
	// greedy adds (FDP) evaluated, for reporting.
	CandidatesExamined int64
}

// Describe renders the result's groups through the store dictionaries.
func (r Result) Describe(s *store.Store) []string {
	out := make([]string, len(r.Groups))
	for i, g := range r.Groups {
		out[i] = g.Describe(s)
	}
	return out
}

// finish stamps common result fields.
func (e *Engine) finish(r *Result, spec ProblemSpec, start time.Time) {
	r.Elapsed = time.Since(start)
	if r.Found {
		r.Objective = e.ObjectiveScore(r.Groups, spec)
		r.Support = groups.Support(r.Groups)
	}
}
