package core

import (
	"sync"

	"tagdm/internal/lsh"
	"tagdm/internal/mining"
)

// MatrixCache is the shared pair-matrix lifecycle behind one snapshot
// epoch's engines: the per-binding matrices, the pair-function overrides,
// a single-flight build coordinator, an optional memory budget with LRU
// eviction, the carry link to the previous epoch's cache, and the
// epoch-scoped LSH side caches (hash vectors and built indexes).
//
// One cache serves many engines: Snapshot.Replicate hands every shard
// replica the base engine's cache (replicas are bit-identical, so their
// matrices are too), which is what turns N per-replica O(n²) rebuilds
// into one physical build per binding per epoch. Engines of different
// snapshots must not share a cache — carry across epochs goes through
// AttachCarry instead, which reuses clean rows rather than whole
// matrices.
//
// Outcome accounting: exactly one caller per (binding, epoch) observes
// matrixBuilt or matrixRebuilt — the one whose build closure ran — and
// every other caller, including single-flight waiters that arrived
// mid-build, observes matrixHit. Summed over any set of solves this keeps
// builds + hits equal to bindings touched while physical builds are
// counted once, the invariant the server's matrix counters export.
type MatrixCache struct {
	// mu guards the maps, the budget accounting and the LRU clock. Matrix
	// builds (multi-second at paper scale) and waiting on another
	// caller's in-flight build always happen outside it.
	//
	//tagdm:mutex nonblocking
	mu        sync.Mutex
	entries   map[pairKey]*cacheEntry
	inflight  map[pairKey]*inflightBuild
	overrides map[pairKey]mining.PairFunc
	// vers counts SetPairFunc overrides per binding; a matrix built
	// outside the lock publishes only if the binding's version is
	// unchanged, so a racing override is never shadowed by a stale build.
	vers map[pairKey]uint64

	budget    int64 // max resident matrix bytes; 0 = unlimited
	bytes     int64 // current resident matrix bytes
	evictions uint64
	tick      uint64 // LRU clock; bumped on every entry touch

	// Carry link: the previous epoch's cache plus the dirty flags (indexed
	// by its group IDs) marking which carried groups changed. Builds
	// consult it once per binding, then results are this epoch's own.
	parent      *MatrixCache
	parentDirty []bool

	// Epoch-scoped LSH side caches. Hash vectors depend only on the
	// engine's (replica-identical) groups, signatures and the spec's fold
	// flags; a built index additionally on (DPrime, L, Seed). Both are
	// deterministic, so sharing them across replicas and requests changes
	// nothing but the wall clock. Not budget-accounted (vectors and
	// tables are O(n·d), far below one matrix); indexCap bounds the index
	// map against unbounded distinct parameter sets.
	vectors map[vectorsKey][][]float64
	indexes map[indexKey]*lsh.Index
}

type cacheEntry struct {
	m     *mining.PairMatrix
	bytes int64
	tick  uint64
}

// inflightBuild is the single-flight rendezvous for one binding: done is
// closed when the build resolves; m is nil when the build was invalidated
// by a racing SetPairFunc and waiters must retry.
type inflightBuild struct {
	done chan struct{}
	m    *mining.PairMatrix
}

type vectorsKey struct {
	foldUsers, foldItems bool
}

type indexKey struct {
	foldUsers, foldItems bool
	dprime, l            int
	seed                 int64
}

// indexCap bounds the per-epoch LSH index cache. Relaxation explores
// O(log DPrime) distinct d' values per (spec, seed), so real workloads
// stay far below it; the cap only guards pathological parameter churn.
const indexCap = 64

// matrixOutcome classifies how a binding was served.
type matrixOutcome uint8

const (
	matrixHit matrixOutcome = iota
	matrixBuilt
	matrixRebuilt
)

func newMatrixCache() *MatrixCache {
	return &MatrixCache{
		entries:   make(map[pairKey]*cacheEntry),
		inflight:  make(map[pairKey]*inflightBuild),
		overrides: make(map[pairKey]mining.PairFunc),
		vers:      make(map[pairKey]uint64),
		vectors:   make(map[vectorsKey][][]float64),
		indexes:   make(map[indexKey]*lsh.Index),
	}
}

// MatrixCacheStats is the cache's observable state, exported through the
// server's tagdm_matrix_bytes / tagdm_matrix_evictions_total gauges.
type MatrixCacheStats struct {
	// Bytes is the resident condensed-matrix storage.
	Bytes int64
	// Entries is the resident matrix count.
	Entries int
	// Evictions counts budget evictions, cumulative across the epochs a
	// carry chain spans (AttachCarry inherits the previous epoch's count
	// so the exported counter stays monotonic over snapshot publication).
	Evictions uint64
}

// Stats returns the current cache counters.
func (c *MatrixCache) Stats() MatrixCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return MatrixCacheStats{Bytes: c.bytes, Entries: len(c.entries), Evictions: c.evictions}
}

// SetBudget caps resident matrix bytes; 0 removes the cap. Lowering the
// budget below the current residency evicts immediately.
func (c *MatrixCache) SetBudget(bytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if bytes < 0 {
		bytes = 0
	}
	c.budget = bytes
	c.evictLocked(nil)
}

// Budget returns the configured byte cap (0 = unlimited).
func (c *MatrixCache) Budget() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.budget
}

// overBudget reports whether adding addBytes of matrix storage would
// exceed the budget even after evicting everything else — the signal the
// gated scorer uses to fall back to blocked-row materialization instead
// of forcing a full build.
func (c *MatrixCache) overBudget(addBytes int64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.budget > 0 && addBytes > c.budget
}

// setOverride installs a pair-function override for one binding, dropping
// any cached matrix for it and bumping the binding version so an
// in-flight build of the old function cannot repopulate the cache.
func (c *MatrixCache) setOverride(k pairKey, f mining.PairFunc) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.overrides[k] = f
	if ent, ok := c.entries[k]; ok {
		c.bytes -= ent.bytes
		delete(c.entries, k)
	}
	c.vers[k]++
}

// override returns the installed pair-function override for a binding.
func (c *MatrixCache) override(k pairKey) (mining.PairFunc, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	f, ok := c.overrides[k]
	return f, ok
}

// AttachCarry links this (fresh) cache to the previous epoch's cache.
// dirty is indexed by prev's group IDs and must mark every group whose
// predicate or signature changed since prev's matrices were built; group
// IDs are stable and append-only across epochs, so clean entries carry
// verbatim. When prev itself built nothing but carries a parent (an epoch
// published and replaced before any solve ran), the link folds through to
// the grandparent with the dirty sets merged, so quiet epochs don't break
// the chain. prev's own parent link is cut either way: at most two
// epochs of matrices stay reachable.
func (c *MatrixCache) AttachCarry(prev *MatrixCache, dirty []bool) {
	if prev == nil {
		return
	}
	prev.mu.Lock()
	parent := prev
	parentDirty := append([]bool(nil), dirty...)
	if len(prev.entries) == 0 && len(prev.inflight) == 0 && prev.parent != nil {
		parent = prev.parent
		merged := append([]bool(nil), prev.parentDirty...)
		for i := range merged {
			if i < len(dirty) && dirty[i] {
				merged[i] = true
			}
		}
		parentDirty = merged
	}
	inherited := prev.evictions
	prev.parent, prev.parentDirty = nil, nil
	prev.mu.Unlock()

	c.mu.Lock()
	defer c.mu.Unlock()
	c.parent, c.parentDirty = parent, parentDirty
	c.evictions += inherited
}

// carryFor returns the previous epoch's matrix for a binding plus the
// dirty flags to rebuild against, or (nil, nil) when no valid carry
// exists: no parent, a pair-function override on either side (carried
// entries embody the default measure), or a shape mismatch.
func (c *MatrixCache) carryFor(k pairKey) (*mining.PairMatrix, []bool) {
	c.mu.Lock()
	parent, dirty := c.parent, c.parentDirty
	_, overridden := c.overrides[k]
	c.mu.Unlock()
	if parent == nil || overridden {
		return nil, nil
	}
	parent.mu.Lock()
	defer parent.mu.Unlock()
	if _, ok := parent.overrides[k]; ok {
		return nil, nil
	}
	ent, ok := parent.entries[k]
	if !ok || ent.m.Len() != len(dirty) {
		return nil, nil
	}
	return ent.m, dirty
}

// lookup returns the cached matrix for a binding without building,
// touching the LRU clock on a hit — the gated scorer's "use what's
// already paid for" probe.
func (c *MatrixCache) lookup(k pairKey) *mining.PairMatrix {
	c.mu.Lock()
	defer c.mu.Unlock()
	if ent, ok := c.entries[k]; ok {
		c.tick++
		ent.tick = c.tick
		return ent.m
	}
	return nil
}

// peek returns the cached matrix for a binding without building, without
// counting an outcome and without touching the LRU clock — the read the
// result-finishing path uses so it never perturbs cache state.
func (c *MatrixCache) peek(k pairKey) *mining.PairMatrix {
	c.mu.Lock()
	defer c.mu.Unlock()
	if ent, ok := c.entries[k]; ok {
		return ent.m
	}
	return nil
}

// matrix returns the binding's matrix, serving from cache, joining an
// in-flight build, or running build itself — exactly one caller per
// resolved build observes a non-hit outcome. build receives the carry
// matrix and dirty flags when a valid previous-epoch entry exists (nil
// otherwise) and must return a matrix over the current universe.
func (c *MatrixCache) matrix(k pairKey, build func(prev *mining.PairMatrix, dirty []bool) *mining.PairMatrix) (*mining.PairMatrix, matrixOutcome) {
	for {
		c.mu.Lock()
		if ent, ok := c.entries[k]; ok {
			c.tick++
			ent.tick = c.tick
			c.mu.Unlock()
			return ent.m, matrixHit
		}
		if fl, ok := c.inflight[k]; ok {
			c.mu.Unlock()
			<-fl.done
			if fl.m != nil {
				// Another caller paid the build; this one shares it.
				return fl.m, matrixHit
			}
			continue // the build was invalidated by an override; retry
		}
		ver := c.vers[k]
		fl := &inflightBuild{done: make(chan struct{})}
		c.inflight[k] = fl
		c.mu.Unlock()

		prev, dirty := c.carryFor(k)
		m := build(prev, dirty)
		outcome := matrixBuilt
		if prev != nil {
			outcome = matrixRebuilt
		}

		c.mu.Lock()
		delete(c.inflight, k)
		if c.vers[k] != ver {
			// SetPairFunc landed mid-build; this matrix holds the old
			// measure's values. Wake waiters to retry and retry ourselves.
			close(fl.done)
			c.mu.Unlock()
			continue
		}
		c.insertLocked(k, m)
		fl.m = m
		close(fl.done)
		c.mu.Unlock()
		return m, outcome
	}
}

// insertLocked publishes a built matrix and enforces the budget, never
// evicting the entry just inserted (solvers hold a reference anyway; the
// cache keeps the newest binding resident so the current solve's sibling
// bindings are the ones competing for the remainder).
func (c *MatrixCache) insertLocked(k pairKey, m *mining.PairMatrix) {
	ent := &cacheEntry{m: m, bytes: m.Bytes()}
	c.tick++
	ent.tick = c.tick
	c.entries[k] = ent
	c.bytes += ent.bytes
	c.evictLocked(ent)
}

// evictLocked drops coldest entries until residency fits the budget,
// sparing keep (the just-inserted entry, which may alone exceed the
// budget — a single over-budget matrix is served and kept rather than
// thrashed).
func (c *MatrixCache) evictLocked(keep *cacheEntry) {
	if c.budget <= 0 {
		return
	}
	for c.bytes > c.budget {
		var coldKey pairKey
		var cold *cacheEntry
		for key, ent := range c.entries {
			if ent == keep {
				continue
			}
			if cold == nil || ent.tick < cold.tick {
				coldKey, cold = key, ent
			}
		}
		if cold == nil {
			return
		}
		c.bytes -= cold.bytes
		delete(c.entries, coldKey)
		c.evictions++
	}
}

// hashVectors returns the epoch's hash-vector set for a fold-flag
// combination, building it once. Duplicate racing builds are tolerated
// (identical outputs, first publication wins) — vectors are O(n·d), far
// cheaper than serializing callers behind the build.
func (c *MatrixCache) hashVectors(key vectorsKey, build func() [][]float64) [][]float64 {
	c.mu.Lock()
	if v, ok := c.vectors[key]; ok {
		c.mu.Unlock()
		return v
	}
	c.mu.Unlock()
	v := build()
	c.mu.Lock()
	defer c.mu.Unlock()
	if exist, ok := c.vectors[key]; ok {
		return exist
	}
	c.vectors[key] = v
	return v
}

// index returns the epoch's built LSH index for a parameter set, building
// it once; like hashVectors, racing duplicate builds publish first-wins
// with identical results (lsh.Build is deterministic in its seed).
func (c *MatrixCache) index(key indexKey, build func() (*lsh.Index, error)) (*lsh.Index, error) {
	c.mu.Lock()
	if idx, ok := c.indexes[key]; ok {
		c.mu.Unlock()
		return idx, nil
	}
	c.mu.Unlock()
	idx, err := build()
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if exist, ok := c.indexes[key]; ok {
		return exist, nil
	}
	if len(c.indexes) >= indexCap {
		// Arbitrary victim: the cap is a safety valve, not an LRU —
		// hitting it means parameter churn no cache policy would help.
		for k := range c.indexes {
			delete(c.indexes, k)
			break
		}
	}
	c.indexes[key] = idx
	return idx, nil
}
