package core

import (
	"testing"
)

func TestBinomial(t *testing.T) {
	cases := []struct {
		n, k int
		want int64
	}{
		{5, 0, 1}, {5, 5, 1}, {5, 2, 10}, {10, 3, 120},
		{0, 0, 1}, {3, 4, 0}, {3, -1, 0}, {250, 3, 2573000},
	}
	for _, c := range cases {
		if got := binomial(c.n, c.k); got != c.want {
			t.Errorf("binomial(%d, %d) = %d, want %d", c.n, c.k, got, c.want)
		}
	}
	if got := binomial(10_000_000, 5); got != -1 {
		t.Errorf("huge binomial should overflow to -1, got %d", got)
	}
}

func TestExactParallelMatchesSerial(t *testing.T) {
	e := buildEngine(t)
	for id := 1; id <= 6; id++ {
		spec, _ := PaperProblem(id, 3, 5, 0.5, 0.5)
		serial, err := e.Exact(spec, ExactOptions{})
		if err != nil {
			t.Fatal(err)
		}
		parallel, err := e.Exact(spec, ExactOptions{Parallel: true})
		if err != nil {
			t.Fatal(err)
		}
		if serial.Found != parallel.Found {
			t.Fatalf("problem %d: found mismatch %v vs %v", id, serial.Found, parallel.Found)
		}
		if serial.CandidatesExamined != parallel.CandidatesExamined {
			t.Fatalf("problem %d: candidates %d vs %d",
				id, serial.CandidatesExamined, parallel.CandidatesExamined)
		}
		if !serial.Found {
			continue
		}
		if serial.Objective != parallel.Objective {
			t.Fatalf("problem %d: objective %v vs %v", id, serial.Objective, parallel.Objective)
		}
		if len(serial.Groups) != len(parallel.Groups) {
			t.Fatalf("problem %d: group count %d vs %d",
				id, len(serial.Groups), len(parallel.Groups))
		}
	}
}

func TestExactParallelDeterministic(t *testing.T) {
	e := buildEngine(t)
	spec, _ := PaperProblem(1, 3, 5, 0.5, 0.5)
	var firstIDs []int
	for run := 0; run < 3; run++ {
		res, err := e.Exact(spec, ExactOptions{Parallel: true})
		if err != nil {
			t.Fatal(err)
		}
		ids := make([]int, len(res.Groups))
		for i, g := range res.Groups {
			ids[i] = g.ID
		}
		if run == 0 {
			firstIDs = ids
			continue
		}
		if len(ids) != len(firstIDs) {
			t.Fatalf("run %d returned different set size", run)
		}
		for i := range ids {
			if ids[i] != firstIDs[i] {
				t.Fatalf("run %d returned different groups %v vs %v", run, ids, firstIDs)
			}
		}
	}
}
