package core

import (
	"context"

	"sync"
	"testing"

	"tagdm/internal/groups"
	"tagdm/internal/mining"
)

func TestBinomial(t *testing.T) {
	cases := []struct {
		n, k int
		want int64
	}{
		{5, 0, 1}, {5, 5, 1}, {5, 2, 10}, {10, 3, 120},
		{0, 0, 1}, {3, 4, 0}, {3, -1, 0}, {250, 3, 2573000},
	}
	for _, c := range cases {
		if got := binomial(c.n, c.k); got != c.want {
			t.Errorf("binomial(%d, %d) = %d, want %d", c.n, c.k, got, c.want)
		}
	}
	if got := binomial(10_000_000, 5); got != -1 {
		t.Errorf("huge binomial should overflow to -1, got %d", got)
	}
}

func TestExactParallelMatchesSerial(t *testing.T) {
	e := buildEngine(t)
	for id := 1; id <= 6; id++ {
		spec, _ := PaperProblem(id, 3, 5, 0.5, 0.5)
		serial, err := e.Exact(context.Background(), spec, ExactOptions{})
		if err != nil {
			t.Fatal(err)
		}
		parallel, err := e.Exact(context.Background(), spec, ExactOptions{Parallel: true})
		if err != nil {
			t.Fatal(err)
		}
		if serial.Found != parallel.Found {
			t.Fatalf("problem %d: found mismatch %v vs %v", id, serial.Found, parallel.Found)
		}
		// Each parallel worker prunes against its own shard-local incumbent,
		// so the examined/pruned split differs from the serial run — but
		// both must account for the same full enumeration.
		if st, pt := serial.CandidatesExamined+serial.CandidatesPruned,
			parallel.CandidatesExamined+parallel.CandidatesPruned; st != pt {
			t.Fatalf("problem %d: candidates %d vs %d", id, st, pt)
		}
		if !serial.Found {
			continue
		}
		if serial.Objective != parallel.Objective {
			t.Fatalf("problem %d: objective %v vs %v", id, serial.Objective, parallel.Objective)
		}
		if len(serial.Groups) != len(parallel.Groups) {
			t.Fatalf("problem %d: group count %d vs %d",
				id, len(serial.Groups), len(parallel.Groups))
		}
	}
}

// TestCandidateCountSemantics is the regression pin for the
// examined/pruned split: with pruning disabled, CandidatesExamined matches
// the naive full enumeration (sum of binomials) and nothing is pruned; with
// pruning on (the default), pruned subtrees are reported separately, the
// two counts partition the same enumeration, and on the paper problems over
// this world the bound actually fires (pruned > 0). Serial and parallel
// agree on the partition total.
func TestCandidateCountSemantics(t *testing.T) {
	e := buildEngine(t)
	n := len(e.Groups)
	anyPruned := false
	for id := 1; id <= 6; id++ {
		spec, _ := PaperProblem(id, 3, 5, 0.5, 0.5)
		var total int64
		for k := spec.KLo; k <= spec.KHi && k <= n; k++ {
			total += binomial(n, k)
		}
		off, err := e.Exact(context.Background(), spec, ExactOptions{DisablePruning: true})
		if err != nil {
			t.Fatal(err)
		}
		if off.CandidatesExamined != total {
			t.Fatalf("problem %d: pruning off examined %d, enumeration size %d",
				id, off.CandidatesExamined, total)
		}
		if off.CandidatesPruned != 0 {
			t.Fatalf("problem %d: pruning off reported %d pruned", id, off.CandidatesPruned)
		}
		for _, parallel := range []bool{false, true} {
			on, err := e.Exact(context.Background(), spec, ExactOptions{Parallel: parallel})
			if err != nil {
				t.Fatal(err)
			}
			if got := on.CandidatesExamined + on.CandidatesPruned; got != total {
				t.Fatalf("problem %d parallel=%v: examined %d + pruned %d = %d, want %d",
					id, parallel, on.CandidatesExamined, on.CandidatesPruned, got, total)
			}
			if on.CandidatesPruned > 0 {
				anyPruned = true
			}
			if on.Found != off.Found || on.Objective != off.Objective {
				t.Fatalf("problem %d parallel=%v: pruning changed the result", id, parallel)
			}
		}
	}
	if !anyPruned {
		t.Fatal("bound never fired on any paper problem; pruning is inert")
	}
}

// TestMatrixAndBoundCacheRace hammers the engine's matrix + bound-vector
// cache from every direction at once — measure overrides, prewarms, and
// pruning solves that read the cached bound vectors — to prove the
// invalidation protocol is race-free (the CI -race job gives this test its
// teeth). Results are not asserted against each other (overrides change
// them mid-flight by design); every run must simply complete without a
// race, and the final state must serve the last override's values.
func TestMatrixAndBoundCacheRace(t *testing.T) {
	e := buildEngine(t)
	spec, _ := PaperProblem(1, 3, 5, 0.5, 0.5)
	var wg sync.WaitGroup
	for wi := 0; wi < 4; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			for iter := 0; iter < 8; iter++ {
				v := 0.25 + float64((wi+iter)%3)*0.25
				e.SetPairFunc(mining.Tags, mining.Similarity,
					func(g1, g2 *groups.Group) float64 { return v })
				e.PrewarmMatrices(spec)
			}
		}(wi)
	}
	for wi := 0; wi < 4; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			for iter := 0; iter < 8; iter++ {
				if _, err := e.Exact(context.Background(), spec, ExactOptions{Parallel: wi%2 == 0}); err != nil {
					t.Error(err)
					return
				}
			}
		}(wi)
	}
	wg.Wait()
	e.SetPairFunc(mining.Tags, mining.Similarity,
		func(g1, g2 *groups.Group) float64 { return 0.5 })
	m := e.PairMatrix(mining.Tags, mining.Similarity)
	if got := m.At(0, 1); got != 0.5 {
		t.Fatalf("post-race matrix serves %v, want the last override's 0.5", got)
	}
	if got := m.MaxRows()[0]; got != 0.5 {
		t.Fatalf("post-race bound vector serves %v, want 0.5", got)
	}
	res, err := e.Exact(context.Background(), spec, ExactOptions{})
	if err != nil {
		t.Fatal(err)
	}
	off, err := e.Exact(context.Background(), spec, ExactOptions{DisablePruning: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Found != off.Found || res.Objective != off.Objective {
		t.Fatal("post-race pruning run diverges from the oracle")
	}
}

func TestExactParallelDeterministic(t *testing.T) {
	e := buildEngine(t)
	spec, _ := PaperProblem(1, 3, 5, 0.5, 0.5)
	var firstIDs []int
	for run := 0; run < 3; run++ {
		res, err := e.Exact(context.Background(), spec, ExactOptions{Parallel: true})
		if err != nil {
			t.Fatal(err)
		}
		ids := make([]int, len(res.Groups))
		for i, g := range res.Groups {
			ids[i] = g.ID
		}
		if run == 0 {
			firstIDs = ids
			continue
		}
		if len(ids) != len(firstIDs) {
			t.Fatalf("run %d returned different set size", run)
		}
		for i := range ids {
			if ids[i] != firstIDs[i] {
				t.Fatalf("run %d returned different groups %v vs %v", run, ids, firstIDs)
			}
		}
	}
}
