package core

import (
	"context"

	"fmt"
	"math/rand"
	"testing"

	"tagdm/internal/groups"
	"tagdm/internal/mining"
)

// naiveExact re-implements the pre-matrix Exact baseline verbatim: full
// enumeration with every candidate scored from scratch through the naive
// ObjectiveScore / ConstraintsSatisfied pair. The production Exact must
// reproduce its decisions byte for byte.
func naiveExact(e *Engine, spec ProblemSpec) (bool, []*groups.Group, float64, int64) {
	n := len(e.Groups)
	var (
		found     bool
		best      []*groups.Group
		bestScore float64
		examined  int64
	)
	var set []*groups.Group
	var rec func(start, k int)
	rec = func(start, k int) {
		if k == 0 {
			examined++
			if !e.ConstraintsSatisfied(set, spec) {
				return
			}
			if score := e.ObjectiveScore(set, spec); !found || score > bestScore {
				bestScore = score
				best = append(best[:0:0], set...)
				found = true
			}
			return
		}
		for i := start; i <= n-k; i++ {
			set = append(set, e.Groups[i])
			rec(i+1, k-1)
			set = set[:len(set)-1]
		}
	}
	for k := spec.KLo; k <= spec.KHi && k <= n; k++ {
		rec(0, k)
	}
	return found, best, bestScore, examined
}

func sameGroupIDs(a, b []*groups.Group) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].ID != b[i].ID {
			return false
		}
	}
	return true
}

// TestExactMatchesNaiveReference sweeps every solvable role assignment plus
// the six paper problems (under several support floors and size bounds)
// and demands that the incremental matrix-backed Exact — serial and
// parallel — reproduces the naive enumeration exactly: same feasibility,
// same argmax set, bit-identical objective, same candidate count.
func TestExactMatchesNaiveReference(t *testing.T) {
	e := buildEngine(t)
	var specs []ProblemSpec
	for id := 1; id <= 6; id++ {
		for _, p := range []int{0, 5, 12} {
			spec, err := PaperProblem(id, 3, p, 0.5, 0.5)
			if err != nil {
				t.Fatal(err)
			}
			specs = append(specs, spec)
		}
	}
	for _, spec := range AllRoles() {
		spec.MinSupport = 8
		specs = append(specs, spec)
	}
	for _, spec := range specs {
		wantFound, wantBest, wantScore, wantExamined := naiveExact(e, spec)
		for _, parallel := range []bool{false, true} {
			for _, disablePruning := range []bool{false, true} {
				label := fmt.Sprintf("%s parallel=%v pruning=%v", spec.Name, parallel, !disablePruning)
				res, err := e.Exact(context.Background(), spec, ExactOptions{Parallel: parallel, DisablePruning: disablePruning})
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				if res.Found != wantFound {
					t.Fatalf("%s: found %v, naive %v", label, res.Found, wantFound)
				}
				if disablePruning {
					// The oracle path enumerates everything: examined must
					// match the naive count exactly, nothing pruned.
					if res.CandidatesExamined != wantExamined {
						t.Fatalf("%s: examined %d, naive %d", label, res.CandidatesExamined, wantExamined)
					}
					if res.CandidatesPruned != 0 {
						t.Fatalf("%s: pruned %d with pruning disabled", label, res.CandidatesPruned)
					}
				} else if got := res.CandidatesExamined + res.CandidatesPruned; got != wantExamined {
					// Pruning splits the same enumeration into examined and
					// pruned; the split must account for every candidate.
					t.Fatalf("%s: examined %d + pruned %d = %d, naive %d",
						label, res.CandidatesExamined, res.CandidatesPruned, got, wantExamined)
				}
				if !wantFound {
					continue
				}
				if !sameGroupIDs(res.Groups, wantBest) {
					t.Fatalf("%s: argmax %v, naive %v",
						label, res.Describe(e.Store), groupIDs(wantBest))
				}
				if res.Objective != wantScore {
					t.Fatalf("%s: objective %v, naive %v", label, res.Objective, wantScore)
				}
			}
		}
	}
}

func groupIDs(gs []*groups.Group) []int {
	out := make([]int, len(gs))
	for i, g := range gs {
		out[i] = g.ID
	}
	return out
}

// TestScorerMatchesNaive checks the matrix scorer against the naive
// ObjectiveScore / ConstraintsSatisfied on randomized candidate sets of
// every size the engine can produce, including empty and singleton sets.
func TestScorerMatchesNaive(t *testing.T) {
	e := buildEngine(t)
	rng := rand.New(rand.NewSource(17))
	specs := AllRoles()
	for si, spec := range specs {
		spec.MinSupport = []int{0, 5, 10, 25}[si%4]
		spec.KLo = 1 + si%2
		spec.KHi = 2 + si%3
		sc := e.scorer(spec)
		for trial := 0; trial < 20; trial++ {
			k := rng.Intn(5)
			perm := rng.Perm(len(e.Groups))[:k]
			set := make([]*groups.Group, k)
			for i, id := range perm {
				set[i] = e.Groups[id]
			}
			ids := sc.idsOf(set)
			if got, want := sc.objective(ids), e.ObjectiveScore(set, spec); got != want {
				t.Fatalf("spec %d trial %d: objective %v, naive %v", si, trial, got, want)
			}
			if got, want := sc.feasible(ids), e.ConstraintsSatisfied(set, spec); got != want {
				t.Fatalf("spec %d trial %d (k=%d): feasible %v, naive %v", si, trial, k, got, want)
			}
			if got, want := sc.support(ids), groups.Support(set); got != want {
				t.Fatalf("spec %d trial %d: support %d, naive %d", si, trial, got, want)
			}
		}
	}
}

// TestSetPairFuncInvalidatesMatrix proves an overridden measure is not
// served stale values from a previously built matrix.
func TestSetPairFuncInvalidatesMatrix(t *testing.T) {
	e := buildEngine(t)
	m := e.PairMatrix(mining.Users, mining.Similarity)
	if m2 := e.PairMatrix(mining.Users, mining.Similarity); m2 != m {
		t.Fatal("second PairMatrix call must return the cached matrix")
	}
	e.SetPairFunc(mining.Users, mining.Similarity,
		func(g1, g2 *groups.Group) float64 { return 0.25 })
	m3 := e.PairMatrix(mining.Users, mining.Similarity)
	if m3 == m {
		t.Fatal("SetPairFunc must invalidate the cached matrix")
	}
	if got := m3.At(0, 1); got != 0.25 {
		t.Fatalf("rebuilt matrix serves %v, want 0.25", got)
	}
}

// TestExactCandidateLoopAllocationFree pins the tentpole claim: after the
// matrices are warm, a full serial Exact run allocates only its fixed
// setup (worker stacks, result bookkeeping) — nothing per candidate. The
// world yields ~700 candidates per run, so a sub-candidate-count ceiling
// proves the loop itself is allocation-free.
func TestExactCandidateLoopAllocationFree(t *testing.T) {
	e := buildEngine(t)
	spec, err := PaperProblem(1, 3, 5, 0.5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	e.PrewarmMatrices(spec)
	res, err := e.Exact(context.Background(), spec, ExactOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if total := res.CandidatesExamined + res.CandidatesPruned; total < 500 {
		t.Fatalf("world too small to prove anything: %d candidates", total)
	}
	avg := testing.AllocsPerRun(10, func() {
		if _, err := e.Exact(context.Background(), spec, ExactOptions{}); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 60 {
		t.Fatalf("Exact allocated %v objects per run over %d candidates; the candidate loop is leaking allocations",
			avg, res.CandidatesExamined)
	}
}
