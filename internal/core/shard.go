// Shard-aware solving: every solver family can explore one shard of its
// search space against a replica engine and have the shard-local incumbents
// merged into the exact answer the single-engine run returns.
//
// The design lifts the Exact parallel path's merge shape one level. Shards
// are NOT data partitions — a best set can span any groups, so splitting
// the group universe would change answers. Instead each shard holds a full
// replica of one snapshot (identical store, groups, signatures and pair
// functions, hence bit-identical pair matrices) and the deterministic
// *search space* is partitioned:
//
//   - Exact: the outermost enumeration level by stride/offset, exactly as
//     the in-process parallel path already does.
//   - DV-FDP: the deterministic start-task list (floor-sweep passes, the
//     largest-k start, anchored starts) round-robin by task index.
//   - SM-LSH: each relaxation round's sorted bucket list round-robin by
//     bucket index; every shard builds the same seeded index, so the
//     buckets agree across replicas.
//
// Each merge reproduces the serial run's first-maximum tie-breaking from
// shard-local evidence (score, then the serial visit order: candidate
// order for Exact, task index for DV-FDP, round then bucket index for
// SM-LSH), so merged answers are byte-identical to the unsharded solve —
// the property tests in internal/experiments pin this on randomized
// corpora. Candidate accounting partitions exactly: every task/bucket/leaf
// is counted on exactly one shard, and the SM-LSH merge truncates each
// shard's per-round counts at the first globally-successful round so the
// sum equals what the serial scan would have examined.
package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"tagdm/internal/groups"
	"tagdm/internal/obs"
)

// partialKind tags which solver family produced a Partial.
type partialKind uint8

const (
	kindExact partialKind = iota + 1
	kindDVFDP
	kindSMLSH
)

// Partial is one shard's contribution to a solve: the shard-local incumbent
// plus the bookkeeping the merge needs to reproduce the serial run's
// decisions. Produce one with SolvePartial or ExactPartial (shard i of n),
// combine a full set with MergePartials. A Partial is opaque outside this
// package; it is only meaningful together with the other shards of the
// same (spec, options) run against replica engines.
type Partial struct {
	kind      partialKind
	algorithm string
	shard, of int

	stages []Stage
	// Per-binding matrix-cache outcomes (see Result.MatrixBuilds): with
	// replicas sharing one cache, at most one shard of a scatter reports
	// the physical build/rebuild and the rest report hits, so merged sums
	// count each materialization once.
	builds, rebuilds, hits, lazy int

	// Exact and DV-FDP incumbent (DV-FDP additionally records the start
	// task index for the serial tie-break; Exact ties break on the
	// candidate itself via lessCandidate).
	found     bool
	best      []*groups.Group
	bestScore float64
	bestTask  int
	examined  int64
	pruned    int64

	// SM-LSH evidence: the first round (by this shard's scan) producing a
	// feasible multi-group set and the best such set of that round, the
	// first round producing a feasible singleton and that round's best
	// singleton, and per-round examined bucket counts for partition-exact
	// accounting. Rounds are -1 when the shard never produced one; bucket
	// indices are positions in the round's deterministically sorted bucket
	// list, shared across shards.
	multiRound   int
	multiScore   float64
	multiBucket  int
	multi        []*groups.Group
	singleRound  int
	singleSize   int
	singleBucket int
	single       []*groups.Group
	roundExam    []int64
}

// Shard reports which shard of how many this partial covered.
func (p Partial) Shard() (shard, of int) { return p.shard, p.of }

// Algorithm names the producing algorithm family variant.
func (p Partial) Algorithm() string { return p.algorithm }

// partialStageTimer mirrors stageTimer for a Partial's stage list.
type partialStageTimer struct {
	p     *Partial
	name  string
	span  *obs.Span
	start time.Time
}

func (p *Partial) startStage(ctx context.Context, name string) partialStageTimer {
	return partialStageTimer{p: p, name: name, span: obs.StartSpan(ctx, name), start: time.Now()}
}

func (t partialStageTimer) end() {
	t.span.End()
	addStageTo(&t.p.stages, t.name, time.Since(t.start))
}

func checkShard(shard, of int) error {
	if of < 1 || shard < 0 || shard >= of {
		return fmt.Errorf("core: shard %d of %d is out of range", shard, of)
	}
	return nil
}

// SolvePartial dispatches like Solve — similarity-only objectives to the
// SM-LSH family, anything else to DV-FDP — but explores only shard `shard`
// of `of` and returns the shard's Partial instead of a Result. Run one call
// per shard (same spec and options, shard = 0..of-1, each against a replica
// engine of the same snapshot) and combine with MergePartials.
func (e *Engine) SolvePartial(ctx context.Context, spec ProblemSpec, opts SolveOptions, shard, of int) (Partial, error) {
	if err := spec.Validate(); err != nil {
		return Partial{}, err
	}
	if err := checkShard(shard, of); err != nil {
		return Partial{}, err
	}
	if spec.OptimizesSimilarityOnly() {
		return e.smlshPartial(ctx, spec, opts.LSH, shard, of)
	}
	return e.dvfdpPartial(ctx, spec, opts.FDP, shard, of)
}

// ExactPartial is the Exact baseline's shard entry point: it enumerates
// only first elements congruent to shard mod of (fanning further across
// GOMAXPROCS workers inside the shard when opts.Parallel is set) and
// returns the shard-local incumbent with its examined/pruned counts.
// Summed across a full shard set, examined + pruned still equals the full
// enumeration size.
func (e *Engine) ExactPartial(ctx context.Context, spec ProblemSpec, opts ExactOptions, shard, of int) (Partial, error) {
	if err := spec.Validate(); err != nil {
		return Partial{}, err
	}
	if err := checkShard(shard, of); err != nil {
		return Partial{}, err
	}
	if err := ctx.Err(); err != nil {
		return Partial{}, err
	}
	n := len(e.Groups)
	limit := opts.MaxCandidates
	if limit <= 0 {
		limit = DefaultMaxExactCandidates
	}
	var total int64
	for k := spec.KLo; k <= spec.KHi && k <= n; k++ {
		c := binomial(n, k)
		if c < 0 || total+c < 0 {
			total = -1
			break
		}
		total += c
	}
	if total < 0 || total > limit {
		return Partial{}, fmt.Errorf(
			"core: exact enumeration over %d groups (k in [%d,%d]) exceeds candidate cap %d",
			n, spec.KLo, spec.KHi, limit)
	}

	p := Partial{kind: kindExact, algorithm: "Exact", shard: shard, of: of, bestTask: -1}
	mt := p.startStage(ctx, StageMatrix)
	sc := e.scorer(spec)
	mt.end()
	p.builds, p.rebuilds, p.hits, p.lazy = sc.builds, sc.rebuilds, sc.hits, sc.lazy

	prune := !opts.DisablePruning
	et := p.startStage(ctx, StageEnumerate)
	cancelled := e.exactFan(ctx, spec, sc, prune, shard, of, opts.Parallel, &p)
	et.end()
	if cancelled {
		return Partial{}, ctx.Err()
	}
	return p, nil
}

// exactFan runs this shard's slice of the enumeration — one worker, or
// GOMAXPROCS workers sub-striding the shard when parallel — and folds the
// workers into p with the serial tie-breaking (highest score, then the
// candidate the serial enumeration meets first).
func (e *Engine) exactFan(ctx context.Context, spec ProblemSpec, sc *matrixScorer, prune bool, shard, of int, parallel bool, p *Partial) (cancelled bool) {
	n := len(e.Groups)
	runWorker := func(offset, stride int) *exactWorker {
		w := newExactWorker(ctx, e, spec, sc, offset, prune)
		for k := spec.KLo; k <= spec.KHi && k <= n; k++ {
			w.enumerate(0, k, stride)
		}
		return w
	}
	var workers []*exactWorker
	if !parallel {
		workers = []*exactWorker{runWorker(shard, of)}
	} else {
		count := runtime.GOMAXPROCS(0)
		if count > n/of {
			count = n / of
		}
		if count < 1 {
			count = 1
		}
		if prune {
			// Build the shared bound vectors once, before the fan-out, so the
			// workers' racing first reads don't each scan the matrices.
			sc.objectiveBounds()
		}
		workers = make([]*exactWorker, count)
		var wg sync.WaitGroup
		for wi := 0; wi < count; wi++ {
			wg.Add(1)
			go func(wi int) {
				defer wg.Done()
				// Worker wi covers first elements ≡ shard + wi*of modulo
				// of*count; the union over wi is exactly this shard's
				// residue class mod of.
				workers[wi] = runWorker(shard+wi*of, of*count)
			}(wi)
		}
		wg.Wait()
	}
	for _, w := range workers {
		cancelled = cancelled || w.cancelled
		p.examined += w.examined
		p.pruned += w.pruned
		if !w.found {
			continue
		}
		if !p.found || w.bestScore > p.bestScore ||
			(w.bestScore == p.bestScore && lessCandidate(w.best, p.best)) {
			p.found = true
			p.best = append(p.best[:0], w.best...)
			p.bestScore = w.bestScore
		}
	}
	return cancelled
}

// MergePartials combines one Partial per shard — all from the same
// (spec, options) run over replica engines — into the Result the unsharded
// solve would return, byte-identical in Found, the group set, Objective and
// Support. CandidatesExamined/CandidatesPruned partition exactly: sums for
// Exact and DV-FDP (every leaf and task runs on exactly one shard), and
// round-truncated sums for SM-LSH (rounds past the first globally
// successful one are discarded, matching the serial run's early break).
// start anchors Result.Elapsed, normally taken before the scatter.
func (e *Engine) MergePartials(spec ProblemSpec, parts []Partial, start time.Time) (Result, error) {
	if len(parts) == 0 {
		return Result{}, fmt.Errorf("core: MergePartials needs at least one partial")
	}
	covered := make([]bool, len(parts))
	for _, p := range parts {
		if p.kind != parts[0].kind || p.algorithm != parts[0].algorithm {
			return Result{}, fmt.Errorf("core: merging partials from different runs (%q vs %q)",
				p.algorithm, parts[0].algorithm)
		}
		if p.of != len(parts) || p.shard < 0 || p.shard >= len(parts) || covered[p.shard] {
			return Result{}, fmt.Errorf("core: partial set does not cover shards 0..%d exactly once", len(parts)-1)
		}
		covered[p.shard] = true
	}
	res := Result{Algorithm: parts[0].algorithm}
	for _, p := range parts {
		res.MatrixBuilds += p.builds
		res.MatrixRebuilds += p.rebuilds
		res.MatrixHits += p.hits
		res.MatrixLazy += p.lazy
		for _, st := range p.stages {
			res.addStage(st.Name, st.Wall)
		}
	}
	switch parts[0].kind {
	case kindExact:
		var best *Partial
		for i := range parts {
			p := &parts[i]
			res.CandidatesExamined += p.examined
			res.CandidatesPruned += p.pruned
			if !p.found {
				continue
			}
			if best == nil || p.bestScore > best.bestScore ||
				(p.bestScore == best.bestScore && lessCandidate(p.best, best.best)) {
				best = p
			}
		}
		if best != nil {
			res.Found = true
			res.Groups = append([]*groups.Group(nil), best.best...)
		}
	case kindDVFDP:
		var best *Partial
		for i := range parts {
			p := &parts[i]
			res.CandidatesExamined += p.examined
			if !p.found {
				continue
			}
			// Serial winner selection is a strict-> scan over starts in task
			// order: the highest score wins and ties keep the earliest task.
			if best == nil || p.bestScore > best.bestScore ||
				(p.bestScore == best.bestScore && p.bestTask < best.bestTask) {
				best = p
			}
		}
		if best != nil {
			res.Found = true
			res.Groups = best.best
		}
	case kindSMLSH:
		mergeSMLSH(&res, parts)
	default:
		return Result{}, fmt.Errorf("core: partial has no solver family")
	}
	e.finish(&res, spec, start)
	return res, nil
}

// mergeSMLSH reconstructs the serial relaxation outcome: the serial loop
// breaks at the first round with a feasible multi-group bucket, so the
// merged winner is the best multi of round P = min over shards, ties to the
// earlier bucket; with no multi anywhere the fallback is the earliest
// round's best singleton (larger wins, ties to the earlier bucket).
// Examined counts sum only rounds the serial run would have executed.
func mergeSMLSH(res *Result, parts []Partial) {
	round := -1
	for _, p := range parts {
		if p.multiRound >= 0 && (round < 0 || p.multiRound < round) {
			round = p.multiRound
		}
	}
	if round >= 0 {
		var best *Partial
		for i := range parts {
			p := &parts[i]
			if p.multiRound != round {
				continue
			}
			if best == nil || p.multiScore > best.multiScore ||
				(p.multiScore == best.multiScore && p.multiBucket < best.multiBucket) {
				best = p
			}
		}
		res.Found = true
		res.Groups = best.multi
	}
	for _, p := range parts {
		lim := len(p.roundExam)
		if round >= 0 && round+1 < lim {
			// This shard kept relaxing past the globally successful round;
			// the serial scan never ran those rounds, so their buckets don't
			// count.
			lim = round + 1
		}
		for r := 0; r < lim; r++ {
			res.CandidatesExamined += p.roundExam[r]
		}
	}
	if res.Found {
		return
	}
	var fb *Partial
	for i := range parts {
		p := &parts[i]
		if p.singleRound < 0 {
			continue
		}
		if fb == nil || p.singleRound < fb.singleRound ||
			(p.singleRound == fb.singleRound && (p.singleSize > fb.singleSize ||
				(p.singleSize == fb.singleSize && p.singleBucket < fb.singleBucket))) {
			fb = p
		}
	}
	if fb != nil {
		res.Found = true
		res.Groups = fb.single
	}
}

// SolveSharded scatters one Solve across per-shard replica engines —
// engines[i] must be a deep-copy replica of the same snapshot (identical
// groups, signatures, store and pair-function overrides) — and gathers the
// partials into the Result a single-engine Solve would return. Context
// cancellation fans out: the first shard error cancels the remaining
// shards' work.
func SolveSharded(ctx context.Context, engines []*Engine, spec ProblemSpec, opts SolveOptions) (Result, error) {
	return scatter(ctx, engines, spec, func(fctx context.Context, eng *Engine, shard, of int) (Partial, error) {
		return eng.SolvePartial(fctx, spec, opts, shard, of)
	})
}

// ExactSharded is SolveSharded for the Exact baseline.
func ExactSharded(ctx context.Context, engines []*Engine, spec ProblemSpec, opts ExactOptions) (Result, error) {
	return scatter(ctx, engines, spec, func(fctx context.Context, eng *Engine, shard, of int) (Partial, error) {
		return eng.ExactPartial(fctx, spec, opts, shard, of)
	})
}

func scatter(ctx context.Context, engines []*Engine, spec ProblemSpec,
	run func(context.Context, *Engine, int, int) (Partial, error)) (Result, error) {
	start := time.Now()
	if len(engines) == 0 {
		return Result{}, fmt.Errorf("core: sharded solve needs at least one engine")
	}
	of := len(engines)
	parts := make([]Partial, of)
	errs := make([]error, of)
	fctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var wg sync.WaitGroup
	for si, eng := range engines {
		wg.Add(1)
		go func(si int, eng *Engine) {
			defer wg.Done()
			p, err := run(fctx, eng, si, of)
			parts[si], errs[si] = p, err
			if err != nil {
				// Fan the failure out: the other shards' cancellable loops
				// stop at their next checkpoint instead of running dead work.
				cancel()
			}
		}(si, eng)
	}
	wg.Wait()
	var firstErr error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if firstErr == nil {
			firstErr = err
		}
		if err != context.Canceled && err != context.DeadlineExceeded {
			// A real solver error beats the cancellations it induced.
			return Result{}, err
		}
	}
	if firstErr != nil {
		return Result{}, firstErr
	}
	return engines[0].MergePartials(spec, parts, start)
}
