package core

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"tagdm/internal/groups"
	"tagdm/internal/mining"
	"tagdm/internal/model"
	"tagdm/internal/obs"
	"tagdm/internal/signature"
	"tagdm/internal/store"
)

// buildWideEngine constructs an engine with n random groups over a small
// tuple universe — enough candidate volume to make the Exact enumeration
// take real time, which the cancellation tests need.
func buildWideEngine(t testing.TB, n int, seed int64) *Engine {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	const universe = 64
	d := model.NewDataset(model.NewSchema("u"), model.NewSchema("g"))
	user, err := d.AddUser(map[string]string{"u": "x"})
	if err != nil {
		t.Fatal(err)
	}
	item, err := d.AddItem(map[string]string{"g": "y"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < universe; i++ {
		if err := d.AddAction(user, item, 0, "t"); err != nil {
			t.Fatal(err)
		}
	}
	s, err := store.New(d)
	if err != nil {
		t.Fatal(err)
	}
	gs := make([]*groups.Group, n)
	for i := range gs {
		bm := store.NewBitmap(universe)
		for id := 0; id < universe; id++ {
			if rng.Float64() < 0.3 {
				bm.Set(id)
			}
		}
		if bm.Count() == 0 {
			bm.Set(rng.Intn(universe))
		}
		gs[i] = &groups.Group{ID: i, Tuples: bm, Members: bm.Slice()}
	}
	sigs := signature.SummarizeAll(signature.FrequencyOfSize(s.Vocab.Size()), s, gs)
	e, err := NewEngine(s, gs, sigs)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// slowExactSpec enumerates ~65M candidates over 200 groups with pruning
// disabled — several seconds of DFS when left alone.
func slowExactSpec() ProblemSpec {
	return ProblemSpec{
		Name: "slow", KLo: 1, KHi: 4,
		Objectives: []Objective{{Dim: mining.Tags, Meas: mining.Diversity, Weight: 1}},
	}
}

func TestExactHonorsCancellation(t *testing.T) {
	for _, parallel := range []bool{false, true} {
		name := "serial"
		if parallel {
			name = "parallel"
		}
		t.Run(name, func(t *testing.T) {
			e := buildWideEngine(t, 200, 7)
			e.PrewarmMatrices(slowExactSpec()) // keep the deadline out of the matrix build
			ctx, cancel := context.WithTimeout(context.Background(), 25*time.Millisecond)
			defer cancel()
			start := time.Now()
			res, err := e.Exact(ctx, slowExactSpec(), ExactOptions{DisablePruning: true, Parallel: parallel})
			elapsed := time.Since(start)
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("err = %v, want deadline exceeded", err)
			}
			if res.Found || len(res.Groups) != 0 {
				t.Fatalf("cancelled run returned a result: %+v", res)
			}
			// The full enumeration runs for seconds; a cancelled run must
			// stop near the deadline. The bound is loose to absorb slow CI
			// and the race detector.
			if elapsed > 5*time.Second {
				t.Fatalf("cancelled run kept working for %v", elapsed)
			}
		})
	}
}

func TestSolversRejectCancelledContext(t *testing.T) {
	e := buildEngine(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	spec, _ := PaperProblem(4, 2, 5, 0.5, 0.5) // diversity objective -> DV-FDP
	if _, err := e.DVFDP(ctx, spec, FDPOptions{Mode: Fold}); !errors.Is(err, context.Canceled) {
		t.Fatalf("DVFDP err = %v, want canceled", err)
	}
	sim, _ := PaperProblem(1, 2, 5, 0.5, 0.5)
	if _, err := e.SMLSH(ctx, sim, LSHOptions{Seed: 1}); !errors.Is(err, context.Canceled) {
		t.Fatalf("SMLSH err = %v, want canceled", err)
	}
	if _, err := e.Exact(ctx, spec, ExactOptions{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("Exact err = %v, want canceled", err)
	}
}

func TestResultStagesAndCounters(t *testing.T) {
	e := buildEngine(t)
	spec, _ := PaperProblem(3, 2, 5, 0.1, 0.1) // similarity objective -> SM-LSH
	div, _ := PaperProblem(4, 2, 5, 0.5, 0.5)  // diversity objective -> DV-FDP

	ex, err := e.Exact(context.Background(), spec, ExactOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Cold engine: the first run must have built matrices.
	if ex.MatrixBuilds == 0 {
		t.Fatalf("cold Exact run reports %d matrix builds", ex.MatrixBuilds)
	}
	if ex.StageWall(StageEnumerate) <= 0 {
		t.Fatalf("Exact stages missing enumerate: %+v", ex.Stages)
	}
	if ex.StageWall(StageMatrix) <= 0 {
		t.Fatalf("Exact stages missing matrix: %+v", ex.Stages)
	}
	if got := ex.PostingsCompressed + ex.PostingsDense; got != len(e.Groups) {
		t.Fatalf("posting layout census %d != %d groups", got, len(e.Groups))
	}

	// Same spec again: all bindings now come from the engine cache.
	ex2, err := e.Exact(context.Background(), spec, ExactOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if ex2.MatrixBuilds != 0 || ex2.MatrixHits == 0 {
		t.Fatalf("warm Exact run: builds=%d hits=%d", ex2.MatrixBuilds, ex2.MatrixHits)
	}

	lr, err := e.SMLSH(context.Background(), spec, LSHOptions{Seed: 7, Mode: Fold})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{StageMatrix, StageLSHBuild, StageBucketScan} {
		if lr.StageWall(want) <= 0 {
			t.Fatalf("SM-LSH stages missing %s: %+v", want, lr.Stages)
		}
	}

	dr, err := e.DVFDP(context.Background(), div, FDPOptions{Mode: Fold})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{StageMatrix, StageGreedy, StageLocalSearch} {
		if dr.StageWall(want) <= 0 {
			t.Fatalf("DV-FDP stages missing %s: %+v", want, dr.Stages)
		}
	}
}

func TestSolveEmitsTraceSpans(t *testing.T) {
	e := buildEngine(t)
	spec, _ := PaperProblem(4, 2, 5, 0.5, 0.5)
	root := obs.NewTrace("solve")
	ctx := obs.WithSpan(context.Background(), root)
	if _, err := e.Solve(ctx, spec, SolveOptions{FDP: FDPOptions{Mode: Fold}}); err != nil {
		t.Fatal(err)
	}
	root.End()
	tree := root.Tree()
	for _, want := range []string{StageMatrix, StageGreedy, StageLocalSearch} {
		if tree.Find(want) == nil {
			t.Fatalf("trace missing %s span: %+v", want, tree)
		}
	}
	// Stage spans and Result.Stages time the same windows; both must be
	// children of the root, not nested in each other.
	for _, c := range tree.Children {
		if len(c.Children) != 0 {
			t.Fatalf("stage span %s has unexpected children", c.Name)
		}
	}
}
