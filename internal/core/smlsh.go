package core

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"tagdm/internal/groups"
	"tagdm/internal/lsh"
	"tagdm/internal/mining"
	"tagdm/internal/vec"
)

// ConstraintMode selects how an approximate algorithm handles the hard
// constraints (paper Sections 4.2/4.3 and 5.2/5.3).
type ConstraintMode uint8

const (
	// Filter post-processes candidates for constraint satisfiability
	// (SM-LSH-Fi / DV-FDP-Fi).
	Filter ConstraintMode = iota
	// Fold folds compatible constraints into the search itself — into the
	// hashed vectors for LSH, into the greedy add step for FDP — and
	// filters only what cannot be folded (SM-LSH-Fo / DV-FDP-Fo).
	Fold
)

func (m ConstraintMode) String() string {
	if m == Filter {
		return "filter"
	}
	return "fold"
}

// LSHOptions tunes the SM-LSH family.
type LSHOptions struct {
	// DPrime is the initial number of hyperplanes (paper starts at 10).
	DPrime int
	// L is the number of hash tables (paper uses 1).
	L int
	// Seed drives hyperplane generation.
	Seed int64
	// Mode selects SM-LSH-Fi (Filter) or SM-LSH-Fo (Fold).
	Mode ConstraintMode
	// DisableRelaxation turns off the binary-search relaxation of DPrime
	// (Algorithm 1's repeat loop); used by ablation benches.
	DisableRelaxation bool
	// StrictBucketSize skips buckets holding more than KHi groups, exactly
	// as Algorithm 1's size check reads. The default (false) instead trims
	// an oversized bucket to its best KHi members by greedy objective
	// maximization — without this, datasets where many groups share a tag
	// signature hash to one giant bucket and every run returns null.
	StrictBucketSize bool
}

func (o LSHOptions) withDefaults() LSHOptions {
	if o.DPrime == 0 {
		o.DPrime = 10
	}
	if o.L == 0 {
		o.L = 1
	}
	return o
}

// SMLSH runs the LSH-based similarity maximizer (Algorithm 1 with the
// constraint handling of Sections 4.2/4.3). It requires a spec whose
// objectives are all similarity criteria; diversity objectives need the
// DVFDP family because the hash function cannot be inverted for
// dissimilarity (Section 4.3, Discussion).
//
// Bucket scoring is adaptively gated: bindings already materialized in
// the engine's matrix cache score from pure lookups, and on a cold engine
// the expected bucket-pair volume decides — when it is far below n²/2
// (the usual case: buckets are small at the paper's d'=10), the solve
// keeps the lazy pair-function path and skips the O(n²) build entirely,
// so one-shot runs over large universes no longer pay for matrices
// they'd barely read. Repeated solves (server snapshots, prewarmed
// engines) still amortize full matrices. Hash vectors and built indexes
// are shared per epoch through the same cache: every relaxation round and
// every concurrent request against one snapshot reuses them.
// Cancellation: ctx is checked once per relaxation round (each round is
// one LSH build plus one full bucket scan, the unit of work here); a
// cancelled run returns ctx.Err() with an empty result.
//
// Like the other families, this entry point is the single-shard case of
// the shard-aware path (shard.go): the relaxation d' sequence and each
// round's sorted bucket list are deterministic, so smlshPartial(shard 0
// of 1) scans everything and MergePartials folds the one partial into the
// Result.
func (e *Engine) SMLSH(ctx context.Context, spec ProblemSpec, opts LSHOptions) (Result, error) {
	if err := spec.Validate(); err != nil {
		return Result{}, err
	}
	if !spec.OptimizesSimilarityOnly() {
		return Result{}, fmt.Errorf("core: SM-LSH requires similarity objectives; got %v", spec.Objectives)
	}
	start := time.Now()
	p, err := e.smlshPartial(ctx, spec, opts, 0, 1)
	if err != nil {
		if cerr := ctx.Err(); cerr != nil && err == cerr {
			return Result{Algorithm: smlshName(opts)}, err
		}
		return Result{}, err
	}
	return e.MergePartials(spec, []Partial{p}, start)
}

func smlshName(opts LSHOptions) string {
	if opts.Mode == Fold {
		return "SM-LSH-Fo"
	}
	return "SM-LSH-Fi"
}

// smlshPartial runs the relaxation loop scanning only this shard's slice
// of each round's deterministically sorted bucket list. Every shard builds
// the same seeded index per round (replica vectors are identical), so the
// bucket lists agree; a shard breaks at its own first multi-group round
// and records per-round examined counts so the merge can discard rounds
// the serial run would never have reached.
func (e *Engine) smlshPartial(ctx context.Context, spec ProblemSpec, opts LSHOptions, shard, of int) (Partial, error) {
	if err := spec.Validate(); err != nil {
		return Partial{}, err
	}
	if !spec.OptimizesSimilarityOnly() {
		return Partial{}, fmt.Errorf("core: SM-LSH requires similarity objectives; got %v", spec.Objectives)
	}
	if err := checkShard(shard, of); err != nil {
		return Partial{}, err
	}
	opts = opts.withDefaults()
	p := Partial{
		kind: kindSMLSH, algorithm: smlshName(opts), shard: shard, of: of,
		bestTask: -1, multiRound: -1, multiBucket: -1, singleRound: -1, singleBucket: -1,
	}

	// One scorer serves every relaxation round: bucket feasibility and
	// ranking read cached pair matrices when present, and the adaptive
	// gate keeps the lazy pair-function path on cold one-shot solves.
	mt := p.startStage(ctx, StageMatrix)
	scorer := e.gatedScorer(spec, e.smlshPreferLazy(opts))
	mt.end()
	p.builds, p.rebuilds, p.hits, p.lazy = scorer.builds, scorer.rebuilds, scorer.hits, scorer.lazy
	foldUsers, foldItems := e.foldFlags(spec, opts.Mode)
	ht := p.startStage(ctx, StageLSHBuild)
	vectors := e.cache.hashVectors(vectorsKey{foldUsers, foldItems}, func() [][]float64 {
		return e.buildHashVectors(foldUsers, foldItems)
	})
	ht.end()

	// Binary-search relaxation over d' (Algorithm 1): try the current d';
	// on a null result, move to a coarser partition (fewer hyperplanes =>
	// bigger buckets => better odds a feasible bucket survives). A
	// feasible singleton bucket scores 0 on any pair-wise objective and
	// would otherwise satisfy the size check at every d', so the search
	// keeps relaxing until it finds a multi-group bucket and only falls
	// back to the best singleton when relaxation is exhausted.
	lo, hi := 1, opts.DPrime
	dprime := opts.DPrime
	round := 0
	//tagdm:cancellable
	for {
		if err := ctx.Err(); err != nil {
			return Partial{}, err
		}
		bt := p.startStage(ctx, StageLSHBuild)
		idx, err := e.cache.index(indexKey{foldUsers, foldItems, dprime, opts.L, opts.Seed}, func() (*lsh.Index, error) {
			return lsh.Build(vectors, lsh.Params{DPrime: dprime, L: opts.L, Seed: opts.Seed})
		})
		bt.end()
		if err != nil {
			return Partial{}, err
		}
		st := p.startStage(ctx, StageBucketScan)
		scan := e.scanBuckets(idx, spec, opts, scorer, shard, of)
		st.end()
		p.roundExam = append(p.roundExam, scan.examined)
		if scan.multi != nil {
			p.multiRound = round
			p.multiScore = scan.multiScore
			p.multiBucket = scan.multiBucket
			p.multi = scan.multi
			break
		}
		if scan.single != nil && p.single == nil {
			p.singleRound = round
			p.singleSize = scan.singleSize
			p.singleBucket = scan.singleBucket
			p.single = scan.single
		}
		if opts.DisableRelaxation {
			break
		}
		hi = dprime - 1
		if lo > hi {
			break
		}
		dprime = (lo + hi) / 2
		round++
	}
	return p, nil
}

// smlshPreferLazy is the adaptive matrix gate: it estimates the pair
// volume the first two relaxation rounds are expected to read (bucket
// feasibility and ranking touch ~|b|²/2 pairs per bucket; uniform hashing
// puts that near L·n²/2^(d'+1) per round) and prefers the lazy
// pair-function path when doubling that estimate still falls well below
// the n(n-1)/2 pairs a full matrix build pays. With the paper's d'=10 the
// estimate is ~n²/700, so cold one-shot solves gate lazy; tiny d' or many
// tables flip it back to materializing. A heuristic only — deep
// relaxation on null-heavy corpora can exceed the estimate — and results
// are unchanged either way (lazy sources are bit-identical).
func (e *Engine) smlshPreferLazy(opts LSHOptions) bool {
	n := len(e.Groups)
	if n < 2 {
		return true
	}
	total := float64(n) * float64(n-1) / 2
	d0 := opts.DPrime
	d1 := d0 / 2 // the first relaxation target: (1 + d0-1)/2
	perRound := func(d int) float64 {
		buckets := math.Ldexp(1, d) // 2^d
		if buckets > float64(n) {
			buckets = float64(n)
		}
		return float64(opts.L) * total / buckets
	}
	est := perRound(d0) + perRound(d1)
	return 2*est < total
}

// foldFlags reports which structural dimensions Fold mode folds into the
// hashed vectors for this spec: similarity constraints on the user and/or
// item dimensions (diversity constraints cannot be folded into LSH).
func (e *Engine) foldFlags(spec ProblemSpec, mode ConstraintMode) (foldUsers, foldItems bool) {
	if mode != Fold {
		return false, false
	}
	for _, c := range spec.Constraints {
		if c.Meas != mining.Similarity {
			continue
		}
		switch c.Dim {
		case mining.Users:
			foldUsers = true
		case mining.Items:
			foldItems = true
		}
	}
	return foldUsers, foldItems
}

// buildHashVectors builds the per-group vectors to hash. Without folding
// the vector is the (normalized) tag signature alone; with foldUsers/
// foldItems set, one-hot encodings of the group's structural description
// are concatenated in (Section 4.3), so groups that agree on those
// attributes tend to collide. Deterministic in the engine's groups and
// signatures, so replicas and repeated requests share one build through
// the engine cache.
func (e *Engine) buildHashVectors(foldUsers, foldItems bool) [][]float64 {
	us, is := e.Store.UserSchema, e.Store.ItemSchema
	uOffs, iOffs := us.OneHotOffsets(), is.OneHotOffsets()
	uDim, iDim := us.TotalCardinality(), is.TotalCardinality()

	vectors := make([][]float64, len(e.Groups))
	for gi, g := range e.Groups {
		sig := make([]float64, len(e.Sigs[gi].Weights))
		copy(sig, e.Sigs[gi].Weights)
		vec.Normalize(sig)
		parts := make([][]float64, 0, 3)
		if foldUsers {
			oh := make([]float64, uDim)
			for a := 0; a < us.Len(); a++ {
				if v := g.UserValue(a); v != 0 {
					oh[uOffs[a]+int(v)-1] = 1
				}
			}
			vec.Normalize(oh)
			parts = append(parts, oh)
		}
		if foldItems {
			oh := make([]float64, iDim)
			for a := 0; a < is.Len(); a++ {
				if v := g.ItemValue(a); v != 0 {
					oh[iOffs[a]+int(v)-1] = 1
				}
			}
			vec.Normalize(oh)
			parts = append(parts, oh)
		}
		parts = append(parts, sig)
		vectors[gi] = vec.Concat(parts...)
	}
	return vectors
}

// bucketScan is one round's shard-local outcome: the best multi-group set
// (with its score and position in the sorted bucket list, for cross-shard
// tie-breaking), the best feasible singleton (with its size and position),
// and how many buckets this shard examined.
type bucketScan struct {
	multi        []*groups.Group
	multiScore   float64
	multiBucket  int
	single       []*groups.Group
	singleSize   int
	singleBucket int
	examined     int64
}

// scanBuckets scans this shard's slice of the index's buckets — positions
// congruent to shard mod of in the deterministically sorted bucket list —
// keeps those whose group count fits [KLo, KHi] (trimming oversized
// buckets unless strict), checks feasibility, and ranks by objective
// score. (Table, Signature) keys are unique, so the sort is a total order
// every shard agrees on.
func (e *Engine) scanBuckets(idx *lsh.Index, spec ProblemSpec, opts LSHOptions, sc *matrixScorer, shard, of int) bucketScan {
	buckets := idx.Buckets()
	// Deterministic processing order regardless of map iteration.
	sort.Slice(buckets, func(i, j int) bool {
		if buckets[i].Table != buckets[j].Table {
			return buckets[i].Table < buckets[j].Table
		}
		return buckets[i].Signature < buckets[j].Signature
	})
	out := bucketScan{multiScore: -1.0, multiBucket: -1, singleBucket: -1}
	for bi, b := range buckets {
		if of > 1 && bi%of != shard {
			continue
		}
		out.examined++
		if len(b.IDs) < spec.KLo {
			continue
		}
		ids := b.IDs
		if len(ids) > spec.KHi {
			if opts.StrictBucketSize {
				continue
			}
			ids = e.trimBucket(ids, spec, sc)
		}
		// Both modes must end with a feasible set; folding only raises the
		// odds that co-hashed groups already satisfy the folded
		// constraints, it does not remove the final check for the rest.
		// Rejected buckets — the overwhelming majority — cost matrix
		// lookups only; groups materialize just for the survivors.
		if !sc.feasible(ids) {
			continue
		}
		set := make([]*groups.Group, len(ids))
		for i, id := range ids {
			set[i] = e.Groups[id]
		}
		if len(set) == 1 {
			if set[0].Size() > out.singleSize {
				out.singleSize = set[0].Size()
				out.single = set
				out.singleBucket = bi
			}
			continue
		}
		if score := sc.objective(ids); score > out.multiScore {
			out.multiScore = score
			out.multi = set
			out.multiBucket = bi
		}
	}
	return out
}

// trimBucket reduces an oversized bucket to KHi members by greedy objective
// maximization: seed with the pair of maximal pair score, then repeatedly
// add the member with the greatest total score against the selection.
// When a support floor is set, trimming prefers members large enough that
// KHi of them can clear it (size >= MinSupport/KHi), falling back to the
// whole bucket when too few qualify.
func (e *Engine) trimBucket(ids []int, spec ProblemSpec, sc *matrixScorer) []int {
	k := spec.KHi
	if spec.MinSupport > 0 && k > 0 {
		floor := (spec.MinSupport + k - 1) / k
		big := make([]int, 0, len(ids))
		for _, id := range ids {
			if e.Groups[id].Size() >= floor {
				big = append(big, id)
			}
		}
		if len(big) >= 2 {
			ids = big
		}
	}
	pair := sc.pairObjective
	// Seed with the best pair.
	bi, bj, best := 0, 1, -1.0
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			if s := pair(ids[i], ids[j]); s > best {
				best, bi, bj = s, i, j
			}
		}
	}
	selected := []int{ids[bi], ids[bj]}
	used := map[int]bool{ids[bi]: true, ids[bj]: true}
	for len(selected) < k {
		cand, candScore := -1, -1.0
		for _, id := range ids {
			if used[id] {
				continue
			}
			var s float64
			for _, sel := range selected {
				s += pair(id, sel)
			}
			if s > candScore {
				cand, candScore = id, s
			}
		}
		if cand == -1 {
			break
		}
		selected = append(selected, cand)
		used[cand] = true
	}
	return selected
}
