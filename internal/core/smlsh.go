package core

import (
	"context"
	"fmt"
	"sort"
	"time"

	"tagdm/internal/groups"
	"tagdm/internal/lsh"
	"tagdm/internal/mining"
	"tagdm/internal/vec"
)

// ConstraintMode selects how an approximate algorithm handles the hard
// constraints (paper Sections 4.2/4.3 and 5.2/5.3).
type ConstraintMode uint8

const (
	// Filter post-processes candidates for constraint satisfiability
	// (SM-LSH-Fi / DV-FDP-Fi).
	Filter ConstraintMode = iota
	// Fold folds compatible constraints into the search itself — into the
	// hashed vectors for LSH, into the greedy add step for FDP — and
	// filters only what cannot be folded (SM-LSH-Fo / DV-FDP-Fo).
	Fold
)

func (m ConstraintMode) String() string {
	if m == Filter {
		return "filter"
	}
	return "fold"
}

// LSHOptions tunes the SM-LSH family.
type LSHOptions struct {
	// DPrime is the initial number of hyperplanes (paper starts at 10).
	DPrime int
	// L is the number of hash tables (paper uses 1).
	L int
	// Seed drives hyperplane generation.
	Seed int64
	// Mode selects SM-LSH-Fi (Filter) or SM-LSH-Fo (Fold).
	Mode ConstraintMode
	// DisableRelaxation turns off the binary-search relaxation of DPrime
	// (Algorithm 1's repeat loop); used by ablation benches.
	DisableRelaxation bool
	// StrictBucketSize skips buckets holding more than KHi groups, exactly
	// as Algorithm 1's size check reads. The default (false) instead trims
	// an oversized bucket to its best KHi members by greedy objective
	// maximization — without this, datasets where many groups share a tag
	// signature hash to one giant bucket and every run returns null.
	StrictBucketSize bool
}

func (o LSHOptions) withDefaults() LSHOptions {
	if o.DPrime == 0 {
		o.DPrime = 10
	}
	if o.L == 0 {
		o.L = 1
	}
	return o
}

// SMLSH runs the LSH-based similarity maximizer (Algorithm 1 with the
// constraint handling of Sections 4.2/4.3). It requires a spec whose
// objectives are all similarity criteria; diversity objectives need the
// DVFDP family because the hash function cannot be inverted for
// dissimilarity (Section 4.3, Discussion).
//
// Bucket scoring reads the engine's precomputed pair matrices, which on a
// cold engine costs an O(n^2) parallel build per binding before any bucket
// is hashed — a deliberate trade: repeated solves (relaxation rounds here,
// every later run on the engine, every concurrent request against a server
// snapshot) then score from pure lookups. For one-shot runs over very
// large group universes, prefer engines that outlive the query (or the
// server's per-epoch sharing); adaptive gating is a roadmap item.
// Cancellation: ctx is checked once per relaxation round (each round is
// one LSH build plus one full bucket scan, the unit of work here); a
// cancelled run returns ctx.Err() with an empty result.
func (e *Engine) SMLSH(ctx context.Context, spec ProblemSpec, opts LSHOptions) (Result, error) {
	if err := spec.Validate(); err != nil {
		return Result{}, err
	}
	if !spec.OptimizesSimilarityOnly() {
		return Result{}, fmt.Errorf("core: SM-LSH requires similarity objectives; got %v", spec.Objectives)
	}
	opts = opts.withDefaults()
	start := time.Now()
	name := "SM-LSH-Fi"
	if opts.Mode == Fold {
		name = "SM-LSH-Fo"
	}
	res := Result{Algorithm: name}

	// One matrix-backed scorer serves every relaxation round: bucket
	// feasibility and ranking read precomputed pair values.
	mt := startStage(ctx, &res, StageMatrix)
	scorer := e.scorer(spec)
	mt.end()
	res.MatrixBuilds, res.MatrixHits = scorer.builds, scorer.hits
	ht := startStage(ctx, &res, StageLSHBuild)
	vectors := e.hashVectors(spec, opts.Mode)
	ht.end()

	// Binary-search relaxation over d' (Algorithm 1): try the current d';
	// on a null result, move to a coarser partition (fewer hyperplanes =>
	// bigger buckets => better odds a feasible bucket survives). A
	// feasible singleton bucket scores 0 on any pair-wise objective and
	// would otherwise satisfy the size check at every d', so the search
	// keeps relaxing until it finds a multi-group bucket and only falls
	// back to the best singleton when relaxation is exhausted.
	lo, hi := 1, opts.DPrime
	dprime := opts.DPrime
	var fallback []*groups.Group
	//tagdm:cancellable
	for {
		if err := ctx.Err(); err != nil {
			return Result{Algorithm: name}, err
		}
		bt := startStage(ctx, &res, StageLSHBuild)
		idx, err := lsh.Build(vectors, lsh.Params{DPrime: dprime, L: opts.L, Seed: opts.Seed})
		bt.end()
		if err != nil {
			return Result{}, err
		}
		st := startStage(ctx, &res, StageBucketScan)
		found, single, examined := e.bestBucket(idx, spec, opts, scorer)
		st.end()
		res.CandidatesExamined += examined
		if found != nil {
			res.Found = true
			res.Groups = found
			break
		}
		if single != nil && fallback == nil {
			fallback = single
		}
		if opts.DisableRelaxation {
			break
		}
		hi = dprime - 1
		if lo > hi {
			break
		}
		dprime = (lo + hi) / 2
	}
	if !res.Found && fallback != nil {
		res.Found = true
		res.Groups = fallback
	}
	e.finish(&res, spec, start)
	return res, nil
}

// hashVectors builds the per-group vectors to hash. In Filter mode the
// vector is the (normalized) tag signature alone. In Fold mode, similarity
// constraints on the user and/or item dimensions are folded in by
// concatenating one-hot encodings of the group's structural description
// (Section 4.3), so groups that agree on those attributes tend to collide.
func (e *Engine) hashVectors(spec ProblemSpec, mode ConstraintMode) [][]float64 {
	foldUsers, foldItems := false, false
	if mode == Fold {
		for _, c := range spec.Constraints {
			if c.Meas != mining.Similarity {
				continue // diversity constraints cannot be folded into LSH
			}
			switch c.Dim {
			case mining.Users:
				foldUsers = true
			case mining.Items:
				foldItems = true
			}
		}
	}
	us, is := e.Store.UserSchema, e.Store.ItemSchema
	uOffs, iOffs := us.OneHotOffsets(), is.OneHotOffsets()
	uDim, iDim := us.TotalCardinality(), is.TotalCardinality()

	vectors := make([][]float64, len(e.Groups))
	for gi, g := range e.Groups {
		sig := make([]float64, len(e.Sigs[gi].Weights))
		copy(sig, e.Sigs[gi].Weights)
		vec.Normalize(sig)
		parts := make([][]float64, 0, 3)
		if foldUsers {
			oh := make([]float64, uDim)
			for a := 0; a < us.Len(); a++ {
				if v := g.UserValue(a); v != 0 {
					oh[uOffs[a]+int(v)-1] = 1
				}
			}
			vec.Normalize(oh)
			parts = append(parts, oh)
		}
		if foldItems {
			oh := make([]float64, iDim)
			for a := 0; a < is.Len(); a++ {
				if v := g.ItemValue(a); v != 0 {
					oh[iOffs[a]+int(v)-1] = 1
				}
			}
			vec.Normalize(oh)
			parts = append(parts, oh)
		}
		parts = append(parts, sig)
		vectors[gi] = vec.Concat(parts...)
	}
	return vectors
}

// bestBucket scans every bucket of the index, keeps those whose group count
// fits [KLo, KHi] (trimming oversized buckets unless strict), checks
// feasibility, ranks by objective score, and returns the best multi-group
// set plus the best feasible singleton (both nil when none qualify).
func (e *Engine) bestBucket(idx *lsh.Index, spec ProblemSpec, opts LSHOptions, sc *matrixScorer) (multi, single []*groups.Group, examined int64) {
	buckets := idx.Buckets()
	// Deterministic processing order regardless of map iteration.
	sort.Slice(buckets, func(i, j int) bool {
		if buckets[i].Table != buckets[j].Table {
			return buckets[i].Table < buckets[j].Table
		}
		return buckets[i].Signature < buckets[j].Signature
	})
	bestScore := -1.0
	var bestSingleSize int
	for _, b := range buckets {
		examined++
		if len(b.IDs) < spec.KLo {
			continue
		}
		ids := b.IDs
		if len(ids) > spec.KHi {
			if opts.StrictBucketSize {
				continue
			}
			ids = e.trimBucket(ids, spec, sc)
		}
		// Both modes must end with a feasible set; folding only raises the
		// odds that co-hashed groups already satisfy the folded
		// constraints, it does not remove the final check for the rest.
		// Rejected buckets — the overwhelming majority — cost matrix
		// lookups only; groups materialize just for the survivors.
		if !sc.feasible(ids) {
			continue
		}
		set := make([]*groups.Group, len(ids))
		for i, id := range ids {
			set[i] = e.Groups[id]
		}
		if len(set) == 1 {
			if set[0].Size() > bestSingleSize {
				bestSingleSize = set[0].Size()
				single = set
			}
			continue
		}
		if score := sc.objective(ids); score > bestScore {
			bestScore = score
			multi = set
		}
	}
	return multi, single, examined
}

// trimBucket reduces an oversized bucket to KHi members by greedy objective
// maximization: seed with the pair of maximal pair score, then repeatedly
// add the member with the greatest total score against the selection.
// When a support floor is set, trimming prefers members large enough that
// KHi of them can clear it (size >= MinSupport/KHi), falling back to the
// whole bucket when too few qualify.
func (e *Engine) trimBucket(ids []int, spec ProblemSpec, sc *matrixScorer) []int {
	k := spec.KHi
	if spec.MinSupport > 0 && k > 0 {
		floor := (spec.MinSupport + k - 1) / k
		big := make([]int, 0, len(ids))
		for _, id := range ids {
			if e.Groups[id].Size() >= floor {
				big = append(big, id)
			}
		}
		if len(big) >= 2 {
			ids = big
		}
	}
	pair := sc.pairObjective
	// Seed with the best pair.
	bi, bj, best := 0, 1, -1.0
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			if s := pair(ids[i], ids[j]); s > best {
				best, bi, bj = s, i, j
			}
		}
	}
	selected := []int{ids[bi], ids[bj]}
	used := map[int]bool{ids[bi]: true, ids[bj]: true}
	for len(selected) < k {
		cand, candScore := -1, -1.0
		for _, id := range ids {
			if used[id] {
				continue
			}
			var s float64
			for _, sel := range selected {
				s += pair(id, sel)
			}
			if s > candScore {
				cand, candScore = id, s
			}
		}
		if cand == -1 {
			break
		}
		selected = append(selected, cand)
		used[cand] = true
	}
	return selected
}
