package core

import (
	"context"
	"time"

	"tagdm/internal/obs"
)

// Canonical solver stage names. Every solver attributes its wall time to
// these stages on Result.Stages and, when the context carries an obs
// trace, mirrors them as child spans; the server keys its per-stage
// latency histograms on the same strings.
const (
	// StageMatrix is pair-matrix materialization (engine cache hits cost
	// near zero; misses pay the O(n^2) parallel build).
	StageMatrix = "matrix"
	// StageEnumerate is the Exact DFS over candidate sets, including
	// branch-and-bound pruning work.
	StageEnumerate = "enumerate"
	// StageLSHBuild is hash-vector construction plus per-round LSH index
	// builds (SM-LSH).
	StageLSHBuild = "lsh_build"
	// StageBucketScan is per-round bucket scanning/ranking (SM-LSH).
	StageBucketScan = "bucket_scan"
	// StageGreedy is the dispersion greedy including floor sweep and
	// anchored starts (DV-FDP).
	StageGreedy = "greedy"
	// StageLocalSearch is the post-greedy swap improvement (DV-FDP).
	StageLocalSearch = "local_search"
)

// stageTimer attributes one stage's wall time to a Result and, when the
// context carries a trace, to a child span. The zero-cost contract of
// obs.StartSpan holds here too: untraced runs pay two time.Now calls and
// a slice append per stage, nothing else.
type stageTimer struct {
	res   *Result
	name  string
	span  *obs.Span
	start time.Time
}

func startStage(ctx context.Context, res *Result, name string) stageTimer {
	return stageTimer{res: res, name: name, span: obs.StartSpan(ctx, name), start: time.Now()}
}

func (t stageTimer) end() {
	t.span.End()
	t.res.addStage(t.name, time.Since(t.start))
}
