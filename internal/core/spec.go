// Package core implements the Tagging Behavior Dual Mining (TagDM) engine:
// the generalized constrained-optimization problem of Definition 4 and the
// paper's algorithm families for solving it — the exact brute-force
// baseline (Section 3.1), the LSH-based SM-LSH/SM-LSH-Fi/SM-LSH-Fo
// similarity maximizers (Section 4), and the facility-dispersion-based
// DV-FDP/DV-FDP-Fi/DV-FDP-Fo diversity maximizers (Section 5).
package core

import (
	"fmt"

	"tagdm/internal/mining"
)

// Constraint is one hard constraint c_i: F(Gopt, Dim, Meas) >= Threshold.
type Constraint struct {
	Dim       mining.Dimension
	Meas      mining.Measure
	Threshold float64
}

func (c Constraint) String() string {
	return fmt.Sprintf("%s(%s) >= %.2f", c.Meas, c.Dim, c.Threshold)
}

// Objective is one optimization criterion o_j with weight o_j.Wt; the
// engine maximizes the weighted sum of objective scores.
type Objective struct {
	Dim    mining.Dimension
	Meas   mining.Measure
	Weight float64
}

func (o Objective) String() string {
	return fmt.Sprintf("%.2f*%s(%s)", o.Weight, o.Meas, o.Dim)
}

// ProblemSpec is a concrete TagDM problem instance <G, C, O> plus the
// structural constraints of Definition 4: group-count bounds and minimum
// group support.
type ProblemSpec struct {
	// KLo and KHi bound the number of returned groups (klo <= |Gopt| <= khi).
	KLo, KHi int
	// MinSupport is p: the union of returned groups must cover at least
	// this many tagging action tuples. Zero disables the check.
	MinSupport int
	// Constraints are the hard constraints C.
	Constraints []Constraint
	// Objectives are the optimization criteria O (weighted sum maximized).
	Objectives []Objective
	// Name labels the instance in reports (e.g. "Problem 4").
	Name string
}

// Validate rejects malformed specs.
func (p ProblemSpec) Validate() error {
	if p.KLo < 1 {
		return fmt.Errorf("core: KLo must be >= 1, got %d", p.KLo)
	}
	if p.KHi < p.KLo {
		return fmt.Errorf("core: KHi %d < KLo %d", p.KHi, p.KLo)
	}
	if len(p.Objectives) == 0 {
		return fmt.Errorf("core: no objectives")
	}
	for _, o := range p.Objectives {
		if o.Weight <= 0 {
			return fmt.Errorf("core: objective %s has non-positive weight", o)
		}
	}
	for _, c := range p.Constraints {
		if c.Threshold < 0 || c.Threshold > 1 {
			return fmt.Errorf("core: constraint %s threshold out of [0,1]", c)
		}
	}
	return nil
}

// OptimizesSimilarityOnly reports whether every objective is a similarity
// criterion; the SM-LSH family applies only then (Section 4).
func (p ProblemSpec) OptimizesSimilarityOnly() bool {
	for _, o := range p.Objectives {
		if o.Meas != mining.Similarity {
			return false
		}
	}
	return true
}

// paperMeasures holds the per-dimension measure assignments of Table 1.
var paperMeasures = map[int][3]mining.Measure{
	// index order: users, items, tags
	1: {mining.Similarity, mining.Similarity, mining.Similarity},
	2: {mining.Similarity, mining.Diversity, mining.Similarity},
	3: {mining.Diversity, mining.Similarity, mining.Similarity},
	4: {mining.Diversity, mining.Similarity, mining.Diversity},
	5: {mining.Similarity, mining.Diversity, mining.Diversity},
	6: {mining.Similarity, mining.Similarity, mining.Diversity},
}

// PaperProblem returns Table 1's problem instance id (1..6) with the given
// parameters: at most k groups, support >= p, user-dimension threshold q
// and item-dimension threshold r, optimizing the tag dimension.
func PaperProblem(id, k, p int, q, r float64) (ProblemSpec, error) {
	ms, ok := paperMeasures[id]
	if !ok {
		return ProblemSpec{}, fmt.Errorf("core: paper problem id %d not in 1..6", id)
	}
	spec := ProblemSpec{
		KLo:        1,
		KHi:        k,
		MinSupport: p,
		Constraints: []Constraint{
			{Dim: mining.Users, Meas: ms[0], Threshold: q},
			{Dim: mining.Items, Meas: ms[1], Threshold: r},
		},
		Objectives: []Objective{{Dim: mining.Tags, Meas: ms[2], Weight: 1}},
		Name:       fmt.Sprintf("Problem %d", id),
	}
	return spec, nil
}

// AllRoles enumerates the framework's concrete problem instances: for each
// of the 2^3 per-dimension measure assignments, each dimension is
// independently a constraint, an objective, or unused (the paper counts 112
// instances from these two variation axes). The enumeration here keeps only
// *solvable* instances — at least one objective — and treats the measure of
// an unused dimension as irrelevant, deduplicating accordingly, which
// yields 98 distinct optimizable specs. Thresholds default to 0.5, k to
// [1, 3], with no support floor; callers adjust as needed.
func AllRoles() []ProblemSpec {
	type role uint8
	const (
		unused role = iota
		constrain
		optimize
	)
	dims := []mining.Dimension{mining.Users, mining.Items, mining.Tags}
	seen := make(map[string]bool)
	var out []ProblemSpec
	var measures [3]mining.Measure
	var roles [3]role
	var rec func(i int)
	buildKey := func() string {
		key := ""
		for d := 0; d < 3; d++ {
			switch roles[d] {
			case unused:
				key += "u--;" // measure irrelevant when unused
			case constrain:
				key += fmt.Sprintf("c%s;", measures[d])
			case optimize:
				key += fmt.Sprintf("o%s;", measures[d])
			}
		}
		return key
	}
	var rec2 func(i int)
	rec = func(i int) {
		if i == 3 {
			rec2(0)
			return
		}
		for _, m := range []mining.Measure{mining.Similarity, mining.Diversity} {
			measures[i] = m
			rec(i + 1)
		}
	}
	rec2 = func(i int) {
		if i == 3 {
			anyUsed := roles[0] != unused || roles[1] != unused || roles[2] != unused
			anyObjective := roles[0] == optimize || roles[1] == optimize || roles[2] == optimize
			if !anyUsed || !anyObjective {
				return
			}
			key := buildKey()
			if seen[key] {
				return
			}
			seen[key] = true
			spec := ProblemSpec{KLo: 1, KHi: 3, Name: key}
			for d := 0; d < 3; d++ {
				switch roles[d] {
				case constrain:
					spec.Constraints = append(spec.Constraints,
						Constraint{Dim: dims[d], Meas: measures[d], Threshold: 0.5})
				case optimize:
					spec.Objectives = append(spec.Objectives,
						Objective{Dim: dims[d], Meas: measures[d], Weight: 1})
				}
			}
			out = append(out, spec)
			return
		}
		for _, r := range []role{unused, constrain, optimize} {
			roles[i] = r
			rec2(i + 1)
		}
	}
	rec(0)
	return out
}
