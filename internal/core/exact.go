package core

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"tagdm/internal/groups"
)

// DefaultMaxExactCandidates caps the number of candidate sets the Exact
// baseline will enumerate before refusing to run. The brute force is
// exponential (Section 3.1); the cap turns an accidental week-long run into
// an immediate error.
const DefaultMaxExactCandidates = 100_000_000

// ExactOptions tunes the brute-force baseline.
type ExactOptions struct {
	// MaxCandidates overrides DefaultMaxExactCandidates when > 0.
	MaxCandidates int64
	// Parallel splits the enumeration across GOMAXPROCS workers by first
	// element. The result is identical to the serial run (ties broken by
	// lexicographically smallest candidate).
	Parallel bool
}

// Exact enumerates every candidate set of size KLo..KHi over the engine's
// groups, keeps those satisfying all constraints, and returns the feasible
// set with maximum objective. This is the paper's Exact baseline: optimal
// but exponential in k.
func (e *Engine) Exact(spec ProblemSpec, opts ExactOptions) (Result, error) {
	if err := spec.Validate(); err != nil {
		return Result{}, err
	}
	start := time.Now()
	n := len(e.Groups)
	limit := opts.MaxCandidates
	if limit <= 0 {
		limit = DefaultMaxExactCandidates
	}
	var total int64
	for k := spec.KLo; k <= spec.KHi && k <= n; k++ {
		c := binomial(n, k)
		if c < 0 || total+c < 0 {
			total = -1
			break
		}
		total += c
	}
	if total < 0 || total > limit {
		return Result{}, fmt.Errorf(
			"core: exact enumeration over %d groups (k in [%d,%d]) exceeds candidate cap %d",
			n, spec.KLo, spec.KHi, limit)
	}

	res := Result{Algorithm: "Exact"}
	if opts.Parallel {
		e.exactParallel(spec, &res)
	} else {
		w := exactWorker{engine: e, spec: spec}
		for k := spec.KLo; k <= spec.KHi && k <= n; k++ {
			w.enumerate(0, k, 1)
		}
		res.CandidatesExamined = w.examined
		res.Found = w.found
		res.Groups = w.best
	}
	e.finish(&res, spec, start)
	return res, nil
}

// exactWorker explores one shard of the candidate space: first elements i
// with i % stride == offset (offset encoded by the initial call), then all
// completions. It keeps the first maximum it encounters, which in the
// enumeration order means the lexicographically smallest argmax.
type exactWorker struct {
	engine    *Engine
	spec      ProblemSpec
	set       []*groups.Group
	best      []*groups.Group
	bestScore float64
	found     bool
	examined  int64
	offset    int
}

// enumerate recursively extends the worker's candidate set; stride shards
// only the outermost level (depth == full k).
func (w *exactWorker) enumerate(startIdx, k, stride int) {
	e := w.engine
	n := len(e.Groups)
	if k == 0 {
		w.examined++
		if !e.ConstraintsSatisfied(w.set, w.spec) {
			return
		}
		if score := e.ObjectiveScore(w.set, w.spec); !w.found || score > w.bestScore {
			w.bestScore = score
			w.best = append(w.best[:0], w.set...)
			w.found = true
		}
		return
	}
	first, step := startIdx, 1
	if stride > 1 {
		// Align to this worker's shard of the outermost level.
		step = stride
		for first <= n-k && first%stride != w.offset {
			first++
		}
	}
	for i := first; i <= n-k; i += step {
		w.set = append(w.set, e.Groups[i])
		w.enumerate(i+1, k-1, 1)
		w.set = w.set[:len(w.set)-1]
	}
}

// exactParallel shards the outer loop across GOMAXPROCS workers and merges
// deterministically: highest score wins, ties go to the candidate that the
// serial enumeration would have met first (smaller size, then smaller
// group IDs).
func (e *Engine) exactParallel(spec ProblemSpec, res *Result) {
	n := len(e.Groups)
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	// Warm the pair-function cache: workers only read it afterwards.
	for _, c := range spec.Constraints {
		e.PairFunc(c.Dim, c.Meas)
	}
	for _, o := range spec.Objectives {
		e.PairFunc(o.Dim, o.Meas)
	}
	results := make([]exactWorker, workers)
	var wg sync.WaitGroup
	for wi := 0; wi < workers; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			w := &results[wi]
			w.engine, w.spec, w.offset = e, spec, wi
			for k := spec.KLo; k <= spec.KHi && k <= n; k++ {
				w.enumerate(0, k, workers)
			}
		}(wi)
	}
	wg.Wait()
	for i := range results {
		w := &results[i]
		res.CandidatesExamined += w.examined
		if !w.found {
			continue
		}
		if !res.Found || w.bestScore > resScore(res) ||
			(w.bestScore == resScore(res) && lessCandidate(w.best, res.Groups)) {
			res.Found = true
			res.Groups = append([]*groups.Group(nil), w.best...)
			res.Objective = w.bestScore
		}
	}
}

func resScore(r *Result) float64 { return r.Objective }

// lessCandidate orders candidate sets the way the serial enumeration meets
// them: by size, then lexicographically by group ID.
func lessCandidate(a, b []*groups.Group) bool {
	if len(a) != len(b) {
		return len(a) < len(b)
	}
	for i := range a {
		if a[i].ID != b[i].ID {
			return a[i].ID < b[i].ID
		}
	}
	return false
}

func binomial(n, k int) int64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	var c int64 = 1
	for i := 0; i < k; i++ {
		c = c * int64(n-i) / int64(i+1)
		if c < 0 || c > 1<<62 {
			return -1
		}
	}
	return c
}
