package core

import (
	"context"
	"math"
	"time"

	"tagdm/internal/groups"
	"tagdm/internal/mining"
	"tagdm/internal/store"
)

// DefaultMaxExactCandidates caps the number of candidate sets the Exact
// baseline will enumerate before refusing to run. The brute force is
// exponential (Section 3.1); the cap turns an accidental week-long run into
// an immediate error.
const DefaultMaxExactCandidates = 100_000_000

// ExactOptions tunes the brute-force baseline.
type ExactOptions struct {
	// MaxCandidates overrides DefaultMaxExactCandidates when > 0.
	MaxCandidates int64
	// Parallel splits the enumeration across GOMAXPROCS workers by first
	// element. The result is identical to the serial run (ties broken by
	// lexicographically smallest candidate).
	Parallel bool
	// DisablePruning turns off the branch-and-bound subtree cuts and
	// enumerates every candidate, as the pre-pruning baseline did. Pruning
	// is on by default; the disabled path is retained as the oracle the
	// property tests compare against. Either way the returned result is
	// identical — pruning only skips candidates that provably cannot beat
	// the incumbent — but CandidatesExamined/CandidatesPruned split
	// differently (see Result).
	DisablePruning bool
}

// Exact enumerates every candidate set of size KLo..KHi over the engine's
// groups, keeps those satisfying all constraints, and returns the feasible
// set with maximum objective. This is the paper's Exact baseline: optimal
// but exponential in k.
//
// Scoring is incremental over precomputed pair matrices: every pair
// function is evaluated once per group pair at setup, and the depth-first
// enumeration maintains running objective/constraint pair-sums and a
// push/pop support union, so extending a candidate by one group costs O(k)
// float lookups plus one bitmap pass — no recomputation and no allocation
// per candidate. Decisions and the returned argmax are identical to
// evaluating every candidate from scratch with ObjectiveScore and
// ConstraintsSatisfied (for k up to 3, the paper's setting, scores are
// bit-for-bit equal; beyond that the same pair values are summed in a
// different association order).
//
// On top of the incremental scoring, the DFS applies admissible
// branch-and-bound pruning (on by default; ExactOptions.DisablePruning
// restores the full enumeration): per-objective max-row vectors cached on
// the pair matrices upper-bound the pair-sum of any completion of a partial
// candidate, and subtrees whose bound cannot strictly beat the incumbent
// are cut wholesale. Pruning never changes Found, the argmax set, Objective
// or Support — only how the enumeration size splits between
// CandidatesExamined and CandidatesPruned.
// Cancellation: the DFS checks ctx between subtrees (every
// exactCancelCheck leaves), so a server timeout or client disconnect
// stops the enumeration within a bounded slice of work instead of
// running to completion; the run then returns ctx.Err() with an empty
// result. The per-leaf cost of the check is one integer increment.
// Exact runs as the single-shard case of the shard-aware path (see
// shard.go): ExactPartial(shard 0 of 1) explores the whole space and
// MergePartials folds the one partial into the Result, so the serving
// tier's scatter-gather and this entry point share one code path.
func (e *Engine) Exact(ctx context.Context, spec ProblemSpec, opts ExactOptions) (Result, error) {
	if err := spec.Validate(); err != nil {
		return Result{}, err
	}
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	start := time.Now()
	p, err := e.ExactPartial(ctx, spec, opts, 0, 1)
	if err != nil {
		if cerr := ctx.Err(); cerr != nil && err == cerr {
			return Result{Algorithm: "Exact"}, err
		}
		return Result{}, err
	}
	return e.MergePartials(spec, []Partial{p}, start)
}

// exactCancelCheck is how many leaves a worker visits between ctx polls
// — large enough that the poll is invisible on the hot path, small
// enough that cancellation lands within tens of microseconds of work.
const exactCancelCheck = 4096

// exactWorker explores one shard of the candidate space: first elements i
// with i % stride == offset (offset encoded by the initial call), then all
// completions. It keeps the first maximum it encounters, which in the
// enumeration order means the lexicographically smallest argmax.
//
// Per-candidate state lives in depth-indexed stacks preallocated to the
// maximum set size: cumulative pair-sums per objective and per constraint,
// cumulative group sizes, and one union bitmap per level derived from its
// parent without cloning. The pair-sum stacks are mining.IncrementalEval's
// scheme (cumulative values, never +delta/-delta, for bit-exact
// backtracking — see its docs and TestIncrementalEvalBacktrackExact)
// inlined so every binding shares one ids stack and one non-virtual push
// loop; composing per-binding IncrementalEvals measured ~30% slower on
// BenchmarkExactSerial. Keep the two in sync. Nothing allocates inside the
// enumeration.
type exactWorker struct {
	engine *Engine
	spec   ProblemSpec
	// objMats/conMats alias the shared matrixScorer's immutable matrices.
	objMats []*mining.PairMatrix
	conMats []*mining.PairMatrix

	// Branch-and-bound state. objMaxRows[o][i] is the largest objective-o
	// pair score group i attains against any other group; objMaxPair[o] the
	// matrix-wide maximum (both alias the shared matrices' cached bound
	// vectors). maxSums[o][d] accumulates max rows over ids[:d+1] like the
	// pair-sum stacks, so the upper bound on any completion is O(objectives)
	// at every node. prune gates the whole mechanism (ExactOptions
	// .DisablePruning turns it off).
	prune      bool
	objMaxRows [][]float64
	objMaxPair []float64
	maxSums    [][]float64

	depth    int
	ids      []int
	objSums  [][]float64 // objSums[o][d]: pair-sum of objective o over ids[:d+1]
	conSums  [][]float64
	sizeSums []int
	// unions[d] is the support union of ids[:d+1], materialized lazily:
	// only the levels up to unionDepth are valid for the current path, and
	// levels are computed in leafFeasible strictly behind the size-sum
	// fast reject, so candidates that fail it never pay a bitmap pass.
	// Backtracking lowers the watermark instead of touching the bitmaps,
	// so sibling candidates still share every interior level.
	unions     []*store.Bitmap
	unionCnt   []int
	unionDepth int

	best      []*groups.Group
	bestScore float64
	found     bool
	examined  int64
	pruned    int64
	offset    int

	// ctx is polled every exactCancelCheck leaves; once it reports an
	// error, cancelled short-circuits the rest of the DFS.
	ctx        context.Context
	sinceCheck int
	cancelled  bool
}

// newExactWorker builds one worker's mutable DFS state over the scorer's
// shared immutable matrices (sc's own scratch-mutating methods are never
// called here).
func newExactWorker(ctx context.Context, e *Engine, spec ProblemSpec, sc *matrixScorer, offset int, prune bool) *exactWorker {
	kMax := spec.KHi
	if n := len(e.Groups); kMax > n {
		kMax = n
	}
	w := &exactWorker{
		engine:   e,
		ctx:      ctx,
		spec:     spec,
		objMats:  sc.objMats,
		conMats:  sc.conMats,
		prune:    prune,
		offset:   offset,
		ids:      make([]int, kMax),
		objSums:  make([][]float64, len(sc.objMats)),
		conSums:  make([][]float64, len(sc.conMats)),
		sizeSums: make([]int, kMax),
	}
	if prune {
		w.objMaxRows, w.objMaxPair = sc.objectiveBounds()
		w.maxSums = make([][]float64, len(sc.objMats))
		for oi := range w.maxSums {
			w.maxSums[oi] = make([]float64, kMax)
		}
	}
	for oi := range w.objSums {
		w.objSums[oi] = make([]float64, kMax)
	}
	for ci := range w.conSums {
		w.conSums[ci] = make([]float64, kMax)
	}
	if spec.MinSupport > 0 {
		w.unions = make([]*store.Bitmap, kMax)
		w.unionCnt = make([]int, kMax)
		for d := range w.unions {
			// Buffers follow the groups' layout: compressed levels keep
			// union cost proportional to container occupancy on sparse
			// corpora instead of O(universe/64) per pass.
			w.unions[d] = unionBufferFor(e.Groups, e.Store.Len())
		}
	}
	return w
}

// push extends the candidate set with group i, advancing every running
// pair-sum by one level at O(depth) matrix lookups per binding; support
// unions are materialized lazily in leafFeasible.
func (w *exactWorker) push(i int) {
	d := w.depth
	for oi, m := range w.objMats {
		sum := 0.0
		if d > 0 {
			sum = w.objSums[oi][d-1]
		}
		for _, x := range w.ids[:d] {
			sum += m.At(x, i)
		}
		w.objSums[oi][d] = sum
	}
	for ci, m := range w.conMats {
		sum := 0.0
		if d > 0 {
			sum = w.conSums[ci][d-1]
		}
		for _, x := range w.ids[:d] {
			sum += m.At(x, i)
		}
		w.conSums[ci][d] = sum
	}
	if w.prune {
		for oi, rows := range w.objMaxRows {
			sum := rows[i]
			if d > 0 {
				sum += w.maxSums[oi][d-1]
			}
			w.maxSums[oi][d] = sum
		}
	}
	g := w.engine.Groups[i]
	if d > 0 {
		w.sizeSums[d] = w.sizeSums[d-1] + g.Size()
	} else {
		w.sizeSums[0] = g.Size()
	}
	w.ids[d] = i
	w.depth++
}

// pop backtracks one level; parent aggregates are untouched in the stacks,
// and union levels above the new depth merely fall out of the watermark.
func (w *exactWorker) pop() {
	w.depth--
	if w.unionDepth > w.depth {
		w.unionDepth = w.depth
	}
}

// leafFeasible replays ConstraintsSatisfied's decision from the running
// aggregates: size bounds, constraint means against thresholds, then the
// support floor behind its cheap size-sum reject.
func (w *exactWorker) leafFeasible() bool {
	k := w.depth
	if k < w.spec.KLo || k > w.spec.KHi {
		return false
	}
	if k >= 2 {
		pairs := float64(k * (k - 1) / 2)
		for ci, c := range w.spec.Constraints {
			if w.conSums[ci][k-1]/pairs < c.Threshold {
				return false
			}
		}
	}
	if w.spec.MinSupport > 0 {
		if w.sizeSums[k-1] < w.spec.MinSupport {
			return false
		}
		for d := w.unionDepth; d < k; d++ {
			g := w.engine.Groups[w.ids[d]]
			if d > 0 {
				w.unionCnt[d] = w.unions[d-1].UnionCountInto(g.Tuples, w.unions[d])
			} else {
				w.unions[0].CopyFrom(g.Tuples)
				w.unionCnt[0] = g.Size()
			}
		}
		w.unionDepth = k
		if w.unionCnt[k-1] < w.spec.MinSupport {
			return false
		}
	}
	return true
}

// leafObjective reads the weighted objective sum off the running pair-sums.
func (w *exactWorker) leafObjective() float64 {
	k := w.depth
	var total float64
	for oi, o := range w.spec.Objectives {
		var v float64
		if k >= 2 {
			v = w.objSums[oi][k-1] / float64(k*(k-1)/2)
		}
		total += o.Weight * v
	}
	return total
}

// cannotBeat reports whether no completion of the current partial
// candidate — its depth groups plus r more, drawn from anywhere — can
// strictly beat the incumbent. The bound is admissible: each of the
// r*(depth) cross pairs a future member forms with a current member x is at
// most maxRow[x] (accumulated in maxSums), and each of the r*(r-1)/2 pairs
// among future members is at most the matrix-wide maximum, so the bounded
// pair-sum dominates every reachable leaf's. A small relative slack absorbs
// the floating-point difference between this bound's association order and
// the leaf evaluation's (the accumulated rounding is ~1e-15 relative; any
// two candidates whose true scores differ by less than the slack tie for
// the enumeration's purposes anyway, and ties never displace the incumbent
// — the DFS keeps the first maximum, so cutting a tying subtree leaves the
// argmax untouched). Constraints are deliberately not consulted: the bound
// must hold for any completion, feasible or not.
func (w *exactWorker) cannotBeat(r int) bool {
	if !w.found {
		return false
	}
	d := w.depth
	full := d + r
	pairs := float64(full * (full - 1) / 2)
	futureR := float64(r)
	futurePairs := float64(r * (r - 1) / 2)
	var bound float64
	for oi, o := range w.spec.Objectives {
		s := w.objSums[oi][d-1] + futureR*w.maxSums[oi][d-1] + futurePairs*w.objMaxPair[oi]
		bound += o.Weight * (s / pairs)
	}
	slack := 1e-12 * (1 + math.Abs(bound) + math.Abs(w.bestScore))
	return bound+slack <= w.bestScore
}

// enumerate recursively extends the worker's candidate set; stride shards
// only the outermost level (depth == full k).
func (w *exactWorker) enumerate(startIdx, k, stride int) {
	if w.cancelled {
		return
	}
	n := len(w.engine.Groups)
	if k == 0 {
		w.examined++
		if w.sinceCheck++; w.sinceCheck >= exactCancelCheck {
			w.sinceCheck = 0
			if w.ctx.Err() != nil {
				w.cancelled = true
				return
			}
		}
		if !w.leafFeasible() {
			return
		}
		if score := w.leafObjective(); !w.found || score > w.bestScore {
			w.bestScore = score
			w.best = w.best[:0]
			for _, id := range w.ids[:w.depth] {
				w.best = append(w.best, w.engine.Groups[id])
			}
			w.found = true
		}
		return
	}
	first, step := startIdx, 1
	if stride > 1 {
		// Align to this worker's shard of the outermost level.
		step = stride
		for first <= n-k && first%stride != w.offset {
			first++
		}
	}
	for i := first; i <= n-k; i += step {
		w.push(i)
		// Branch-and-bound: if even the best conceivable completion of this
		// prefix cannot beat the incumbent, cut the whole subtree — its
		// binomial(n-i-1, k-1) candidates are counted as pruned, never
		// examined. Leaves (k == 1 pushes the last member) are evaluated
		// unconditionally, matching the naive enumeration's bookkeeping.
		if w.prune && k > 1 && w.cannotBeat(k-1) {
			w.pruned += binomial(n-i-1, k-1)
			w.pop()
			continue
		}
		w.enumerate(i+1, k-1, 1)
		w.pop()
	}
}

// lessCandidate orders candidate sets the way the serial enumeration meets
// them: by size, then lexicographically by group ID.
func lessCandidate(a, b []*groups.Group) bool {
	if len(a) != len(b) {
		return len(a) < len(b)
	}
	for i := range a {
		if a[i].ID != b[i].ID {
			return a[i].ID < b[i].ID
		}
	}
	return false
}

func binomial(n, k int) int64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	var c int64 = 1
	for i := 0; i < k; i++ {
		c = c * int64(n-i) / int64(i+1)
		if c < 0 || c > 1<<62 {
			return -1
		}
	}
	return c
}
