package core

import (
	"context"

	"math"
	"strings"
	"testing"

	"tagdm/internal/groups"
	"tagdm/internal/mining"
	"tagdm/internal/model"
	"tagdm/internal/signature"
	"tagdm/internal/store"
)

// buildEngine constructs a controlled world: 4 user profiles (gender x age)
// by 4 items spanning 3 genres and 2 directors, with genre-themed tags.
// Every (profile, item) combination contributes 5 tagging actions, giving
// 16 fully-described groups of 5 tuples each.
func buildEngine(t testing.TB) *Engine {
	t.Helper()
	d := model.NewDataset(
		model.NewSchema("gender", "age"),
		model.NewSchema("genre", "director"),
	)
	profiles := []map[string]string{
		{"gender": "male", "age": "teen"},
		{"gender": "male", "age": "young"},
		{"gender": "female", "age": "teen"},
		{"gender": "female", "age": "young"},
	}
	// Two users per profile.
	userIDs := make([][]int32, len(profiles))
	for pi, p := range profiles {
		for j := 0; j < 2; j++ {
			id, err := d.AddUser(p)
			if err != nil {
				t.Fatal(err)
			}
			userIDs[pi] = append(userIDs[pi], id)
		}
	}
	items := []map[string]string{
		{"genre": "action", "director": "spielberg"},
		{"genre": "drama", "director": "spielberg"},
		{"genre": "comedy", "director": "allen"},
		{"genre": "drama", "director": "allen"},
	}
	itemIDs := make([]int32, len(items))
	for ii, it := range items {
		id, err := d.AddItem(it)
		if err != nil {
			t.Fatal(err)
		}
		itemIDs[ii] = id
	}
	themes := map[string][]string{
		"action": {"gun", "fight", "explosions"},
		"drama":  {"tears", "moving", "deep"},
		"comedy": {"funny", "witty", "dry"},
	}
	for pi := range profiles {
		for ii, it := range items {
			tags := themes[it["genre"]]
			for a := 0; a < 5; a++ {
				u := userIDs[pi][a%2]
				if err := d.AddAction(u, itemIDs[ii], 0,
					tags[a%3], tags[(a+1)%3]); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	s, err := store.New(d)
	if err != nil {
		t.Fatal(err)
	}
	gs := (&groups.Enumerator{Store: s, MinTuples: 5}).FullyDescribed()
	if len(gs) != 16 {
		t.Fatalf("expected 16 groups, got %d", len(gs))
	}
	sigs := signature.SummarizeAll(signature.NewFrequency(s), s, gs)
	e, err := NewEngine(s, gs, sigs)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestSpecValidate(t *testing.T) {
	ok := ProblemSpec{KLo: 1, KHi: 2, Objectives: []Objective{{Dim: mining.Tags, Weight: 1}}}
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []ProblemSpec{
		{KLo: 0, KHi: 2, Objectives: ok.Objectives},
		{KLo: 3, KHi: 2, Objectives: ok.Objectives},
		{KLo: 1, KHi: 2},
		{KLo: 1, KHi: 2, Objectives: []Objective{{Dim: mining.Tags, Weight: 0}}},
		{KLo: 1, KHi: 2, Objectives: ok.Objectives,
			Constraints: []Constraint{{Dim: mining.Users, Threshold: 1.5}}},
	}
	for i, spec := range bad {
		if err := spec.Validate(); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
}

func TestPaperProblems(t *testing.T) {
	for id := 1; id <= 6; id++ {
		spec, err := PaperProblem(id, 3, 100, 0.5, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		if err := spec.Validate(); err != nil {
			t.Fatalf("problem %d invalid: %v", id, err)
		}
		if len(spec.Constraints) != 2 || len(spec.Objectives) != 1 {
			t.Fatalf("problem %d shape wrong", id)
		}
		if spec.Objectives[0].Dim != mining.Tags {
			t.Fatalf("problem %d does not optimize tags", id)
		}
		wantSim := id <= 3
		gotSim := spec.Objectives[0].Meas == mining.Similarity
		if wantSim != gotSim {
			t.Fatalf("problem %d objective measure wrong", id)
		}
	}
	if _, err := PaperProblem(7, 3, 0, 0, 0); err == nil {
		t.Fatal("id 7 accepted")
	}
}

func TestAllRoles(t *testing.T) {
	specs := AllRoles()
	if len(specs) != 98 {
		t.Fatalf("AllRoles returned %d specs, want 98", len(specs))
	}
	seen := map[string]bool{}
	for _, s := range specs {
		if err := s.Validate(); err != nil {
			t.Fatalf("spec %q invalid: %v", s.Name, err)
		}
		if seen[s.Name] {
			t.Fatalf("duplicate spec %q", s.Name)
		}
		seen[s.Name] = true
	}
}

func TestNewEngineValidation(t *testing.T) {
	e := buildEngine(t)
	if _, err := NewEngine(e.Store, e.Groups, e.Sigs[:3]); err == nil {
		t.Fatal("signature count mismatch accepted")
	}
	bad := []*groups.Group{e.Groups[1], e.Groups[0]}
	if _, err := NewEngine(e.Store, bad, e.Sigs[:2]); err == nil {
		t.Fatal("misordered group IDs accepted")
	}
}

func TestExactProblem1(t *testing.T) {
	e := buildEngine(t)
	spec, _ := PaperProblem(1, 2, 5, 0.5, 0.5)
	res, err := e.Exact(context.Background(), spec, ExactOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatal("Exact found nothing")
	}
	if len(res.Groups) != 2 {
		t.Fatalf("Exact returned %d groups", len(res.Groups))
	}
	// Optimum: two groups over the same item (tag cosine ~1, item sim 1)
	// whose user profiles share one attribute (user sim 0.5).
	if res.Objective < 0.9 {
		t.Fatalf("Exact objective = %v", res.Objective)
	}
	if !e.ConstraintsSatisfied(res.Groups, spec) {
		t.Fatal("Exact returned infeasible set")
	}
	if res.Support < 10 {
		t.Fatalf("support = %d", res.Support)
	}
	if res.CandidatesExamined == 0 {
		t.Fatal("no candidates counted")
	}
}

func TestExactRespectsConstraints(t *testing.T) {
	e := buildEngine(t)
	// Impossible support forces a null result.
	spec, _ := PaperProblem(1, 2, 10_000, 0.5, 0.5)
	res, err := e.Exact(context.Background(), spec, ExactOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Found {
		t.Fatal("infeasible support satisfied?!")
	}
}

func TestExactCandidateCap(t *testing.T) {
	e := buildEngine(t)
	spec, _ := PaperProblem(1, 2, 5, 0.5, 0.5)
	if _, err := e.Exact(context.Background(), spec, ExactOptions{MaxCandidates: 3}); err == nil {
		t.Fatal("cap not enforced")
	}
}

func TestSMLSHRejectsDiversityObjective(t *testing.T) {
	e := buildEngine(t)
	spec, _ := PaperProblem(4, 2, 5, 0.5, 0.5)
	if _, err := e.SMLSH(context.Background(), spec, LSHOptions{Seed: 1}); err == nil {
		t.Fatal("diversity objective accepted by SM-LSH")
	}
}

func TestSMLSHFindsSimilarGroups(t *testing.T) {
	e := buildEngine(t)
	spec, _ := PaperProblem(1, 2, 5, 0.5, 0.5)
	for _, mode := range []ConstraintMode{Filter, Fold} {
		res, err := e.SMLSH(context.Background(), spec, LSHOptions{DPrime: 10, L: 1, Seed: 7, Mode: mode})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Found {
			t.Fatalf("mode %v: null result", mode)
		}
		if !e.ConstraintsSatisfied(res.Groups, spec) {
			t.Fatalf("mode %v: infeasible result", mode)
		}
		// Returned groups must share a tag theme: objective near 1.
		if res.Objective < 0.8 {
			t.Fatalf("mode %v: objective %v", mode, res.Objective)
		}
	}
}

func TestSMLSHQualityVsExact(t *testing.T) {
	e := buildEngine(t)
	spec, _ := PaperProblem(1, 2, 5, 0.5, 0.5)
	exact, err := e.Exact(context.Background(), spec, ExactOptions{})
	if err != nil {
		t.Fatal(err)
	}
	app, err := e.SMLSH(context.Background(), spec, LSHOptions{Seed: 7, Mode: Fold})
	if err != nil {
		t.Fatal(err)
	}
	if !app.Found {
		t.Fatal("null result")
	}
	if app.Objective > exact.Objective+1e-9 {
		t.Fatalf("approximate %v beats exact %v", app.Objective, exact.Objective)
	}
}

func TestSMLSHRelaxation(t *testing.T) {
	e := buildEngine(t)
	spec, _ := PaperProblem(1, 2, 5, 0.5, 0.5)
	// A very fine partition (many hyperplanes) scatters groups into
	// singletons; relaxation must coarsen until a feasible bucket appears.
	res, err := e.SMLSH(context.Background(), spec, LSHOptions{DPrime: 60, L: 1, Seed: 3, Mode: Filter})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatal("relaxation failed to recover")
	}
	// With relaxation disabled at the same starting point the run may or
	// may not find a bucket; it must at least not crash and must report
	// the attempt.
	res2, err := e.SMLSH(context.Background(), spec, LSHOptions{DPrime: 60, L: 1, Seed: 3, Mode: Filter, DisableRelaxation: true})
	if err != nil {
		t.Fatal(err)
	}
	if res2.CandidatesExamined == 0 {
		t.Fatal("no buckets examined")
	}
}

func TestDVFDPFindsDiverseGroups(t *testing.T) {
	e := buildEngine(t)
	spec, _ := PaperProblem(6, 2, 5, 0.5, 0.5)
	// Fi post-filters: the unconstrained greedy may well pick a pair that
	// violates the user/item constraints, so a null result is legitimate
	// (the paper notes Fi "may return null results frequently"). It must
	// not error, and any found result must be feasible.
	fi, err := e.DVFDP(context.Background(), spec, FDPOptions{Mode: Filter})
	if err != nil {
		t.Fatal(err)
	}
	if fi.Found && !e.ConstraintsSatisfied(fi.Groups, spec) {
		t.Fatal("Fi returned infeasible result")
	}
	// Fo folds the constraints into the greedy add and must succeed here:
	// the two spielberg items (action vs drama) with overlapping profiles
	// give tag diversity ~1 while item sim = 0.5.
	fo, err := e.DVFDP(context.Background(), spec, FDPOptions{Mode: Fold})
	if err != nil {
		t.Fatal(err)
	}
	if !fo.Found {
		t.Fatal("Fo: null result")
	}
	if !e.ConstraintsSatisfied(fo.Groups, spec) {
		t.Fatal("Fo: infeasible result")
	}
	if fo.Objective < 0.8 {
		t.Fatalf("Fo objective %v, groups %v", fo.Objective, fo.Describe(e.Store))
	}
}

func TestDVFDPPrecomputeMatchesLazy(t *testing.T) {
	e := buildEngine(t)
	spec, _ := PaperProblem(4, 3, 5, 0.5, 0.5)
	lazy, err := e.DVFDP(context.Background(), spec, FDPOptions{Mode: Fold})
	if err != nil {
		t.Fatal(err)
	}
	pre, err := e.DVFDP(context.Background(), spec, FDPOptions{Mode: Fold, Precompute: true})
	if err != nil {
		t.Fatal(err)
	}
	if lazy.Found != pre.Found {
		t.Fatal("precompute changed feasibility")
	}
	if lazy.Found && math.Abs(lazy.Objective-pre.Objective) > 1e-12 {
		t.Fatalf("objectives differ: %v vs %v", lazy.Objective, pre.Objective)
	}
}

func TestDVFDPMaxMinAndFixedSeed(t *testing.T) {
	e := buildEngine(t)
	spec, _ := PaperProblem(6, 2, 5, 0.5, 0.5)
	mm, err := e.DVFDP(context.Background(), spec, FDPOptions{Mode: Fold, Criterion: MaxMin})
	if err != nil {
		t.Fatal(err)
	}
	if !mm.Found {
		t.Fatal("MaxMin null result")
	}
	fs, err := e.DVFDP(context.Background(), spec, FDPOptions{Mode: Filter, FixedSeed: true})
	if err != nil {
		t.Fatal(err)
	}
	_ = fs // fixed seed may or may not be feasible; must not error
}

func TestDVFDPSimilarityExtension(t *testing.T) {
	// The FDP machinery with a similarity objective should find similar
	// groups, agreeing with SM-LSH in spirit (paper Section 5 notes the
	// extension).
	e := buildEngine(t)
	spec, _ := PaperProblem(1, 2, 5, 0.5, 0.5)
	res, err := e.DVFDP(context.Background(), spec, FDPOptions{Mode: Fold})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatal("null result")
	}
	if res.Objective < 0.8 {
		t.Fatalf("similarity-via-FDP objective = %v", res.Objective)
	}
}

func TestSolveDispatch(t *testing.T) {
	e := buildEngine(t)
	sim, _ := PaperProblem(2, 2, 5, 0.5, 0.5)
	div, _ := PaperProblem(5, 2, 5, 0.5, 0.5)
	rs, err := e.Solve(context.Background(), sim, SolveOptions{LSH: LSHOptions{Seed: 7}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(rs.Algorithm, "SM-LSH") {
		t.Fatalf("similarity spec dispatched to %s", rs.Algorithm)
	}
	rd, err := e.Solve(context.Background(), div, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(rd.Algorithm, "DV-FDP") {
		t.Fatalf("diversity spec dispatched to %s", rd.Algorithm)
	}
}

func TestAllSixPaperProblemsSolvable(t *testing.T) {
	e := buildEngine(t)
	for id := 1; id <= 6; id++ {
		spec, _ := PaperProblem(id, 2, 5, 0.4, 0.4)
		res, err := e.Solve(context.Background(), spec, SolveOptions{LSH: LSHOptions{Seed: 11}, FDP: FDPOptions{Mode: Fold}})
		if err != nil {
			t.Fatalf("problem %d: %v", id, err)
		}
		if !res.Found {
			t.Fatalf("problem %d: null result", id)
		}
		if !e.ConstraintsSatisfied(res.Groups, spec) {
			t.Fatalf("problem %d: infeasible result %v", id, res.Describe(e.Store))
		}
	}
}

func TestAllRolesSolvableOrNull(t *testing.T) {
	// Every generated spec must run without error through Solve (feasible
	// or null, but never a crash or validation failure).
	e := buildEngine(t)
	for _, spec := range AllRoles() {
		res, err := e.Solve(context.Background(), spec, SolveOptions{LSH: LSHOptions{Seed: 5}, FDP: FDPOptions{Mode: Filter}})
		if err != nil {
			t.Fatalf("spec %q: %v", spec.Name, err)
		}
		if res.Found && !e.ConstraintsSatisfied(res.Groups, spec) {
			t.Fatalf("spec %q returned infeasible set", spec.Name)
		}
	}
}

func TestResultDescribe(t *testing.T) {
	e := buildEngine(t)
	spec, _ := PaperProblem(1, 2, 5, 0.5, 0.5)
	res, err := e.Exact(context.Background(), spec, ExactOptions{})
	if err != nil {
		t.Fatal(err)
	}
	descs := res.Describe(e.Store)
	if len(descs) != len(res.Groups) {
		t.Fatal("describe length mismatch")
	}
	for _, d := range descs {
		if !strings.Contains(d, "gender=") || !strings.Contains(d, "genre=") {
			t.Fatalf("description %q missing attributes", d)
		}
	}
}

// Property: for every paper problem, any feasible approximate result's
// objective never exceeds Exact's.
func TestApproxNeverBeatsExact(t *testing.T) {
	e := buildEngine(t)
	for id := 1; id <= 6; id++ {
		spec, _ := PaperProblem(id, 2, 5, 0.5, 0.5)
		exact, err := e.Exact(context.Background(), spec, ExactOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if !exact.Found {
			continue
		}
		res, err := e.Solve(context.Background(), spec, SolveOptions{LSH: LSHOptions{Seed: 13}, FDP: FDPOptions{Mode: Fold}})
		if err != nil {
			t.Fatal(err)
		}
		if res.Found && res.Objective > exact.Objective+1e-9 {
			t.Fatalf("problem %d: approx %v beats exact %v", id, res.Objective, exact.Objective)
		}
	}
}
