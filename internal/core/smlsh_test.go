package core

import (
	"context"

	"testing"

	"tagdm/internal/groups"
	"tagdm/internal/mining"
)

// hashVectorsFor mirrors the pre-split hashVectors(spec, mode) helper the
// tests were written against: resolve fold flags, then build the vectors.
func hashVectorsFor(e *Engine, spec ProblemSpec, mode ConstraintMode) [][]float64 {
	foldUsers, foldItems := e.foldFlags(spec, mode)
	return e.buildHashVectors(foldUsers, foldItems)
}

func TestHashVectorsDimensions(t *testing.T) {
	e := buildEngine(t)
	spec, _ := PaperProblem(1, 2, 5, 0.5, 0.5)
	sigDim := len(e.Sigs[0].Weights)
	uDim := e.Store.UserSchema.TotalCardinality()
	iDim := e.Store.ItemSchema.TotalCardinality()

	// Filter mode hashes the signature alone.
	filterVecs := hashVectorsFor(e, spec, Filter)
	if len(filterVecs) != len(e.Groups) {
		t.Fatalf("vector count %d", len(filterVecs))
	}
	if len(filterVecs[0]) != sigDim {
		t.Fatalf("filter dim = %d, want %d", len(filterVecs[0]), sigDim)
	}
	// Problem 1 folds both user and item similarity constraints.
	foldVecs := hashVectorsFor(e, spec, Fold)
	want := uDim + iDim + sigDim
	if len(foldVecs[0]) != want {
		t.Fatalf("fold dim = %d, want %d (u=%d i=%d sig=%d)",
			len(foldVecs[0]), want, uDim, iDim, sigDim)
	}
}

func TestHashVectorsFoldOnlySimilarityConstraints(t *testing.T) {
	e := buildEngine(t)
	// Problem 2: user similarity, item DIVERSITY. Only the user block can
	// fold (diversity cannot fold into LSH).
	spec, _ := PaperProblem(2, 2, 5, 0.5, 0.5)
	foldVecs := hashVectorsFor(e, spec, Fold)
	want := e.Store.UserSchema.TotalCardinality() + len(e.Sigs[0].Weights)
	if len(foldVecs[0]) != want {
		t.Fatalf("fold dim = %d, want %d", len(foldVecs[0]), want)
	}
}

func TestHashVectorsOneHotPlacement(t *testing.T) {
	e := buildEngine(t)
	spec, _ := PaperProblem(1, 2, 5, 0.5, 0.5)
	vecs := hashVectorsFor(e, spec, Fold)
	us := e.Store.UserSchema
	uDim := us.TotalCardinality()
	// The user one-hot block of every group must have exactly one
	// non-zero entry per constrained user attribute (here: all of them),
	// and the block is normalized.
	for gi, v := range vecs {
		nonzero := 0
		for _, x := range v[:uDim] {
			if x != 0 {
				nonzero++
			}
		}
		if nonzero != us.Len() {
			t.Fatalf("group %d: %d non-zero one-hot entries, want %d",
				gi, nonzero, us.Len())
		}
	}
	// Groups sharing a full user profile share the exact user block.
	var a, b int = -1, -1
	for i := range e.Groups {
		for j := i + 1; j < len(e.Groups); j++ {
			same := true
			for att := 0; att < us.Len(); att++ {
				if e.Groups[i].UserValue(att) != e.Groups[j].UserValue(att) {
					same = false
					break
				}
			}
			if same {
				a, b = i, j
				break
			}
		}
		if a >= 0 {
			break
		}
	}
	if a < 0 {
		t.Skip("no profile-sharing pair")
	}
	for x := 0; x < uDim; x++ {
		if vecs[a][x] != vecs[b][x] {
			t.Fatalf("profile-sharing groups differ in one-hot block at %d", x)
		}
	}
}

func TestTrimBucketSelectsBestPairs(t *testing.T) {
	e := buildEngine(t)
	spec, _ := PaperProblem(1, 2, 0, 0.5, 0.5) // KHi = 2, no support floor
	// Trim the full universe: the survivors must be a pair with maximal
	// tag similarity (two same-genre groups, cosine ~1).
	ids := make([]int, len(e.Groups))
	for i := range ids {
		ids[i] = i
	}
	kept := e.trimBucket(ids, spec, e.scorer(spec))
	if len(kept) != 2 {
		t.Fatalf("trim kept %d", len(kept))
	}
	pair := e.PairFunc(mining.Tags, mining.Similarity)
	if got := pair(e.Groups[kept[0]], e.Groups[kept[1]]); got < 0.95 {
		t.Fatalf("trimmed pair similarity %v", got)
	}
}

func TestTrimBucketRespectsSupportFloor(t *testing.T) {
	e := buildEngine(t)
	// All groups are size 5; a floor of 10 with k=2 keeps the size->=5
	// preference moot (floor per group is 5, all qualify) but a floor of
	// 30 (per-group 15) disqualifies everyone, so trimming falls back to
	// the whole bucket.
	spec, _ := PaperProblem(1, 2, 30, 0.5, 0.5)
	ids := []int{0, 1, 2, 3}
	kept := e.trimBucket(ids, spec, e.scorer(spec))
	if len(kept) != 2 {
		t.Fatalf("fallback trim kept %d", len(kept))
	}
}

func TestSMLSHStrictBucketMode(t *testing.T) {
	e := buildEngine(t)
	spec, _ := PaperProblem(1, 2, 5, 0.5, 0.5)
	res, err := e.SMLSH(context.Background(), spec, LSHOptions{DPrime: 10, L: 1, Seed: 7, Mode: Fold, StrictBucketSize: true})
	if err != nil {
		t.Fatal(err)
	}
	// Strict mode may return null (identical signatures collide into
	// oversized buckets); it must never return an infeasible or oversized
	// set.
	if res.Found {
		if len(res.Groups) > spec.KHi {
			t.Fatalf("strict mode returned %d groups", len(res.Groups))
		}
		if !e.ConstraintsSatisfied(res.Groups, spec) {
			t.Fatal("strict mode returned infeasible set")
		}
	}
}

func TestSMLSHDeterministicWithSeed(t *testing.T) {
	e := buildEngine(t)
	spec, _ := PaperProblem(1, 2, 5, 0.5, 0.5)
	a, err := e.SMLSH(context.Background(), spec, LSHOptions{Seed: 42, Mode: Fold})
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.SMLSH(context.Background(), spec, LSHOptions{Seed: 42, Mode: Fold})
	if err != nil {
		t.Fatal(err)
	}
	if a.Found != b.Found || a.Objective != b.Objective {
		t.Fatalf("same seed, different outcome: %v/%v vs %v/%v",
			a.Found, a.Objective, b.Found, b.Objective)
	}
}

func TestObjectiveScoreWeights(t *testing.T) {
	e := buildEngine(t)
	set := []*groups.Group{e.Groups[0], e.Groups[1]}
	single := ProblemSpec{KLo: 1, KHi: 2,
		Objectives: []Objective{{Dim: mining.Tags, Meas: mining.Similarity, Weight: 1}}}
	double := ProblemSpec{KLo: 1, KHi: 2,
		Objectives: []Objective{{Dim: mining.Tags, Meas: mining.Similarity, Weight: 2}}}
	s1 := e.ObjectiveScore(set, single)
	s2 := e.ObjectiveScore(set, double)
	if s2 != 2*s1 {
		t.Fatalf("weights not linear: %v vs %v", s1, s2)
	}
}

func TestConstraintsSatisfiedSizeBounds(t *testing.T) {
	e := buildEngine(t)
	spec, _ := PaperProblem(1, 2, 0, 0, 0)
	if e.ConstraintsSatisfied(nil, spec) {
		t.Fatal("empty set passed KLo >= 1")
	}
	three := []*groups.Group{e.Groups[0], e.Groups[1], e.Groups[2]}
	if e.ConstraintsSatisfied(three, spec) {
		t.Fatal("oversized set passed KHi = 2")
	}
}
