package core

import (
	"tagdm/internal/groups"
	"tagdm/internal/mining"
	"tagdm/internal/store"
)

// matrixScorer evaluates candidate sets — identified by dense group IDs —
// against one spec through the engine's precomputed pair matrices: pure
// float lookups in the hot loop instead of recomputed pair functions, and a
// reusable union bitmap instead of a Clone per support check. Decisions and
// scores are bit-identical to ObjectiveScore/ConstraintsSatisfied, whose
// pair visit order the matrix aggregation replicates.
//
// The objMats/conMats fields are immutable and safe to read from many
// goroutines (the Exact workers share one scorer that way), but idsOf and
// support mutate the scorer's scratch buffers: those methods belong to one
// goroutine. The matrices come from the engine's shared cache, so building
// a second scorer for the same spec costs nothing new.
type matrixScorer struct {
	spec    ProblemSpec
	groups  []*groups.Group
	objMats []*mining.PairMatrix
	conMats []*mining.PairMatrix

	ids      []int         // reusable id buffer for set-based callers
	scratch  *store.Bitmap // reusable support union for k >= 3, lazily built
	universe int           // scratch universe (the store's tuple count)

	// builds/hits record the engine matrix-cache outcome per binding this
	// scorer materialized; solvers copy them onto Result.
	builds int
	hits   int
}

// scorer builds a matrix scorer for spec, lazily materializing any missing
// matrices in the engine cache.
func (e *Engine) scorer(spec ProblemSpec) *matrixScorer {
	s := &matrixScorer{
		spec:     spec,
		groups:   e.Groups,
		objMats:  make([]*mining.PairMatrix, len(spec.Objectives)),
		conMats:  make([]*mining.PairMatrix, len(spec.Constraints)),
		universe: e.Store.Len(),
	}
	for i, o := range spec.Objectives {
		m, built := e.pairMatrixTracked(o.Dim, o.Meas)
		s.objMats[i] = m
		s.note(built)
	}
	for i, c := range spec.Constraints {
		m, built := e.pairMatrixTracked(c.Dim, c.Meas)
		s.conMats[i] = m
		s.note(built)
	}
	return s
}

func (s *matrixScorer) note(built bool) {
	if built {
		s.builds++
	} else {
		s.hits++
	}
}

// objectiveBounds returns, per objective binding, the matrix's max-row
// vector and its global maximum pair score — the ingredients of the Exact
// branch-and-bound upper bound. The vectors are cached inside the shared
// immutable matrices (see mining.PairMatrix.MaxRows), so they follow the
// engine's matrix cache: built at most once per binding, dropped with the
// matrix when SetPairFunc invalidates it, and safe to read from every
// worker sharing this scorer.
func (s *matrixScorer) objectiveBounds() (maxRows [][]float64, maxPair []float64) {
	maxRows = make([][]float64, len(s.objMats))
	maxPair = make([]float64, len(s.objMats))
	for i, m := range s.objMats {
		maxRows[i] = m.MaxRows()
		maxPair[i] = m.MaxPair()
	}
	return maxRows, maxPair
}

// idsOf maps a group set to its id slice, reusing the scorer's buffer. The
// result is valid until the next idsOf call.
func (s *matrixScorer) idsOf(set []*groups.Group) []int {
	s.ids = s.ids[:0]
	for _, g := range set {
		s.ids = append(s.ids, g.ID)
	}
	return s.ids
}

// objective is the weighted objective sum of a candidate set, equal to
// Engine.ObjectiveScore on the corresponding groups.
func (s *matrixScorer) objective(ids []int) float64 {
	var total float64
	for oi, o := range s.spec.Objectives {
		total += o.Weight * s.objMats[oi].MeanOver(ids)
	}
	return total
}

// pairObjective is the weighted objective pair score of two groups — the
// greedy "distance" DV-FDP disperses over.
func (s *matrixScorer) pairObjective(i, j int) float64 {
	var total float64
	for oi, o := range s.spec.Objectives {
		total += o.Weight * s.objMats[oi].At(i, j)
	}
	return total
}

// feasible makes the same accept/reject decision as
// Engine.ConstraintsSatisfied, in the same order: group-count bounds, hard
// constraints (trivially met below two groups), then the support floor with
// the cheap size-sum reject first.
func (s *matrixScorer) feasible(ids []int) bool {
	k := len(ids)
	if k < s.spec.KLo || k > s.spec.KHi {
		return false
	}
	if k >= 2 {
		for ci, c := range s.spec.Constraints {
			if s.conMats[ci].MeanOver(ids) < c.Threshold {
				return false
			}
		}
	}
	if s.spec.MinSupport > 0 {
		sum := 0
		for _, id := range ids {
			sum += s.groups[id].Size()
		}
		if sum < s.spec.MinSupport {
			return false
		}
		if s.support(ids) < s.spec.MinSupport {
			return false
		}
	}
	return true
}

// support is the group support (Definition 1) of the set, computed without
// allocating: small unions count directly, larger ones accumulate into the
// scorer's scratch bitmap.
func (s *matrixScorer) support(ids []int) int {
	switch len(ids) {
	case 0:
		return 0
	case 1:
		return s.groups[ids[0]].Size()
	case 2:
		return s.groups[ids[0]].Tuples.OrCount(s.groups[ids[1]].Tuples)
	}
	if s.scratch == nil {
		// Lazy: Exact workers keep their own per-depth unions and never
		// reach here, so they skip the buffer entirely.
		s.scratch = unionBufferFor(s.groups, s.universe)
	}
	count := s.groups[ids[0]].Tuples.UnionCountInto(s.groups[ids[1]].Tuples, s.scratch)
	for _, id := range ids[2:] {
		count = s.scratch.UnionCountInto(s.groups[id].Tuples, s.scratch)
	}
	return count
}

// unionBufferFor allocates a support-union accumulator over the store
// universe, container-compressed when the group tuple sets it will union
// are predominantly compressed (sparse corpora) so union cost follows
// container occupancy, dense otherwise so dense corpora keep the one-pass
// word kernels.
func unionBufferFor(gs []*groups.Group, universe int) *store.Bitmap {
	comp := 0
	for _, g := range gs {
		if g.Tuples.IsCompressed() {
			comp++
		}
	}
	if 2*comp > len(gs) {
		return store.NewCompressedBitmap(universe)
	}
	return store.NewBitmap(universe)
}
