package core

import (
	"tagdm/internal/groups"
	"tagdm/internal/mining"
	"tagdm/internal/store"
)

// matrixScorer evaluates candidate sets — identified by dense group IDs —
// against one spec through per-binding pair sources: precomputed pair
// matrices when materialized (pure float lookups in the hot loop), lazy or
// blocked-row sources on gated one-shot solves. Decisions and scores are
// bit-identical across source kinds and to ObjectiveScore/
// ConstraintsSatisfied, whose pair visit order every source replicates.
//
// The objMats/conMats/objSrc/conSrc fields are immutable and safe to read
// from many goroutines (the Exact workers share one scorer that way), but
// idsOf and support mutate the scorer's scratch buffers: those methods
// belong to one goroutine. Matrices come from the engine's shared cache,
// so building a second scorer for the same spec costs nothing new.
type matrixScorer struct {
	spec   ProblemSpec
	groups []*groups.Group
	// objMats/conMats hold the concrete matrices — non-nil for every
	// binding on a fully-materializing scorer (Exact's devirtualized
	// workers and its branch-and-bound bounds need them), nil per binding
	// served lazily on a gated scorer. objSrc/conSrc are the uniform
	// scoring surface objective/pairObjective/feasible read.
	objMats []*mining.PairMatrix
	conMats []*mining.PairMatrix
	objSrc  []mining.PairSource
	conSrc  []mining.PairSource

	ids      []int         // reusable id buffer for set-based callers
	scratch  *store.Bitmap // reusable support union for k >= 3, lazily built
	universe int           // scratch universe (the store's tuple count)

	// Cache-outcome tally per binding this scorer resolved; solvers copy
	// it onto Result. Exactly one field fires per binding.
	builds   int
	rebuilds int
	hits     int
	lazy     int
}

// scorer builds a fully-materializing matrix scorer for spec: every
// binding gets a concrete matrix, built through the engine cache when
// missing. Exact (which needs matrix bounds) and the repeated-solve
// families use this path.
func (e *Engine) scorer(spec ProblemSpec) *matrixScorer {
	s := newScorer(e, spec)
	for i, o := range spec.Objectives {
		m, outcome := e.pairMatrixTracked(o.Dim, o.Meas)
		s.objMats[i], s.objSrc[i] = m, m
		s.note(outcome)
	}
	for i, c := range spec.Constraints {
		m, outcome := e.pairMatrixTracked(c.Dim, c.Meas)
		s.conMats[i], s.conSrc[i] = m, m
		s.note(outcome)
	}
	return s
}

// gatedScorer builds a scorer that avoids O(n²) materialization where it
// can: a binding already cached scores through its matrix (a hit), and an
// uncached binding scores through the lazy pair function when preferLazy
// holds (the adaptive gate decided expected pair volume is far below
// n²/2), through a budget-bounded blocked-row source when a full matrix
// cannot fit the cache budget, and through a freshly built matrix
// otherwise. Only SM-LSH uses this: its bucket scans touch a small,
// skewed subset of pairs, so a cold one-shot solve shouldn't pay the full
// build the repeated-solve families amortize.
func (e *Engine) gatedScorer(spec ProblemSpec, preferLazy bool) *matrixScorer {
	s := newScorer(e, spec)
	n := len(e.Groups)
	resolve := func(dim mining.Dimension, meas mining.Measure) (*mining.PairMatrix, mining.PairSource) {
		k := pairKey{dim, meas}
		if m := e.cache.lookup(k); m != nil {
			s.hits++
			return m, m
		}
		matrixBytes := int64(n) * int64(n-1) / 2 * 8
		switch {
		case preferLazy:
			s.lazy++
			return nil, mining.NewLazyPairs(e.Groups, e.PairFunc(dim, meas))
		case e.cache.overBudget(matrixBytes):
			// A full matrix cannot fit even an empty cache: degrade to
			// blocked rows capped at a quarter of the budget.
			s.lazy++
			maxRows := int(e.cache.Budget() / 4 / (8 * int64(n)))
			return nil, mining.NewBlockedPairs(e.Groups, e.PairFunc(dim, meas), maxRows)
		default:
			m, outcome := e.pairMatrixTracked(dim, meas)
			s.note(outcome)
			return m, m
		}
	}
	for i, o := range spec.Objectives {
		s.objMats[i], s.objSrc[i] = resolve(o.Dim, o.Meas)
	}
	for i, c := range spec.Constraints {
		s.conMats[i], s.conSrc[i] = resolve(c.Dim, c.Meas)
	}
	return s
}

func newScorer(e *Engine, spec ProblemSpec) *matrixScorer {
	return &matrixScorer{
		spec:     spec,
		groups:   e.Groups,
		objMats:  make([]*mining.PairMatrix, len(spec.Objectives)),
		conMats:  make([]*mining.PairMatrix, len(spec.Constraints)),
		objSrc:   make([]mining.PairSource, len(spec.Objectives)),
		conSrc:   make([]mining.PairSource, len(spec.Constraints)),
		universe: e.Store.Len(),
	}
}

func (s *matrixScorer) note(outcome matrixOutcome) {
	switch outcome {
	case matrixBuilt:
		s.builds++
	case matrixRebuilt:
		s.rebuilds++
	default:
		s.hits++
	}
}

// objectiveBounds returns, per objective binding, the matrix's max-row
// vector and its global maximum pair score — the ingredients of the Exact
// branch-and-bound upper bound. The vectors are cached inside the shared
// immutable matrices (see mining.PairMatrix.MaxRows), so they follow the
// engine's matrix cache: built at most once per binding, dropped with the
// matrix when SetPairFunc invalidates it, and safe to read from every
// worker sharing this scorer. Only fully-materializing scorers may call
// this (Exact never runs gated).
func (s *matrixScorer) objectiveBounds() (maxRows [][]float64, maxPair []float64) {
	maxRows = make([][]float64, len(s.objMats))
	maxPair = make([]float64, len(s.objMats))
	for i, m := range s.objMats {
		maxRows[i] = m.MaxRows()
		maxPair[i] = m.MaxPair()
	}
	return maxRows, maxPair
}

// idsOf maps a group set to its id slice, reusing the scorer's buffer. The
// result is valid until the next idsOf call.
func (s *matrixScorer) idsOf(set []*groups.Group) []int {
	s.ids = s.ids[:0]
	for _, g := range set {
		s.ids = append(s.ids, g.ID)
	}
	return s.ids
}

// objective is the weighted objective sum of a candidate set, equal to
// Engine.ObjectiveScore on the corresponding groups.
func (s *matrixScorer) objective(ids []int) float64 {
	var total float64
	for oi, o := range s.spec.Objectives {
		total += o.Weight * s.objSrc[oi].MeanOver(ids)
	}
	return total
}

// pairObjective is the weighted objective pair score of two groups — the
// greedy "distance" DV-FDP disperses over.
func (s *matrixScorer) pairObjective(i, j int) float64 {
	var total float64
	for oi, o := range s.spec.Objectives {
		total += o.Weight * s.objSrc[oi].At(i, j)
	}
	return total
}

// feasible makes the same accept/reject decision as
// Engine.ConstraintsSatisfied, in the same order: group-count bounds, hard
// constraints (trivially met below two groups), then the support floor with
// the cheap size-sum reject first.
func (s *matrixScorer) feasible(ids []int) bool {
	k := len(ids)
	if k < s.spec.KLo || k > s.spec.KHi {
		return false
	}
	if k >= 2 {
		for ci, c := range s.spec.Constraints {
			if s.conSrc[ci].MeanOver(ids) < c.Threshold {
				return false
			}
		}
	}
	if s.spec.MinSupport > 0 {
		sum := 0
		for _, id := range ids {
			sum += s.groups[id].Size()
		}
		if sum < s.spec.MinSupport {
			return false
		}
		if s.support(ids) < s.spec.MinSupport {
			return false
		}
	}
	return true
}

// support is the group support (Definition 1) of the set, computed without
// allocating: small unions count directly, larger ones accumulate into the
// scorer's scratch bitmap.
func (s *matrixScorer) support(ids []int) int {
	switch len(ids) {
	case 0:
		return 0
	case 1:
		return s.groups[ids[0]].Size()
	case 2:
		return s.groups[ids[0]].Tuples.OrCount(s.groups[ids[1]].Tuples)
	}
	if s.scratch == nil {
		// Lazy: Exact workers keep their own per-depth unions and never
		// reach here, so they skip the buffer entirely.
		s.scratch = unionBufferFor(s.groups, s.universe)
	}
	count := s.groups[ids[0]].Tuples.UnionCountInto(s.groups[ids[1]].Tuples, s.scratch)
	for _, id := range ids[2:] {
		count = s.scratch.UnionCountInto(s.groups[id].Tuples, s.scratch)
	}
	return count
}

// unionBufferFor allocates a support-union accumulator over the store
// universe, container-compressed when the group tuple sets it will union
// are predominantly compressed (sparse corpora) so union cost follows
// container occupancy, dense otherwise so dense corpora keep the one-pass
// word kernels.
func unionBufferFor(gs []*groups.Group, universe int) *store.Bitmap {
	comp := 0
	for _, g := range gs {
		if g.Tuples.IsCompressed() {
			comp++
		}
	}
	if 2*comp > len(gs) {
		return store.NewCompressedBitmap(universe)
	}
	return store.NewBitmap(universe)
}
