package core

import (
	"context"
	"sort"
	"time"

	"tagdm/internal/fdp"
	"tagdm/internal/groups"
	"tagdm/internal/vec"
)

// FDPCriterion selects the dispersion objective of the greedy heuristic.
type FDPCriterion uint8

const (
	// MaxAvg maximizes the average pairwise score (the paper's choice,
	// with the factor-4 guarantee of Theorem 4).
	MaxAvg FDPCriterion = iota
	// MaxMin maximizes the minimum pairwise score.
	MaxMin
)

func (c FDPCriterion) String() string {
	if c == MaxAvg {
		return "max-avg"
	}
	return "max-min"
}

// FDPOptions tunes the DV-FDP family.
type FDPOptions struct {
	// Mode selects DV-FDP-Fi (Filter) or DV-FDP-Fo (Fold).
	Mode ConstraintMode
	// Criterion selects MaxAvg (default) or MaxMin.
	Criterion FDPCriterion
	// Precompute collapses the weighted objective sum into one additional
	// condensed matrix, so each greedy distance is a single lookup instead
	// of one lookup per objective. The per-binding pair matrices
	// themselves are always materialized through the engine cache (that is
	// the point of the scoring layer); this knob only controls the extra
	// combined matrix, which mainly pays off for multi-objective specs.
	// Ablation benches compare.
	Precompute bool
	// FixedSeed uses the arbitrary-pair seeding ablation instead of the
	// max-edge seed.
	FixedSeed bool
	// DisableLocalSearch turns off the post-greedy swap improvement pass;
	// used by ablation benches to quantify its contribution.
	DisableLocalSearch bool
}

// DVFDP runs the facility-dispersion-based optimizer (Algorithm 2 with the
// constraint handling of Sections 5.2/5.3). It maximizes the spec's
// objective directly: for a tag-diversity objective the pairwise "distance"
// is the diversity pair function (cosine distance of signatures); for a
// similarity objective it is the similarity pair function — the extension
// the paper notes makes FDP applicable to similarity problems too.
//
// In Fold mode the hard constraints gate every greedy add: a candidate is
// admissible when, for every constraint, its mean pair score against the
// already-selected groups clears the threshold. Mean-gating each add (with
// the seed pair gated pair-wise) guarantees the final set's aggregate
// constraint by induction — the set's mean is a weighted average of the
// per-add means. The support floor cannot be folded pair-wise, so the
// greedy runs twice, once unrestricted and once with candidates restricted
// to groups of at least MinSupport/KHi tuples (a size sum that can clear
// the floor); the better feasible outcome wins. Section 5.3's final
// support post-check applies either way.
// Cancellation: ctx is checked between greedy passes (floor sweep
// entries, anchored starts) and between local-search rounds; a cancelled
// run returns ctx.Err() with an empty result.
//
// Like Exact, this entry point is the single-shard case of the
// shard-aware path (shard.go): the deterministic start-task list built by
// dvfdpPlan is the unit of sharding, dvfdpPartial(shard 0 of 1) runs all
// of it, and MergePartials folds the one partial into the Result.
func (e *Engine) DVFDP(ctx context.Context, spec ProblemSpec, opts FDPOptions) (Result, error) {
	if err := spec.Validate(); err != nil {
		return Result{}, err
	}
	start := time.Now()
	p, err := e.dvfdpPartial(ctx, spec, opts, 0, 1)
	if err != nil {
		return Result{Algorithm: dvfdpName(opts)}, err
	}
	return e.MergePartials(spec, []Partial{p}, start)
}

func dvfdpName(opts FDPOptions) string {
	if opts.Mode == Fold {
		return "DV-FDP-Fo"
	}
	return "DV-FDP-Fi"
}

// dvfdpTask kinds: a floor-sweep greedy pass, the largest-k start, or an
// anchored start seeded on the a-th largest group.
const (
	dvTaskPass = iota
	dvTaskLargest
	dvTaskAnchor
)

type dvfdpTask struct {
	kind   int
	floor  int // dvTaskPass: candidate size floor for this greedy pass
	anchor int // dvTaskAnchor: index into the size-descending group order
}

// dvfdpPlan builds the deterministic start-task list for one solve: it
// depends only on the spec, the options and the (replica-identical) group
// universe, so every shard derives the same list and round-robins it by
// task index. The list order is the serial execution order, which the
// winner tie-break leans on.
func (e *Engine) dvfdpPlan(spec ProblemSpec, opts FDPOptions) (tasks []dvfdpTask, k int) {
	n := len(e.Groups)
	k = spec.KHi
	if k > n {
		k = n
	}
	// Filter mode stays faithful to the paper's DV-FDP-Fi: one
	// unconstrained greedy run whose result is post-filtered — and may
	// therefore be null, exactly as Section 5.2 warns.
	if opts.Mode == Filter {
		return []dvfdpTask{{kind: dvTaskPass}}, k
	}
	// Candidate size floors to try: 0 (the paper's algorithm as written,
	// with the dynamic feasibility gate in dvfdpOnce) plus a small sweep of
	// flat per-group floors derived from the support constraint. Different
	// floors trade objective quality against support headroom; the best
	// feasible outcome wins.
	floors := []int{0}
	if spec.MinSupport > 0 && spec.KHi > 0 {
		perGroup := (spec.MinSupport + spec.KHi - 1) / spec.KHi
		for _, f := range []int{perGroup, perGroup / 2} {
			if f <= 0 {
				continue
			}
			eligible := 0
			for _, g := range e.Groups {
				if g.Size() >= f {
					eligible++
				}
			}
			if eligible >= 2 {
				floors = append(floors, f)
			}
		}
	}
	seen := map[int]bool{}
	for _, floor := range floors {
		if seen[floor] {
			continue
		}
		seen[floor] = true
		tasks = append(tasks, dvfdpTask{kind: dvTaskPass, floor: floor})
	}
	if k >= 2 && k <= n {
		tasks = append(tasks, dvfdpTask{kind: dvTaskLargest})
		anchors := 6
		if anchors > n {
			anchors = n
		}
		for a := 0; a < anchors; a++ {
			tasks = append(tasks, dvfdpTask{kind: dvTaskAnchor, anchor: a})
		}
	}
	return tasks, k
}

// groupsBySize returns the engine's groups sorted by descending size.
// sort.Slice's outcome is deterministic for a fixed input ordering, and
// replicas share the activation-order group list, so every shard sees the
// same ranking.
func (e *Engine) groupsBySize() []*groups.Group {
	bySize := make([]*groups.Group, 0, len(e.Groups))
	bySize = append(bySize, e.Groups...)
	sort.Slice(bySize, func(i, j int) bool { return bySize[i].Size() > bySize[j].Size() })
	return bySize
}

// dvfdpPartial runs this shard's slice of the start-task list — tasks t
// with t % of == shard — and records the shard-local winner plus the task
// index that produced it, so the merge can reproduce the serial strict->
// scan over starts in task order.
func (e *Engine) dvfdpPartial(ctx context.Context, spec ProblemSpec, opts FDPOptions, shard, of int) (Partial, error) {
	if err := spec.Validate(); err != nil {
		return Partial{}, err
	}
	if err := checkShard(shard, of); err != nil {
		return Partial{}, err
	}
	name := dvfdpName(opts)
	p := Partial{kind: kindDVFDP, algorithm: name, shard: shard, of: of, bestScore: -1.0, bestTask: -1}
	n := len(e.Groups)
	if n == 0 {
		return p, nil
	}

	// The greedy "distance" is the weighted objective pair score, so that
	// maximizing dispersion maximizes the objective. Pair values come from
	// the engine's precomputed matrices; Precompute additionally collapses
	// the weighted sum across objectives into one condensed matrix, trading
	// n*(n-1)/2 float64 for a single lookup per pair.
	mt := p.startStage(ctx, StageMatrix)
	scorer := e.scorer(spec)
	dist := vec.DistFunc(scorer.pairObjective)
	if opts.Precompute {
		m := vec.NewMatrixParallel(n, dist, 0)
		dist = m.At
	}
	mt.end()
	p.builds, p.rebuilds, p.hits, p.lazy = scorer.builds, scorer.rebuilds, scorer.hits, scorer.lazy

	tasks, k := e.dvfdpPlan(spec, opts)

	// Gather feasible starting sets from this shard's tasks; bySize is
	// materialized lazily because only Fold-mode largest/anchored tasks
	// consult it.
	gt := p.startStage(ctx, StageGreedy)
	var bySize []*groups.Group
	type startSet struct {
		task int
		set  []*groups.Group
	}
	var starts []startSet
	//tagdm:cancellable
	for ti, task := range tasks {
		if ti%of != shard {
			continue
		}
		// Cancellation points mirror the pre-shard serial code exactly:
		// Fold-mode floor passes and anchored starts poll ctx, the Filter
		// pass and the largest-k feasibility probe do not.
		if opts.Mode == Fold && task.kind != dvTaskLargest {
			if err := ctx.Err(); err != nil {
				gt.end()
				return Partial{}, err
			}
		}
		switch task.kind {
		case dvTaskPass:
			set, adds := e.dvfdpOnce(spec, opts, scorer, dist, k, task.floor)
			p.examined += adds
			if set != nil && scorer.feasible(scorer.idsOf(set)) {
				starts = append(starts, startSet{task: ti, set: set})
			}
		case dvTaskLargest:
			if bySize == nil {
				bySize = e.groupsBySize()
			}
			largest := bySize[:k]
			if scorer.feasible(scorer.idsOf(largest)) {
				starts = append(starts, startSet{task: ti, set: largest})
			}
		case dvTaskAnchor:
			// Anchored starts: seed on one large group and greedily complete
			// the set with the partners maximizing the objective among those
			// keeping the partial set feasible. These reach regions the
			// dispersion seed never visits (e.g. "similar profiles, diverse
			// tags" optima whose pairwise distances are mid-range).
			if bySize == nil {
				bySize = e.groupsBySize()
			}
			set := e.anchoredStart(bySize[task.anchor], spec, scorer, dist, k)
			p.examined += int64(len(set))
			if set != nil && scorer.feasible(scorer.idsOf(set)) {
				starts = append(starts, startSet{task: ti, set: set})
			}
		}
	}
	gt.end()

	// The greedy is myopic: dispersion-first picks can lock it into a
	// low-objective corner once the support gate starts binding. A swap
	// local search from each feasible start recovers most of the gap to
	// Exact at a small linear cost per round; the best outcome wins.
	lt := p.startStage(ctx, StageLocalSearch)
	for _, st := range starts {
		set := st.set
		if !opts.DisableLocalSearch {
			improved, swaps, err := e.localImprove(ctx, set, spec, scorer)
			if err != nil {
				lt.end()
				return Partial{}, err
			}
			set = improved
			p.examined += swaps
		}
		if score := scorer.objective(scorer.idsOf(set)); score > p.bestScore {
			p.bestScore = score
			p.found = true
			p.best = set
			p.bestTask = st.task
		}
	}
	lt.end()
	return p, nil
}

// localImprove repeatedly tries to swap one selected group for one
// unselected group when the swap keeps the set feasible and raises the
// objective, until a round yields no improvement (capped at 8 rounds).
// It returns the improved set and the number of candidate evaluations.
// Candidates are scored through the spec's pair matrices: a swap trial is
// O(k^2) float lookups, with no per-trial allocation. Cancellation is
// checked once per round.
func (e *Engine) localImprove(ctx context.Context, set []*groups.Group, spec ProblemSpec, sc *matrixScorer) ([]*groups.Group, int64, error) {
	cur := make([]*groups.Group, len(set))
	copy(cur, set)
	ids := make([]int, len(cur))
	for i, g := range cur {
		ids[i] = g.ID
	}
	curScore := sc.objective(ids)
	inSet := make(map[int]bool, len(cur))
	for _, g := range cur {
		inSet[g.ID] = true
	}
	var evals int64
	//tagdm:cancellable
	for round := 0; round < 8; round++ {
		if err := ctx.Err(); err != nil {
			return nil, evals, err
		}
		improvedThisRound := false
		for pos := 0; pos < len(cur); pos++ {
			old := cur[pos]
			for _, cand := range e.Groups {
				if inSet[cand.ID] {
					continue
				}
				cur[pos] = cand
				ids[pos] = cand.ID
				evals++
				// Score first: it rejects most candidates and is cheaper
				// than the full feasibility battery.
				if score := sc.objective(ids); score > curScore+1e-12 &&
					sc.feasible(ids) {
					curScore = score
					delete(inSet, old.ID)
					inSet[cand.ID] = true
					old = cand
					improvedThisRound = true
					continue
				}
				cur[pos] = old
				ids[pos] = old.ID
			}
		}
		if !improvedThisRound {
			break
		}
	}
	return cur, evals, nil
}

// anchoredStart builds a k-set around one anchor group by repeatedly adding
// the candidate that maximizes the objective pair-sum to the partial set
// while keeping it feasible-so-far (constraint aggregates evaluated on the
// partial set; support deferred to the caller's final check). Returns nil
// when no candidate can be added at some step. Trial sets are scored as id
// slices against the constraint matrices, so probing every candidate per
// step allocates nothing.
func (e *Engine) anchoredStart(anchor *groups.Group, spec ProblemSpec, sc *matrixScorer, dist vec.DistFunc, k int) []*groups.Group {
	set := []*groups.Group{anchor}
	ids := make([]int, 1, k+1)
	ids[0] = anchor.ID
	inSet := map[int]bool{anchor.ID: true}
	for len(set) < k {
		var best *groups.Group
		bestSum := -1.0
		for _, cand := range e.Groups {
			if inSet[cand.ID] {
				continue
			}
			var sum float64
			for _, s := range set {
				sum += dist(s.ID, cand.ID)
			}
			if sum <= bestSum {
				continue
			}
			trial := append(ids, cand.ID)
			ok := true
			for ci, c := range spec.Constraints {
				if sc.conSrc[ci].MeanOver(trial) < c.Threshold {
					ok = false
					break
				}
			}
			if ok {
				best, bestSum = cand, sum
			}
		}
		if best == nil {
			return nil
		}
		set = append(set, best)
		ids = append(ids, best.ID)
		inSet[best.ID] = true
	}
	return set
}

// dvfdpOnce runs one greedy dispersion pass with the given candidate size
// floor, returning the selected groups (nil when no admissible seed pair
// exists) and the number of greedy selections performed.
func (e *Engine) dvfdpOnce(spec ProblemSpec, opts FDPOptions, sc *matrixScorer, dist vec.DistFunc, k, minSize int) ([]*groups.Group, int64) {
	// Dynamic support-feasibility gate (Fold mode only): a candidate is
	// admissible only if the support floor can still be reached after
	// picking it, assuming every remaining slot takes the largest
	// available group. This prunes dead-end selections without the
	// bluntness of a flat size floor.
	maxSize := 0
	for _, g := range e.Groups {
		if g.Size() > maxSize {
			maxSize = g.Size()
		}
	}
	var accept fdp.Accept
	if opts.Mode == Fold && spec.MinSupport > 0 {
		accept = func(selected []int, cand int) bool {
			if minSize > 0 && e.Groups[cand].Size() < minSize {
				return false
			}
			sum := e.Groups[cand].Size()
			for _, s := range selected {
				sum += e.Groups[s].Size()
			}
			remaining := k - len(selected) - 1
			return sum+remaining*maxSize >= spec.MinSupport
		}
	} else if minSize > 0 {
		accept = func(selected []int, cand int) bool {
			return e.Groups[cand].Size() >= minSize
		}
	}
	if opts.Mode == Fold && len(spec.Constraints) > 0 {
		thresholds := make([]float64, len(spec.Constraints))
		for i, c := range spec.Constraints {
			thresholds[i] = c.Threshold
		}
		sizeAccept := accept
		accept = func(selected []int, cand int) bool {
			if sizeAccept != nil && !sizeAccept(selected, cand) {
				return false
			}
			for ci, m := range sc.conSrc {
				var sum float64
				for _, s := range selected {
					sum += m.At(s, cand)
				}
				if sum < thresholds[ci]*float64(len(selected)) {
					return false
				}
			}
			return true
		}
	}

	var (
		run fdp.Result
		err error
	)
	switch {
	case k < 2:
		// Degenerate: a single group maximizes nothing pair-wise; pick the
		// largest group (most support) as the only sensible singleton.
		run = fdp.Result{Selected: []int{0}}
	case opts.FixedSeed:
		run, err = fdp.RandomSeedMaxAvg(len(e.Groups), k, dist, accept)
	case opts.Criterion == MaxMin:
		run, err = fdp.MaxMin(len(e.Groups), k, dist, accept)
	default:
		run, err = fdp.MaxAvg(len(e.Groups), k, dist, accept)
	}
	if err != nil {
		// No admissible seed pair: a null outcome for this pass.
		return nil, 0
	}
	set := make([]*groups.Group, len(run.Selected))
	for i, id := range run.Selected {
		set[i] = e.Groups[id]
	}
	return set, int64(len(run.Selected))
}
