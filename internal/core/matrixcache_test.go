package core

import (
	"context"
	"math"
	"testing"

	"tagdm/internal/groups"
	"tagdm/internal/mining"
)

// solveAllFamilies runs one spec through all three solver entry points and
// returns the results keyed by family.
func solveAllFamilies(t *testing.T, e *Engine, spec ProblemSpec) map[string]Result {
	t.Helper()
	ctx := context.Background()
	out := make(map[string]Result)
	ex, err := e.Exact(ctx, spec, ExactOptions{})
	if err != nil {
		t.Fatal(err)
	}
	out["exact"] = ex
	similarityOnly := true
	for _, o := range spec.Objectives {
		if o.Meas != mining.Similarity {
			similarityOnly = false
		}
	}
	if similarityOnly {
		sm, err := e.SMLSH(ctx, spec, LSHOptions{DPrime: 6, L: 2, Seed: 9, Mode: Fold})
		if err != nil {
			t.Fatal(err)
		}
		out["smlsh"] = sm
	}
	dv, err := e.DVFDP(ctx, spec, FDPOptions{Mode: Fold})
	if err != nil {
		t.Fatal(err)
	}
	out["dvfdp"] = dv
	return out
}

// TestFinishObjectiveMatchesNaive pins the finish path's matrix-routed
// objective against the naive per-pair evaluation (ObjectiveScore goes
// through miningFunc.Eval): same bits, for every solver family, on both a
// cold engine (lazy sources) and a warm one (cached matrices).
func TestFinishObjectiveMatchesNaive(t *testing.T) {
	for _, warm := range []bool{false, true} {
		e := buildEngine(t)
		spec, err := PaperProblem(1, 3, 5, 0.5, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		if warm {
			e.PrewarmMatrices(spec)
		}
		for fam, res := range solveAllFamilies(t, e, spec) {
			if !res.Found {
				continue
			}
			naive := e.ObjectiveScore(res.Groups, spec)
			if math.Float64bits(res.Objective) != math.Float64bits(naive) {
				t.Fatalf("warm=%v %s: finish objective %v, naive %v", warm, fam, res.Objective, naive)
			}
		}
	}
}

// TestSolveAccountingPartitionsBindings pins the outcome invariant: over
// any solve, builds + rebuilds + hits + lazy must equal the bindings the
// scorer touched (constraints + objectives), with physical
// materializations counted exactly once.
func TestSolveAccountingPartitionsBindings(t *testing.T) {
	e := buildEngine(t)
	spec, err := PaperProblem(1, 3, 5, 0.5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	bindings := len(spec.Constraints) + len(spec.Objectives)
	for fam, res := range solveAllFamilies(t, e, spec) {
		total := res.MatrixBuilds + res.MatrixRebuilds + res.MatrixHits + res.MatrixLazy
		if total != bindings {
			t.Fatalf("%s: builds %d + rebuilds %d + hits %d + lazy %d = %d, want %d bindings",
				fam, res.MatrixBuilds, res.MatrixRebuilds, res.MatrixHits, res.MatrixLazy, total, bindings)
		}
	}
}

// TestMatrixBudgetEvictsColdest exercises the LRU budget: with room for
// roughly one matrix, materializing a second binding must evict the first,
// bump the eviction counter, and keep residency within the budget.
func TestMatrixBudgetEvictsColdest(t *testing.T) {
	e := buildEngine(t)
	one := e.PairMatrix(mining.Tags, mining.Similarity).Bytes()
	e.SetMatrixBudget(one)
	if st := e.MatrixStats(); st.Entries != 1 || st.Bytes != one {
		t.Fatalf("after budget set: %+v", st)
	}
	e.PairMatrix(mining.Tags, mining.Diversity)
	st := e.MatrixStats()
	if st.Entries != 1 || st.Bytes != one || st.Evictions != 1 {
		t.Fatalf("after second build: %+v", st)
	}
	// The survivor is the newest binding; the evicted one rebuilds on
	// demand with identical values.
	if got := e.PairMatrix(mining.Tags, mining.Similarity); got.Len() != len(e.Groups) {
		t.Fatalf("re-materialized matrix covers %d groups", got.Len())
	}
	if st := e.MatrixStats(); st.Evictions != 2 {
		t.Fatalf("expected a second eviction, got %+v", st)
	}
}

// TestSolvesUnderTinyBudgetMatchSerial forces the degraded scoring paths —
// eviction churn for the materializing solvers, blocked-row sources for the
// gated one — and asserts answers stay bit-identical to an unbudgeted
// engine.
func TestSolvesUnderTinyBudgetMatchSerial(t *testing.T) {
	ref := buildEngine(t)
	budgeted := buildEngine(t)
	budgeted.SetMatrixBudget(64) // far below one matrix: nothing full fits
	for _, problem := range []int{1, 3, 5} {
		spec, err := PaperProblem(problem, 3, 5, 0.5, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		want := solveAllFamilies(t, ref, spec)
		got := solveAllFamilies(t, budgeted, spec)
		for fam := range want {
			w, g := want[fam], got[fam]
			if w.Found != g.Found {
				t.Fatalf("problem %d %s: found %v vs %v", problem, fam, g.Found, w.Found)
			}
			if math.Float64bits(w.Objective) != math.Float64bits(g.Objective) {
				t.Fatalf("problem %d %s: objective %v vs %v", problem, fam, g.Objective, w.Objective)
			}
			for i := range w.Groups {
				if w.Groups[i].ID != g.Groups[i].ID {
					t.Fatalf("problem %d %s: group set differs", problem, fam)
				}
			}
		}
	}
}

// TestSetPairFuncDropsCachedMatrix pins override invalidation: a matrix
// built for the default measure must not survive a SetPairFunc, and the
// next materialization must embody the override.
func TestSetPairFuncDropsCachedMatrix(t *testing.T) {
	e := buildEngine(t)
	before := e.PairMatrix(mining.Tags, mining.Similarity)
	e.SetPairFunc(mining.Tags, mining.Similarity, func(g1, g2 *groups.Group) float64 { return 0.25 })
	after := e.PairMatrix(mining.Tags, mining.Similarity)
	if after == before {
		t.Fatal("override did not drop the cached matrix")
	}
	if got := after.At(0, 1); got != 0.25 {
		t.Fatalf("overridden matrix value = %v", got)
	}
}

// TestAttachCarryRebuildsBitIdentical is the core-level carry contract: a
// next-epoch engine over the same groups, attached to the previous cache
// with an empty dirty set, must serve every binding via a rebuild (not a
// scratch build) that is bit-identical to the previous epoch's matrix.
func TestAttachCarryRebuildsBitIdentical(t *testing.T) {
	prev := buildEngine(t)
	prevMat := prev.PairMatrix(mining.Tags, mining.Diversity)

	next := buildEngine(t)
	next.Cache().AttachCarry(prev.Cache(), make([]bool, len(prev.Groups)))
	m, outcome := next.pairMatrixTracked(mining.Tags, mining.Diversity)
	if outcome != matrixRebuilt {
		t.Fatalf("carried binding served with outcome %d, want rebuild", outcome)
	}
	for i := 0; i < m.Len(); i++ {
		for j := i + 1; j < m.Len(); j++ {
			if math.Float64bits(m.At(i, j)) != math.Float64bits(prevMat.At(i, j)) {
				t.Fatalf("carried matrix differs at (%d,%d)", i, j)
			}
		}
	}
	// A binding the previous epoch never built falls back to a scratch
	// build.
	if _, outcome := next.pairMatrixTracked(mining.Users, mining.Similarity); outcome != matrixBuilt {
		t.Fatalf("uncarried binding outcome %d, want scratch build", outcome)
	}
	// Overrides poison the carry: the carried matrix embodies the default
	// measure, so an overridden binding must build from scratch.
	third := buildEngine(t)
	third.Cache().AttachCarry(next.Cache(), make([]bool, len(next.Groups)))
	third.SetPairFunc(mining.Tags, mining.Diversity, func(g1, g2 *groups.Group) float64 { return 1 })
	if _, outcome := third.pairMatrixTracked(mining.Tags, mining.Diversity); outcome != matrixBuilt {
		t.Fatalf("overridden binding outcome %d, want scratch build", outcome)
	}
}

// TestAttachCarryFoldsThroughQuietEpoch: an epoch that published and was
// replaced before any solve ran (no matrices built) must not break the
// carry chain — the new cache folds through to the grandparent with the
// dirty sets merged.
func TestAttachCarryFoldsThroughQuietEpoch(t *testing.T) {
	grand := buildEngine(t)
	grand.PairMatrix(mining.Tags, mining.Diversity)

	quiet := buildEngine(t)
	quiet.Cache().AttachCarry(grand.Cache(), make([]bool, len(grand.Groups)))

	next := buildEngine(t)
	next.Cache().AttachCarry(quiet.Cache(), make([]bool, len(quiet.Groups)))
	if _, outcome := next.pairMatrixTracked(mining.Tags, mining.Diversity); outcome != matrixRebuilt {
		t.Fatalf("carry did not fold through the quiet epoch: outcome %d", outcome)
	}
}
