package core

import "context"

// SolveOptions bundles the per-family options for the Solve dispatcher.
type SolveOptions struct {
	LSH LSHOptions
	FDP FDPOptions
}

// Solve dispatches a spec to the appropriate approximate algorithm family,
// mirroring Table 2 of the paper: similarity-only objectives go to the
// SM-LSH family; anything involving a diversity objective goes to DV-FDP.
//
// The context propagates cancellation into the solver loops (a cancelled
// ctx stops work at the next checkpoint and returns ctx.Err()) and, when
// it carries an obs trace span, collects per-stage child spans.
func (e *Engine) Solve(ctx context.Context, spec ProblemSpec, opts SolveOptions) (Result, error) {
	if err := spec.Validate(); err != nil {
		return Result{}, err
	}
	if spec.OptimizesSimilarityOnly() {
		return e.SMLSH(ctx, spec, opts.LSH)
	}
	return e.DVFDP(ctx, spec, opts.FDP)
}
