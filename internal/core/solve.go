package core

// SolveOptions bundles the per-family options for the Solve dispatcher.
type SolveOptions struct {
	LSH LSHOptions
	FDP FDPOptions
}

// Solve dispatches a spec to the appropriate approximate algorithm family,
// mirroring Table 2 of the paper: similarity-only objectives go to the
// SM-LSH family; anything involving a diversity objective goes to DV-FDP.
func (e *Engine) Solve(spec ProblemSpec, opts SolveOptions) (Result, error) {
	if err := spec.Validate(); err != nil {
		return Result{}, err
	}
	if spec.OptimizesSimilarityOnly() {
		return e.SMLSH(spec, opts.LSH)
	}
	return e.DVFDP(spec, opts.FDP)
}
