// Package vec provides the dense vector and distance-matrix primitives used
// by the LSH and facility-dispersion algorithm families. Everything operates
// on []float64 so signatures computed by the signature package plug in
// directly.
package vec

import (
	"fmt"
	"math"
)

// Dot returns the inner product of a and b. It panics if the lengths differ,
// because a silent truncation here would corrupt every similarity score
// downstream.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vec: dot of length %d and %d", len(a), len(b)))
	}
	var s float64
	for i, x := range a {
		s += x * b[i]
	}
	return s
}

// Norm returns the Euclidean (L2) norm of a.
func Norm(a []float64) float64 {
	var s float64
	for _, x := range a {
		s += x * x
	}
	return math.Sqrt(s)
}

// Cosine returns the cosine similarity of a and b in [-1, 1]. Zero vectors
// are defined to have similarity 0 with everything, which matches the
// convention that a group with no tags is incomparable rather than maximally
// similar.
func Cosine(a, b []float64) float64 {
	na, nb := Norm(a), Norm(b)
	if na == 0 || nb == 0 {
		return 0
	}
	c := Dot(a, b) / (na * nb)
	// Clamp rounding drift so downstream acos calls stay in domain.
	if c > 1 {
		c = 1
	} else if c < -1 {
		c = -1
	}
	return c
}

// CosineDistance returns 1 - Cosine(a, b), a dissimilarity in [0, 2].
func CosineDistance(a, b []float64) float64 { return 1 - Cosine(a, b) }

// Angle returns the angle between a and b in radians, theta in [0, pi].
// This is the quantity that appears in the Charikar LSH collision bound
// P[h(a)=h(b)] = 1 - theta/pi.
func Angle(a, b []float64) float64 { return math.Acos(Cosine(a, b)) }

// Euclidean returns the L2 distance between a and b.
func Euclidean(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vec: euclidean of length %d and %d", len(a), len(b)))
	}
	var s float64
	for i, x := range a {
		d := x - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// Normalize scales a to unit length in place and returns it. The zero vector
// is left unchanged.
func Normalize(a []float64) []float64 {
	n := Norm(a)
	if n == 0 {
		return a
	}
	for i := range a {
		a[i] /= n
	}
	return a
}

// Add accumulates b into a in place.
func Add(a, b []float64) {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vec: add of length %d and %d", len(a), len(b)))
	}
	for i := range a {
		a[i] += b[i]
	}
}

// Scale multiplies a by s in place.
func Scale(a []float64, s float64) {
	for i := range a {
		a[i] *= s
	}
}

// Concat returns a new vector holding the concatenation of its arguments.
// It is used by the folding algorithms, which prepend one-hot attribute
// blocks to tag signatures.
func Concat(parts ...[]float64) []float64 {
	n := 0
	for _, p := range parts {
		n += len(p)
	}
	out := make([]float64, 0, n)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

// DistFunc computes a dissimilarity between two indexed points.
type DistFunc func(i, j int) float64

// Matrix is a symmetric pairwise distance matrix with a zero diagonal,
// stored in condensed upper-triangular form to halve memory: for n points
// it keeps n*(n-1)/2 float64 values.
type Matrix struct {
	n    int
	data []float64
}

// NewMatrix computes the full pairwise matrix for n points using dist.
func NewMatrix(n int, dist DistFunc) *Matrix {
	m := &Matrix{n: n, data: make([]float64, n*(n-1)/2)}
	idx := 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			m.data[idx] = dist(i, j)
			idx++
		}
	}
	return m
}

// Len returns the number of points.
func (m *Matrix) Len() int { return m.n }

// At returns the distance between points i and j.
func (m *Matrix) At(i, j int) float64 {
	if i == j {
		return 0
	}
	if i > j {
		i, j = j, i
	}
	// Index of (i, j), j > i, in row-major condensed storage.
	return m.data[i*(2*m.n-i-1)/2+(j-i-1)]
}

// MaxEdge returns the pair (i, j) with the maximum distance and that
// distance. For n < 2 it returns (-1, -1, 0).
func (m *Matrix) MaxEdge() (int, int, float64) {
	if m.n < 2 {
		return -1, -1, 0
	}
	bi, bj, best := 0, 1, math.Inf(-1)
	idx := 0
	for i := 0; i < m.n; i++ {
		for j := i + 1; j < m.n; j++ {
			if m.data[idx] > best {
				best, bi, bj = m.data[idx], i, j
			}
			idx++
		}
	}
	return bi, bj, best
}

// AvgPairwise returns the mean of dist over all unordered pairs drawn from
// idxs. With fewer than two indices it returns 0.
func AvgPairwise(idxs []int, dist DistFunc) float64 {
	if len(idxs) < 2 {
		return 0
	}
	var sum float64
	pairs := 0
	for i := 0; i < len(idxs); i++ {
		for j := i + 1; j < len(idxs); j++ {
			sum += dist(idxs[i], idxs[j])
			pairs++
		}
	}
	return sum / float64(pairs)
}

// MinPairwise returns the minimum of dist over all unordered pairs drawn
// from idxs, or 0 with fewer than two indices.
func MinPairwise(idxs []int, dist DistFunc) float64 {
	if len(idxs) < 2 {
		return 0
	}
	best := math.Inf(1)
	for i := 0; i < len(idxs); i++ {
		for j := i + 1; j < len(idxs); j++ {
			if d := dist(idxs[i], idxs[j]); d < best {
				best = d
			}
		}
	}
	return best
}
