package vec

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestDot(t *testing.T) {
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Fatalf("Dot = %v, want 32", got)
	}
	if got := Dot(nil, nil); got != 0 {
		t.Fatalf("Dot(nil,nil) = %v", got)
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch should panic")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestNormAndNormalize(t *testing.T) {
	v := []float64{3, 4}
	if !almostEqual(Norm(v), 5) {
		t.Fatalf("Norm = %v", Norm(v))
	}
	Normalize(v)
	if !almostEqual(Norm(v), 1) {
		t.Fatalf("normalized norm = %v", Norm(v))
	}
	z := []float64{0, 0}
	Normalize(z)
	if z[0] != 0 || z[1] != 0 {
		t.Fatal("zero vector should be unchanged")
	}
}

func TestCosine(t *testing.T) {
	cases := []struct {
		a, b []float64
		want float64
	}{
		{[]float64{1, 0}, []float64{1, 0}, 1},
		{[]float64{1, 0}, []float64{0, 1}, 0},
		{[]float64{1, 0}, []float64{-1, 0}, -1},
		{[]float64{1, 1}, []float64{1, 1}, 1},
		{[]float64{0, 0}, []float64{1, 1}, 0}, // zero vector convention
	}
	for _, c := range cases {
		if got := Cosine(c.a, c.b); !almostEqual(got, c.want) {
			t.Errorf("Cosine(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestAngle(t *testing.T) {
	if got := Angle([]float64{1, 0}, []float64{0, 1}); !almostEqual(got, math.Pi/2) {
		t.Fatalf("Angle = %v, want pi/2", got)
	}
	if got := Angle([]float64{2, 0}, []float64{5, 0}); !almostEqual(got, 0) {
		t.Fatalf("Angle of parallel = %v", got)
	}
}

func TestEuclidean(t *testing.T) {
	if got := Euclidean([]float64{0, 0}, []float64{3, 4}); !almostEqual(got, 5) {
		t.Fatalf("Euclidean = %v", got)
	}
}

func TestAddScaleConcat(t *testing.T) {
	a := []float64{1, 2}
	Add(a, []float64{3, 4})
	if a[0] != 4 || a[1] != 6 {
		t.Fatalf("Add = %v", a)
	}
	Scale(a, 0.5)
	if a[0] != 2 || a[1] != 3 {
		t.Fatalf("Scale = %v", a)
	}
	c := Concat([]float64{1}, nil, []float64{2, 3})
	if len(c) != 3 || c[0] != 1 || c[2] != 3 {
		t.Fatalf("Concat = %v", c)
	}
}

func TestMatrixAt(t *testing.T) {
	pts := [][]float64{{0}, {1}, {3}, {6}}
	m := NewMatrix(len(pts), func(i, j int) float64 { return Euclidean(pts[i], pts[j]) })
	for i := range pts {
		for j := range pts {
			want := math.Abs(pts[i][0] - pts[j][0])
			if got := m.At(i, j); !almostEqual(got, want) {
				t.Fatalf("At(%d,%d) = %v, want %v", i, j, got, want)
			}
		}
	}
	i, j, d := m.MaxEdge()
	if i != 0 || j != 3 || !almostEqual(d, 6) {
		t.Fatalf("MaxEdge = (%d,%d,%v)", i, j, d)
	}
}

func TestMatrixDegenerate(t *testing.T) {
	m := NewMatrix(1, func(i, j int) float64 { return 1 })
	if i, j, d := m.MaxEdge(); i != -1 || j != -1 || d != 0 {
		t.Fatalf("MaxEdge on single point = (%d,%d,%v)", i, j, d)
	}
	if m.At(0, 0) != 0 {
		t.Fatal("diagonal must be zero")
	}
}

func TestAvgMinPairwise(t *testing.T) {
	dist := func(i, j int) float64 { return math.Abs(float64(i - j)) }
	idxs := []int{0, 2, 5}
	// pairs: |0-2|=2, |0-5|=5, |2-5|=3 -> avg 10/3, min 2
	if got := AvgPairwise(idxs, dist); !almostEqual(got, 10.0/3.0) {
		t.Fatalf("AvgPairwise = %v", got)
	}
	if got := MinPairwise(idxs, dist); !almostEqual(got, 2) {
		t.Fatalf("MinPairwise = %v", got)
	}
	if AvgPairwise([]int{7}, dist) != 0 || MinPairwise(nil, dist) != 0 {
		t.Fatal("degenerate inputs should return 0")
	}
}

// Property: cosine similarity is symmetric and bounded.
func TestQuickCosineSymmetricBounded(t *testing.T) {
	f := func(a, b [8]float64) bool {
		x, y := make([]float64, 8), make([]float64, 8)
		for i := range x {
			// Keep magnitudes bounded so norms cannot overflow to +Inf.
			x[i] = math.Mod(a[i], 1e6)
			y[i] = math.Mod(b[i], 1e6)
		}
		c1, c2 := Cosine(x, y), Cosine(y, x)
		return c1 == c2 && c1 >= -1 && c1 <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: condensed matrix agrees with direct recomputation at every cell.
func TestQuickMatrixConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(12)
		pts := make([][]float64, n)
		for i := range pts {
			pts[i] = []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		}
		dist := func(i, j int) float64 { return Euclidean(pts[i], pts[j]) }
		m := NewMatrix(n, dist)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if !almostEqual(m.At(i, j), dist(i, j)) {
					t.Fatalf("n=%d cell (%d,%d): %v != %v", n, i, j, m.At(i, j), dist(i, j))
				}
				if !almostEqual(m.At(i, j), m.At(j, i)) {
					t.Fatalf("matrix not symmetric at (%d,%d)", i, j)
				}
			}
		}
	}
}

// Property: triangle inequality holds for Euclidean on random points, which
// the FDP approximation bound relies on.
func TestQuickEuclideanTriangle(t *testing.T) {
	f := func(a, b, c [4]float64) bool {
		ab := Euclidean(a[:], b[:])
		bc := Euclidean(b[:], c[:])
		ac := Euclidean(a[:], c[:])
		return ac <= ab+bc+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
