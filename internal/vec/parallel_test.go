package vec

import (
	"math/rand"
	"testing"
)

func TestParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{0, 1, 2, 3, 7, 50, 123} {
		pts := make([][]float64, n)
		for i := range pts {
			pts[i] = []float64{rng.NormFloat64(), rng.NormFloat64()}
		}
		dist := func(i, j int) float64 { return Euclidean(pts[i], pts[j]) }
		serial := NewMatrix(n, dist)
		for _, workers := range []int{0, 1, 2, 5, 64} {
			par := NewMatrixParallel(n, dist, workers)
			if par.Len() != serial.Len() {
				t.Fatalf("n=%d workers=%d: Len mismatch", n, workers)
			}
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					if par.At(i, j) != serial.At(i, j) {
						t.Fatalf("n=%d workers=%d cell (%d,%d): %v != %v",
							n, workers, i, j, par.At(i, j), serial.At(i, j))
					}
				}
			}
		}
	}
}

func BenchmarkMatrixSerial(b *testing.B) {
	pts := randomPoints(400, 25, 1)
	dist := func(i, j int) float64 { return CosineDistance(pts[i], pts[j]) }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewMatrix(len(pts), dist)
	}
}

func BenchmarkMatrixParallel(b *testing.B) {
	pts := randomPoints(400, 25, 1)
	dist := func(i, j int) float64 { return CosineDistance(pts[i], pts[j]) }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewMatrixParallel(len(pts), dist, 0)
	}
}

func randomPoints(n, d int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	pts := make([][]float64, n)
	for i := range pts {
		v := make([]float64, d)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		pts[i] = v
	}
	return pts
}
