package vec

import (
	"runtime"
	"sync"
)

// NewMatrixParallel computes the same condensed pairwise matrix as
// NewMatrix but splits the row range across workers goroutines (default:
// GOMAXPROCS when workers <= 0). dist must be safe for concurrent calls —
// pure functions over immutable data, which every distance in this
// codebase is. Row i owns the contiguous condensed segment of pairs
// (i, i+1..n-1), so workers write disjoint slices and need no locking.
func NewMatrixParallel(n int, dist DistFunc, workers int) *Matrix {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	m := &Matrix{n: n, data: make([]float64, n*(n-1)/2)}
	if n < 2 {
		return m
	}
	if workers <= 1 {
		idx := 0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				m.data[idx] = dist(i, j)
				idx++
			}
		}
		return m
	}
	// Rows shrink as i grows (row i has n-1-i pairs), so static striding
	// (worker w takes rows w, w+workers, ...) balances load well enough.
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < n; i += workers {
				base := i*(2*n-i-1)/2 - i // offset of pair (i, i+1)
				for j := i + 1; j < n; j++ {
					m.data[base+j-1] = dist(i, j)
				}
			}
		}(w)
	}
	wg.Wait()
	return m
}

// NewMatrixParallelFrom computes the matrix NewMatrixParallel(n, dist,
// workers) would, but copies entry (i, j) from prev — bit-identically, no
// recomputation — whenever both endpoints lie inside prev's point range and
// neither is marked dirty. dirty is indexed by prev's points and marks the
// rows/columns whose underlying data changed since prev was built; points
// at or beyond prev.Len() are always recomputed. prev must have been built
// over the same dist semantics (clean entries are trusted verbatim).
func NewMatrixParallelFrom(n int, prev *Matrix, dirty []bool, dist DistFunc, workers int) *Matrix {
	if prev == nil {
		return NewMatrixParallel(n, dist, workers)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	pn := prev.n
	if len(dirty) < pn {
		pn = len(dirty)
	}
	m := &Matrix{n: n, data: make([]float64, n*(n-1)/2)}
	if n < 2 {
		return m
	}
	fill := func(i int) {
		base := i*(2*n-i-1)/2 - i // offset of pair (i, i+1)
		if i < pn && !dirty[i] {
			pbase := i*(2*prev.n-i-1)/2 - i
			for j := i + 1; j < pn; j++ {
				if dirty[j] {
					m.data[base+j-1] = dist(i, j)
				} else {
					m.data[base+j-1] = prev.data[pbase+j-1]
				}
			}
			for j := pn; j < n; j++ {
				m.data[base+j-1] = dist(i, j)
			}
			return
		}
		for j := i + 1; j < n; j++ {
			m.data[base+j-1] = dist(i, j)
		}
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fill(i)
		}
		return m
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < n; i += workers {
				fill(i)
			}
		}(w)
	}
	wg.Wait()
	return m
}
