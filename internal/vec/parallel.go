package vec

import (
	"runtime"
	"sync"
)

// NewMatrixParallel computes the same condensed pairwise matrix as
// NewMatrix but splits the row range across workers goroutines (default:
// GOMAXPROCS when workers <= 0). dist must be safe for concurrent calls —
// pure functions over immutable data, which every distance in this
// codebase is. Row i owns the contiguous condensed segment of pairs
// (i, i+1..n-1), so workers write disjoint slices and need no locking.
func NewMatrixParallel(n int, dist DistFunc, workers int) *Matrix {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	m := &Matrix{n: n, data: make([]float64, n*(n-1)/2)}
	if n < 2 {
		return m
	}
	if workers <= 1 {
		idx := 0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				m.data[idx] = dist(i, j)
				idx++
			}
		}
		return m
	}
	// Rows shrink as i grows (row i has n-1-i pairs), so static striding
	// (worker w takes rows w, w+workers, ...) balances load well enough.
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < n; i += workers {
				base := i*(2*n-i-1)/2 - i // offset of pair (i, i+1)
				for j := i + 1; j < n; j++ {
					m.data[base+j-1] = dist(i, j)
				}
			}
		}(w)
	}
	wg.Wait()
	return m
}
