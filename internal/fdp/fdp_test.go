package fdp

import (
	"math"
	"math/rand"
	"testing"

	"tagdm/internal/vec"
)

// lineDist places points on a line at the given coordinates.
func lineDist(coords []float64) vec.DistFunc {
	return func(i, j int) float64 { return math.Abs(coords[i] - coords[j]) }
}

func TestValidation(t *testing.T) {
	d := lineDist([]float64{0, 1, 2})
	if _, err := MaxAvg(3, 1, d, nil); err == nil {
		t.Fatal("k=1 accepted")
	}
	if _, err := MaxAvg(2, 3, d, nil); err == nil {
		t.Fatal("n<k accepted")
	}
	if _, err := MaxMin(3, 1, d, nil); err == nil {
		t.Fatal("MaxMin k=1 accepted")
	}
	if _, err := Exact(2, 3, d); err == nil {
		t.Fatal("Exact n<k accepted")
	}
}

func TestMaxAvgSeedsWithMaxEdge(t *testing.T) {
	// Points at 0, 1, 10: max edge is (0, 10).
	res, err := MaxAvg(3, 2, lineDist([]float64{0, 1, 10}), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Selected) != 2 {
		t.Fatalf("selected %v", res.Selected)
	}
	has := map[int]bool{res.Selected[0]: true, res.Selected[1]: true}
	if !has[0] || !has[2] {
		t.Fatalf("seed pair = %v, want {0, 2}", res.Selected)
	}
	if res.AvgDistance != 10 || res.MinDistance != 10 {
		t.Fatalf("distances = %v / %v", res.AvgDistance, res.MinDistance)
	}
}

func TestMaxAvgGreedyAdd(t *testing.T) {
	// Points at 0, 4, 5, 10. Seed (0, 10); next add maximizes sum of
	// distances: point 1 at 4 gives 4+6=10, point 2 at 5 gives 5+5=10.
	// Tie broken by index order (first maximum wins) -> point 1.
	res, err := MaxAvg(4, 3, lineDist([]float64{0, 4, 5, 10}), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Selected) != 3 {
		t.Fatalf("selected %v", res.Selected)
	}
	want := map[int]bool{0: true, 3: true, 1: true}
	for _, s := range res.Selected {
		if !want[s] {
			t.Fatalf("selection %v", res.Selected)
		}
	}
}

func TestMaxMinPrefersSpread(t *testing.T) {
	// Points at 0, 1, 5, 10. MAX-MIN with k=3 should pick 0, 10 and then 5
	// (min distance 5) rather than 1 (min distance 1).
	res, err := MaxMin(4, 3, lineDist([]float64{0, 1, 5, 10}), nil)
	if err != nil {
		t.Fatal(err)
	}
	has := map[int]bool{}
	for _, s := range res.Selected {
		has[s] = true
	}
	if !has[0] || !has[3] || !has[2] {
		t.Fatalf("MaxMin selection = %v, want {0, 2, 3}", res.Selected)
	}
	if res.MinDistance != 5 {
		t.Fatalf("MinDistance = %v", res.MinDistance)
	}
}

func TestAcceptConstraint(t *testing.T) {
	// Forbid point 3 entirely; selection must avoid it.
	coords := []float64{0, 1, 5, 10}
	accept := func(sel []int, cand int) bool { return cand != 3 }
	res, err := MaxAvg(4, 3, lineDist(coords), accept)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Selected {
		if s == 3 {
			t.Fatalf("rejected point selected: %v", res.Selected)
		}
	}
	if len(res.Selected) != 3 {
		t.Fatalf("selected %d points", len(res.Selected))
	}
}

func TestAcceptCanExhaustCandidates(t *testing.T) {
	// Only points 0 and 1 admissible; k=3 must stop at 2 points.
	accept := func(sel []int, cand int) bool { return cand <= 1 }
	res, err := MaxAvg(4, 3, lineDist([]float64{0, 1, 5, 10}), accept)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Selected) != 2 {
		t.Fatalf("selected %v, want 2 admissible points", res.Selected)
	}
}

func TestAcceptNoSeedPair(t *testing.T) {
	accept := func(sel []int, cand int) bool { return false }
	if _, err := MaxAvg(4, 2, lineDist([]float64{0, 1, 2, 3}), accept); err == nil {
		t.Fatal("expected error when no admissible seed pair")
	}
}

func TestExactSmall(t *testing.T) {
	// On a line, the pairwise sum of 3 points a<b<c is 2(c-a), so every
	// optimal 3-subset contains both endpoints and scores avg 20/3 here.
	coords := []float64{0, 1, 2, 9, 10}
	res, err := Exact(5, 3, lineDist(coords))
	if err != nil {
		t.Fatal(err)
	}
	has := map[int]bool{}
	for _, s := range res.Selected {
		has[s] = true
	}
	if !has[0] || !has[4] {
		t.Fatalf("Exact = %v, must contain endpoints", res.Selected)
	}
	if math.Abs(res.AvgDistance-20.0/3.0) > 1e-12 {
		t.Fatalf("AvgDistance = %v, want 20/3", res.AvgDistance)
	}
}

func TestExactTooLarge(t *testing.T) {
	if _, err := Exact(1000, 10, func(i, j int) float64 { return 1 }); err == nil {
		t.Fatal("huge enumeration accepted")
	}
}

// TestApproximationBound verifies the factor-4 guarantee (paper Theorem 4)
// empirically on random metric instances, comparing against Exact.
func TestApproximationBound(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 30; trial++ {
		n := 8 + rng.Intn(8)
		k := 2 + rng.Intn(3)
		pts := make([][]float64, n)
		for i := range pts {
			pts[i] = []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		}
		dist := func(i, j int) float64 { return vec.Euclidean(pts[i], pts[j]) }
		opt, err := Exact(n, k, dist)
		if err != nil {
			t.Fatal(err)
		}
		app, err := MaxAvg(n, k, dist, nil)
		if err != nil {
			t.Fatal(err)
		}
		if opt.AvgDistance > 4*app.AvgDistance+1e-12 {
			t.Fatalf("trial %d: opt %v > 4x approx %v", trial, opt.AvgDistance, app.AvgDistance)
		}
		if app.AvgDistance > opt.AvgDistance+1e-12 {
			t.Fatalf("trial %d: approx beats exact?!", trial)
		}
	}
}

func TestRandomSeedVariant(t *testing.T) {
	coords := []float64{5, 5.1, 0, 10}
	// Max-edge seeding picks (2, 3); fixed seeding starts from (0, 1) which
	// are nearly coincident, so its average must be no better.
	maxSeed, err := MaxAvg(4, 2, lineDist(coords), nil)
	if err != nil {
		t.Fatal(err)
	}
	fixed, err := RandomSeedMaxAvg(4, 2, lineDist(coords), nil)
	if err != nil {
		t.Fatal(err)
	}
	if fixed.AvgDistance > maxSeed.AvgDistance {
		t.Fatalf("fixed seed %v beat max-edge seed %v", fixed.AvgDistance, maxSeed.AvgDistance)
	}
}

func TestMatrixBackedDispersion(t *testing.T) {
	// Using a precomputed vec.Matrix as the oracle must match direct calls.
	coords := []float64{0, 2, 7, 11, 13}
	direct := lineDist(coords)
	m := vec.NewMatrix(len(coords), direct)
	a, err := MaxAvg(5, 3, direct, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MaxAvg(5, 3, m.At, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.AvgDistance != b.AvgDistance {
		t.Fatalf("matrix-backed run differs: %v vs %v", a.AvgDistance, b.AvgDistance)
	}
}

// Property: greedy MAX-AVG selection always returns exactly k distinct
// indices when unconstrained, and its average distance is positive when
// points are distinct.
func TestQuickMaxAvgShape(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for trial := 0; trial < 60; trial++ {
		n := 4 + rng.Intn(20)
		k := 2 + rng.Intn(n-2)
		pts := make([]float64, n)
		for i := range pts {
			pts[i] = float64(i) + rng.Float64()*0.25 // strictly increasing
		}
		res, err := MaxAvg(n, k, lineDist(pts), nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Selected) != k {
			t.Fatalf("n=%d k=%d: selected %d", n, k, len(res.Selected))
		}
		seen := map[int]bool{}
		for _, s := range res.Selected {
			if seen[s] {
				t.Fatalf("duplicate selection %v", res.Selected)
			}
			seen[s] = true
		}
		if res.AvgDistance <= 0 {
			t.Fatalf("non-positive avg distance %v", res.AvgDistance)
		}
		if res.MinDistance > res.AvgDistance {
			t.Fatalf("min %v > avg %v", res.MinDistance, res.AvgDistance)
		}
	}
}
