// Package fdp implements the facility dispersion heuristics the paper's
// DV-FDP algorithm family is built on (Section 5): the greedy MAX-AVG
// dispersion heuristic of Ravi, Rosenkrantz and Tayi (WADS 1991), which
// carries a factor-4 performance guarantee when distances satisfy the
// triangle inequality, plus a MAX-MIN variant and an exact combinatorial
// solver for cross-checking on small instances.
//
// Points are abstract: the algorithms consume a distance oracle DistFunc
// (or a precomputed vec.Matrix) and work over indices, so callers can
// disperse tag-signature vectors, groups, or anything else.
package fdp

import (
	"fmt"
	"math"

	"tagdm/internal/vec"
)

// Accept is an optional admission predicate consulted before a candidate
// point joins the selection. The DV-FDP-Fo algorithm folds user/item hard
// constraints into the greedy add step through this hook; a nil Accept
// admits everything.
type Accept func(selected []int, candidate int) bool

// Result is the outcome of a dispersion run.
type Result struct {
	// Selected holds the chosen point indices in selection order.
	Selected []int
	// AvgDistance is the mean pairwise distance of the selection.
	AvgDistance float64
	// MinDistance is the minimum pairwise distance of the selection.
	MinDistance float64
}

// MaxAvg runs the greedy MAX-AVG dispersion heuristic: seed with the pair
// joined by the maximum-weight edge, then repeatedly add the point whose
// total distance to the current selection is maximal, until k points are
// chosen or no admissible candidate remains. With a nil accept and metric
// distances, the selection's average pairwise distance is within a factor
// 4 of optimal (paper Theorem 4).
func MaxAvg(n, k int, dist vec.DistFunc, accept Accept) (Result, error) {
	if err := validate(n, k); err != nil {
		return Result{}, err
	}
	selected := seedPair(n, dist, accept)
	if len(selected) < 2 {
		return Result{}, fmt.Errorf("fdp: no admissible seed pair among %d points", n)
	}
	inSel := make([]bool, n)
	for _, s := range selected {
		inSel[s] = true
	}
	// sumDist[c] caches the total distance from candidate c to the current
	// selection, updated incrementally after each add: O(n) per iteration.
	sumDist := make([]float64, n)
	for c := 0; c < n; c++ {
		if inSel[c] {
			continue
		}
		for _, s := range selected {
			sumDist[c] += dist(c, s)
		}
	}
	for len(selected) < k {
		best, bestSum := -1, math.Inf(-1)
		for c := 0; c < n; c++ {
			if inSel[c] {
				continue
			}
			if sumDist[c] > bestSum {
				if accept != nil && !accept(selected, c) {
					continue
				}
				best, bestSum = c, sumDist[c]
			}
		}
		if best == -1 {
			break // no admissible candidate left
		}
		selected = append(selected, best)
		inSel[best] = true
		for c := 0; c < n; c++ {
			if !inSel[c] {
				sumDist[c] += dist(c, best)
			}
		}
	}
	return summarize(selected, dist), nil
}

// MaxMin runs the greedy MAX-MIN dispersion heuristic: same seeding, but
// each step adds the point maximizing the minimum distance to the current
// selection. This 2-approximates the MAX-MIN objective on metric inputs.
func MaxMin(n, k int, dist vec.DistFunc, accept Accept) (Result, error) {
	if err := validate(n, k); err != nil {
		return Result{}, err
	}
	selected := seedPair(n, dist, accept)
	if len(selected) < 2 {
		return Result{}, fmt.Errorf("fdp: no admissible seed pair among %d points", n)
	}
	inSel := make([]bool, n)
	for _, s := range selected {
		inSel[s] = true
	}
	minDist := make([]float64, n)
	for c := 0; c < n; c++ {
		if inSel[c] {
			continue
		}
		minDist[c] = math.Inf(1)
		for _, s := range selected {
			if d := dist(c, s); d < minDist[c] {
				minDist[c] = d
			}
		}
	}
	for len(selected) < k {
		best, bestMin := -1, math.Inf(-1)
		for c := 0; c < n; c++ {
			if inSel[c] {
				continue
			}
			if minDist[c] > bestMin {
				if accept != nil && !accept(selected, c) {
					continue
				}
				best, bestMin = c, minDist[c]
			}
		}
		if best == -1 {
			break
		}
		selected = append(selected, best)
		inSel[best] = true
		for c := 0; c < n; c++ {
			if !inSel[c] {
				if d := dist(c, best); d < minDist[c] {
					minDist[c] = d
				}
			}
		}
	}
	return summarize(selected, dist), nil
}

// RandomSeedMaxAvg is the ablation variant of MaxAvg that seeds with a
// fixed arbitrary pair (0, 1) instead of scanning for the maximum edge.
// It exists to quantify how much the max-edge seed of the paper's
// Algorithm 2 contributes to result quality.
func RandomSeedMaxAvg(n, k int, dist vec.DistFunc, accept Accept) (Result, error) {
	if err := validate(n, k); err != nil {
		return Result{}, err
	}
	if accept != nil && !accept([]int{0}, 1) {
		return MaxAvg(n, k, dist, accept) // fall back to admissible seeding
	}
	selected := []int{0, 1}
	inSel := make([]bool, n)
	inSel[0], inSel[1] = true, true
	sumDist := make([]float64, n)
	for c := 2; c < n; c++ {
		sumDist[c] = dist(c, 0) + dist(c, 1)
	}
	for len(selected) < k {
		best, bestSum := -1, math.Inf(-1)
		for c := 0; c < n; c++ {
			if inSel[c] {
				continue
			}
			if sumDist[c] > bestSum {
				if accept != nil && !accept(selected, c) {
					continue
				}
				best, bestSum = c, sumDist[c]
			}
		}
		if best == -1 {
			break
		}
		selected = append(selected, best)
		inSel[best] = true
		for c := 0; c < n; c++ {
			if !inSel[c] {
				sumDist[c] += dist(c, best)
			}
		}
	}
	return summarize(selected, dist), nil
}

// Exact enumerates all k-subsets and returns the one maximizing average
// pairwise distance. It is exponential and intended for tests and tiny
// instances; n choose k is capped at ~50M combinations.
func Exact(n, k int, dist vec.DistFunc) (Result, error) {
	if err := validate(n, k); err != nil {
		return Result{}, err
	}
	if c := binomial(n, k); c <= 0 || c > 50_000_000 {
		return Result{}, fmt.Errorf("fdp: exact enumeration of C(%d,%d) too large", n, k)
	}
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	best := make([]int, k)
	bestAvg := math.Inf(-1)
	for {
		if avg := vec.AvgPairwise(idx, dist); avg > bestAvg {
			bestAvg = avg
			copy(best, idx)
		}
		// Next combination in lexicographic order.
		i := k - 1
		for i >= 0 && idx[i] == n-k+i {
			i--
		}
		if i < 0 {
			break
		}
		idx[i]++
		for j := i + 1; j < k; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
	return summarize(best, dist), nil
}

func validate(n, k int) error {
	if k < 2 {
		return fmt.Errorf("fdp: k must be >= 2, got %d", k)
	}
	if n < k {
		return fmt.Errorf("fdp: need at least k=%d points, have %d", k, n)
	}
	return nil
}

// seedPair finds the admissible pair with maximum distance.
func seedPair(n int, dist vec.DistFunc, accept Accept) []int {
	bi, bj := -1, -1
	best := math.Inf(-1)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if d := dist(i, j); d > best {
				if accept != nil && (!accept([]int{i}, j) || !accept([]int{j}, i)) {
					continue
				}
				best, bi, bj = d, i, j
			}
		}
	}
	if bi == -1 {
		return nil
	}
	return []int{bi, bj}
}

func summarize(selected []int, dist vec.DistFunc) Result {
	return Result{
		Selected:    selected,
		AvgDistance: vec.AvgPairwise(selected, dist),
		MinDistance: vec.MinPairwise(selected, dist),
	}
}

func binomial(n, k int) int64 {
	if k > n-k {
		k = n - k
	}
	var c int64 = 1
	for i := 0; i < k; i++ {
		c = c * int64(n-i) / int64(i+1)
		if c < 0 || c > 1<<60 {
			return -1
		}
	}
	return c
}
