package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"tagdm/internal/core"
)

// StageRow is one per-stage wall-time measurement of one solver run.
type StageRow struct {
	Problem   string
	Algorithm string
	Stage     string
	Wall      time.Duration
}

// StageTraceTable is the per-stage timing breakdown behind the -trace
// trajectory: where each solver family spends its time (matrix builds,
// enumeration, LSH rounds, greedy sweeps, local search).
type StageTraceTable struct {
	Title string
	Rows  []StageRow
}

// Render formats the breakdown with aligned columns.
func (t StageTraceTable) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	fmt.Fprintf(&b, "%-12s %-12s %-14s %12s\n", "problem", "algorithm", "stage", "time")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-12s %-12s %-14s %12s\n",
			r.Problem, r.Algorithm, r.Stage, r.Wall.Round(time.Microsecond))
	}
	return b.String()
}

// StageTraces runs one similarity problem and one diversity problem
// through the exact and approximate solvers and reports each run's
// per-stage wall times (core.Result.Stages) plus a total row. Stage
// timings are recorded unconditionally by the solvers, so this measures
// the same windows the server's tagdm_solve_stage_seconds histograms
// observe.
func StageTraces(st *Setup, p Params) (StageTraceTable, error) {
	exactEng, err := st.ExactEngine()
	if err != nil {
		return StageTraceTable{}, err
	}
	out := StageTraceTable{Title: "Per-stage solver timing"}
	add := func(spec core.ProblemSpec, algo string, res core.Result, err error) error {
		if err != nil {
			return err
		}
		for _, stg := range res.Stages {
			out.Rows = append(out.Rows, StageRow{spec.Name, algo, stg.Name, stg.Wall})
		}
		out.Rows = append(out.Rows, StageRow{spec.Name, algo, "total", res.Elapsed})
		return nil
	}

	sim, err := core.PaperProblem(1, p.K, p.support(st), p.Q, p.R)
	if err != nil {
		return StageTraceTable{}, err
	}
	res, err := exactEng.Exact(context.Background(), sim, core.ExactOptions{})
	if err := add(sim, "Exact", res, err); err != nil {
		return StageTraceTable{}, err
	}
	res, err = st.Engine.SMLSH(context.Background(), sim, core.LSHOptions{
		DPrime: p.DPrime, L: p.L, Seed: st.Config.Seed, Mode: core.Fold})
	if err := add(sim, "SM-LSH-Fo", res, err); err != nil {
		return StageTraceTable{}, err
	}

	div, err := core.PaperProblem(6, p.K, p.support(st), p.Q, p.R)
	if err != nil {
		return StageTraceTable{}, err
	}
	res, err = exactEng.Exact(context.Background(), div, core.ExactOptions{})
	if err := add(div, "Exact", res, err); err != nil {
		return StageTraceTable{}, err
	}
	res, err = st.Engine.DVFDP(context.Background(), div, core.FDPOptions{Mode: core.Fold})
	if err := add(div, "DV-FDP-Fo", res, err); err != nil {
		return StageTraceTable{}, err
	}
	return out, nil
}
