package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"tagdm/internal/core"
)

// This file extends the randomized property harness to the scatter-gather
// sharding layer: on every seeded random corpus and spec, solving as N
// independent shard partials merged with MergePartials must be
// byte-identical to one serial solve, for all three solver families. The
// shards partition the search space, so candidate accounting must stay a
// partition: Exact's examined + pruned must sum to the full enumeration
// (the serial total), and the approximate families must examine exactly the
// serial candidate count across shards — nothing skipped, nothing counted
// twice.

var shardCounts = []int{2, 3, 5}

func TestShardedSolveMatchesSerialRandomCorpora(t *testing.T) {
	ctx := context.Background()
	opts := core.SolveOptions{
		LSH: core.LSHOptions{DPrime: 6, L: 2, Seed: 9, Mode: core.Fold},
		FDP: core.FDPOptions{Mode: core.Fold},
	}
	for _, c := range propCorpora(t) {
		rng := rand.New(rand.NewSource(c.seed + 7))
		specs := c.propSpecs(rng)
		serial := c.engine(t, "dense")
		for _, of := range shardCounts {
			// Each shard gets its own engine over the same corpus and pair
			// tables, mirroring the server's snapshot replicas (pair-func
			// overrides are per engine, so each replica re-installs them).
			engines := make([]*core.Engine, of)
			for i := range engines {
				engines[i] = c.engine(t, "dense")
			}
			for _, spec := range specs {
				label := fmt.Sprintf("u=%d d=%g of=%d %s", c.universe, c.density, of, spec.Name)

				want, err := serial.Solve(ctx, spec, opts)
				if err != nil {
					t.Fatalf("%s: serial solve: %v", label, err)
				}
				got, err := core.SolveSharded(ctx, engines, spec, opts)
				if err != nil {
					t.Fatalf("%s: sharded solve: %v", label, err)
				}
				if want.Algorithm != got.Algorithm {
					t.Fatalf("%s: dispatched to %s vs %s", label, got.Algorithm, want.Algorithm)
				}
				assertByteIdentical(t, label+"/"+want.Algorithm, want, got)
				if want.CandidatesExamined != got.CandidatesExamined {
					t.Fatalf("%s/%s: sharded examined %d, serial %d — shards did not partition the candidate space",
						label, want.Algorithm, got.CandidatesExamined, want.CandidatesExamined)
				}
				if got.CandidatesPruned != 0 {
					t.Fatalf("%s/%s: approximate family reported %d pruned", label, want.Algorithm, got.CandidatesPruned)
				}

				wantX, err := serial.Exact(ctx, spec, core.ExactOptions{})
				if err != nil {
					t.Fatalf("%s: serial exact: %v", label, err)
				}
				gotX, err := core.ExactSharded(ctx, engines, spec, core.ExactOptions{})
				if err != nil {
					t.Fatalf("%s: sharded exact: %v", label, err)
				}
				assertByteIdentical(t, label+"/Exact", wantX, gotX)
				// Pruning decisions legitimately differ per shard (each
				// carries its own incumbent), but examined + pruned must
				// still sum to the full enumeration either way.
				wantTotal := wantX.CandidatesExamined + wantX.CandidatesPruned
				gotTotal := gotX.CandidatesExamined + gotX.CandidatesPruned
				if wantTotal != gotTotal {
					t.Fatalf("%s/Exact: sharded examined %d + pruned %d = %d, serial enumeration %d",
						label, gotX.CandidatesExamined, gotX.CandidatesPruned, gotTotal, wantTotal)
				}
			}
		}
	}
}

// TestShardedExactParallelWithinShards layers the two parallelism levels:
// each shard's partial itself fanning out over goroutines (the pre-sharding
// Exact parallel path) must not disturb the merged answer or the
// candidate-accounting partition.
func TestShardedExactParallelWithinShards(t *testing.T) {
	ctx := context.Background()
	for _, c := range propCorpora(t) {
		rng := rand.New(rand.NewSource(c.seed + 7))
		specs := c.propSpecs(rng)
		serial := c.engine(t, "dense")
		engines := []*core.Engine{c.engine(t, "dense"), c.engine(t, "dense")}
		for _, spec := range specs {
			label := fmt.Sprintf("u=%d d=%g %s parallel-in-shard", c.universe, c.density, spec.Name)
			want, err := serial.Exact(ctx, spec, core.ExactOptions{})
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			got, err := core.ExactSharded(ctx, engines, spec, core.ExactOptions{Parallel: true})
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			assertByteIdentical(t, label, want, got)
			wantTotal := want.CandidatesExamined + want.CandidatesPruned
			gotTotal := got.CandidatesExamined + got.CandidatesPruned
			if wantTotal != gotTotal {
				t.Fatalf("%s: examined+pruned %d, serial enumeration %d", label, gotTotal, wantTotal)
			}
		}
	}
}
