package experiments

import (
	"context"

	"testing"

	"tagdm/internal/core"
	"tagdm/internal/groups"
)

// naiveExactRef is the pre-matrix Exact baseline: full enumeration with
// every candidate rescored from scratch through the engine's naive
// ObjectiveScore / ConstraintsSatisfied. It anchors the acceptance
// criterion that the incremental matrix path changes nothing but speed on
// the experiments corpus.
func naiveExactRef(e *core.Engine, spec core.ProblemSpec) (bool, []int, float64) {
	n := len(e.Groups)
	var (
		found     bool
		best      []int
		bestScore float64
	)
	var set []*groups.Group
	var rec func(start, k int)
	rec = func(start, k int) {
		if k == 0 {
			if !e.ConstraintsSatisfied(set, spec) {
				return
			}
			if score := e.ObjectiveScore(set, spec); !found || score > bestScore {
				bestScore = score
				best = best[:0]
				for _, g := range set {
					best = append(best, g.ID)
				}
				found = true
			}
			return
		}
		for i := start; i <= n-k; i++ {
			set = append(set, e.Groups[i])
			rec(i+1, k-1)
			set = set[:len(set)-1]
		}
	}
	for k := spec.KLo; k <= spec.KHi && k <= n; k++ {
		rec(0, k)
	}
	return found, best, bestScore
}

// TestExactEquivalenceOnCorpus runs all six paper problems on the
// experiments corpus (the FastConfig ExactEngine the figures and
// benchmarks use) and demands byte-identical results from the serial and
// parallel Exact against the naive reference: same feasibility, same
// argmax group IDs, bit-for-bit equal objective and support.
func TestExactEquivalenceOnCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus pipeline is slow under -short")
	}
	st := setup(t)
	ex, err := st.ExactEngine()
	if err != nil {
		t.Fatal(err)
	}
	p := PaperParams()
	for id := 1; id <= 6; id++ {
		spec, err := core.PaperProblem(id, p.K, p.support(st), p.Q, p.R)
		if err != nil {
			t.Fatal(err)
		}
		wantFound, wantIDs, wantScore := naiveExactRef(ex, spec)
		for _, parallel := range []bool{false, true} {
			res, err := ex.Exact(context.Background(), spec, core.ExactOptions{Parallel: parallel})
			if err != nil {
				t.Fatalf("problem %d parallel=%v: %v", id, parallel, err)
			}
			if res.Found != wantFound {
				t.Fatalf("problem %d parallel=%v: found %v, naive %v",
					id, parallel, res.Found, wantFound)
			}
			if !wantFound {
				continue
			}
			gotIDs := make([]int, len(res.Groups))
			for i, g := range res.Groups {
				gotIDs[i] = g.ID
			}
			if len(gotIDs) != len(wantIDs) {
				t.Fatalf("problem %d parallel=%v: set size %d, naive %d",
					id, parallel, len(gotIDs), len(wantIDs))
			}
			for i := range gotIDs {
				if gotIDs[i] != wantIDs[i] {
					t.Fatalf("problem %d parallel=%v: argmax %v, naive %v",
						id, parallel, gotIDs, wantIDs)
				}
			}
			if res.Objective != wantScore {
				t.Fatalf("problem %d parallel=%v: objective %v, naive %v",
					id, parallel, res.Objective, wantScore)
			}
			wantSet := make([]*groups.Group, len(wantIDs))
			for i, gid := range wantIDs {
				wantSet[i] = ex.Groups[gid]
			}
			if want := groups.Support(wantSet); res.Support != want {
				t.Fatalf("problem %d parallel=%v: support %d, naive %d",
					id, parallel, res.Support, want)
			}
		}
	}
}
