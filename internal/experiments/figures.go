package experiments

import (
	"context"

	"fmt"
	"sort"
	"strings"
	"time"

	"tagdm/internal/core"
	"tagdm/internal/groups"
	"tagdm/internal/signature"
	"tagdm/internal/store"
)

// Row is one measurement of one algorithm on one problem instance.
type Row struct {
	Problem   string
	Algorithm string
	Elapsed   time.Duration
	// Quality is the average pairwise tag-signature score of the returned
	// set under the problem's objective (cosine for similarity problems,
	// cosine distance for diversity problems), the paper's quality metric.
	Quality float64
	Found   bool
	Groups  []string
}

// Table is a titled list of rows with a rendering helper.
type Table struct {
	Title string
	Rows  []Row
}

// Render formats the table with aligned columns.
func (t Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	fmt.Fprintf(&b, "%-12s %-12s %12s %10s %s\n", "problem", "algorithm", "time", "quality", "found")
	for _, r := range t.Rows {
		q := "-"
		if r.Found {
			q = fmt.Sprintf("%.4f", r.Quality)
		}
		fmt.Fprintf(&b, "%-12s %-12s %12s %10s %v\n",
			r.Problem, r.Algorithm, r.Elapsed.Round(time.Microsecond), q, r.Found)
	}
	return b.String()
}

// Params carries the shared problem parameters of Section 6.1: k=3 groups,
// support p=1% of tuples, thresholds q=r=0.5, LSH with l=1 tables and
// initial d'=10.
type Params struct {
	K          int
	SupportPct float64
	Q, R       float64
	DPrime, L  int
}

// PaperParams are the values used throughout the paper's experiments.
func PaperParams() Params {
	return Params{K: 3, SupportPct: 0.01, Q: 0.5, R: 0.5, DPrime: 10, L: 1}
}

func (p Params) support(st *Setup) int {
	return int(p.SupportPct * float64(st.Store.Len()))
}

// run executes one algorithm and converts the result to a Row.
func run(e *core.Engine, spec core.ProblemSpec, algo string, f func() (core.Result, error)) Row {
	res, err := f()
	row := Row{Problem: spec.Name, Algorithm: algo}
	if err != nil {
		row.Found = false
		return row
	}
	row.Elapsed = res.Elapsed
	row.Found = res.Found
	row.Quality = res.Objective
	if res.Found {
		row.Groups = res.Describe(e.Store)
	}
	return row
}

// SimilarityProblems runs Problems 1–3 with Exact, SM-LSH-Fi and SM-LSH-Fo,
// producing the data behind Figures 3 (time) and 4 (quality).
func SimilarityProblems(st *Setup, p Params) (Table, error) {
	exactEng, err := st.ExactEngine()
	if err != nil {
		return Table{}, err
	}
	t := Table{Title: "Figures 3-4: Problems 1-3 (tag similarity)"}
	for id := 1; id <= 3; id++ {
		spec, err := core.PaperProblem(id, p.K, p.support(st), p.Q, p.R)
		if err != nil {
			return Table{}, err
		}
		t.Rows = append(t.Rows,
			run(exactEng, spec, "Exact", func() (core.Result, error) {
				return exactEng.Exact(context.Background(), spec, core.ExactOptions{})
			}),
			run(st.Engine, spec, "SM-LSH-Fi", func() (core.Result, error) {
				return st.Engine.SMLSH(context.Background(), spec, core.LSHOptions{DPrime: p.DPrime, L: p.L, Seed: st.Config.Seed, Mode: core.Filter})
			}),
			run(st.Engine, spec, "SM-LSH-Fo", func() (core.Result, error) {
				return st.Engine.SMLSH(context.Background(), spec, core.LSHOptions{DPrime: p.DPrime, L: p.L, Seed: st.Config.Seed, Mode: core.Fold})
			}),
		)
	}
	return t, nil
}

// DiversityProblems runs Problems 4–6 with Exact, DV-FDP-Fi and DV-FDP-Fo,
// producing the data behind Figures 5 (time) and 6 (quality).
func DiversityProblems(st *Setup, p Params) (Table, error) {
	exactEng, err := st.ExactEngine()
	if err != nil {
		return Table{}, err
	}
	t := Table{Title: "Figures 5-6: Problems 4-6 (tag diversity)"}
	for id := 4; id <= 6; id++ {
		spec, err := core.PaperProblem(id, p.K, p.support(st), p.Q, p.R)
		if err != nil {
			return Table{}, err
		}
		t.Rows = append(t.Rows,
			run(exactEng, spec, "Exact", func() (core.Result, error) {
				return exactEng.Exact(context.Background(), spec, core.ExactOptions{})
			}),
			run(st.Engine, spec, "DV-FDP-Fi", func() (core.Result, error) {
				return st.Engine.DVFDP(context.Background(), spec, core.FDPOptions{Mode: core.Filter})
			}),
			run(st.Engine, spec, "DV-FDP-Fo", func() (core.Result, error) {
				return st.Engine.DVFDP(context.Background(), spec, core.FDPOptions{Mode: core.Fold})
			}),
		)
	}
	return t, nil
}

// BinRow is one measurement of the tuple-count sweep.
type BinRow struct {
	Tuples    int
	NumGroups int
	Problem   string
	Algorithm string
	Elapsed   time.Duration
	Quality   float64
	Found     bool
}

// BinTable is the Figures 7–8 sweep output.
type BinTable struct {
	Title string
	Rows  []BinRow
}

// Render formats the sweep.
func (t BinTable) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	fmt.Fprintf(&b, "%8s %8s %-12s %-12s %12s %10s\n", "tuples", "groups", "problem", "algorithm", "time", "quality")
	for _, r := range t.Rows {
		q := "-"
		if r.Found {
			q = fmt.Sprintf("%.4f", r.Quality)
		}
		fmt.Fprintf(&b, "%8d %8d %-12s %-12s %12s %10s\n",
			r.Tuples, r.NumGroups, r.Problem, r.Algorithm,
			r.Elapsed.Round(time.Microsecond), q)
	}
	return b.String()
}

// TupleSweep reproduces Figures 7–8: bins of increasing tuple counts,
// comparing Exact with SM-LSH-Fo on Problem 1 and Exact with DV-FDP-Fo on
// Problem 6 per bin. Bin fractions follow the paper's 5K/10K/20K/30K of
// 33K, i.e. roughly 15%, 30%, 60% and 90% of the corpus.
func TupleSweep(st *Setup, p Params, fractions []float64) (BinTable, error) {
	if len(fractions) == 0 {
		fractions = []float64{0.15, 0.30, 0.60, 0.90}
	}
	out := BinTable{Title: "Figures 7-8: varying tagging tuples"}
	for _, f := range fractions {
		n := int(f * float64(st.Store.Len()))
		bin, err := st.BinSetup(n)
		if err != nil {
			return BinTable{}, err
		}
		exactEng, err := bin.ExactEngine()
		if err != nil {
			return BinTable{}, err
		}
		for _, pc := range []struct {
			id   int
			algo string
		}{{1, "SM-LSH-Fo"}, {6, "DV-FDP-Fo"}} {
			spec, err := core.PaperProblem(pc.id, p.K, int(p.SupportPct*float64(n)), p.Q, p.R)
			if err != nil {
				return BinTable{}, err
			}
			ex := run(exactEng, spec, "Exact", func() (core.Result, error) {
				return exactEng.Exact(context.Background(), spec, core.ExactOptions{})
			})
			var ap Row
			if pc.id == 1 {
				ap = run(bin.Engine, spec, pc.algo, func() (core.Result, error) {
					return bin.Engine.SMLSH(context.Background(), spec, core.LSHOptions{DPrime: p.DPrime, L: p.L, Seed: bin.Config.Seed, Mode: core.Fold})
				})
			} else {
				ap = run(bin.Engine, spec, pc.algo, func() (core.Result, error) {
					return bin.Engine.DVFDP(context.Background(), spec, core.FDPOptions{Mode: core.Fold})
				})
			}
			for _, r := range []Row{ex, ap} {
				out.Rows = append(out.Rows, BinRow{
					Tuples:    n,
					NumGroups: len(bin.Groups),
					Problem:   spec.Name,
					Algorithm: r.Algorithm,
					Elapsed:   r.Elapsed,
					Quality:   r.Quality,
					Found:     r.Found,
				})
			}
		}
	}
	return out, nil
}

// TagClouds reproduces Figures 1–2: the frequency tag cloud of one
// director's movies over all users versus users from one state. It picks
// the director with the most tagging actions and the state most active on
// that director's movies, so the comparison is always well-populated.
func TagClouds(st *Setup, topN int) (allCloud, stateCloud string, director, state string, err error) {
	s := st.Store
	dirCol := store.Column{Side: store.SideItem, Index: s.ItemSchema.AttrIndex("director")}
	stateCol := store.Column{Side: store.SideUser, Index: s.UserSchema.AttrIndex("state")}
	// Most-tagged director.
	dirCounts := map[string]int{}
	for t := 0; t < s.Len(); t++ {
		dirCounts[s.ColumnAttr(dirCol).Value(s.Value(t, dirCol))]++
	}
	director = argmax(dirCounts)
	pred, err := s.ParsePredicate(map[string]string{"director": director})
	if err != nil {
		return "", "", "", "", err
	}
	dirTuples := s.Eval(pred)
	// Most active state on those tuples.
	stCounts := map[string]int{}
	dirTuples.ForEach(func(t int) bool {
		stCounts[s.ColumnAttr(stateCol).Value(s.Value(t, stateCol))]++
		return true
	})
	state = argmax(stCounts)
	statePred, err := s.ParsePredicate(map[string]string{"director": director, "state": state})
	if err != nil {
		return "", "", "", "", err
	}
	gAll := &groups.Group{Pred: pred, Tuples: dirTuples, Members: dirTuples.Slice()}
	stTuples := s.Eval(statePred)
	gState := &groups.Group{Pred: statePred, Tuples: stTuples, Members: stTuples.Slice()}
	allCloud = signature.RenderCloud(signature.Cloud(s, gAll, topN))
	stateCloud = signature.RenderCloud(signature.Cloud(s, gState, topN))
	return allCloud, stateCloud, director, state, nil
}

func argmax(m map[string]int) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys) // deterministic ties
	best, bestN := "", -1
	for _, k := range keys {
		if m[k] > bestN {
			best, bestN = k, m[k]
		}
	}
	return best
}

// CaseStudy runs one Section 6.2.1-style query: it restricts the corpus to
// the tuples matching conds, mines the given problem instance there, and
// returns the resulting group descriptions with their tag clouds.
func CaseStudy(st *Setup, conds map[string]string, problemID int, p Params) ([]string, error) {
	pred, err := st.Store.ParsePredicate(conds)
	if err != nil {
		return nil, err
	}
	within := st.Store.Eval(pred)
	if within.Count() == 0 {
		return nil, fmt.Errorf("experiments: query %v matches no tuples", conds)
	}
	sub, err := buildOn(st.Config, st.World, st.Store, within)
	if err != nil {
		return nil, err
	}
	spec, err := core.PaperProblem(problemID, p.K, int(p.SupportPct*float64(within.Count())), p.Q, p.R)
	if err != nil {
		return nil, err
	}
	res, err := sub.Engine.Solve(context.Background(), spec, core.SolveOptions{
		LSH: core.LSHOptions{DPrime: p.DPrime, L: p.L, Seed: st.Config.Seed, Mode: core.Fold},
		FDP: core.FDPOptions{Mode: core.Fold},
	})
	if err != nil {
		return nil, err
	}
	if !res.Found {
		return nil, nil
	}
	var out []string
	for _, g := range res.Groups {
		cloud := signature.RenderCloud(signature.Cloud(sub.Store, g, 5))
		out = append(out, fmt.Sprintf("%s -> %s", g.Describe(sub.Store), cloud))
	}
	return out, nil
}
