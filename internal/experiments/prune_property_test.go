package experiments

import (
	"context"

	"fmt"
	"math"
	"math/rand"
	"testing"

	"tagdm/internal/core"
	"tagdm/internal/groups"
	"tagdm/internal/mining"
	"tagdm/internal/model"
	"tagdm/internal/signature"
	"tagdm/internal/store"
)

// This file is the randomized property harness pinning the Exact
// branch-and-bound: on seeded random corpora spanning universe sizes,
// densities, group counts, k ranges and bitmap layouts, pruning on must be
// byte-identical to pruning off (the retained naive-enumeration oracle),
// the examined/pruned split must partition the full enumeration, and the
// approximate solvers (DV-FDP, SM-LSH) must be untouched by layout choice.

// propCorpus is one randomized world: a store whose tuple universe the
// group bitmaps range over, plus per-(dimension, measure) symmetric pair
// tables quantized to multiples of 1/64 — dyadic values keep every pair-sum
// exact in float64, so "byte-identical" is a hard assertion, not a
// tolerance.
type propCorpus struct {
	universe int
	density  float64
	nGroups  int
	seed     int64

	store  *store.Store
	tuples []*store.Bitmap // group tuple sets, canonical (dense) form
	tables map[mining.Dimension]map[mining.Measure][][]float64
}

func newPropCorpus(t *testing.T, universe, nGroups int, density float64, seed int64) *propCorpus {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	d := model.NewDataset(model.NewSchema("u"), model.NewSchema("g"))
	user, err := d.AddUser(map[string]string{"u": "x"})
	if err != nil {
		t.Fatal(err)
	}
	item, err := d.AddItem(map[string]string{"g": "y"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < universe; i++ {
		if err := d.AddAction(user, item, 0, "t"); err != nil {
			t.Fatal(err)
		}
	}
	s, err := store.New(d)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != universe {
		t.Fatalf("store expanded %d actions to %d tuples", universe, s.Len())
	}
	c := &propCorpus{universe: universe, density: density, nGroups: nGroups, seed: seed, store: s}
	for g := 0; g < nGroups; g++ {
		bm := store.NewBitmap(universe)
		for id := 0; id < universe; id++ {
			if rng.Float64() < density {
				bm.Set(id)
			}
		}
		if bm.Count() == 0 {
			bm.Set(rng.Intn(universe))
		}
		c.tuples = append(c.tuples, bm)
	}
	c.tables = make(map[mining.Dimension]map[mining.Measure][][]float64)
	for _, dim := range []mining.Dimension{mining.Users, mining.Items, mining.Tags} {
		c.tables[dim] = make(map[mining.Measure][][]float64)
		for _, meas := range []mining.Measure{mining.Similarity, mining.Diversity} {
			tab := make([][]float64, nGroups)
			for i := range tab {
				tab[i] = make([]float64, nGroups)
			}
			for i := 0; i < nGroups; i++ {
				for j := i + 1; j < nGroups; j++ {
					v := float64(rng.Intn(65)) / 64
					tab[i][j], tab[j][i] = v, v
				}
			}
			c.tables[dim][meas] = tab
		}
	}
	return c
}

// engine materializes the corpus under one bitmap layout: every group
// tuple set dense, every one container-compressed, or a seeded per-group
// mix. All layouts share the same pair tables, so any divergence between
// them is a kernel bug, not a modeling artifact.
func (c *propCorpus) engine(t *testing.T, layout string) *core.Engine {
	t.Helper()
	rng := rand.New(rand.NewSource(c.seed + 101))
	gs := make([]*groups.Group, c.nGroups)
	for i, bm := range c.tuples {
		tu := bm.Clone()
		switch layout {
		case "dense":
		case "compressed":
			tu.ToCompressed()
		case "mixed":
			if rng.Intn(2) == 0 {
				tu.ToCompressed()
			}
		default:
			t.Fatalf("unknown layout %q", layout)
		}
		gs[i] = &groups.Group{ID: i, Tuples: tu, Members: tu.Slice()}
	}
	sigs := signature.SummarizeAll(signature.FrequencyOfSize(c.store.Vocab.Size()), c.store, gs)
	e, err := core.NewEngine(c.store, gs, sigs)
	if err != nil {
		t.Fatal(err)
	}
	for dim, byMeas := range c.tables {
		for meas, tab := range byMeas {
			tab := tab
			e.SetPairFunc(dim, meas, func(g1, g2 *groups.Group) float64 {
				return tab[g1.ID][g2.ID]
			})
		}
	}
	return e
}

// propSpecs derives a deterministic batch of problem specs for a corpus:
// varying k ranges, support floors (including none), constraint counts and
// thresholds, plus one similarity-only spec so the SM-LSH family is always
// exercised by the Solve sweep.
func (c *propCorpus) propSpecs(rng *rand.Rand) []core.ProblemSpec {
	dims := []mining.Dimension{mining.Users, mining.Items, mining.Tags}
	meases := []mining.Measure{mining.Similarity, mining.Diversity}
	var specs []core.ProblemSpec
	for si := 0; si < 6; si++ {
		spec := core.ProblemSpec{
			KLo:  1 + rng.Intn(2),
			Name: fmt.Sprintf("prop-%d", si),
		}
		// Reach KHi-KLo up to 3: deep completions exercise the bound's
		// future-future pair term (r >= 2), not just the cross-pair rows.
		spec.KHi = spec.KLo + 1 + rng.Intn(3)
		switch rng.Intn(3) {
		case 0: // no support floor
		case 1:
			spec.MinSupport = 1 + rng.Intn(c.universe/4+1)
		case 2: // a floor high enough to reject some sets
			spec.MinSupport = int(float64(c.universe) * c.density)
		}
		for ci := 0; ci < rng.Intn(3); ci++ {
			spec.Constraints = append(spec.Constraints, core.Constraint{
				Dim:       dims[rng.Intn(3)],
				Meas:      meases[rng.Intn(2)],
				Threshold: float64(rng.Intn(33)) / 32,
			})
		}
		for oi := 0; oi < 1+rng.Intn(2); oi++ {
			spec.Objectives = append(spec.Objectives, core.Objective{
				Dim:    dims[rng.Intn(3)],
				Meas:   meases[rng.Intn(2)],
				Weight: 1,
			})
		}
		specs = append(specs, spec)
	}
	specs = append(specs, core.ProblemSpec{
		KLo: 1, KHi: 3,
		MinSupport: 1,
		Objectives: []core.Objective{{Dim: mining.Tags, Meas: mining.Similarity, Weight: 1}},
		Name:       "prop-sim-only",
	})
	return specs
}

func resultIDs(r core.Result) []int {
	ids := make([]int, len(r.Groups))
	for i, g := range r.Groups {
		ids[i] = g.ID
	}
	return ids
}

// assertByteIdentical compares two results field by field with bit-level
// float comparison (NaN-safe via Float64bits).
func assertByteIdentical(t *testing.T, label string, want, got core.Result) {
	t.Helper()
	if got.Found != want.Found {
		t.Fatalf("%s: found %v vs %v", label, got.Found, want.Found)
	}
	if !want.Found {
		return
	}
	w, g := resultIDs(want), resultIDs(got)
	if len(w) != len(g) {
		t.Fatalf("%s: set size %d vs %d", label, len(g), len(w))
	}
	for i := range w {
		if w[i] != g[i] {
			t.Fatalf("%s: argmax %v vs %v", label, g, w)
		}
	}
	if math.Float64bits(got.Objective) != math.Float64bits(want.Objective) {
		t.Fatalf("%s: objective %v vs %v", label, got.Objective, want.Objective)
	}
	if got.Support != want.Support {
		t.Fatalf("%s: support %d vs %d", label, got.Support, want.Support)
	}
}

// propCorpora is the shared corpus grid: universe size and density sweep
// from tiny dense worlds through the container-compressed regime (the 70k
// universe crosses the 2^16 chunk boundary), with distinct seeds per cell.
func propCorpora(t *testing.T) []*propCorpus {
	t.Helper()
	var cs []*propCorpus
	for ci, cell := range []struct {
		universe int
		nGroups  int
		density  float64
	}{
		{64, 8, 0.25},
		{1024, 12, 0.05},
		{1024, 10, 0.4},
		{70000, 12, 0.002},
	} {
		cs = append(cs, newPropCorpus(t, cell.universe, cell.nGroups, cell.density, int64(1000+ci)))
	}
	return cs
}

// TestExactPruningPropertyRandomCorpora is the harness's core property:
// for every random corpus, layout, spec, and serial/parallel mode, Exact
// with pruning must be byte-identical to the pruning-disabled oracle, and
// examined + pruned must exactly account for the oracle's enumeration.
func TestExactPruningPropertyRandomCorpora(t *testing.T) {
	var totalPruned int64
	for _, c := range propCorpora(t) {
		rng := rand.New(rand.NewSource(c.seed + 7))
		specs := c.propSpecs(rng)
		for _, layout := range []string{"dense", "compressed", "mixed"} {
			e := c.engine(t, layout)
			for _, spec := range specs {
				for _, parallel := range []bool{false, true} {
					label := fmt.Sprintf("u=%d d=%g %s %s parallel=%v",
						c.universe, c.density, layout, spec.Name, parallel)
					oracle, err := e.Exact(context.Background(), spec, core.ExactOptions{Parallel: parallel, DisablePruning: true})
					if err != nil {
						t.Fatalf("%s: %v", label, err)
					}
					if oracle.CandidatesPruned != 0 {
						t.Fatalf("%s: oracle pruned %d", label, oracle.CandidatesPruned)
					}
					pruned, err := e.Exact(context.Background(), spec, core.ExactOptions{Parallel: parallel})
					if err != nil {
						t.Fatalf("%s: %v", label, err)
					}
					assertByteIdentical(t, label, oracle, pruned)
					if got := pruned.CandidatesExamined + pruned.CandidatesPruned; got != oracle.CandidatesExamined {
						t.Fatalf("%s: examined %d + pruned %d = %d, enumeration %d",
							label, pruned.CandidatesExamined, pruned.CandidatesPruned,
							got, oracle.CandidatesExamined)
					}
					totalPruned += pruned.CandidatesPruned
				}
			}
		}
	}
	if totalPruned == 0 {
		t.Fatal("bound never fired across the whole corpus grid; the property holds vacuously")
	}
}

// TestSolverLayoutEquivalenceRandomCorpora pins the other half of the
// harness: Exact (pruning on), DV-FDP and SM-LSH produce byte-identical
// outputs on every corpus whichever bitmap layout backs the group tuple
// sets — compressed and mixed layouts must be pure representation changes.
func TestSolverLayoutEquivalenceRandomCorpora(t *testing.T) {
	for _, c := range propCorpora(t) {
		rng := rand.New(rand.NewSource(c.seed + 7))
		specs := c.propSpecs(rng)
		dense := c.engine(t, "dense")
		for _, layout := range []string{"compressed", "mixed"} {
			other := c.engine(t, layout)
			for _, spec := range specs {
				label := fmt.Sprintf("u=%d d=%g %s vs dense %s", c.universe, c.density, layout, spec.Name)
				want, err := dense.Exact(context.Background(), spec, core.ExactOptions{})
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				got, err := other.Exact(context.Background(), spec, core.ExactOptions{})
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				assertByteIdentical(t, label+"/Exact", want, got)
				if want.CandidatesExamined != got.CandidatesExamined ||
					want.CandidatesPruned != got.CandidatesPruned {
					t.Fatalf("%s: examined/pruned %d/%d vs %d/%d — layout changed pruning decisions",
						label, got.CandidatesExamined, got.CandidatesPruned,
						want.CandidatesExamined, want.CandidatesPruned)
				}

				opts := core.SolveOptions{
					LSH: core.LSHOptions{DPrime: 6, L: 2, Seed: 9, Mode: core.Fold},
					FDP: core.FDPOptions{Mode: core.Fold},
				}
				wantA, err := dense.Solve(context.Background(), spec, opts)
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				gotA, err := other.Solve(context.Background(), spec, opts)
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				if wantA.Algorithm != gotA.Algorithm {
					t.Fatalf("%s: dispatched to %s vs %s", label, gotA.Algorithm, wantA.Algorithm)
				}
				assertByteIdentical(t, label+"/"+wantA.Algorithm, wantA, gotA)
			}
		}
	}
}
