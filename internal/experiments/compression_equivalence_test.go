package experiments

import (
	"context"

	"reflect"
	"testing"

	"tagdm/internal/core"
	"tagdm/internal/groups"
)

// compressedTwin rebuilds the setup's engine over a deep-copied store and
// group universe with the container-compressed bitmap layout forced on
// every posting list and tuple set. Signatures, LDA state and group IDs
// are shared — only the bitmap representation differs, which is exactly
// what the equivalence assertions isolate.
func compressedTwin(t *testing.T, st *Setup) *Setup {
	t.Helper()
	stC := st.Store.Clone()
	stC.ForceCompression(true)
	gsC := make([]*groups.Group, len(st.Groups))
	for i, g := range st.Groups {
		gsC[i] = &groups.Group{
			ID:      g.ID,
			Pred:    g.Pred,
			Tuples:  g.Tuples.Clone().ToCompressed(),
			Members: append([]int(nil), g.Members...),
		}
	}
	engC, err := core.NewEngine(stC, gsC, st.Sigs)
	if err != nil {
		t.Fatal(err)
	}
	return &Setup{
		Config: st.Config,
		World:  st.World,
		Store:  stC,
		Groups: gsC,
		Sigs:   st.Sigs,
		LDA:    st.LDA,
		Engine: engC,
	}
}

// assertSameResult demands byte-identical solver outcomes: feasibility,
// argmax group IDs and descriptions, bit-for-bit objective, support, and
// the examined-candidate count. The outcome fields are shared with the
// pruning property harness via assertByteIdentical; this wrapper adds the
// checks that need Setups (descriptions) or only hold between runs of the
// same pruning mode (examined counts).
func assertSameResult(t *testing.T, label string, st, stC *Setup, want, got core.Result) {
	t.Helper()
	assertByteIdentical(t, label, want, got)
	if got.CandidatesExamined != want.CandidatesExamined {
		t.Fatalf("%s: examined %d with compression, %d without",
			label, got.CandidatesExamined, want.CandidatesExamined)
	}
	if !want.Found {
		return
	}
	if !reflect.DeepEqual(got.Describe(stC.Store), want.Describe(st.Store)) {
		t.Fatalf("%s: descriptions diverge: %v vs %v",
			label, got.Describe(stC.Store), want.Describe(st.Store))
	}
}

// TestSolverEquivalenceCompressionForced is the corpus-level acceptance
// test for the compressed layout: on the experiments corpus, Exact (serial
// and parallel), DV-FDP and SM-LSH must produce byte-identical outputs
// with compression forced on versus the dense baseline, across all six
// paper problems.
func TestSolverEquivalenceCompressionForced(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus pipeline is slow under -short")
	}
	st := setup(t)
	stC := compressedTwin(t, st)
	p := PaperParams()

	ex, err := st.ExactEngine()
	if err != nil {
		t.Fatal(err)
	}
	exC, err := stC.ExactEngine()
	if err != nil {
		t.Fatal(err)
	}

	for id := 1; id <= 6; id++ {
		spec, err := core.PaperProblem(id, p.K, p.support(st), p.Q, p.R)
		if err != nil {
			t.Fatal(err)
		}

		for _, parallel := range []bool{false, true} {
			want, err := ex.Exact(context.Background(), spec, core.ExactOptions{Parallel: parallel})
			if err != nil {
				t.Fatal(err)
			}
			got, err := exC.Exact(context.Background(), spec, core.ExactOptions{Parallel: parallel})
			if err != nil {
				t.Fatal(err)
			}
			assertSameResult(t, spec.Name+"/Exact", st, stC, want, got)
		}

		// Solve dispatches problems 1-3 to SM-LSH and 4-6 to DV-FDP, so
		// the sweep exercises both approximate families.
		opts := core.SolveOptions{
			LSH: core.LSHOptions{DPrime: p.DPrime, L: p.L, Seed: 1, Mode: core.Fold},
			FDP: core.FDPOptions{Mode: core.Fold},
		}
		want, err := st.Engine.Solve(context.Background(), spec, opts)
		if err != nil {
			t.Fatal(err)
		}
		got, err := stC.Engine.Solve(context.Background(), spec, opts)
		if err != nil {
			t.Fatal(err)
		}
		assertSameResult(t, spec.Name+"/"+want.Algorithm, st, stC, want, got)
	}
}
