package experiments

import (
	"context"

	"fmt"
	"strings"
	"time"

	"tagdm/internal/core"
)

// BnBRow is one branch-and-bound measurement: an Exact run on a paper
// problem with pruning on or off, serial or parallel, with the
// examined/pruned candidate split.
type BnBRow struct {
	Problem  string
	Variant  string // "pruning=off" or "pruning=on"
	Parallel bool
	Elapsed  time.Duration
	Examined int64
	Pruned   int64
	Found    bool
}

// BnBTable collects the branch-and-bound sweep.
type BnBTable struct {
	Rows []BnBRow
}

// Render formats the sweep.
func (t BnBTable) Render() string {
	var b strings.Builder
	b.WriteString("== Branch-and-bound pruning: Exact with and without subtree cuts ==\n")
	fmt.Fprintf(&b, "%-12s %-12s %-10s %12s %12s %12s\n",
		"problem", "variant", "mode", "time", "examined", "pruned")
	for _, r := range t.Rows {
		mode := "serial"
		if r.Parallel {
			mode = "parallel"
		}
		fmt.Fprintf(&b, "%-12s %-12s %-10s %12s %12d %12d\n",
			r.Problem, r.Variant, mode, r.Elapsed.Round(time.Microsecond), r.Examined, r.Pruned)
	}
	return b.String()
}

// BnBSweep runs every paper problem on the Exact engine with pruning
// disabled (the full-enumeration oracle) and enabled (the default), serial
// and parallel, and reports the timing and examined/pruned candidate
// split. It errors if pruning changes any outcome — the sweep doubles as a
// corpus-level self-check on the bound's admissibility — or if the bound
// never fires anywhere (an inert cut would silently decay into pure
// overhead).
func BnBSweep(st *Setup, p Params) (BnBTable, error) {
	exactEng, err := st.ExactEngine()
	if err != nil {
		return BnBTable{}, err
	}
	var t BnBTable
	var anyPruned int64
	for id := 1; id <= 6; id++ {
		spec, err := core.PaperProblem(id, p.K, p.support(st), p.Q, p.R)
		if err != nil {
			return BnBTable{}, err
		}
		exactEng.PrewarmMatrices(spec)
		for _, parallel := range []bool{false, true} {
			oracle, err := exactEng.Exact(context.Background(), spec, core.ExactOptions{Parallel: parallel, DisablePruning: true})
			if err != nil {
				return BnBTable{}, err
			}
			pruned, err := exactEng.Exact(context.Background(), spec, core.ExactOptions{Parallel: parallel})
			if err != nil {
				return BnBTable{}, err
			}
			if pruned.Found != oracle.Found || pruned.Objective != oracle.Objective ||
				pruned.Support != oracle.Support {
				return BnBTable{}, fmt.Errorf(
					"experiments: pruning changed %s (parallel=%v): found %v/%v objective %v/%v",
					spec.Name, parallel, pruned.Found, oracle.Found, pruned.Objective, oracle.Objective)
			}
			if got := pruned.CandidatesExamined + pruned.CandidatesPruned; got != oracle.CandidatesExamined {
				return BnBTable{}, fmt.Errorf(
					"experiments: %s (parallel=%v) examined+pruned = %d, enumeration size %d",
					spec.Name, parallel, got, oracle.CandidatesExamined)
			}
			anyPruned += pruned.CandidatesPruned
			t.Rows = append(t.Rows,
				BnBRow{Problem: spec.Name, Variant: "pruning=off", Parallel: parallel,
					Elapsed: oracle.Elapsed, Examined: oracle.CandidatesExamined, Found: oracle.Found},
				BnBRow{Problem: spec.Name, Variant: "pruning=on", Parallel: parallel,
					Elapsed: pruned.Elapsed, Examined: pruned.CandidatesExamined,
					Pruned: pruned.CandidatesPruned, Found: pruned.Found})
		}
	}
	if anyPruned == 0 {
		return BnBTable{}, fmt.Errorf("experiments: branch-and-bound never pruned a candidate on any paper problem")
	}
	return t, nil
}
