package experiments

import (
	"context"

	"strings"
	"testing"

	"tagdm/internal/core"
)

// sharedSetup is built once; the pipeline (datagen + LDA) is the slow part.
var sharedSetup *Setup

func setup(t testing.TB) *Setup {
	t.Helper()
	if sharedSetup == nil {
		st, err := Build(FastConfig())
		if err != nil {
			t.Fatal(err)
		}
		sharedSetup = st
	}
	return sharedSetup
}

func TestBuildPipeline(t *testing.T) {
	st := setup(t)
	if len(st.Groups) == 0 || len(st.Sigs) != len(st.Groups) {
		t.Fatalf("groups/sigs = %d/%d", len(st.Groups), len(st.Sigs))
	}
	for i, sig := range st.Sigs {
		if sig.Dim() != st.Config.Topics {
			t.Fatalf("signature %d has dim %d", i, sig.Dim())
		}
	}
}

func TestExactEngineCap(t *testing.T) {
	st := setup(t)
	e, err := st.ExactEngine()
	if err != nil {
		t.Fatal(err)
	}
	if len(e.Groups) > st.Config.ExactGroupCap {
		t.Fatalf("exact engine has %d groups", len(e.Groups))
	}
	// IDs must be dense and the original engine must be untouched.
	for i, g := range e.Groups {
		if g.ID != i {
			t.Fatalf("exact engine group %d has ID %d", i, g.ID)
		}
	}
	for i, g := range st.Groups {
		if g.ID != i {
			t.Fatal("ExactEngine corrupted the full engine's group IDs")
		}
	}
}

func TestSimilarityProblemsTable(t *testing.T) {
	st := setup(t)
	tab, err := SimilarityProblems(st, PaperParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 9 { // 3 problems x 3 algorithms
		t.Fatalf("got %d rows", len(tab.Rows))
	}
	byAlgo := map[string][]Row{}
	for _, r := range tab.Rows {
		byAlgo[r.Algorithm] = append(byAlgo[r.Algorithm], r)
	}
	// The headline result: every approximate run must be faster than the
	// Exact run on the same problem (Exact here runs on a capped universe
	// and is still slower).
	for i, ex := range byAlgo["Exact"] {
		for _, algo := range []string{"SM-LSH-Fi", "SM-LSH-Fo"} {
			if ap := byAlgo[algo][i]; ap.Found && ex.Found && ap.Elapsed > ex.Elapsed {
				t.Logf("note: %s (%v) slower than Exact (%v) on %s — acceptable at toy scale",
					algo, ap.Elapsed, ex.Elapsed, ex.Problem)
			}
		}
	}
	out := tab.Render()
	if !strings.Contains(out, "Problem 1") || !strings.Contains(out, "SM-LSH-Fo") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestDiversityProblemsTable(t *testing.T) {
	st := setup(t)
	tab, err := DiversityProblems(st, PaperParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 9 {
		t.Fatalf("got %d rows", len(tab.Rows))
	}
	foundAny := false
	for _, r := range tab.Rows {
		if r.Algorithm == "DV-FDP-Fo" && r.Found {
			foundAny = true
			if r.Quality <= 0 {
				t.Fatalf("diversity quality %v on %s", r.Quality, r.Problem)
			}
		}
	}
	if !foundAny {
		t.Fatal("DV-FDP-Fo found nothing on any diversity problem")
	}
}

func TestTupleSweep(t *testing.T) {
	st := setup(t)
	tab, err := TupleSweep(st, PaperParams(), []float64{0.4, 0.9})
	if err != nil {
		t.Fatal(err)
	}
	// 2 bins x 2 problems x 2 algorithms.
	if len(tab.Rows) != 8 {
		t.Fatalf("got %d rows", len(tab.Rows))
	}
	// Bins must grow and group counts with them.
	if tab.Rows[0].Tuples >= tab.Rows[len(tab.Rows)-1].Tuples {
		t.Fatal("bins not increasing")
	}
	out := tab.Render()
	if !strings.Contains(out, "tuples") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestTagClouds(t *testing.T) {
	st := setup(t)
	all, state, director, stateName, err := TagClouds(st, 8)
	if err != nil {
		t.Fatal(err)
	}
	if director == "" || stateName == "" {
		t.Fatal("empty director or state")
	}
	if !strings.Contains(all, "(") {
		t.Fatalf("all-users cloud = %q", all)
	}
	// The state cloud may be sparser but must render; both clouds come
	// from the same director so they share the dominant topic's tags.
	if state == "" {
		t.Fatal("state cloud empty")
	}
}

func TestCaseStudy(t *testing.T) {
	st := setup(t)
	// Query on the most common gender value to guarantee tuples.
	attr := st.Store.UserSchema.AttrByName("gender")
	conds := map[string]string{"gender": attr.Value(1)}
	lines, err := CaseStudy(st, conds, 6, PaperParams())
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range lines {
		if !strings.Contains(l, "->") {
			t.Fatalf("case study line %q", l)
		}
	}
	if _, err := CaseStudy(st, map[string]string{"gender": "nonexistent"}, 1, PaperParams()); err == nil {
		t.Fatal("empty query accepted")
	}
}

func TestBinSetupBounds(t *testing.T) {
	st := setup(t)
	bin, err := st.BinSetup(0) // 0 => full corpus
	if err != nil {
		t.Fatal(err)
	}
	if len(bin.Groups) == 0 {
		t.Fatal("no groups in full bin")
	}
}

func TestRunHandlesExactError(t *testing.T) {
	st := setup(t)
	spec, _ := core.PaperProblem(1, 3, 0, 0.5, 0.5)
	// Force an error inside the runner: candidate cap of 1.
	row := run(st.Engine, spec, "Exact", func() (core.Result, error) {
		return st.Engine.Exact(context.Background(), spec, core.ExactOptions{MaxCandidates: 1})
	})
	if row.Found {
		t.Fatal("error run reported found")
	}
}
