// Package experiments reproduces the paper's evaluation (Section 6): it
// assembles the full pipeline — synthetic MovieLens-like data, the columnar
// store, describable-group enumeration, LDA tag signatures, the TagDM
// engine — and regenerates every figure: execution time and quality for
// Problems 1–3 (Figures 3–4) and 4–6 (Figures 5–6), the tuple-count sweep
// (Figures 7–8), the tag clouds (Figures 1–2), the user study (Figure 9),
// and the case studies (Section 6.2.1).
package experiments

import (
	"fmt"

	"tagdm/internal/core"
	"tagdm/internal/datagen"
	"tagdm/internal/groups"
	"tagdm/internal/signature"
	"tagdm/internal/store"
)

// Config controls a full experiment setup.
type Config struct {
	// Data configures the synthetic corpus.
	Data datagen.Config
	// Topics is d, the global topic count for LDA signatures (paper: 25).
	Topics int
	// LDAIterations is the Gibbs sweep count for training.
	LDAIterations int
	// MinTuples is the group floor (paper: 5).
	MinTuples int
	// ExactGroupCap bounds the group universe handed to the Exact baseline
	// (brute force over the full enumeration is infeasible; the cap keeps
	// the baseline honest but terminating — see EXPERIMENTS.md).
	ExactGroupCap int
	// Seed drives LDA and LSH.
	Seed int64
}

// DefaultConfig mirrors the paper's scale (33K actions, 25 topics, 5-tuple
// groups).
func DefaultConfig() Config {
	return Config{
		Data:          datagen.Default(),
		Topics:        25,
		LDAIterations: 150,
		MinTuples:     5,
		ExactGroupCap: 250,
		Seed:          1,
	}
}

// FastConfig is a scaled-down setup for tests and quick runs.
func FastConfig() Config {
	return Config{
		Data:          datagen.Small(),
		Topics:        8,
		LDAIterations: 80,
		MinTuples:     5,
		ExactGroupCap: 60,
		Seed:          1,
	}
}

// Setup is a fully-assembled pipeline ready to run problems.
type Setup struct {
	Config Config
	World  *datagen.World
	Store  *store.Store
	Groups []*groups.Group
	Sigs   []signature.Signature
	LDA    *signature.LDA
	Engine *core.Engine
}

// Build assembles the pipeline end to end.
func Build(cfg Config) (*Setup, error) {
	world, err := datagen.Generate(cfg.Data)
	if err != nil {
		return nil, fmt.Errorf("experiments: generating data: %w", err)
	}
	return BuildFrom(cfg, world)
}

// BuildFrom assembles the pipeline over an existing world (used by the bin
// sweep, which re-enumerates subsets of one corpus).
func BuildFrom(cfg Config, world *datagen.World) (*Setup, error) {
	s, err := store.New(world.Dataset)
	if err != nil {
		return nil, fmt.Errorf("experiments: building store: %w", err)
	}
	return buildOn(cfg, world, s, nil)
}

func buildOn(cfg Config, world *datagen.World, s *store.Store, within *store.Bitmap) (*Setup, error) {
	gs := (&groups.Enumerator{Store: s, MinTuples: cfg.MinTuples, Within: within}).FullyDescribed()
	if len(gs) == 0 {
		return nil, fmt.Errorf("experiments: no groups with >= %d tuples", cfg.MinTuples)
	}
	ldaSum, err := signature.TrainLDA(s, gs, cfg.Topics, cfg.LDAIterations, cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	sigs := signature.SummarizeAll(ldaSum, s, gs)
	eng, err := core.NewEngine(s, gs, sigs)
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	return &Setup{
		Config: cfg,
		World:  world,
		Store:  s,
		Groups: gs,
		Sigs:   sigs,
		LDA:    ldaSum,
		Engine: eng,
	}, nil
}

// ExactEngine returns an engine over the ExactGroupCap largest groups,
// re-enumerated with dense IDs, for the brute-force baseline. Groups are
// already sorted by descending size, so the cap keeps the highest-support
// groups — the ones most likely to matter under the support constraint.
func (st *Setup) ExactEngine() (*core.Engine, error) {
	n := st.Config.ExactGroupCap
	if n <= 0 || n > len(st.Groups) {
		n = len(st.Groups)
	}
	sub := make([]*groups.Group, n)
	sigs := make([]signature.Signature, n)
	for i := 0; i < n; i++ {
		g := *st.Groups[i] // shallow copy so re-IDing cannot corrupt the full engine
		g.ID = i
		sub[i] = &g
		sigs[i] = st.Sigs[st.Groups[i].ID]
	}
	return core.NewEngine(st.Store, sub, sigs)
}

// BinSetup re-enumerates groups within the first nTuples expanded tuples of
// the store (simulating the paper's query bins of Section 6.1) and returns
// a setup over that bin.
func (st *Setup) BinSetup(nTuples int) (*Setup, error) {
	if nTuples <= 0 || nTuples > st.Store.Len() {
		nTuples = st.Store.Len()
	}
	within := store.NewBitmap(st.Store.Len())
	for t := 0; t < nTuples; t++ {
		within.Set(t)
	}
	return buildOn(st.Config, st.World, st.Store, within)
}
