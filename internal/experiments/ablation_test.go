package experiments

import (
	"strings"
	"testing"

	"tagdm/internal/datagen"
)

func TestAblations(t *testing.T) {
	st := setup(t)
	tab, err := Ablations(st, PaperParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) < 15 {
		t.Fatalf("only %d ablation rows", len(tab.Rows))
	}
	sweeps := map[string]int{}
	for _, r := range tab.Rows {
		sweeps[r.Sweep]++
	}
	for _, want := range []string{
		"lsh-tables", "lsh-dprime", "lsh-relaxation", "lsh-bucket",
		"fdp-constraints", "fdp-seed", "fdp-matrix", "fdp-localsearch",
		"fdp-criterion",
	} {
		if sweeps[want] < 2 {
			t.Errorf("sweep %q has %d rows, want >= 2", want, sweeps[want])
		}
	}
	out := tab.Render()
	if !strings.Contains(out, "lsh-tables") || !strings.Contains(out, "fdp-seed") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestAblationLocalSearchNeverHurts(t *testing.T) {
	st := setup(t)
	tab, err := Ablations(st, PaperParams())
	if err != nil {
		t.Fatal(err)
	}
	var on, off float64
	var foundOn, foundOff bool
	for _, r := range tab.Rows {
		if r.Sweep != "fdp-localsearch" {
			continue
		}
		if r.Variant == "on" {
			on, foundOn = r.Quality, r.Found
		} else {
			off, foundOff = r.Quality, r.Found
		}
	}
	if foundOn && foundOff && on < off-1e-9 {
		t.Fatalf("local search hurt quality: on=%v off=%v", on, off)
	}
}

func TestTransferExperiment(t *testing.T) {
	rep, err := Transfer(datagen.DefaultTransfer())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Accuracy <= rep.Chance {
		t.Fatalf("transfer accuracy %v not above chance %v", rep.Accuracy, rep.Chance)
	}
	if !strings.Contains(rep.Render(), "transfer accuracy") {
		t.Fatal("render missing accuracy")
	}
}

func TestKSweep(t *testing.T) {
	st := setup(t)
	tab, err := KSweep(st, PaperParams(), []int{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Candidate counts must grow with k, and serial/parallel exact agree
	// on the candidate space by construction.
	if tab.Rows[1].Candidates <= tab.Rows[0].Candidates {
		t.Fatalf("candidates did not grow: %d -> %d",
			tab.Rows[0].Candidates, tab.Rows[1].Candidates)
	}
	if !strings.Contains(tab.Render(), "candidates") {
		t.Fatal("render missing header")
	}
}
