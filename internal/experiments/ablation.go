package experiments

import (
	"context"

	"fmt"
	"strings"
	"time"

	"tagdm/internal/core"
	"tagdm/internal/datagen"
)

// AblationRow is one configuration of one design-choice sweep.
type AblationRow struct {
	Sweep   string // which knob is being varied
	Variant string // the knob's value
	Elapsed time.Duration
	Quality float64
	Found   bool
}

// AblationTable collects all sweeps.
type AblationTable struct {
	Rows []AblationRow
}

// Render formats the ablation results grouped by sweep.
func (t AblationTable) Render() string {
	var b strings.Builder
	b.WriteString("== Ablations: design choices (DESIGN.md section 5) ==\n")
	fmt.Fprintf(&b, "%-22s %-22s %12s %10s\n", "sweep", "variant", "time", "quality")
	for _, r := range t.Rows {
		q := "-"
		if r.Found {
			q = fmt.Sprintf("%.4f", r.Quality)
		}
		fmt.Fprintf(&b, "%-22s %-22s %12s %10s\n",
			r.Sweep, r.Variant, r.Elapsed.Round(time.Microsecond), q)
	}
	return b.String()
}

// Ablations sweeps the design choices DESIGN.md calls out, on Problem 1
// (LSH knobs) and Problem 6 (FDP knobs).
func Ablations(st *Setup, p Params) (AblationTable, error) {
	var t AblationTable
	simSpec, err := core.PaperProblem(1, p.K, p.support(st), p.Q, p.R)
	if err != nil {
		return t, err
	}
	divSpec, err := core.PaperProblem(6, p.K, p.support(st), p.Q, p.R)
	if err != nil {
		return t, err
	}
	addLSH := func(sweep, variant string, opts core.LSHOptions) error {
		res, err := st.Engine.SMLSH(context.Background(), simSpec, opts)
		if err != nil {
			return err
		}
		t.Rows = append(t.Rows, AblationRow{sweep, variant, res.Elapsed, res.Objective, res.Found})
		return nil
	}
	addFDP := func(sweep, variant string, opts core.FDPOptions) error {
		res, err := st.Engine.DVFDP(context.Background(), divSpec, opts)
		if err != nil {
			return err
		}
		t.Rows = append(t.Rows, AblationRow{sweep, variant, res.Elapsed, res.Objective, res.Found})
		return nil
	}
	seed := st.Config.Seed

	// LSH: table count l.
	for _, l := range []int{1, 2, 4} {
		if err := addLSH("lsh-tables", fmt.Sprintf("l=%d", l),
			core.LSHOptions{DPrime: p.DPrime, L: l, Seed: seed, Mode: core.Fold}); err != nil {
			return t, err
		}
	}
	// LSH: initial hyperplanes d'.
	for _, d := range []int{5, 10, 20} {
		if err := addLSH("lsh-dprime", fmt.Sprintf("d'=%d", d),
			core.LSHOptions{DPrime: d, L: p.L, Seed: seed, Mode: core.Fold}); err != nil {
			return t, err
		}
	}
	// LSH: relaxation and strict bucket sizing.
	if err := addLSH("lsh-relaxation", "binary-search",
		core.LSHOptions{DPrime: 30, L: p.L, Seed: seed, Mode: core.Fold}); err != nil {
		return t, err
	}
	if err := addLSH("lsh-relaxation", "single-pass",
		core.LSHOptions{DPrime: 30, L: p.L, Seed: seed, Mode: core.Fold, DisableRelaxation: true}); err != nil {
		return t, err
	}
	if err := addLSH("lsh-bucket", "trim-oversized",
		core.LSHOptions{DPrime: p.DPrime, L: p.L, Seed: seed, Mode: core.Fold}); err != nil {
		return t, err
	}
	if err := addLSH("lsh-bucket", "strict-size",
		core.LSHOptions{DPrime: p.DPrime, L: p.L, Seed: seed, Mode: core.Fold, StrictBucketSize: true}); err != nil {
		return t, err
	}
	// FDP: constraint mode.
	if err := addFDP("fdp-constraints", "fold", core.FDPOptions{Mode: core.Fold}); err != nil {
		return t, err
	}
	if err := addFDP("fdp-constraints", "filter", core.FDPOptions{Mode: core.Filter}); err != nil {
		return t, err
	}
	// FDP: seeding.
	if err := addFDP("fdp-seed", "max-edge", core.FDPOptions{Mode: core.Fold}); err != nil {
		return t, err
	}
	if err := addFDP("fdp-seed", "fixed-pair", core.FDPOptions{Mode: core.Fold, FixedSeed: true}); err != nil {
		return t, err
	}
	// FDP: distance matrix.
	if err := addFDP("fdp-matrix", "lazy", core.FDPOptions{Mode: core.Fold}); err != nil {
		return t, err
	}
	if err := addFDP("fdp-matrix", "precomputed", core.FDPOptions{Mode: core.Fold, Precompute: true}); err != nil {
		return t, err
	}
	// FDP: local search.
	if err := addFDP("fdp-localsearch", "on", core.FDPOptions{Mode: core.Fold}); err != nil {
		return t, err
	}
	if err := addFDP("fdp-localsearch", "off", core.FDPOptions{Mode: core.Fold, DisableLocalSearch: true}); err != nil {
		return t, err
	}
	// FDP: dispersion criterion.
	if err := addFDP("fdp-criterion", "max-avg", core.FDPOptions{Mode: core.Fold}); err != nil {
		return t, err
	}
	if err := addFDP("fdp-criterion", "max-min", core.FDPOptions{Mode: core.Fold, Criterion: core.MaxMin}); err != nil {
		return t, err
	}
	return t, nil
}

// KSweepRow is one measurement of the k scalability sweep.
type KSweepRow struct {
	K          int
	Candidates int64
	Exact      time.Duration
	ExactPar   time.Duration
	Approx     time.Duration
	ApproxAlgo string
}

// KSweepTable demonstrates why the paper fixes k=3: the Exact candidate
// space and runtime explode with k while the approximate algorithms stay
// flat.
type KSweepTable struct {
	Rows []KSweepRow
}

// Render formats the sweep.
func (t KSweepTable) Render() string {
	var b strings.Builder
	b.WriteString("== k sweep: Exact blow-up vs approximate algorithms (Problem 1) ==\n")
	fmt.Fprintf(&b, "%4s %12s %14s %14s %14s\n", "k", "candidates", "exact", "exact-par", "sm-lsh-fo")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%4d %12d %14s %14s %14s\n",
			r.K, r.Candidates,
			r.Exact.Round(time.Microsecond),
			r.ExactPar.Round(time.Microsecond),
			r.Approx.Round(time.Microsecond))
	}
	return b.String()
}

// KSweep runs Problem 1 at increasing k on the Exact engine (serial and
// parallel) and the full engine with SM-LSH-Fo.
func KSweep(st *Setup, p Params, ks []int) (KSweepTable, error) {
	if len(ks) == 0 {
		ks = []int{2, 3, 4}
	}
	exactEng, err := st.ExactEngine()
	if err != nil {
		return KSweepTable{}, err
	}
	var t KSweepTable
	for _, k := range ks {
		spec, err := core.PaperProblem(1, k, p.support(st), p.Q, p.R)
		if err != nil {
			return KSweepTable{}, err
		}
		serial, err := exactEng.Exact(context.Background(), spec, core.ExactOptions{})
		if err != nil {
			return KSweepTable{}, err
		}
		par, err := exactEng.Exact(context.Background(), spec, core.ExactOptions{Parallel: true})
		if err != nil {
			return KSweepTable{}, err
		}
		app, err := st.Engine.SMLSH(context.Background(), spec, core.LSHOptions{
			DPrime: p.DPrime, L: p.L, Seed: st.Config.Seed, Mode: core.Fold})
		if err != nil {
			return KSweepTable{}, err
		}
		t.Rows = append(t.Rows, KSweepRow{
			K: k,
			// Examined + pruned: the enumeration size the sweep plots, which
			// branch-and-bound splits but does not shrink.
			Candidates: serial.CandidatesExamined + serial.CandidatesPruned,
			Exact:      serial.Elapsed,
			ExactPar:   par.Elapsed,
			Approx:     app.Elapsed,
			ApproxAlgo: app.Algorithm,
		})
	}
	return t, nil
}

// TransferReport summarizes the synthetic attribute-transfer experiment
// (the paper's 1M -> 10M user join, Section 6 "User Attributes").
type TransferReport struct {
	Config   datagen.TransferConfig
	Accuracy float64
	Chance   float64
}

// Render formats the report.
func (r TransferReport) Render() string {
	return fmt.Sprintf(
		"== Attribute transfer (Section 6 user-attribute construction) ==\n"+
			"source users %d, target users %d, movies %d, taste segments %d\n"+
			"nearest-rating-vector transfer accuracy: %.1f%% (chance %.1f%%)\n",
		r.Config.SourceUsers, r.Config.TargetUsers, r.Config.Movies, r.Config.Segments,
		100*r.Accuracy, 100*r.Chance)
}

// Transfer runs the synthetic attribute-transfer experiment.
func Transfer(cfg datagen.TransferConfig) (TransferReport, error) {
	res, err := datagen.SimulateTransfer(cfg)
	if err != nil {
		return TransferReport{}, err
	}
	return TransferReport{
		Config:   cfg,
		Accuracy: res.Accuracy,
		Chance:   1 / float64(cfg.Segments),
	}, nil
}
