package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

func parse(t *testing.T, src string) (*token.FileSet, *ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "src.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, f
}

func TestSuppressions(t *testing.T) {
	fset, f := parse(t, `package p

func a() {
	work() //tagdm:nolint errsink -- trailing form
	//tagdm:nolint lockscope, durorder -- standalone form covers the next line
	work()
	//tagdm:nolint -- bare form suppresses every analyzer
	work()
}

func work() {}
`)
	sup := CollectSuppressions(fset, []*ast.File{f})
	diag := func(line int, analyzer string) Diagnostic {
		return Diagnostic{Analyzer: analyzer, Pos: token.Position{Filename: "src.go", Line: line}}
	}
	cases := []struct {
		d    Diagnostic
		want bool
	}{
		{diag(4, "errsink"), true},
		{diag(4, "lockscope"), false},
		{diag(6, "lockscope"), true},
		{diag(6, "durorder"), true},
		{diag(6, "errsink"), false},
		{diag(8, "metriclabels"), true}, // bare nolint
		{diag(10, "errsink"), false},    // uncommented line
	}
	for _, c := range cases {
		if got := sup.Suppressed(c.d); got != c.want {
			t.Errorf("Suppressed(line %d, %s) = %v, want %v", c.d.Pos.Line, c.d.Analyzer, got, c.want)
		}
	}
}

func TestDirectiveLines(t *testing.T) {
	fset, f := parse(t, `package p

func a() {
	work() //tagdm:allow-discard trailing reason
	//tagdm:allow-discard standalone reason
	work()
	//tagdm:allow-discardX not this directive
	work()
}

func work() {}
`)
	lines := DirectiveLines(fset, []*ast.File{f}, "allow-discard")
	if got := lines["src.go:4"]; got != "trailing reason" {
		t.Errorf("line 4 args = %q", got)
	}
	// The standalone comment covers its own line and the line below.
	if got := lines["src.go:5"]; got != "standalone reason" {
		t.Errorf("line 5 args = %q", got)
	}
	if got := lines["src.go:6"]; got != "standalone reason" {
		t.Errorf("line 6 args = %q", got)
	}
	// A trailing comment does not cover the next line.
	if _, ok := lines["src.go:5"]; !ok {
		t.Error("standalone directive lost its own line")
	}
	if _, ok := lines["src.go:7"]; ok {
		t.Error("allow-discardX matched the allow-discard prefix")
	}
	if _, ok := lines["src.go:8"]; ok {
		t.Error("allow-discardX covered the next line")
	}
}

func TestDirectiveMarkers(t *testing.T) {
	_, f := parse(t, `package p

// Doc text.
//
//tagdm:mutex nonblocking
//tagdm:blocking
//tagdm:nolint errsink -- positional, skipped
//tagdm:allow-discard positional, skipped
//tagdm:cancellable
func a() {}
`)
	decl := f.Decls[0].(*ast.FuncDecl)
	got := directiveMarkers(decl.Doc)
	want := []string{"mutex-nonblocking", "blocking"}
	if len(got) != len(want) {
		t.Fatalf("markers = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("markers = %v, want %v", got, want)
		}
	}
}

func TestMarkersEncodeDecode(t *testing.T) {
	m := &Markers{PkgPath: "tagdm/internal/wal", Objects: map[string][]string{}}
	m.add("Log.Enqueue", "nonblocking")
	m.add("Log.Enqueue", "nonblocking") // idempotent
	m.add("Ticket.Wait", "blocking")
	data, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeMarkers(data)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Has("Log.Enqueue", "nonblocking") || !back.Has("Ticket.Wait", "blocking") {
		t.Fatalf("roundtrip lost markers: %+v", back.Objects)
	}
	if back.Has("Log.Enqueue", "blocking") {
		t.Error("Has reported a marker that was never added")
	}
	if len(back.Objects["Log.Enqueue"]) != 1 {
		t.Errorf("add is not idempotent: %v", back.Objects["Log.Enqueue"])
	}
	var nilM *Markers
	if nilM.Has("x", "y") {
		t.Error("nil Markers must report nothing")
	}
}

func TestBodyBlocks(t *testing.T) {
	_, f := parse(t, `package p

func send(ch chan int)     { ch <- 1 }
func recv(ch chan int)     { <-ch }
func sel(ch chan int)      { select { case <-ch: } }
func selDefault(ch chan int) {
	select {
	case <-ch:
		work()
	default:
	}
}
func lit(ch chan int)  { f := func() { ch <- 1 }; _ = f }
func spawn(ch chan int) { go func() { <-ch }() }
func calls()           { work() }
func work()            {}
`)
	never := func(*ast.CallExpr) bool { return false }
	always := func(*ast.CallExpr) bool { return true }
	bodies := map[string]*ast.BlockStmt{}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok {
			bodies[fd.Name.Name] = fd.Body
		}
	}
	cases := []struct {
		fn       string
		classify func(*ast.CallExpr) bool
		want     bool
	}{
		{"send", never, true},
		{"recv", never, true},
		{"sel", never, true},
		{"selDefault", never, false}, // default case shields the comm clauses
		{"selDefault", always, true}, // ...but not calls in clause bodies
		{"lit", never, false},        // function literals are not entered
		{"spawn", never, false},      // the goroutine blocks, not the caller
		{"calls", never, false},
		{"calls", always, true},
	}
	for _, c := range cases {
		if got := bodyBlocks(bodies[c.fn], c.classify); got != c.want {
			t.Errorf("bodyBlocks(%s) = %v, want %v", c.fn, got, c.want)
		}
	}
}

func TestStmtExprs(t *testing.T) {
	_, f := parse(t, `package p

func a(ch chan int, xs []int) {
	work()
	x := work2()
	x++
	ch <- x
	if x > 0 {
	}
	for x < 10 {
	}
	for range xs {
	}
	switch x {
	}
	var y = work2()
	_ = y
	go work()
	defer work()
	return
}

func work() {}
func work2() int { return 0 }
`)
	body := f.Decls[0].(*ast.FuncDecl).Body
	counts := map[string]int{}
	for _, stmt := range body.List {
		key := typeName(stmt)
		counts[key] += len(StmtExprs(stmt))
	}
	want := map[string]int{
		"*ast.ExprStmt":   1, // work()
		"*ast.AssignStmt": 4, // x := work2(); _ = y → rhs+lhs counted
		"*ast.IncDecStmt": 1,
		"*ast.SendStmt":   2,
		"*ast.IfStmt":     1,
		"*ast.ForStmt":    1,
		"*ast.RangeStmt":  1,
		"*ast.SwitchStmt": 1,
		"*ast.DeclStmt":   1,
		"*ast.GoStmt":     0, // no args
		"*ast.DeferStmt":  0,
		"*ast.ReturnStmt": 0,
	}
	for key, n := range want {
		if counts[key] != n {
			t.Errorf("StmtExprs over %s yielded %d exprs, want %d", key, counts[key], n)
		}
	}
}

func typeName(n ast.Node) string {
	switch n.(type) {
	case *ast.ExprStmt:
		return "*ast.ExprStmt"
	case *ast.AssignStmt:
		return "*ast.AssignStmt"
	case *ast.IncDecStmt:
		return "*ast.IncDecStmt"
	case *ast.SendStmt:
		return "*ast.SendStmt"
	case *ast.IfStmt:
		return "*ast.IfStmt"
	case *ast.ForStmt:
		return "*ast.ForStmt"
	case *ast.RangeStmt:
		return "*ast.RangeStmt"
	case *ast.SwitchStmt:
		return "*ast.SwitchStmt"
	case *ast.DeclStmt:
		return "*ast.DeclStmt"
	case *ast.GoStmt:
		return "*ast.GoStmt"
	case *ast.DeferStmt:
		return "*ast.DeferStmt"
	case *ast.ReturnStmt:
		return "*ast.ReturnStmt"
	}
	return "other"
}

func TestSortDiagnosticsAndString(t *testing.T) {
	ds := []Diagnostic{
		{Analyzer: "b", Pos: token.Position{Filename: "b.go", Line: 1, Column: 1}, Message: "second file"},
		{Analyzer: "b", Pos: token.Position{Filename: "a.go", Line: 2, Column: 1}, Message: "later line"},
		{Analyzer: "b", Pos: token.Position{Filename: "a.go", Line: 1, Column: 2}, Message: "later column"},
		{Analyzer: "a", Pos: token.Position{Filename: "a.go", Line: 1, Column: 2}, Message: "earlier analyzer"},
		{Analyzer: "a", Pos: token.Position{Filename: "a.go", Line: 1, Column: 1}, Message: "first"},
	}
	SortDiagnostics(ds)
	wantOrder := []string{"first", "earlier analyzer", "later column", "later line", "second file"}
	for i, want := range wantOrder {
		if ds[i].Message != want {
			t.Fatalf("order[%d] = %q, want %q (full: %v)", i, ds[i].Message, want, ds)
		}
	}
	if got := ds[0].String(); got != "a.go:1:1: first [a]" {
		t.Errorf("String() = %q", got)
	}
}

func TestHeldLockHelpers(t *testing.T) {
	a := []HeldLock{{Key: "s.mu"}, {Key: "s.wmu", Deferred: true}}
	if got := nonDeferred(a); len(got) != 1 || got[0].Key != "s.mu" {
		t.Errorf("nonDeferred = %v", got)
	}
	b := []HeldLock{{Key: "s.mu"}, {Key: "l.mu", RLock: true}}
	u := unionHeld(a, b)
	if len(u) != 3 { // s.mu dedups, s.wmu and l.mu(R) join
		t.Errorf("unionHeld = %v", u)
	}
}
