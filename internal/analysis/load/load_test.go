package load

import (
	"strings"
	"testing"

	"tagdm/internal/analysis"
	"tagdm/internal/analysis/passes/errsink"
)

func TestPatternsLoadsModuleInDepOrder(t *testing.T) {
	root, err := ModuleRoot()
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Patterns(root, "tagdm/internal/wal", "tagdm/internal/server")
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]int{}
	for i, p := range pkgs {
		seen[p.ImportPath] = i
		if p.Types == nil || len(p.Files) == 0 {
			t.Fatalf("package %s not loaded", p.ImportPath)
		}
	}
	wal, okW := seen["tagdm/internal/wal"]
	srv, okS := seen["tagdm/internal/server"]
	if !okW || !okS {
		t.Fatalf("expected wal and server in %v", seen)
	}
	if wal > srv {
		t.Fatalf("dependency order violated: wal at %d after server at %d", wal, srv)
	}
}

func TestMarkersDeriveBlocking(t *testing.T) {
	root, err := ModuleRoot()
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Patterns(root, "tagdm/internal/wal")
	if err != nil {
		t.Fatal(err)
	}
	var view = pkgs[len(pkgs)-1].Markers
	m := view.Pkg("tagdm/internal/wal")
	if m == nil {
		t.Fatal("no markers for tagdm/internal/wal")
	}
	// Ticket.Wait receives on a channel: must be classified blocking.
	if !m.Has("Ticket.Wait", "blocking") {
		t.Errorf("Ticket.Wait not classified blocking; markers: %v", m.Objects["Ticket.Wait"])
	}
}

// TestDirAndRun loads an analyzer testdata directory under a claimed
// production import path — the analysistest entry point — and runs one
// real analyzer over it through Run's filtering.
func TestDirAndRun(t *testing.T) {
	pkg, err := Dir("../passes/errsink/testdata/wal", "tagdm/internal/wal")
	if err != nil {
		t.Fatal(err)
	}
	if pkg.ImportPath != "tagdm/internal/wal" || pkg.Types.Path() != "tagdm/internal/wal" {
		t.Fatalf("claimed path not honored: %s / %s", pkg.ImportPath, pkg.Types.Path())
	}
	diags, err := Run(pkg, []*analysis.Analyzer{errsink.Analyzer})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) == 0 {
		t.Fatal("errsink reported nothing over its own flagged testdata")
	}
	found := false
	for _, d := range diags {
		if strings.Contains(d.Message, "discarded") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no discard diagnostic in %v", diags)
	}
	if _, err := Dir(t.TempDir(), "example.com/empty"); err == nil {
		t.Fatal("Dir over an empty directory must fail")
	}
}
