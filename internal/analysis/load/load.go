// Package load type-checks packages for the tagdm-vet analyzers without
// golang.org/x/tools/go/packages. It shells out to `go list -export -json
// -deps`, which compiles dependencies and reports their gc export data
// files; imports are then resolved through go/importer's gc reader while
// the packages under analysis are parsed and type-checked from source.
// This is the standalone counterpart of the `go vet -vettool` driver in
// internal/analysis/unitchecker, used by the analysistest harness and the
// suite's self-check over the repository.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"tagdm/internal/analysis"
)

// Package is one source-parsed, type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
	// Markers is the view covering this package and its imports.
	Markers *analysis.MarkerView
}

// listedPkg is the subset of `go list -json` output the loader reads.
type listedPkg struct {
	ImportPath string
	Dir        string
	Export     string
	Standard   bool
	GoFiles    []string
	Imports    []string
	Module     *struct{ Path string }
}

// goList runs `go list -e -export -json -deps args...` in dir and decodes
// the JSON stream (dependency order: imports before importers).
func goList(dir string, args []string) ([]*listedPkg, error) {
	cmd := exec.Command("go", append([]string{
		"list", "-e", "-export",
		"-json=ImportPath,Dir,Export,Standard,GoFiles,Imports,Module",
		"-deps",
	}, args...)...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v: %s", err, stderr.String())
	}
	var pkgs []*listedPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// exportImporter resolves imports through the gc export data files
// reported by go list.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok || file == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// parseDirFiles parses the named files (absolute or dir-relative).
func parseDirFiles(fset *token.FileSet, dir string, names []string) ([]*ast.File, error) {
	var files []*ast.File
	for _, name := range names {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// checkSource type-checks the parsed files as package path.
func checkSource(fset *token.FileSet, path string, files []*ast.File, exports map[string]string) (*types.Package, *types.Info, error) {
	info := newInfo()
	conf := types.Config{Importer: exportImporter(fset, exports)}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, nil, fmt.Errorf("typecheck %s: %v", path, err)
	}
	return pkg, info, nil
}

// ModuleRoot locates the enclosing go.mod directory, so tests can run the
// loader from any package directory.
func ModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}

// Patterns loads the module packages matched by patterns (e.g. "./...")
// in dependency order, parsed from source with markers computed
// transitively. root must be the module root directory.
func Patterns(root string, patterns ...string) ([]*Package, error) {
	listed, err := goList(root, patterns)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	exports := map[string]string{}
	view := analysis.NewMarkerView()
	var out []*Package
	for _, lp := range listed {
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
		if lp.Standard || lp.Module == nil {
			continue
		}
		files, err := parseDirFiles(fset, lp.Dir, lp.GoFiles)
		if err != nil {
			return nil, err
		}
		pkg, info, err := checkSource(fset, lp.ImportPath, files, exports)
		if err != nil {
			return nil, err
		}
		view.Add(analysis.ComputeMarkers(fset, files, pkg, info, view))
		out = append(out, &Package{
			ImportPath: lp.ImportPath,
			Dir:        lp.Dir,
			Fset:       fset,
			Files:      files,
			Types:      pkg,
			Info:       info,
			Markers:    view,
		})
	}
	return out, nil
}

// Dir loads the .go files of one directory as a package claiming import
// path asPath — the analysistest entry point. Testdata packages claim the
// production import path they exercise so path-scoped analyzers behave
// identically; they may import real module packages, whose markers are
// computed from source so cross-package directives are visible.
func Dir(dir, asPath string) (*Package, error) {
	root, err := ModuleRoot()
	if err != nil {
		return nil, err
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	fset := token.NewFileSet()
	files, err := parseDirFiles(fset, dir, names)
	if err != nil {
		return nil, err
	}

	// Resolve the testdata package's imports through go list.
	importSet := map[string]bool{}
	for _, f := range files {
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if path != "unsafe" {
				importSet[path] = true
			}
		}
	}
	exports := map[string]string{}
	view := analysis.NewMarkerView()
	if len(importSet) > 0 {
		args := make([]string, 0, len(importSet))
		for path := range importSet {
			args = append(args, path)
		}
		listed, err := goList(root, args)
		if err != nil {
			return nil, err
		}
		for _, lp := range listed {
			if lp.Export != "" {
				exports[lp.ImportPath] = lp.Export
			}
		}
		// Compute markers of module dependencies from source, dep order.
		for _, lp := range listed {
			if lp.Standard || lp.Module == nil {
				continue
			}
			depFiles, err := parseDirFiles(fset, lp.Dir, lp.GoFiles)
			if err != nil {
				return nil, err
			}
			depPkg, depInfo, err := checkSource(fset, lp.ImportPath, depFiles, exports)
			if err != nil {
				return nil, err
			}
			view.Add(analysis.ComputeMarkers(fset, depFiles, depPkg, depInfo, view))
		}
	}

	pkg, info, err := checkSource(fset, asPath, files, exports)
	if err != nil {
		return nil, err
	}
	view.Add(analysis.ComputeMarkers(fset, files, pkg, info, view))
	return &Package{
		ImportPath: asPath,
		Dir:        dir,
		Fset:       fset,
		Files:      files,
		Types:      pkg,
		Info:       info,
		Markers:    view,
	}, nil
}

// Run executes the analyzers over pkg and returns the surviving
// diagnostics: sorted, with nolint-suppressed findings and findings in
// _test.go files removed.
func Run(pkg *Package, analyzers []*analysis.Analyzer) ([]analysis.Diagnostic, error) {
	var diags []analysis.Diagnostic
	report := func(d analysis.Diagnostic) { diags = append(diags, d) }
	for _, a := range analyzers {
		pass := analysis.NewPass(a, pkg.Fset, pkg.Files, pkg.Types, pkg.Info, pkg.Markers, report)
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s on %s: %v", a.Name, pkg.ImportPath, err)
		}
	}
	sup := analysis.CollectSuppressions(pkg.Fset, pkg.Files)
	var kept []analysis.Diagnostic
	for _, d := range diags {
		if strings.HasSuffix(d.Pos.Filename, "_test.go") || sup.Suppressed(d) {
			continue
		}
		kept = append(kept, d)
	}
	analysis.SortDiagnostics(kept)
	return kept, nil
}
