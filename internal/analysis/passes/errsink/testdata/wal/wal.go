// Package wal is errsink testdata loaded under the scoped import path
// tagdm/internal/wal.
package wal

import "os"

func handled(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	return f.Close()
}

func droppedSync(f *os.File) {
	f.Sync() // want `error from Sync is discarded`
}

func droppedDeferClose(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close() // want `deferred error from Close is discarded`
	buf := make([]byte, 16)
	_, err = f.Read(buf)
	return buf, err
}

func annotatedDeferClose(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	//tagdm:allow-discard read-only handle, nothing buffered to lose
	defer f.Close()
	buf := make([]byte, 16)
	_, err = f.Read(buf)
	return buf, err
}

func blankRemove(path string) {
	_ = os.Remove(path) // want `error from Remove is blank-discarded`
}

func blankModuleCall() {
	_ = checkpoint() // want `error from checkpoint is blank-discarded`
}

func annotatedBlankModuleCall() {
	//tagdm:allow-discard best effort; replay skips covered segments anyway
	_ = checkpoint()
}

func reasonlessAnnotation(path string) {
	//tagdm:allow-discard
	_ = os.Remove(path) // want `tagdm:allow-discard needs a reason`
}

func checkpoint() error { return nil }

// nonSinkDiscards stay out of scope: stdlib calls that do not guard
// durability are not the sweep's business.
func nonSinkDiscards(ch chan int) {
	println("ok")
}
