package errsink_test

import (
	"testing"

	"tagdm/internal/analysis/analysistest"
	"tagdm/internal/analysis/passes/errsink"
)

func TestErrsink(t *testing.T) {
	analysistest.Run(t, "testdata/wal", "tagdm/internal/wal", errsink.Analyzer)
}
