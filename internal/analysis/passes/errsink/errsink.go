// Package errsink is the errcheck-style sweep scoped to durability code:
// the write-ahead log, the server's checkpoint/recovery path, the facade
// persistence helpers and the cmd binaries. In those packages a discarded
// error from Close/Sync/Flush/Remove/Rename/Truncate — or a blank-assigned
// error from any module function — is either a durability bug (a lost
// fsync failure) or a deliberate best-effort step that must say so.
//
// Deliberate discards are annotated in place:
//
//	//tagdm:allow-discard <reason>
//
// on the offending line or alone on the line above. The reason is
// mandatory: an unexplained discard is indistinguishable from a bug at
// review time, which is what this analyzer exists to prevent.
package errsink

import (
	"go/ast"
	"go/types"
	"strings"

	"tagdm/internal/analysis"
)

// ScopePaths lists the exact import paths swept; cmd binaries are matched
// by prefix in scoped.
var ScopePaths = []string{"tagdm", "tagdm/internal/wal", "tagdm/internal/server"}

// Analyzer is the errsink check.
var Analyzer = &analysis.Analyzer{
	Name: "errsink",
	Doc:  "durability code must not silently discard Close/Sync/Flush/Remove errors; deliberate discards carry //tagdm:allow-discard <reason>",
	Run:  run,
}

// sinkNames are the error-returning cleanup/durability calls the sweep
// watches when their result is dropped entirely (expression statements and
// defers).
var sinkNames = map[string]bool{
	"Close": true, "Sync": true, "Flush": true,
	"Remove": true, "RemoveAll": true, "Rename": true, "Truncate": true,
}

func scoped(pass *analysis.Pass) bool {
	return pass.PathIs(ScopePaths...) || strings.HasPrefix(pass.Pkg.Path(), "tagdm/cmd/")
}

func run(pass *analysis.Pass) error {
	if !scoped(pass) {
		return nil
	}
	allowed := analysis.DirectiveLines(pass.Fset, pass.Files, "allow-discard")
	report := func(pos ast.Node, format string, args ...any) {
		if reason, ok := allowed[pass.LineKey(pos.Pos())]; ok {
			if strings.TrimSpace(reason) == "" {
				pass.Reportf(pos.Pos(), "tagdm:allow-discard needs a reason: say why this discard is safe")
			}
			return
		}
		pass.Reportf(pos.Pos(), format, args...)
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				checkDropped(pass, report, n.X, "")
			case *ast.DeferStmt:
				checkDropped(pass, report, n.Call, "deferred ")
			case *ast.AssignStmt:
				checkBlankAssign(pass, report, n)
			}
			return true
		})
	}
	return nil
}

// checkDropped flags a statement-level sink call whose error vanishes.
func checkDropped(pass *analysis.Pass, report func(ast.Node, string, ...any), expr ast.Expr, prefix string) {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok {
		return
	}
	fn := pass.FuncFor(call)
	if fn == nil || !sinkNames[fn.Name()] || !returnsError(fn) {
		return
	}
	report(call, "%serror from %s is discarded: handle it or annotate with //tagdm:allow-discard <reason>",
		prefix, fn.Name())
}

// checkBlankAssign flags `_ = f()` where f returns an error and is either
// a sink call or module code (whose errors encode durability outcomes).
func checkBlankAssign(pass *analysis.Pass, report func(ast.Node, string, ...any), assign *ast.AssignStmt) {
	for _, lhs := range assign.Lhs {
		ident, ok := lhs.(*ast.Ident)
		if !ok || ident.Name != "_" {
			return
		}
	}
	if len(assign.Rhs) != 1 {
		return
	}
	call, ok := ast.Unparen(assign.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return
	}
	fn := pass.FuncFor(call)
	if fn == nil || !returnsError(fn) {
		return
	}
	inModule := fn.Pkg() != nil && (fn.Pkg().Path() == "tagdm" || strings.HasPrefix(fn.Pkg().Path(), "tagdm/"))
	if !sinkNames[fn.Name()] && !inModule {
		return
	}
	report(assign, "error from %s is blank-discarded: handle it or annotate with //tagdm:allow-discard <reason>",
		fn.Name())
}

func returnsError(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Results().Len(); i++ {
		named, ok := sig.Results().At(i).Type().(*types.Named)
		if ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil {
			return true
		}
	}
	return false
}
