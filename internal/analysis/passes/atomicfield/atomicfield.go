// Package atomicfield catches torn atomicity: a struct field (or package
// variable) that is accessed through the old-style sync/atomic functions
// anywhere in the package must be accessed that way everywhere. One plain
// read or write racing the atomic ones is a data race the race detector
// only reports when a test happens to hit the interleaving; the analyzer
// makes it a compile-time finding.
//
// The new typed atomics (atomic.Int64, atomic.Pointer[T], ...) enforce
// this by construction and need no checking — this analyzer exists for
// the counter-behind-&field pattern. Fields are almost always unexported,
// so per-package analysis sees every access. Suppress with
// `//tagdm:nolint atomicfield -- <reason>`.
package atomicfield

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"tagdm/internal/analysis"
)

// Analyzer is the atomicfield check.
var Analyzer = &analysis.Analyzer{
	Name: "atomicfield",
	Doc:  "fields accessed via sync/atomic must never be read or written plainly elsewhere",
	Run:  run,
}

// atomicFns are the sync/atomic functions whose first argument is the
// address of the word being operated on.
func isAtomicAddrFn(name string) bool {
	for _, prefix := range []string{"Load", "Store", "Add", "Swap", "CompareAndSwap"} {
		if strings.HasPrefix(name, prefix) {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) error {
	// Walk 1: find objects whose address feeds sync/atomic calls, and
	// remember those sanctioned selector nodes.
	atomicObjs := map[types.Object]ast.Node{}
	sanctioned := map[ast.Expr]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := pass.FuncFor(call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" || !isAtomicAddrFn(fn.Name()) {
				return true
			}
			for _, arg := range call.Args {
				unary, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || unary.Op != token.AND {
					continue
				}
				target := ast.Unparen(unary.X)
				if obj := pass.TargetObj(target); obj != nil {
					if _, seen := atomicObjs[obj]; !seen {
						atomicObjs[obj] = call
					}
					sanctioned[target] = true
				}
			}
			return true
		})
	}
	if len(atomicObjs) == 0 {
		return nil
	}

	// Walk 2: every other access to those objects is a plain access.
	var walk2 func(n ast.Node) bool
	walk2 = func(n ast.Node) bool {
		if kv, ok := n.(*ast.KeyValueExpr); ok {
			// Composite literal keys name the field without accessing it;
			// check only the value side.
			ast.Inspect(kv.Value, walk2)
			return false
		}
		expr, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		if sanctioned[expr] {
			return false
		}
		switch expr.(type) {
		case *ast.SelectorExpr, *ast.Ident:
		default:
			return true
		}
		obj := pass.TargetObj(expr)
		if obj == nil {
			return true
		}
		if at, ok := atomicObjs[obj]; ok {
			pass.Reportf(expr.Pos(),
				"plain access to %s, which is accessed with sync/atomic at %s: this races the atomic operations",
				obj.Name(), pass.Fset.Position(at.Pos()))
			return false
		}
		return true
	}
	for _, f := range pass.Files {
		ast.Inspect(f, walk2)
	}
	return nil
}
