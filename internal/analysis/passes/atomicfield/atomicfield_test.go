package atomicfield_test

import (
	"testing"

	"tagdm/internal/analysis/analysistest"
	"tagdm/internal/analysis/passes/atomicfield"
)

func TestAtomicField(t *testing.T) {
	analysistest.Run(t, "testdata/server", "tagdm/internal/server", atomicfield.Analyzer)
}
