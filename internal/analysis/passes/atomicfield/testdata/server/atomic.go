// Package server is atomicfield testdata: old-style atomic counters mixed
// with plain accesses, new-style typed atomics, and a fully consistent
// counter.
package server

import "sync/atomic"

type stats struct {
	appends int64
	syncs   int64
	rotates int64
	// epoch is a new-style typed atomic: consistent by construction.
	epoch atomic.Int64
}

func (s *stats) recordAppend() {
	atomic.AddInt64(&s.appends, 1)
}

func (s *stats) snapshotAppends() int64 {
	return atomic.LoadInt64(&s.appends)
}

// reset races recordAppend: the write is plain.
func (s *stats) reset() {
	s.appends = 0 // want `plain access to appends`
}

func (s *stats) recordSync() {
	atomic.AddInt64(&s.syncs, 1)
}

// report races recordSync: the read is plain.
func (s *stats) report() int64 {
	return s.syncs // want `plain access to syncs`
}

// rotates is only ever touched plainly: no atomic access, no findings.
func (s *stats) recordRotate() {
	s.rotates++
}

func (s *stats) rotateCount() int64 {
	return s.rotates
}

// epoch uses the typed atomic API throughout: nothing to report.
func (s *stats) bumpEpoch() {
	s.epoch.Add(1)
}

// suppressed shows the escape hatch: a plain read in a single-goroutine
// constructor phase.
func newStats(seed int64) *stats {
	s := &stats{}
	atomic.StoreInt64(&s.appends, seed)
	//tagdm:nolint atomicfield -- constructor runs before the stats escape
	if s.appends != seed {
		panic("unreachable")
	}
	return s
}
