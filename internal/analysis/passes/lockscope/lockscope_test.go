package lockscope_test

import (
	"testing"

	"tagdm/internal/analysis/analysistest"
	"tagdm/internal/analysis/passes/lockscope"
)

func TestLockscopeAnnotatedMutex(t *testing.T) {
	analysistest.Run(t, "testdata/wal", "tagdm/internal/wal", lockscope.Analyzer)
}

func TestLockscopeIgnoresUnannotatedMutex(t *testing.T) {
	analysistest.Run(t, "testdata/clean", "tagdm/internal/store", lockscope.Analyzer)
}
