// Package wal is lockscope testdata: a miniature of the real log with an
// annotated queue lock and a deliberately blocking write lock.
package wal

import (
	"os"
	"sync"
)

type log struct {
	//tagdm:mutex nonblocking
	mu      sync.Mutex
	pending [][]byte

	// wmu deliberately serializes disk writes; it carries no annotation,
	// so blocking under it is fine.
	wmu  sync.Mutex
	file *os.File
	kick chan struct{}
}

// enqueue is the contract-respecting shape: queue under mu, kick without
// blocking, do the I/O elsewhere.
func (l *log) enqueue(payload []byte) {
	l.mu.Lock()
	l.pending = append(l.pending, payload)
	l.mu.Unlock()
	select {
	case l.kick <- struct{}{}:
	default:
	}
}

// flush blocks under wmu only: allowed.
func (l *log) flush(data []byte) error {
	l.wmu.Lock()
	defer l.wmu.Unlock()
	if _, err := l.file.Write(data); err != nil {
		return err
	}
	return l.file.Sync()
}

// rotateRace is the PR 7 bug shape: fsync while the queue lock is held.
func (l *log) rotateRace() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.file.Sync() // want `blocking call to Sync while l\.mu is held`
}

// sendUnderLock blocks on an unbuffered kick while holding mu.
func (l *log) sendUnderLock() {
	l.mu.Lock()
	l.kick <- struct{}{} // want `channel send while l\.mu is held`
	l.mu.Unlock()
}

// recvUnderLock parks on a channel receive while holding mu.
func (l *log) recvUnderLock() {
	l.mu.Lock()
	<-l.kick // want `channel receive while l\.mu is held`
	l.mu.Unlock()
}

// earlyReturnLeak forgets the unlock on the error path.
func (l *log) earlyReturnLeak(fail bool) error {
	l.mu.Lock()
	if fail {
		return errFailed // want `return while l\.mu is held`
	}
	l.mu.Unlock()
	return nil
}

// transitiveBlock calls a helper that blocks, while holding mu: the
// derived blocking classification must propagate through doSync.
func (l *log) transitiveBlock() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.doSync() // want `blocking call to doSync while l\.mu is held`
}

func (l *log) doSync() error {
	return l.file.Sync()
}

// suppressed demonstrates the escape hatch for a justified exception.
func (l *log) suppressed() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	//tagdm:nolint lockscope -- bounded file, sync latency acceptable at close
	return l.file.Sync()
}

var errFailed = os.ErrInvalid
