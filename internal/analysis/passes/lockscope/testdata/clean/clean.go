// Package clean is lockscope negative testdata: unannotated mutexes are
// not tracked, so blocking under them is not reported.
package clean

import (
	"os"
	"sync"
)

type store struct {
	mu   sync.Mutex
	file *os.File
}

func (s *store) persist(data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := s.file.Write(data); err != nil {
		return err
	}
	return s.file.Sync()
}
