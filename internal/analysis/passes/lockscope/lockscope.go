// Package lockscope polices the critical sections of mutexes annotated
// `//tagdm:mutex nonblocking` — locks whose documented contract is that
// they are never held across a blocking operation (wal.Log.mu, the
// server's write lock). The Rotate/Enqueue race fixed in PR 7 was exactly
// this class of bug: disk I/O slipped under a queue-state lock and write
// order diverged from apply order under contention.
//
// For every function the analyzer tracks which annotated mutexes are held
// at each statement and reports:
//
//   - a blocking operation (classified by the shared marker machinery:
//     channel send/receive, select without default, calls to functions
//     that block — fsync/file I/O, http writes, Ticket.Wait, and anything
//     transitively derived as blocking) while an annotated lock is held;
//   - a return reached while an annotated lock is still held and its
//     unlock was not deferred — the missing-unlock-on-early-return bug.
//
// The traversal is syntactic: if/else joins take the union of held locks,
// loops are assumed lock-balanced, and function literals are not entered.
// Suppress with `//tagdm:nolint lockscope -- <reason>`.
package lockscope

import (
	"go/ast"
	"go/token"
	"go/types"

	"tagdm/internal/analysis"
)

// Analyzer is the lockscope check.
var Analyzer = &analysis.Analyzer{
	Name: "lockscope",
	Doc:  "no blocking operation under a //tagdm:mutex nonblocking lock, and no early return that skips its unlock",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	local := pass.Markers.Pkg(pass.Pkg.Path())
	tracked := func(recv types.Type, field, key string) bool {
		return recv != nil && pass.Markers.FieldHas(recv, field, "mutex-nonblocking")
	}
	callBlocks := func(call *ast.CallExpr) bool {
		return analysis.CallBlocks(pass.TypesInfo, call, local, pass.Markers)
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			walker := &analysis.LockWalker{
				Info:    pass.TypesInfo,
				Tracked: tracked,
				Visit: func(stmt ast.Stmt, held []analysis.HeldLock) {
					if len(held) == 0 {
						return
					}
					checkStmt(pass, stmt, held, callBlocks)
				},
				VisitReturn: func(ret *ast.ReturnStmt, held []analysis.HeldLock) {
					for _, h := range held {
						pass.Reportf(ret.Pos(),
							"return while %s is held: unlock before returning or defer the unlock", h.Key)
					}
				},
			}
			walker.WalkFunc(fn.Body)
		}
	}
	return nil
}

// checkStmt scans one statement's directly evaluated expressions for
// blocking operations, reporting each against the innermost held lock.
func checkStmt(pass *analysis.Pass, stmt ast.Stmt, held []analysis.HeldLock, callBlocks func(*ast.CallExpr) bool) {
	lock := held[len(held)-1].Key
	switch s := stmt.(type) {
	case *ast.SendStmt:
		pass.Reportf(s.Arrow, "channel send while %s is held", lock)
		return
	case *ast.SelectStmt:
		hasDefault := false
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			pass.Reportf(s.Pos(), "blocking select while %s is held", lock)
		}
		return
	}
	for _, expr := range analysis.StmtExprs(stmt) {
		ast.Inspect(expr, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				return false
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					pass.Reportf(n.Pos(), "channel receive while %s is held", lock)
					return false
				}
			case *ast.CallExpr:
				if callBlocks(n) {
					fn := pass.FuncFor(n)
					pass.Reportf(n.Pos(), "blocking call to %s while %s is held", fn.Name(), lock)
					return false
				}
			}
			return true
		})
	}
}
