package durorder_test

import (
	"testing"

	"tagdm/internal/analysis/analysistest"
	"tagdm/internal/analysis/passes/durorder"
)

func TestDurorder(t *testing.T) {
	analysistest.Run(t, "testdata/server", "tagdm/internal/server", durorder.Analyzer)
}
