// Package durorder enforces the durability ordering contract of the
// ingest path (tagdm/internal/server), the invariant PR 7 introduced and
// the ack-only-after-durable design note documents:
//
//  1. After a batch is enqueued on the write-ahead log, no code path may
//     acknowledge the request (writeJSON/writeError, direct
//     ResponseWriter.Write/WriteHeader) or publish a snapshot
//     (publishLocked, or its sharded successors captureLocked /
//     installSnapshot / publish) until the WAL ticket's Wait has been
//     observed. An ack that races the fsync tells the client the batch is
//     durable while it may still be lost.
//  2. wal Enqueue must be called while a mutex is held: holding the
//     server's write lock across apply+enqueue is what pins WAL record
//     order to in-memory apply order (the Rotate/Enqueue race lesson).
//
// The ordering check is lexical per function: a call to Enqueue opens an
// obligation that only Ticket.Wait discharges; responding or publishing
// while the obligation is open is reported. Function literals are not
// entered. Suppress with `//tagdm:nolint durorder -- <reason>`.
package durorder

import (
	"go/ast"
	"go/types"

	"tagdm/internal/analysis"
)

// ScopePaths lists the import paths the analyzer applies to.
var ScopePaths = []string{"tagdm/internal/server"}

// Analyzer is the durorder check.
var Analyzer = &analysis.Analyzer{
	Name: "durorder",
	Doc:  "no ingest ack or snapshot publish between WAL enqueue and the ticket wait; enqueue must happen under the write lock",
	Run:  run,
}

const walPath = "tagdm/internal/wal"

func run(pass *analysis.Pass) error {
	if !pass.PathIs(ScopePaths...) {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkOrdering(pass, fn)
			checkEnqueueLocked(pass, fn)
		}
	}
	return nil
}

// callKind classifies the calls the ordering state machine reacts to.
type callKind int

const (
	otherCall callKind = iota
	enqueueCall
	waitCall
	respondCall
	publishCall
)

func classify(pass *analysis.Pass, call *ast.CallExpr) (callKind, string) {
	fn := pass.FuncFor(call)
	if fn == nil || fn.Pkg() == nil {
		return otherCall, ""
	}
	key := analysis.FuncKey(fn)
	switch fn.Pkg().Path() {
	case walPath:
		switch key {
		case "Log.Enqueue":
			return enqueueCall, key
		case "Ticket.Wait":
			return waitCall, key
		}
	case pass.Pkg.Path():
		switch fn.Name() {
		case "writeJSON", "writeError":
			return respondCall, fn.Name()
		case "publishLocked", "captureLocked", "installSnapshot", "publish":
			return publishCall, key
		}
	case "net/http":
		// Direct writes through the ResponseWriter interface.
		if key == "ResponseWriter.Write" || key == "ResponseWriter.WriteHeader" {
			return respondCall, key
		}
	}
	return otherCall, ""
}

// checkOrdering runs the lexical enqueue→wait state machine over one
// function body.
func checkOrdering(pass *analysis.Pass, fn *ast.FuncDecl) {
	pending := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		kind, name := classify(pass, call)
		switch kind {
		case enqueueCall:
			pending = true
		case waitCall:
			pending = false
		case respondCall:
			if pending {
				pass.Reportf(call.Pos(),
					"%s before the WAL ticket wait: the client would be acked before the batch is durable", name)
			}
		case publishCall:
			if pending {
				pass.Reportf(call.Pos(),
					"%s before the WAL ticket wait: a snapshot would publish state that may still be lost", name)
			}
		}
		return true
	})
}

// checkEnqueueLocked verifies every Enqueue call happens under a mutex.
func checkEnqueueLocked(pass *analysis.Pass, fn *ast.FuncDecl) {
	walker := &analysis.LockWalker{
		Info: pass.TypesInfo,
		// Track every sync mutex: any lock satisfies the ordering pin.
		Tracked: func(recv types.Type, field, key string) bool { return true },
		Visit: func(stmt ast.Stmt, held []analysis.HeldLock) {
			for _, expr := range analysis.StmtExprs(stmt) {
				ast.Inspect(expr, func(n ast.Node) bool {
					if _, ok := n.(*ast.FuncLit); ok {
						return false
					}
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					if kind, _ := classify(pass, call); kind == enqueueCall && len(held) == 0 {
						pass.Reportf(call.Pos(),
							"wal Enqueue outside the write lock: WAL record order is no longer pinned to apply order")
					}
					return true
				})
			}
		},
	}
	walker.WalkFunc(fn.Body)
}
