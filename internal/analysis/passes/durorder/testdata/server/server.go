// Package server is durorder testdata loaded under the scoped import path
// tagdm/internal/server, importing the real wal package so the analyzer
// resolves Enqueue and Ticket.Wait exactly as it does on the tree.
package server

import (
	"net/http"
	"sync"

	"tagdm/internal/wal"
)

type srv struct {
	mu  sync.Mutex
	log *wal.Log
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	_ = w
	_ = code
	_ = v
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	_ = w
	_ = code
	_ = format
	_ = args
}

func (s *srv) publishLocked() error { return nil }

// goodHandler follows the contract: apply+enqueue under the lock, then
// wait, then respond and publish.
func (s *srv) goodHandler(w http.ResponseWriter, payload []byte) {
	s.mu.Lock()
	ticket := s.log.Enqueue(payload)
	s.mu.Unlock()
	if err := ticket.Wait(); err != nil {
		writeError(w, http.StatusServiceUnavailable, "wal: %v", err)
		return
	}
	s.mu.Lock()
	err := s.publishLocked()
	s.mu.Unlock()
	_ = err
	writeJSON(w, http.StatusOK, "ok")
}

// ackEarly responds before the ticket wait.
func (s *srv) ackEarly(w http.ResponseWriter, payload []byte) {
	s.mu.Lock()
	ticket := s.log.Enqueue(payload)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, "ok") // want `writeJSON before the WAL ticket wait`
	_ = ticket.Wait()
}

// publishEarly publishes a snapshot before the ticket wait.
func (s *srv) publishEarly(w http.ResponseWriter, payload []byte) {
	s.mu.Lock()
	ticket := s.log.Enqueue(payload)
	err := s.publishLocked() // want `publishLocked before the WAL ticket wait`
	s.mu.Unlock()
	_ = err
	_ = ticket.Wait()
	writeJSON(w, http.StatusOK, "ok")
}

// rawAckEarly writes through the ResponseWriter directly before the wait.
func (s *srv) rawAckEarly(w http.ResponseWriter, payload []byte) {
	s.mu.Lock()
	ticket := s.log.Enqueue(payload)
	s.mu.Unlock()
	w.WriteHeader(http.StatusOK) // want `ResponseWriter\.WriteHeader before the WAL ticket wait`
	_ = ticket.Wait()
}

// enqueueUnlocked drops the write lock before enqueueing, unpinning WAL
// order from apply order.
func (s *srv) enqueueUnlocked(payload []byte) *wal.Ticket {
	s.mu.Lock()
	s.mu.Unlock()
	return s.log.Enqueue(payload) // want `wal Enqueue outside the write lock`
}

// suppressedEnqueue shows the escape hatch for a justified exception.
func (s *srv) suppressedEnqueue(payload []byte) *wal.Ticket {
	//tagdm:nolint durorder -- single-writer startup path, no concurrent apply
	return s.log.Enqueue(payload)
}
