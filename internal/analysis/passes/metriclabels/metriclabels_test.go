package metriclabels_test

import (
	"testing"

	"tagdm/internal/analysis/analysistest"
	"tagdm/internal/analysis/passes/metriclabels"
)

func TestMetricLabels(t *testing.T) {
	analysistest.Run(t, "testdata/server", "tagdm/internal/server", metriclabels.Analyzer)
}
