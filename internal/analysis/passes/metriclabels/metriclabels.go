// Package metriclabels keeps the Prometheus exposition's cardinality
// bounded: every label value handed to an obs.Registry vector
// (CounterVec/GaugeVec/HistogramVec `.With(...)`) must be provably drawn
// from a bounded, boot-stable set. Request-derived strings in labels are
// how scrape cardinality explodes in production, and the repo's metrics
// layer was designed around pre-registered label sets precisely to
// prevent that.
//
// An argument is label-safe when it is:
//
//   - a compile-time string constant (literal or const);
//   - a call to a function annotated `//tagdm:label-sanitizer` — a pure
//     bucketing function that returns only constants (familyOf,
//     endpointLabel);
//   - the range variable of a loop over a package-level var annotated
//     `//tagdm:label-set` (or an index into one, as with familyStages);
//   - an index into a `//tagdm:label-set` var (shardLabels[shard]): the
//     declared set bounds the result no matter what the index is;
//   - a local variable every assignment of which is itself label-safe.
//
// Everything else — struct fields, parameters, map lookups, arbitrary
// expressions — is reported. The obs package itself is exempt (its
// internals shuttle label values generically). Suppress with
// `//tagdm:nolint metriclabels -- <reason>`.
package metriclabels

import (
	"go/ast"
	"go/types"

	"tagdm/internal/analysis"
)

// Analyzer is the metriclabels check.
var Analyzer = &analysis.Analyzer{
	Name: "metriclabels",
	Doc:  "obs vector label values must be constants, label-set elements, or sanitizer results so scrape cardinality stays bounded",
	Run:  run,
}

const obsPath = "tagdm/internal/obs"

var vecTypes = map[string]bool{"CounterVec": true, "GaugeVec": true, "HistogramVec": true}

func run(pass *analysis.Pass) error {
	if pass.PathIs(obsPath) {
		return nil
	}
	safety := collectSafety(pass)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isVecWith(pass, call) {
				return true
			}
			if call.Ellipsis.IsValid() {
				pass.Reportf(call.Ellipsis,
					"metric label slice spread into With: label values must be individually provable")
				return true
			}
			for _, arg := range call.Args {
				if !safety.safeExpr(arg) {
					pass.Reportf(arg.Pos(),
						"metric label %q is not a constant, label-set element, or label-sanitizer result: unbounded values explode scrape cardinality",
						types.ExprString(arg))
				}
			}
			return true
		})
	}
	return nil
}

// isVecWith matches method calls With(...) on the obs vector types.
func isVecWith(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "With" {
		return false
	}
	tv, ok := pass.TypesInfo.Types[sel.X]
	if !ok {
		return false
	}
	t := tv.Type
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == obsPath && vecTypes[named.Obj().Name()]
}

// safety is the per-package label-safety lattice over local variables.
type safety struct {
	pass *analysis.Pass
	// rangeSafe holds variables bound by ranging over a label-set var.
	rangeSafe map[types.Object]bool
	// unsafe holds variables bound by ranging over anything else.
	unsafe map[types.Object]bool
	// assigns maps a variable to every expression assigned to it.
	assigns map[types.Object][]ast.Expr
	// proven caches the assignment fixpoint.
	proven map[types.Object]bool
}

func collectSafety(pass *analysis.Pass) *safety {
	s := &safety{
		pass:      pass,
		rangeSafe: map[types.Object]bool{},
		unsafe:    map[types.Object]bool{},
		assigns:   map[types.Object][]ast.Expr{},
		proven:    map[types.Object]bool{},
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				s.recordRange(n)
			case *ast.AssignStmt:
				if len(n.Lhs) == len(n.Rhs) {
					for i, lhs := range n.Lhs {
						if ident, ok := lhs.(*ast.Ident); ok && ident.Name != "_" {
							if obj := s.objOf(ident); obj != nil {
								s.assigns[obj] = append(s.assigns[obj], n.Rhs[i])
							}
						}
					}
				} else {
					// Tuple assignment: values are unprovable here.
					for _, lhs := range n.Lhs {
						if ident, ok := lhs.(*ast.Ident); ok && ident.Name != "_" {
							if obj := s.objOf(ident); obj != nil {
								s.unsafe[obj] = true
							}
						}
					}
				}
			case *ast.ValueSpec:
				if len(n.Names) == len(n.Values) {
					for i, name := range n.Names {
						if obj := s.objOf(name); obj != nil {
							s.assigns[obj] = append(s.assigns[obj], n.Values[i])
						}
					}
				}
			}
			return true
		})
	}
	// Fixpoint: a variable is proven safe once every assignment to it is
	// safe (safety of an assignment may depend on other proven vars).
	for changed := true; changed; {
		changed = false
		for obj, rhss := range s.assigns {
			if s.proven[obj] || s.unsafe[obj] {
				continue
			}
			all := true
			for _, rhs := range rhss {
				if !s.safeExpr(rhs) {
					all = false
					break
				}
			}
			if all {
				s.proven[obj] = true
				changed = true
			}
		}
	}
	return s
}

func (s *safety) objOf(ident *ast.Ident) types.Object {
	if obj := s.pass.TypesInfo.Defs[ident]; obj != nil {
		return obj
	}
	return s.pass.TypesInfo.Uses[ident]
}

// recordRange classifies the key/value variables of a range statement.
func (s *safety) recordRange(n *ast.RangeStmt) {
	overLabelSet := s.isLabelSetExpr(n.X)
	for _, e := range []ast.Expr{n.Key, n.Value} {
		ident, ok := e.(*ast.Ident)
		if !ok || ident.Name == "_" {
			continue
		}
		obj := s.objOf(ident)
		if obj == nil {
			continue
		}
		if overLabelSet {
			s.rangeSafe[obj] = true
		} else {
			s.unsafe[obj] = true
		}
	}
}

// isLabelSetExpr reports whether e denotes a var annotated
// //tagdm:label-set, possibly through an index (familyStages[fam]).
func (s *safety) isLabelSetExpr(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := s.pass.TypesInfo.Uses[e]
		return s.pass.Markers.VarHas(obj, "label-set")
	case *ast.SelectorExpr:
		obj := s.pass.TypesInfo.Uses[e.Sel]
		return s.pass.Markers.VarHas(obj, "label-set")
	case *ast.IndexExpr:
		return s.isLabelSetExpr(e.X)
	}
	return false
}

// safeExpr is the label-safety judgment for one expression.
func (s *safety) safeExpr(e ast.Expr) bool {
	e = ast.Unparen(e)
	if s.pass.IsConstString(e) {
		return true
	}
	switch e := e.(type) {
	case *ast.Ident:
		obj := s.pass.TypesInfo.Uses[e]
		if obj == nil {
			return false
		}
		if s.unsafe[obj] {
			return false
		}
		return s.rangeSafe[obj] || s.proven[obj]
	case *ast.CallExpr:
		fn := s.pass.FuncFor(e)
		return fn != nil && s.pass.Markers.FuncHas(fn, "label-sanitizer")
	case *ast.IndexExpr:
		// Indexing a label-set var yields one of its declared elements
		// whatever the index expression evaluates to — the set itself
		// bounds the cardinality (an out-of-range index panics, it never
		// mints a new label).
		return s.isLabelSetExpr(e)
	}
	return false
}
