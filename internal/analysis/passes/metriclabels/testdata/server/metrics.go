// Package server is metriclabels testdata loaded under the import path
// tagdm/internal/server, importing the real obs package so vector types
// resolve exactly as on the tree.
package server

import "tagdm/internal/obs"

const famExact = "exact"

//tagdm:label-set
var families = []string{famExact, "smlsh", "dvfdp"}

//tagdm:label-set
var familyStages = map[string][]string{famExact: {"matrix", "enumerate"}}

// familyOf buckets an arbitrary algorithm name into a bounded label.
//
//tagdm:label-sanitizer
func familyOf(algorithm string) string {
	if algorithm == "Exact" {
		return famExact
	}
	return "other"
}

type stage struct{ Name string }

func record(reg *obs.Registry, algorithm string, stages []stage) {
	solves := reg.CounterVec("solves_total", "solves", "family")
	depth := reg.HistogramVec("stage_seconds", "stage wall", nil, "family", "stage")

	solves.With(famExact).Inc()
	solves.With("smlsh").Inc()
	solves.With(familyOf(algorithm)).Inc()

	fam := familyOf(algorithm)
	solves.With(fam).Inc()

	for _, f := range families {
		solves.With(f).Inc()
		for _, st := range familyStages[f] {
			depth.With(f, st).Observe(1)
		}
	}

	// Indexing a label-set var directly is bounded by the declared set.
	solves.With(families[len(stages)%len(families)]).Inc()

	arbitrary := []string{algorithm}
	solves.With(arbitrary[0]).Inc() // want `metric label "arbitrary\[0\]" is not a constant`

	solves.With(algorithm).Inc() // want `metric label "algorithm" is not a constant`

	for _, st := range stages {
		depth.With(fam, st.Name).Observe(1) // want `metric label "st\.Name" is not a constant`
	}

	for _, raw := range []string{algorithm} {
		solves.With(raw).Inc() // want `metric label "raw" is not a constant`
	}

	reassigned := famExact
	reassigned = algorithm
	solves.With(reassigned).Inc() // want `metric label "reassigned" is not a constant`

	//tagdm:nolint metriclabels -- bench harness, bounded by flag validation
	solves.With(algorithm).Inc()
}
