package ctxflow_test

import (
	"testing"

	"tagdm/internal/analysis/analysistest"
	"tagdm/internal/analysis/passes/ctxflow"
)

func TestCtxflowScoped(t *testing.T) {
	analysistest.Run(t, "testdata/core", "tagdm/internal/core", ctxflow.Analyzer)
}

func TestCtxflowIgnoresUnscopedPackages(t *testing.T) {
	analysistest.Run(t, "testdata/experiments", "tagdm/internal/experiments", ctxflow.Analyzer)
}
