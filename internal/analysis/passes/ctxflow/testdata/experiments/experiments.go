// Package experiments is ctxflow testdata loaded under an out-of-scope
// import path: the offline experiment harness may mint root contexts, so
// nothing here is flagged.
package experiments

import "context"

func runFigure() context.Context {
	return context.Background()
}
