// Package core is ctxflow testdata loaded under the scoped import path
// tagdm/internal/core.
package core

import "context"

func solve(ctx context.Context, n int) error {
	return step(ctx, n)
}

func step(ctx context.Context, n int) error {
	_ = ctx
	_ = n
	return nil
}

func freshRoot() error {
	ctx := context.Background() // want `context\.Background below the facade`
	return step(ctx, 1)
}

func todoRoot() error {
	return step(context.TODO(), 1) // want `context\.TODO below the facade`
}

func nilCtx() error {
	return step(nil, 1) // want `nil context passed to step`
}

func allowedDetached() error {
	//tagdm:nolint ctxflow -- detached maintenance context is deliberate here
	ctx := context.Background()
	return step(ctx, 1)
}

func cancellableOK(ctx context.Context, groups []int) int {
	total := 0
	//tagdm:cancellable
	for _, g := range groups {
		if ctx.Err() != nil {
			break
		}
		total += g
	}
	return total
}

func cancellableDone(ctx context.Context, work chan int) int {
	total := 0
	//tagdm:cancellable
	for {
		select {
		case <-ctx.Done():
			return total
		case v := <-work:
			total += v
		}
	}
}

func cancellableMissing(ctx context.Context, groups []int) int {
	_ = ctx
	total := 0
	//tagdm:cancellable
	for _, g := range groups { // want `loop tagged tagdm:cancellable has no ctx\.Err\(\)/ctx\.Done\(\) check`
		total += g
	}
	return total
}

func untaggedLoop(groups []int) int {
	total := 0
	for _, g := range groups {
		total += g
	}
	return total
}
