// Package ctxflow enforces context discipline in the request path
// (tagdm/internal/core and tagdm/internal/server): every solver and
// handler must operate under the caller's context so cancellation and
// deadlines propagate end to end.
//
// It reports:
//
//   - any call to context.Background() or context.TODO() — these packages
//     sit below the public facade, which is the only place a fresh root
//     context may be minted (main packages and tests are out of scope);
//   - a nil argument passed where the callee expects a context.Context;
//   - a loop tagged `//tagdm:cancellable` whose body contains no
//     ctx.Err()/ctx.Done() check — the tag documents that a loop is a
//     cancellation point, and this check keeps the documentation true.
//
// Suppress a finding with `//tagdm:nolint ctxflow -- <reason>` when a
// detached context is genuinely required (e.g. a background goroutine
// that must outlive the request).
package ctxflow

import (
	"go/ast"
	"go/types"

	"tagdm/internal/analysis"
)

// ScopePaths lists the import paths the analyzer applies to.
var ScopePaths = []string{"tagdm/internal/core", "tagdm/internal/server"}

// Analyzer is the ctxflow check.
var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc:  "enforce context propagation in core and server: no context.Background/TODO below the facade, no nil contexts, and tagged cancellable loops must poll ctx",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if !pass.PathIs(ScopePaths...) {
		return nil
	}
	cancellable := analysis.DirectiveLines(pass.Fset, pass.Files, "cancellable")
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkCall(pass, n)
			case *ast.ForStmt:
				if _, ok := cancellable[pass.LineKey(n.Pos())]; ok {
					checkCancellable(pass, n, n.Body)
				}
			case *ast.RangeStmt:
				if _, ok := cancellable[pass.LineKey(n.Pos())]; ok {
					checkCancellable(pass, n, n.Body)
				}
			}
			return true
		})
	}
	return nil
}

// checkCall flags fresh root contexts and nil contexts at call sites.
func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	fn := pass.FuncFor(call)
	if fn == nil {
		return
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "context" &&
		(fn.Name() == "Background" || fn.Name() == "TODO") {
		pass.Reportf(call.Pos(),
			"context.%s below the facade: thread the caller's ctx instead", fn.Name())
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		if i >= sig.Params().Len() && !sig.Variadic() {
			break
		}
		pi := min(i, sig.Params().Len()-1)
		if pi < 0 || !isContextType(sig.Params().At(pi).Type()) {
			continue
		}
		if tv, ok := pass.TypesInfo.Types[arg]; ok && tv.IsNil() {
			pass.Reportf(arg.Pos(), "nil context passed to %s: pass the caller's ctx", fn.Name())
		}
	}
}

// checkCancellable verifies a tagged loop body polls its context.
func checkCancellable(pass *analysis.Pass, loop ast.Node, body *ast.BlockStmt) {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Err" && sel.Sel.Name != "Done") {
			return true
		}
		if tv, ok := pass.TypesInfo.Types[sel.X]; ok && isContextType(tv.Type) {
			found = true
			return false
		}
		return true
	})
	if !found {
		pass.Reportf(loop.Pos(),
			"loop tagged tagdm:cancellable has no ctx.Err()/ctx.Done() check in its body")
	}
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
