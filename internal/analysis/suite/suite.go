// Package suite assembles the tagdm-vet analyzers and provides the
// standalone driver used by cmd/tagdm-vet's direct mode and by the
// self-check test that keeps `go test ./...` red whenever the tree
// violates one of its own invariants.
package suite

import (
	"tagdm/internal/analysis"
	"tagdm/internal/analysis/load"
	"tagdm/internal/analysis/passes/atomicfield"
	"tagdm/internal/analysis/passes/ctxflow"
	"tagdm/internal/analysis/passes/durorder"
	"tagdm/internal/analysis/passes/errsink"
	"tagdm/internal/analysis/passes/lockscope"
	"tagdm/internal/analysis/passes/metriclabels"
)

// Analyzers returns the full tagdm-vet suite in reporting order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		atomicfield.Analyzer,
		ctxflow.Analyzer,
		durorder.Analyzer,
		errsink.Analyzer,
		lockscope.Analyzer,
		metriclabels.Analyzer,
	}
}

// RunPatterns loads the module packages matched by patterns from the
// module rooted at root and returns every surviving diagnostic.
func RunPatterns(root string, patterns ...string) ([]analysis.Diagnostic, error) {
	pkgs, err := load.Patterns(root, patterns...)
	if err != nil {
		return nil, err
	}
	var all []analysis.Diagnostic
	for _, pkg := range pkgs {
		diags, err := load.Run(pkg, Analyzers())
		if err != nil {
			return nil, err
		}
		all = append(all, diags...)
	}
	analysis.SortDiagnostics(all)
	return all, nil
}
