package suite_test

import (
	"testing"

	"tagdm/internal/analysis/load"
	"tagdm/internal/analysis/suite"
)

// TestSuiteCleanOverRepository is the self-check: `go test ./...` goes red
// the moment any package in the module violates one of the suite's
// invariants. New violations are either real bugs (fix them) or deliberate
// exceptions (annotate them with the relevant //tagdm: directive and a
// reason) — never silent.
func TestSuiteCleanOverRepository(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module")
	}
	root, err := load.ModuleRoot()
	if err != nil {
		t.Fatal(err)
	}
	diags, err := suite.RunPatterns(root, "./...")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
	if len(diags) > 0 {
		t.Logf("the tree violates its own invariants; fix the finding or annotate it (//tagdm:nolint <analyzer> -- reason) with justification")
	}
}
