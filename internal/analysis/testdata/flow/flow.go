// Package flow is LockWalker testdata: each function exercises one shape
// of lock handling the walker must track.
package flow

import "sync"

type S struct {
	mu sync.Mutex
	rw sync.RWMutex
	n  int
}

func (s *S) linear() {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
	s.n--
}

func (s *S) deferred() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

func (s *S) earlyReturn(b bool) int {
	s.rw.RLock()
	if b {
		s.rw.RUnlock()
		return 0
	}
	s.rw.RUnlock()
	return s.n
}

func (s *S) leakyReturn(b bool) int {
	s.mu.Lock()
	if b {
		return s.n // lock still held here
	}
	s.mu.Unlock()
	return 0
}

func (s *S) branchMerge(b bool) {
	if b {
		s.mu.Lock()
	} else {
		s.n++
	}
	s.n++ // mu held on the then-branch: union says held
	if b {
		s.mu.Unlock()
	}
}

func (s *S) loopsAndSwitch(xs []int) {
	for i := 0; i < len(xs); i++ {
		s.mu.Lock()
		s.n += xs[i]
		s.mu.Unlock()
	}
	for range xs {
		s.n++
	}
	switch s.n {
	case 0:
		s.mu.Lock()
		s.n++
		s.mu.Unlock()
	default:
	}
	select {}
}
