// Package marked is ComputeMarkers testdata: declarative directives plus
// call chains the derived-blocking fixpoint must classify.
package marked

import "sync"

// Declared carries an explicit marker with no blocking body.
//
//tagdm:blocking
func Declared() {}

// Overridden would derive blocking from its channel send, but the explicit
// directive wins — the documented contract of APIs with a buffered
// fast path.
//
//tagdm:nonblocking
func Overridden(ch chan int) { ch <- 1 }

// Derives blocks via a channel receive.
func Derives(ch chan int) int { return <-ch }

// Transitively blocks by calling Derives — the same-package fixpoint.
func Transitively(ch chan int) int { return Derives(ch) }

// ViaStdlib blocks through the stdlib table.
func ViaStdlib(wg *sync.WaitGroup) { wg.Wait() }

// Pure stays unclassified.
func Pure(a, b int) int { return a + b }

// T carries a field directive.
type T struct {
	//tagdm:mutex nonblocking
	Mu sync.Mutex
	N  int
}

// Method gives FuncKey a receiver to render.
func (t *T) Method() {}

// Iface carries an interface-method directive.
type Iface interface {
	//tagdm:blocking
	Wait()
}

// Sets is a package-level var with a directive.
//
//tagdm:label-set
var Sets = []string{"a", "b"}
