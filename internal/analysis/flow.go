package analysis

import (
	"go/ast"
	"go/types"
)

// HeldLock is one tracked mutex currently held at a program point.
type HeldLock struct {
	// Key is the source rendering of the lock receiver ("s.mu", "l.wmu"),
	// used to pair Lock with Unlock inside one function.
	Key string
	// Pos is where the lock was acquired.
	Pos ast.Node
	// Deferred means the matching unlock is registered via defer, so the
	// lock is legitimately held until every return.
	Deferred bool
	// RLock distinguishes read acquisition on an RWMutex.
	RLock bool
}

// LockEvent classifies a mutex method call found by the walker.
type LockEvent int

const (
	NoLockEvent LockEvent = iota
	AcquireEvent
	ReleaseEvent
)

// lockCall decodes expr as a call to a Lock/RLock/Unlock/RUnlock method on
// a sync.Mutex/sync.RWMutex-typed selector and returns the event, the
// receiver key, and whether it is the read side. TryLock never blocks and
// is ignored.
func lockCall(info *types.Info, expr ast.Expr) (ev LockEvent, key string, rlock bool, recv types.Type, field string) {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok {
		return NoLockEvent, "", false, nil, ""
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return NoLockEvent, "", false, nil, ""
	}
	switch sel.Sel.Name {
	case "Lock":
		ev = AcquireEvent
	case "RLock":
		ev, rlock = AcquireEvent, true
	case "Unlock":
		ev = ReleaseEvent
	case "RUnlock":
		ev, rlock = ReleaseEvent, true
	default:
		return NoLockEvent, "", false, nil, ""
	}
	// The receiver must be a sync mutex value: s.mu, l.wmu, or a bare mu.
	recvExpr := ast.Unparen(sel.X)
	tv, ok := info.Types[recvExpr]
	if !ok || !isSyncMutex(tv.Type) {
		return NoLockEvent, "", false, nil, ""
	}
	if fieldSel, ok := recvExpr.(*ast.SelectorExpr); ok {
		if s := info.Selections[fieldSel]; s != nil {
			recv, field = s.Recv(), fieldSel.Sel.Name
		}
	}
	return ev, types.ExprString(recvExpr), rlock, recv, field
}

func isSyncMutex(t types.Type) bool {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync" {
		return false
	}
	return named.Obj().Name() == "Mutex" || named.Obj().Name() == "RWMutex"
}

// LockWalker drives a per-function, per-statement traversal that tracks
// which mutexes are held. It is a syntactic approximation, not a dataflow
// analysis: states from if/else branches are unioned (a lock held on any
// incoming branch counts as held), loops are assumed lock-balanced, and
// function literals are not entered. That is precise enough for this
// codebase's convention of block-scoped critical sections, and errs toward
// reporting when lock handling is irregular — which is exactly the smell
// the suite exists to surface.
type LockWalker struct {
	Info *types.Info
	// Tracked reports whether the mutex behind a lock call participates in
	// tracking (e.g. only fields marked //tagdm:mutex nonblocking).
	Tracked func(recv types.Type, field string, key string) bool
	// Visit is called for every statement in source order with the locks
	// held on entry to that statement.
	Visit func(stmt ast.Stmt, held []HeldLock)
	// VisitReturn, when set, is called for each return statement with the
	// locks still held there (deferred unlocks excluded).
	VisitReturn func(ret *ast.ReturnStmt, held []HeldLock)
}

// WalkFunc traverses one function body.
func (w *LockWalker) WalkFunc(body *ast.BlockStmt) {
	if body == nil {
		return
	}
	w.walkBlock(body.List, nil)
}

// walkBlock interprets stmts starting with the held set; it returns the
// held set at fall-through exit and whether the block always terminates
// (return/panic) before falling through.
func (w *LockWalker) walkBlock(stmts []ast.Stmt, held []HeldLock) (out []HeldLock, terminated bool) {
	held = append([]HeldLock(nil), held...)
	for _, stmt := range stmts {
		if w.Visit != nil {
			w.Visit(stmt, held)
		}
		switch s := stmt.(type) {
		case *ast.ExprStmt:
			held = w.applyLockEvent(s.X, held, false)
		case *ast.DeferStmt:
			held = w.applyLockEvent(s.Call, held, true)
		case *ast.ReturnStmt:
			if w.VisitReturn != nil {
				w.VisitReturn(s, nonDeferred(held))
			}
			return held, true
		case *ast.BranchStmt:
			// break/continue/goto: stop interpreting this block; treat as
			// termination of the linear path.
			return held, true
		case *ast.BlockStmt:
			var term bool
			held, term = w.walkBlock(s.List, held)
			if term {
				return held, true
			}
		case *ast.IfStmt:
			held = w.walkIf(s, held)
		case *ast.ForStmt:
			if s.Init != nil && w.Visit != nil {
				w.Visit(s.Init, held)
			}
			if s.Post != nil && w.Visit != nil {
				w.Visit(s.Post, held)
			}
			w.walkBlock(s.Body.List, held)
		case *ast.RangeStmt:
			w.walkBlock(s.Body.List, held)
		case *ast.SwitchStmt:
			held = w.walkClauses(caseBodies(s.Body), held)
		case *ast.TypeSwitchStmt:
			held = w.walkClauses(caseBodies(s.Body), held)
		case *ast.SelectStmt:
			held = w.walkClauses(commBodies(s.Body), held)
		case *ast.LabeledStmt:
			var term bool
			held, term = w.walkBlock([]ast.Stmt{s.Stmt}, held)
			if term {
				return held, true
			}
		}
	}
	return held, false
}

// walkIf merges the fall-through states of both branches (union of held
// locks); a branch that terminates contributes nothing.
func (w *LockWalker) walkIf(s *ast.IfStmt, held []HeldLock) []HeldLock {
	if s.Init != nil && w.Visit != nil {
		w.Visit(s.Init, held)
	}
	thenOut, thenTerm := w.walkBlock(s.Body.List, held)
	elseOut, elseTerm := held, false
	switch e := s.Else.(type) {
	case *ast.BlockStmt:
		elseOut, elseTerm = w.walkBlock(e.List, held)
	case *ast.IfStmt:
		elseOut, elseTerm = w.walkBlock([]ast.Stmt{e}, held)
	case nil:
	}
	switch {
	case thenTerm && elseTerm:
		return held
	case thenTerm:
		return elseOut
	case elseTerm:
		return thenOut
	default:
		return unionHeld(thenOut, elseOut)
	}
}

func (w *LockWalker) walkClauses(bodies [][]ast.Stmt, held []HeldLock) []HeldLock {
	out := held
	for _, body := range bodies {
		clauseOut, term := w.walkBlock(body, held)
		if !term {
			out = unionHeld(out, clauseOut)
		}
	}
	return out
}

// applyLockEvent updates held for a (possibly deferred) lock method call.
func (w *LockWalker) applyLockEvent(expr ast.Expr, held []HeldLock, deferred bool) []HeldLock {
	ev, key, rlock, recv, field := lockCall(w.Info, expr)
	if ev == NoLockEvent {
		return held
	}
	if w.Tracked != nil && !w.Tracked(recv, field, key) {
		return held
	}
	switch {
	case ev == AcquireEvent && !deferred:
		return append(held, HeldLock{Key: key, Pos: expr, RLock: rlock})
	case ev == ReleaseEvent && deferred:
		// defer mu.Unlock(): the most recent matching acquisition is held
		// to end of function by design.
		for i := len(held) - 1; i >= 0; i-- {
			if held[i].Key == key && held[i].RLock == rlock && !held[i].Deferred {
				held[i].Deferred = true
				break
			}
		}
		return held
	case ev == ReleaseEvent && !deferred:
		for i := len(held) - 1; i >= 0; i-- {
			if held[i].Key == key && held[i].RLock == rlock {
				return append(append([]HeldLock(nil), held[:i]...), held[i+1:]...)
			}
		}
		return held
	}
	return held
}

// StmtExprs returns the expressions a statement evaluates directly,
// excluding nested statements (the walker visits those on their own).
// Analyzers scan these for calls and channel operations so each
// expression is considered exactly once, with the held-lock state of the
// statement that evaluates it.
func StmtExprs(stmt ast.Stmt) []ast.Expr {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		return []ast.Expr{s.X}
	case *ast.AssignStmt:
		return append(append([]ast.Expr{}, s.Rhs...), s.Lhs...)
	case *ast.ReturnStmt:
		return s.Results
	case *ast.IfStmt:
		return []ast.Expr{s.Cond}
	case *ast.ForStmt:
		if s.Cond != nil {
			return []ast.Expr{s.Cond}
		}
	case *ast.RangeStmt:
		return []ast.Expr{s.X}
	case *ast.SwitchStmt:
		if s.Tag != nil {
			return []ast.Expr{s.Tag}
		}
	case *ast.SendStmt:
		return []ast.Expr{s.Chan, s.Value}
	case *ast.IncDecStmt:
		return []ast.Expr{s.X}
	case *ast.DeclStmt:
		var out []ast.Expr
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					out = append(out, vs.Values...)
				}
			}
		}
		return out
	case *ast.GoStmt:
		// The spawned call's arguments are evaluated here; the callee body
		// runs elsewhere.
		return append([]ast.Expr{}, s.Call.Args...)
	case *ast.DeferStmt:
		return append([]ast.Expr{}, s.Call.Args...)
	}
	return nil
}

func nonDeferred(held []HeldLock) []HeldLock {
	var out []HeldLock
	for _, h := range held {
		if !h.Deferred {
			out = append(out, h)
		}
	}
	return out
}

func unionHeld(a, b []HeldLock) []HeldLock {
	out := append([]HeldLock(nil), a...)
	for _, h := range b {
		found := false
		for _, have := range out {
			if have.Key == h.Key && have.RLock == h.RLock {
				found = true
				break
			}
		}
		if !found {
			out = append(out, h)
		}
	}
	return out
}

func caseBodies(block *ast.BlockStmt) [][]ast.Stmt {
	var out [][]ast.Stmt
	for _, clause := range block.List {
		if cc, ok := clause.(*ast.CaseClause); ok {
			out = append(out, cc.Body)
		}
	}
	return out
}

func commBodies(block *ast.BlockStmt) [][]ast.Stmt {
	var out [][]ast.Stmt
	for _, clause := range block.List {
		if cc, ok := clause.(*ast.CommClause); ok {
			out = append(out, cc.Body)
		}
	}
	return out
}
