package analysis

import (
	"bytes"
	"encoding/gob"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Markers are the per-package facts the suite shares across packages: the
// `//tagdm:` directives written on declarations, plus derived properties
// (currently "blocking": the function's body performs a blocking
// operation). They travel between packages as vetx fact files under
// `go vet -vettool` and in memory under the standalone driver, so an
// analyzer checking internal/server sees the `//tagdm:nonblocking`
// annotation on wal.(*Log).Enqueue.
//
// Directive placement and object keys:
//
//	//tagdm:nonblocking        on a func/method decl   key "Recv.Name" or "Name"
//	//tagdm:blocking           on a func or interface method
//	//tagdm:label-sanitizer    on a func decl
//	//tagdm:label-set          on a package-level var decl   key "Name"
//	//tagdm:mutex nonblocking  on a struct mutex field       key "Type.Field"
//
// A directive is a comment line beginning exactly with "//tagdm:" (no
// space), following the Go directive convention so gofmt leaves it alone
// and godoc hides it.
type Markers struct {
	PkgPath string
	// Objects maps an object key to its marker words. A directive
	// "//tagdm:mutex nonblocking" yields the marker "mutex-nonblocking";
	// single-word directives yield themselves.
	Objects map[string][]string
}

// Has reports whether key carries marker.
func (m *Markers) Has(key, marker string) bool {
	if m == nil {
		return false
	}
	for _, got := range m.Objects[key] {
		if got == marker {
			return true
		}
	}
	return false
}

func (m *Markers) add(key, marker string) {
	if !m.Has(key, marker) {
		m.Objects[key] = append(m.Objects[key], marker)
	}
}

// Encode serializes the markers for a vetx fact file.
func (m *Markers) Encode() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(m)
	return buf.Bytes(), err
}

// DecodeMarkers reads a vetx fact file produced by Encode.
func DecodeMarkers(data []byte) (*Markers, error) {
	var m Markers
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&m); err != nil {
		return nil, err
	}
	return &m, nil
}

// MarkerView exposes the markers of a package set: the package under
// analysis plus its (transitive) imports.
type MarkerView struct {
	pkgs map[string]*Markers
}

// NewMarkerView builds a view; Add registers per-package markers.
func NewMarkerView() *MarkerView { return &MarkerView{pkgs: map[string]*Markers{}} }

// Add registers one package's markers, replacing any previous entry.
func (v *MarkerView) Add(m *Markers) { v.pkgs[m.PkgPath] = m }

// Pkg returns the markers of one package (nil when unknown).
func (v *MarkerView) Pkg(path string) *Markers { return v.pkgs[path] }

// FuncHas reports whether fn carries marker, consulting the directives of
// fn's own package.
func (v *MarkerView) FuncHas(fn *types.Func, marker string) bool {
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	return v.pkgs[fn.Pkg().Path()].Has(FuncKey(fn), marker)
}

// FieldHas reports whether the field named field on the (possibly
// pointer-wrapped) named type recv carries marker.
func (v *MarkerView) FieldHas(recv types.Type, field, marker string) bool {
	named := namedOf(recv)
	if named == nil || named.Obj().Pkg() == nil {
		return false
	}
	key := named.Obj().Name() + "." + field
	return v.pkgs[named.Obj().Pkg().Path()].Has(key, marker)
}

// VarHas reports whether the package-level variable carries marker.
func (v *MarkerView) VarHas(obj types.Object, marker string) bool {
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	return v.pkgs[obj.Pkg().Path()].Has(obj.Name(), marker)
}

// FuncKey renders the marker key of a function or method: "Name" for a
// package-level function, "Recv.Name" for a method (pointer receivers and
// interface methods use the bare type name).
func FuncKey(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return fn.Name()
	}
	named := namedOf(sig.Recv().Type())
	if named == nil {
		return fn.Name()
	}
	return named.Obj().Name() + "." + fn.Name()
}

func namedOf(t types.Type) *types.Named {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// directiveMarkers extracts the markers of one comment group: every line
// "//tagdm:word rest..." becomes "word-rest..." joined by dashes
// ("//tagdm:mutex nonblocking" → "mutex-nonblocking"); nolint and
// allow-discard lines are positional, not declarative, and are skipped.
func directiveMarkers(doc *ast.CommentGroup) []string {
	if doc == nil {
		return nil
	}
	var out []string
	for _, c := range doc.List {
		rest, ok := strings.CutPrefix(c.Text, "//tagdm:")
		if !ok {
			continue
		}
		words := strings.Fields(rest)
		if len(words) == 0 || words[0] == "nolint" || words[0] == "allow-discard" || words[0] == "cancellable" {
			continue
		}
		out = append(out, strings.Join(words, "-"))
	}
	return out
}

// stdlibBlocking lists standard-library operations the suite treats as
// blocking (disk, network, scheduling). Keys are "pkgpath.FuncKey".
var stdlibBlocking = map[string]bool{
	"os.File.Write": true, "os.File.WriteString": true, "os.File.WriteAt": true,
	"os.File.Read": true, "os.File.ReadAt": true, "os.File.ReadFrom": true,
	"os.File.Sync": true, "os.File.Close": true, "os.File.Seek": true,
	"os.File.Truncate": true,
	"os.Open":          true, "os.OpenFile": true, "os.Create": true,
	"os.Remove": true, "os.RemoveAll": true, "os.Rename": true,
	"os.Mkdir": true, "os.MkdirAll": true, "os.ReadDir": true,
	"os.ReadFile": true, "os.WriteFile": true, "os.Truncate": true,
	"os.Stat": true, "os.Lstat": true,
	"io.Copy": true, "io.CopyN": true, "io.CopyBuffer": true,
	"io.ReadAll": true, "io.ReadFull": true, "io.WriteString": true,
	"bufio.Writer.Flush": true, "bufio.Writer.Write": true,
	"bufio.Writer.WriteString": true, "bufio.Writer.ReadFrom": true,
	"bufio.Reader.Read":             true,
	"net/http.ResponseWriter.Write": true, "net/http.ResponseWriter.WriteHeader": true,
	"time.Sleep":          true,
	"sync.WaitGroup.Wait": true, "sync.Cond.Wait": true,
}

// ComputeMarkers scans one type-checked package: directive markers from
// declaration comments, then the derived "blocking" marker — a function
// blocks if its body (function literals excluded: goroutines and deferred
// closures run on their own schedule) contains a channel operation outside
// a select with a default case, a select without a default case, or a call
// to a function already classified as blocking (stdlib table, imported
// markers via view, or same-package fixpoint). An explicit
// //tagdm:nonblocking directive overrides derivation — that is the
// documented contract of APIs like wal.(*Log).Enqueue, whose buffered
// fast-path send would otherwise classify it as blocking.
func ComputeMarkers(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, view *MarkerView) *Markers {
	m := &Markers{PkgPath: pkg.Path(), Objects: map[string][]string{}}

	// Pass 1: directives.
	type fnDecl struct {
		key  string
		body *ast.BlockStmt
	}
	var fns []fnDecl
	for _, f := range files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				var key string
				if obj, ok := info.Defs[d.Name].(*types.Func); ok {
					key = FuncKey(obj)
				} else {
					key = d.Name.Name
				}
				for _, marker := range directiveMarkers(d.Doc) {
					m.add(key, marker)
				}
				fns = append(fns, fnDecl{key: key, body: d.Body})
			case *ast.GenDecl:
				collectGenDeclMarkers(d, m)
			}
		}
	}

	// Pass 2: derived blocking classification, iterated to a fixpoint so
	// same-package call chains propagate.
	classify := func(call *ast.CallExpr) bool {
		return CallBlocks(info, call, m, view)
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range fns {
			if fn.body == nil || m.Has(fn.key, "blocking") || m.Has(fn.key, "nonblocking") {
				continue
			}
			if bodyBlocks(fn.body, classify) {
				m.add(fn.key, "blocking")
				changed = true
			}
		}
	}
	return m
}

// collectGenDeclMarkers reads directives on vars, struct fields and
// interface methods of one declaration group.
func collectGenDeclMarkers(d *ast.GenDecl, m *Markers) {
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.ValueSpec:
			markers := append(directiveMarkers(d.Doc), directiveMarkers(s.Doc)...)
			for _, name := range s.Names {
				for _, marker := range markers {
					m.add(name.Name, marker)
				}
			}
		case *ast.TypeSpec:
			switch t := s.Type.(type) {
			case *ast.StructType:
				for _, field := range t.Fields.List {
					for _, marker := range directiveMarkers(field.Doc) {
						for _, name := range field.Names {
							m.add(s.Name.Name+"."+name.Name, marker)
						}
					}
				}
			case *ast.InterfaceType:
				for _, method := range t.Methods.List {
					for _, marker := range directiveMarkers(method.Doc) {
						for _, name := range method.Names {
							m.add(s.Name.Name+"."+name.Name, marker)
						}
					}
				}
			}
		}
	}
}

// CallBlocks classifies one call expression as blocking, consulting the
// current package's markers (local, may still be mid-fixpoint), the
// cross-package view, and the stdlib table. Unknown callees (function
// values, unresolved) are treated as non-blocking — the suite prefers
// false negatives over noise, and the tracked-lock regions are small.
func CallBlocks(info *types.Info, call *ast.CallExpr, local *Markers, view *MarkerView) bool {
	fn := funcFor(info, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	key := FuncKey(fn)
	if fn.Pkg().Path() == local.PkgPath {
		if local.Has(key, "nonblocking") {
			return false
		}
		return local.Has(key, "blocking")
	}
	if view.FuncHas(fn, "nonblocking") {
		return false
	}
	if view.FuncHas(fn, "blocking") || view.FuncHas(fn, "blocking-derived") {
		return true
	}
	return stdlibBlocking[fn.Pkg().Path()+"."+key]
}

func funcFor(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel := info.Selections[fun]; sel != nil {
			fn, _ := sel.Obj().(*types.Func)
			return fn
		}
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// bodyBlocks reports whether a statement block contains a blocking
// operation, with callBlocks classifying calls. Function literals are not
// descended into; select statements with a default case shield the channel
// operations of their comm clauses.
func bodyBlocks(body ast.Node, callBlocks func(*ast.CallExpr) bool) bool {
	found := false
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		if found || n == nil {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.GoStmt:
			return false // the goroutine blocks, not the caller
		case *ast.SendStmt:
			found = true
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
				return false
			}
		case *ast.SelectStmt:
			hasDefault := false
			for _, clause := range n.Body.List {
				if cc, ok := clause.(*ast.CommClause); ok && cc.Comm == nil {
					hasDefault = true
				}
			}
			if !hasDefault {
				found = true
				return false
			}
			// Walk only clause bodies: the comm clauses themselves are
			// non-blocking under a default case.
			for _, clause := range n.Body.List {
				if cc, ok := clause.(*ast.CommClause); ok {
					for _, s := range cc.Body {
						ast.Inspect(s, walk)
					}
				}
			}
			return false
		case *ast.CallExpr:
			if callBlocks(n) {
				found = true
				return false
			}
		}
		return true
	}
	ast.Inspect(body, walk)
	return found
}
