// Package analysistest checks an analyzer against a testdata package, in
// the manner of golang.org/x/tools/go/analysis/analysistest: source lines
// carry `// want "regexp"` comments naming the diagnostics the analyzer
// must report on that line, and the harness fails the test on any missing
// or unexpected finding. Testdata packages are loaded under a claimed
// import path (see load.Dir) so path-scoped analyzers behave exactly as
// they do on the production tree.
package analysistest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"tagdm/internal/analysis"
	"tagdm/internal/analysis/load"
)

// expectation is one `// want` pattern at a file:line.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// wantRE matches the trailing want comment of a source line.
var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)

// parseWants scans one file's source for want expectations.
func parseWants(path string) ([]*expectation, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var out []*expectation
	for i, line := range strings.Split(string(data), "\n") {
		m := wantRE.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		rest := strings.TrimSpace(m[1])
		for rest != "" {
			if rest[0] != '"' && rest[0] != '`' {
				return nil, fmt.Errorf("%s:%d: malformed want comment near %q", path, i+1, rest)
			}
			lit, remainder, err := cutStringLit(rest)
			if err != nil {
				return nil, fmt.Errorf("%s:%d: %v", path, i+1, err)
			}
			re, err := regexp.Compile(lit)
			if err != nil {
				return nil, fmt.Errorf("%s:%d: bad want pattern: %v", path, i+1, err)
			}
			out = append(out, &expectation{file: path, line: i + 1, pattern: re})
			rest = strings.TrimSpace(remainder)
		}
	}
	return out, nil
}

// cutStringLit splits one leading Go string literal off s.
func cutStringLit(s string) (lit, rest string, err error) {
	quote := s[0]
	for i := 1; i < len(s); i++ {
		switch {
		case quote == '"' && s[i] == '\\':
			i++
		case s[i] == quote:
			unq, err := strconv.Unquote(s[:i+1])
			if err != nil {
				return "", "", fmt.Errorf("unquoting %q: %v", s[:i+1], err)
			}
			return unq, s[i+1:], nil
		}
	}
	return "", "", fmt.Errorf("unterminated string in want comment: %q", s)
}

// Run loads dir as a package claiming import path asPath, applies the
// analyzer, and compares its diagnostics against the `// want` comments.
func Run(t *testing.T, dir, asPath string, a *analysis.Analyzer) {
	t.Helper()
	pkg, err := load.Dir(dir, asPath)
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	diags, err := load.Run(pkg, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	var wants []*expectation
	for _, f := range pkg.Files {
		path := pkg.Fset.Position(f.Pos()).Filename
		ws, err := parseWants(path)
		if err != nil {
			t.Fatal(err)
		}
		wants = append(wants, ws...)
	}

	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if !w.matched && filepath.Clean(w.file) == filepath.Clean(d.Pos.Filename) &&
				w.line == d.Pos.Line && w.pattern.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none",
				w.file, w.line, w.pattern)
		}
	}
}
