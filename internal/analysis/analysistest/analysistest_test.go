package analysistest_test

import (
	"testing"

	"tagdm/internal/analysis/analysistest"
	"tagdm/internal/analysis/passes/errsink"
)

// TestHarnessAgainstRealTestdata runs the harness over an analyzer's own
// testdata, exercising want-comment parsing and matching end to end: the
// errsink testdata contains flagged lines (regex wants), annotated clean
// lines, and plain clean lines, so a harness that over- or under-matches
// fails this test through the inner *testing.T.
func TestHarnessAgainstRealTestdata(t *testing.T) {
	analysistest.Run(t, "../passes/errsink/testdata/wal", "tagdm/internal/wal", errsink.Analyzer)
}
