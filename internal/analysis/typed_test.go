package analysis_test

import (
	"go/ast"
	"go/types"
	"strings"
	"testing"

	"tagdm/internal/analysis"
	"tagdm/internal/analysis/load"
)

// loadTestdata loads one testdata package through the standalone loader,
// which computes markers exactly as the drivers do.
func loadTestdata(t *testing.T, dir, asPath string) *load.Package {
	t.Helper()
	pkg, err := load.Dir(dir, asPath)
	if err != nil {
		t.Fatal(err)
	}
	return pkg
}

func funcDecl(t *testing.T, pkg *load.Package, name string) *ast.FuncDecl {
	t.Helper()
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == name {
				return fd
			}
		}
	}
	t.Fatalf("no function %q in %s", name, pkg.ImportPath)
	return nil
}

func TestComputeMarkersFromSource(t *testing.T) {
	pkg := loadTestdata(t, "testdata/marked", "example.com/marked")
	m := pkg.Markers.Pkg("example.com/marked")
	if m == nil {
		t.Fatal("no markers for the loaded package")
	}
	cases := []struct {
		key, marker string
		want        bool
	}{
		{"Declared", "blocking", true},
		{"Overridden", "nonblocking", true},
		{"Overridden", "blocking", false}, // directive overrides derivation
		{"Derives", "blocking", true},
		{"Transitively", "blocking", true}, // same-package fixpoint
		{"ViaStdlib", "blocking", true},    // sync.WaitGroup.Wait via the table
		{"Pure", "blocking", false},
		{"T.Mu", "mutex-nonblocking", true},
		{"Iface.Wait", "blocking", true},
		{"Sets", "label-set", true},
	}
	for _, c := range cases {
		if got := m.Has(c.key, c.marker); got != c.want {
			t.Errorf("Has(%q, %q) = %v, want %v", c.key, c.marker, got, c.want)
		}
	}

	// The view-level accessors resolve through types objects.
	methodDecl := funcDecl(t, pkg, "Method")
	methodObj, ok := pkg.Info.Defs[methodDecl.Name].(*types.Func)
	if !ok {
		t.Fatal("no *types.Func for Method")
	}
	if got := analysis.FuncKey(methodObj); got != "T.Method" {
		t.Errorf("FuncKey(T.Method) = %q", got)
	}
	if recv := methodObj.Signature().Recv(); recv == nil ||
		!pkg.Markers.FieldHas(recv.Type(), "Mu", "mutex-nonblocking") {
		t.Error("FieldHas(T.Mu, mutex-nonblocking) = false")
	}
	setsObj := pkg.Types.Scope().Lookup("Sets")
	if setsObj == nil {
		t.Fatal("no object for Sets")
	}
	if !pkg.Markers.VarHas(setsObj, "label-set") {
		t.Error("VarHas(Sets, label-set) = false")
	}
}

func TestLockWalker(t *testing.T) {
	pkg := loadTestdata(t, "testdata/flow", "example.com/flow")

	type visit struct {
		stmt ast.Stmt
		keys []string
	}
	walk := func(name string) (visits []visit, returnsHeld [][]string) {
		w := &analysis.LockWalker{
			Info: pkg.Info,
			Visit: func(stmt ast.Stmt, held []analysis.HeldLock) {
				keys := []string{}
				for _, h := range held {
					keys = append(keys, h.Key)
				}
				visits = append(visits, visit{stmt, keys})
			},
			VisitReturn: func(ret *ast.ReturnStmt, held []analysis.HeldLock) {
				keys := []string{}
				for _, h := range held {
					keys = append(keys, h.Key)
				}
				returnsHeld = append(returnsHeld, keys)
			},
		}
		w.WalkFunc(funcDecl(t, pkg, name).Body)
		return visits, returnsHeld
	}
	// heldAtIncDec returns the held-lock keys at each s.n++/s.n-- statement
	// in visit order — the probe statements the testdata plants inside and
	// outside critical sections.
	heldAtIncDec := func(visits []visit) [][]string {
		var out [][]string
		for _, v := range visits {
			if _, ok := v.stmt.(*ast.IncDecStmt); ok {
				out = append(out, v.keys)
			}
		}
		return out
	}

	t.Run("linear", func(t *testing.T) {
		visits, _ := walk("linear")
		probes := heldAtIncDec(visits)
		// s.n++ under the lock, s.n-- after the unlock.
		if len(probes) != 2 || len(probes[0]) != 1 || probes[0][0] != "s.mu" || len(probes[1]) != 0 {
			t.Errorf("held at probes = %v, want [[s.mu] []]", probes)
		}
	})

	t.Run("deferred unlock is held but excluded at return", func(t *testing.T) {
		_, rets := walk("deferred")
		if len(rets) != 1 || len(rets[0]) != 0 {
			t.Errorf("non-deferred locks at return = %v, want none", rets)
		}
	})

	t.Run("early return after explicit unlock", func(t *testing.T) {
		_, rets := walk("earlyReturn")
		if len(rets) != 2 {
			t.Fatalf("want both returns visited, got %v", rets)
		}
		for _, keys := range rets {
			if len(keys) != 0 {
				t.Errorf("lock reported held at a return that follows RUnlock: %v", rets)
			}
		}
	})

	t.Run("leaky return is reported held", func(t *testing.T) {
		_, rets := walk("leakyReturn")
		leaks := 0
		for _, keys := range rets {
			if len(keys) == 1 && keys[0] == "s.mu" {
				leaks++
			}
		}
		if leaks != 1 {
			t.Errorf("want exactly one return with s.mu held, got %v", rets)
		}
	})

	t.Run("branch union", func(t *testing.T) {
		visits, _ := walk("branchMerge")
		probes := heldAtIncDec(visits)
		// First probe is the else-branch s.n++ (no lock on that path);
		// second is the post-if s.n++, where the union of branch exits
		// reports s.mu held.
		if len(probes) != 2 || len(probes[0]) != 0 ||
			len(probes[1]) != 1 || probes[1][0] != "s.mu" {
			t.Errorf("held at probes = %v, want [[] [s.mu]]", probes)
		}
	})

	t.Run("loops and switch stay balanced", func(t *testing.T) {
		visits, rets := walk("loopsAndSwitch")
		probes := heldAtIncDec(visits)
		// Loop-init i := 0, range-body s.n++ (unlocked), case-body s.n++
		// (locked): the walker enters loop bodies and switch clauses, and
		// balanced lock/unlock pairs leave nothing held at the end.
		if len(probes) < 2 {
			t.Fatalf("too few probes visited: %v", probes)
		}
		last := visits[len(visits)-1]
		if _, ok := last.stmt.(*ast.SelectStmt); !ok || len(last.keys) != 0 {
			t.Errorf("final select visited with %v held (stmt %T), want none", last.keys, last.stmt)
		}
		if len(rets) != 0 {
			t.Errorf("unexpected returns: %v", rets)
		}
	})
}

func TestPassHelpersAndLoadRun(t *testing.T) {
	pkg := loadTestdata(t, "testdata/marked", "example.com/marked")

	var diags []analysis.Diagnostic
	probe := &analysis.Analyzer{
		Name: "probe",
		Doc:  "reports every function declaration, exercising Pass helpers",
		Run: func(pass *analysis.Pass) error {
			if !pass.PathIs("example.com/marked") {
				return nil
			}
			for _, f := range pass.Files {
				for _, d := range f.Decls {
					fd, ok := d.(*ast.FuncDecl)
					if !ok {
						continue
					}
					if pass.InTestFile(fd.Pos()) {
						continue
					}
					pass.Reportf(fd.Pos(), "func %s", fd.Name.Name)
				}
			}
			return nil
		},
	}
	got, err := load.Run(pkg, []*analysis.Analyzer{probe})
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, d := range got {
		if d.Analyzer != "probe" {
			t.Fatalf("diagnostic from %q", d.Analyzer)
		}
		name := strings.TrimPrefix(d.Message, "func ")
		names[name] = true
		diags = append(diags, d)
	}
	for _, want := range []string{"Declared", "Overridden", "Derives", "Pure", "Method"} {
		if !names[want] {
			t.Errorf("probe missed %s (got %v)", want, names)
		}
	}
	for i := 1; i < len(diags); i++ {
		if diags[i].Pos.Line < diags[i-1].Pos.Line {
			t.Fatal("load.Run did not sort diagnostics")
		}
	}
}
