// Package unitchecker implements the tool side of the `go vet -vettool`
// protocol for the tagdm-vet suite. The go command plans one "vet unit"
// per compilation: it writes a JSON config file naming the package's
// sources, its import map, the gc export data of every dependency, and the
// fact ("vetx") files earlier units produced, then invokes the tool as
//
//	tagdm-vet <unit>.cfg
//
// The tool must type-check the unit, read the markers its dependencies
// exported, write its own markers to cfg.VetxOutput, and report
// diagnostics on stderr with a nonzero exit. Two probe invocations come
// first: `-V=full` (a version line the go command uses as a cache key) and
// `-flags` (a JSON list of tool flags; the suite has none).
//
// Markers travel between units as gob-encoded vetx files, so an analyzer
// checking tagdm/internal/server sees the //tagdm:nonblocking directive on
// wal.(*Log).Enqueue exactly as it does under the standalone driver in
// internal/analysis/load. Packages outside the module cannot carry tagdm:
// directives, so their units take a fast path that writes empty markers
// without type-checking — stdlib blocking behavior comes from the static
// table in internal/analysis, not from facts.
package unitchecker

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"strings"

	"tagdm/internal/analysis"
)

// modulePath scopes the fast path: only packages under this module can
// carry tagdm: directives or violate tagdm invariants.
const modulePath = "tagdm"

// Config mirrors the vet config JSON the go command writes for each unit
// (cmd/go/internal/work's vetConfig); fields the suite ignores are listed
// so unknown-field decoding stays strict about shape drift.
type Config struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Main dispatches one tool invocation: the version and flag probes, or a
// unit config. It exits the process: 0 clean, 1 operational failure, 2
// when diagnostics were reported.
func Main(analyzers []*analysis.Analyzer) {
	progname := filepath.Base(os.Args[0])
	if len(os.Args) != 2 {
		fmt.Fprintf(os.Stderr, "usage: %s -V=full | -flags | <unit>.cfg\n", progname)
		os.Exit(1)
	}
	switch arg := os.Args[1]; {
	case arg == "-V=full":
		printVersion(progname)
	case strings.HasPrefix(arg, "-V"):
		fmt.Printf("%s version devel\n", progname)
	case arg == "-flags":
		// The go command probes for tool flags it may forward; the suite
		// takes none beyond the protocol itself.
		fmt.Println("[]")
	case strings.HasSuffix(arg, ".cfg"):
		if err := runUnit(arg, analyzers); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
			os.Exit(1)
		}
	default:
		fmt.Fprintf(os.Stderr, "usage: %s -V=full | -flags | <unit>.cfg\n", progname)
		os.Exit(1)
	}
	os.Exit(0)
}

// printVersion emits the line the go command parses as the tool's cache
// key: "<name> version devel ... buildID=<hex>". Hashing the executable
// into the line makes a rebuilt tool invalidate cached vet results.
func printVersion(progname string) {
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			_, _ = io.Copy(h, f)
			_ = f.Close()
		}
	}
	fmt.Printf("%s version devel buildID=%x\n", progname, h.Sum(nil))
}

// runUnit analyzes one vet unit. Diagnostics terminate the process with
// exit code 2; the error return covers operational failures only.
func runUnit(cfgFile string, analyzers []*analysis.Analyzer) error {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		return err
	}
	var cfg Config
	if err := json.Unmarshal(data, &cfg); err != nil {
		return fmt.Errorf("parsing %s: %v", cfgFile, err)
	}
	ip := canonicalPath(cfg.ImportPath)

	// Fast path: units outside the module, and external test packages
	// (every file is _test.go — nothing the drivers would report survives
	// the test-file filter), export empty markers without type-checking.
	if !inModule(ip) || allTestFiles(cfg.GoFiles) {
		return writeVetx(cfg.VetxOutput, emptyMarkers(ip))
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return err
		}
		files = append(files, f)
	}

	view := analysis.NewMarkerView()
	for _, vetx := range cfg.PackageVetx {
		raw, err := os.ReadFile(vetx)
		if err != nil || len(raw) == 0 {
			continue // a dependency with no facts
		}
		m, err := analysis.DecodeMarkers(raw)
		if err != nil {
			return fmt.Errorf("reading facts %s: %v", vetx, err)
		}
		m.PkgPath = canonicalPath(m.PkgPath)
		view.Add(m)
	}

	pkg, info, err := typecheck(fset, ip, files, &cfg)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return writeVetx(cfg.VetxOutput, emptyMarkers(ip))
		}
		return err
	}

	markers := analysis.ComputeMarkers(fset, files, pkg, info, view)
	view.Add(markers)
	if err := writeVetx(cfg.VetxOutput, markers); err != nil {
		return err
	}
	if cfg.VetxOnly {
		return nil
	}

	var diags []analysis.Diagnostic
	report := func(d analysis.Diagnostic) { diags = append(diags, d) }
	for _, a := range analyzers {
		pass := analysis.NewPass(a, fset, files, pkg, info, view, report)
		if err := a.Run(pass); err != nil {
			return fmt.Errorf("%s on %s: %v", a.Name, ip, err)
		}
	}
	sup := analysis.CollectSuppressions(fset, files)
	var kept []analysis.Diagnostic
	for _, d := range diags {
		if strings.HasSuffix(d.Pos.Filename, "_test.go") || sup.Suppressed(d) {
			continue
		}
		kept = append(kept, d)
	}
	if len(kept) > 0 {
		analysis.SortDiagnostics(kept)
		for _, d := range kept {
			fmt.Fprintln(os.Stderr, d)
		}
		os.Exit(2)
	}
	return nil
}

// typecheck checks the parsed files as package ip, resolving imports
// through the unit's import map and the gc export data of dependencies.
func typecheck(fset *token.FileSet, ip string, files []*ast.File, cfg *Config) (*types.Package, *types.Info, error) {
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok && mapped != "" {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok || file == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, compiler, lookup)}
	if strings.HasPrefix(cfg.GoVersion, "go") {
		conf.GoVersion = cfg.GoVersion
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	pkg, err := conf.Check(ip, fset, files, info)
	if err != nil {
		return nil, nil, fmt.Errorf("typecheck %s: %v", ip, err)
	}
	return pkg, info, nil
}

// canonicalPath strips the go command's test-variant suffix: the unit for
// a package compiled for its own tests carries an import path like
// "tagdm/internal/server [tagdm/internal/server.test]", but path-scoped
// analyzers (and the marker view) key by the real import path.
func canonicalPath(ip string) string {
	if i := strings.Index(ip, " ["); i >= 0 {
		return ip[:i]
	}
	return ip
}

func inModule(ip string) bool {
	return ip == modulePath || strings.HasPrefix(ip, modulePath+"/")
}

func allTestFiles(names []string) bool {
	for _, name := range names {
		if !strings.HasSuffix(name, "_test.go") {
			return false
		}
	}
	return true
}

func emptyMarkers(ip string) *analysis.Markers {
	return &analysis.Markers{PkgPath: ip, Objects: map[string][]string{}}
}

// writeVetx exports the unit's markers; the go command hands this file to
// every importer's unit as PackageVetx.
func writeVetx(path string, m *analysis.Markers) error {
	if path == "" {
		return nil
	}
	data, err := m.Encode()
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o666)
}
