package unitchecker

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"tagdm/internal/analysis"
	"tagdm/internal/analysis/suite"
)

func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above the test directory")
		}
		dir = parent
	}
}

type listedPkg struct {
	ImportPath string
	Dir        string
	Export     string
	Standard   bool
	GoFiles    []string
	Imports    []string
	Module     *struct{ Path string }
}

func goListDeps(t *testing.T, root string, patterns ...string) []*listedPkg {
	t.Helper()
	cmd := exec.Command("go", append([]string{
		"list", "-e", "-export",
		"-json=ImportPath,Dir,Export,Standard,GoFiles,Imports,Module",
		"-deps",
	}, patterns...)...)
	cmd.Dir = root
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		t.Fatalf("go list: %v: %s", err, stderr.String())
	}
	var pkgs []*listedPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs
}

// TestUnitProtocolOverModulePackages replays what the go command does for
// `go vet -vettool`: one VetxOnly unit per dependency in dependency order,
// each fed the vetx files of its own dependencies, then a full analysis
// unit for the target package — which must come back clean (a diagnostic
// would exit the process with code 2, failing the test loudly).
func TestUnitProtocolOverModulePackages(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks internal/server and its dependencies")
	}
	root := moduleRoot(t)
	listed := goListDeps(t, root, "./internal/server")

	exports := map[string]string{}
	for _, lp := range listed {
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
	}
	vetxDir := t.TempDir()
	vetx := map[string]string{} // import path → written vetx file

	mkcfg := func(lp *listedPkg, vetxOnly bool) string {
		var files []string
		for _, name := range lp.GoFiles {
			files = append(files, filepath.Join(lp.Dir, name))
		}
		importMap := map[string]string{}
		for _, imp := range lp.Imports {
			importMap[imp] = imp
		}
		out := filepath.Join(vetxDir, strings.ReplaceAll(lp.ImportPath, "/", "_")+".vetx")
		cfg := Config{
			ID:          lp.ImportPath,
			Compiler:    "gc",
			Dir:         lp.Dir,
			ImportPath:  lp.ImportPath,
			GoFiles:     files,
			ImportMap:   importMap,
			PackageFile: exports,
			PackageVetx: vetx,
			VetxOnly:    vetxOnly,
			VetxOutput:  out,
		}
		data, err := json.Marshal(cfg)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(vetxDir, strings.ReplaceAll(lp.ImportPath, "/", "_")+".cfg")
		if err := os.WriteFile(path, data, 0o666); err != nil {
			t.Fatal(err)
		}
		vetx[lp.ImportPath] = out
		return path
	}

	analyzers := suite.Analyzers()
	for _, lp := range listed {
		vetxOnly := lp.ImportPath != "tagdm/internal/server"
		cfgPath := mkcfg(lp, vetxOnly)
		if err := runUnit(cfgPath, analyzers); err != nil {
			t.Fatalf("unit %s: %v", lp.ImportPath, err)
		}
		data, err := os.ReadFile(vetx[lp.ImportPath])
		if err != nil {
			t.Fatalf("unit %s wrote no vetx: %v", lp.ImportPath, err)
		}
		if _, err := analysis.DecodeMarkers(data); err != nil {
			t.Fatalf("unit %s wrote undecodable vetx: %v", lp.ImportPath, err)
		}
	}

	// Facts must have crossed the unit boundary: the wal unit exported the
	// Enqueue contract and the derived Ticket.Wait classification.
	data, err := os.ReadFile(vetx["tagdm/internal/wal"])
	if err != nil {
		t.Fatal(err)
	}
	m, err := analysis.DecodeMarkers(data)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Has("Log.Enqueue", "nonblocking") {
		t.Error("wal vetx lost the //tagdm:nonblocking directive on Log.Enqueue")
	}
	if !m.Has("Ticket.Wait", "blocking") {
		t.Error("wal vetx lost the derived blocking classification of Ticket.Wait")
	}
	// Standard-library units took the fast path: empty facts.
	if osData, err := os.ReadFile(vetx["os"]); err == nil {
		osM, err := analysis.DecodeMarkers(osData)
		if err != nil {
			t.Fatalf("os vetx undecodable: %v", err)
		}
		if len(osM.Objects) != 0 {
			t.Errorf("os unit exported markers: %v", osM.Objects)
		}
	}
}

func TestUnitFastPaths(t *testing.T) {
	dir := t.TempDir()

	t.Run("external test package", func(t *testing.T) {
		out := filepath.Join(dir, "xtest.vetx")
		cfg := writeCfg(t, dir, "xtest", Config{
			ImportPath: "tagdm/internal/wal_test [tagdm/internal/wal.test]",
			GoFiles:    []string{"a_test.go", "b_test.go"},
			VetxOutput: out,
		})
		if err := runUnit(cfg, nil); err != nil {
			t.Fatal(err)
		}
		assertEmptyVetx(t, out)
	})

	t.Run("typecheck failure honors SucceedOnTypecheckFailure", func(t *testing.T) {
		bad := filepath.Join(dir, "bad.go")
		if err := os.WriteFile(bad, []byte("package bad\n\nvar x int = \"not an int\"\n"), 0o666); err != nil {
			t.Fatal(err)
		}
		out := filepath.Join(dir, "bad.vetx")
		base := Config{
			ImportPath: "tagdm/internal/bad",
			GoFiles:    []string{bad},
			VetxOutput: out,
		}
		strict := writeCfg(t, dir, "strict", base)
		if err := runUnit(strict, nil); err == nil || !strings.Contains(err.Error(), "typecheck") {
			t.Fatalf("want typecheck error, got %v", err)
		}
		base.SucceedOnTypecheckFailure = true
		lenient := writeCfg(t, dir, "lenient", base)
		if err := runUnit(lenient, nil); err != nil {
			t.Fatalf("SucceedOnTypecheckFailure did not succeed: %v", err)
		}
		assertEmptyVetx(t, out)
	})

	t.Run("malformed config", func(t *testing.T) {
		path := filepath.Join(dir, "mangled.cfg")
		if err := os.WriteFile(path, []byte("{not json"), 0o666); err != nil {
			t.Fatal(err)
		}
		if err := runUnit(path, nil); err == nil {
			t.Fatal("want parse error")
		}
	})
}

func TestCanonicalPath(t *testing.T) {
	cases := map[string]string{
		"tagdm/internal/server":                              "tagdm/internal/server",
		"tagdm/internal/server [tagdm/internal/server.test]": "tagdm/internal/server",
		"os": "os",
	}
	for in, want := range cases {
		if got := canonicalPath(in); got != want {
			t.Errorf("canonicalPath(%q) = %q, want %q", in, got, want)
		}
	}
	if inModule("tagdm") != true || inModule("tagdm/internal/wal") != true || inModule("tagdmother") != false {
		t.Error("inModule misclassified a path")
	}
	if !allTestFiles([]string{"a_test.go"}) || allTestFiles([]string{"a_test.go", "b.go"}) || allTestFiles(nil) != true {
		t.Error("allTestFiles misclassified a file set")
	}
}

func writeCfg(t *testing.T, dir, name string, cfg Config) string {
	t.Helper()
	data, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, fmt.Sprintf("%s.cfg", name))
	if err := os.WriteFile(path, data, 0o666); err != nil {
		t.Fatal(err)
	}
	return path
}

func assertEmptyVetx(t *testing.T, path string) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	m, err := analysis.DecodeMarkers(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Objects) != 0 {
		t.Errorf("expected empty markers, got %v", m.Objects)
	}
}
