// Package analysis is a self-contained, dependency-free reimplementation
// of the golang.org/x/tools/go/analysis core: an Analyzer is a named check
// with a Run function, a Pass hands it one type-checked package, and
// diagnostics are reported through the pass. The repo cannot take the
// x/tools dependency (the module is deliberately stdlib-only), so the
// subset needed by the tagdm-vet suite lives here — same shape, same
// testdata conventions (`// want` annotations), same `go vet -vettool`
// protocol (see internal/analysis/unitchecker).
//
// What the framework adds over bare AST walking:
//
//   - Markers: `//tagdm:` directives read from declaration comments, plus
//     derived facts (e.g. "this function blocks"), shared across packages
//     through vetx fact files so analyzers see annotations on imported
//     declarations (internal/analysis/markers.go).
//   - Suppression: a `//tagdm:nolint <analyzer> -- reason` comment on (or
//     immediately above) the offending line silences one finding; the
//     driver enforces that a reason is present.
//   - Test exemption: diagnostics in _test.go files are dropped by the
//     drivers — the suite enforces production invariants.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and nolint comments.
	Name string
	// Doc is the one-paragraph description printed by tagdm-vet -help.
	Doc string
	// Run executes the check over one package.
	Run func(*Pass) error
}

// Diagnostic is one finding, positioned in the analyzed package.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Pos, d.Message, d.Analyzer)
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Markers exposes tagdm: directives and derived facts for this package
	// and everything it imports.
	Markers *MarkerView

	report func(Diagnostic)
}

// NewPass assembles a pass; drivers call this once per (package, analyzer).
func NewPass(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, markers *MarkerView, report func(Diagnostic)) *Pass {
	return &Pass{Analyzer: a, Fset: fset, Files: files, Pkg: pkg, TypesInfo: info, Markers: markers, report: report}
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// InTestFile reports whether pos lies in a _test.go file. Analyzers use it
// to scope invariants to production code; the drivers additionally filter
// any diagnostic positioned in a test file, so this is belt and braces.
func (p *Pass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// PathIs reports whether the analyzed package's import path is one of
// paths. Analyzer testdata packages claim the production import path they
// exercise (analysistest loads them under an explicit path), so scoping by
// path works identically on the real tree and in tests.
func (p *Pass) PathIs(paths ...string) bool {
	for _, path := range paths {
		if p.Pkg.Path() == path {
			return true
		}
	}
	return false
}

// FuncFor returns the *types.Func a call expression resolves to, nil for
// calls through function values, conversions and built-ins.
func (p *Pass) FuncFor(call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := p.TypesInfo.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel := p.TypesInfo.Selections[fun]; sel != nil {
			fn, _ := sel.Obj().(*types.Func)
			return fn
		}
		fn, _ := p.TypesInfo.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// TargetObj resolves a selector or identifier expression to the variable
// object (struct field or var) it denotes, nil for anything else.
func (p *Pass) TargetObj(e ast.Expr) types.Object {
	switch e := e.(type) {
	case *ast.SelectorExpr:
		if sel := p.TypesInfo.Selections[e]; sel != nil {
			if v, ok := sel.Obj().(*types.Var); ok {
				return v
			}
			return nil
		}
		if v, ok := p.TypesInfo.Uses[e.Sel].(*types.Var); ok {
			return v
		}
	case *ast.Ident:
		if v, ok := p.TypesInfo.Uses[e].(*types.Var); ok {
			return v
		}
	}
	return nil
}

// IsConstString reports whether e is a compile-time string constant
// (literal or const ident).
func (p *Pass) IsConstString(e ast.Expr) bool {
	tv, ok := p.TypesInfo.Types[e]
	return ok && tv.Value != nil
}

// Suppressions collects every `//tagdm:nolint <analyzers...>` comment in
// the files, keyed by the line the suppression applies to: the comment's
// own line, and — for a comment alone on its line — the line below it.
type Suppressions struct {
	// byLine maps file:line to the set of suppressed analyzer names
	// ("all" suppresses every analyzer).
	byLine map[string]map[string]bool
}

// CollectSuppressions scans the files of one package.
func CollectSuppressions(fset *token.FileSet, files []*ast.File) *Suppressions {
	s := &Suppressions{byLine: map[string]map[string]bool{}}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "//tagdm:nolint")
				if !ok {
					continue
				}
				names := strings.TrimSpace(rest)
				if i := strings.Index(names, "--"); i >= 0 {
					names = strings.TrimSpace(names[:i])
				}
				pos := fset.Position(c.Pos())
				set := map[string]bool{}
				if names == "" {
					set["all"] = true
				}
				for _, n := range strings.Fields(names) {
					set[strings.TrimSuffix(n, ",")] = true
				}
				s.add(pos.Filename, pos.Line, set)
				// A directive alone on its line suppresses the next line.
				if pos.Column == 1 || onlyCommentOnLine(fset, f, c) {
					s.add(pos.Filename, pos.Line+1, set)
				}
			}
		}
	}
	return s
}

func (s *Suppressions) add(file string, line int, names map[string]bool) {
	key := fmt.Sprintf("%s:%d", file, line)
	if s.byLine[key] == nil {
		s.byLine[key] = map[string]bool{}
	}
	for n := range names {
		s.byLine[key][n] = true
	}
}

// Suppressed reports whether the diagnostic is silenced by a nolint
// comment on its line or on the line above.
func (s *Suppressions) Suppressed(d Diagnostic) bool {
	set := s.byLine[fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)]
	return set != nil && (set["all"] || set[d.Analyzer])
}

// DirectiveLines collects every `//tagdm:<name>` comment in the files,
// returning the directive's argument text keyed by "file:line" for the
// lines the directive covers: its own line and — when the comment stands
// alone on its line — the line below. Analyzers use this for positional
// directives (`//tagdm:cancellable`, `//tagdm:allow-discard <reason>`)
// that attach to statements rather than declarations.
func DirectiveLines(fset *token.FileSet, files []*ast.File, name string) map[string]string {
	out := map[string]string{}
	prefix := "//tagdm:" + name
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, prefix)
				if !ok || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
					continue
				}
				args := strings.TrimSpace(rest)
				pos := fset.Position(c.Pos())
				out[fmt.Sprintf("%s:%d", pos.Filename, pos.Line)] = args
				if pos.Column == 1 || onlyCommentOnLine(fset, f, c) {
					out[fmt.Sprintf("%s:%d", pos.Filename, pos.Line+1)] = args
				}
			}
		}
	}
	return out
}

// LineKey renders the "file:line" key DirectiveLines uses for pos.
func (p *Pass) LineKey(pos token.Pos) string {
	position := p.Fset.Position(pos)
	return fmt.Sprintf("%s:%d", position.Filename, position.Line)
}

// onlyCommentOnLine reports whether c starts its source line (ignoring
// whitespace): such comments also cover the following line.
func onlyCommentOnLine(fset *token.FileSet, f *ast.File, c *ast.Comment) bool {
	pos := fset.Position(c.Pos())
	// Walk the file's declarations looking for any node that ends on the
	// comment's line before the comment starts.
	covered := false
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil || covered {
			return false
		}
		if _, isComment := n.(*ast.Comment); isComment {
			return false
		}
		end := fset.Position(n.End())
		if end.Line == pos.Line && end.Column <= pos.Column {
			switch n.(type) {
			case *ast.File, *ast.GenDecl, *ast.FuncDecl, *ast.BlockStmt:
			default:
				covered = true
			}
		}
		return true
	})
	return !covered
}

// SortDiagnostics orders findings by file, line, column, analyzer.
func SortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}
