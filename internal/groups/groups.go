// Package groups enumerates and materializes describable tagging action
// groups: sets of expanded tuples selected by a conjunctive predicate over
// user and/or item attributes (paper Section 2, following the MRI work the
// paper adopts). The experiments in Section 6 operate on fully-described
// groups — one value per user attribute and per item attribute — that
// contain at least a minimum number of tuples (5 in the paper, yielding
// 4,535 groups on MovieLens).
package groups

import (
	"fmt"
	"sort"
	"strings"

	"tagdm/internal/model"
	"tagdm/internal/store"
)

// Group is one describable tagging action group: a predicate plus the
// bitmap and id list of the tuples it covers.
type Group struct {
	// ID is the group's dense index within the enumeration that produced it.
	ID int
	// Pred is the conjunctive description.
	Pred store.Predicate
	// Tuples is the covered tuple set.
	Tuples *store.Bitmap
	// Members caches Tuples.Slice() for iteration-heavy consumers.
	Members []int
}

// Size is the number of tuples in the group.
func (g *Group) Size() int { return len(g.Members) }

// UserValue returns the group's value for user attribute index i, or
// model.Unknown if the description does not constrain it.
func (g *Group) UserValue(i int) model.ValueCode {
	for _, t := range g.Pred.Terms {
		if t.Col.Side == store.SideUser && t.Col.Index == i {
			return t.Value
		}
	}
	return model.Unknown
}

// ItemValue returns the group's value for item attribute index i, or
// model.Unknown.
func (g *Group) ItemValue(i int) model.ValueCode {
	for _, t := range g.Pred.Terms {
		if t.Col.Side == store.SideItem && t.Col.Index == i {
			return t.Value
		}
	}
	return model.Unknown
}

// Describe renders the group via the store's dictionaries.
func (g *Group) Describe(s *store.Store) string { return s.Describe(g.Pred) }

// Enumerator produces describable groups from a store.
type Enumerator struct {
	Store *store.Store
	// MinTuples drops groups with fewer tuples (paper uses 5).
	MinTuples int
	// Within restricts enumeration to tuples in this bitmap; nil means all.
	// This implements the query bins of Section 6 (e.g. "all actions by
	// {gender=male}" before mining).
	Within *store.Bitmap
}

// groupKey is the full attribute-value assignment of a tuple, used to bucket
// tuples into fully-described groups in a single scan.
type groupKey string

func keyOf(vals []model.ValueCode) groupKey {
	var b strings.Builder
	for _, v := range vals {
		fmt.Fprintf(&b, "%d|", v)
	}
	return groupKey(b.String())
}

// FullyDescribed enumerates the groups induced by the cartesian product of
// user attribute values with item attribute values — restricted, as in the
// paper, to the combinations that actually occur — and keeps those with at
// least MinTuples tuples. Groups are returned sorted by descending size,
// ties broken by description, and assigned dense IDs in that order.
func (e *Enumerator) FullyDescribed() []*Group {
	s := e.Store
	cols := s.Columns()
	vals := make([]model.ValueCode, len(cols))
	buckets := make(map[groupKey][]int)
	exemplar := make(map[groupKey][]model.ValueCode)
	for t := 0; t < s.Len(); t++ {
		if e.Within != nil && !e.Within.Contains(t) {
			continue
		}
		for ci, c := range cols {
			vals[ci] = s.Value(t, c)
		}
		k := keyOf(vals)
		buckets[k] = append(buckets[k], t)
		if _, ok := exemplar[k]; !ok {
			cp := make([]model.ValueCode, len(vals))
			copy(cp, vals)
			exemplar[k] = cp
		}
	}
	min := e.MinTuples
	if min < 1 {
		min = 1
	}
	out := make([]*Group, 0, len(buckets))
	for k, tuples := range buckets {
		if len(tuples) < min {
			continue
		}
		pred := store.Predicate{Terms: make([]store.Term, len(cols))}
		for ci, c := range cols {
			pred.Terms[ci] = store.Term{Col: c, Value: exemplar[k][ci]}
		}
		bm := store.NewBitmap(s.Len())
		for _, t := range tuples {
			bm.Set(t)
		}
		// Group tuple sets are tiny relative to a large corpus — the
		// sweet spot of the container-compressed layout.
		bm.Optimize()
		out = append(out, &Group{Pred: pred, Tuples: bm, Members: tuples})
	}
	sortGroups(s, out)
	for i, g := range out {
		g.ID = i
	}
	return out
}

// SingleAttribute enumerates groups described by exactly one attribute
// value, for every value of every column. These are the coarse groups used
// by case-study queries such as "analyze tagging behavior of {gender=male}
// users".
func (e *Enumerator) SingleAttribute() []*Group {
	s := e.Store
	min := e.MinTuples
	if min < 1 {
		min = 1
	}
	var out []*Group
	for _, c := range s.Columns() {
		attr := s.ColumnAttr(c)
		for v := 1; v <= attr.Cardinality(); v++ {
			pred := store.Predicate{Terms: []store.Term{{Col: c, Value: model.ValueCode(v)}}}
			bm := s.Eval(pred)
			if e.Within != nil {
				bm.And(e.Within)
			}
			members := bm.Slice()
			if len(members) < min {
				continue
			}
			bm.Optimize()
			out = append(out, &Group{Pred: pred, Tuples: bm, Members: members})
		}
	}
	sortGroups(s, out)
	for i, g := range out {
		g.ID = i
	}
	return out
}

// Describable enumerates groups described by exactly the given columns:
// one group per distinct value combination occurring in the (scoped)
// tuples, kept when it meets MinTuples. This generalizes FullyDescribed
// (all columns) and SingleAttribute (one column) to the paper's arbitrary
// "user- and/or item-describable" predicates, e.g. the Section 2.2 example
// groups over {gender, age, actor}.
func (e *Enumerator) Describable(cols []store.Column) []*Group {
	s := e.Store
	min := e.MinTuples
	if min < 1 {
		min = 1
	}
	vals := make([]model.ValueCode, len(cols))
	buckets := make(map[groupKey][]int)
	exemplar := make(map[groupKey][]model.ValueCode)
	for t := 0; t < s.Len(); t++ {
		if e.Within != nil && !e.Within.Contains(t) {
			continue
		}
		for ci, c := range cols {
			vals[ci] = s.Value(t, c)
		}
		k := keyOf(vals)
		buckets[k] = append(buckets[k], t)
		if _, ok := exemplar[k]; !ok {
			cp := make([]model.ValueCode, len(vals))
			copy(cp, vals)
			exemplar[k] = cp
		}
	}
	out := make([]*Group, 0, len(buckets))
	for k, tuples := range buckets {
		if len(tuples) < min {
			continue
		}
		pred := store.Predicate{Terms: make([]store.Term, len(cols))}
		for ci, c := range cols {
			pred.Terms[ci] = store.Term{Col: c, Value: exemplar[k][ci]}
		}
		bm := store.NewBitmap(s.Len())
		for _, t := range tuples {
			bm.Set(t)
		}
		bm.Optimize()
		out = append(out, &Group{Pred: pred, Tuples: bm, Members: tuples})
	}
	sortGroups(s, out)
	for i, g := range out {
		g.ID = i
	}
	return out
}

// ColumnsByName resolves attribute names against the store's two schemas,
// for building Describable column sets from user-facing names.
func ColumnsByName(s *store.Store, names ...string) ([]store.Column, error) {
	out := make([]store.Column, 0, len(names))
	for _, n := range names {
		if i := s.UserSchema.AttrIndex(n); i >= 0 {
			out = append(out, store.Column{Side: store.SideUser, Index: i})
			continue
		}
		if i := s.ItemSchema.AttrIndex(n); i >= 0 {
			out = append(out, store.Column{Side: store.SideItem, Index: i})
			continue
		}
		return nil, fmt.Errorf("groups: no attribute named %q", n)
	}
	return out, nil
}

// sortGroups orders by descending size then lexicographic description, so
// enumeration output is deterministic across runs and platforms.
func sortGroups(s *store.Store, gs []*Group) {
	sort.Slice(gs, func(i, j int) bool {
		if gs[i].Size() != gs[j].Size() {
			return gs[i].Size() > gs[j].Size()
		}
		return s.Describe(gs[i].Pred) < s.Describe(gs[j].Pred)
	})
}

// Support computes the group-support (Definition 1) of a set of groups.
func Support(gs []*Group) int {
	maps := make([]*store.Bitmap, len(gs))
	for i, g := range gs {
		maps[i] = g.Tuples
	}
	return store.Support(maps)
}

// TagBag accumulates the multiset of tags appearing in a group's tuples.
// It is the input to every signature summarizer.
func TagBag(s *store.Store, g *Group) map[model.TagID]int {
	bag := make(map[model.TagID]int)
	for _, t := range g.Members {
		for _, tag := range s.TupleTags(t) {
			bag[tag]++
		}
	}
	return bag
}

// ItemSet returns the distinct item ids tagged by the group's tuples,
// used by the Jaccard set-distance mining function (Section 2.1.1).
func ItemSet(s *store.Store, g *Group) map[int32]struct{} {
	set := make(map[int32]struct{})
	for _, t := range g.Members {
		set[s.TupleItem(t)] = struct{}{}
	}
	return set
}

// UserSet returns the distinct user ids appearing in the group's tuples.
func UserSet(s *store.Store, g *Group) map[int32]struct{} {
	set := make(map[int32]struct{})
	for _, t := range g.Members {
		set[s.TupleUser(t)] = struct{}{}
	}
	return set
}
