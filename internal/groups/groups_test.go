package groups

import (
	"testing"

	"tagdm/internal/model"
	"tagdm/internal/store"
)

// buildStore creates a store where two (user-profile, item-profile)
// combinations repeat often enough to pass a min-tuple threshold and the
// rest are singletons.
func buildStore(t *testing.T) *store.Store {
	t.Helper()
	d := model.NewDataset(
		model.NewSchema("gender", "age"),
		model.NewSchema("genre"),
	)
	addUser := func(g, a string) int32 {
		id, err := d.AddUser(map[string]string{"gender": g, "age": a})
		if err != nil {
			t.Fatal(err)
		}
		return id
	}
	addItem := func(genre string) int32 {
		id, err := d.AddItem(map[string]string{"genre": genre})
		if err != nil {
			t.Fatal(err)
		}
		return id
	}
	// Two male-teen users, one female-teen user.
	mt1 := addUser("male", "teen")
	mt2 := addUser("male", "teen")
	ft := addUser("female", "teen")
	action := addItem("action")
	comedy := addItem("comedy")

	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	// (male,teen,action) occurs 3 times; (female,teen,action) twice;
	// (male,teen,comedy) once.
	must(d.AddAction(mt1, action, 0, "gun"))
	must(d.AddAction(mt2, action, 0, "fight"))
	must(d.AddAction(mt1, action, 0, "explosions"))
	must(d.AddAction(ft, action, 0, "violence"))
	must(d.AddAction(ft, action, 0, "gory"))
	must(d.AddAction(mt2, comedy, 0, "funny"))
	s, err := store.New(d)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestFullyDescribedEnumeration(t *testing.T) {
	s := buildStore(t)
	e := &Enumerator{Store: s, MinTuples: 2}
	gs := e.FullyDescribed()
	if len(gs) != 2 {
		t.Fatalf("got %d groups, want 2", len(gs))
	}
	// Sorted by descending size: male-teen-action (3) first.
	if gs[0].Size() != 3 || gs[1].Size() != 2 {
		t.Fatalf("sizes = %d, %d", gs[0].Size(), gs[1].Size())
	}
	if got := gs[0].Describe(s); got != "{gender=male, age=teen, genre=action}" {
		t.Fatalf("top group = %q", got)
	}
	if gs[0].ID != 0 || gs[1].ID != 1 {
		t.Fatalf("ids = %d, %d", gs[0].ID, gs[1].ID)
	}
	// With MinTuples 1 the comedy singleton appears too.
	gs1 := (&Enumerator{Store: s, MinTuples: 1}).FullyDescribed()
	if len(gs1) != 3 {
		t.Fatalf("min=1: got %d groups", len(gs1))
	}
}

func TestEnumerationWithin(t *testing.T) {
	s := buildStore(t)
	p, err := s.ParsePredicate(map[string]string{"gender": "female"})
	if err != nil {
		t.Fatal(err)
	}
	within := s.Eval(p)
	gs := (&Enumerator{Store: s, MinTuples: 1, Within: within}).FullyDescribed()
	if len(gs) != 1 {
		t.Fatalf("got %d groups within female bin", len(gs))
	}
	if gs[0].Size() != 2 {
		t.Fatalf("female group size = %d", gs[0].Size())
	}
}

func TestSingleAttributeEnumeration(t *testing.T) {
	s := buildStore(t)
	gs := (&Enumerator{Store: s, MinTuples: 1}).SingleAttribute()
	// Values: gender{male, female}, age{teen}, genre{action, comedy} -> 5.
	if len(gs) != 5 {
		t.Fatalf("got %d single-attribute groups, want 5", len(gs))
	}
	// Largest is age=teen covering all 6 tuples.
	if gs[0].Size() != 6 || gs[0].Describe(s) != "{age=teen}" {
		t.Fatalf("top = %q size %d", gs[0].Describe(s), gs[0].Size())
	}
}

func TestGroupAttributeAccessors(t *testing.T) {
	s := buildStore(t)
	gs := (&Enumerator{Store: s, MinTuples: 2}).FullyDescribed()
	g := gs[0] // male, teen, action
	if g.UserValue(0) == model.Unknown || g.UserValue(1) == model.Unknown {
		t.Fatal("fully described group missing user values")
	}
	if g.ItemValue(0) == model.Unknown {
		t.Fatal("fully described group missing item value")
	}
	single := (&Enumerator{Store: s, MinTuples: 1}).SingleAttribute()[0] // {age=teen}
	if single.UserValue(0) != model.Unknown {
		t.Fatal("unconstrained attribute should be Unknown")
	}
}

func TestSupportAndSets(t *testing.T) {
	s := buildStore(t)
	gs := (&Enumerator{Store: s, MinTuples: 2}).FullyDescribed()
	if got := Support(gs); got != 5 {
		t.Fatalf("Support = %d, want 5", got)
	}
	bag := TagBag(s, gs[0])
	if len(bag) != 3 {
		t.Fatalf("male-teen-action bag has %d tags", len(bag))
	}
	items := ItemSet(s, gs[0])
	if len(items) != 1 {
		t.Fatalf("ItemSet = %d items", len(items))
	}
	users := UserSet(s, gs[0])
	if len(users) != 2 {
		t.Fatalf("UserSet = %d users", len(users))
	}
}

func TestEnumerationDeterministic(t *testing.T) {
	s := buildStore(t)
	a := (&Enumerator{Store: s, MinTuples: 1}).FullyDescribed()
	b := (&Enumerator{Store: s, MinTuples: 1}).FullyDescribed()
	if len(a) != len(b) {
		t.Fatal("nondeterministic count")
	}
	for i := range a {
		if a[i].Describe(s) != b[i].Describe(s) {
			t.Fatalf("order differs at %d: %q vs %q", i, a[i].Describe(s), b[i].Describe(s))
		}
	}
}

// Property: fully-described groups partition the tuples they cover — no
// tuple belongs to two groups, and with MinTuples=1 every tuple belongs to
// exactly one.
func TestQuickFullyDescribedPartition(t *testing.T) {
	s := buildStore(t)
	gs := (&Enumerator{Store: s, MinTuples: 1}).FullyDescribed()
	owner := make([]int, s.Len())
	for i := range owner {
		owner[i] = -1
	}
	for gi, g := range gs {
		for _, tu := range g.Members {
			if owner[tu] != -1 {
				t.Fatalf("tuple %d in groups %d and %d", tu, owner[tu], gi)
			}
			owner[tu] = gi
		}
	}
	for tu, gi := range owner {
		if gi == -1 {
			t.Fatalf("tuple %d not covered", tu)
		}
	}
	// Consequence exploited by the engine: group support of disjoint
	// groups equals the size sum.
	sum := 0
	for _, g := range gs {
		sum += g.Size()
	}
	if got := Support(gs); got != sum {
		t.Fatalf("support %d != size sum %d for disjoint groups", got, sum)
	}
}

// Property: a group's bitmap and member list always agree.
func TestQuickBitmapMemberAgreement(t *testing.T) {
	s := buildStore(t)
	for _, min := range []int{1, 2, 3} {
		for _, g := range (&Enumerator{Store: s, MinTuples: min}).FullyDescribed() {
			if g.Tuples.Count() != len(g.Members) {
				t.Fatalf("bitmap count %d != members %d", g.Tuples.Count(), len(g.Members))
			}
			for _, tu := range g.Members {
				if !g.Tuples.Contains(tu) {
					t.Fatalf("member %d missing from bitmap", tu)
				}
			}
		}
	}
}

func TestDescribableSubset(t *testing.T) {
	s := buildStore(t)
	cols, err := ColumnsByName(s, "gender", "genre")
	if err != nil {
		t.Fatal(err)
	}
	gs := (&Enumerator{Store: s, MinTuples: 1}).Describable(cols)
	// Combinations present: (male, action) x3, (female, action) x2,
	// (male, comedy) x1 -> 3 groups.
	if len(gs) != 3 {
		t.Fatalf("got %d groups", len(gs))
	}
	if got := gs[0].Describe(s); got != "{gender=male, genre=action}" {
		t.Fatalf("top = %q", got)
	}
	// The age attribute is unconstrained in these groups.
	if gs[0].UserValue(1) != model.Unknown {
		t.Fatal("age should be unconstrained")
	}
	// Equivalent to FullyDescribed when all columns are given.
	all := (&Enumerator{Store: s, MinTuples: 1}).Describable(s.Columns())
	full := (&Enumerator{Store: s, MinTuples: 1}).FullyDescribed()
	if len(all) != len(full) {
		t.Fatalf("all-columns Describable %d != FullyDescribed %d", len(all), len(full))
	}
}

func TestColumnsByNameErrors(t *testing.T) {
	s := buildStore(t)
	if _, err := ColumnsByName(s, "gender", "height"); err == nil {
		t.Fatal("unknown attribute accepted")
	}
}
