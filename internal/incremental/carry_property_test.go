package incremental

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"tagdm/internal/core"
	"tagdm/internal/groups"
	"tagdm/internal/mining"
	"tagdm/internal/model"
)

// This file pins the epoch carry-over property end to end: a snapshot
// engine whose matrix cache was attached to the previous epoch's cache
// (dirty-row rebuilds, shared clean rows) must answer every solver family
// bit-identically to a virgin engine built from the very same frozen
// store, groups and signatures — across many epochs of random interleaved
// inserts, Refresh calls, and (in the budgeted variant) forced eviction.

// carryWorld builds a randomized ingest universe: a handful of users and
// items over small attribute domains plus a tag pool, so random actions
// keep activating new groups and growing old ones across epochs.
func carryWorld(t *testing.T, rng *rand.Rand) (*model.Dataset, []int32, []int32, []model.TagID) {
	t.Helper()
	d := model.NewDataset(model.NewSchema("gender", "age"), model.NewSchema("genre"))
	genders := []string{"m", "f"}
	ages := []string{"teen", "adult"}
	genres := []string{"action", "drama", "comedy"}
	var users []int32
	for i := 0; i < 6; i++ {
		id, err := d.AddUser(map[string]string{
			"gender": genders[rng.Intn(len(genders))],
			"age":    ages[rng.Intn(len(ages))],
		})
		if err != nil {
			t.Fatal(err)
		}
		users = append(users, id)
	}
	var items []int32
	for i := 0; i < 5; i++ {
		id, err := d.AddItem(map[string]string{"genre": genres[rng.Intn(len(genres))]})
		if err != nil {
			t.Fatal(err)
		}
		items = append(items, id)
	}
	tagNames := []string{"gun", "fight", "tears", "deep", "funny", "dry", "moving", "loud"}
	tags := make([]model.TagID, len(tagNames))
	for i, name := range tagNames {
		tags[i] = d.Vocab.ID(name)
	}
	// Seed a few actions so the maintainer starts with vocabulary and at
	// least one near-threshold group.
	for i := 0; i < 4; i++ {
		if err := d.AddActionIDs(users[0], items[0], 0, []model.TagID{tags[i%len(tags)]}); err != nil {
			t.Fatal(err)
		}
	}
	return d, users, items, tags
}

func carrySpecs() []core.ProblemSpec {
	return []core.ProblemSpec{
		{
			KLo: 1, KHi: 3,
			Objectives:  []core.Objective{{Dim: mining.Tags, Meas: mining.Similarity, Weight: 1}},
			Constraints: []core.Constraint{{Dim: mining.Users, Meas: mining.Similarity, Threshold: 0}},
			Name:        "carry-sim",
		},
		{
			KLo: 1, KHi: 3,
			Objectives:  []core.Objective{{Dim: mining.Tags, Meas: mining.Diversity, Weight: 1}},
			Constraints: []core.Constraint{{Dim: mining.Items, Meas: mining.Diversity, Threshold: 0}},
			Name:        "carry-div",
		},
	}
}

func assertSameResult(t *testing.T, label string, want, got core.Result) {
	t.Helper()
	if want.Found != got.Found {
		t.Fatalf("%s: found %v vs %v", label, got.Found, want.Found)
	}
	if !want.Found {
		return
	}
	if len(want.Groups) != len(got.Groups) {
		t.Fatalf("%s: set size %d vs %d", label, len(got.Groups), len(want.Groups))
	}
	for i := range want.Groups {
		if want.Groups[i].ID != got.Groups[i].ID {
			t.Fatalf("%s: group %d is %d vs %d", label, i, got.Groups[i].ID, want.Groups[i].ID)
		}
	}
	if math.Float64bits(want.Objective) != math.Float64bits(got.Objective) {
		t.Fatalf("%s: objective %v vs %v", label, got.Objective, want.Objective)
	}
	if want.Support != got.Support {
		t.Fatalf("%s: support %d vs %d", label, got.Support, want.Support)
	}
}

// solveEpoch runs every applicable (family, spec) pair on the carried
// snapshot engine and on a virgin scratch engine over the same frozen
// inputs, asserting bit-identity. Returns the rebuild count observed on
// the carried engine.
func solveEpoch(t *testing.T, label string, snap *Snapshot, scratch *core.Engine) int {
	t.Helper()
	ctx := context.Background()
	rebuilds := 0
	for _, spec := range carrySpecs() {
		want, err := scratch.Exact(ctx, spec, core.ExactOptions{})
		if err != nil {
			t.Fatal(err)
		}
		got, err := snap.Engine.Exact(ctx, spec, core.ExactOptions{})
		if err != nil {
			t.Fatal(err)
		}
		assertSameResult(t, label+"/"+spec.Name+"/exact", want, got)
		rebuilds += got.MatrixRebuilds

		if spec.Objectives[0].Meas == mining.Similarity {
			opts := core.LSHOptions{DPrime: 6, L: 2, Seed: 9, Mode: core.Fold}
			want, err := scratch.SMLSH(ctx, spec, opts)
			if err != nil {
				t.Fatal(err)
			}
			got, err := snap.Engine.SMLSH(ctx, spec, opts)
			if err != nil {
				t.Fatal(err)
			}
			assertSameResult(t, label+"/"+spec.Name+"/smlsh", want, got)
			rebuilds += got.MatrixRebuilds
		} else {
			want, err := scratch.DVFDP(ctx, spec, core.FDPOptions{Mode: core.Fold})
			if err != nil {
				t.Fatal(err)
			}
			got, err := snap.Engine.DVFDP(ctx, spec, core.FDPOptions{Mode: core.Fold})
			if err != nil {
				t.Fatal(err)
			}
			assertSameResult(t, label+"/"+spec.Name+"/dvfdp", want, got)
			rebuilds += got.MatrixRebuilds
		}
	}
	return rebuilds
}

func runCarryProperty(t *testing.T, seed int64, budget bool) (totalRebuilds int) {
	rng := rand.New(rand.NewSource(seed))
	d, users, items, tags := carryWorld(t, rng)
	m, err := New(d, 3, newSummarizer(t, d))
	if err != nil {
		t.Fatal(err)
	}
	for epoch := 0; epoch < 4; epoch++ {
		inserts := 8 + rng.Intn(8)
		for i := 0; i < inserts; i++ {
			a := model.TaggingAction{
				User: users[rng.Intn(len(users))],
				Item: items[rng.Intn(len(items))],
				Tags: []model.TagID{tags[rng.Intn(len(tags))]},
			}
			if err := m.Insert(a); err != nil {
				t.Fatal(err)
			}
			// Refresh mid-epoch sometimes: it clears the maintainer's
			// refresh-dirty set, which must not clear the snapshot-carry
			// accumulator.
			if rng.Intn(5) == 0 {
				if _, err := m.Refresh(); err != nil {
					t.Fatal(err)
				}
			}
		}
		snap, err := m.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		n := len(snap.Groups)
		if n < 2 {
			continue
		}
		if budget {
			// Room for roughly one matrix: every epoch's solves churn
			// through eviction, and carry must survive losing entries.
			snap.Engine.SetMatrixBudget(int64(n*(n-1)/2) * 8)
		}
		scratch, err := core.NewEngine(snap.Store, snap.Groups, snap.Engine.Sigs)
		if err != nil {
			t.Fatal(err)
		}
		label := fmt.Sprintf("seed=%d budget=%v epoch=%d n=%d", seed, budget, epoch, n)
		totalRebuilds += solveEpoch(t, label, snap, scratch)

		// Solve twice: the second pass must be all cache hits and still
		// identical (covers the replica-shared read path).
		totalRebuilds += solveEpoch(t, label+" warm", snap, scratch)
	}
	return totalRebuilds
}

// TestCarryOverMatchesScratchAcrossEpochs is the randomized multi-epoch
// property: interleaved inserts, Refresh and Snapshot across 4 epochs,
// all solver families byte-identical to scratch engines, with the
// carried (rebuild) path provably exercised.
func TestCarryOverMatchesScratchAcrossEpochs(t *testing.T) {
	rebuilds := 0
	for seed := int64(1); seed <= 3; seed++ {
		rebuilds += runCarryProperty(t, seed, false)
	}
	if rebuilds == 0 {
		t.Fatal("no dirty-row rebuild was ever exercised — the carry chain is broken")
	}
}

// TestCarryOverMatchesScratchUnderEviction re-runs the property with a
// matrix budget of roughly one matrix, so eviction constantly races the
// carry chain; answers must not move.
func TestCarryOverMatchesScratchUnderEviction(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		runCarryProperty(t, seed, true)
	}
}

// TestReplicateCarriesPairFuncOverrides is the regression for the silent
// override drop: Snapshot.Replicate used to hand replicas a fresh engine
// with default measures, so a sharded solve over replicas disagreed with a
// serial solve on the base engine whenever SetPairFunc was in play. The
// replica now shares the base cache, overrides included.
func TestReplicateCarriesPairFuncOverrides(t *testing.T) {
	d, male, f, action := world(t)
	m, err := New(d, 3, newSummarizer(t, d))
	if err != nil {
		t.Fatal(err)
	}
	gun := d.Vocab.ID("gun")
	gory := d.Vocab.ID("gory")
	for i := 0; i < 4; i++ {
		if err := m.Insert(model.TaggingAction{User: male, Item: action, Tags: []model.TagID{gun}}); err != nil {
			t.Fatal(err)
		}
		if err := m.Insert(model.TaggingAction{User: f, Item: action, Tags: []model.TagID{gory}}); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Groups) < 2 {
		t.Fatalf("world produced %d groups", len(snap.Groups))
	}
	// A distinctive overridden measure: no default measure produces these
	// values, so any replica falling back to defaults changes the answer.
	override := func(g1, g2 *groups.Group) float64 {
		return 1 / (1 + math.Abs(float64(g1.ID-g2.ID)))
	}
	snap.Engine.SetPairFunc(mining.Tags, mining.Similarity, override)

	spec := core.ProblemSpec{
		KLo: 2, KHi: 2,
		Objectives: []core.Objective{{Dim: mining.Tags, Meas: mining.Similarity, Weight: 1}},
		Name:       "override-regression",
	}
	ctx := context.Background()
	opts := core.SolveOptions{LSH: core.LSHOptions{DPrime: 6, L: 2, Seed: 9, Mode: core.Fold}}
	want, err := snap.Engine.Solve(ctx, spec, opts)
	if err != nil {
		t.Fatal(err)
	}

	engines := []*core.Engine{snap.Engine}
	for i := 0; i < 2; i++ {
		rep, err := snap.Replicate()
		if err != nil {
			t.Fatal(err)
		}
		got := rep.Engine.PairFunc(mining.Tags, mining.Similarity)(snap.Groups[0], snap.Groups[1])
		if got != override(snap.Groups[0], snap.Groups[1]) {
			t.Fatalf("replica %d pair func returned %v — override dropped", i, got)
		}
		engines = append(engines, rep.Engine)
	}
	got, err := core.SolveSharded(ctx, engines, spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, "sharded-with-override", want, got)
}
