// Package incremental maintains a TagDM analysis under a stream of new
// tagging actions — the paper's Section 8 future work ("handle updates and
// insertions of new users, items and tags"). Instead of rebuilding the
// store, group enumeration and signatures from scratch on every insert, a
// Maintainer:
//
//   - appends the action to the columnar store (posting lists update in
//     place),
//   - routes the new tuple to its fully-described group, creating the
//     group when the combination is new,
//   - tracks which groups crossed the min-tuple threshold ("activated")
//     or changed ("dirty") since the last refresh, and
//   - on Refresh, re-summarizes only the dirty groups and hands back a
//     consistent engine over the updated universe.
//
// Signature invalidation is the expensive part; batching inserts between
// refreshes amortizes it, which the benchmarks in bench_test.go quantify.
package incremental

import (
	"fmt"

	"tagdm/internal/core"
	"tagdm/internal/groups"
	"tagdm/internal/model"
	"tagdm/internal/signature"
	"tagdm/internal/store"
)

// Maintainer tracks a store and its group universe across inserts.
//
// Concurrency contract: a Maintainer is single-writer. Insert, Refresh and
// Snapshot must be externally serialized (one goroutine, or a mutex).
// Engines returned by Refresh share the maintainer's mutable state and must
// not be used concurrently with further inserts; engines returned by
// Snapshot are frozen copies that any number of goroutines may query while
// the writer keeps inserting — the epoch/snapshot scheme internal/server
// builds on.
type Maintainer struct {
	dataset   *model.Dataset
	store     *store.Store
	minTuples int
	sum       signature.Summarizer

	// byKey indexes every seen full attribute assignment, including
	// groups still below the threshold.
	byKey map[string]*pending

	// active is the current above-threshold group list in a stable order
	// (activation order); IDs are dense in this slice.
	active []*groups.Group

	// sigs[i] is the signature of active[i]; dirty marks stale entries.
	sigs  []signature.Signature
	dirty map[int]bool

	// dirtySnap accumulates the groups touched since the last Snapshot —
	// unlike dirty it survives Refresh (which clears dirty when it
	// re-summarizes) and is what the epoch carry-over hands the next
	// snapshot's matrix cache: pair scores of two clean carried groups
	// are bit-identical across epochs, so only rows touching dirtySnap
	// need recomputing. prevCache/prevN remember the previous snapshot's
	// cache and universe size for the AttachCarry link.
	dirtySnap map[int]bool
	prevCache *core.MatrixCache
	prevN     int

	inserts int
	version int64
}

// pending is a group that may or may not have crossed the threshold yet.
type pending struct {
	group  *groups.Group
	active bool
}

// New builds a maintainer over a dataset. The initial universe enumerates
// fully-described groups with at least minTuples tuples and summarizes
// them with sum.
func New(ds *model.Dataset, minTuples int, sum signature.Summarizer) (*Maintainer, error) {
	return build(ds, minTuples, sum, nil, 0)
}

// Restore rebuilds a maintainer from checkpointed state: the dataset holds
// the actions as of the checkpoint, activeKeys is the ActiveKeys() capture
// taken at the same moment, and version is the maintainer version to resume
// from.
//
// Group IDs matter: solvers break ties by the first maximum, so two
// universes with the same groups in different ID order can return different
// (equally valid) answers. A live maintainer assigns IDs in activation
// order — initial enumeration order, then threshold-crossing order under
// ingest — which a fresh enumeration of the same store does not reproduce.
// Replaying activeKeys instead re-activates groups in exactly the recorded
// order, so a recovered server answers queries byte-identically to the
// process that wrote the checkpoint.
//
// Restore fails loudly rather than diverge silently: every key must name an
// existing fully-described group at or above minTuples, no key may repeat,
// and every qualifying group must be covered by some key.
func Restore(ds *model.Dataset, minTuples int, sum signature.Summarizer, activeKeys []string, version int64) (*Maintainer, error) {
	if activeKeys == nil {
		activeKeys = []string{} // non-nil: empty active set is an assertion, not "use default order"
	}
	m, err := build(ds, minTuples, sum, activeKeys, version)
	if err != nil {
		return nil, err
	}
	return m, nil
}

func build(ds *model.Dataset, minTuples int, sum signature.Summarizer, activeKeys []string, version int64) (*Maintainer, error) {
	if minTuples < 1 {
		return nil, fmt.Errorf("incremental: minTuples must be >= 1")
	}
	st, err := store.New(ds)
	if err != nil {
		return nil, err
	}
	m := &Maintainer{
		dataset:   ds,
		store:     st,
		minTuples: minTuples,
		sum:       sum,
		byKey:     make(map[string]*pending),
		dirty:     make(map[int]bool),
		dirtySnap: make(map[int]bool),
		version:   version,
	}
	// Seed byKey with every existing tuple, then activate qualifying
	// groups — in deterministic enumeration order for a fresh build, or in
	// the recorded activation order for a restore.
	enum := (&groups.Enumerator{Store: st, MinTuples: 1}).FullyDescribed()
	for _, g := range enum {
		p := &pending{group: g}
		m.byKey[m.keyOfGroup(g)] = p
	}
	if activeKeys == nil {
		for _, g := range enum {
			if g.Size() >= minTuples {
				m.activate(m.byKey[m.keyOfGroup(g)])
			}
		}
	} else {
		for i, key := range activeKeys {
			p, ok := m.byKey[key]
			if !ok {
				return nil, fmt.Errorf("incremental: restore: active key %d (%q) names no fully-described group", i, key)
			}
			if p.active {
				return nil, fmt.Errorf("incremental: restore: active key %d (%q) repeats", i, key)
			}
			if p.group.Size() < minTuples {
				return nil, fmt.Errorf("incremental: restore: active key %d (%q) has %d tuples, below threshold %d",
					i, key, p.group.Size(), minTuples)
			}
			m.activate(p)
		}
		for _, g := range enum {
			if g.Size() >= minTuples && !m.byKey[m.keyOfGroup(g)].active {
				return nil, fmt.Errorf("incremental: restore: qualifying group %q missing from active keys", m.keyOfGroup(g))
			}
		}
	}
	m.resummarize()
	return m, nil
}

// ActiveKeys returns the full attribute-assignment keys of the active
// groups in ID order — the capture a checkpoint stores so Restore can
// re-activate groups in the same order.
func (m *Maintainer) ActiveKeys() []string {
	keys := make([]string, len(m.active))
	for i, g := range m.active {
		keys[i] = m.keyOfGroup(g)
	}
	return keys
}

// keyOfGroup renders the full attribute assignment of a group.
func (m *Maintainer) keyOfGroup(g *groups.Group) string {
	key := ""
	for _, t := range g.Pred.Terms {
		key += fmt.Sprintf("%d/%d/%d|", t.Col.Side, t.Col.Index, t.Value)
	}
	return key
}

// keyOfTuple renders the full attribute assignment of tuple t.
func (m *Maintainer) keyOfTuple(t int) (string, store.Predicate) {
	cols := m.store.Columns()
	pred := store.Predicate{Terms: make([]store.Term, len(cols))}
	key := ""
	for ci, c := range cols {
		v := m.store.Value(t, c)
		pred.Terms[ci] = store.Term{Col: c, Value: v}
		key += fmt.Sprintf("%d/%d/%d|", c.Side, c.Index, v)
	}
	return key, pred
}

func (m *Maintainer) activate(p *pending) {
	p.active = true
	p.group.ID = len(m.active)
	m.active = append(m.active, p.group)
	m.sigs = append(m.sigs, signature.Signature{})
	m.dirty[p.group.ID] = true
	m.dirtySnap[p.group.ID] = true
}

// Insert appends one tagging action and updates the group universe. The
// action's user and item must already exist in the dataset (add them to
// the dataset first; new attribute values are interned automatically).
func (m *Maintainer) Insert(a model.TaggingAction) error {
	if err := m.store.Append(m.dataset, a); err != nil {
		return err
	}
	t := m.store.Len() - 1
	key, pred := m.keyOfTuple(t)
	p, ok := m.byKey[key]
	if !ok {
		bm := store.NewBitmap(m.store.Len())
		p = &pending{group: &groups.Group{ID: -1, Pred: pred, Tuples: bm}}
		m.byKey[key] = p
	}
	// Grow-before-Set: the group's universe is always extended ahead of
	// the new tuple id, in either bitmap layout. This path never unions a
	// larger universe into a smaller bitmap, so it did not depend on the
	// old Bitmap.Or behavior that left Universe stale when the word count
	// did not change.
	p.group.Tuples.Grow(m.store.Len())
	p.group.Tuples.Set(t)
	p.group.Members = append(p.group.Members, t)
	if !p.active && p.group.Size() >= m.minTuples {
		m.activate(p)
	} else if p.active {
		m.dirty[p.group.ID] = true
		m.dirtySnap[p.group.ID] = true
	}
	m.inserts++
	m.version++
	return nil
}

// Version is a monotonic counter bumped on every Insert. Two equal versions
// observe identical store contents, so it doubles as the epoch for
// snapshot-keyed result caches.
func (m *Maintainer) Version() int64 { return m.version }

// Stats reports maintenance counters.
type Stats struct {
	// Inserts counts actions inserted since construction.
	Inserts int
	// ActiveGroups is the current above-threshold group count.
	ActiveGroups int
	// PendingGroups counts below-threshold assignments being tracked.
	PendingGroups int
	// DirtyGroups counts groups whose signatures are stale.
	DirtyGroups int
}

// Stats returns the current counters.
func (m *Maintainer) Stats() Stats {
	return Stats{
		Inserts:       m.inserts,
		ActiveGroups:  len(m.active),
		PendingGroups: len(m.byKey) - len(m.active),
		DirtyGroups:   len(m.dirty),
	}
}

// resummarize recomputes signatures for dirty groups only.
func (m *Maintainer) resummarize() {
	for id := range m.dirty {
		m.sigs[id] = m.sum.Summarize(m.store, m.active[id])
	}
	m.dirty = make(map[int]bool)
}

// Refresh re-summarizes dirty groups and returns a consistent engine over
// the current universe. The returned engine shares the maintainer's store
// and groups; run queries before the next batch of inserts or call
// Refresh again.
func (m *Maintainer) Refresh() (*core.Engine, error) {
	m.resummarize()
	return core.NewEngine(m.store, m.active, m.sigs)
}

// Snapshot is a frozen, self-contained view of the maintained analysis:
// an engine over a deep-copied store and group universe that later inserts
// cannot touch.
type Snapshot struct {
	// Engine answers queries against the frozen universe; safe for
	// concurrent Solve calls.
	Engine *core.Engine
	// Store is the frozen store the engine reads from (group descriptions,
	// scoped re-enumeration).
	Store *store.Store
	// Groups is the frozen group universe (aliases Engine.Groups).
	Groups []*groups.Group
	// Version is the maintainer version the snapshot was taken at.
	Version int64
	// VocabSize is the tag vocabulary size at snapshot time. The store
	// shares the live (growing) vocabulary; consumers that size vectors by
	// vocabulary — e.g. frequency signatures for scoped re-analyses — must
	// use this frozen size so equal versions keep producing equal answers.
	VocabSize int
}

// Snapshot re-summarizes dirty groups and returns a frozen copy of the
// analysis. Unlike Refresh, the result is isolated from subsequent inserts:
// the store, group bitmaps and membership lists are deep-copied, so readers
// may run queries on the snapshot while the writer keeps inserting. The
// copy is O(store size); batch inserts between snapshots to amortize it.
//
// Pair matrices carry over: the new engine's cache is linked to the
// previous snapshot's cache together with the set of groups touched since
// — group IDs are stable and append-only, and a clean group's predicate
// and signature are unchanged, so the next matrix materialization reuses
// every clean row and recomputes only rows involving touched or new
// groups (mining.PairMatrix.RebuildRows), bit-identical to a scratch
// build.
func (m *Maintainer) Snapshot() (*Snapshot, error) {
	m.resummarize()
	st := m.store.Clone()
	// The frozen copies are what analyses will union over; re-select their
	// layout so a corpus that has grown large and sparse under ingest
	// serves compressed kernels from the next epoch on. The live bitmaps
	// stay as they are — appends mutate them in place.
	st.Optimize()
	gs := make([]*groups.Group, len(m.active))
	for i, g := range m.active {
		gs[i] = &groups.Group{
			ID:      g.ID,
			Pred:    g.Pred, // terms are immutable once built
			Tuples:  g.Tuples.Clone().Optimize(),
			Members: append([]int(nil), g.Members...),
		}
	}
	sigs := append([]signature.Signature(nil), m.sigs...)
	eng, err := core.NewEngine(st, gs, sigs)
	if err != nil {
		return nil, err
	}
	if m.prevCache != nil {
		dirty := make([]bool, m.prevN)
		for id := range m.dirtySnap {
			if id < m.prevN {
				dirty[id] = true
			}
		}
		eng.Cache().AttachCarry(m.prevCache, dirty)
	}
	m.prevCache = eng.Cache()
	m.prevN = len(gs)
	m.dirtySnap = make(map[int]bool)
	return &Snapshot{
		Engine:    eng,
		Store:     st,
		Groups:    gs,
		Version:   m.version,
		VocabSize: st.Vocab.Size(),
	}, nil
}

// Replicate deep-copies a frozen Snapshot into an independent replica:
// same Version and VocabSize, structurally identical store, groups and
// signatures. The replica's store, groups and scorer scratch are private,
// but the engine shares the receiver's pair-matrix cache: matrices are
// immutable once built, so replicas can safely serve reads from one
// materialization instead of each rebuilding identical n(n-1)/2 triangles.
// Sharing the cache also carries engine-level pair-function overrides
// (SetPairFunc) into every replica — a solve on any replica sees the same
// measures the base engine was configured with. The receiver is already
// frozen, so unlike Maintainer.Snapshot this runs outside the writer lock;
// the publish path takes one Snapshot under the lock and fans replicas out
// afterwards.
func (s *Snapshot) Replicate() (*Snapshot, error) {
	st := s.Store.Clone()
	st.Optimize()
	gs := make([]*groups.Group, len(s.Groups))
	for i, g := range s.Groups {
		gs[i] = &groups.Group{
			ID:      g.ID,
			Pred:    g.Pred, // terms are immutable once built
			Tuples:  g.Tuples.Clone().Optimize(),
			Members: append([]int(nil), g.Members...),
		}
	}
	sigs := append([]signature.Signature(nil), s.Engine.Sigs...)
	eng, err := core.NewEngine(st, gs, sigs)
	if err != nil {
		return nil, err
	}
	eng.AdoptCache(s.Engine)
	return &Snapshot{
		Engine:    eng,
		Store:     st,
		Groups:    gs,
		Version:   s.Version,
		VocabSize: s.VocabSize,
	}, nil
}

// Store exposes the underlying store (read-only use).
func (m *Maintainer) Store() *store.Store { return m.store }

// ActiveGroups returns the current above-threshold groups; the slice is
// shared and must not be mutated.
func (m *Maintainer) ActiveGroups() []*groups.Group { return m.active }
