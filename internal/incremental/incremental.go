// Package incremental maintains a TagDM analysis under a stream of new
// tagging actions — the paper's Section 8 future work ("handle updates and
// insertions of new users, items and tags"). Instead of rebuilding the
// store, group enumeration and signatures from scratch on every insert, a
// Maintainer:
//
//   - appends the action to the columnar store (posting lists update in
//     place),
//   - routes the new tuple to its fully-described group, creating the
//     group when the combination is new,
//   - tracks which groups crossed the min-tuple threshold ("activated")
//     or changed ("dirty") since the last refresh, and
//   - on Refresh, re-summarizes only the dirty groups and hands back a
//     consistent engine over the updated universe.
//
// Signature invalidation is the expensive part; batching inserts between
// refreshes amortizes it, which the benchmarks in bench_test.go quantify.
package incremental

import (
	"fmt"

	"tagdm/internal/core"
	"tagdm/internal/groups"
	"tagdm/internal/model"
	"tagdm/internal/signature"
	"tagdm/internal/store"
)

// Maintainer tracks a store and its group universe across inserts.
type Maintainer struct {
	dataset   *model.Dataset
	store     *store.Store
	minTuples int
	sum       signature.Summarizer

	// byKey indexes every seen full attribute assignment, including
	// groups still below the threshold.
	byKey map[string]*pending

	// active is the current above-threshold group list in a stable order
	// (activation order); IDs are dense in this slice.
	active []*groups.Group

	// sigs[i] is the signature of active[i]; dirty marks stale entries.
	sigs  []signature.Signature
	dirty map[int]bool

	inserts int
}

// pending is a group that may or may not have crossed the threshold yet.
type pending struct {
	group  *groups.Group
	active bool
}

// New builds a maintainer over a dataset. The initial universe enumerates
// fully-described groups with at least minTuples tuples and summarizes
// them with sum.
func New(ds *model.Dataset, minTuples int, sum signature.Summarizer) (*Maintainer, error) {
	if minTuples < 1 {
		return nil, fmt.Errorf("incremental: minTuples must be >= 1")
	}
	st, err := store.New(ds)
	if err != nil {
		return nil, err
	}
	m := &Maintainer{
		dataset:   ds,
		store:     st,
		minTuples: minTuples,
		sum:       sum,
		byKey:     make(map[string]*pending),
		dirty:     make(map[int]bool),
	}
	// Seed byKey with every existing tuple, then activate qualifying
	// groups in deterministic (enumeration) order.
	enum := (&groups.Enumerator{Store: st, MinTuples: 1}).FullyDescribed()
	for _, g := range enum {
		p := &pending{group: g}
		m.byKey[m.keyOfGroup(g)] = p
	}
	for _, g := range enum {
		if g.Size() >= minTuples {
			m.activate(m.byKey[m.keyOfGroup(g)])
		}
	}
	m.resummarize()
	return m, nil
}

// keyOfGroup renders the full attribute assignment of a group.
func (m *Maintainer) keyOfGroup(g *groups.Group) string {
	key := ""
	for _, t := range g.Pred.Terms {
		key += fmt.Sprintf("%d/%d/%d|", t.Col.Side, t.Col.Index, t.Value)
	}
	return key
}

// keyOfTuple renders the full attribute assignment of tuple t.
func (m *Maintainer) keyOfTuple(t int) (string, store.Predicate) {
	cols := m.store.Columns()
	pred := store.Predicate{Terms: make([]store.Term, len(cols))}
	key := ""
	for ci, c := range cols {
		v := m.store.Value(t, c)
		pred.Terms[ci] = store.Term{Col: c, Value: v}
		key += fmt.Sprintf("%d/%d/%d|", c.Side, c.Index, v)
	}
	return key, pred
}

func (m *Maintainer) activate(p *pending) {
	p.active = true
	p.group.ID = len(m.active)
	m.active = append(m.active, p.group)
	m.sigs = append(m.sigs, signature.Signature{})
	m.dirty[p.group.ID] = true
}

// Insert appends one tagging action and updates the group universe. The
// action's user and item must already exist in the dataset (add them to
// the dataset first; new attribute values are interned automatically).
func (m *Maintainer) Insert(a model.TaggingAction) error {
	if err := m.store.Append(m.dataset, a); err != nil {
		return err
	}
	t := m.store.Len() - 1
	key, pred := m.keyOfTuple(t)
	p, ok := m.byKey[key]
	if !ok {
		bm := store.NewBitmap(m.store.Len())
		p = &pending{group: &groups.Group{ID: -1, Pred: pred, Tuples: bm}}
		m.byKey[key] = p
	}
	p.group.Tuples.Grow(m.store.Len())
	p.group.Tuples.Set(t)
	p.group.Members = append(p.group.Members, t)
	if !p.active && p.group.Size() >= m.minTuples {
		m.activate(p)
	} else if p.active {
		m.dirty[p.group.ID] = true
	}
	m.inserts++
	return nil
}

// Stats reports maintenance counters.
type Stats struct {
	// Inserts counts actions inserted since construction.
	Inserts int
	// ActiveGroups is the current above-threshold group count.
	ActiveGroups int
	// PendingGroups counts below-threshold assignments being tracked.
	PendingGroups int
	// DirtyGroups counts groups whose signatures are stale.
	DirtyGroups int
}

// Stats returns the current counters.
func (m *Maintainer) Stats() Stats {
	return Stats{
		Inserts:       m.inserts,
		ActiveGroups:  len(m.active),
		PendingGroups: len(m.byKey) - len(m.active),
		DirtyGroups:   len(m.dirty),
	}
}

// resummarize recomputes signatures for dirty groups only.
func (m *Maintainer) resummarize() {
	for id := range m.dirty {
		m.sigs[id] = m.sum.Summarize(m.store, m.active[id])
	}
	m.dirty = make(map[int]bool)
}

// Refresh re-summarizes dirty groups and returns a consistent engine over
// the current universe. The returned engine shares the maintainer's store
// and groups; run queries before the next batch of inserts or call
// Refresh again.
func (m *Maintainer) Refresh() (*core.Engine, error) {
	m.resummarize()
	return core.NewEngine(m.store, m.active, m.sigs)
}

// Store exposes the underlying store (read-only use).
func (m *Maintainer) Store() *store.Store { return m.store }

// ActiveGroups returns the current above-threshold groups; the slice is
// shared and must not be mutated.
func (m *Maintainer) ActiveGroups() []*groups.Group { return m.active }
