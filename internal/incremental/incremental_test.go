package incremental

import (
	"context"

	"testing"

	"tagdm/internal/core"
	"tagdm/internal/groups"
	"tagdm/internal/model"
	"tagdm/internal/signature"
	"tagdm/internal/store"
)

// world builds a dataset where one (profile, item) pair already clears the
// threshold, one sits just below it, and head-room exists to add more.
func world(t *testing.T) (*model.Dataset, int32, int32, int32) {
	t.Helper()
	d := model.NewDataset(model.NewSchema("gender"), model.NewSchema("genre"))
	m, err := d.AddUser(map[string]string{"gender": "male"})
	if err != nil {
		t.Fatal(err)
	}
	f, err := d.AddUser(map[string]string{"gender": "female"})
	if err != nil {
		t.Fatal(err)
	}
	action, err := d.AddItem(map[string]string{"genre": "action"})
	if err != nil {
		t.Fatal(err)
	}
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	// male-action: 3 tuples (active at threshold 3).
	for i := 0; i < 3; i++ {
		must(d.AddAction(m, action, 0, "gun"))
	}
	// female-action: 2 tuples (pending at threshold 3).
	for i := 0; i < 2; i++ {
		must(d.AddAction(f, action, 0, "violence"))
	}
	return d, m, f, action
}

func newSummarizer(t *testing.T, d *model.Dataset) signature.Summarizer {
	t.Helper()
	st, err := store.New(d)
	if err != nil {
		t.Fatal(err)
	}
	return signature.NewFrequency(st)
}

func TestNewSeedsExistingGroups(t *testing.T) {
	d, _, _, _ := world(t)
	m, err := New(d, 3, newSummarizer(t, d))
	if err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.ActiveGroups != 1 {
		t.Fatalf("active = %d, want 1", st.ActiveGroups)
	}
	if st.PendingGroups != 1 {
		t.Fatalf("pending = %d, want 1", st.PendingGroups)
	}
	if st.DirtyGroups != 0 {
		t.Fatalf("dirty after construction = %d", st.DirtyGroups)
	}
}

func TestMinTuplesValidation(t *testing.T) {
	d, _, _, _ := world(t)
	if _, err := New(d, 0, newSummarizer(t, d)); err == nil {
		t.Fatal("minTuples 0 accepted")
	}
}

func TestInsertActivatesPendingGroup(t *testing.T) {
	d, _, f, action := world(t)
	m, err := New(d, 3, newSummarizer(t, d))
	if err != nil {
		t.Fatal(err)
	}
	tagID := d.Vocab.ID("gory")
	// Third female-action tuple crosses the threshold.
	if err := m.Insert(model.TaggingAction{User: f, Item: action, Tags: []model.TagID{tagID}}); err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.ActiveGroups != 2 {
		t.Fatalf("active = %d, want 2", st.ActiveGroups)
	}
	if st.Inserts != 1 {
		t.Fatalf("inserts = %d", st.Inserts)
	}
	// The activated group must be queryable after Refresh.
	eng, err := m.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	if len(eng.Groups) != 2 {
		t.Fatalf("engine groups = %d", len(eng.Groups))
	}
	for i, g := range eng.Groups {
		if g.ID != i {
			t.Fatalf("group %d has ID %d", i, g.ID)
		}
	}
}

func TestInsertNewCombinationCreatesGroup(t *testing.T) {
	d, male, _, _ := world(t)
	comedy, err := d.AddItem(map[string]string{"genre": "comedy"})
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(d, 2, newSummarizer(t, d))
	if err != nil {
		t.Fatal(err)
	}
	before := m.Stats().ActiveGroups
	funny := d.Vocab.ID("funny")
	for i := 0; i < 2; i++ {
		if err := m.Insert(model.TaggingAction{User: male, Item: comedy, Tags: []model.TagID{funny}}); err != nil {
			t.Fatal(err)
		}
	}
	if got := m.Stats().ActiveGroups; got != before+1 {
		t.Fatalf("active = %d, want %d", got, before+1)
	}
}

func TestInsertMarksDirtyAndRefreshClears(t *testing.T) {
	d, male, _, action := world(t)
	m, err := New(d, 3, newSummarizer(t, d))
	if err != nil {
		t.Fatal(err)
	}
	gun := d.Vocab.ID("gun")
	if err := m.Insert(model.TaggingAction{User: male, Item: action, Tags: []model.TagID{gun}}); err != nil {
		t.Fatal(err)
	}
	if m.Stats().DirtyGroups != 1 {
		t.Fatalf("dirty = %d", m.Stats().DirtyGroups)
	}
	if _, err := m.Refresh(); err != nil {
		t.Fatal(err)
	}
	if m.Stats().DirtyGroups != 0 {
		t.Fatal("refresh did not clear dirty set")
	}
}

func TestSignaturesTrackInserts(t *testing.T) {
	d, male, _, action := world(t)
	m, err := New(d, 3, newSummarizer(t, d))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := m.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	gun := d.Vocab.ID("gun")
	var gunWeightBefore float64
	if int(gun) < len(eng.Sigs[0].Weights) {
		gunWeightBefore = eng.Sigs[0].Weights[gun]
	}
	for i := 0; i < 3; i++ {
		if err := m.Insert(model.TaggingAction{User: male, Item: action, Tags: []model.TagID{gun}}); err != nil {
			t.Fatal(err)
		}
	}
	eng2, err := m.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	if got := eng2.Sigs[0].Weights[gun]; got <= gunWeightBefore {
		t.Fatalf("gun weight did not grow: %v -> %v", gunWeightBefore, got)
	}
}

func TestMaintainerMatchesRebuild(t *testing.T) {
	// After a batch of inserts, the maintainer's group universe must be
	// identical (same descriptions, same sizes) to a from-scratch
	// enumeration of the same data.
	d, male, f, action := world(t)
	m, err := New(d, 3, newSummarizer(t, d))
	if err != nil {
		t.Fatal(err)
	}
	gun := d.Vocab.ID("gun")
	gory := d.Vocab.ID("gory")
	for i := 0; i < 4; i++ {
		for _, a := range []model.TaggingAction{
			{User: male, Item: action, Tags: []model.TagID{gun}},
			{User: f, Item: action, Tags: []model.TagID{gory}},
		} {
			if err := m.Insert(a); err != nil {
				t.Fatal(err)
			}
			// Mirror into the dataset so the from-scratch rebuild sees
			// the same data.
			if err := d.AddActionIDs(a.User, a.Item, a.Rating, a.Tags); err != nil {
				t.Fatal(err)
			}
		}
	}
	fresh, err := store.New(d)
	if err != nil {
		t.Fatal(err)
	}
	want := (&groups.Enumerator{Store: fresh, MinTuples: 3}).FullyDescribed()
	got := m.ActiveGroups()
	if len(got) != len(want) {
		t.Fatalf("maintainer has %d groups, rebuild has %d", len(got), len(want))
	}
	wantSizes := map[string]int{}
	for _, g := range want {
		wantSizes[fresh.Describe(g.Pred)] = g.Size()
	}
	for _, g := range got {
		desc := m.Store().Describe(g.Pred)
		if wantSizes[desc] != g.Size() {
			t.Fatalf("group %s: maintainer size %d, rebuild size %d",
				desc, g.Size(), wantSizes[desc])
		}
	}
}

func TestRefreshEngineSolves(t *testing.T) {
	d, male, f, action := world(t)
	m, err := New(d, 3, newSummarizer(t, d))
	if err != nil {
		t.Fatal(err)
	}
	gory := d.Vocab.ID("gory")
	gun := d.Vocab.ID("gun")
	for i := 0; i < 3; i++ {
		if err := m.Insert(model.TaggingAction{User: f, Item: action, Tags: []model.TagID{gory}}); err != nil {
			t.Fatal(err)
		}
		if err := m.Insert(model.TaggingAction{User: male, Item: action, Tags: []model.TagID{gun}}); err != nil {
			t.Fatal(err)
		}
	}
	eng, err := m.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	// Problem 6 on the maintained universe: same items, diverse tags.
	spec, err := core.PaperProblem(6, 2, 4, 0.0, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.DVFDP(context.Background(), spec, core.FDPOptions{Mode: core.Fold})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatal("null result on maintained engine")
	}
	if res.Objective < 0.9 {
		t.Fatalf("objective = %v; male/female action tags should be disjoint", res.Objective)
	}
}

func TestInsertRejectsUnknownReferences(t *testing.T) {
	d, _, _, _ := world(t)
	m, err := New(d, 3, newSummarizer(t, d))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Insert(model.TaggingAction{User: 99, Item: 0}); err == nil {
		t.Fatal("unknown user accepted")
	}
}

func TestVersionBumpsPerInsert(t *testing.T) {
	d, m, _, action := world(t)
	maint, err := New(d, 3, newSummarizer(t, d))
	if err != nil {
		t.Fatal(err)
	}
	if maint.Version() != 0 {
		t.Fatalf("initial version = %d", maint.Version())
	}
	for i := 1; i <= 3; i++ {
		if err := maint.Insert(model.TaggingAction{User: m, Item: action}); err != nil {
			t.Fatal(err)
		}
		if maint.Version() != int64(i) {
			t.Fatalf("version after %d inserts = %d", i, maint.Version())
		}
	}
}

func TestSnapshotIsolatedFromLaterInserts(t *testing.T) {
	d, m, f, action := world(t)
	maint, err := New(d, 3, newSummarizer(t, d))
	if err != nil {
		t.Fatal(err)
	}
	snap, err := maint.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Version != 0 || len(snap.Groups) != 1 || snap.Store.Len() != 5 {
		t.Fatalf("snapshot = version %d, %d groups, %d tuples", snap.Version, len(snap.Groups), snap.Store.Len())
	}
	sizeBefore := snap.Groups[0].Size()

	// Grow the maintained universe: female-action activates, male-action
	// grows. The frozen snapshot must see none of it.
	for i := 0; i < 4; i++ {
		if err := maint.Insert(model.TaggingAction{User: f, Item: action}); err != nil {
			t.Fatal(err)
		}
		if err := maint.Insert(model.TaggingAction{User: m, Item: action}); err != nil {
			t.Fatal(err)
		}
	}
	if len(snap.Groups) != 1 || snap.Groups[0].Size() != sizeBefore || snap.Store.Len() != 5 {
		t.Fatalf("snapshot mutated by later inserts: %d groups, size %d, %d tuples",
			len(snap.Groups), snap.Groups[0].Size(), snap.Store.Len())
	}

	// And a fresh snapshot sees everything.
	snap2, err := maint.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap2.Version != 8 || len(snap2.Groups) != 2 || snap2.Store.Len() != 13 {
		t.Fatalf("fresh snapshot = version %d, %d groups, %d tuples", snap2.Version, len(snap2.Groups), snap2.Store.Len())
	}

	// The frozen engine still answers queries.
	spec, err := core.PaperProblem(1, 2, 1, 0.0, 0.0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := snap.Engine.Solve(context.Background(), spec, core.SolveOptions{}); err != nil {
		t.Fatal(err)
	}
}

// checkpointDataset reconstructs the dataset a checkpoint persists: the
// live users/items/vocabulary plus the actions read back out of the store
// in insert order (Maintainer.Insert grows the store, not Dataset.Actions).
func checkpointDataset(d *model.Dataset, st *store.Store) *model.Dataset {
	out := &model.Dataset{
		UserSchema: d.UserSchema,
		ItemSchema: d.ItemSchema,
		Vocab:      d.Vocab,
		Users:      d.Users,
		Items:      d.Items,
	}
	for i := 0; i < st.Len(); i++ {
		out.Actions = append(out.Actions, model.TaggingAction{
			User:   st.TupleUser(i),
			Item:   st.TupleItem(i),
			Tags:   st.TupleTags(i),
			Rating: st.TupleRating(i),
		})
	}
	return out
}

// TestRestoreReproducesActivationOrder is the recovery-order invariant: a
// group activated by ingest gets an ID reflecting when it crossed the
// threshold, which a fresh enumeration (sorted by size) would not assign.
// Restore with the recorded keys must reproduce the live order exactly.
func TestRestoreReproducesActivationOrder(t *testing.T) {
	d, male, f, action := world(t)
	sum := newSummarizer(t, d)
	m, err := New(d, 3, sum)
	if err != nil {
		t.Fatal(err)
	}
	// Activate female-action by ingest (1 more tuple -> 3), then bulk up
	// male-action so size order disagrees with activation order.
	gory := d.Vocab.ID("gory")
	if err := m.Insert(model.TaggingAction{User: f, Item: action, Tags: []model.TagID{gory}}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := m.Insert(model.TaggingAction{User: f, Item: action, Tags: []model.TagID{gory}}); err != nil {
			t.Fatal(err)
		}
	}
	_ = male
	keys := m.ActiveKeys()
	if len(keys) != 2 {
		t.Fatalf("ActiveKeys = %d entries, want 2", len(keys))
	}
	version := m.Version()

	ckpt := checkpointDataset(d, m.Store())
	r, err := Restore(ckpt, 3, sum, keys, version)
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if got := r.ActiveKeys(); len(got) != len(keys) {
		t.Fatalf("restored ActiveKeys = %d entries, want %d", len(got), len(keys))
	} else {
		for i := range keys {
			if got[i] != keys[i] {
				t.Fatalf("restored key %d = %q, want %q", i, got[i], keys[i])
			}
		}
	}
	if r.Version() != version {
		t.Fatalf("restored version = %d, want %d", r.Version(), version)
	}
	// A fresh New over the same data must NOT match the live order here —
	// that mismatch is the reason Restore exists. female-action (7 tuples)
	// outranks male-action (3) by size, but activated second.
	fresh, err := New(checkpointDataset(d, m.Store()), 3, sum)
	if err != nil {
		t.Fatal(err)
	}
	if fk := fresh.ActiveKeys(); fk[0] == keys[0] {
		t.Fatalf("test is vacuous: fresh enumeration order %v matches activation order %v", fk, keys)
	}
	// Tuple membership must agree group-by-group.
	for i, g := range r.ActiveGroups() {
		want := m.ActiveGroups()[i]
		if g.Size() != want.Size() {
			t.Fatalf("group %d size = %d, want %d", i, g.Size(), want.Size())
		}
		if len(g.Members) != len(want.Members) {
			t.Fatalf("group %d members = %d, want %d", i, len(g.Members), len(want.Members))
		}
		for j := range g.Members {
			if g.Members[j] != want.Members[j] {
				t.Fatalf("group %d member %d = %d, want %d", i, j, g.Members[j], want.Members[j])
			}
		}
	}
}

func TestRestoreValidation(t *testing.T) {
	d, _, _, _ := world(t)
	sum := newSummarizer(t, d)
	m, err := New(d, 3, sum)
	if err != nil {
		t.Fatal(err)
	}
	keys := m.ActiveKeys()
	ckpt := checkpointDataset(d, m.Store())

	if _, err := Restore(ckpt, 3, sum, append(keys, "9/9/9|"), m.Version()); err == nil {
		t.Fatal("unknown key accepted")
	}
	if _, err := Restore(ckpt, 3, sum, append(keys, keys[0]), m.Version()); err == nil {
		t.Fatal("duplicate key accepted")
	}
	if _, err := Restore(ckpt, 3, sum, nil, m.Version()); err == nil {
		t.Fatal("missing qualifying group accepted")
	}
}

// TestRestoreContinuesIngest: a restored maintainer must keep accepting
// inserts, activating groups and publishing snapshots like the original.
func TestRestoreContinuesIngest(t *testing.T) {
	d, _, f, action := world(t)
	sum := newSummarizer(t, d)
	m, err := New(d, 3, sum)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Restore(checkpointDataset(d, m.Store()), 3, sum, m.ActiveKeys(), m.Version())
	if err != nil {
		t.Fatal(err)
	}
	gory := d.Vocab.ID("gory")
	if err := r.Insert(model.TaggingAction{User: f, Item: action, Tags: []model.TagID{gory}}); err != nil {
		t.Fatal(err)
	}
	if got := r.Stats().ActiveGroups; got != 2 {
		t.Fatalf("active after post-restore insert = %d, want 2", got)
	}
	if r.Version() != m.Version()+1 {
		t.Fatalf("version = %d, want %d", r.Version(), m.Version()+1)
	}
	snap, err := r.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Version != r.Version() {
		t.Fatalf("snapshot version = %d", snap.Version)
	}
}
