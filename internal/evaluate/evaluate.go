// Package evaluate quantifies how well the signature pipeline recovers
// the synthetic generator's latent structure. DESIGN.md's substitution
// argument — that the synthetic corpus preserves the behaviour the
// paper's experiments depend on — rests on the mined geometry reflecting
// the planted topics; this package measures that directly:
//
//   - Purity: assign each group to its dominant LDA topic and to its
//     dominant ground-truth topic (from datagen.World.TopicOfTag); purity
//     is the fraction of groups whose LDA-cluster peers share their
//     ground-truth label, computed via the standard cluster-purity formula.
//   - SeparationGap: mean pairwise signature cosine within same-truth
//     groups minus the mean across different-truth groups. Positive gaps
//     mean the geometry the mining algorithms rely on is real.
package evaluate

import (
	"fmt"

	"tagdm/internal/datagen"
	"tagdm/internal/groups"
	"tagdm/internal/signature"
	"tagdm/internal/store"
	"tagdm/internal/vec"
)

// Report is the outcome of a structure-recovery evaluation.
type Report struct {
	// Groups is the number of groups evaluated.
	Groups int
	// Purity in [0, 1]; 1 means every LDA cluster is ground-truth pure.
	Purity float64
	// ChancePurity is the purity a random assignment would achieve (the
	// largest ground-truth class's share).
	ChancePurity float64
	// WithinCosine and AcrossCosine are the mean signature cosines for
	// same-truth and different-truth group pairs.
	WithinCosine, AcrossCosine float64
}

// SeparationGap is WithinCosine - AcrossCosine.
func (r Report) SeparationGap() float64 { return r.WithinCosine - r.AcrossCosine }

// String renders the report for logs.
func (r Report) String() string {
	return fmt.Sprintf(
		"structure recovery over %d groups: purity %.3f (chance %.3f), within-cosine %.3f, across-cosine %.3f, gap %.3f",
		r.Groups, r.Purity, r.ChancePurity, r.WithinCosine, r.AcrossCosine, r.SeparationGap())
}

// truthTopic returns the dominant ground-truth topic of a group: the
// planted topic of the majority of its tag occurrences.
func truthTopic(s *store.Store, g *groups.Group, topicOfTag []int, nTopics int) int {
	counts := make([]int, nTopics)
	for tag, n := range groups.TagBag(s, g) {
		if int(tag) < len(topicOfTag) {
			counts[topicOfTag[tag]] += n
		}
	}
	best, bestN := 0, -1
	for t, n := range counts {
		if n > bestN {
			best, bestN = t, n
		}
	}
	return best
}

// argmax returns the index of the largest weight.
func argmax(w []float64) int {
	best, bestV := 0, w[0]
	for i, v := range w[1:] {
		if v > bestV {
			best, bestV = i+1, v
		}
	}
	return best
}

// Recovery evaluates signatures (indexed by group ID) against the world's
// planted topics. nTopics is the generator's topic count.
func Recovery(w *datagen.World, s *store.Store, gs []*groups.Group, sigs []signature.Signature, nTopics int) (Report, error) {
	if len(gs) == 0 || len(gs) != len(sigs) {
		return Report{}, fmt.Errorf("evaluate: %d groups, %d signatures", len(gs), len(sigs))
	}
	truth := make([]int, len(gs))
	cluster := make([]int, len(gs))
	truthCounts := make(map[int]int)
	for i, g := range gs {
		truth[i] = truthTopic(s, g, w.TopicOfTag, nTopics)
		truthCounts[truth[i]]++
		cluster[i] = argmax(sigs[i].Weights)
	}
	// Cluster purity: sum over clusters of the majority truth count.
	type key struct{ c, t int }
	joint := make(map[key]int)
	clusterSizes := make(map[int]int)
	for i := range gs {
		joint[key{cluster[i], truth[i]}]++
		clusterSizes[cluster[i]]++
	}
	pure := 0
	for c := range clusterSizes {
		best := 0
		for t := 0; t < nTopics; t++ {
			if n := joint[key{c, t}]; n > best {
				best = n
			}
		}
		pure += best
	}
	maxClass := 0
	for _, n := range truthCounts {
		if n > maxClass {
			maxClass = n
		}
	}
	rep := Report{
		Groups:       len(gs),
		Purity:       float64(pure) / float64(len(gs)),
		ChancePurity: float64(maxClass) / float64(len(gs)),
	}
	// Cosine separation.
	var within, across float64
	var nWithin, nAcross int
	for i := 0; i < len(gs); i++ {
		for j := i + 1; j < len(gs); j++ {
			c := vec.Cosine(sigs[i].Weights, sigs[j].Weights)
			if truth[i] == truth[j] {
				within += c
				nWithin++
			} else {
				across += c
				nAcross++
			}
		}
	}
	if nWithin > 0 {
		rep.WithinCosine = within / float64(nWithin)
	}
	if nAcross > 0 {
		rep.AcrossCosine = across / float64(nAcross)
	}
	return rep, nil
}
