package evaluate

import (
	"strings"
	"testing"

	"tagdm/internal/datagen"
	"tagdm/internal/groups"
	"tagdm/internal/signature"
	"tagdm/internal/store"
)

func pipeline(t *testing.T) (*datagen.World, *store.Store, []*groups.Group, []signature.Signature, int) {
	t.Helper()
	cfg := datagen.Small()
	w, err := datagen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := store.New(w.Dataset)
	if err != nil {
		t.Fatal(err)
	}
	gs := (&groups.Enumerator{Store: s, MinTuples: 5}).FullyDescribed()
	lda, err := signature.TrainLDA(s, gs, cfg.Topics, 150, 1)
	if err != nil {
		t.Fatal(err)
	}
	return w, s, gs, signature.SummarizeAll(lda, s, gs), cfg.Topics
}

func TestRecoveryValidation(t *testing.T) {
	w, s, gs, sigs, k := pipeline(t)
	if _, err := Recovery(w, s, nil, nil, k); err == nil {
		t.Fatal("empty input accepted")
	}
	if _, err := Recovery(w, s, gs, sigs[:1], k); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestRecoveryOfPlantedStructure(t *testing.T) {
	w, s, gs, sigs, k := pipeline(t)
	rep, err := Recovery(w, s, gs, sigs, k)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Groups != len(gs) {
		t.Fatalf("groups = %d", rep.Groups)
	}
	// The LDA pipeline must beat chance purity by a clear margin and
	// produce positive cosine separation — this is the property the
	// DESIGN.md substitution argument rests on.
	if rep.Purity < rep.ChancePurity+0.1 {
		t.Fatalf("purity %.3f does not beat chance %.3f", rep.Purity, rep.ChancePurity)
	}
	if rep.SeparationGap() < 0.1 {
		t.Fatalf("separation gap %.3f too small (within %.3f, across %.3f)",
			rep.SeparationGap(), rep.WithinCosine, rep.AcrossCosine)
	}
	if !strings.Contains(rep.String(), "purity") {
		t.Fatal("String() missing fields")
	}
}

func TestRecoveryFrequencyBaseline(t *testing.T) {
	// Raw frequency signatures also separate the planted topics (tags of
	// one topic co-occur), though in a much higher-dimensional space.
	w, s, gs, _, k := pipeline(t)
	freq := signature.SummarizeAll(signature.NewFrequency(s), s, gs)
	rep, err := Recovery(w, s, gs, freq, k)
	if err != nil {
		t.Fatal(err)
	}
	if rep.SeparationGap() <= 0 {
		t.Fatalf("frequency separation gap %.3f", rep.SeparationGap())
	}
}
