package store

// Container-compressed (roaring-style) bitmap layout. The id universe is
// split into 2^16-id chunks; each chunk with at least one set bit owns a
// container holding the low 16 bits of its ids in one of two shapes:
//
//   - array container: a sorted []uint16, for chunks with at most arrMax
//     ids. Union/intersection over two arrays is a linear merge over the
//     ids that exist, not over the chunk.
//   - word container: chunkWords dense uint64 words, for chunks denser
//     than arrMax — at that point the flat words are both smaller than the
//     array and faster to scan.
//
// Containers promote (array -> words) when a mutation pushes them past
// arrMax and demote (words -> array) when an intersection drains them
// below arrDemote; the gap between the two thresholds is hysteresis so a
// container oscillating around the boundary does not thrash.
//
// Every container caches its cardinality, which is what makes the union
// kernels cheap on sparse operands: a chunk present on only one side of a
// union contributes card in O(1) instead of being scanned, and Count is a
// sum over containers instead of a pass over the universe.

import (
	"math/bits"
	"sort"
)

const (
	chunkBits  = 16
	chunkSize  = 1 << chunkBits       // ids per container
	chunkWords = chunkSize / wordBits // words per dense chunk

	// arrMax is the array-container ceiling. Roaring uses 4096 (the memory
	// break-even), but its merges are SIMD; a pure-Go dual scan costs a few
	// ns per element against ~1ns per 64-bit word on the dense side, so the
	// speed crossover sits far lower. 256 keeps array merges strictly
	// cheaper than a 1024-word chunk pass while word containers take over
	// for denser chunks at dense-layout speed.
	arrMax = 256
	// arrDemote is the hysteresis floor for words -> array demotion.
	arrDemote = arrMax / 2

	// compressMinUniverse gates Optimize: below it a dense bitmap is at
	// most 1024 words and the flat layout is already cheap.
	compressMinUniverse = 1 << 16
	// compressMaxDensityShift gates Optimize: compress when the overall
	// density card/n is at most 1/2^shift (~0.4%), the regime where
	// container occupancy clearly beats O(universe/64) passes in the
	// sparse benchmarks; between ~0.4% and a few percent the two layouts
	// are within ~1.3x of each other and dense keeps the simpler path.
	compressMaxDensityShift = 8
)

// shouldCompress is the build/append-time representation policy shared by
// Store.Optimize and group enumeration.
func shouldCompress(card, n int) bool {
	return n >= compressMinUniverse && card <= n>>compressMaxDensityShift
}

// b2i is the branchless bool->int the merge kernels lean on.
func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// container holds one chunk's ids. Exactly one representation is active,
// selected by isArr; the inactive slice keeps its capacity so reusable
// buffers (DFS union levels, scorer scratch) stop allocating once warm.
type container struct {
	key   int32 // chunk index: ids [key<<16, (key+1)<<16)
	card  int32 // cached cardinality of the active representation
	isArr bool
	arr   []uint16 // sorted unique low bits, len == card when active
	bits  []uint64 // chunkWords words when active
}

func (c *container) base() int { return int(c.key) << chunkBits }

// ensureBits makes c.bits a zeroed chunkWords-long slice, reusing capacity.
func (c *container) ensureBits() {
	if cap(c.bits) >= chunkWords {
		c.bits = c.bits[:chunkWords]
		for i := range c.bits {
			c.bits[i] = 0
		}
		return
	}
	c.bits = make([]uint64, chunkWords)
}

// growArr resizes c.arr to n entries, reusing capacity.
func (c *container) growArr(n int) {
	if cap(c.arr) >= n {
		c.arr = c.arr[:n]
		return
	}
	grown := make([]uint16, n)
	copy(grown, c.arr)
	c.arr = grown
}

func (c *container) contains(lo uint16) bool {
	if c.isArr {
		i := sort.Search(len(c.arr), func(i int) bool { return c.arr[i] >= lo })
		return i < len(c.arr) && c.arr[i] == lo
	}
	return c.bits[lo/wordBits]&(1<<(lo%wordBits)) != 0
}

func (c *container) set(lo uint16) {
	if !c.isArr {
		w, m := lo/wordBits, uint64(1)<<(lo%wordBits)
		if c.bits[w]&m == 0 {
			c.bits[w] |= m
			c.card++
		}
		return
	}
	i := sort.Search(len(c.arr), func(i int) bool { return c.arr[i] >= lo })
	if i < len(c.arr) && c.arr[i] == lo {
		return
	}
	if len(c.arr) >= arrMax {
		c.promote()
		c.set(lo)
		return
	}
	c.arr = append(c.arr, 0)
	copy(c.arr[i+1:], c.arr[i:])
	c.arr[i] = lo
	c.card++
}

// promote converts an array container to words; the array keeps its
// capacity as spare storage.
func (c *container) promote() {
	arr := c.arr
	c.ensureBits()
	for _, v := range arr {
		c.bits[v/wordBits] |= 1 << (v % wordBits)
	}
	c.isArr = false
	c.arr = arr[:0]
}

// demoteIfSparse converts a word container back to an array once an
// intersection drained it below arrDemote.
func (c *container) demoteIfSparse() {
	if c.isArr || int(c.card) > arrDemote {
		return
	}
	bitsW := c.bits
	c.growArr(int(c.card))
	k := 0
	for wi, w := range bitsW {
		for w != 0 {
			tz := bits.TrailingZeros64(w)
			c.arr[k] = uint16(wi*wordBits + tz)
			k++
			w &= w - 1
		}
	}
	c.isArr = true
	c.bits = bitsW[:0]
}

// recount refreshes the cached cardinality of a word container.
func (c *container) recount() {
	n := 0
	for _, w := range c.bits {
		n += bits.OnesCount64(w)
	}
	c.card = int32(n)
}

func (c *container) forEach(base int, fn func(id int) bool) bool {
	if c.isArr {
		for _, v := range c.arr {
			if !fn(base + int(v)) {
				return false
			}
		}
		return true
	}
	for wi, w := range c.bits {
		for w != 0 {
			tz := bits.TrailingZeros64(w)
			if !fn(base + wi*wordBits + tz) {
				return false
			}
			w &= w - 1
		}
	}
	return true
}

// writeWords ORs the container into a dense chunk slice, which may be
// shorter than chunkWords at a universe tail; ids past it are dropped.
func (c *container) writeWords(dst []uint64) {
	if c.isArr {
		for _, v := range c.arr {
			w := int(v) / wordBits
			if w >= len(dst) {
				break // sorted: everything after is past the tail too
			}
			dst[w] |= 1 << (v % wordBits)
		}
		return
	}
	n := len(c.bits)
	if len(dst) < n {
		n = len(dst)
	}
	for i := 0; i < n; i++ {
		dst[i] |= c.bits[i]
	}
}

// clampTo drops ids >= lim (an in-chunk bound in (0, chunkSize]).
func (c *container) clampTo(lim int) {
	if lim >= chunkSize {
		return
	}
	if c.isArr {
		i := sort.Search(len(c.arr), func(i int) bool { return int(c.arr[i]) >= lim })
		c.arr = c.arr[:i]
		c.card = int32(i)
		return
	}
	w := lim / wordBits
	if w < len(c.bits) {
		c.bits[w] &= (1 << uint(lim%wordBits)) - 1
		for i := w + 1; i < len(c.bits); i++ {
			c.bits[i] = 0
		}
	}
	c.recount()
}

// copyCtrInto overwrites dst with src's active representation, reusing
// dst's storage.
func copyCtrInto(dst, src *container) {
	dst.key, dst.card, dst.isArr = src.key, src.card, src.isArr
	if src.isArr {
		dst.growArr(len(src.arr))
		copy(dst.arr, src.arr)
		if dst.bits != nil {
			dst.bits = dst.bits[:0]
		}
		return
	}
	if cap(dst.bits) >= chunkWords {
		dst.bits = dst.bits[:chunkWords]
	} else {
		dst.bits = make([]uint64, chunkWords)
	}
	copy(dst.bits, src.bits)
	if dst.arr != nil {
		dst.arr = dst.arr[:0]
	}
}

// ctrFromWordsInto rebuilds dst from a dense chunk, choosing the array
// shape when the chunk is sparse enough.
func ctrFromWordsInto(dst *container, key int32, words []uint64) {
	card := 0
	for _, w := range words {
		card += bits.OnesCount64(w)
	}
	dst.key, dst.card = key, int32(card)
	if card <= arrMax {
		dst.isArr = true
		dst.growArr(card)
		k := 0
		for wi, w := range words {
			for w != 0 {
				tz := bits.TrailingZeros64(w)
				dst.arr[k] = uint16(wi*wordBits + tz)
				k++
				w &= w - 1
			}
		}
		if dst.bits != nil {
			dst.bits = dst.bits[:0]
		}
		return
	}
	dst.isArr = false
	dst.ensureBits()
	copy(dst.bits, words)
}

// --- container-pair kernels ---

// orCountCtr returns |a OR b| for two containers of the same key.
func orCountCtr(a, b *container) int {
	switch {
	case a.isArr && b.isArr:
		// Branchless dual scan: the cursor advances are data dependencies
		// (SETcc+ADD), not branches, so random ids cannot mispredict.
		aa, ba := a.arr, b.arr
		i, j, dup := 0, 0, 0
		for i < len(aa) && j < len(ba) {
			x, y := aa[i], ba[j]
			dup += b2i(x == y)
			i += b2i(x <= y)
			j += b2i(y <= x)
		}
		return len(aa) + len(ba) - dup
	case !a.isArr && !b.isArr:
		c := 0
		for i := range a.bits {
			c += bits.OnesCount64(a.bits[i] | b.bits[i])
		}
		return c
	}
	arr, wc := a, b
	if !a.isArr {
		arr, wc = b, a
	}
	c := int(wc.card)
	for _, v := range arr.arr {
		if wc.bits[v/wordBits]&(1<<(v%wordBits)) == 0 {
			c++
		}
	}
	return c
}

// andCountCtr returns |a AND b| for two containers of the same key.
func andCountCtr(a, b *container) int {
	switch {
	case a.isArr && b.isArr:
		aa, ba := a.arr, b.arr
		i, j, c := 0, 0, 0
		for i < len(aa) && j < len(ba) {
			x, y := aa[i], ba[j]
			c += b2i(x == y)
			i += b2i(x <= y)
			j += b2i(y <= x)
		}
		return c
	case !a.isArr && !b.isArr:
		c := 0
		for i := range a.bits {
			c += bits.OnesCount64(a.bits[i] & b.bits[i])
		}
		return c
	}
	arr, wc := a, b
	if !a.isArr {
		arr, wc = b, a
	}
	c := 0
	for _, v := range arr.arr {
		if wc.bits[v/wordBits]&(1<<(v%wordBits)) != 0 {
			c++
		}
	}
	return c
}

// orCountCtrWords returns |c OR chunk| where chunk is a dense word slice
// (possibly short at a universe tail).
func orCountCtrWords(c *container, words []uint64) int {
	if !c.isArr {
		n := len(c.bits)
		if len(words) < n {
			n = len(words)
		}
		total := 0
		for i := 0; i < n; i++ {
			total += bits.OnesCount64(c.bits[i] | words[i])
		}
		for _, w := range c.bits[n:] {
			total += bits.OnesCount64(w)
		}
		for _, w := range words[n:] {
			total += bits.OnesCount64(w)
		}
		return total
	}
	total := 0
	for _, w := range words {
		total += bits.OnesCount64(w)
	}
	for _, v := range c.arr {
		w := int(v) / wordBits
		if w >= len(words) || words[w]&(1<<(v%wordBits)) == 0 {
			total++
		}
	}
	return total
}

// andCountCtrWords returns |c AND chunk|.
func andCountCtrWords(c *container, words []uint64) int {
	if !c.isArr {
		n := len(c.bits)
		if len(words) < n {
			n = len(words)
		}
		total := 0
		for i := 0; i < n; i++ {
			total += bits.OnesCount64(c.bits[i] & words[i])
		}
		return total
	}
	total := 0
	for _, v := range c.arr {
		w := int(v) / wordBits
		if w < len(words) && words[w]&(1<<(v%wordBits)) != 0 {
			total++
		}
	}
	return total
}

// orCtr unions o into c in place, promoting when the result outgrows the
// array shape.
func (c *container) orCtr(o *container) {
	switch {
	case c.isArr && o.isArr:
		ul := len(c.arr) + len(o.arr) - andCountCtr(c, o)
		if ul > arrMax {
			c.promote()
			c.orCtr(o)
			return
		}
		// Backward merge into c.arr grown in place.
		i, j := len(c.arr)-1, len(o.arr)-1
		c.growArr(ul)
		for k := ul - 1; j >= 0; k-- {
			if i >= 0 && c.arr[i] > o.arr[j] {
				c.arr[k] = c.arr[i]
				i--
			} else {
				if i >= 0 && c.arr[i] == o.arr[j] {
					i--
				}
				c.arr[k] = o.arr[j]
				j--
			}
		}
		c.card = int32(ul)
	case !c.isArr && o.isArr:
		for _, v := range o.arr {
			w, m := v/wordBits, uint64(1)<<(v%wordBits)
			if c.bits[w]&m == 0 {
				c.bits[w] |= m
				c.card++
			}
		}
	case c.isArr && !o.isArr:
		arr := c.arr
		copyCtrInto(c, o)
		for _, v := range arr {
			c.set(v)
		}
	default:
		n := 0
		for i := range c.bits {
			c.bits[i] |= o.bits[i]
			n += bits.OnesCount64(c.bits[i])
		}
		c.card = int32(n)
	}
}

// orWords unions a dense chunk into c in place.
func (c *container) orWords(words []uint64) {
	if c.isArr {
		var tmp container
		ctrFromWordsInto(&tmp, c.key, words)
		c.orCtr(&tmp)
		return
	}
	for i, w := range words {
		c.bits[i] |= w
	}
	c.recount()
}

// andCtr intersects c with o in place; empty results are dropped by the
// caller.
func (c *container) andCtr(o *container) {
	switch {
	case c.isArr && o.isArr:
		k := 0
		i, j := 0, 0
		for i < len(c.arr) && j < len(o.arr) {
			switch {
			case c.arr[i] < o.arr[j]:
				i++
			case c.arr[i] > o.arr[j]:
				j++
			default:
				c.arr[k] = c.arr[i]
				k++
				i++
				j++
			}
		}
		c.arr = c.arr[:k]
		c.card = int32(k)
	case c.isArr && !o.isArr:
		k := 0
		for _, v := range c.arr {
			if o.bits[v/wordBits]&(1<<(v%wordBits)) != 0 {
				c.arr[k] = v
				k++
			}
		}
		c.arr = c.arr[:k]
		c.card = int32(k)
	case !c.isArr && o.isArr:
		bitsW := c.bits
		c.growArr(0)
		for _, v := range o.arr {
			if bitsW[v/wordBits]&(1<<(v%wordBits)) != 0 {
				c.arr = append(c.arr, v)
			}
		}
		c.isArr = true
		c.card = int32(len(c.arr))
		c.bits = bitsW[:0]
	default:
		for i := range c.bits {
			c.bits[i] &= o.bits[i]
		}
		c.recount()
		c.demoteIfSparse()
	}
}

// andWords intersects c with a dense chunk (short tails intersect as
// zeros).
func (c *container) andWords(words []uint64) {
	if c.isArr {
		k := 0
		for _, v := range c.arr {
			w := int(v) / wordBits
			if w < len(words) && words[w]&(1<<(v%wordBits)) != 0 {
				c.arr[k] = v
				k++
			}
		}
		c.arr = c.arr[:k]
		c.card = int32(k)
		return
	}
	n := len(c.bits)
	if len(words) < n {
		n = len(words)
	}
	for i := 0; i < n; i++ {
		c.bits[i] &= words[i]
	}
	for i := n; i < len(c.bits); i++ {
		c.bits[i] = 0
	}
	c.recount()
	c.demoteIfSparse()
}

// andNotCtr removes o's ids from c in place.
func (c *container) andNotCtr(o *container) {
	switch {
	case c.isArr && o.isArr:
		k := 0
		j := 0
		for _, v := range c.arr {
			for j < len(o.arr) && o.arr[j] < v {
				j++
			}
			if j < len(o.arr) && o.arr[j] == v {
				continue
			}
			c.arr[k] = v
			k++
		}
		c.arr = c.arr[:k]
		c.card = int32(k)
	case c.isArr && !o.isArr:
		k := 0
		for _, v := range c.arr {
			if o.bits[v/wordBits]&(1<<(v%wordBits)) == 0 {
				c.arr[k] = v
				k++
			}
		}
		c.arr = c.arr[:k]
		c.card = int32(k)
	case !c.isArr && o.isArr:
		for _, v := range o.arr {
			c.bits[v/wordBits] &^= 1 << (v % wordBits)
		}
		c.recount()
		c.demoteIfSparse()
	default:
		for i := range c.bits {
			c.bits[i] &^= o.bits[i]
		}
		c.recount()
		c.demoteIfSparse()
	}
}

// andNotWords removes a dense chunk's ids from c.
func (c *container) andNotWords(words []uint64) {
	if c.isArr {
		k := 0
		for _, v := range c.arr {
			w := int(v) / wordBits
			if w < len(words) && words[w]&(1<<(v%wordBits)) != 0 {
				continue
			}
			c.arr[k] = v
			k++
		}
		c.arr = c.arr[:k]
		c.card = int32(k)
		return
	}
	n := len(c.bits)
	if len(words) < n {
		n = len(words)
	}
	for i := 0; i < n; i++ {
		c.bits[i] &^= words[i]
	}
	c.recount()
	c.demoteIfSparse()
}

// unionCtrInto writes a OR b into dst (distinct from both), reusing dst's
// storage.
func unionCtrInto(dst, a, b *container) {
	dst.key = a.key
	switch {
	case a.isArr && b.isArr:
		// Single pass: merge into dst.arr sized by the len(a)+len(b) upper
		// bound (at most 2*arrMax entries), then pick the final shape from
		// the true union size — no counting pre-pass.
		aa, ba := a.arr, b.arr
		dst.growArr(len(aa) + len(ba))
		out := dst.arr
		i, j, k := 0, 0, 0
		for i < len(aa) && j < len(ba) {
			x, y := aa[i], ba[j]
			v := x
			if y < x {
				v = y
			}
			out[k] = v
			k++
			i += b2i(x <= y)
			j += b2i(y <= x)
		}
		k += copy(out[k:], aa[i:])
		k += copy(out[k:], ba[j:])
		dst.card = int32(k)
		if k <= arrMax {
			dst.isArr = true
			dst.arr = out[:k]
			if dst.bits != nil {
				dst.bits = dst.bits[:0]
			}
			return
		}
		dst.isArr = false
		dst.ensureBits()
		for _, v := range out[:k] {
			dst.bits[v/wordBits] |= 1 << (v % wordBits)
		}
		dst.arr = out[:0]
	case !a.isArr && !b.isArr:
		dst.isArr = false
		if cap(dst.bits) >= chunkWords {
			dst.bits = dst.bits[:chunkWords]
		} else {
			dst.bits = make([]uint64, chunkWords)
		}
		n := 0
		for i := range a.bits {
			w := a.bits[i] | b.bits[i]
			dst.bits[i] = w
			n += bits.OnesCount64(w)
		}
		dst.card = int32(n)
		if dst.arr != nil {
			dst.arr = dst.arr[:0]
		}
	default:
		arr, wc := a, b
		if !a.isArr {
			arr, wc = b, a
		}
		copyCtrInto(dst, wc)
		dst.key = a.key
		for _, v := range arr.arr {
			w, m := v/wordBits, uint64(1)<<(v%wordBits)
			if dst.bits[w]&m == 0 {
				dst.bits[w] |= m
				dst.card++
			}
		}
	}
}

// --- bitmap-level hybrid kernels ---

// denseChunk returns the word slice backing chunk key of a dense word
// array (nil when the chunk lies entirely past the array).
func denseChunk(words []uint64, key int32) []uint64 {
	lo := int(key) * chunkWords
	if lo >= len(words) {
		return nil
	}
	hi := lo + chunkWords
	if hi > len(words) {
		hi = len(words)
	}
	return words[lo:hi]
}

func allZero(words []uint64) bool {
	for _, w := range words {
		if w != 0 {
			return false
		}
	}
	return true
}

// findCtr locates the container for key; when absent, idx is its insertion
// point.
func findCtr(ctrs []container, key int32) (idx int, ok bool) {
	idx = sort.Search(len(ctrs), func(i int) bool { return ctrs[i].key >= key })
	return idx, idx < len(ctrs) && ctrs[idx].key == key
}

// ctrAt returns the container for key, inserting an empty array container
// when absent.
func (b *Bitmap) ctrAt(key int32) *container {
	idx, ok := findCtr(b.ctrs, key)
	if !ok {
		b.ctrs = append(b.ctrs, container{})
		copy(b.ctrs[idx+1:], b.ctrs[idx:])
		b.ctrs[idx] = container{key: key, isArr: true}
	}
	return &b.ctrs[idx]
}

func (b *Bitmap) setCompressed(id int) {
	if id < 0 || id >= b.n {
		panic("store: Set out of range on compressed bitmap")
	}
	b.ctrAt(int32(id >> chunkBits)).set(uint16(id & (chunkSize - 1)))
}

func (b *Bitmap) containsCompressed(id int) bool {
	idx, ok := findCtr(b.ctrs, int32(id>>chunkBits))
	return ok && b.ctrs[idx].contains(uint16(id&(chunkSize-1)))
}

// takeSlot extends b.ctrs by one logical slot, reviving spare container
// storage when the backing array still holds it.
func (b *Bitmap) takeSlot() *container {
	if len(b.ctrs) < cap(b.ctrs) {
		b.ctrs = b.ctrs[:len(b.ctrs)+1]
	} else {
		b.ctrs = append(b.ctrs, container{})
	}
	return &b.ctrs[len(b.ctrs)-1]
}

// orHybrid is Or for any operand mix involving a compressed side. Like the
// dense path it grows b to other's universe when larger.
func (b *Bitmap) orHybrid(other *Bitmap) {
	if other.n > b.n {
		if !b.compressed {
			need := (other.n + wordBits - 1) / wordBits
			if need > len(b.words) {
				grown := make([]uint64, need)
				copy(grown, b.words)
				b.words = grown
			}
		}
		b.n = other.n
	}
	switch {
	case b.compressed && other.compressed:
		for i := range other.ctrs {
			o := &other.ctrs[i]
			idx, ok := findCtr(b.ctrs, o.key)
			if ok {
				b.ctrs[idx].orCtr(o)
			} else {
				b.ctrs = append(b.ctrs, container{})
				copy(b.ctrs[idx+1:], b.ctrs[idx:])
				b.ctrs[idx] = container{}
				copyCtrInto(&b.ctrs[idx], o)
			}
		}
	case b.compressed:
		for key := int32(0); int(key)*chunkWords < len(other.words); key++ {
			ch := denseChunk(other.words, key)
			if allZero(ch) {
				continue
			}
			idx, ok := findCtr(b.ctrs, key)
			if ok {
				b.ctrs[idx].orWords(ch)
			} else {
				b.ctrs = append(b.ctrs, container{})
				copy(b.ctrs[idx+1:], b.ctrs[idx:])
				b.ctrs[idx] = container{}
				ctrFromWordsInto(&b.ctrs[idx], key, ch)
			}
		}
	default:
		for i := range other.ctrs {
			c := &other.ctrs[i]
			c.writeWords(denseChunk(b.words, c.key))
		}
	}
}

// andHybrid is And for any operand mix involving a compressed side: b's
// universe is unchanged and ids other cannot hold are cleared.
func (b *Bitmap) andHybrid(other *Bitmap) {
	switch {
	case b.compressed && other.compressed:
		out := b.ctrs[:0]
		j := 0
		for i := range b.ctrs {
			c := b.ctrs[i]
			for j < len(other.ctrs) && other.ctrs[j].key < c.key {
				j++
			}
			if j >= len(other.ctrs) || other.ctrs[j].key != c.key {
				continue
			}
			c.andCtr(&other.ctrs[j])
			if c.card > 0 {
				out = append(out, c)
			}
		}
		b.ctrs = out
	case b.compressed:
		out := b.ctrs[:0]
		for i := range b.ctrs {
			c := b.ctrs[i]
			ch := denseChunk(other.words, c.key)
			if ch == nil {
				continue
			}
			c.andWords(ch)
			if c.card > 0 {
				out = append(out, c)
			}
		}
		b.ctrs = out
	default:
		j := 0
		for key := int32(0); int(key)*chunkWords < len(b.words); key++ {
			ch := denseChunk(b.words, key)
			for j < len(other.ctrs) && other.ctrs[j].key < key {
				j++
			}
			if j >= len(other.ctrs) || other.ctrs[j].key != key {
				for i := range ch {
					ch[i] = 0
				}
				continue
			}
			maskWordsByCtr(ch, &other.ctrs[j])
		}
	}
}

// maskWordsByCtr intersects a dense chunk with a container in place.
func maskWordsByCtr(ch []uint64, c *container) {
	if !c.isArr {
		for i := range ch {
			ch[i] &= c.bits[i]
		}
		return
	}
	var tmp [chunkWords]uint64
	for _, v := range c.arr {
		tmp[v/wordBits] |= 1 << (v % wordBits)
	}
	for i := range ch {
		ch[i] &= tmp[i]
	}
}

// andNotHybrid is AndNot for any operand mix involving a compressed side.
func (b *Bitmap) andNotHybrid(other *Bitmap) {
	switch {
	case b.compressed && other.compressed:
		out := b.ctrs[:0]
		j := 0
		for i := range b.ctrs {
			c := b.ctrs[i]
			for j < len(other.ctrs) && other.ctrs[j].key < c.key {
				j++
			}
			if j < len(other.ctrs) && other.ctrs[j].key == c.key {
				c.andNotCtr(&other.ctrs[j])
			}
			if c.card > 0 {
				out = append(out, c)
			}
		}
		b.ctrs = out
	case b.compressed:
		out := b.ctrs[:0]
		for i := range b.ctrs {
			c := b.ctrs[i]
			if ch := denseChunk(other.words, c.key); ch != nil {
				c.andNotWords(ch)
			}
			if c.card > 0 {
				out = append(out, c)
			}
		}
		b.ctrs = out
	default:
		for i := range other.ctrs {
			c := &other.ctrs[i]
			ch := denseChunk(b.words, c.key)
			if ch == nil {
				continue
			}
			if !c.isArr {
				n := len(ch)
				for k := 0; k < n; k++ {
					ch[k] &^= c.bits[k]
				}
				continue
			}
			for _, v := range c.arr {
				w := int(v) / wordBits
				if w >= len(ch) {
					break
				}
				ch[w] &^= 1 << (v % wordBits)
			}
		}
	}
}

// copyFromHybrid is CopyFrom for any operand mix involving a compressed
// side: b keeps its universe and representation, other's ids >= b.n drop.
func (b *Bitmap) copyFromHybrid(other *Bitmap) {
	if !b.compressed {
		for i := range b.words {
			b.words[i] = 0
		}
		for i := range other.ctrs {
			c := &other.ctrs[i]
			c.writeWords(denseChunk(b.words, c.key))
		}
		b.clampTail()
		return
	}
	b.ctrs = b.ctrs[:0]
	if other.compressed {
		for i := range other.ctrs {
			src := &other.ctrs[i]
			if src.base() >= b.n {
				break
			}
			slot := b.takeSlot()
			copyCtrInto(slot, src)
			if src.base()+chunkSize > b.n {
				slot.clampTo(b.n - src.base())
				if slot.card == 0 {
					b.ctrs = b.ctrs[:len(b.ctrs)-1]
				}
			}
		}
		return
	}
	for key := int32(0); int(key)*chunkWords < len(other.words); key++ {
		base := int(key) << chunkBits
		if base >= b.n {
			break
		}
		ch := denseChunk(other.words, key)
		if allZero(ch) {
			continue
		}
		slot := b.takeSlot()
		ctrFromWordsInto(slot, key, ch)
		if base+chunkSize > b.n {
			slot.clampTo(b.n - base)
		}
		if slot.card == 0 {
			b.ctrs = b.ctrs[:len(b.ctrs)-1]
		}
	}
}

// orCountHybrid is OrCount for any operand mix involving a compressed
// side. Two compressed operands visit containers only; a chunk present on
// one side contributes its cached cardinality in O(1).
func orCountHybrid(b, other *Bitmap) int {
	if b.compressed && other.compressed {
		i, j, total := 0, 0, 0
		for i < len(b.ctrs) && j < len(other.ctrs) {
			switch {
			case b.ctrs[i].key < other.ctrs[j].key:
				total += int(b.ctrs[i].card)
				i++
			case b.ctrs[i].key > other.ctrs[j].key:
				total += int(other.ctrs[j].card)
				j++
			default:
				total += orCountCtr(&b.ctrs[i], &other.ctrs[j])
				i++
				j++
			}
		}
		for ; i < len(b.ctrs); i++ {
			total += int(b.ctrs[i].card)
		}
		for ; j < len(other.ctrs); j++ {
			total += int(other.ctrs[j].card)
		}
		return total
	}
	comp, dense := b, other
	if !b.compressed {
		comp, dense = other, b
	}
	total := 0
	ci := 0
	for key := int32(0); int(key)*chunkWords < len(dense.words); key++ {
		ch := denseChunk(dense.words, key)
		for ci < len(comp.ctrs) && comp.ctrs[ci].key < key {
			total += int(comp.ctrs[ci].card)
			ci++
		}
		if ci < len(comp.ctrs) && comp.ctrs[ci].key == key {
			total += orCountCtrWords(&comp.ctrs[ci], ch)
			ci++
			continue
		}
		for _, w := range ch {
			total += bits.OnesCount64(w)
		}
	}
	for ; ci < len(comp.ctrs); ci++ {
		total += int(comp.ctrs[ci].card)
	}
	return total
}

// andCountHybrid is AndCount for any operand mix involving a compressed
// side.
func andCountHybrid(b, other *Bitmap) int {
	if b.compressed && other.compressed {
		i, j, total := 0, 0, 0
		for i < len(b.ctrs) && j < len(other.ctrs) {
			switch {
			case b.ctrs[i].key < other.ctrs[j].key:
				i++
			case b.ctrs[i].key > other.ctrs[j].key:
				j++
			default:
				total += andCountCtr(&b.ctrs[i], &other.ctrs[j])
				i++
				j++
			}
		}
		return total
	}
	comp, dense := b, other
	if !b.compressed {
		comp, dense = other, b
	}
	total := 0
	for i := range comp.ctrs {
		c := &comp.ctrs[i]
		if ch := denseChunk(dense.words, c.key); ch != nil {
			total += andCountCtrWords(c, ch)
		}
	}
	return total
}

// unionCountIntoHybrid is UnionCountInto for any operand/dst mix involving
// a compressed side. A compressed dst fed two distinct compressed operands
// takes the allocation-free three-way merge — the Exact DFS hot path on
// sparse corpora; alias patterns (acc.UnionCountInto(next, acc)) union in
// place.
func unionCountIntoHybrid(b, other, dst *Bitmap) int {
	if dst.n < b.n || dst.n < other.n {
		panic("store: UnionCountInto dst universe smaller than an operand")
	}
	if dst.compressed && b.compressed && other.compressed && dst != b && dst != other {
		return mergeCtrsInto(dst, b, other)
	}
	switch {
	case dst == b:
		dst.Or(other)
	case dst == other:
		dst.Or(b)
	default:
		dst.CopyFrom(b) // zeroes dst's tail, so no stale bits survive
		dst.Or(other)
	}
	return dst.Count()
}

// mergeCtrsInto writes b OR other into dst's container list, reusing dst's
// slots and their storage, and returns the union cardinality.
func mergeCtrsInto(dst, b, other *Bitmap) int {
	dst.ctrs = dst.ctrs[:0]
	i, j, total := 0, 0, 0
	for i < len(b.ctrs) || j < len(other.ctrs) {
		slot := dst.takeSlot()
		switch {
		case j >= len(other.ctrs) || (i < len(b.ctrs) && b.ctrs[i].key < other.ctrs[j].key):
			copyCtrInto(slot, &b.ctrs[i])
			i++
		case i >= len(b.ctrs) || other.ctrs[j].key < b.ctrs[i].key:
			copyCtrInto(slot, &other.ctrs[j])
			j++
		default:
			unionCtrInto(slot, &b.ctrs[i], &other.ctrs[j])
			i++
			j++
		}
		total += int(slot.card)
	}
	return total
}

// --- representation selection ---

// IsCompressed reports whether b uses the container layout.
func (b *Bitmap) IsCompressed() bool { return b.compressed }

// NewCompressedBitmap returns an empty container-compressed bitmap over a
// universe of n tuple ids.
func NewCompressedBitmap(n int) *Bitmap {
	return &Bitmap{n: n, compressed: true}
}

// ToCompressed converts b to the container layout in place (no-op when
// already compressed) and returns b.
func (b *Bitmap) ToCompressed() *Bitmap {
	if b.compressed {
		return b
	}
	var ctrs []container
	for key := int32(0); int(key)*chunkWords < len(b.words); key++ {
		ch := denseChunk(b.words, key)
		if allZero(ch) {
			continue
		}
		var c container
		ctrFromWordsInto(&c, key, ch)
		ctrs = append(ctrs, c)
	}
	b.ctrs = ctrs
	b.words = nil
	b.compressed = true
	return b
}

// ToDense converts b to the flat word layout in place (no-op when already
// dense) and returns b.
func (b *Bitmap) ToDense() *Bitmap {
	if !b.compressed {
		return b
	}
	words := make([]uint64, (b.n+wordBits-1)/wordBits)
	for i := range b.ctrs {
		c := &b.ctrs[i]
		c.writeWords(denseChunk(words, c.key))
	}
	b.words = words
	b.ctrs = nil
	b.compressed = false
	return b
}

// Optimize re-selects b's representation by the build/append-time policy:
// container-compressed when the universe is at least 2^16 ids and overall
// density is at most ~0.4%, dense otherwise. Call it after bulk builds;
// kernels are exact either way, so this is purely a layout decision.
func (b *Bitmap) Optimize() *Bitmap {
	if shouldCompress(b.Count(), b.n) {
		return b.ToCompressed()
	}
	return b.ToDense()
}
