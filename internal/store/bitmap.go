// Package store provides an in-memory columnar store over expanded tagging
// action tuples r = <user attrs..., item attrs..., tags> (paper Section 2).
// Conjunctive predicates evaluate by intersecting per-(attribute, value)
// bitmap posting lists, and group support (Definition 1) is the cardinality
// of a union of group bitmaps.
package store

import "math/bits"

const wordBits = 64

// Bitmap is a fixed-universe bitset over tuple ids [0, n).
type Bitmap struct {
	words []uint64
	n     int
}

// NewBitmap returns an empty bitmap over a universe of n tuple ids.
func NewBitmap(n int) *Bitmap {
	return &Bitmap{words: make([]uint64, (n+wordBits-1)/wordBits), n: n}
}

// Universe returns the size of the id universe.
func (b *Bitmap) Universe() int { return b.n }

// Set marks id as present.
func (b *Bitmap) Set(id int) {
	b.words[id/wordBits] |= 1 << (uint(id) % wordBits)
}

// Contains reports whether id is present.
func (b *Bitmap) Contains(id int) bool {
	if id < 0 || id >= b.n {
		return false
	}
	return b.words[id/wordBits]&(1<<(uint(id)%wordBits)) != 0
}

// Count returns the number of set bits.
func (b *Bitmap) Count() int {
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Clone returns a deep copy.
func (b *Bitmap) Clone() *Bitmap {
	out := &Bitmap{words: make([]uint64, len(b.words)), n: b.n}
	copy(out.words, b.words)
	return out
}

// And intersects other into b in place. When other covers a smaller
// universe, the ids beyond it are absent from other by definition, so b's
// tail is cleared rather than read out of range.
func (b *Bitmap) And(other *Bitmap) {
	n := len(b.words)
	if len(other.words) < n {
		n = len(other.words)
	}
	for i := 0; i < n; i++ {
		b.words[i] &= other.words[i]
	}
	for i := n; i < len(b.words); i++ {
		b.words[i] = 0
	}
}

// Or unions other into b in place. If other covers a larger universe, b
// grows to match (supports incremental appends).
func (b *Bitmap) Or(other *Bitmap) {
	if len(other.words) > len(b.words) {
		grown := make([]uint64, len(other.words))
		copy(grown, b.words)
		b.words = grown
		b.n = other.n
	}
	for i, w := range other.words {
		b.words[i] |= w
	}
}

// AndNot removes other's bits from b in place.
func (b *Bitmap) AndNot(other *Bitmap) {
	n := len(b.words)
	if len(other.words) < n {
		n = len(other.words)
	}
	for i := 0; i < n; i++ {
		b.words[i] &^= other.words[i]
	}
}

// Grow extends the universe to at least n ids, preserving contents.
func (b *Bitmap) Grow(n int) {
	if n <= b.n {
		return
	}
	need := (n + wordBits - 1) / wordBits
	if need > len(b.words) {
		grown := make([]uint64, need)
		copy(grown, b.words)
		b.words = grown
	}
	b.n = n
}

// ForEach calls fn for every set id in ascending order. Iteration stops if
// fn returns false.
func (b *Bitmap) ForEach(fn func(id int) bool) {
	for wi, w := range b.words {
		for w != 0 {
			tz := bits.TrailingZeros64(w)
			if !fn(wi*wordBits + tz) {
				return
			}
			w &= w - 1
		}
	}
}

// Slice returns all set ids in ascending order.
func (b *Bitmap) Slice() []int {
	out := make([]int, 0, b.Count())
	b.ForEach(func(id int) bool {
		out = append(out, id)
		return true
	})
	return out
}

// CopyFrom overwrites b's contents with other's, keeping b's universe.
// Words beyond the shorter operand are zeroed; set bits of other beyond b's
// universe are dropped. It is the reset step of reusable-buffer pipelines
// (incremental support unions, predicate evaluation) that would otherwise
// Clone per use.
func (b *Bitmap) CopyFrom(other *Bitmap) {
	n := copy(b.words, other.words)
	for i := n; i < len(b.words); i++ {
		b.words[i] = 0
	}
}

// AndCount returns |b AND other| without materializing the intersection.
func (b *Bitmap) AndCount(other *Bitmap) int {
	n := len(b.words)
	if len(other.words) < n {
		n = len(other.words)
	}
	c := 0
	for i := 0; i < n; i++ {
		c += bits.OnesCount64(b.words[i] & other.words[i])
	}
	return c
}

// OrCount returns |b OR other| in one pass without materializing the
// union — the two-set support check without a Clone.
func (b *Bitmap) OrCount(other *Bitmap) int {
	short, long := b.words, other.words
	if len(short) > len(long) {
		short, long = long, short
	}
	c := 0
	for i, w := range short {
		c += bits.OnesCount64(w | long[i])
	}
	for _, w := range long[len(short):] {
		c += bits.OnesCount64(w)
	}
	return c
}

// UnionCountInto sets dst = b OR other and returns the resulting
// cardinality, all in one pass with no allocation. dst must cover a
// universe at least as large as both operands'; its tail words are zeroed,
// so a reused buffer never leaks bits from a previous union. dst may alias
// b or other (each word is read before it is written), which is how an
// accumulator unions in place: acc.UnionCountInto(next, acc). It is the
// push step of incremental support maintenance: each union level of a
// depth-first search derives from its parent without a Clone.
func (b *Bitmap) UnionCountInto(other, dst *Bitmap) int {
	short, long := b.words, other.words
	if len(short) > len(long) {
		short, long = long, short
	}
	// No clamping: an undersized dst would silently drop bits and
	// under-count support, so let the index below fail loudly instead.
	c := 0
	for i, w := range short {
		u := w | long[i]
		dst.words[i] = u
		c += bits.OnesCount64(u)
	}
	for i := len(short); i < len(long); i++ {
		w := long[i]
		dst.words[i] = w
		c += bits.OnesCount64(w)
	}
	for i := len(long); i < len(dst.words); i++ {
		dst.words[i] = 0
	}
	return c
}

// UnionCount returns the cardinality of the union of the given bitmaps.
// It implements group support: Support = |{r : exists g in G, r in g}|.
// The one- and two-set cases — the bulk of support checks for small k —
// avoid materializing anything.
func UnionCount(maps []*Bitmap) int {
	switch len(maps) {
	case 0:
		return 0
	case 1:
		return maps[0].Count()
	case 2:
		return maps[0].OrCount(maps[1])
	}
	u := maps[0].Clone()
	for _, m := range maps[1:] {
		u.Or(m)
	}
	return u.Count()
}
