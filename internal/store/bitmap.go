// Package store provides an in-memory columnar store over expanded tagging
// action tuples r = <user attrs..., item attrs..., tags> (paper Section 2).
// Conjunctive predicates evaluate by intersecting per-(attribute, value)
// bitmap posting lists, and group support (Definition 1) is the cardinality
// of a union of group bitmaps.
package store

import "math/bits"

const wordBits = 64

// Bitmap is a bitset over tuple ids [0, n) with two interchangeable
// physical layouts behind one kernel surface:
//
//   - dense: a flat word array, O(universe/64) per kernel pass — the right
//     shape when set bits are a sizable fraction of the universe;
//   - compressed: roaring-style containers per 2^16-id chunk (see
//     compressed.go), kernel cost proportional to container occupancy — the
//     right shape for sparse posting lists and small group tuple sets over
//     large corpora.
//
// All kernels accept any mix of layouts on their operands; results are
// identical either way (the property tests in compressed_test.go pin this).
// Representation is chosen per bitmap via Optimize/ToCompressed/ToDense.
type Bitmap struct {
	words []uint64
	n     int

	// compressed selects the container layout; words is nil and ctrs holds
	// the chunk containers sorted by key.
	compressed bool
	ctrs       []container
}

// NewBitmap returns an empty dense bitmap over a universe of n tuple ids.
func NewBitmap(n int) *Bitmap {
	return &Bitmap{words: make([]uint64, (n+wordBits-1)/wordBits), n: n}
}

// Universe returns the size of the id universe.
func (b *Bitmap) Universe() int { return b.n }

// Set marks id as present.
func (b *Bitmap) Set(id int) {
	if b.compressed {
		b.setCompressed(id)
		return
	}
	b.words[id/wordBits] |= 1 << (uint(id) % wordBits)
}

// Contains reports whether id is present.
func (b *Bitmap) Contains(id int) bool {
	if id < 0 || id >= b.n {
		return false
	}
	if b.compressed {
		return b.containsCompressed(id)
	}
	return b.words[id/wordBits]&(1<<(uint(id)%wordBits)) != 0
}

// Count returns the number of set bits.
func (b *Bitmap) Count() int {
	if b.compressed {
		c := 0
		for i := range b.ctrs {
			c += int(b.ctrs[i].card)
		}
		return c
	}
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Clone returns a deep copy in the same representation.
func (b *Bitmap) Clone() *Bitmap {
	if b.compressed {
		out := &Bitmap{n: b.n, compressed: true, ctrs: make([]container, len(b.ctrs))}
		for i := range b.ctrs {
			copyCtrInto(&out.ctrs[i], &b.ctrs[i])
		}
		return out
	}
	out := &Bitmap{words: make([]uint64, len(b.words)), n: b.n}
	copy(out.words, b.words)
	return out
}

// And intersects other into b in place. When other covers a smaller
// universe, the ids beyond it are absent from other by definition, so b's
// tail is cleared rather than read out of range.
func (b *Bitmap) And(other *Bitmap) {
	if b.compressed || other.compressed {
		b.andHybrid(other)
		return
	}
	n := len(b.words)
	if len(other.words) < n {
		n = len(other.words)
	}
	for i := 0; i < n; i++ {
		b.words[i] &= other.words[i]
	}
	for i := n; i < len(b.words); i++ {
		b.words[i] = 0
	}
}

// Or unions other into b in place. If other covers a larger universe, b
// grows to match (supports incremental appends) — including when the larger
// universe still fits b's existing word count, so Universe and Contains
// never go stale after a small append (the 60 -> 64 id case).
func (b *Bitmap) Or(other *Bitmap) {
	if b.compressed || other.compressed {
		b.orHybrid(other)
		return
	}
	if len(other.words) > len(b.words) {
		grown := make([]uint64, len(other.words))
		copy(grown, b.words)
		b.words = grown
	}
	if other.n > b.n {
		b.n = other.n
	}
	for i, w := range other.words {
		b.words[i] |= w
	}
}

// AndNot removes other's bits from b in place.
func (b *Bitmap) AndNot(other *Bitmap) {
	if b.compressed || other.compressed {
		b.andNotHybrid(other)
		return
	}
	n := len(b.words)
	if len(other.words) < n {
		n = len(other.words)
	}
	for i := 0; i < n; i++ {
		b.words[i] &^= other.words[i]
	}
}

// Grow extends the universe to at least n ids, preserving contents. A
// compressed bitmap grows for free: containers only exist where bits do.
func (b *Bitmap) Grow(n int) {
	if n <= b.n {
		return
	}
	if !b.compressed {
		need := (n + wordBits - 1) / wordBits
		if need > len(b.words) {
			grown := make([]uint64, need)
			copy(grown, b.words)
			b.words = grown
		}
	}
	b.n = n
}

// ForEach calls fn for every set id in ascending order. Iteration stops if
// fn returns false.
func (b *Bitmap) ForEach(fn func(id int) bool) {
	if b.compressed {
		for i := range b.ctrs {
			if !b.ctrs[i].forEach(b.ctrs[i].base(), fn) {
				return
			}
		}
		return
	}
	for wi, w := range b.words {
		for w != 0 {
			tz := bits.TrailingZeros64(w)
			if !fn(wi*wordBits + tz) {
				return
			}
			w &= w - 1
		}
	}
}

// Slice returns all set ids in ascending order.
func (b *Bitmap) Slice() []int {
	out := make([]int, 0, b.Count())
	b.ForEach(func(id int) bool {
		out = append(out, id)
		return true
	})
	return out
}

// CopyFrom overwrites b's contents with other's, keeping b's universe and
// representation. Set bits of other beyond b's universe are dropped — at
// exact id granularity, not word granularity, so Count never reports ids
// outside [0, Universe()). It is the reset step of reusable-buffer
// pipelines (incremental support unions, predicate evaluation) that would
// otherwise Clone per use.
func (b *Bitmap) CopyFrom(other *Bitmap) {
	if b.compressed || other.compressed {
		b.copyFromHybrid(other)
		return
	}
	n := copy(b.words, other.words)
	for i := n; i < len(b.words); i++ {
		b.words[i] = 0
	}
	b.clampTail()
}

// clampTail zeroes any dense bits at positions >= b.n, restoring the
// no-ids-beyond-universe invariant after a word-granular copy.
func (b *Bitmap) clampTail() {
	w := b.n / wordBits
	if w >= len(b.words) {
		return
	}
	b.words[w] &= (1 << uint(b.n%wordBits)) - 1
	for i := w + 1; i < len(b.words); i++ {
		b.words[i] = 0
	}
}

// AndCount returns |b AND other| without materializing the intersection.
func (b *Bitmap) AndCount(other *Bitmap) int {
	if b.compressed || other.compressed {
		return andCountHybrid(b, other)
	}
	n := len(b.words)
	if len(other.words) < n {
		n = len(other.words)
	}
	c := 0
	for i := 0; i < n; i++ {
		c += bits.OnesCount64(b.words[i] & other.words[i])
	}
	return c
}

// OrCount returns |b OR other| in one pass without materializing the
// union — the two-set support check without a Clone. On two compressed
// bitmaps the pass visits containers only: chunks present on one side
// contribute their cached cardinality without being scanned.
func (b *Bitmap) OrCount(other *Bitmap) int {
	if b.compressed || other.compressed {
		return orCountHybrid(b, other)
	}
	short, long := b.words, other.words
	if len(short) > len(long) {
		short, long = long, short
	}
	c := 0
	for i, w := range short {
		c += bits.OnesCount64(w | long[i])
	}
	for _, w := range long[len(short):] {
		c += bits.OnesCount64(w)
	}
	return c
}

// UnionCountInto sets dst = b OR other and returns the resulting
// cardinality, all in one pass with no allocation. dst must cover a
// universe at least as large as both operands'; its tail words are zeroed,
// so a reused buffer never leaks bits from a previous union. dst may alias
// b or other (each word is read before it is written), which is how an
// accumulator unions in place: acc.UnionCountInto(next, acc). It is the
// push step of incremental support maintenance: each union level of a
// depth-first search derives from its parent without a Clone.
func (b *Bitmap) UnionCountInto(other, dst *Bitmap) int {
	if b.compressed || other.compressed || dst.compressed {
		return unionCountIntoHybrid(b, other, dst)
	}
	short, long := b.words, other.words
	if len(short) > len(long) {
		short, long = long, short
	}
	// No clamping: an undersized dst would silently drop bits and
	// under-count support, so let the index below fail loudly instead.
	c := 0
	for i, w := range short {
		u := w | long[i]
		dst.words[i] = u
		c += bits.OnesCount64(u)
	}
	for i := len(short); i < len(long); i++ {
		w := long[i]
		dst.words[i] = w
		c += bits.OnesCount64(w)
	}
	for i := len(long); i < len(dst.words); i++ {
		dst.words[i] = 0
	}
	return c
}

// UnionCount returns the cardinality of the union of the given bitmaps.
// It implements group support: Support = |{r : exists g in G, r in g}|.
// The one- and two-set cases — the bulk of support checks for small k —
// avoid materializing anything.
func UnionCount(maps []*Bitmap) int {
	switch len(maps) {
	case 0:
		return 0
	case 1:
		return maps[0].Count()
	case 2:
		return maps[0].OrCount(maps[1])
	}
	u := maps[0].Clone()
	for _, m := range maps[1:] {
		u.Or(m)
	}
	return u.Count()
}
