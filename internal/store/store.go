package store

import (
	"fmt"
	"strings"

	"tagdm/internal/model"
)

// Column identifies one attribute column of the expanded tuple relation.
// User attributes come first in schema order, then item attributes.
type Column struct {
	// Side is SideUser or SideItem.
	Side Side
	// Index is the attribute position within its schema.
	Index int
}

// Side distinguishes user columns from item columns.
type Side uint8

// Sides of the expanded tuple.
const (
	SideUser Side = iota
	SideItem
)

func (s Side) String() string {
	if s == SideUser {
		return "user"
	}
	return "item"
}

// Store is the expanded, dictionary-encoded tuple relation G plus bitmap
// posting lists per (column, value). It is built once from a Dataset and
// supports incremental Append (paper Section 8 future work).
type Store struct {
	UserSchema *model.Schema
	ItemSchema *model.Schema
	Vocab      *model.Vocabulary

	// Column-major attribute storage, one slice per expanded column.
	userCols [][]model.ValueCode
	itemCols [][]model.ValueCode

	// Per-tuple payload.
	users   []int32
	items   []int32
	tags    [][]model.TagID
	ratings []float64

	// postings[column key] = bitmap of tuple ids having that value.
	postings map[postingKey]*Bitmap

	n int
}

type postingKey struct {
	side  Side
	index int
	value model.ValueCode
}

// New builds a store from a validated dataset by denormalizing each tagging
// action into an expanded tuple carrying its user's and item's attributes.
func New(d *model.Dataset) (*Store, error) {
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{
		UserSchema: d.UserSchema,
		ItemSchema: d.ItemSchema,
		Vocab:      d.Vocab,
		userCols:   make([][]model.ValueCode, d.UserSchema.Len()),
		itemCols:   make([][]model.ValueCode, d.ItemSchema.Len()),
		postings:   make(map[postingKey]*Bitmap),
	}
	for _, a := range d.Actions {
		s.appendTuple(d, a)
	}
	// Bulk build done: pick each posting list's physical layout. Sparse
	// lists over large corpora compress; dense seed corpora keep the flat
	// fast path.
	s.Optimize()
	return s, nil
}

// Optimize re-selects the representation of every posting list by the
// density policy in compressed.go. Kernels are exact in either layout, so
// this never changes query results — only their cost shape. Call it after
// bulk builds or snapshot clones; per-Append re-selection would thrash.
func (s *Store) Optimize() {
	for _, bm := range s.postings {
		bm.Optimize()
	}
}

// ForceCompression converts every posting list to the compressed (on) or
// dense (off) layout regardless of density — a test and benchmark hook for
// exercising both layouts on the same corpus.
func (s *Store) ForceCompression(on bool) {
	for _, bm := range s.postings {
		if on {
			bm.ToCompressed()
		} else {
			bm.ToDense()
		}
	}
}

// CompressionStats reports how many posting lists exist and how many
// currently use the container-compressed layout.
func (s *Store) CompressionStats() (lists, compressed int) {
	for _, bm := range s.postings {
		lists++
		if bm.IsCompressed() {
			compressed++
		}
	}
	return lists, compressed
}

func (s *Store) appendTuple(d *model.Dataset, a model.TaggingAction) {
	id := s.n
	u := d.Users[a.User]
	it := d.Items[a.Item]
	for ci := range s.userCols {
		s.userCols[ci] = append(s.userCols[ci], u.Attrs[ci])
	}
	for ci := range s.itemCols {
		s.itemCols[ci] = append(s.itemCols[ci], it.Attrs[ci])
	}
	s.users = append(s.users, a.User)
	s.items = append(s.items, a.Item)
	s.tags = append(s.tags, a.Tags)
	s.ratings = append(s.ratings, a.Rating)
	s.n++
	for ci, c := range u.Attrs {
		s.posting(postingKey{SideUser, ci, c}).Set(id)
	}
	for ci, c := range it.Attrs {
		s.posting(postingKey{SideItem, ci, c}).Set(id)
	}
}

func (s *Store) posting(k postingKey) *Bitmap {
	bm, ok := s.postings[k]
	if !ok {
		bm = NewBitmap(s.n + 1)
		s.postings[k] = bm
	}
	// Grow-before-Set keeps the universe ahead of every appended id in
	// either layout; nothing here unions a larger universe into a smaller
	// one, so this path never depended on Or's (formerly stale) growth.
	bm.Grow(s.n + 1)
	return bm
}

// Append adds one more tagging action from the same dataset incrementally,
// maintaining all posting lists. The dataset must be the one the store was
// built from (schemas and vocabulary are shared).
func (s *Store) Append(d *model.Dataset, a model.TaggingAction) error {
	if a.User < 0 || int(a.User) >= len(d.Users) {
		return fmt.Errorf("store: append references unknown user %d", a.User)
	}
	if a.Item < 0 || int(a.Item) >= len(d.Items) {
		return fmt.Errorf("store: append references unknown item %d", a.Item)
	}
	s.appendTuple(d, a)
	return nil
}

// Clone returns a deep copy of the store that later Appends to s cannot
// touch: column vectors, per-tuple payloads and posting bitmaps are all
// copied. Schemas and the vocabulary are shared — they are append-only
// dictionaries and safe for concurrent use — and the per-tuple tag slices
// are shared because they are immutable once appended. Clone is what makes
// snapshot-isolated readers possible while a Maintainer keeps inserting
// (see internal/incremental.Maintainer.Snapshot).
func (s *Store) Clone() *Store {
	out := &Store{
		UserSchema: s.UserSchema,
		ItemSchema: s.ItemSchema,
		Vocab:      s.Vocab,
		userCols:   make([][]model.ValueCode, len(s.userCols)),
		itemCols:   make([][]model.ValueCode, len(s.itemCols)),
		users:      append([]int32(nil), s.users...),
		items:      append([]int32(nil), s.items...),
		tags:       append([][]model.TagID(nil), s.tags...),
		ratings:    append([]float64(nil), s.ratings...),
		postings:   make(map[postingKey]*Bitmap, len(s.postings)),
		n:          s.n,
	}
	for ci, col := range s.userCols {
		out.userCols[ci] = append([]model.ValueCode(nil), col...)
	}
	for ci, col := range s.itemCols {
		out.itemCols[ci] = append([]model.ValueCode(nil), col...)
	}
	for k, bm := range s.postings {
		out.postings[k] = bm.Clone()
	}
	return out
}

// Len is the number of expanded tuples.
func (s *Store) Len() int { return s.n }

// TupleUser returns the user id of tuple t.
func (s *Store) TupleUser(t int) int32 { return s.users[t] }

// TupleItem returns the item id of tuple t.
func (s *Store) TupleItem(t int) int32 { return s.items[t] }

// TupleTags returns the tag ids of tuple t. The slice is shared; callers
// must not modify it.
func (s *Store) TupleTags(t int) []model.TagID { return s.tags[t] }

// TupleRating returns the rating of tuple t (0 if absent).
func (s *Store) TupleRating(t int) float64 { return s.ratings[t] }

// Value returns the value code of tuple t in the given column.
func (s *Store) Value(t int, c Column) model.ValueCode {
	if c.Side == SideUser {
		return s.userCols[c.Index][t]
	}
	return s.itemCols[c.Index][t]
}

// Columns returns every expanded column in order: user attributes then item
// attributes.
func (s *Store) Columns() []Column {
	out := make([]Column, 0, len(s.userCols)+len(s.itemCols))
	for i := range s.userCols {
		out = append(out, Column{SideUser, i})
	}
	for i := range s.itemCols {
		out = append(out, Column{SideItem, i})
	}
	return out
}

// ColumnName renders a column as its attribute name.
func (s *Store) ColumnName(c Column) string {
	if c.Side == SideUser {
		return s.UserSchema.Attr(c.Index).Name
	}
	return s.ItemSchema.Attr(c.Index).Name
}

// ColumnAttr returns the attribute dictionary backing a column.
func (s *Store) ColumnAttr(c Column) *model.Attribute {
	if c.Side == SideUser {
		return s.UserSchema.Attr(c.Index)
	}
	return s.ItemSchema.Attr(c.Index)
}

// Term is one equality condition column = value.
type Term struct {
	Col   Column
	Value model.ValueCode
}

// Predicate is a conjunction of equality terms, i.e. a structural group
// description such as {gender=male, state=new york}.
type Predicate struct {
	Terms []Term
}

// ParsePredicate builds a predicate from name=value strings, resolving
// attribute names against the user schema first and then the item schema.
// A value that is not in the dictionary yields an always-empty predicate
// term (the value matches no tuple), reported via ok=false on Eval's bitmap
// being empty rather than an error, because queries over absent values are
// legitimate.
func (s *Store) ParsePredicate(conds map[string]string) (Predicate, error) {
	p := Predicate{}
	for name, val := range conds {
		var col Column
		var attr *model.Attribute
		if i := s.UserSchema.AttrIndex(name); i >= 0 {
			col = Column{SideUser, i}
			attr = s.UserSchema.Attr(i)
		} else if i := s.ItemSchema.AttrIndex(name); i >= 0 {
			col = Column{SideItem, i}
			attr = s.ItemSchema.Attr(i)
		} else {
			return Predicate{}, fmt.Errorf("store: no attribute named %q", name)
		}
		code, ok := attr.Lookup(val)
		if !ok {
			code = -1 // matches nothing
		}
		p.Terms = append(p.Terms, Term{Col: col, Value: code})
	}
	return p, nil
}

// Eval returns the bitmap of tuple ids satisfying every term of p. The
// result is a fresh bitmap the caller may mutate. An empty predicate matches
// every tuple. Only the result is allocated: postings intersect directly
// into it, with no per-term Clone+Grow intermediates.
func (s *Store) Eval(p Predicate) *Bitmap {
	acc := NewBitmap(s.n)
	if len(p.Terms) == 0 {
		for i := 0; i < s.n; i++ {
			acc.Set(i)
		}
		return acc
	}
	for ti, t := range p.Terms {
		bm, ok := s.postings[postingKey{t.Col.Side, t.Col.Index, t.Value}]
		if !ok {
			return NewBitmap(s.n)
		}
		if ti == 0 {
			acc.CopyFrom(bm)
			continue
		}
		acc.And(bm)
	}
	return acc
}

// Count returns the number of tuples matching p without materializing ids
// beyond one bitmap.
func (s *Store) Count(p Predicate) int { return s.Eval(p).Count() }

// Describe renders a predicate as {name=value, ...} in column order.
func (s *Store) Describe(p Predicate) string {
	parts := make([]string, 0, len(p.Terms))
	for _, t := range p.Terms {
		attr := s.ColumnAttr(t.Col)
		parts = append(parts, attr.Name+"="+attr.Value(t.Value))
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// Support computes the group support of a set of tuple bitmaps
// (Definition 1): the number of tuples belonging to at least one group.
func Support(groups []*Bitmap) int { return UnionCount(groups) }
