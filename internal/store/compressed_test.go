package store

import (
	"math/rand"
	"reflect"
	"testing"
)

// TestOrStaleUniverseRegression pins the headline bugfix: unioning in a
// bitmap whose larger universe still fits the receiver's word count (60 ->
// 64 ids, same single word) must grow Universe, or Contains denies ids
// whose bits are set — silently corrupting incremental group maintenance
// after small appends.
func TestOrStaleUniverseRegression(t *testing.T) {
	b := NewBitmap(60)
	b.Set(3)
	other := NewBitmap(64)
	other.Set(63)
	b.Or(other)
	if got := b.Universe(); got != 64 {
		t.Fatalf("Universe after same-word-count Or = %d, want 64", got)
	}
	if !b.Contains(63) {
		t.Fatal("Contains(63) = false after Or set bit 63")
	}
	if got := b.Slice(); !reflect.DeepEqual(got, []int{3, 63}) {
		t.Fatalf("Slice = %v, want [3 63]", got)
	}

	// The audited Grow callers (incremental.Maintainer.Insert grows group
	// bitmaps to store.Len(); Store.posting grows postings to n+1) never
	// relied on the old stale-n behavior: both grow before Set and never
	// union a larger universe into a smaller one. Or after Grow must agree
	// with Grow-then-Or.
	g := NewBitmap(60)
	g.Set(3)
	g.Grow(64)
	g.Or(other)
	if g.Universe() != b.Universe() || g.Count() != b.Count() {
		t.Fatalf("Grow-then-Or (%d ids, universe %d) disagrees with Or growth (%d, %d)",
			g.Count(), g.Universe(), b.Count(), b.Universe())
	}

	// Compressed receivers take the hybrid path; same contract.
	c := NewBitmap(60)
	c.Set(3)
	c.ToCompressed()
	c.Or(other)
	if c.Universe() != 64 || !c.Contains(63) {
		t.Fatalf("compressed Or: universe %d contains(63)=%v, want 64/true",
			c.Universe(), c.Contains(63))
	}
}

// TestUnionCountMixedUniverses pins the spec UnionCount inherits for >2
// maps when maps[0] has the smallest universe: Clone+Or growth must
// preserve every operand's bits, whatever order universes come in.
func TestUnionCountMixedUniverses(t *testing.T) {
	build := func(n int, ids ...int) *Bitmap {
		b := NewBitmap(n)
		for _, id := range ids {
			b.Set(id)
		}
		return b
	}
	cases := []struct {
		name string
		maps []*Bitmap
		want int
	}{
		{"first smallest, same word", []*Bitmap{
			build(10, 1, 2), build(40, 30), build(64, 63),
		}, 4},
		{"first smallest, more words", []*Bitmap{
			build(10, 1), build(200, 150, 199), build(500, 1, 450),
		}, 4},
		{"descending universes", []*Bitmap{
			build(500, 450), build(200, 150), build(10, 1),
		}, 3},
		{"middle smallest with overlap", []*Bitmap{
			build(300, 10, 20), build(15, 10, 14), build(300, 20, 299),
		}, 4},
		{"four maps interleaved", []*Bitmap{
			build(64, 0), build(130, 128), build(65, 64), build(700, 650),
		}, 4},
	}
	for _, tc := range cases {
		if got := UnionCount(tc.maps); got != tc.want {
			t.Errorf("%s: UnionCount = %d, want %d", tc.name, got, tc.want)
		}
		// The compressed implementation inherits the same spec.
		comp := make([]*Bitmap, len(tc.maps))
		for i, m := range tc.maps {
			comp[i] = m.Clone().ToCompressed()
		}
		if got := UnionCount(comp); got != tc.want {
			t.Errorf("%s (compressed): UnionCount = %d, want %d", tc.name, got, tc.want)
		}
	}
}

// randomBitmap fills a dense bitmap over universe n at roughly the given
// density, returning it plus its id set.
func randomBitmap(rng *rand.Rand, n int, density float64) *Bitmap {
	b := NewBitmap(n)
	target := int(float64(n) * density)
	if target < 1 {
		target = 1
	}
	for i := 0; i < target; i++ {
		b.Set(rng.Intn(n))
	}
	return b
}

// reprs returns the four representation combinations of a pair: the
// dense/dense pair is the reference the three others must match.
func reprs(a, b *Bitmap) [][2]*Bitmap {
	return [][2]*Bitmap{
		{a.Clone(), b.Clone()},
		{a.Clone().ToCompressed(), b.Clone()},
		{a.Clone(), b.Clone().ToCompressed()},
		{a.Clone().ToCompressed(), b.Clone().ToCompressed()},
	}
}

// TestKernelEquivalenceRandomPairs is the property-style kernel audit:
// every kernel, on random (dense, compressed) pairs with mismatched
// universes, must produce results identical to the dense/dense reference —
// including Or's universe growth and CopyFrom's exact-universe clamp.
func TestKernelEquivalenceRandomPairs(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	densities := []float64{0.0005, 0.01, 0.2, 0.9}
	for trial := 0; trial < 60; trial++ {
		na := 1 + rng.Intn(200_000)
		nb := 1 + rng.Intn(200_000)
		if trial%4 == 0 {
			nb = na // same-universe slice of the space
		}
		a := randomBitmap(rng, na, densities[trial%len(densities)])
		b := randomBitmap(rng, nb, densities[(trial+1)%len(densities)])
		nmax := na
		if nb > nmax {
			nmax = nb
		}

		pairs := reprs(a, b)
		ref := pairs[0]
		wantOr := ref[0].OrCount(ref[1])
		wantAnd := ref[0].AndCount(ref[1])
		refUnion := ref[0].Clone()
		refUnion.Or(ref[1])

		for pi, p := range pairs[1:] {
			x, y := p[0], p[1]
			if got := x.Count(); got != a.Count() {
				t.Fatalf("trial %d repr %d: Count = %d, want %d", trial, pi, got, a.Count())
			}
			if !reflect.DeepEqual(x.Slice(), a.Slice()) {
				t.Fatalf("trial %d repr %d: Slice mismatch", trial, pi)
			}
			for probe := 0; probe < 50; probe++ {
				id := rng.Intn(nmax + 10)
				if got, want := x.Contains(id), a.Contains(id); got != want {
					t.Fatalf("trial %d repr %d: Contains(%d) = %v, want %v", trial, pi, id, got, want)
				}
			}
			if got := x.OrCount(y); got != wantOr {
				t.Fatalf("trial %d repr %d: OrCount = %d, want %d", trial, pi, got, wantOr)
			}
			if got := y.OrCount(x); got != wantOr {
				t.Fatalf("trial %d repr %d: OrCount reversed = %d, want %d", trial, pi, got, wantOr)
			}
			if got := x.AndCount(y); got != wantAnd {
				t.Fatalf("trial %d repr %d: AndCount = %d, want %d", trial, pi, got, wantAnd)
			}
			if got := y.AndCount(x); got != wantAnd {
				t.Fatalf("trial %d repr %d: AndCount reversed = %d, want %d", trial, pi, got, wantAnd)
			}

			// UnionCountInto, into a dst of each representation, including
			// the in-place accumulator alias.
			for _, dst := range []*Bitmap{NewBitmap(nmax + 7), NewCompressedBitmap(nmax + 7)} {
				dst.Set(1) // stale content a correct kernel must clear
				if got := x.UnionCountInto(y, dst); got != wantOr {
					t.Fatalf("trial %d repr %d: UnionCountInto = %d, want %d", trial, pi, got, wantOr)
				}
				if !reflect.DeepEqual(dst.Slice(), refUnion.Slice()) {
					t.Fatalf("trial %d repr %d: UnionCountInto materialized wrong union", trial, pi)
				}
				if got := dst.UnionCountInto(y, dst); got != wantOr {
					t.Fatalf("trial %d repr %d: aliased UnionCountInto = %d, want %d", trial, pi, got, wantOr)
				}
			}

			// In-place mutators, each on fresh clones against the dense
			// reference result.
			or := x.Clone()
			or.Or(y)
			if or.Universe() != refUnion.Universe() {
				t.Fatalf("trial %d repr %d: Or universe = %d, want %d",
					trial, pi, or.Universe(), refUnion.Universe())
			}
			if !reflect.DeepEqual(or.Slice(), refUnion.Slice()) {
				t.Fatalf("trial %d repr %d: Or mismatch", trial, pi)
			}

			and := x.Clone()
			and.And(y)
			refAnd := ref[0].Clone()
			refAnd.And(ref[1])
			if !reflect.DeepEqual(and.Slice(), refAnd.Slice()) {
				t.Fatalf("trial %d repr %d: And mismatch", trial, pi)
			}

			andNot := x.Clone()
			andNot.AndNot(y)
			refAndNot := ref[0].Clone()
			refAndNot.AndNot(ref[1])
			if !reflect.DeepEqual(andNot.Slice(), refAndNot.Slice()) {
				t.Fatalf("trial %d repr %d: AndNot mismatch", trial, pi)
			}

			cp := x.Clone()
			cp.CopyFrom(y)
			refCp := ref[0].Clone()
			refCp.CopyFrom(ref[1])
			if cp.Universe() != refCp.Universe() || !reflect.DeepEqual(cp.Slice(), refCp.Slice()) {
				t.Fatalf("trial %d repr %d: CopyFrom mismatch", trial, pi)
			}
		}
	}
}

// TestCopyFromClampsToExactUniverse pins the documented CopyFrom contract
// at id granularity: bits of other beyond b's universe are dropped even
// when they land inside b's final word.
func TestCopyFromClampsToExactUniverse(t *testing.T) {
	other := NewBitmap(300)
	other.Set(3)
	other.Set(62)  // inside b's word count but beyond its universe
	other.Set(290) // beyond b's word count
	for _, compress := range []bool{false, true} {
		b := NewBitmap(60)
		if compress {
			b.ToCompressed()
		}
		b.CopyFrom(other)
		if got := b.Slice(); !reflect.DeepEqual(got, []int{3}) {
			t.Fatalf("compress=%v: CopyFrom = %v, want [3]", compress, got)
		}
		if got := b.Count(); got != 1 {
			t.Fatalf("compress=%v: Count after CopyFrom = %d, want 1", compress, got)
		}
	}
}

// TestContainerPromotionDemotion walks one chunk across the array/word
// boundary in both directions and checks the layout follows.
func TestContainerPromotionDemotion(t *testing.T) {
	b := NewCompressedBitmap(chunkSize)
	for i := 0; i < arrMax; i++ {
		b.Set(i * 2)
	}
	if len(b.ctrs) != 1 || !b.ctrs[0].isArr {
		t.Fatalf("at arrMax ids the container must still be an array")
	}
	b.Set(arrMax * 2) // one past the ceiling: promote
	if b.ctrs[0].isArr {
		t.Fatal("container must promote to words past arrMax ids")
	}
	if got := b.Count(); got != arrMax+1 {
		t.Fatalf("Count after promotion = %d, want %d", got, arrMax+1)
	}

	// Intersect away most of the chunk: demotion back to an array.
	keep := NewBitmap(chunkSize)
	for i := 0; i < 100; i++ {
		keep.Set(i * 2)
	}
	b.And(keep.Clone().ToCompressed())
	if len(b.ctrs) != 1 || !b.ctrs[0].isArr {
		t.Fatal("container must demote to an array once drained")
	}
	if got := b.Count(); got != 100 {
		t.Fatalf("Count after demotion = %d, want 100", got)
	}

	// Draining a chunk entirely must drop its container.
	b.And(NewCompressedBitmap(chunkSize))
	if len(b.ctrs) != 0 || b.Count() != 0 {
		t.Fatalf("empty intersection left %d containers, %d ids", len(b.ctrs), b.Count())
	}
}

// TestStoreEvalWithCompressedPostings forces the compressed layout onto
// every posting list of a small store and demands identical predicate
// evaluation, and that incremental Append (Grow+Set on a compressed
// bitmap) keeps maintaining them.
func TestStoreEvalWithCompressedPostings(t *testing.T) {
	d, s := buildTestStore(t)
	preds := []map[string]string{
		{"gender": "male"},
		{"gender": "male", "genre": "action"},
		{"age": "teen", "director": "spielberg"},
		{"genre": "comedy"},
	}
	type want struct {
		ids   []int
		count int
	}
	wants := make([]want, len(preds))
	for i, conds := range preds {
		p, err := s.ParsePredicate(conds)
		if err != nil {
			t.Fatal(err)
		}
		wants[i] = want{ids: s.Eval(p).Slice(), count: s.Count(p)}
	}
	s.ForceCompression(true)
	if lists, compressed := s.CompressionStats(); compressed != lists || lists == 0 {
		t.Fatalf("ForceCompression left %d/%d lists compressed", compressed, lists)
	}
	for i, conds := range preds {
		p, err := s.ParsePredicate(conds)
		if err != nil {
			t.Fatal(err)
		}
		if got := s.Eval(p).Slice(); !reflect.DeepEqual(got, wants[i].ids) {
			t.Fatalf("compressed Eval(%v) = %v, want %v", conds, got, wants[i].ids)
		}
		if got := s.Count(p); got != wants[i].count {
			t.Fatalf("compressed Count(%v) = %d, want %d", conds, got, wants[i].count)
		}
	}
	// Appends must keep maintaining compressed posting lists in place.
	before := s.Len()
	if err := s.Append(d, d.Actions[0]); err != nil {
		t.Fatal(err)
	}
	p, err := s.ParsePredicate(map[string]string{"gender": "male"})
	if err != nil {
		t.Fatal(err)
	}
	bm := s.Eval(p)
	if !bm.Contains(before) {
		t.Fatalf("appended tuple %d missing from compressed posting evaluation", before)
	}
}

// TestOptimizePolicy checks the build-time representation policy: large
// sparse universes compress, small or dense ones stay flat.
func TestOptimizePolicy(t *testing.T) {
	sparse := NewBitmap(1 << 18)
	for i := 0; i < 100; i++ {
		sparse.Set(i * 977)
	}
	if !sparse.Optimize().IsCompressed() {
		t.Fatal("sparse bitmap over a large universe must compress")
	}
	small := NewBitmap(1000)
	small.Set(1)
	if small.Optimize().IsCompressed() {
		t.Fatal("small universe must stay dense")
	}
	dense := NewBitmap(1 << 18)
	for i := 0; i < 1<<17; i++ {
		dense.Set(i)
	}
	if dense.Optimize().IsCompressed() {
		t.Fatal("dense bitmap must stay dense")
	}
	// Optimize is an involution-safe round trip: contents survive.
	if got := sparse.ToDense().Count(); got != 100 {
		t.Fatalf("round trip lost ids: %d, want 100", got)
	}
}
