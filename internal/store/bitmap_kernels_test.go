package store

import (
	"math/rand"
	"testing"
)

// TestAndSmallerUniverse is the regression test for the out-of-range panic:
// And with an operand over a smaller universe must clamp to the shorter
// word slice and clear b's tail (those ids are absent from other), instead
// of indexing past other's words.
func TestAndSmallerUniverse(t *testing.T) {
	b := NewBitmap(200)
	for _, id := range []int{0, 5, 64, 130, 199} {
		b.Set(id)
	}
	other := NewBitmap(10)
	other.Set(0)
	other.Set(5)
	b.And(other) // panicked before the clamp
	if got := b.Slice(); len(got) != 2 || got[0] != 0 || got[1] != 5 {
		t.Fatalf("And with smaller universe = %v, want [0 5]", got)
	}
	// Larger other: ids beyond b's universe cannot appear in b.
	b2 := NewBitmap(10)
	b2.Set(3)
	big := NewBitmap(500)
	big.Set(3)
	big.Set(400)
	b2.And(big)
	if got := b2.Slice(); len(got) != 1 || got[0] != 3 {
		t.Fatalf("And with larger universe = %v, want [3]", got)
	}
}

func TestCopyFrom(t *testing.T) {
	src := NewBitmap(100)
	src.Set(1)
	src.Set(99)
	dst := NewBitmap(200)
	dst.Set(150) // must be cleared: beyond src's words
	dst.Set(2)   // must be cleared: overwritten by src's words
	dst.CopyFrom(src)
	if got := dst.Slice(); len(got) != 2 || got[0] != 1 || got[1] != 99 {
		t.Fatalf("CopyFrom = %v, want [1 99]", got)
	}
	// Shrinking copy drops bits beyond dst's universe words.
	small := NewBitmap(64)
	small.Set(10)
	big := NewBitmap(300)
	big.Set(3)
	big.Set(200)
	small.CopyFrom(big)
	if got := small.Slice(); len(got) != 1 || got[0] != 3 {
		t.Fatalf("shrinking CopyFrom = %v, want [3]", got)
	}
}

// TestUnionKernelsAgainstClone drives OrCount and UnionCountInto over
// random bitmaps of mismatched universes and checks them against the
// reference Clone+Or path, including reuse of a dirty destination buffer.
func TestUnionKernelsAgainstClone(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	dst := NewBitmap(512)
	for trial := 0; trial < 200; trial++ {
		na, nb := 1+rng.Intn(300), 1+rng.Intn(300)
		a, b := NewBitmap(na), NewBitmap(nb)
		for i := 0; i < na; i++ {
			if rng.Intn(3) == 0 {
				a.Set(i)
			}
		}
		for i := 0; i < nb; i++ {
			if rng.Intn(3) == 0 {
				b.Set(i)
			}
		}
		ref := a.Clone()
		ref.Or(b)
		want := ref.Count()
		if got := a.OrCount(b); got != want {
			t.Fatalf("trial %d: OrCount = %d, want %d", trial, got, want)
		}
		if got := b.OrCount(a); got != want {
			t.Fatalf("trial %d: OrCount reversed = %d, want %d", trial, got, want)
		}
		// Dirty the reusable destination to prove tail words are cleared.
		dst.Set(511)
		if got := a.UnionCountInto(b, dst); got != want {
			t.Fatalf("trial %d: UnionCountInto = %d, want %d", trial, got, want)
		}
		if dst.Count() != want {
			t.Fatalf("trial %d: dst holds %d bits, want %d", trial, dst.Count(), want)
		}
		for _, id := range ref.Slice() {
			if !dst.Contains(id) {
				t.Fatalf("trial %d: dst missing %d", trial, id)
			}
		}
	}
}

func TestUnionCountSmallCases(t *testing.T) {
	a := NewBitmap(100)
	b := NewBitmap(100)
	c := NewBitmap(100)
	for i := 0; i < 100; i += 2 {
		a.Set(i)
	}
	for i := 0; i < 100; i += 3 {
		b.Set(i)
	}
	for i := 0; i < 100; i += 5 {
		c.Set(i)
	}
	if got := UnionCount([]*Bitmap{a}); got != 50 {
		t.Fatalf("UnionCount one = %d, want 50", got)
	}
	if got := UnionCount([]*Bitmap{a, b}); got != 67 {
		t.Fatalf("UnionCount two = %d, want 67", got)
	}
	// inclusion-exclusion: 50+34+20 -17-10-7 +4 = 74
	if got := UnionCount([]*Bitmap{a, b, c}); got != 74 {
		t.Fatalf("UnionCount three = %d, want 74", got)
	}
}
