package store

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"tagdm/internal/model"
)

func TestBitmapBasics(t *testing.T) {
	b := NewBitmap(130)
	for _, id := range []int{0, 63, 64, 129} {
		b.Set(id)
	}
	if b.Count() != 4 {
		t.Fatalf("Count = %d", b.Count())
	}
	for _, id := range []int{0, 63, 64, 129} {
		if !b.Contains(id) {
			t.Fatalf("missing %d", id)
		}
	}
	if b.Contains(1) || b.Contains(-1) || b.Contains(1000) {
		t.Fatal("spurious membership")
	}
	if got := b.Slice(); !reflect.DeepEqual(got, []int{0, 63, 64, 129}) {
		t.Fatalf("Slice = %v", got)
	}
}

func TestBitmapSetOps(t *testing.T) {
	a := NewBitmap(100)
	b := NewBitmap(100)
	for i := 0; i < 100; i += 2 {
		a.Set(i)
	}
	for i := 0; i < 100; i += 3 {
		b.Set(i)
	}
	and := a.Clone()
	and.And(b)
	if and.Count() != 17 { // multiples of 6 below 100: 0..96
		t.Fatalf("And count = %d, want 17", and.Count())
	}
	or := a.Clone()
	or.Or(b)
	// |A|=50, |B|=34, |A∩B|=17 -> union 67
	if or.Count() != 67 {
		t.Fatalf("Or count = %d, want 67", or.Count())
	}
	diff := a.Clone()
	diff.AndNot(b)
	if diff.Count() != 50-17 {
		t.Fatalf("AndNot count = %d", diff.Count())
	}
	if got := a.AndCount(b); got != 17 {
		t.Fatalf("AndCount = %d", got)
	}
	if got := UnionCount([]*Bitmap{a, b}); got != 67 {
		t.Fatalf("UnionCount = %d", got)
	}
	if UnionCount(nil) != 0 {
		t.Fatal("UnionCount(nil) != 0")
	}
}

func TestBitmapGrowAndForEachStop(t *testing.T) {
	b := NewBitmap(10)
	b.Set(3)
	b.Grow(200)
	b.Set(150)
	if !b.Contains(3) || !b.Contains(150) {
		t.Fatal("grow lost bits")
	}
	seen := 0
	b.ForEach(func(id int) bool {
		seen++
		return false // stop after first
	})
	if seen != 1 {
		t.Fatalf("ForEach did not stop, saw %d", seen)
	}
}

func buildTestStore(t *testing.T) (*model.Dataset, *Store) {
	t.Helper()
	d := model.NewDataset(
		model.NewSchema("gender", "age"),
		model.NewSchema("genre", "director"),
	)
	users := []map[string]string{
		{"gender": "male", "age": "teen"},
		{"gender": "female", "age": "teen"},
		{"gender": "male", "age": "young"},
		{"gender": "female", "age": "old"},
	}
	for _, u := range users {
		if _, err := d.AddUser(u); err != nil {
			t.Fatal(err)
		}
	}
	items := []map[string]string{
		{"genre": "action", "director": "cameron"},
		{"genre": "action", "director": "spielberg"},
		{"genre": "comedy", "director": "allen"},
	}
	for _, it := range items {
		if _, err := d.AddItem(it); err != nil {
			t.Fatal(err)
		}
	}
	actions := []struct {
		u, i int32
		tags []string
	}{
		{0, 0, []string{"gun", "effects"}},
		{1, 0, []string{"violence"}},
		{2, 1, []string{"war", "history"}},
		{0, 1, []string{"war"}},
		{3, 2, []string{"funny"}},
		{2, 2, []string{"witty", "funny"}},
	}
	for _, a := range actions {
		if err := d.AddAction(a.u, a.i, 0, a.tags...); err != nil {
			t.Fatal(err)
		}
	}
	s, err := New(d)
	if err != nil {
		t.Fatal(err)
	}
	return d, s
}

func TestStorePredicates(t *testing.T) {
	_, s := buildTestStore(t)
	if s.Len() != 6 {
		t.Fatalf("Len = %d", s.Len())
	}
	p, err := s.ParsePredicate(map[string]string{"gender": "male"})
	if err != nil {
		t.Fatal(err)
	}
	// male users: u0 (tuples 0, 3), u2 (tuples 2, 5)
	if got := s.Eval(p).Slice(); !reflect.DeepEqual(got, []int{0, 2, 3, 5}) {
		t.Fatalf("male tuples = %v", got)
	}
	p2, err := s.ParsePredicate(map[string]string{"gender": "male", "genre": "action"})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Eval(p2).Slice(); !reflect.DeepEqual(got, []int{0, 2, 3}) {
		t.Fatalf("male+action tuples = %v", got)
	}
	if got := s.Count(p2); got != 3 {
		t.Fatalf("Count = %d", got)
	}
	// Empty predicate matches all tuples.
	if got := s.Eval(Predicate{}).Count(); got != 6 {
		t.Fatalf("empty predicate matched %d", got)
	}
}

func TestStoreUnknownValueMatchesNothing(t *testing.T) {
	_, s := buildTestStore(t)
	p, err := s.ParsePredicate(map[string]string{"director": "kubrick"})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Eval(p).Count(); got != 0 {
		t.Fatalf("absent value matched %d tuples", got)
	}
	if _, err := s.ParsePredicate(map[string]string{"height": "tall"}); err == nil {
		t.Fatal("unknown attribute accepted")
	}
}

func TestStoreDescribe(t *testing.T) {
	_, s := buildTestStore(t)
	p, err := s.ParsePredicate(map[string]string{"gender": "male"})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Describe(p); got != "{gender=male}" {
		t.Fatalf("Describe = %q", got)
	}
}

func TestStoreTuplePayload(t *testing.T) {
	_, s := buildTestStore(t)
	if s.TupleUser(3) != 0 || s.TupleItem(3) != 1 {
		t.Fatalf("tuple 3 = (%d,%d)", s.TupleUser(3), s.TupleItem(3))
	}
	tags := s.TupleTags(2)
	if len(tags) != 2 {
		t.Fatalf("tuple 2 has %d tags", len(tags))
	}
	if s.Vocab.Tag(tags[0]) != "war" {
		t.Fatalf("tag = %q", s.Vocab.Tag(tags[0]))
	}
}

func TestStoreAppendMaintainsPostings(t *testing.T) {
	d, s := buildTestStore(t)
	before := s.Len()
	tagID := d.Vocab.ID("epic")
	err := s.Append(d, model.TaggingAction{User: 1, Item: 1, Tags: []model.TagID{tagID}})
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != before+1 {
		t.Fatalf("Len = %d", s.Len())
	}
	p, err := s.ParsePredicate(map[string]string{"gender": "female", "genre": "action"})
	if err != nil {
		t.Fatal(err)
	}
	got := s.Eval(p).Slice()
	want := []int{1, before} // original tuple 1 plus the appended one
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("after append, female+action = %v, want %v", got, want)
	}
	if err := s.Append(d, model.TaggingAction{User: 99, Item: 0}); err == nil {
		t.Fatal("append with unknown user accepted")
	}
}

func TestSupportDefinition(t *testing.T) {
	_, s := buildTestStore(t)
	pm, _ := s.ParsePredicate(map[string]string{"gender": "male"})
	pa, _ := s.ParsePredicate(map[string]string{"genre": "action"})
	g1 := s.Eval(pm) // {0,2,3,5}
	g2 := s.Eval(pa) // {0,1,2,3}
	if got := Support([]*Bitmap{g1, g2}); got != 5 {
		t.Fatalf("Support = %d, want 5", got)
	}
}

// Property: for random bit sets, bitmap set operations agree with map-based
// reference sets.
func TestQuickBitmapAgainstReference(t *testing.T) {
	f := func(xs, ys []uint8) bool {
		const universe = 256
		a, b := NewBitmap(universe), NewBitmap(universe)
		ra, rb := map[int]bool{}, map[int]bool{}
		for _, x := range xs {
			a.Set(int(x))
			ra[int(x)] = true
		}
		for _, y := range ys {
			b.Set(int(y))
			rb[int(y)] = true
		}
		and := a.Clone()
		and.And(b)
		or := a.Clone()
		or.Or(b)
		diff := a.Clone()
		diff.AndNot(b)
		for i := 0; i < universe; i++ {
			if and.Contains(i) != (ra[i] && rb[i]) {
				return false
			}
			if or.Contains(i) != (ra[i] || rb[i]) {
				return false
			}
			if diff.Contains(i) != (ra[i] && !rb[i]) {
				return false
			}
		}
		return and.Count() <= or.Count()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Eval on a random single-term predicate returns exactly the
// tuples whose column carries the value.
func TestQuickEvalMatchesScan(t *testing.T) {
	d, s := buildTestStore(t)
	_ = d
	rng := rand.New(rand.NewSource(11))
	cols := s.Columns()
	for trial := 0; trial < 100; trial++ {
		col := cols[rng.Intn(len(cols))]
		attr := s.ColumnAttr(col)
		if attr.Cardinality() == 0 {
			continue
		}
		val := model.ValueCode(1 + rng.Intn(attr.Cardinality()))
		bm := s.Eval(Predicate{Terms: []Term{{Col: col, Value: val}}})
		for tu := 0; tu < s.Len(); tu++ {
			want := s.Value(tu, col) == val
			if bm.Contains(tu) != want {
				t.Fatalf("col %v val %d tuple %d: bitmap %v scan %v",
					col, val, tu, bm.Contains(tu), want)
			}
		}
	}
}

func TestStoreCloneIsolation(t *testing.T) {
	d, s := buildTestStore(t)
	clone := s.Clone()
	if clone.Len() != s.Len() {
		t.Fatalf("clone Len = %d, want %d", clone.Len(), s.Len())
	}
	pred, err := clone.ParsePredicate(map[string]string{"genre": "action"})
	if err != nil {
		t.Fatal(err)
	}
	before := clone.Count(pred)

	// Appends to the original must not leak into the clone: not the tuple
	// count, not the posting lists, not the column vectors.
	for i := 0; i < 3; i++ {
		if err := s.Append(d, model.TaggingAction{User: 0, Item: 0, Tags: []model.TagID{0}}); err != nil {
			t.Fatal(err)
		}
	}
	if clone.Len() != 6 {
		t.Fatalf("clone grew with the original: Len = %d", clone.Len())
	}
	if got := clone.Count(pred); got != before {
		t.Fatalf("clone postings changed: %d -> %d", before, got)
	}
	if s.Count(pred) == before {
		t.Fatal("original postings did not grow")
	}
	if got := clone.Value(0, Column{SideUser, 0}); got != s.Value(0, Column{SideUser, 0}) {
		t.Fatal("clone column data differs from original prefix")
	}
}
