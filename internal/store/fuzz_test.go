package store

import (
	"encoding/binary"
	"sort"
	"testing"
)

// Native fuzz targets for the four bitmap kernels reusable buffers lean on
// (Or, And, UnionCountInto, CopyFrom), checked against a map-based
// reference model over every operand shape the fuzzer can reach: dense,
// container-compressed and mixed layouts, equal and mismatched universes,
// universes straddling the 2^16 container-chunk boundary, and empty sets.
// The seed corpus under testdata/fuzz pins the shapes that mattered
// historically (the stale-universe Or and word-granular CopyFrom bugs of
// PR 3); CI runs each target briefly with -fuzztime as a smoke step, and
// plain `go test` always replays the corpus.

// decodeBitmapPair derives two bitmaps plus their reference sets from raw
// fuzz bytes: header = universeA (uint16, scaled to cross the 2^16 chunk
// boundary), universeB, layout flag byte (bit0 compress a, bit1 compress
// b, bit2 compress dst); body = 3-byte big-endian ids dealt alternately to
// a and b, reduced mod the owner's universe.
func decodeBitmapPair(data []byte) (a, b *Bitmap, refA, refB map[int]bool, flags byte, ok bool) {
	if len(data) < 5 {
		return nil, nil, nil, nil, 0, false
	}
	uA := 1 + int(binary.LittleEndian.Uint16(data[0:2]))*2%(1<<17)
	uB := 1 + int(binary.LittleEndian.Uint16(data[2:4]))*2%(1<<17)
	flags = data[4]
	a, b = NewBitmap(uA), NewBitmap(uB)
	refA, refB = make(map[int]bool), make(map[int]bool)
	rest := data[5:]
	for i := 0; i+3 <= len(rest); i += 3 {
		id := int(rest[i])<<16 | int(rest[i+1])<<8 | int(rest[i+2])
		if (i/3)%2 == 0 {
			id %= uA
			a.Set(id)
			refA[id] = true
		} else {
			id %= uB
			b.Set(id)
			refB[id] = true
		}
	}
	if flags&1 != 0 {
		a.ToCompressed()
	}
	if flags&2 != 0 {
		b.ToCompressed()
	}
	return a, b, refA, refB, flags, true
}

// assertBitmapEquals checks a bitmap against a reference id set: count,
// universe, sorted contents, and per-id membership.
func assertBitmapEquals(t *testing.T, label string, bm *Bitmap, ref map[int]bool, universe int) {
	t.Helper()
	if bm.Universe() != universe {
		t.Fatalf("%s: universe %d, want %d", label, bm.Universe(), universe)
	}
	if got, want := bm.Count(), len(ref); got != want {
		t.Fatalf("%s: count %d, want %d", label, got, want)
	}
	want := make([]int, 0, len(ref))
	for id := range ref {
		if id >= universe {
			t.Fatalf("%s: reference id %d outside universe %d (test bug)", label, id, universe)
		}
		want = append(want, id)
	}
	sort.Ints(want)
	got := bm.Slice()
	if len(got) != len(want) {
		t.Fatalf("%s: slice has %d ids, want %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: id[%d] = %d, want %d", label, i, got[i], want[i])
		}
	}
}

// fuzzSeeds is the shared in-code seed set: dense/dense equal universes,
// mixed layouts, mismatched universes in both directions, the 60->64 id
// append shape behind the PR 3 Or bug, and chunk-boundary universes.
func fuzzSeeds(f *testing.F) {
	f.Add([]byte{})
	seed := func(uA, uB uint16, flags byte, ids ...byte) {
		b := make([]byte, 0, 5+len(ids))
		b = append(b, byte(uA), byte(uA>>8), byte(uB), byte(uB>>8), flags)
		f.Add(append(b, ids...))
	}
	seed(100, 100, 0, 0, 0, 1, 0, 0, 2, 0, 0, 90)
	seed(30, 32, 0, 0, 0, 29, 0, 0, 31)              // the 60->64-style small append
	seed(500, 80, 1, 0, 1, 200, 0, 0, 70, 0, 1, 194) // compressed a, larger universe (id 450)
	seed(80, 500, 2, 0, 0, 70, 0, 1, 200)            // compressed b, larger universe
	seed(40000, 40000, 3, 0, 200, 0, 0, 100, 7)      // both compressed, chunk 1 vs 0
	seed(33000, 50, 7, 0, 129, 10, 0, 0, 12)         // ~66000-id universe crosses 2^16
}

// FuzzBitmapOr checks in-place union: b grows to the larger universe and
// holds exactly the union of both reference sets, whatever the layouts.
func FuzzBitmapOr(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		a, b, refA, refB, _, ok := decodeBitmapPair(data)
		if !ok {
			return
		}
		union := make(map[int]bool, len(refA)+len(refB))
		for id := range refA {
			union[id] = true
		}
		for id := range refB {
			union[id] = true
		}
		wantU := a.Universe()
		if b.Universe() > wantU {
			wantU = b.Universe()
		}
		a.Or(b)
		assertBitmapEquals(t, "a|b", a, union, wantU)
		assertBitmapEquals(t, "b untouched", b, refB, b.Universe())
	})
}

// FuzzBitmapAnd checks in-place intersection: b keeps its universe, ids
// beyond the other operand's universe are dropped (absent by definition).
func FuzzBitmapAnd(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		a, b, refA, refB, _, ok := decodeBitmapPair(data)
		if !ok {
			return
		}
		inter := make(map[int]bool)
		for id := range refA {
			if refB[id] {
				inter[id] = true
			}
		}
		wantCount := len(inter)
		if got := a.AndCount(b); got != wantCount {
			t.Fatalf("AndCount = %d, want %d", got, wantCount)
		}
		a.And(b)
		assertBitmapEquals(t, "a&b", a, inter, a.Universe())
	})
}

// FuzzBitmapUnionCountInto checks the one-pass union-with-count against
// the model, including that a dirty reused destination buffer never leaks
// bits from a previous pass and that OrCount agrees without materializing.
func FuzzBitmapUnionCountInto(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		a, b, refA, refB, flags, ok := decodeBitmapPair(data)
		if !ok {
			return
		}
		union := make(map[int]bool, len(refA)+len(refB))
		for id := range refA {
			union[id] = true
		}
		for id := range refB {
			union[id] = true
		}
		uDst := a.Universe()
		if b.Universe() > uDst {
			uDst = b.Universe()
		}
		newDst := NewBitmap
		if flags&4 != 0 {
			newDst = NewCompressedBitmap
		}
		dst := newDst(uDst)
		// Pre-soil the buffer: UnionCountInto must fully overwrite it.
		dst.Set(0)
		dst.Set(uDst - 1)
		dst.Set(uDst / 2)
		count := a.UnionCountInto(b, dst)
		if count != len(union) {
			t.Fatalf("UnionCountInto = %d, want %d", count, len(union))
		}
		assertBitmapEquals(t, "dst", dst, union, uDst)
		if got := a.OrCount(b); got != len(union) {
			t.Fatalf("OrCount = %d, want %d", got, len(union))
		}
		assertBitmapEquals(t, "a untouched", a, refA, a.Universe())
		assertBitmapEquals(t, "b untouched", b, refB, b.Universe())
	})
}

// FuzzBitmapCopyFrom checks the buffer-reset kernel: the receiver keeps
// its universe and representation and holds exactly the source ids that
// fit, at id (not word) granularity.
func FuzzBitmapCopyFrom(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		a, b, refA, refB, _, ok := decodeBitmapPair(data)
		if !ok {
			return
		}
		_ = refA
		want := make(map[int]bool)
		for id := range refB {
			if id < a.Universe() {
				want[id] = true
			}
		}
		a.CopyFrom(b)
		assertBitmapEquals(t, "a<-b", a, want, a.Universe())
		assertBitmapEquals(t, "b untouched", b, refB, b.Universe())
	})
}
