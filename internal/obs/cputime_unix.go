//go:build unix

package obs

import (
	"syscall"
	"time"
)

// cpuTime returns the process's cumulative CPU time (user + system).
// Per-span CPU deltas computed from it attribute whole-process CPU to
// the span's window, which is exact for serial solver stages and an
// upper bound when other goroutines run concurrently.
func cpuTime() time.Duration {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return time.Duration(ru.Utime.Nano() + ru.Stime.Nano())
}
