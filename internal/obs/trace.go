// Package obs is the observability spine of the repo: request-scoped
// trace spans propagated via context.Context, a Prometheus-text metrics
// registry, a strict parser for that format (used by tests and the
// promcheck CLI), and structured JSON logging helpers.
//
// The design constraint that shapes everything here is that the solver
// hot paths are instrumented unconditionally: StartSpan is called from
// inside Exact enumeration setup, SM-LSH rounds and DV-FDP sweeps on
// every solve, traced or not. When no trace is attached to the context,
// StartSpan returns a nil *Span and every method on a nil *Span is a
// no-op — zero allocations, two branch instructions. The overhead guard
// in the root bench suite pins this.
package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"sync"
	"time"
)

// Span is one timed stage of a request or solver run. Spans form a tree:
// the root is created by NewTrace, children by StartSpan against a
// context carrying the parent. A Span records wall time and process CPU
// time (user+sys, via getrusage) between creation and End.
//
// All methods are safe on a nil receiver so call sites never branch on
// whether tracing is enabled.
type Span struct {
	name     string
	start    time.Time
	cpuStart time.Duration

	mu       sync.Mutex
	wall     time.Duration
	cpu      time.Duration
	ended    bool
	attrs    []Attr
	children []*Span
}

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string
	Value any
}

// NewTrace starts a root span. The caller must End it before reading the
// tree.
func NewTrace(name string) *Span {
	return &Span{name: name, start: time.Now(), cpuStart: cpuTime()}
}

// StartChild creates and attaches a child span. Nil-safe: a nil parent
// yields a nil child.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{name: name, start: time.Now(), cpuStart: cpuTime()}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// End stamps the span's wall and CPU durations. Subsequent calls are
// no-ops, as is calling End on a nil span.
func (s *Span) End() {
	if s == nil {
		return
	}
	wall := time.Since(s.start)
	cpu := cpuTime() - s.cpuStart
	s.mu.Lock()
	if !s.ended {
		s.ended = true
		s.wall = wall
		s.cpu = cpu
	}
	s.mu.Unlock()
}

// SetAttr annotates the span. Nil-safe.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.mu.Unlock()
}

// Name returns the span name ("" for nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Wall returns the recorded wall duration (elapsed-so-far if not ended).
func (s *Span) Wall() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.ended {
		return time.Since(s.start)
	}
	return s.wall
}

// Tree snapshots the span and its descendants into a JSON-marshalable
// form. Safe to call concurrently with children still recording; spans
// not yet ended report elapsed-so-far.
func (s *Span) Tree() *SpanTree {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	t := &SpanTree{
		Name:     s.name,
		WallMs:   durMillis(s.wall),
		CPUMs:    durMillis(s.cpu),
		Children: make([]*SpanTree, 0, len(s.children)),
	}
	if !s.ended {
		t.WallMs = durMillis(time.Since(s.start))
		t.CPUMs = durMillis(cpuTime() - s.cpuStart)
	}
	if len(s.attrs) > 0 {
		t.Attrs = make(map[string]any, len(s.attrs))
		for _, a := range s.attrs {
			t.Attrs[a.Key] = a.Value
		}
	}
	kids := make([]*Span, len(s.children))
	copy(kids, s.children)
	s.mu.Unlock()
	for _, c := range kids {
		t.Children = append(t.Children, c.Tree())
	}
	if len(t.Children) == 0 {
		t.Children = nil
	}
	return t
}

// SpanTree is the serializable snapshot of a span tree, embedded in
// traced analyze responses and slow-query log lines.
type SpanTree struct {
	Name     string         `json:"name"`
	WallMs   float64        `json:"wall_ms"`
	CPUMs    float64        `json:"cpu_ms"`
	Attrs    map[string]any `json:"attrs,omitempty"`
	Children []*SpanTree    `json:"children,omitempty"`
}

// Find returns the first descendant (depth-first, including the receiver)
// with the given name, or nil.
func (t *SpanTree) Find(name string) *SpanTree {
	if t == nil {
		return nil
	}
	if t.Name == name {
		return t
	}
	for _, c := range t.Children {
		if m := c.Find(name); m != nil {
			return m
		}
	}
	return nil
}

func durMillis(d time.Duration) float64 {
	return float64(d) / float64(time.Millisecond)
}

type spanCtxKey struct{}

// WithSpan returns a context carrying the span; StartSpan against it
// creates children of s.
func WithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanCtxKey{}, s)
}

// SpanFromContext returns the span carried by ctx, or nil.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanCtxKey{}).(*Span)
	return s
}

// StartSpan starts a child of the context's span. When the context
// carries no span this returns nil without allocating, which makes it
// safe to call unconditionally on hot paths.
func StartSpan(ctx context.Context, name string) *Span {
	return SpanFromContext(ctx).StartChild(name)
}

type requestIDKey struct{}

// NewRequestID returns a 16-hex-char random request identifier.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on supported platforms; fall back to a
		// timestamp so a request id is still unique enough for logs.
		return hex.EncodeToString([]byte(time.Now().Format("150405.000000")))[:16]
	}
	return hex.EncodeToString(b[:])
}

// ContextWithRequestID attaches a request id to ctx.
func ContextWithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey{}, id)
}

// RequestIDFrom returns the request id carried by ctx, or "".
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}
