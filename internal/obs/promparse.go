package obs

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// This file is a strict parser for the Prometheus text exposition format
// (version 0.0.4). It exists so the /metrics endpoint can be validated
// end-to-end: the format test and the CI smoke job feed the live
// endpoint output through ParsePrometheus and fail on the first line
// that does not round-trip. It is deliberately stricter than real
// Prometheus scrapers: every sample must belong to a TYPE-declared
// family, histogram buckets must be cumulative and closed by +Inf, and
// duplicate series are rejected.

// Sample is one parsed metric line.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// PromText is the parsed form of a text-format exposition.
type PromText struct {
	Samples []Sample
	Types   map[string]string // family name -> counter|gauge|histogram|summary|untyped
	Help    map[string]string
}

// Sample returns the value of the sample matching name and labels
// (given as alternating key, value pairs), and whether it was found.
func (p *PromText) Sample(name string, kv ...string) (float64, bool) {
	if len(kv)%2 != 0 {
		panic("obs: odd label key/value list")
	}
outer:
	for _, s := range p.Samples {
		if s.Name != name || len(s.Labels) != len(kv)/2 {
			continue
		}
		for i := 0; i < len(kv); i += 2 {
			if s.Labels[kv[i]] != kv[i+1] {
				continue outer
			}
		}
		return s.Value, true
	}
	return 0, false
}

// HasFamily reports whether any sample belongs to the named family
// (histogram samples count toward their base name).
func (p *PromText) HasFamily(name string) bool {
	_, ok := p.Types[name]
	return ok
}

// ParsePrometheus parses and validates a text-format exposition. Any
// deviation — malformed names, bad escapes, samples without a TYPE,
// non-cumulative or unterminated histogram buckets, duplicate series —
// returns an error naming the offending line.
func ParsePrometheus(data []byte) (*PromText, error) {
	p := &PromText{Types: make(map[string]string), Help: make(map[string]string)}
	seen := make(map[string]bool) // duplicate-series detection
	sawSample := make(map[string]bool)

	lines := strings.Split(string(data), "\n")
	for i, line := range lines {
		ln := i + 1
		if line == "" {
			if i == len(lines)-1 {
				continue // trailing newline
			}
			return nil, fmt.Errorf("line %d: empty line inside exposition", ln)
		}
		if strings.HasPrefix(line, "#") {
			if err := p.parseComment(line, ln, sawSample); err != nil {
				return nil, err
			}
			continue
		}
		s, err := parseSampleLine(line, ln)
		if err != nil {
			return nil, err
		}
		fam, err := p.familyFor(s.Name, ln)
		if err != nil {
			return nil, err
		}
		key := seriesKey(s)
		if seen[key] {
			return nil, fmt.Errorf("line %d: duplicate series %s", ln, key)
		}
		seen[key] = true
		sawSample[fam] = true
		p.Samples = append(p.Samples, s)
	}
	if err := p.validateHistograms(); err != nil {
		return nil, err
	}
	return p, nil
}

func (p *PromText) parseComment(line string, ln int, sawSample map[string]bool) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 2 || fields[0] != "#" {
		// Arbitrary comments are legal as long as they are not mangled
		// HELP/TYPE lines.
		if strings.HasPrefix(line, "# HELP") || strings.HasPrefix(line, "# TYPE") {
			return fmt.Errorf("line %d: malformed HELP/TYPE line", ln)
		}
		return nil
	}
	switch fields[1] {
	case "HELP":
		if len(fields) < 3 || !metricNameRe.MatchString(fields[2]) {
			return fmt.Errorf("line %d: malformed HELP line", ln)
		}
		name := fields[2]
		if _, dup := p.Help[name]; dup {
			return fmt.Errorf("line %d: duplicate HELP for %s", ln, name)
		}
		text := ""
		if len(fields) == 4 {
			text = fields[3]
		}
		stripped := strings.ReplaceAll(text, `\\`, "")
		stripped = strings.ReplaceAll(stripped, `\n`, "")
		if strings.Contains(stripped, `\`) {
			return fmt.Errorf("line %d: invalid escape in HELP text", ln)
		}
		p.Help[name] = text
	case "TYPE":
		if len(fields) != 4 || !metricNameRe.MatchString(fields[2]) {
			return fmt.Errorf("line %d: malformed TYPE line", ln)
		}
		name, typ := fields[2], fields[3]
		switch typ {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("line %d: unknown metric type %q", ln, typ)
		}
		if _, dup := p.Types[name]; dup {
			return fmt.Errorf("line %d: duplicate TYPE for %s", ln, name)
		}
		if sawSample[name] {
			return fmt.Errorf("line %d: TYPE for %s after its samples", ln, name)
		}
		p.Types[name] = typ
	}
	return nil
}

// familyFor maps a sample name to its declared family, resolving the
// histogram/summary child suffixes (_bucket, _sum, _count).
func (p *PromText) familyFor(name string, ln int) (string, error) {
	if typ, ok := p.Types[name]; ok {
		if typ == "histogram" || typ == "summary" {
			return "", fmt.Errorf("line %d: %s is declared %s; expected %s_bucket/_sum/_count samples", ln, name, typ, name)
		}
		return name, nil
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base, ok := strings.CutSuffix(name, suffix)
		if !ok {
			continue
		}
		typ, declared := p.Types[base]
		if !declared {
			continue
		}
		if typ == "histogram" || (typ == "summary" && suffix != "_bucket") {
			return base, nil
		}
	}
	return "", fmt.Errorf("line %d: sample %s has no TYPE declaration", ln, name)
}

func parseSampleLine(line string, ln int) (Sample, error) {
	if strings.TrimSpace(line) != line {
		return Sample{}, fmt.Errorf("line %d: leading or trailing whitespace", ln)
	}
	s := Sample{Labels: map[string]string{}}
	rest := line
	nameEnd := strings.IndexAny(rest, "{ ")
	if nameEnd <= 0 {
		return Sample{}, fmt.Errorf("line %d: cannot split metric name", ln)
	}
	s.Name = rest[:nameEnd]
	if !metricNameRe.MatchString(s.Name) {
		return Sample{}, fmt.Errorf("line %d: invalid metric name %q", ln, s.Name)
	}
	rest = rest[nameEnd:]
	if rest[0] == '{' {
		end, err := parseLabels(rest, s.Labels, ln)
		if err != nil {
			return Sample{}, err
		}
		rest = rest[end:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return Sample{}, fmt.Errorf("line %d: want value [timestamp], got %q", ln, strings.TrimSpace(rest))
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return Sample{}, fmt.Errorf("line %d: bad value %q", ln, fields[0])
	}
	s.Value = v
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return Sample{}, fmt.Errorf("line %d: bad timestamp %q", ln, fields[1])
		}
	}
	return s, nil
}

// parseLabels consumes a {name="value",...} block starting at rest[0] ==
// '{' and returns the index one past the closing brace.
func parseLabels(rest string, out map[string]string, ln int) (int, error) {
	i := 1
	for {
		if i >= len(rest) {
			return 0, fmt.Errorf("line %d: unterminated label block", ln)
		}
		if rest[i] == '}' {
			return i + 1, nil
		}
		j := strings.Index(rest[i:], "=")
		if j < 0 {
			return 0, fmt.Errorf("line %d: label without '='", ln)
		}
		name := rest[i : i+j]
		if !labelNameRe.MatchString(name) {
			return 0, fmt.Errorf("line %d: invalid label name %q", ln, name)
		}
		if _, dup := out[name]; dup {
			return 0, fmt.Errorf("line %d: duplicate label %q", ln, name)
		}
		i += j + 1
		if i >= len(rest) || rest[i] != '"' {
			return 0, fmt.Errorf("line %d: label value for %q not quoted", ln, name)
		}
		i++
		var val strings.Builder
		for {
			if i >= len(rest) {
				return 0, fmt.Errorf("line %d: unterminated label value for %q", ln, name)
			}
			c := rest[i]
			if c == '"' {
				i++
				break
			}
			if c == '\\' {
				if i+1 >= len(rest) {
					return 0, fmt.Errorf("line %d: dangling escape in label value", ln)
				}
				switch rest[i+1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return 0, fmt.Errorf("line %d: invalid escape \\%c in label value", ln, rest[i+1])
				}
				i += 2
				continue
			}
			val.WriteByte(c)
			i++
		}
		out[name] = val.String()
		if i < len(rest) && rest[i] == ',' {
			i++
		} else if i >= len(rest) || rest[i] != '}' {
			return 0, fmt.Errorf("line %d: expected ',' or '}' after label %q", ln, name)
		}
	}
}

func seriesKey(s Sample) string {
	keys := make([]string, 0, len(s.Labels))
	for k := range s.Labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(s.Name)
	for _, k := range keys {
		b.WriteByte('\x00')
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(s.Labels[k])
	}
	return b.String()
}

// validateHistograms checks every histogram family: per label set,
// buckets must have parseable ascending le bounds, cumulative counts,
// a closing +Inf bucket equal to _count, and a _sum sample.
func (p *PromText) validateHistograms() error {
	type histSeries struct {
		bounds []float64
		counts []float64
		sum    *float64
		count  *float64
	}
	groups := make(map[string]*histSeries)
	groupKey := func(base string, labels map[string]string) string {
		cp := make(map[string]string, len(labels))
		for k, v := range labels {
			if k != "le" {
				cp[k] = v
			}
		}
		return seriesKey(Sample{Name: base, Labels: cp})
	}
	get := func(key string) *histSeries {
		g := groups[key]
		if g == nil {
			g = &histSeries{}
			groups[key] = g
		}
		return g
	}
	keyName := make(map[string]string)
	for i := range p.Samples {
		s := p.Samples[i]
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			base, ok := strings.CutSuffix(s.Name, suffix)
			if !ok || p.Types[base] != "histogram" {
				continue
			}
			key := groupKey(base, s.Labels)
			keyName[key] = base
			g := get(key)
			switch suffix {
			case "_bucket":
				leStr, ok := s.Labels["le"]
				if !ok {
					return fmt.Errorf("histogram %s: bucket sample without le label", base)
				}
				le, err := strconv.ParseFloat(leStr, 64)
				if err != nil {
					return fmt.Errorf("histogram %s: unparseable le %q", base, leStr)
				}
				g.bounds = append(g.bounds, le)
				g.counts = append(g.counts, s.Value)
			case "_sum":
				v := s.Value
				g.sum = &v
			case "_count":
				v := s.Value
				g.count = &v
			}
			break
		}
	}
	for key, g := range groups {
		name := keyName[key]
		if len(g.bounds) == 0 {
			return fmt.Errorf("histogram %s: series with no buckets", name)
		}
		for i := 1; i < len(g.bounds); i++ {
			if !(g.bounds[i] > g.bounds[i-1]) {
				return fmt.Errorf("histogram %s: le bounds not ascending", name)
			}
			if g.counts[i] < g.counts[i-1] {
				return fmt.Errorf("histogram %s: bucket counts not cumulative", name)
			}
		}
		if !math.IsInf(g.bounds[len(g.bounds)-1], 1) {
			return fmt.Errorf("histogram %s: missing le=\"+Inf\" bucket", name)
		}
		if g.count == nil || g.sum == nil {
			return fmt.Errorf("histogram %s: missing _sum or _count", name)
		}
		if *g.count != g.counts[len(g.counts)-1] {
			return fmt.Errorf("histogram %s: _count %g != +Inf bucket %g", name, *g.count, g.counts[len(g.counts)-1])
		}
	}
	return nil
}
