package obs

import (
	"io"
	"log/slog"
)

// NewJSONLogger returns a structured logger emitting one JSON object per
// line, the format used for access and slow-query logs. Level defaults
// to Info; pass slog.LevelDebug to also see per-request debug detail.
func NewJSONLogger(w io.Writer, level slog.Level) *slog.Logger {
	return slog.New(slog.NewJSONHandler(w, &slog.HandlerOptions{Level: level}))
}
